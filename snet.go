// Package snet is a Go implementation of the S-Net coordination language
// (Penczek et al., "Message Driven Programming with S-Net: Methodology and
// Performance", ICPP Workshops 2010): stateless boxes turned into
// asynchronous stream-processing components, composed into single-input
// single-output networks by four algebraic combinators, with structural
// subtyping and flow inheritance on record streams, synchrocells, filters,
// and the Distributed S-Net placement combinators.
//
// The package is a facade over the implementation packages:
//
//   - records and the type system (internal/record, internal/rtype),
//   - the batched stream transport between entities (internal/stream),
//   - the streaming runtime and combinators (internal/core),
//   - the language front end and compiler (internal/lang, internal/compile),
//   - the multi-node platform (internal/dist).
//
// See docs/architecture.md for the layer map, docs/combinators.md for
// combinator semantics, and docs/performance.md for the transport's
// batching model and tuning.
//
// # Building networks
//
// Networks are built either programmatically,
//
//	inc := snet.NewBox("inc", snet.MustSig(
//	        []snet.Label{snet.F("x")}, []snet.Label{snet.F("x")}),
//	    func(c *snet.BoxCall) error {
//	        c.Emit(snet.NewRecord().SetField("x", c.Field("x").(int)+1))
//	        return nil
//	    })
//	net := snet.NewNetwork(snet.Serial(inc, inc), snet.Options{})
//
// or compiled from S-Net source text with boxes registered by name:
//
//	reg := snet.NewRegistry()
//	reg.RegisterBox("inc", incFn)
//	res, err := snet.CompileSource(`
//	    net twice { box inc ((x) -> (x)); } connect inc .. inc;
//	`, reg)
//
// Run feeds records through a fresh instantiation and collects the output:
//
//	outs, err := net.Run(snet.NewRecord().SetField("x", 40))
package snet

import (
	"snet/internal/compile"
	"snet/internal/core"
	"snet/internal/dist"
	"snet/internal/journal"
	"snet/internal/lang"
	"snet/internal/record"
	"snet/internal/rtype"
	"snet/internal/stream"
)

// Record is an S-Net record: a set of label–value pairs with opaque fields
// and integer tags.
type Record = record.Record

// RecordBuilder assembles records fluently.
type RecordBuilder = record.Builder

// Sym is an interned label identifier: a dense process-wide integer handle
// for a label name. Hot-path code interns its labels once (InternLabel) and
// uses the Sym-keyed record and BoxCall accessors, turning label matching
// and access into integer scans.
type Sym = record.Sym

// RecordPool recycles records so steady-state pipelines run
// allocation-free. Pooling is opt-in and follows the stream ownership
// contract: only a record's current single owner may return it.
type RecordPool = record.Pool

// InternLabel returns the symbol for a label name, assigning one on first
// use.
func InternLabel(name string) Sym { return record.Intern(name) }

// NewRecordPool returns an empty record pool.
func NewRecordPool() *RecordPool { return record.NewPool() }

// NewRecord returns an empty record.
func NewRecord() *Record { return record.New() }

// BuildRecord starts a fluent record builder:
// BuildRecord().F("scene", s).T("tasks", 48).Rec().
func BuildRecord() *RecordBuilder { return record.Build() }

// Label is a classified record label (field, tag or binding tag).
type Label = rtype.Label

// Variant is a set of labels; Type is a disjunction of variants; Pattern is
// a variant plus an optional guard; Signature maps an input type to an
// output type.
type (
	Variant   = rtype.Variant
	Type      = rtype.Type
	Pattern   = rtype.Pattern
	Signature = rtype.Signature
)

// F constructs a field label.
func F(name string) Label { return rtype.F(name) }

// T constructs a tag label.
func T(name string) Label { return rtype.T(name) }

// BT constructs a binding-tag label.
func BT(name string) Label { return rtype.BT(name) }

// NewVariant builds a variant from labels.
func NewVariant(labels ...Label) *Variant { return rtype.NewVariant(labels...) }

// NewType builds a type from variants.
func NewType(variants ...*Variant) *Type { return rtype.NewType(variants...) }

// NewPattern builds a guard-free pattern over a variant.
func NewPattern(v *Variant) *Pattern { return rtype.NewPattern(v) }

// NewSignature builds a type signature.
func NewSignature(in, out *Type) Signature { return rtype.NewSignature(in, out) }

// Runtime types re-exported from the core.
type (
	// Entity is a SISO network component (box, filter, synchrocell or
	// combinator composition).
	Entity = core.Entity
	// BoxCall is the per-record context handed to a box function.
	BoxCall = core.BoxCall
	// BoxFunc is the body of a box.
	BoxFunc = core.BoxFunc
	// Options configure a network instantiation: the platform, stream
	// capacity (BufferSize, in records), transport batching (BatchSize,
	// FlushInterval — see docs/performance.md), the placement policy
	// (Placer) and work stealing (WorkStealing — see docs/performance.md
	// "Scheduling & placement"), the instantiation-time optimizer
	// (Optimize — see OptimizeLevel), runtime type checking, synchrocell
	// flushing, and the delivery guarantees (Durability, BoxRetry — see
	// docs/architecture.md "Durability & delivery guarantees").
	Options = core.Options
	// Network is an instantiable S-Net. Beyond Run, it offers
	// RunContext (Run bounded by a context: cancellation stops the
	// instance and reclaims every goroutine) and Start, which returns an
	// Instance for streaming use.
	Network = core.Network
	// Instance is one running network instantiation. Orderly shutdown:
	// close In (or call CloseIn or Close) and drain Out. Abort: call Stop
	// — every runtime goroutine, including those blocked on an unread Out
	// or queued for a platform CPU slot, is reclaimed before Stop
	// returns, and in-flight records are discarded. LinkStats snapshots
	// the per-link depth and throughput counters of the batched
	// transport; Errs the structured error report; DeadLetters the
	// retry-exhausted records; Recover replays a crashed instance's
	// journal (Options.Durability).
	Instance = core.Instance
	// LinkStats is a snapshot of one stream link's traffic counters —
	// records and batches sent, current queued depth, and the flush-cause
	// breakdown (fill-up, downstream-idle, timer, steal) — as returned by
	// Instance.LinkStats, one entry per link in creation order.
	LinkStats = core.LinkStats
	// OptimizeLevel selects how aggressively NewNetwork rewrites the
	// entity tree before instantiation (Options.Optimize): the zero value
	// OptimizeFull flattens combinator nests, elides identities, fuses
	// adjacent stateless entities and prunes dead choice branches;
	// OptimizeOff spawns the tree exactly as constructed. See
	// docs/performance.md "Optimizer".
	OptimizeLevel = core.OptimizeLevel
	// OptStats reports what the optimizer did to a network — entity
	// counts before/after and per-rewrite tallies — as returned by
	// Network.OptStats and Instance.OptStats next to LinkStats.
	OptStats = core.OptStats
	// Platform abstracts the compute substrate (see dist.Cluster).
	Platform = core.Platform
	// CancellablePlatform is optionally implemented by platforms whose
	// Exec can abandon a pending CPU-slot wait when an instance is
	// stopped; dist.Cluster implements it.
	CancellablePlatform = core.CancellablePlatform
	// BatchPlatform is optionally implemented by platforms that can
	// account a whole batch of records crossing between nodes as one wire
	// message; dist.Cluster implements it (see Cluster.TransferBatch).
	BatchPlatform = core.BatchPlatform
	// StealPlatform is optionally implemented by platforms whose queued
	// box executions may be claimed by an idle node (work stealing, see
	// Options.WorkStealing); dist.Cluster implements it, charging its
	// transfer-cost model for each migrated triggering record and
	// counting ClusterStats.Steals / ClusterStats.Migrated.
	StealPlatform = core.StealPlatform
	// LoadPlatform is optionally implemented by platforms that report
	// per-node scheduling load (CPU slots in use plus queued executions);
	// the LeastLoaded placement policy consults it at dispatch time.
	// dist.Cluster implements it.
	LoadPlatform = core.LoadPlatform
	// Placer is a placement policy: it decides, at dispatch time, which
	// compute node a dynamically placed unit of work — an indexed-split
	// replica, an untagged record under SplitAt, a star unfolding — runs
	// on. Set it via Options.Placer; nil keeps the Static convention.
	Placer = core.Placer
	// Static places by dispatch key modulo node count — the
	// pre-stamped-tag convention of Distributed S-Net, and the default.
	Static = core.Static
	// RoundRobin cycles dispatch units over the nodes regardless of key.
	RoundRobin = core.RoundRobin
	// LeastLoaded places each dispatch unit on the node with the smallest
	// current load (LoadPlatform), falling back to round-robin.
	LeastLoaded = core.LeastLoaded
	// LocalPlatform is the trivial single-node platform.
	LocalPlatform = core.LocalPlatform
	// FilterRule, FilterOutput and TagAssign describe filters
	// programmatically.
	FilterRule = core.FilterRule
	// FilterOutput is one output template of a filter rule.
	FilterOutput = core.FilterOutput
	// TagAssign sets a tag from an expression in a filter output.
	TagAssign = core.TagAssign
)

// Durability and error-handling types re-exported from the core (see
// docs/architecture.md "Durability & delivery guarantees").
type (
	// Durability configures at-least-once delivery (Options.Durability):
	// every record accepted on Instance.In is journaled to Dir before it
	// enters the network and acknowledged only when its whole derivation
	// tree has completed; Instance.Recover replays a crashed instance's
	// unacknowledged records.
	Durability = core.Durability
	// BoxRetry configures box failure handling (Options.BoxRetry): with
	// Attempts >= 1 a failed execution's partial emissions are discarded
	// and the box re-runs against the unchanged input, exhaustion landing
	// the exact record in Instance.DeadLetters.
	BoxRetry = core.BoxRetry
	// DeadLetter is one record a box gave up on: the unmodified input,
	// the entity name, the attempt count and the final error.
	DeadLetter = core.DeadLetter
	// RuntimeError is one structured runtime error: the reporting entity,
	// a category, the offending record's shape, and the wrapped error.
	RuntimeError = core.RuntimeError
	// ErrorCategory classifies a RuntimeError (ErrCatNoMatch, ErrCatBox,
	// ErrCatPanic, ErrCatTypeCheck, ErrCatJournal, ErrCatOther).
	ErrorCategory = core.ErrorCategory
	// ErrorReport is Instance.Errs's snapshot: retained errors plus
	// per-category counts of everything beyond the retention cap.
	ErrorReport = core.ErrorReport
	// FsyncPolicy selects when journal appends are forced to stable
	// storage (Durability.Fsync).
	FsyncPolicy = journal.FsyncPolicy
)

// Runtime error categories for ErrorCategory.
const (
	// ErrCatOther covers errors with no more specific category.
	ErrCatOther = core.ErrCatOther
	// ErrCatNoMatch is a record matching no input variant, filter rule,
	// or choice branch.
	ErrCatNoMatch = core.ErrCatNoMatch
	// ErrCatBox is a box body returning an error.
	ErrCatBox = core.ErrCatBox
	// ErrCatPanic is a box body panicking (recovered by the runtime).
	ErrCatPanic = core.ErrCatPanic
	// ErrCatTypeCheck is a CheckTypes violation.
	ErrCatTypeCheck = core.ErrCatTypeCheck
	// ErrCatJournal is a durability failure: the ingress journal refusing
	// an append or acknowledgement.
	ErrCatJournal = core.ErrCatJournal
)

// Journal fsync policies for Durability.Fsync.
const (
	// FsyncNever leaves flushing to the OS page cache (and Close).
	FsyncNever = journal.FsyncNever
	// FsyncBatch syncs at most once per Durability.FsyncInterval.
	FsyncBatch = journal.FsyncBatch
	// FsyncAlways syncs every append before it is acknowledged.
	FsyncAlways = journal.FsyncAlways
)

// ErrStopped is reported by instances aborted with Instance.Stop or a
// cancelled RunContext: the network did not run to completion and records
// in flight were discarded. Test with errors.Is.
var ErrStopped = core.ErrStopped

// Optimizer levels for Options.Optimize (see OptimizeLevel).
const (
	// OptimizeFull — the default — enables the whole rewrite catalogue.
	OptimizeFull = core.OptimizeFull
	// OptimizeOff instantiates the entity tree exactly as constructed.
	OptimizeOff = core.OptimizeOff
)

// Batched-transport defaults, selected when the corresponding Options
// field is zero (see docs/performance.md for the model and tuning).
const (
	// DefaultBatchSize is the records-per-batch ceiling of every stream
	// link when Options.BatchSize is zero.
	DefaultBatchSize = stream.DefaultBatchSize
	// DefaultFlushInterval bounds how long a record may linger in a
	// partial batch behind a busy consumer when Options.FlushInterval is
	// zero.
	DefaultFlushInterval = stream.DefaultFlushInterval
)

// MustSig builds a single-input-variant signature from label lists.
func MustSig(in []Label, outs ...[]Label) Signature { return core.MustSig(in, outs...) }

// NewBox creates a box entity from a name, signature and body.
func NewBox(name string, sig Signature, fn BoxFunc) *Entity {
	return core.NewBox(name, sig, fn)
}

// Serial builds the serial composition A..B.
func Serial(a, b *Entity) *Entity { return core.Serial(a, b) }

// SerialAll folds Serial left to right.
func SerialAll(first *Entity, rest ...*Entity) *Entity { return core.SerialAll(first, rest...) }

// Choice builds the parallel composition A|B|... with type-driven dispatch.
func Choice(branches ...*Entity) *Entity { return core.Choice(branches...) }

// DetChoice builds the deterministic parallel composition A||B||...: like
// Choice, but the output stream preserves the input order.
func DetChoice(branches ...*Entity) *Entity { return core.DetChoice(branches...) }

// Star builds the serial replication A*exit.
func Star(a *Entity, exit *Pattern) *Entity { return core.Star(a, exit) }

// Split builds the indexed parallel replication A!<tag>.
func Split(a *Entity, tag string) *Entity { return core.Split(a, tag) }

// DetSplit builds the deterministic indexed parallel replication A!!<tag>:
// like Split, but the output stream preserves the input order.
func DetSplit(a *Entity, tag string) *Entity { return core.DetSplit(a, tag) }

// SplitAt builds the indexed dynamic placement A!@<tag> of Distributed
// S-Net.
func SplitAt(a *Entity, tag string) *Entity { return core.SplitAt(a, tag) }

// At builds the static placement A@node of Distributed S-Net.
func At(a *Entity, node int) *Entity { return core.At(a, node) }

// NewFilter builds a filter entity from rules.
func NewFilter(name string, rules ...FilterRule) *Entity { return core.NewFilter(name, rules...) }

// Identity builds the identity filter [].
func Identity() *Entity { return core.Identity() }

// NewSync builds a synchrocell [| p1, p2, ... |].
func NewSync(patterns ...*Pattern) *Entity { return core.NewSync(patterns...) }

// FeedbackStar is an extension beyond the paper: a feedback variant of the
// star combinator that re-circulates non-exit records through a single
// operand instance instead of unrolling replicas. Operands may consume
// records without emitting or emit several exits per input (shutdown
// drains in generations, see core.FeedbackStar), but must be stateless
// across records — no synchrocells. It exists for the unroll-versus-
// feedback ablation benchmark; the compiler never emits it.
func FeedbackStar(a *Entity, exit *Pattern) *Entity { return core.FeedbackStar(a, exit) }

// ObserveDirection tells an observer callback whether a record was entering
// or leaving the observed entity.
type ObserveDirection = core.ObserveDirection

// Observation directions.
const (
	// ObserveIn reports a record entering the observed entity.
	ObserveIn = core.ObserveIn
	// ObserveOut reports a record leaving the observed entity.
	ObserveOut = core.ObserveOut
)

// ObserverCounter counts records entering and leaving an observed entity.
type ObserverCounter = core.Counter

// Observe wraps an entity with a transparent observer: fn sees every record
// entering and leaving the operand without affecting network semantics.
func Observe(a *Entity, fn func(dir ObserveDirection, r *Record)) *Entity {
	return core.Observe(a, fn)
}

// NewNetwork wraps an entity into a runnable network.
func NewNetwork(e *Entity, opts Options) *Network { return core.NewNetwork(e, opts) }

// Language front end re-exports.
type (
	// Program is a parsed S-Net compilation unit.
	Program = lang.Program
	// Expr is a parsed connect expression.
	Expr = lang.Expr
	// Registry binds box names to Go implementations and net names to
	// pre-built networks.
	Registry = compile.Registry
	// CompileResult holds the compiled networks and warnings.
	CompileResult = compile.Result
)

// Parse parses S-Net source text.
func Parse(src string) (*Program, error) { return lang.Parse(src) }

// ParseExpr parses a standalone connect expression.
func ParseExpr(src string) (Expr, error) { return lang.ParseExpr(src) }

// NewRegistry returns an empty box/net registry.
func NewRegistry() *Registry { return compile.NewRegistry() }

// CompileSource parses and compiles S-Net source against the registry.
func CompileSource(src string, reg *Registry) (*CompileResult, error) {
	return compile.Source(src, reg)
}

// CompileProgram compiles a parsed program against the registry.
func CompileProgram(prog *Program, reg *Registry) (*CompileResult, error) {
	return compile.Program(prog, reg)
}

// CompileExpr compiles a standalone connect expression against the
// registry.
func CompileExpr(e Expr, reg *Registry) (*Entity, []string, error) {
	return compile.Expr(e, reg)
}

// Cluster is the multi-node platform of Distributed S-Net: bounded CPU
// slots per abstract node, per-hop transfer accounting via the record wire
// codec, and an optional transfer-cost model (latency plus bandwidth delay,
// see Cluster.SetTransferCost) for exploring communication-bound regimes.
type Cluster = dist.Cluster

// ClusterStats is a snapshot of a cluster's accounting counters: per-node
// execution counts and busy times, cross-node transfer and byte totals,
// and the work-stealing counters (Steals, Migrated).
type ClusterStats = dist.Stats

// NewCluster creates a cluster platform with the given number of nodes and
// CPU slots per node. Pass it as Options.Platform to place a network onto
// the cluster; the placement combinators At and SplitAt decide which node
// each subnetwork runs on.
func NewCluster(nodes, cpusPerNode int) *Cluster { return dist.NewCluster(nodes, cpusPerNode) }
