#!/usr/bin/env bash
# crash-replay-smoke.sh — durability smoke test for the ingress journal:
# build raytrace with -race, start a journaled render, SIGKILL the
# process mid-render the way a power cut would, and assert that
#
#   1. the kill really interrupted the render (exit 137, no image, an
#      unacknowledged segment left in the journal directory),
#   2. a fresh process with -recover replays the journaled input and
#      produces an image pixel-identical to the sequential reference,
#      with zero dead letters,
#   3. the replayed render acknowledges the input: a second -recover run
#      finds the journal drained (recovered 0) and still renders clean.
#
# The in-process tests (internal/journal, internal/core) prove replay,
# dedup, and ack semantics deterministically with injected fault
# schedules; this script proves them against a real SIGKILL of a real OS
# process writing a real on-disk WAL.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== build raytrace (-race)"
go build -race -o "$workdir/raytrace" ./cmd/raytrace

jdir="$workdir/journal"
# Large enough that the render takes seconds even without -race, so the
# SIGKILL below is guaranteed to land mid-render; the journal append is
# fsynced at Send time, milliseconds after startup.
ray_flags=(-engine snet-steal -w 900 -h 700 -tasks 32)

fail() {
    echo "== FAIL: $1"
    for log in crash rec rec2; do
        [ -f "$workdir/$log.log" ] && { echo "-- $log run:"; cat "$workdir/$log.log"; }
    done
    [ -d "$jdir" ] && { echo "-- journal dir:"; ls -l "$jdir"; }
    exit 1
}

echo "== sequential reference render"
"$workdir/raytrace" -engine seq -w 900 -h 700 -o "$workdir/ref.ppm" >/dev/null

echo "== crash run: SIGKILL mid-render"
# The binary must be backgrounded directly: wrapping it in a compound
# command backgrounds a subshell, and kill -9 $! would kill the subshell
# while the render ran on to completion — and acked the journal.
"$workdir/raytrace" "${ray_flags[@]}" -journal "$jdir" -o "$workdir/crash.ppm" \
    >"$workdir/crash.log" 2>&1 &
pid=$!
sleep 1
kill -9 "$pid" 2>/dev/null || fail "render finished before the kill; enlarge the scene"
wait "$pid" && fail "SIGKILLed render exited zero?!" || status=$?
[ "$status" -eq 137 ] || fail "crash run exited $status, want 137 (SIGKILL)"
[ ! -f "$workdir/crash.ppm" ] || fail "killed render still wrote an image"
ls "$jdir"/seg-*.wal >/dev/null 2>&1 || fail "no journal segment survived the crash"
echo "== killed pid $pid; journal holds $(ls "$jdir"/seg-*.wal | wc -l) segment(s)"

echo "== recover run: replay the journaled input"
"$workdir/raytrace" "${ray_flags[@]}" -journal "$jdir" -recover \
    -o "$workdir/rec.ppm" >"$workdir/rec.log" 2>&1 \
    || fail "recover run exited nonzero"
grep -Fq 'journal: recovered 1 input(s), 0 dead letter(s)' "$workdir/rec.log" \
    || fail "recover run did not replay exactly one input with zero dead letters"
cmp -s "$workdir/ref.ppm" "$workdir/rec.ppm" \
    || fail "recovered image differs from the sequential reference"
echo "== recovered render pixel-identical to reference"

echo "== drain check: a second -recover finds nothing to replay"
"$workdir/raytrace" "${ray_flags[@]}" -journal "$jdir" -recover \
    -o "$workdir/rec2.ppm" >"$workdir/rec2.log" 2>&1 \
    || fail "post-recovery run exited nonzero"
grep -Fq 'journal: recovered 0 input(s), 0 dead letter(s)' "$workdir/rec2.log" \
    || fail "replayed input was not acknowledged: second recover found work"
cmp -s "$workdir/ref.ppm" "$workdir/rec2.ppm" \
    || fail "post-recovery fresh render differs from the reference"

echo "== crash-replay smoke OK"
