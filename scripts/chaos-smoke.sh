#!/usr/bin/env bash
# chaos-smoke.sh — fault-tolerance smoke test for the wire transport:
# build snetd with -race, start one coordinator and two workers, SIGKILL
# one worker while a raytrace render is in flight, and assert that
#
#   1. the render still completes, pixel-identical to the in-process
#      reference (the coordinator process checks this itself and refuses
#      to print the success line otherwise),
#   2. at least one pending call was failed over to a local slot,
#   3. a replacement worker started after the kill rejoins the fleet
#      (claims the dead node's slot, counted in the rejoins stat),
#   4. shutdown is clean and every surviving process exits 0.
#
# The in-process fault tests (internal/wire, internal/wireapp) prove the
# same properties deterministically with an injected fault schedule; this
# script proves them against a real SIGKILL of a real OS process.
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== build snetd (-race)"
go build -race -o "$workdir/snetd" ./cmd/snetd

# Scale stretches every solver call (the slot is held for scale× the real
# render time), so the render spans several seconds and the SIGKILL below
# is guaranteed to land while calls are pending on the victim.
ray_flags=(-app raytrace -w 320 -h 240 -tasks 16 -scale 60)

coord_log="$workdir/coord.log"
"$workdir/snetd" -coordinate -listen 127.0.0.1:0 -workers 2 -cpus 1 \
    "${ray_flags[@]}" >"$coord_log" 2>&1 &
coord_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on \(.*\)$/\1/p' "$coord_log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$coord_pid" 2>/dev/null || { cat "$coord_log"; echo "coordinator died before listening"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { cat "$coord_log"; echo "coordinator never printed its address"; exit 1; }
echo "== coordinator on $addr (pid $coord_pid)"

"$workdir/snetd" -connect "$addr" "${ray_flags[@]}" >"$workdir/w1.log" 2>&1 &
w1_pid=$!
"$workdir/snetd" -connect "$addr" "${ray_flags[@]}" >"$workdir/w2.log" 2>&1 &
w2_pid=$!

fail() {
    echo "== FAIL: $1"
    echo "-- coordinator:"; cat "$coord_log"
    echo "-- worker 1:"; cat "$workdir/w1.log"
    echo "-- worker 2:"; cat "$workdir/w2.log"
    [ -f "$workdir/w3.log" ] && { echo "-- worker 3 (replacement):"; cat "$workdir/w3.log"; }
    kill "$coord_pid" "$w1_pid" "$w2_pid" "${w3_pid:-}" 2>/dev/null || true
    exit 1
}

# Wait for the render to start, let the fleet get calls in flight, then
# kill worker 1 the way an OOM killer would.
for _ in $(seq 1 200); do
    grep -q '^rendering ' "$coord_log" && break
    kill -0 "$coord_pid" 2>/dev/null || fail "coordinator died before rendering"
    sleep 0.1
done
grep -q '^rendering ' "$coord_log" || fail "render never started"
sleep 0.7
echo "== SIGKILL worker 1 (pid $w1_pid) mid-render"
kill -9 "$w1_pid"

# Start a replacement immediately: a fresh process (no rejoin id) that
# should be handed the dead node's slot.
"$workdir/snetd" -connect "$addr" "${ray_flags[@]}" >"$workdir/w3.log" 2>&1 &
w3_pid=$!
echo "== replacement worker started (pid $w3_pid)"

wait "$coord_pid" || fail "coordinator exited nonzero"
wait "$w2_pid"    || fail "worker 2 exited nonzero"
wait "$w3_pid"    || fail "replacement worker exited nonzero"
wait "$w1_pid" 2>/dev/null && fail "SIGKILLed worker exited zero?!"

echo "== coordinator output:"
cat "$coord_log"

grep -q 'pixel-identical' "$coord_log" || fail "render did not complete pixel-identical"
grep -q 'shutdown clean' "$coord_log"  || fail "no clean shutdown"

failovers=$(sed -n 's/.*failovers \([0-9]*\),.*/\1/p' "$coord_log" | head -1)
[ -n "$failovers" ] && [ "$failovers" -ge 1 ] || fail "no failover recorded (failovers=$failovers)"
rejoins=$(sed -n 's/.*rejoins \([0-9]*\),.*/\1/p' "$coord_log" | head -1)
[ -n "$rejoins" ] && [ "$rejoins" -ge 1 ] || fail "replacement worker never rejoined (rejoins=$rejoins)"
grep -q 'joined as node' "$workdir/w3.log" || fail "replacement worker log shows no join"

echo "== chaos smoke OK (failovers=$failovers, rejoins=$rejoins)"
