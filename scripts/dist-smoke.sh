#!/usr/bin/env bash
# dist-smoke.sh — end-to-end multi-process smoke test for the wire
# transport: build snetd with -race, start one coordinator and two worker
# processes on localhost, run the pipeline S-Net program across all three,
# and assert the output carries the correct sum, at least one dispatch-time
# steal, and a clean shutdown — then check every process exited 0.
#
# CI runs this next to the lifecycle leak checks: the in-process tests
# prove the protocol, this proves the deployment shape (separate OS
# processes, real sockets, orderly GOODBYE on both ends).
set -euo pipefail
cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "== build snetd (-race)"
go build -race -o "$workdir/snetd" ./cmd/snetd

# The coordinator picks a free port (:0) and prints it; workers poll the
# logfile until the address appears.
coord_log="$workdir/coord.log"
"$workdir/snetd" -coordinate -listen 127.0.0.1:0 -workers 2 -cpus 1 \
    -app pipeline -seqs 8 -fuse-delay 30ms >"$coord_log" 2>&1 &
coord_pid=$!

addr=""
for _ in $(seq 1 100); do
    addr=$(sed -n 's/^listening on \(.*\)$/\1/p' "$coord_log" | head -1)
    [ -n "$addr" ] && break
    kill -0 "$coord_pid" 2>/dev/null || { cat "$coord_log"; echo "coordinator died before listening"; exit 1; }
    sleep 0.1
done
[ -n "$addr" ] || { cat "$coord_log"; echo "coordinator never printed its address"; exit 1; }
echo "== coordinator on $addr (pid $coord_pid)"

"$workdir/snetd" -connect "$addr" -app pipeline -fuse-delay 30ms >"$workdir/w1.log" 2>&1 &
w1_pid=$!
"$workdir/snetd" -connect "$addr" -app pipeline -fuse-delay 30ms >"$workdir/w2.log" 2>&1 &
w2_pid=$!

fail() {
    echo "== FAIL: $1"
    echo "-- coordinator:"; cat "$coord_log"
    echo "-- worker 1:"; cat "$workdir/w1.log"
    echo "-- worker 2:"; cat "$workdir/w2.log"
    kill "$coord_pid" "$w1_pid" "$w2_pid" 2>/dev/null || true
    exit 1
}

wait "$coord_pid" || fail "coordinator exited nonzero"
wait "$w1_pid"    || fail "worker 1 exited nonzero"
wait "$w2_pid"    || fail "worker 2 exited nonzero"

echo "== coordinator output:"
cat "$coord_log"

grep -q 'sum .* (ok)' "$coord_log"     || fail "pipeline sum check missing"
grep -q 'shutdown clean' "$coord_log"  || fail "no clean shutdown"
# The pipeline homes every fuse on node 1 with one slot, so 8 overlapping
# executions must migrate: steals >= 1 is an assertion, not a hope.
steals=$(sed -n 's/.*steals \([0-9]*\),.*/\1/p' "$coord_log" | head -1)
[ -n "$steals" ] && [ "$steals" -ge 1 ] || fail "no dispatch-time steal observed (steals=$steals)"

echo "== dist smoke OK (steals=$steals)"
