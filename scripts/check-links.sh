#!/usr/bin/env bash
# check-links.sh — markdown link check over README.md and docs/, with no
# tooling beyond grep/sed. Relative links must resolve to an existing file
# or directory (anchors are stripped); absolute URLs are only
# format-checked. Exits non-zero listing every broken link.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
for f in README.md docs/*.md; do
	[ -f "$f" ] || continue
	dir=$(dirname "$f")
	# Inline links [text](target), one per line; titles and anchors cut.
	while IFS= read -r target; do
		case "$target" in
		http://* | https://*)
			# No network in CI for this check; just reject whitespace.
			case "$target" in
			*" "*) echo "$f: malformed URL: $target"; fail=1 ;;
			esac
			;;
		"#"*) ;; # intra-document anchor
		*)
			path="${target%%#*}"
			[ -z "$path" ] && continue
			if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
				echo "$f: broken link: $target"
				fail=1
			fi
			;;
		esac
	done < <(grep -oE '\[[^]]*\]\([^)]+\)' "$f" | sed -E 's/^\[[^]]*\]\(//; s/\)$//; s/ "[^"]*"$//')
done

if [ "$fail" -ne 0 ]; then
	echo "check-links: broken links found" >&2
	exit 1
fi
echo "check-links: all links resolve"
