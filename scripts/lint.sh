#!/usr/bin/env bash
# Lint gate: go vet plus snetlint, the repository's invariant analyzer
# suite (internal/analysis; catalogued in docs/invariants.md). Exits
# nonzero on any diagnostic from either tool, which is what makes the
# hand-kept invariants — done-channel cancellability, injected clocks,
# codec writes under the link mutex, interned-Sym hot paths — regressions
# a PR cannot merge with silently.
#
# The snetlint binary is built into a cache directory keyed by nothing
# (the go build cache does the real incremental work), so repeat runs —
# and the CI step, with the setup-go build cache restored — pay seconds,
# not a full rebuild.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== go vet =="
go vet ./...

echo "== snetlint =="
BIN="${SNETLINT_BIN:-$(go env GOCACHE)/snetlint-bin/snetlint}"
mkdir -p "$(dirname "$BIN")"
go build -o "$BIN" ./cmd/snetlint
"$BIN" ./...

echo "lint: clean"
