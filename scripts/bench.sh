#!/usr/bin/env bash
# bench.sh — run the live raytrace benchmarks with -benchmem and record the
# perf trajectory in a committed JSON file, so successive PRs can compare
# ns/op and allocs/op for the sequential kernel versus the S-Net variants.
#
# Usage:
#   scripts/bench.sh                 # refresh the "current" section
#   scripts/bench.sh --set-baseline  # also reset the "baseline" section
#
# Environment:
#   BENCHTIME      go test -benchtime value (default 3x)
#   BENCH_OUT      output file (default BENCH_records.json)
#   BENCH_PATTERN  go test -bench regexp (default the live render variants);
#                  only benchmarks whose names start with "BenchmarkLive"
#                  are recorded. The batched-transport trajectory is kept
#                  separately:
#                    BENCH_OUT=BENCH_stream.json \
#                    BENCH_PATTERN='BenchmarkLive(Cluster|SNet)' scripts/bench.sh
#                  and the STEAL trajectory (skewed-load scheduling: block
#                  vs factoring vs work stealing, with the steals/op and
#                  migrated/op metrics recorded as steals_op evidence that
#                  migration occurred):
#                    BENCH_OUT=BENCH_steal.json \
#                    BENCH_PATTERN='BenchmarkLiveCluster(Skewed|Uniform)' scripts/bench.sh
#                  and the WIRE trajectory (loopback TCP vs in-process
#                  dist.Cluster, with wire-KiB/op measured off the socket as
#                  the cross-check against the model's Stats.Bytes):
#                    BENCH_OUT=BENCH_wire.json \
#                    BENCH_PATTERN='BenchmarkLiveWire' scripts/bench.sh
#                  and the FUSE trajectory (instantiation-time optimizer on
#                  vs off on the same networks, with entities/op — the
#                  spawned entity count — recorded as entities_op):
#                    BENCH_OUT=BENCH_fuse.json \
#                    BENCH_PATTERN='BenchmarkLiveFuse' scripts/bench.sh
#                  and the JOURNAL trajectory (ingress-journal durability
#                  off vs on with fsync never/batch, on a record-throughput
#                  pipeline — the per-record cost of at-least-once delivery):
#                    BENCH_OUT=BENCH_journal.json \
#                    BENCH_PATTERN='BenchmarkLiveJournal' scripts/bench.sh
#
# The JSON layout is line-oriented on purpose (one benchmark per line) so
# this script can re-read its own baseline with awk and CI can diff it
# without tooling.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-3x}"
BENCH_OUT="${BENCH_OUT:-BENCH_records.json}"
BENCH_PATTERN="${BENCH_PATTERN:-BenchmarkLive(Sequential|SNet)}"
SET_BASELINE=0
[ "${1:-}" = "--set-baseline" ] && SET_BASELINE=1

raw="$(go test -run xxx -bench "$BENCH_PATTERN" \
	-benchmem -benchtime "$BENCHTIME" -count 1 .)"
printf '%s\n' "$raw"

# "name ns bytes allocs steals entities" per line, CPU-count suffix
# stripped; steals/entities are "-" for benchmarks that do not report the
# corresponding metric.
current="$(printf '%s\n' "$raw" | awk '
	/^BenchmarkLive/ && /ns\/op/ && /allocs\/op/ {
		name = $1; sub(/-[0-9]+$/, "", name)
		steals = "-"; entities = "-"
		for (i = 2; i <= NF; i++) {
			if ($i == "ns/op")       ns = $(i-1)
			if ($i == "B/op")        bytes = $(i-1)
			if ($i == "allocs/op")   allocs = $(i-1)
			if ($i == "steals/op")   steals = $(i-1)
			if ($i == "entities/op") entities = $(i-1)
		}
		print name, ns, bytes, allocs, steals, entities
	}')"
if [ -z "$current" ]; then
	echo "bench.sh: no benchmark results parsed" >&2
	exit 1
fi

# Reuse the committed baseline unless asked to reset (or none exists).
# The baseline keeps its own benchtime stamp: reusing it must not relabel
# its provenance with the current run's BENCHTIME.
baseline=""
baseline_benchtime="$BENCHTIME"
if [ "$SET_BASELINE" -eq 0 ] && [ -f "$BENCH_OUT" ]; then
	prior="$(sed -n 's/.*"baseline_benchtime": *"\([^"]*\)".*/\1/p' "$BENCH_OUT")"
	[ -z "$prior" ] && prior="$(sed -n 's/.*"benchtime": *"\([^"]*\)".*/\1/p' "$BENCH_OUT" | head -1)"
	[ -n "$prior" ] && baseline_benchtime="$prior"
	baseline="$(awk '
		/"baseline":/ { inb = 1; next }
		inb && /^  \}/ { inb = 0 }
		inb && /"Benchmark/ {
			line = $0
			gsub(/[",:{}]/, " ", line)
			n = split(line, f, /[ \t]+/)
			name = ""; ns = ""; bytes = ""; allocs = ""; steals = "-"; entities = "-"
			for (i = 1; i <= n; i++) {
				if (f[i] ~ /^Benchmark/)   name = f[i]
				if (f[i] == "ns_op")       ns = f[i+1]
				if (f[i] == "bytes_op")    bytes = f[i+1]
				if (f[i] == "allocs_op")   allocs = f[i+1]
				if (f[i] == "steals_op")   steals = f[i+1]
				if (f[i] == "entities_op") entities = f[i+1]
			}
			if (name != "") print name, ns, bytes, allocs, steals, entities
		}' "$BENCH_OUT")"
fi
[ -z "$baseline" ] && baseline="$current"

emit_section() { # $1 = "name ns bytes allocs steals entities" lines; "-" columns omitted
	printf '%s\n' "$1" | awk '
		{
			extra = ""
			if (NF >= 5 && $5 != "-") extra = extra sprintf(", \"steals_op\": %s", $5)
			if (NF >= 6 && $6 != "-") extra = extra sprintf(", \"entities_op\": %s", $6)
			lines[NR] = sprintf("    \"%s\": {\"ns_op\": %s, \"bytes_op\": %s, \"allocs_op\": %s%s}", $1, $2, $3, $4, extra)
		}
		END { for (i = 1; i <= NR; i++) printf "%s%s\n", lines[i], (i < NR ? "," : "") }'
}

{
	echo '{'
	echo "  \"benchtime\": \"$BENCHTIME\","
	echo "  \"baseline_benchtime\": \"$baseline_benchtime\","
	echo '  "baseline": {'
	emit_section "$baseline"
	echo '  },'
	echo '  "current": {'
	emit_section "$current"
	echo '  }'
	echo '}'
} >"$BENCH_OUT"
echo "wrote $BENCH_OUT"

# Report the headline delta this file exists to track.
printf '%s\n' "$baseline" | awk 'NR==FNR { base[$1] = $4; next }
	($1 in base) && base[$1] > 0 {
		printf "%-36s allocs/op %8s -> %8s  (%+.1f%%)\n",
			$1, base[$1], $4, 100 * ($4 - base[$1]) / base[$1]
	}' - <(printf '%s\n' "$current")
