// Command experiments regenerates every table and figure of the paper's
// evaluation (Section V) on the simulated testbed — 8 nodes × 2 Pentium III
// CPUs, 100 Mbit Ethernet, a 3000×3000 scene:
//
//	experiments -fig 5f   Fig. 5 (left):  runtime vs tokens, factoring
//	experiments -fig 5b   Fig. 5 (right): runtime vs tokens, block
//	experiments -fig 6    Fig. 6 (left):  absolute runtimes, 1–8 nodes
//	experiments -fig 6s   Fig. 6 (right): speed-up vs MPI 2 proc/node
//	experiments -fig all  everything
//
// Each table prints the simulated value next to the paper's published
// value where one exists. With -live, a reduced-size wall-clock run of the
// real runtime is executed as well (shape only; the host is not the
// paper's cluster).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"snet/internal/raytrace"
	"snet/internal/simnet"
	"snet/internal/snetray"
)

// paperFig6 holds the published Fig. 6 (left) values, in seconds.
var paperFig6 = map[int]map[string]float64{
	1: {"S-Net Static": 941.87, "S-Net Static 2CPU": 829.74, "MPI": 650.99, "MPI 2 Proc/Node": 401.80, "S-Net Best Dynamic": 953.18},
	2: {"S-Net Static": 402.75, "S-Net Static 2CPU": 329.14, "MPI": 405.95, "MPI 2 Proc/Node": 211.77, "S-Net Best Dynamic": 228.52},
	4: {"S-Net Static": 217.97, "S-Net Static 2CPU": 204.23, "MPI": 213.43, "MPI 2 Proc/Node": 139.00, "S-Net Best Dynamic": 119.77},
	6: {"S-Net Static": 158.58, "S-Net Static 2CPU": 143.33, "MPI": 163.83, "MPI 2 Proc/Node": 105.61, "S-Net Best Dynamic": 76.39},
	8: {"S-Net Static": 132.66, "S-Net Static 2CPU": 121.99, "MPI": 136.23, "MPI 2 Proc/Node": 87.01, "S-Net Best Dynamic": 61.84},
}

func main() {
	var (
		fig  = flag.String("fig", "all", "5f|5b|6|6s|all")
		live = flag.Bool("live", false, "also run reduced-size wall-clock variants on the real runtime")
		h    = flag.Int("rows", 3000, "simulated image height")
	)
	flag.Parse()

	profile := simnet.PaperRowProfile(*h)

	switch *fig {
	case "5f":
		fig5(profile, true)
	case "5b":
		fig5(profile, false)
	case "6":
		fig6(profile)
	case "6s":
		fig6speedup(profile)
	case "all":
		fig5(profile, true)
		fmt.Println()
		fig5(profile, false)
		fmt.Println()
		fig6(profile)
		fmt.Println()
		fig6speedup(profile)
	default:
		fmt.Fprintln(os.Stderr, "unknown -fig; want 5f|5b|6|6s|all")
		os.Exit(2)
	}

	if *live {
		fmt.Println()
		liveRuns()
	}
}

func fig5(profile []float64, factoring bool) {
	name := "Fig. 5 (right): 8 Nodes, Block Scheduling"
	if factoring {
		name = "Fig. 5 (left): 8 Nodes, Simple Factoring Scheduling"
	}
	fmt.Println(name)
	fmt.Println("runtime in seconds; rows = tasks, columns = tokens")
	fmt.Printf("%9s", "")
	for _, tok := range simnet.PaperTaskTokenCounts {
		fmt.Printf(" %8d", tok)
	}
	fmt.Println()
	pts, err := simnet.Fig5(profile, factoring, simnet.PaperTaskTokenCounts, simnet.PaperTaskTokenCounts)
	if err != nil {
		log.Fatal(err)
	}
	i := 0
	for _, tasks := range simnet.PaperTaskTokenCounts {
		fmt.Printf("%2d tasks ", tasks)
		for range simnet.PaperTaskTokenCounts {
			fmt.Printf(" %8.2f", pts[i].Runtime)
			i++
		}
		fmt.Println()
	}
}

func fig6(profile []float64) {
	fmt.Println("Fig. 6 (left): Absolute Runtimes on 1 - 8 Nodes (seconds, simulated vs paper)")
	rows, err := simnet.Fig6(profile, simnet.PaperNodeCounts)
	if err != nil {
		log.Fatal(err)
	}
	variants := []string{"S-Net Static", "S-Net Static 2CPU", "MPI", "MPI 2 Proc/Node", "S-Net Best Dynamic"}
	fmt.Printf("%-20s", "")
	for _, n := range simnet.PaperNodeCounts {
		fmt.Printf(" %7d Node", n)
	}
	fmt.Println()
	value := func(r simnet.Fig6Row, v string) float64 {
		switch v {
		case "S-Net Static":
			return r.SNetStatic
		case "S-Net Static 2CPU":
			return r.SNetStatic2
		case "MPI":
			return r.MPI
		case "MPI 2 Proc/Node":
			return r.MPI2
		default:
			return r.BestDynamic
		}
	}
	for _, v := range variants {
		fmt.Printf("%-20s", v)
		for _, r := range rows {
			fmt.Printf(" %12.2f", value(r, v))
		}
		fmt.Println()
		fmt.Printf("%-20s", "  (paper)")
		for _, r := range rows {
			fmt.Printf(" %12.2f", paperFig6[r.Nodes][v])
		}
		fmt.Println()
	}
}

func fig6speedup(profile []float64) {
	fmt.Println("Fig. 6 (right): Speed-Up vs. MPI 2 Processes/Node (simulated, paper in parens)")
	rows, err := simnet.Fig6(profile, simnet.PaperNodeCounts)
	if err != nil {
		log.Fatal(err)
	}
	sp := simnet.Fig6Speedup(rows)
	paper := map[int][2]float64{ // static2, dynamic — derived from paper Fig. 6 left
		1: {401.80 / 829.74, 401.80 / 953.18},
		2: {211.77 / 329.14, 211.77 / 228.52},
		4: {139.00 / 204.23, 139.00 / 119.77},
		6: {105.61 / 143.33, 105.61 / 76.39},
		8: {87.01 / 121.99, 87.01 / 61.84},
	}
	fmt.Printf("%6s %24s %26s\n", "nodes", "S-Net Static 2CPU", "S-Net Best Dynamic")
	for _, s := range sp {
		p := paper[s.Nodes]
		fmt.Printf("%6d %12.2f (%.2f) %18.2f (%.2f)\n",
			s.Nodes, s.Static2CPU, p[0], s.BestDynamic, p[1])
	}
}

// liveRuns executes the real runtime variants at reduced scale for a
// wall-clock sanity check of the coordination code paths.
func liveRuns() {
	const w, hh = 192, 144
	scene := raytrace.UnbalancedScene(150, 2010)
	fmt.Printf("live runs (real runtime, %dx%d, 4 nodes x 2 CPUs, host has %d core(s)):\n",
		w, hh, runtime.NumCPU())
	run := func(label string, cfg snetray.Config) {
		start := time.Now()
		if _, err := snetray.Render(cfg); err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("  %-22s %v\n", label, time.Since(start).Round(time.Millisecond))
	}
	base := snetray.Config{Scene: scene, W: w, H: hh, Nodes: 4, CPUs: 2}
	s := base
	s.Mode, s.Tasks = snetray.Static, 4
	run("S-Net Static", s)
	s2 := base
	s2.Mode, s2.Tasks = snetray.Static2CPU, 8
	run("S-Net Static 2CPU", s2)
	d := base
	d.Mode, d.Tasks, d.Tokens = snetray.Dynamic, 32, 8
	run("S-Net Dynamic", d)
}
