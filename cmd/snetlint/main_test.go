package main

import (
	"bytes"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// repoRoot resolves the module root from this file's location, so the
// test is independent of the working directory `go test` chose.
func repoRoot(t *testing.T) string {
	t.Helper()
	_, thisFile, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Join(filepath.Dir(thisFile), "..", "..")
}

// Seeding violations of every invariant into an overlay tree must make
// snetlint exit nonzero, naming each analyzer at least once.
func TestSeededBadTreeExitsNonzero(t *testing.T) {
	overlay := filepath.Join(repoRoot(t), "internal", "analysis", "testdata", "bad", "src")
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-dir", repoRoot(t),
		"-overlay", overlay,
		"snet/internal/core", "snet/internal/wire", "snet/internal/stream", "hot",
	}, &stdout, &stderr)
	if code != 2 {
		t.Fatalf("exit code = %d, want 2\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	for _, name := range []string{"doneselect", "wallclock", "codeclock", "symhot"} {
		if !strings.Contains(stdout.String(), "["+name+"]") {
			t.Errorf("seeded-bad tree produced no %s diagnostic:\n%s", name, stdout.String())
		}
	}
}

// -list must enumerate the suite without loading any packages.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit code = %d, want 0\nstderr:\n%s", code, stderr.String())
	}
	for _, name := range []string{"doneselect", "wallclock", "codeclock", "symhot"} {
		if !strings.Contains(stdout.String(), name+":") {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}
