// Command snetlint runs the repository's invariant analyzers (see
// internal/analysis and docs/invariants.md) over the packages matching
// the given patterns, multichecker-style. It is run alongside `go vet`
// by scripts/lint.sh and the CI Lint step.
//
// Usage:
//
//	snetlint [-dir d] [-overlay d] [-list] [packages...]
//
// Patterns default to ./... . Exit status: 0 clean, 1 load or internal
// failure, 2 diagnostics reported.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"snet/internal/analysis"
	"snet/internal/analysis/framework"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("snetlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "working directory for package resolution (default: current directory)")
	overlay := fs.String("overlay", "", "overlay root: <dir>/<import path>/ provides package sources, bypassing go list (used by fixture tests)")
	list := fs.Bool("list", false, "list the analyzers and their contracts, then exit")
	if err := fs.Parse(args); err != nil {
		return 1
	}
	if *list {
		for _, a := range analysis.All() {
			fmt.Fprintf(stdout, "%s: %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	ld := &framework.Loader{Dir: *dir, Overlay: *overlay}
	diags, err := framework.RunAnalyzers(ld, patterns, analysis.All())
	if err != nil {
		fmt.Fprintf(stderr, "snetlint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s: %s [%s]\n", d.Pos, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "snetlint: %d invariant violation(s)\n", len(diags))
		return 2
	}
	return 0
}
