// Command snetd is the S-Net worker daemon — and, for turnkey demos, the
// coordinator. A worker joins a coordinator over TCP, registers its box
// table, and executes remote box calls inside its CPU-slot gate until the
// coordinator says goodbye:
//
//	snetd -connect 127.0.0.1:7464
//
// A worker that loses its coordinator redials with jittered exponential
// backoff (disable with -reconnect=false), presenting its node id so the
// coordinator can splice it back into the running network; when the
// -max-retries budget of consecutive failures runs out it exits with
// code 3 so a supervisor can distinguish "coordinator vanished" from a
// local failure.
//
// A coordinator listens, waits for its workers, runs a demo program, and
// shuts the fleet down:
//
//	snetd -coordinate -listen 127.0.0.1:7464 -workers 2 -app pipeline
//
// Both roles must be launched with the same application flags (scene spec,
// -fuse-delay, -scale): a worker's box bodies and value codecs have to
// match what the coordinator's network expects, and the scene-spec
// extension rejects a mismatched fleet at decode time.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"snet/internal/snetray"
	"snet/internal/wire"
	"snet/internal/wireapp"
)

// Exit codes: 1 is any fatal error, 2 is usage, exitRetriesExhausted means
// the coordinator vanished and the reconnect budget ran out — distinct so
// a supervisor can tell "restart me near a live coordinator" from "my own
// run failed".
const exitRetriesExhausted = 3

func main() {
	var (
		connect     = flag.String("connect", "", "worker mode: coordinator address to join")
		coordinate  = flag.Bool("coordinate", false, "coordinator mode: listen, run -app, shut down")
		listen      = flag.String("listen", "127.0.0.1:0", "coordinator listen address")
		workers     = flag.Int("workers", 2, "coordinator: worker processes to wait for")
		cpus        = flag.Int("cpus", 1, "CPU slots per node")
		joinTimeout = flag.Duration("join-timeout", 30*time.Second, "coordinator: how long to wait for workers")
		app         = flag.String("app", "all", "pipeline|raytrace|all: box table (worker) or program to run (coordinator; 'all' runs pipeline)")
		seqs        = flag.Int("seqs", 8, "pipeline: sensor sequences")
		fuseDelay   = flag.Duration("fuse-delay", 20*time.Millisecond, "pipeline: fuse compute time per reading")
		w           = flag.Int("w", 160, "raytrace: image width")
		h           = flag.Int("h", 120, "raytrace: image height")
		tasks       = flag.Int("tasks", 8, "raytrace: sections")
		scale       = flag.Int("scale", 0, "raytrace: solver cost scale")
		nobj        = flag.Int("objects", 60, "raytrace: spheres in the scene")
		seed        = flag.Int64("seed", 2010, "raytrace: scene seed")
		unbal       = flag.Bool("unbalanced", true, "raytrace: use the unbalanced scene")
		reconnect   = flag.Bool("reconnect", true, "worker: redial a lost coordinator with jittered backoff")
		maxRetries  = flag.Int("max-retries", 5, "worker: consecutive failed reconnect attempts before giving up")
		quiet       = flag.Bool("q", false, "suppress progress logging")
	)
	flag.Parse()

	logf := log.New(os.Stderr, "snetd: ", 0).Printf
	if *quiet {
		logf = func(string, ...any) {}
	}
	spec := wireapp.SceneSpec{Unbalanced: *unbal, Objects: *nobj, Seed: *seed}
	ext := wireapp.RaytraceExt(spec)

	switch {
	case *connect != "":
		wk := wire.NewWorker(wire.WorkerConfig{Ext: ext, AdvertiseCPUs: *cpus, Logf: logf})
		if *app == "pipeline" || *app == "all" {
			for name, fn := range wireapp.PipelineWorkerBoxes(*fuseDelay) {
				wk.Register(name, fn)
			}
		}
		if *app == "raytrace" || *app == "all" {
			for name, fn := range snetray.WorkerBoxes(*scale) {
				wk.Register(name, fn)
			}
		}
		var err error
		if *reconnect {
			err = wk.RunLoop(*connect, *maxRetries)
		} else {
			err = wk.Run(*connect)
		}
		if errors.Is(err, wire.ErrRetriesExhausted) {
			log.Printf("giving up: %v", err)
			os.Exit(exitRetriesExhausted)
		}
		if err != nil {
			log.Fatal(err)
		}

	case *coordinate:
		cl, err := wire.Listen(*listen, wire.CoordinatorConfig{
			Workers: *workers, CPUsPerNode: *cpus, Ext: ext, JoinTimeout: *joinTimeout,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		fmt.Printf("listening on %s\n", cl.Addr())
		if err := cl.WaitReady(); err != nil {
			log.Fatal(err)
		}
		for _, line := range cl.Workers() {
			logf("%s", line)
		}
		if *app == "raytrace" {
			runRaytrace(cl, spec, *w, *h, *workers+1, *cpus, *tasks, *scale)
		} else {
			runPipeline(cl, *seqs, *fuseDelay)
		}
		if err := cl.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Println("shutdown clean")

	default:
		fmt.Fprintln(os.Stderr, "snetd: need -connect ADDR (worker) or -coordinate (coordinator)")
		flag.Usage()
		os.Exit(2)
	}
}

// runPipeline runs the sensor-fusion pipeline across the fleet and checks
// its arithmetic against the sequential expectation.
func runPipeline(cl *wire.Cluster, seqs int, delay time.Duration) {
	res, err := wireapp.RunPipeline(cl, seqs, delay)
	if err != nil {
		log.Fatal(err)
	}
	want := wireapp.ExpectedPipelineSum(seqs)
	if res.Readings != seqs || res.Sum != want {
		log.Fatalf("pipeline: %d readings sum %d, want %d readings sum %d",
			res.Readings, res.Sum, seqs, want)
	}
	ws := cl.WireStats()
	fmt.Printf("pipeline: %d readings, sum %d (ok), steals %d, remote %d local %d execs, wire %d B out / %d B in\n",
		res.Readings, res.Sum, res.Stats.Steals, ws.RemoteExecs, ws.LocalExecs,
		ws.BytesSent, ws.BytesRecv)
}

// runRaytrace renders the scene across the fleet and verifies the image
// against an in-process sequential-platform render — pixel identity is the
// "same program, different platform" claim, checked.
func runRaytrace(cl *wire.Cluster, spec wireapp.SceneSpec, w, h, nodes, cpus, tasks, scale int) {
	cfg := snetray.Config{
		Scene: spec.Build(), W: w, H: h,
		Nodes: nodes, CPUs: cpus, Tasks: tasks,
		Mode: snetray.DynamicSteal, SolveScale: scale,
	}
	distCfg := cfg
	distCfg.Platform = cl
	// Announced before the render starts so harnesses (scripts/chaos-smoke.sh)
	// can time their faults to land mid-flight.
	fmt.Printf("rendering %dx%d in %d tasks\n", w, h, tasks)
	res, err := snetray.Render(distCfg)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := snetray.Render(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if !res.Image.Equal(ref.Image) {
		log.Fatal("raytrace: distributed image differs from in-process render")
	}
	ws := cl.WireStats()
	fmt.Printf("raytrace: %dx%d pixel-identical across %d processes, steals %d, remote %d local %d execs, failovers %d, rejoins %d, wire %d B out / %d B in\n",
		w, h, ws.LiveWorkers+1, res.Cluster.Steals, ws.RemoteExecs, ws.LocalExecs,
		ws.Failovers, ws.Rejoins, ws.BytesSent, ws.BytesRecv)
}
