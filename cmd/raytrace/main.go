// Command raytrace renders a procedural scene with any of the paper's
// implementation variants and reports timing and traffic statistics:
//
//	-engine seq           sequential reference renderer
//	-engine mpi           the paper's MPI baseline (block distribution)
//	-engine mpi-mw        MPI master/worker (dynamic ablation baseline)
//	-engine snet-static   Fig. 2 static fork–join S-Net
//	-engine snet-static2  Section V (solver!<cpu>)!@<node> variant
//	-engine snet-dynamic  Fig. 4 token-based dynamic S-Net
//	-engine snet-steal    load-aware scheduling: untagged sections placed
//	                      least-loaded at dispatch time, queued solves
//	                      migrating to idle nodes (work stealing)
//	-engine snet-dist     the snet-steal design across OS processes: a TCP
//	                      coordinator that waits for -workers snetd worker
//	                      processes, ships solver calls to them, and checks
//	                      the image pixel-identical to an in-process render
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"path/filepath"
	"time"

	"snet/internal/core"
	"snet/internal/dist"
	"snet/internal/journal"
	"snet/internal/mpi"
	"snet/internal/mpiray"
	"snet/internal/raytrace"
	"snet/internal/sched"
	"snet/internal/snetray"
	"snet/internal/wire"
	"snet/internal/wireapp"
)

func main() {
	var (
		engine  = flag.String("engine", "snet-static", "seq|mpi|mpi-mw|snet-static|snet-static2|snet-dynamic|snet-steal|snet-dist")
		listen  = flag.String("listen", "127.0.0.1:7464", "snet-dist: coordinator listen address")
		nwork   = flag.Int("workers", 2, "snet-dist: snetd worker processes to wait for")
		w       = flag.Int("w", 320, "image width")
		h       = flag.Int("h", 240, "image height")
		nodes   = flag.Int("nodes", 4, "cluster nodes")
		cpus    = flag.Int("cpus", 2, "CPU slots per node")
		tasks   = flag.Int("tasks", 16, "sections")
		tokens  = flag.Int("tokens", 8, "node tokens (snet-dynamic)")
		pol     = flag.String("policy", "block", "block|factoring (snet-dynamic, mpi-mw)")
		nobj    = flag.Int("objects", 150, "spheres in the scene")
		seed    = flag.Int64("seed", 2010, "scene seed")
		unbal   = flag.Bool("unbalanced", true, "use the unbalanced scene")
		outFile = flag.String("o", "", "output image (.png or .ppm)")
		timeout = flag.Duration("timeout", 0, "abort the render after this long (snet engines; 0 = no limit)")
		jdir    = flag.String("journal", "", "snet engines: durable ingress journal directory — the render input is fsynced to disk before rendering and acknowledged on completion, so a killed render can be replayed with -recover")
		doRec   = flag.Bool("recover", false, "with -journal: replay an unacknowledged (crashed) render from the journal instead of starting fresh")
	)
	flag.Parse()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var scene *raytrace.Scene
	if *unbal {
		scene = raytrace.UnbalancedScene(*nobj, *seed)
	} else {
		scene = raytrace.BalancedScene(*nobj, *seed)
	}

	spans := func() []sched.Span {
		if *pol == "factoring" {
			s, err := sched.PaperFactoring(*h, *tasks)
			if err != nil {
				log.Fatal(err)
			}
			return s
		}
		return sched.Block(*h, *tasks)
	}

	start := time.Now()
	var img *raytrace.Image
	switch *engine {
	case "seq":
		img, _ = raytrace.Render(scene, *w, *h)

	case "mpi":
		cluster := dist.NewCluster(*nodes, *cpus)
		var err error
		var mstats mpi.Stats
		img, mstats, err = mpiray.RenderStatic(scene, *w, *h,
			mpiray.Options{Procs: *nodes * *cpus, Cluster: cluster})
		if err != nil {
			log.Fatal(err)
		}
		defer fmt.Printf("mpi traffic: %d messages, %.1f KiB\n",
			mstats.Messages, float64(mstats.Bytes)/1024)

	case "mpi-mw":
		cluster := dist.NewCluster(*nodes, *cpus)
		var err error
		img, _, err = mpiray.RenderMasterWorker(scene, *w, *h, spans(),
			mpiray.Options{Procs: *nodes**cpus + 1, Cluster: cluster})
		if err != nil {
			log.Fatal(err)
		}

	case "snet-static", "snet-static2", "snet-dynamic", "snet-steal":
		cfg := snetray.Config{
			Scene: scene, W: *w, H: *h,
			Nodes: *nodes, CPUs: *cpus, Tasks: *tasks, Tokens: *tokens,
		}
		switch *engine {
		case "snet-static":
			cfg.Mode = snetray.Static
			cfg.Tasks = *nodes
		case "snet-static2":
			cfg.Mode = snetray.Static2CPU
			cfg.Tasks = *nodes * *cpus
		case "snet-steal":
			cfg.Mode = snetray.DynamicSteal
			if *pol == "factoring" {
				cfg.Policy = snetray.FactoringPolicy
			}
		default:
			cfg.Mode = snetray.Dynamic
			if *pol == "factoring" {
				cfg.Policy = snetray.FactoringPolicy
			}
		}
		if *jdir != "" {
			// The journal ships the scene by spec, so the render must use
			// the spec's cached instance — like the multi-process engine.
			spec := wireapp.SceneSpec{Unbalanced: *unbal, Objects: *nobj, Seed: *seed}
			cfg.Scene = spec.Build()
			cfg.Durability = &core.Durability{
				Dir: *jdir, Fsync: journal.FsyncAlways, Ext: wireapp.RaytraceExt(spec),
			}
			cfg.Recover = *doRec
		}
		res, err := snetray.RenderContext(ctx, cfg)
		if err != nil {
			// A deadline abort reclaims the whole network (no goroutine
			// or cluster-slot leaks); report it as an ordinary outcome.
			log.Fatal(err)
		}
		img = res.Image
		if *jdir != "" {
			fmt.Printf("journal: recovered %d input(s), %d dead letter(s)\n",
				res.Recovered, len(res.DeadLetters))
		}
		defer fmt.Printf("cluster: %d transfers, %.1f KiB, execs/node %v, %d steals (%d sections migrated)\n",
			res.Cluster.Transfers, float64(res.Cluster.Bytes)/1024, res.Cluster.Execs,
			res.Cluster.Steals, res.Cluster.Migrated)

	case "snet-dist":
		// The multi-process variant cannot use the scene built above: the
		// wire extension ships scenes by spec, so the render must use the
		// spec's cached instance — and every snetd worker must be launched
		// with the same -objects/-seed/-unbalanced flags.
		spec := wireapp.SceneSpec{Unbalanced: *unbal, Objects: *nobj, Seed: *seed}
		ccfg := wire.CoordinatorConfig{
			Workers: *nwork, CPUsPerNode: *cpus, Ext: wireapp.RaytraceExt(spec),
		}
		if *jdir != "" {
			// The exec journal (dispatched-but-uncompleted solver calls)
			// lives beside the ingress journal, not in it.
			ccfg.JournalDir = filepath.Join(*jdir, "wire")
		}
		cl, err := wire.Listen(*listen, ccfg)
		if err != nil {
			log.Fatal(err)
		}
		defer cl.Close()
		if n := len(cl.Orphans()); n > 0 {
			fmt.Printf("wire: exec journal holds %d orphaned dispatch(es) from a previous coordinator\n", n)
		}
		fmt.Printf("waiting for %d workers on %s  (launch: snetd -connect %s -app raytrace -objects %d -seed %d -unbalanced=%v)\n",
			*nwork, cl.Addr(), cl.Addr(), *nobj, *seed, *unbal)
		if err := cl.WaitReady(); err != nil {
			log.Fatal(err)
		}
		start = time.Now() // exclude the join wait from the render time
		cfg := snetray.Config{
			Scene: spec.Build(), W: *w, H: *h,
			Nodes: *nwork + 1, CPUs: *cpus, Tasks: *tasks,
			Mode: snetray.DynamicSteal, Platform: cl,
		}
		if *pol == "factoring" {
			cfg.Policy = snetray.FactoringPolicy
		}
		if *jdir != "" {
			cfg.Durability = &core.Durability{
				Dir: *jdir, Fsync: journal.FsyncAlways, Ext: wireapp.RaytraceExt(spec),
			}
			cfg.Recover = *doRec
		}
		res, err := snetray.RenderContext(ctx, cfg)
		if err != nil {
			log.Fatal(err)
		}
		img = res.Image
		defer func() {
			ws := cl.WireStats()
			fmt.Printf("cluster: %d transfers, %.1f KiB (model), execs/node %v, %d steals (%d migrated)\n",
				res.Cluster.Transfers, float64(res.Cluster.Bytes)/1024, res.Cluster.Execs,
				res.Cluster.Steals, res.Cluster.Migrated)
			fmt.Printf("wire: %d workers, %d remote / %d local execs (%d stolen), %.1f KiB out, %.1f KiB in\n",
				ws.LiveWorkers, ws.RemoteExecs, ws.LocalExecs, ws.StolenExecs,
				float64(ws.BytesSent)/1024, float64(ws.BytesRecv)/1024)
			cl.Close()
		}()

	default:
		log.Fatalf("unknown engine %q", *engine)
	}
	elapsed := time.Since(start)

	fmt.Printf("%s: %dx%d in %v\n", *engine, *w, *h, elapsed.Round(time.Millisecond))
	if *outFile != "" {
		if err := img.SaveFile(*outFile); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *outFile)
	}
}
