// Command snetc is the S-Net front-end driver: it parses S-Net source,
// reports syntax errors with positions, infers and prints network type
// signatures, and renders the compiled network structure. Box
// implementations are stubbed, so snetc checks coordination code without
// the box bodies — the separation of concerns the paper advocates.
//
// Usage:
//
//	snetc file.snet            parse, check and describe every net
//	snetc -expr 'a .. (b|[])'  parse a bare connect expression
//	snetc -ast file.snet       additionally pretty-print the parsed AST
package main

import (
	"flag"
	"fmt"
	"os"

	"snet"
	"snet/internal/lang"
)

func main() {
	var (
		exprSrc = flag.String("expr", "", "parse a standalone connect expression instead of a file")
		showAST = flag.Bool("ast", false, "pretty-print the parsed declarations")
	)
	flag.Parse()

	if *exprSrc != "" {
		e, err := snet.ParseExpr(*exprSrc)
		if err != nil {
			fail(err)
		}
		fmt.Println(e)
		return
	}

	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: snetc [-ast] file.snet | snetc -expr 'a .. b'")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := snet.Parse(string(src))
	if err != nil {
		fail(err)
	}
	if *showAST {
		for _, def := range prog.Defs {
			fmt.Println(def)
		}
		fmt.Println()
	}

	// Compile with stub boxes: every declared box gets a no-op body, so
	// the coordination layer can be checked without application code.
	reg := snet.NewRegistry()
	registerStubs(prog, reg)
	res, err := snet.CompileProgram(prog, reg)
	if err != nil {
		fail(err)
	}
	for _, w := range res.Warnings {
		fmt.Printf("warning: %s\n", w)
	}
	for _, def := range prog.Defs {
		nd, ok := def.(*lang.NetDecl)
		if !ok {
			continue
		}
		ent, ok := res.Net(nd.Name)
		if !ok {
			continue
		}
		fmt.Printf("net %s :: %s\n", nd.Name, ent.Signature())
		fmt.Print(ent.Describe())
	}
}

// registerStubs walks all declarations (including nested ones) and
// registers a no-op implementation for every declared box, plus identity
// networks for signature-only net declarations that are not defined in the
// same file.
func registerStubs(prog *snet.Program, reg *snet.Registry) {
	defined := map[string]bool{}
	var collectDefined func(defs []lang.Def)
	collectDefined = func(defs []lang.Def) {
		for _, def := range defs {
			if nd, ok := def.(*lang.NetDecl); ok {
				if len(nd.SigOnly) == 0 {
					defined[nd.Name] = true
					collectDefined(nd.Decls)
				}
			}
		}
	}
	collectDefined(prog.Defs)

	var walk func(defs []lang.Def)
	walk = func(defs []lang.Def) {
		for _, def := range defs {
			switch d := def.(type) {
			case *lang.BoxDecl:
				reg.RegisterBox(d.Name, func(c *snet.BoxCall) error { return nil })
			case *lang.NetDecl:
				if len(d.SigOnly) > 0 && !defined[d.Name] {
					reg.RegisterNet(d.Name, snet.Identity())
				}
				walk(d.Decls)
			}
		}
	}
	walk(prog.Defs)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "snetc:", err)
	os.Exit(1)
}
