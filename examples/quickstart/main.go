// Command quickstart is the smallest complete S-Net program: two boxes
// composed serially with a filter, compiled from source text and run over a
// handful of records. It demonstrates records, flow inheritance and the
// compile-from-source workflow.
package main

import (
	"fmt"
	"log"

	"snet"
)

const source = `
net quickstart
{
    box greet ( (name) -> (greeting) );
    box shout ( (greeting) -> (message) );
} connect
    greet .. shout .. [ {<count>} -> {<count += 1>} ];
`

func main() {
	reg := snet.NewRegistry()
	reg.RegisterBox("greet", func(c *snet.BoxCall) error {
		name := c.Field("name").(string)
		c.Emit(snet.NewRecord().SetField("greeting", "hello, "+name))
		return nil
	})
	reg.RegisterBox("shout", func(c *snet.BoxCall) error {
		g := c.Field("greeting").(string)
		c.Emit(snet.NewRecord().SetField("message", g+"!"))
		return nil
	})

	res, err := snet.CompileSource(source, reg)
	if err != nil {
		log.Fatalf("compile: %v", err)
	}
	for _, w := range res.Warnings {
		fmt.Println("warning:", w)
	}
	ent, _ := res.Net("quickstart")
	fmt.Println("network structure:")
	fmt.Print(ent.Describe())

	net := snet.NewNetwork(ent, snet.Options{})
	outs, err := net.Run(
		// <count> rides along via flow inheritance and is incremented by
		// the filter at the end of the pipeline.
		snet.BuildRecord().F("name", "world").T("count", 0).Rec(),
		snet.BuildRecord().F("name", "s-net").T("count", 41).Rec(),
	)
	if err != nil {
		log.Fatalf("run: %v", err)
	}
	for _, r := range outs {
		msg, _ := r.Field("message")
		count, _ := r.Tag("count")
		fmt.Printf("message=%q count=%d\n", msg, count)
	}
}
