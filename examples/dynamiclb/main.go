// Command dynamiclb demonstrates the paper's dynamic load balancing
// (Fig. 4): an unbalanced scene — most objects clustered in one band of the
// image — is rendered twice on the same abstract cluster, once with the
// static fork–join network and once with the token-based dynamic network.
// The per-node busy times show the static schedule leaving most nodes idle
// while the dynamic schedule spreads the expensive band across the cluster.
//
// Expected output: a header line with the scene and cluster shape, one
// line per engine of the form
//
//	S-Net Static       123ms   busy/node:  95ms   2ms   1ms   1ms
//	S-Net Dynamic       45ms   busy/node:  25ms  24ms  23ms  24ms
//
// (wall time and per-node busy times vary with the host; the static
// render's busy times are skewed toward one node, the dynamic ones are
// even), then "static and dynamic renders are pixel-identical". On a
// render failure the command prints the number of runtime errors the
// coordination layer reported and the first errors, then exits non-zero.
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"snet/internal/raytrace"
	"snet/internal/snetray"
)

// describeErr renders a (possibly joined) runtime error as a count plus
// the first errors: Network.Run joins every error the instance's sink
// retained (Instance.ErrCount's view), so the unwrapped length is the
// retained error count.
func describeErr(err error) string {
	var joined interface{ Unwrap() []error }
	if errors.As(err, &joined) {
		errs := joined.Unwrap()
		first := errs[0]
		return fmt.Sprintf("%d runtime error(s); first: %v", len(errs), first)
	}
	return fmt.Sprintf("1 runtime error: %v", err)
}

func main() {
	var (
		w      = flag.Int("w", 256, "image width")
		h      = flag.Int("h", 192, "image height")
		nodes  = flag.Int("nodes", 4, "abstract cluster nodes")
		cpus   = flag.Int("cpus", 2, "CPU slots per node")
		tasks  = flag.Int("tasks", 16, "number of sections (dynamic)")
		tokens = flag.Int("tokens", 8, "node tokens in flight (dynamic)")
		nobj   = flag.Int("objects", 200, "spheres in the scene")
		seed   = flag.Int64("seed", 7, "scene seed")
		pol    = flag.String("policy", "factoring", "dynamic section policy: block|factoring")
		out    = flag.String("o", "", "optional output image (.png or .ppm)")
	)
	flag.Parse()

	scene := raytrace.UnbalancedScene(*nobj, *seed)
	policy := snetray.BlockPolicy
	if *pol == "factoring" {
		policy = snetray.FactoringPolicy
	}

	run := func(cfg snetray.Config) *snetray.Result {
		start := time.Now()
		res, err := snetray.Render(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: render failed: %s\n", cfg.Mode, describeErr(err))
			os.Exit(1)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-18s %8v   busy/node:", cfg.Mode, elapsed.Round(time.Millisecond))
		for _, b := range res.Cluster.Busy {
			fmt.Printf(" %7v", b.Round(time.Millisecond))
		}
		fmt.Println()
		return res
	}

	fmt.Printf("unbalanced scene, %dx%d, %d nodes x %d CPUs\n", *w, *h, *nodes, *cpus)
	staticRes := run(snetray.Config{
		Scene: scene, W: *w, H: *h,
		Nodes: *nodes, CPUs: *cpus, Tasks: *nodes,
		Mode: snetray.Static,
	})
	dynRes := run(snetray.Config{
		Scene: scene, W: *w, H: *h,
		Nodes: *nodes, CPUs: *cpus, Tasks: *tasks, Tokens: *tokens,
		Mode: snetray.Dynamic, Policy: policy,
	})

	if !staticRes.Image.Equal(dynRes.Image) {
		fmt.Fprintln(os.Stderr, "static and dynamic renders differ — coordination bug")
		os.Exit(1)
	}
	fmt.Println("static and dynamic renders are pixel-identical")
	if *out != "" {
		if err := dynRes.Image.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *out)
	}
}
