// Command dynamiclb demonstrates the paper's dynamic load balancing
// (Fig. 4): an unbalanced scene — most objects clustered in one band of the
// image — is rendered twice on the same abstract cluster, once with the
// static fork–join network and once with the token-based dynamic network.
// The per-node busy times show the static schedule leaving most nodes idle
// while the dynamic schedule spreads the expensive band across the cluster.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"snet/internal/raytrace"
	"snet/internal/snetray"
)

func main() {
	var (
		w      = flag.Int("w", 256, "image width")
		h      = flag.Int("h", 192, "image height")
		nodes  = flag.Int("nodes", 4, "abstract cluster nodes")
		cpus   = flag.Int("cpus", 2, "CPU slots per node")
		tasks  = flag.Int("tasks", 16, "number of sections (dynamic)")
		tokens = flag.Int("tokens", 8, "node tokens in flight (dynamic)")
		nobj   = flag.Int("objects", 200, "spheres in the scene")
		seed   = flag.Int64("seed", 7, "scene seed")
		pol    = flag.String("policy", "factoring", "dynamic section policy: block|factoring")
		out    = flag.String("o", "", "optional output image (.png or .ppm)")
	)
	flag.Parse()

	scene := raytrace.UnbalancedScene(*nobj, *seed)
	policy := snetray.BlockPolicy
	if *pol == "factoring" {
		policy = snetray.FactoringPolicy
	}

	run := func(cfg snetray.Config) *snetray.Result {
		start := time.Now()
		res, err := snetray.Render(cfg)
		if err != nil {
			log.Fatalf("%s: %v", cfg.Mode, err)
		}
		elapsed := time.Since(start)
		fmt.Printf("%-18s %8v   busy/node:", cfg.Mode, elapsed.Round(time.Millisecond))
		for _, b := range res.Cluster.Busy {
			fmt.Printf(" %7v", b.Round(time.Millisecond))
		}
		fmt.Println()
		return res
	}

	fmt.Printf("unbalanced scene, %dx%d, %d nodes x %d CPUs\n", *w, *h, *nodes, *cpus)
	staticRes := run(snetray.Config{
		Scene: scene, W: *w, H: *h,
		Nodes: *nodes, CPUs: *cpus, Tasks: *nodes,
		Mode: snetray.Static,
	})
	dynRes := run(snetray.Config{
		Scene: scene, W: *w, H: *h,
		Nodes: *nodes, CPUs: *cpus, Tasks: *tasks, Tokens: *tokens,
		Mode: snetray.Dynamic, Policy: policy,
	})

	if !staticRes.Image.Equal(dynRes.Image) {
		log.Fatal("static and dynamic renders differ — coordination bug")
	}
	fmt.Println("static and dynamic renders are pixel-identical")
	if *out != "" {
		if err := dynRes.Image.SaveFile(*out); err != nil {
			log.Fatal(err)
		}
		fmt.Println("wrote", *out)
	}
}
