// Command lifecycle demonstrates the network lifecycle beyond the full
// drain: deadline-bounded runs with Network.RunContext and streaming use of
// a long-lived Instance that is aborted mid-flight with Stop. Both paths
// reclaim every runtime goroutine — the program prints the goroutine count
// before and after to show nothing leaks, which is what lets a server embed
// S-Net networks per request.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"runtime"
	"time"

	"snet"
)

const source = `
net grind
{
    box crunch ( (job) -> (result) );
} connect crunch;
`

func main() {
	reg := snet.NewRegistry()
	reg.RegisterBox("crunch", func(c *snet.BoxCall) error {
		// A deliberately slow box: each job takes 10ms.
		time.Sleep(10 * time.Millisecond)
		c.Emit(snet.NewRecord().SetField("result", c.Field("job")))
		return nil
	})
	res, err := snet.CompileSource(source, reg)
	if err != nil {
		log.Fatal(err)
	}
	ent, _ := res.Net("grind")
	net := snet.NewNetwork(ent, snet.Options{})

	before := runtime.NumGoroutine()

	// 1. A deadline-bounded batch: 1000 jobs cannot finish in 50ms; the
	// context stops the instance, partial results come back, and the
	// error identifies both the deadline and the abort.
	var jobs []*snet.Record
	for i := 0; i < 1000; i++ {
		jobs = append(jobs, snet.NewRecord().SetField("job", i))
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	outs, err := net.RunContext(ctx, jobs...)
	cancel()
	fmt.Printf("bounded run: %d/1000 results, stopped=%v, deadline=%v\n",
		len(outs), errors.Is(err, snet.ErrStopped), errors.Is(err, context.DeadlineExceeded))

	// 2. A streaming instance aborted mid-flight: feed jobs with Send
	// (which can never block past a Stop), read a few results, then pull
	// the plug.
	inst := net.Start()
	go func() {
		for i := 0; ; i++ {
			if !inst.Send(snet.NewRecord().SetField("job", i)) {
				return // instance stopped; producer exits cleanly
			}
		}
	}()
	got := 0
	for range 3 {
		if r, ok := <-inst.Out; ok {
			_ = r
			got++
		}
	}
	if err := inst.Stop(); errors.Is(err, snet.ErrStopped) {
		fmt.Printf("streaming run: %d results consumed, then aborted\n", got)
	}

	// Give the runtime's last goroutines a beat to be descheduled, then
	// show that both aborted networks were fully reclaimed.
	time.Sleep(100 * time.Millisecond)
	fmt.Printf("goroutines: %d before, %d after\n", before, runtime.NumGoroutine())
}
