// Command pipeline shows S-Net coordination outside ray tracing: a sensor
// fusion pipeline. Two unsynchronized sensor streams (temperature and
// humidity readings, tagged with a sequence number) are paired per sequence
// number by a synchrocell inside an indexed split, fused into a single
// reading by a box, and routed by subtyping: readings flagged hot go
// through the alert box, everything else bypasses. The example exercises
// split !<tag>, synchrocells, type-driven choice and flow inheritance with
// no hand-written synchronization at all.
//
// Expected output (the scene is seeded, so it is deterministic): one line
// per sequence number 0..7 in order, either
//
//	seq N: reading R        — fused reading, not flagged hot
//	seq N: heat alarm: …    — fused reading above the alert threshold
//
// followed by a one-line traffic summary. On a runtime error the command
// prints the instance's error count and the first errors to stderr and
// exits non-zero; a healthy run reports "0 runtime errors".
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"

	"snet"
)

const source = `
net fusion
{
    box fuse  ( (temp, humid) -> (reading, <hot>) | (reading) );
    box alert ( (reading, <hot>) -> (alarm) );
} connect
    ( [| {temp}, {humid} |] .. fuse )!<seq> .. ( alert | [] );
`

func main() {
	reg := snet.NewRegistry()
	reg.RegisterBox("fuse", func(c *snet.BoxCall) error {
		t := c.Field("temp").(float64)
		h := c.Field("humid").(float64)
		// simplified heat index
		reading := t + 0.1*h
		out := snet.NewRecord().SetField("reading", reading)
		if reading > 30 {
			out.SetTag("hot", 1)
		}
		c.Emit(out)
		return nil
	})
	reg.RegisterBox("alert", func(c *snet.BoxCall) error {
		r := c.Field("reading").(float64)
		c.Emit(snet.NewRecord().SetField("alarm",
			fmt.Sprintf("heat alarm: index %.1f", r)))
		return nil
	})

	res, err := snet.CompileSource(source, reg)
	if err != nil {
		log.Fatal(err)
	}
	ent, _ := res.Net("fusion")
	net := snet.NewNetwork(ent, snet.Options{})

	// Two sensors emit readings out of order and interleaved; the
	// network pairs them purely by <seq>.
	rng := rand.New(rand.NewSource(42))
	const n = 8
	var inputs []*snet.Record
	for seq := 0; seq < n; seq++ {
		inputs = append(inputs,
			snet.BuildRecord().F("temp", 18+rng.Float64()*18).T("seq", seq).Rec(),
			snet.BuildRecord().F("humid", 30+rng.Float64()*60).T("seq", seq).Rec())
	}
	rng.Shuffle(len(inputs), func(i, j int) { inputs[i], inputs[j] = inputs[j], inputs[i] })

	// Drive the network through the streaming Instance API so the error
	// surface is visible: ErrCount counts every runtime error (unmatched
	// records, box failures), Err carries the first ones.
	inst := net.Start()
	go func() {
		for _, r := range inputs {
			if !inst.Send(r) {
				return
			}
		}
		close(inst.In)
	}()
	var outs []*snet.Record
	for r := range inst.Out {
		outs = append(outs, r)
	}
	if n := inst.ErrCount(); n > 0 {
		fmt.Fprintf(os.Stderr, "pipeline: %d runtime error(s); first errors:\n%v\n", n, inst.Err())
		os.Exit(1)
	}
	if len(outs) != n {
		fmt.Fprintf(os.Stderr, "pipeline: %d outputs, want %d (records lost without a reported error)\n", len(outs), n)
		os.Exit(1)
	}

	sort.Slice(outs, func(i, j int) bool {
		a, _ := outs[i].Tag("seq")
		b, _ := outs[j].Tag("seq")
		return a < b
	})
	for _, r := range outs {
		seq, _ := r.Tag("seq")
		if alarm, ok := r.Field("alarm"); ok {
			fmt.Printf("seq %d: %s\n", seq, alarm)
			continue
		}
		reading, _ := r.Field("reading")
		fmt.Printf("seq %d: reading %.1f\n", seq, reading)
	}
	fmt.Printf("%d readings fused, 0 runtime errors\n", len(outs))
}
