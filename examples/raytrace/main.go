// Command raytrace renders a procedural scene through the paper's static
// fork–join S-Net network (Fig. 2 with the Fig. 3 merger): the splitter
// divides the image into sections, solver instances placed per node via
// !@<node> render them, and the merger reassembles the picture, which is
// written to disk.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"snet/internal/raytrace"
	"snet/internal/snetray"
)

func main() {
	var (
		w      = flag.Int("w", 320, "image width")
		h      = flag.Int("h", 240, "image height")
		nodes  = flag.Int("nodes", 4, "abstract cluster nodes")
		cpus   = flag.Int("cpus", 2, "CPU slots per node")
		tasks  = flag.Int("tasks", 8, "number of sections")
		nobj   = flag.Int("objects", 120, "spheres in the scene")
		seed   = flag.Int64("seed", 2010, "scene seed")
		twoCPU = flag.Bool("2cpu", false, "use the (solver!<cpu>)!@<node> variant")
		out    = flag.String("o", "raytrace.png", "output file (.png or .ppm)")
	)
	flag.Parse()

	scene := raytrace.BalancedScene(*nobj, *seed)
	mode := snetray.Static
	if *twoCPU {
		mode = snetray.Static2CPU
	}
	cfg := snetray.Config{
		Scene: scene, W: *w, H: *h,
		Nodes: *nodes, CPUs: *cpus, Tasks: *tasks,
		Mode: mode,
	}
	start := time.Now()
	res, err := snetray.Render(cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	if err := res.Image.SaveFile(*out); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: rendered %dx%d with %d tasks on %d nodes in %v\n",
		mode, *w, *h, *tasks, *nodes, elapsed.Round(time.Millisecond))
	fmt.Printf("wrote %s\n", *out)
	fmt.Printf("cluster: %d records transferred (%.1f KiB), per-node box executions %v\n",
		res.Cluster.Transfers, float64(res.Cluster.Bytes)/1024, res.Cluster.Execs)
}
