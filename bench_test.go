// Benchmarks regenerating the paper's evaluation (one benchmark per figure
// panel), wall-clock counterparts on the real runtime at reduced scale, and
// ablation benches for the design decisions called out in DESIGN.md.
//
// Figure benches report the simulated makespan of the headline
// configuration as a custom metric (sim-seconds), so `go test -bench .`
// regenerates the paper's numbers alongside the usual ns/op.
package snet_test

import (
	"sync"
	"testing"
	"time"

	"snet"
	"snet/internal/dist"
	"snet/internal/geom"
	"snet/internal/mpiray"
	"snet/internal/raytrace"
	"snet/internal/sched"
	"snet/internal/simnet"
	"snet/internal/snetray"
	"snet/internal/wire"
	"snet/internal/wireapp"
)

// --- Figure 5: runtime vs token count on the simulated 8-node testbed ----

func benchFig5(b *testing.B, factoring bool) {
	profile := simnet.PaperRowProfile(3000)
	var pts []simnet.Fig5Point
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = simnet.Fig5(profile, factoring,
			simnet.PaperTaskTokenCounts, simnet.PaperTaskTokenCounts)
		if err != nil {
			b.Fatal(err)
		}
	}
	// Headline metrics: the paper's sweet spot (48 tasks, 16 tokens) and
	// the degenerate diagonal (48 tasks, 48 tokens).
	for _, pt := range pts {
		if pt.Tasks == 48 && pt.Tokens == 16 {
			b.ReportMetric(pt.Runtime, "simsec-48tasks-16tokens")
		}
		if pt.Tasks == 48 && pt.Tokens == 48 {
			b.ReportMetric(pt.Runtime, "simsec-48tasks-48tokens")
		}
	}
}

// BenchmarkFig5Factoring regenerates Fig. 5 (left): 8 nodes, simple
// factoring scheduling.
func BenchmarkFig5Factoring(b *testing.B) { benchFig5(b, true) }

// BenchmarkFig5Block regenerates Fig. 5 (right): 8 nodes, block scheduling.
func BenchmarkFig5Block(b *testing.B) { benchFig5(b, false) }

// --- Figure 6: absolute runtimes and speed-ups on 1–8 nodes --------------

// BenchmarkFig6Runtimes regenerates Fig. 6 (left): the five variants on
// 1–8 nodes.
func BenchmarkFig6Runtimes(b *testing.B) {
	profile := simnet.PaperRowProfile(3000)
	var rows []simnet.Fig6Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = simnet.Fig6(profile, simnet.PaperNodeCounts)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.MPI, "simsec-mpi-8n")
	b.ReportMetric(last.MPI2, "simsec-mpi2-8n")
	b.ReportMetric(last.SNetStatic, "simsec-static-8n")
	b.ReportMetric(last.SNetStatic2, "simsec-static2-8n")
	b.ReportMetric(last.BestDynamic, "simsec-dynamic-8n")
}

// BenchmarkFig6Speedup regenerates Fig. 6 (right): speed-up versus MPI with
// two processes per node.
func BenchmarkFig6Speedup(b *testing.B) {
	profile := simnet.PaperRowProfile(3000)
	var sp []simnet.SpeedupRow
	for i := 0; i < b.N; i++ {
		rows, err := simnet.Fig6(profile, simnet.PaperNodeCounts)
		if err != nil {
			b.Fatal(err)
		}
		sp = simnet.Fig6Speedup(rows)
	}
	b.ReportMetric(sp[len(sp)-1].BestDynamic, "speedup-dynamic-8n")
	b.ReportMetric(sp[len(sp)-1].Static2CPU, "speedup-static2-8n")
}

// --- Live counterparts: the real runtime at reduced scale ----------------

const (
	liveW, liveH = 128, 96
	liveObjects  = 100
	liveSeed     = 2010
)

func liveScene() *raytrace.Scene {
	return raytrace.UnbalancedScene(liveObjects, liveSeed)
}

// BenchmarkLiveSequential is the single-threaded reference kernel.
func BenchmarkLiveSequential(b *testing.B) {
	scene := liveScene()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raytrace.Render(scene, liveW, liveH)
	}
}

func benchLiveSNet(b *testing.B, mode snetray.Mode, tasks, tokens int, policy snetray.Policy) {
	scene := liveScene()
	b.ReportAllocs()
	var busy []time.Duration
	for i := 0; i < b.N; i++ {
		res, err := snetray.Render(snetray.Config{
			Scene: scene, W: liveW, H: liveH,
			Nodes: 4, CPUs: 2, Tasks: tasks, Tokens: tokens,
			Mode: mode, Policy: policy,
		})
		if err != nil {
			b.Fatal(err)
		}
		busy = accumBusy(busy, res.Cluster.Busy)
	}
	reportBusyImbalance(b, busy)
}

// accumBusy folds one render's per-node busy times into the benchmark's
// running totals, so reported metrics average over every iteration rather
// than sampling the last one.
func accumBusy(acc []time.Duration, busy []time.Duration) []time.Duration {
	if acc == nil {
		acc = make([]time.Duration, len(busy))
	}
	for i, d := range busy {
		acc[i] += d
	}
	return acc
}

// reportBusyImbalance reports max/mean per-node busy time, accumulated
// over all iterations — the scheduling signal that stays meaningful on
// hosts whose core count cannot physically parallelize the render (this
// container has one core, so ns/op of every live variant is pinned at
// roughly the sequential render time; see docs/performance.md,
// "Scheduling & placement"). 1.0 is a perfectly even load; nodes·1.0 is
// one node doing everything.
func reportBusyImbalance(b *testing.B, busy []time.Duration) {
	var total, max time.Duration
	for _, d := range busy {
		total += d
		if d > max {
			max = d
		}
	}
	if total > 0 {
		mean := total / time.Duration(len(busy))
		b.ReportMetric(float64(max)/float64(mean), "busy-imbalance")
	}
}

// BenchmarkLiveSNetStatic runs the Fig. 2 network end to end (parse,
// compile, render, merge) on a 4-node cluster platform.
func BenchmarkLiveSNetStatic(b *testing.B) {
	benchLiveSNet(b, snetray.Static, 4, 0, snetray.BlockPolicy)
}

// BenchmarkLiveSNetStatic2CPU runs the Section V two-solvers-per-node
// variant.
func BenchmarkLiveSNetStatic2CPU(b *testing.B) {
	benchLiveSNet(b, snetray.Static2CPU, 8, 0, snetray.BlockPolicy)
}

// BenchmarkLiveSNetDynamicBlock runs the Fig. 4 network with block
// scheduling.
func BenchmarkLiveSNetDynamicBlock(b *testing.B) {
	benchLiveSNet(b, snetray.Dynamic, 16, 8, snetray.BlockPolicy)
}

// BenchmarkLiveSNetDynamicFactoring runs the Fig. 4 network with the
// paper's simple factoring.
func BenchmarkLiveSNetDynamicFactoring(b *testing.B) {
	benchLiveSNet(b, snetray.Dynamic, 16, 8, snetray.FactoringPolicy)
}

// BenchmarkLiveMPIStatic runs the paper's message-passing baseline on the
// same cluster platform.
func BenchmarkLiveMPIStatic(b *testing.B) {
	scene := liveScene()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cluster := dist.NewCluster(4, 2)
		_, _, err := mpiray.RenderStatic(scene, liveW, liveH,
			mpiray.Options{Procs: 8, Cluster: cluster})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLiveMPIMasterWorker runs the dynamic message-passing ablation
// baseline.
func BenchmarkLiveMPIMasterWorker(b *testing.B) {
	scene := liveScene()
	spans := sched.Block(liveH, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cluster := dist.NewCluster(4, 2)
		_, _, err := mpiray.RenderMasterWorker(scene, liveW, liveH, spans,
			mpiray.Options{Procs: 9, Cluster: cluster})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Cluster-shape ablation ----------------------------------------------

// benchClusterShape runs the same dynamic network on a given cluster shape
// (total CPU budget held constant by the caller), optionally charging a
// transfer cost, and reports the cross-node traffic the shape induces:
// record hops, wire messages (batched hops share a message), and bytes.
func benchClusterShape(b *testing.B, nodes, cpus, tasks, tokens int, latency time.Duration, bandwidth float64) {
	scene := liveScene()
	b.ReportAllocs()
	var stats dist.Stats
	for i := 0; i < b.N; i++ {
		cluster := dist.NewCluster(nodes, cpus)
		cluster.SetTransferCost(latency, bandwidth)
		_, err := snetray.Render(snetray.Config{
			Scene: scene, W: liveW, H: liveH,
			Nodes: nodes, CPUs: cpus, Tasks: tasks, Tokens: tokens,
			Mode: snetray.Dynamic, Policy: snetray.BlockPolicy,
			Cluster: cluster,
		})
		if err != nil {
			b.Fatal(err)
		}
		stats = cluster.Stats()
	}
	b.ReportMetric(float64(stats.Transfers), "transfers/op")
	b.ReportMetric(float64(stats.Batches), "messages/op")
	b.ReportMetric(float64(stats.Bytes)/1024, "KiB/op")
}

// BenchmarkLiveClusterOneWideNode runs the dynamic network on a single
// 8-CPU node: all placement is local, so no transfers are charged.
func BenchmarkLiveClusterOneWideNode(b *testing.B) {
	benchClusterShape(b, 1, 8, 16, 8, 0, 0)
}

// BenchmarkLiveClusterEightSlimNodes runs the identical network and CPU
// budget as eight 1-CPU nodes: every section now hops across nodes, making
// the coordination traffic visible in the reported metrics.
func BenchmarkLiveClusterEightSlimNodes(b *testing.B) {
	benchClusterShape(b, 8, 1, 16, 8, 0, 0)
}

// BenchmarkLiveClusterEightSlimNodesCostedLink repeats the eight-node shape
// with a modelled interconnect (200µs per hop, 100 MB/s), exposing how
// sensitive the design is to communication cost — a regime the paper's
// compute-bound figures do not reach.
func BenchmarkLiveClusterEightSlimNodesCostedLink(b *testing.B) {
	benchClusterShape(b, 8, 1, 16, 8, 200*time.Microsecond, 100e6)
}

// BenchmarkLiveClusterCommBoundCostedLink is the communication-bound
// regime the batched transport exists for: 64 fine-grained sections on the
// costed interconnect, so section solve time no longer dominates the
// per-hop latency. While a placement relay serves one modelled hop,
// further records queue behind it and cross as one batched message — the
// per-hop latency is paid per message, not per record (see
// dist.Stats.Batches in the reported messages/op metric).
func BenchmarkLiveClusterCommBoundCostedLink(b *testing.B) {
	benchClusterShape(b, 8, 1, 64, 16, 200*time.Microsecond, 100e6)
}

// --- Skewed-load scheduling: block vs factoring vs work stealing ---------

// The skewed benches reproduce the paper's central performance claim on the
// live runtime: block scheduling loses to dynamic load balancing precisely
// because per-section cost is uneven and placement is fixed at split time.
// raytrace.SkewedScene concentrates nearly all geometry in one reflective
// shelf, so per-section render cost varies by roughly an order of
// magnitude; SolveScale (see snetray.Config) multiplies every section's
// cost in virtual time while the section holds its node's CPU slot, so the
// cluster's 4-node × 2-slot resource model — not the host's core count —
// determines the makespan, and scheduling quality shows up in ns/op even
// on a single-core host.
const (
	skewTasks  = 32
	skewTokens = 8
	skewScale  = 8
)

func skewedScene() *raytrace.Scene {
	return raytrace.SkewedScene(liveObjects, liveSeed)
}

func benchLiveSkewed(b *testing.B, scene *raytrace.Scene, mode snetray.Mode, tokens int, policy snetray.Policy) {
	b.ReportAllocs()
	var steals, migrated int64
	var busy []time.Duration
	for i := 0; i < b.N; i++ {
		cluster := dist.NewCluster(4, 2)
		_, err := snetray.Render(snetray.Config{
			Scene: scene, W: liveW, H: liveH,
			Nodes: 4, CPUs: 2, Tasks: skewTasks, Tokens: tokens,
			Mode: mode, Policy: policy, SolveScale: skewScale,
			Cluster: cluster,
		})
		if err != nil {
			b.Fatal(err)
		}
		stats := cluster.Stats()
		steals += stats.Steals
		migrated += stats.Migrated
		busy = accumBusy(busy, stats.Busy)
	}
	// Averages over every iteration, not a last-iteration sample: the
	// recorded steals/op in BENCH_steal.json is the migration evidence.
	b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
	b.ReportMetric(float64(migrated)/float64(b.N), "migrated/op")
	reportBusyImbalance(b, busy)
}

// BenchmarkLiveClusterSkewedBlock is the static block-scheduling baseline
// (the Fig. 2 design): the splitter stamps <node> tags round-robin, one
// solver replica per node works its queue in order, and the sections
// covering the expensive shelf saturate their nodes while others idle.
func BenchmarkLiveClusterSkewedBlock(b *testing.B) {
	benchLiveSkewed(b, skewedScene(), snetray.Static, 0, snetray.BlockPolicy)
}

// BenchmarkLiveClusterSkewedFactoring is the paper's strongest contender:
// the Fig. 4 token-dynamic network with factoring section sizes, eight
// node tokens keeping all eight CPU slots busy.
func BenchmarkLiveClusterSkewedFactoring(b *testing.B) {
	benchLiveSkewed(b, skewedScene(), snetray.Dynamic, skewTokens, snetray.FactoringPolicy)
}

// BenchmarkLiveClusterSkewedSteal is the load-aware scheduler: untagged
// sections placed least-loaded at dispatch time, queued solves migrating
// to idle nodes (steals/op and migrated/op report the migration). It must
// beat SkewedBlock by ≥20% ns/op on this scene.
func BenchmarkLiveClusterSkewedSteal(b *testing.B) {
	benchLiveSkewed(b, skewedScene(), snetray.DynamicSteal, 0, snetray.BlockPolicy)
}

// BenchmarkLiveClusterUniformFactoring runs the token-dynamic design on
// the balanced scene under the same virtual-load scale: the reference for
// "stealing matches dynamic scheduling when there is no skew to exploit".
func BenchmarkLiveClusterUniformFactoring(b *testing.B) {
	benchLiveSkewed(b, raytrace.BalancedScene(liveObjects, liveSeed),
		snetray.Dynamic, skewTokens, snetray.FactoringPolicy)
}

// BenchmarkLiveClusterUniformSteal runs the load-aware scheduler on the
// balanced scene: with even per-section cost there is little to steal, and
// ns/op must match the token-dynamic reference within noise.
func BenchmarkLiveClusterUniformSteal(b *testing.B) {
	benchLiveSkewed(b, raytrace.BalancedScene(liveObjects, liveSeed),
		snetray.DynamicSteal, 0, snetray.BlockPolicy)
}

// --- Ablations ------------------------------------------------------------

// BenchmarkRecordThroughput measures the pure coordination overhead per
// record: a pipeline of 8 identity-like boxes with no payload work — the
// cost the paper attributes to "the overhead the S-Net runtime system adds
// to the application".
func BenchmarkRecordThroughput(b *testing.B) {
	symX := snet.InternLabel("x")
	sig := snet.MustSig([]snet.Label{snet.F("x")}, []snet.Label{snet.F("x")})
	box := func(name string) *snet.Entity {
		return snet.NewBox(name, sig, func(c *snet.BoxCall) error {
			c.Emit(c.NewRecord().SetFieldSym(symX, c.FieldSym(symX)))
			return nil
		})
	}
	pipe := snet.SerialAll(box("b0"), box("b1"), box("b2"), box("b3"),
		box("b4"), box("b5"), box("b6"), box("b7"))
	net := snet.NewNetwork(pipe, snet.Options{})
	// Run takes ownership of its inputs (the runtime recycles consumed
	// records), so each iteration draws fresh records from a pool and
	// returns the outputs to it — the steady-state regime the record
	// representation is built for.
	pool := snet.NewRecordPool()
	const records = 1000
	ins := make([]*snet.Record, records)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ins {
			ins[j] = pool.Get().SetFieldSym(symX, j)
		}
		outs, err := net.Run(ins...)
		if err != nil {
			b.Fatal(err)
		}
		if len(outs) != records {
			b.Fatalf("lost records: %d", len(outs))
		}
		for _, o := range outs {
			pool.Put(o)
		}
	}
	b.ReportMetric(float64(records*8), "boxcalls/op")
}

// starBench builds the counter used by both star ablation benches.
func starCounter() (*snet.Entity, *snet.Pattern) {
	sig := snet.MustSig([]snet.Label{snet.T("n")}, []snet.Label{snet.T("n")})
	inc := snet.NewBox("inc", sig, func(c *snet.BoxCall) error {
		c.Emit(snet.NewRecord().SetTag("n", c.Tag("n")+1))
		return nil
	})
	exit := snet.NewPattern(snet.NewVariant(snet.T("n"))).WithGuard(
		func(r *snet.Record) bool { v, _ := r.Tag("n"); return v >= 64 },
		"<n> >= 64")
	return inc, exit
}

// BenchmarkStarUnroll measures the paper-faithful unrolling star: 64
// replicas are instantiated per record batch.
func BenchmarkStarUnroll(b *testing.B) {
	inc, exit := starCounter()
	net := snet.NewNetwork(snet.Star(inc, exit), snet.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		outs, err := net.Run(
			snet.NewRecord().SetTag("n", 0),
			snet.NewRecord().SetTag("n", 32))
		if err != nil || len(outs) != 2 {
			b.Fatalf("outs=%d err=%v", len(outs), err)
		}
	}
}

// BenchmarkStarFeedback measures the feedback alternative (constant
// goroutine count, unbounded internal queue) against unrolling.
func BenchmarkStarFeedback(b *testing.B) {
	inc, exit := starCounter()
	net := snet.NewNetwork(snet.FeedbackStar(inc, exit), snet.Options{})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		outs, err := net.Run(
			snet.NewRecord().SetTag("n", 0),
			snet.NewRecord().SetTag("n", 32))
		if err != nil || len(outs) != 2 {
			b.Fatalf("outs=%d err=%v", len(outs), err)
		}
	}
}

// BenchmarkSynchrocellMerger drives the paper's Fig. 3 merger with n
// chunks: n synchrocell joins and n-1 merge boxes through star unrolling.
func BenchmarkSynchrocellMerger(b *testing.B) {
	reg := snet.NewRegistry()
	reg.RegisterBox("init", func(c *snet.BoxCall) error {
		c.Emit(snet.NewRecord().SetField("pic", c.Field("chunk")))
		return nil
	})
	reg.RegisterBox("merge", func(c *snet.BoxCall) error {
		c.Emit(snet.NewRecord().SetField("pic", c.Field("pic")))
		return nil
	})
	res, err := snet.CompileSource(snetray.MergerSource, reg)
	if err != nil {
		b.Fatal(err)
	}
	merger, _ := res.Net("merger")
	net := snet.NewNetwork(merger, snet.Options{})
	const chunks = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ins := make([]*snet.Record, chunks)
		for j := 0; j < chunks; j++ {
			r := snet.BuildRecord().F("chunk", j).T("tasks", chunks).Rec()
			if j == 0 {
				r.SetTag("fst", 1)
			}
			ins[j] = r
		}
		outs, err := net.Run(ins...)
		if err != nil || len(outs) != 1 {
			b.Fatalf("outs=%d err=%v", len(outs), err)
		}
	}
}

// BenchmarkParseFig3 measures the language front end on the paper's most
// intricate program text.
func BenchmarkParseFig3(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := snet.Parse(snetray.MergerSource); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCompileFig2 measures parse+compile of the full static network.
func BenchmarkCompileFig2(b *testing.B) {
	reg := snet.NewRegistry()
	for _, name := range []string{"splitter", "solver", "init", "merge", "genImg"} {
		reg.RegisterBox(name, func(c *snet.BoxCall) error { return nil })
	}
	mres, err := snet.CompileSource(snetray.MergerSource, reg)
	if err != nil {
		b.Fatal(err)
	}
	m, _ := mres.Net("merger")
	reg.RegisterNet("merger", m)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := snet.CompileSource(snetray.StaticSource, reg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBVHInsert measures Goldsmith–Salmon incremental construction.
func BenchmarkBVHInsert(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		spheres := make([]*raytrace.Sphere, 512)
		for j := range spheres {
			f := float64(j)
			spheres[j] = &raytrace.Sphere{
				Center: geom.V(f*0.37-90, f*0.11-30, f*0.23),
				Radius: 0.3,
			}
		}
		bvh := &raytrace.BVH{}
		b.StartTimer()
		for _, s := range spheres {
			bvh.Insert(s)
		}
	}
}

// BenchmarkBVHIntersect measures hierarchy traversal against brute force
// cost (the reason the paper uses a BVH at all).
func BenchmarkBVHIntersect(b *testing.B) {
	bvh := &raytrace.BVH{}
	for j := 0; j < 512; j++ {
		f := float64(j)
		bvh.Insert(&raytrace.Sphere{
			Center: geom.V(f*0.37-90, f*0.11-30, f*0.23+5),
			Radius: 0.3,
		})
	}
	ray := geom.NewRay(geom.V(0, 0, -10), geom.V(0.1, 0.05, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bvh.Intersect(ray, 1e-6, 1e18, nil)
	}
}

// BenchmarkRenderSection measures the solver box payload.
func BenchmarkRenderSection(b *testing.B) {
	scene := liveScene()
	sec := raytrace.Section{W: liveW, H: liveH, Y0: 0, Y1: liveH / 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		raytrace.RenderSection(scene, sec)
	}
}

// BenchmarkSimnetDynamic measures the simulator itself (one dynamic run
// with 72 tasks).
func BenchmarkSimnetDynamic(b *testing.B) {
	profile := simnet.PaperRowProfile(3000)
	tb := simnet.PaperTestbed(8)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := simnet.SNetDynamic(tb, profile, 72, 16, true); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Network optimizer: fused vs as-constructed instantiation ------------

// The fuse benches put a number on what the instantiation-time optimizer
// (snet.Options.Optimize, see docs/performance.md "Optimizer") buys: the
// same network, same record stream, instantiated with the full rewrite
// catalogue versus OptimizeOff. Each pair reports entities/op — the number
// of entities the instantiation actually spawns — so the recorded
// BENCH_fuse.json trajectory shows the structural reduction next to ns/op
// and allocs/op.

// fuseStamp builds [ {} -> {<name=v>} ], the fine-grained coordination
// stage the fuse pipeline is made of.
func fuseStamp(name string, v int) *snet.Entity {
	return snet.NewFilter("", snet.FilterRule{
		Pattern: snet.NewPattern(snet.NewVariant()),
		Outputs: []snet.FilterOutput{{SetTags: []snet.TagAssign{{
			Name: name,
			Expr: func(*snet.Record) int { return v },
			Src:  name,
		}}}},
	})
}

// fusePipeline is a deliberately fine-grained pipeline: identities and
// single-rule filters sandwiching two real boxes — the shape a compiled
// S-Net program produces when every semantic step is its own entity. The
// optimizer elides the identities, fuses the filter runs into their
// neighbouring boxes, and spawns 3 entities where the tree spawns 21.
func fusePipeline() *snet.Entity {
	symX := snet.InternLabel("x")
	sig := snet.MustSig([]snet.Label{snet.F("x")}, []snet.Label{snet.F("x")})
	box := func(name string) *snet.Entity {
		return snet.NewBox(name, sig, func(c *snet.BoxCall) error {
			c.Emit(c.NewRecord().SetFieldSym(symX, c.FieldSym(symX)))
			return nil
		})
	}
	return snet.SerialAll(
		snet.Identity(), fuseStamp("p", 1), fuseStamp("q", 2), box("b0"),
		snet.Identity(), fuseStamp("r", 3), snet.Identity(), fuseStamp("s", 4),
		box("b1"), fuseStamp("t", 5), snet.Identity())
}

// fuseLadder adds dispatch structure: a guarded choice whose catch-all
// branch is dominated (pruned after a widening box) feeding a nested
// deterministic choice — the flattening and short-circuit half of the
// catalogue.
func fuseLadder() *snet.Entity {
	symX := snet.InternLabel("x")
	sig := snet.MustSig([]snet.Label{snet.F("x")}, []snet.Label{snet.F("x")})
	widen := snet.NewBox("widen", sig, func(c *snet.BoxCall) error {
		c.Emit(c.NewRecord().SetFieldSym(symX, c.FieldSym(symX)))
		return nil
	})
	guard := snet.NewFilter("", snet.FilterRule{
		Pattern: snet.NewPattern(snet.NewVariant(snet.F("x"))),
		Outputs: []snet.FilterOutput{{CopyFields: []string{"x"}}},
	})
	return snet.SerialAll(
		widen,
		snet.Choice(snet.Serial(guard, fuseStamp("p", 1)), snet.Identity()),
		snet.DetChoice(
			snet.DetChoice(
				snet.Serial(guard, fuseStamp("q", 1)),
				snet.Serial(guard, fuseStamp("r", 2))),
			snet.Serial(guard, fuseStamp("t", 3))))
}

// benchFuse drives records batches through build()'s network at the given
// optimizer level. Both sides report entities/op: the optimized side its
// post-rewrite count, the reference side the entity count of the tree as
// constructed (read off a throwaway optimized instantiation's
// EntitiesBefore — the un-optimized network spawns exactly that many).
func benchFuse(b *testing.B, build func() *snet.Entity, lvl snet.OptimizeLevel) {
	net := snet.NewNetwork(build(), snet.Options{Optimize: lvl})
	entities := float64(net.OptStats().EntitiesAfter)
	if lvl == snet.OptimizeOff {
		entities = float64(snet.NewNetwork(build(), snet.Options{}).OptStats().EntitiesBefore)
	}
	symX := snet.InternLabel("x")
	pool := snet.NewRecordPool()
	const records = 1000
	ins := make([]*snet.Record, records)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ins {
			ins[j] = pool.Get().SetFieldSym(symX, j)
		}
		outs, err := net.Run(ins...)
		if err != nil {
			b.Fatal(err)
		}
		if len(outs) != records {
			b.Fatalf("lost records: %d", len(outs))
		}
		for _, o := range outs {
			pool.Put(o)
		}
	}
	b.ReportMetric(entities, "entities/op")
}

// BenchmarkLiveFusePipelineFull runs the fine-grained pipeline with the
// optimizer on: identities elided, filters fused into the boxes.
func BenchmarkLiveFusePipelineFull(b *testing.B) {
	benchFuse(b, fusePipeline, snet.OptimizeFull)
}

// BenchmarkLiveFusePipelineOff is its as-constructed reference: one
// goroutine pair and one stream hop per tree entity.
func BenchmarkLiveFusePipelineOff(b *testing.B) {
	benchFuse(b, fusePipeline, snet.OptimizeOff)
}

// BenchmarkLiveFuseLadderFull runs the dispatch ladder with the optimizer
// on: nested det-choices flattened, the dominated catch-all pruned and the
// remaining single-branch choice short-circuited into the pipeline.
func BenchmarkLiveFuseLadderFull(b *testing.B) {
	benchFuse(b, fuseLadder, snet.OptimizeFull)
}

// BenchmarkLiveFuseLadderOff is the ladder's as-constructed reference.
func BenchmarkLiveFuseLadderOff(b *testing.B) {
	benchFuse(b, fuseLadder, snet.OptimizeOff)
}

// BenchmarkLiveFuseRenderFull is the application-level pair: the Fig. 2
// static render network with the optimizer on (the default every other
// bench in this file inherits).
func BenchmarkLiveFuseRenderFull(b *testing.B) {
	benchFuseRender(b, snet.OptimizeFull)
}

// BenchmarkLiveFuseRenderOff renders with the network spawned exactly as
// compiled.
func BenchmarkLiveFuseRenderOff(b *testing.B) {
	benchFuseRender(b, snet.OptimizeOff)
}

func benchFuseRender(b *testing.B, lvl snet.OptimizeLevel) {
	scene := liveScene()
	entities := -1.0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := snetray.Render(snetray.Config{
			Scene: scene, W: liveW, H: liveH,
			Nodes: 4, CPUs: 1, Tasks: 8, Mode: snetray.Static,
			Optimize: lvl,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Opt.Enabled {
			entities = float64(res.Opt.EntitiesAfter)
		}
	}
	if lvl == snet.OptimizeOff {
		// The un-optimized instantiation spawns the tree as compiled; read
		// its size off one untimed optimized compile of the same network.
		b.StopTimer()
		res, err := snetray.Render(snetray.Config{
			Scene: scene, W: 8, H: 8,
			Nodes: 4, CPUs: 1, Tasks: 8, Mode: snetray.Static,
		})
		if err != nil {
			b.Fatal(err)
		}
		entities = float64(res.Opt.EntitiesBefore)
		b.StartTimer()
	}
	b.ReportMetric(entities, "entities/op")
}

// --- Multi-process transport: loopback TCP vs in-process platform --------

// The wire benches put a number on what the transport costs: the same
// render, same cluster shape, on (a) a wire.Cluster whose two workers sit
// behind real loopback TCP sockets — every solver call crosses the framed
// protocol and the negotiated codec — and (b) a plain in-process
// dist.Cluster. Reported side by side: the model's accounted traffic
// (model-KiB/op, identical semantics in both variants, which is what keeps
// the trajectories comparable) and, for the wired variant, the measured
// bytes that actually crossed the sockets (wire-KiB/op) as the cross-check
// that the accounting corresponds to reality.

// startWireFleet brings up a coordinator plus two wire.Workers over
// loopback TCP. The workers run in-process goroutines — the sockets,
// frames, and codec negotiation are the production path; only the OS
// process boundary is folded away (the multi-process path is exercised by
// internal/wireapp's re-exec tests and scripts/dist-smoke.sh).
func startWireFleet(b *testing.B, spec wireapp.SceneSpec, cpus int) *wire.Cluster {
	b.Helper()
	cl, err := wire.Listen("127.0.0.1:0", wire.CoordinatorConfig{
		Workers: 2, CPUsPerNode: cpus, Ext: wireapp.RaytraceExt(spec),
	})
	if err != nil {
		b.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		w := wire.NewWorker(wire.WorkerConfig{Ext: wireapp.RaytraceExt(spec)})
		for name, fn := range snetray.WorkerBoxes(0) {
			w.Register(name, fn)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(cl.Addr().String())
		}()
	}
	if err := cl.WaitReady(); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() {
		cl.Close()
		wg.Wait()
	})
	return cl
}

func benchWire(b *testing.B, mode snetray.Mode, cpus, tasks, tokens int, wired bool) {
	spec := wireapp.SceneSpec{Unbalanced: true, Objects: liveObjects, Seed: liveSeed}
	const nodes = 3 // coordinator + 2 workers
	var cl *wire.Cluster
	if wired {
		cl = startWireFleet(b, spec, cpus)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var model dist.Stats
	var wireBefore, wireAfter wire.WireStats
	if wired {
		wireBefore = cl.WireStats()
		model = cl.Stats()
	}
	modelBytes, steals := int64(0)-model.Bytes, int64(0)-model.Steals
	for i := 0; i < b.N; i++ {
		cfg := snetray.Config{
			Scene: spec.Build(), W: liveW, H: liveH,
			Nodes: nodes, CPUs: cpus, Tasks: tasks, Tokens: tokens,
			Mode: mode,
		}
		var err error
		var res *snetray.Result
		if wired {
			cfg.Platform = cl
			res, err = snetray.Render(cfg)
		} else {
			res, err = snetray.Render(cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		if !wired {
			modelBytes += res.Cluster.Bytes
			steals += res.Cluster.Steals
		}
	}
	if wired {
		m := cl.Stats()
		modelBytes += m.Bytes
		steals += m.Steals
		wireAfter = cl.WireStats()
		onWire := (wireAfter.BytesSent - wireBefore.BytesSent) +
			(wireAfter.BytesRecv - wireBefore.BytesRecv)
		b.ReportMetric(float64(onWire)/1024/float64(b.N), "wire-KiB/op")
		b.ReportMetric(float64(wireAfter.RemoteExecs-wireBefore.RemoteExecs)/float64(b.N), "remote-execs/op")
	}
	b.ReportMetric(float64(modelBytes)/1024/float64(b.N), "model-KiB/op")
	b.ReportMetric(float64(steals)/float64(b.N), "steals/op")
}

// BenchmarkLiveWireStatic is the Fig. 2 static design with its solver
// calls crossing loopback TCP to two worker "processes".
func BenchmarkLiveWireStatic(b *testing.B) {
	benchWire(b, snetray.Static, 2, 6, 0, true)
}

// BenchmarkLiveWireStaticInProc is the identical render on the in-process
// platform: the transport's overhead is the gap to BenchmarkLiveWireStatic.
func BenchmarkLiveWireStaticInProc(b *testing.B) {
	benchWire(b, snetray.Static, 2, 6, 0, false)
}

// BenchmarkLiveWireCommBound is the communication-bound regime over real
// sockets: 64 fine-grained sections on slim 1-CPU nodes, so framing and
// codec cost per section — not solve time — dominates the transport's
// share.
func BenchmarkLiveWireCommBound(b *testing.B) {
	benchWire(b, snetray.Dynamic, 1, 64, 6, true)
}

// BenchmarkLiveWireCommBoundInProc is its in-process baseline.
func BenchmarkLiveWireCommBoundInProc(b *testing.B) {
	benchWire(b, snetray.Dynamic, 1, 64, 6, false)
}

// --- Durability: what the ingress journal costs per record ----------------

// The journal benches put a number on what at-least-once delivery costs on
// a record-throughput workload: the same two-box pipeline, 1000 records per
// op, with (a) no durability, (b) the journal on with flushing left to the
// OS page cache (FsyncNever — the write-path CPU cost: framing, CRC, codec,
// completion tracking), and (c) the journal on with batched fsync
// (FsyncBatch — adds the bounded-loss flush). FsyncAlways is deliberately
// not a trajectory: one fsync per record is a per-device constant that
// would track the CI host's disk, not the code.
func benchJournal(b *testing.B, durable bool, fsync snet.FsyncPolicy) {
	symX := snet.InternLabel("x")
	sig := snet.MustSig([]snet.Label{snet.F("x")}, []snet.Label{snet.F("x")})
	box := func(name string) *snet.Entity {
		return snet.NewBox(name, sig, func(c *snet.BoxCall) error {
			c.Emit(c.NewRecord().SetFieldSym(symX, c.FieldSym(symX)))
			return nil
		})
	}
	opts := snet.Options{}
	if durable {
		opts.Durability = &snet.Durability{Dir: b.TempDir(), Fsync: fsync}
	}
	net := snet.NewNetwork(snet.Serial(box("j0"), box("j1")), opts)
	pool := snet.NewRecordPool()
	const records = 1000
	ins := make([]*snet.Record, records)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range ins {
			ins[j] = pool.Get().SetFieldSym(symX, j)
		}
		outs, err := net.Run(ins...)
		if err != nil {
			b.Fatal(err)
		}
		if len(outs) != records {
			b.Fatalf("lost records: %d", len(outs))
		}
		for _, o := range outs {
			pool.Put(o)
		}
	}
}

// BenchmarkLiveJournalOff is the reference: the pipeline with no journal.
func BenchmarkLiveJournalOff(b *testing.B) {
	benchJournal(b, false, snet.FsyncNever)
}

// BenchmarkLiveJournalNoSync journals every record, flushing left to the
// OS: the durability write path minus the disk.
func BenchmarkLiveJournalNoSync(b *testing.B) {
	benchJournal(b, true, snet.FsyncNever)
}

// BenchmarkLiveJournalBatchSync journals every record with interval-batched
// fsync: the bounded-loss configuration a deployment would run.
func BenchmarkLiveJournalBatchSync(b *testing.B) {
	benchJournal(b, true, snet.FsyncBatch)
}
