module snet

go 1.24
