package snet_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"
	"time"

	"snet"
)

func incBox() *snet.Entity {
	return snet.NewBox("inc",
		snet.MustSig([]snet.Label{snet.F("x")}, []snet.Label{snet.F("x")}),
		func(c *snet.BoxCall) error {
			c.Emit(snet.NewRecord().SetField("x", c.Field("x").(int)+1))
			return nil
		})
}

func TestFacadeProgrammaticNetwork(t *testing.T) {
	net := snet.NewNetwork(snet.Serial(incBox(), incBox()), snet.Options{})
	outs, err := net.Run(snet.NewRecord().SetField("x", 40))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("outs = %v", outs)
	}
	if v, _ := outs[0].Field("x"); v != 42 {
		t.Fatalf("x = %v", v)
	}
}

func TestFacadeCompiledNetwork(t *testing.T) {
	reg := snet.NewRegistry()
	reg.RegisterBox("inc", func(c *snet.BoxCall) error {
		c.Emit(snet.NewRecord().SetField("x", c.Field("x").(int)+1))
		return nil
	})
	res, err := snet.CompileSource(`
		net twice { box inc ((x) -> (x)); } connect inc .. inc;
	`, reg)
	if err != nil {
		t.Fatal(err)
	}
	ent, ok := res.Net("twice")
	if !ok {
		t.Fatal("net twice missing")
	}
	outs, err := snet.NewNetwork(ent, snet.Options{}).Run(
		snet.BuildRecord().F("x", 1).Rec())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := outs[0].Field("x"); v != 3 {
		t.Fatalf("x = %v", v)
	}
}

func TestFacadeParseAndCompileExpr(t *testing.T) {
	e, err := snet.ParseExpr("[ {<n>} -> {<n += 5>} ]")
	if err != nil {
		t.Fatal(err)
	}
	ent, warns, err := snet.CompileExpr(e, snet.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if len(warns) != 0 {
		t.Fatalf("warnings = %v", warns)
	}
	outs, err := snet.NewNetwork(ent, snet.Options{}).Run(
		snet.BuildRecord().T("n", 1).Rec())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := outs[0].Tag("n"); v != 6 {
		t.Fatalf("n = %v", v)
	}
}

func TestFacadeClusterPlatform(t *testing.T) {
	cluster := snet.NewCluster(3, 1)
	work := snet.NewBox("work",
		snet.MustSig([]snet.Label{snet.T("node")}, []snet.Label{snet.T("done")}),
		func(c *snet.BoxCall) error {
			c.Emit(snet.NewRecord().SetTag("done", c.Node()))
			return nil
		})
	net := snet.NewNetwork(snet.SplitAt(work, "node"), snet.Options{Platform: cluster})
	var ins []*snet.Record
	for i := 0; i < 6; i++ {
		ins = append(ins, snet.NewRecord().SetTag("node", i%3))
	}
	outs, err := net.Run(ins...)
	if err != nil {
		t.Fatal(err)
	}
	var nodes []int
	for _, o := range outs {
		n, _ := o.Tag("done")
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	want := []int{0, 0, 1, 1, 2, 2}
	for i, n := range nodes {
		if n != want[i] {
			t.Fatalf("nodes = %v", nodes)
		}
	}
}

func TestFacadeTypeHelpers(t *testing.T) {
	sig := snet.NewSignature(
		snet.NewType(snet.NewVariant(snet.F("a"), snet.T("b"), snet.BT("c"))),
		snet.NewType(snet.NewVariant(snet.F("d"))),
	)
	if !strings.Contains(sig.String(), "<b>") || !strings.Contains(sig.String(), "<#c>") {
		t.Fatalf("sig = %s", sig)
	}
	p := snet.NewPattern(snet.NewVariant(snet.F("chunk")))
	if !p.Matches(snet.NewRecord().SetField("chunk", 1).SetField("extra", 2)) {
		t.Fatal("pattern match failed")
	}
}

// ExampleNetwork_quickstart builds, compiles and runs the smallest useful
// S-Net program.
func Example() {
	reg := snet.NewRegistry()
	reg.RegisterBox("double", func(c *snet.BoxCall) error {
		c.Emit(snet.NewRecord().SetField("x", c.Field("x").(int)*2))
		return nil
	})
	res, err := snet.CompileSource(`
		net quad { box double ((x) -> (x)); } connect double .. double;
	`, reg)
	if err != nil {
		panic(err)
	}
	ent, _ := res.Net("quad")
	outs, err := snet.NewNetwork(ent, snet.Options{}).Run(
		snet.NewRecord().SetField("x", 10))
	if err != nil {
		panic(err)
	}
	v, _ := outs[0].Field("x")
	fmt.Println(v)
	// Output: 40
}

// ExampleStar shows serial replication with a guard-carrying exit pattern.
func ExampleStar() {
	count := snet.NewBox("count",
		snet.MustSig([]snet.Label{snet.T("n")}, []snet.Label{snet.T("n")}),
		func(c *snet.BoxCall) error {
			c.Emit(snet.NewRecord().SetTag("n", c.Tag("n")+1))
			return nil
		})
	pat := snet.NewPattern(snet.NewVariant(snet.T("n"))).WithGuard(func(r *snet.Record) bool {
		v, _ := r.Tag("n")
		return v >= 3
	}, "<n> >= 3")
	outs, err := snet.NewNetwork(snet.Star(count, pat), snet.Options{}).Run(
		snet.NewRecord().SetTag("n", 0))
	if err != nil {
		panic(err)
	}
	n, _ := outs[0].Tag("n")
	fmt.Println(n)
	// Output: 3
}

func TestFacadeObserve(t *testing.T) {
	var c snet.ObserverCounter
	obs := snet.Observe(incBox(), c.Observe)
	outs, err := snet.NewNetwork(obs, snet.Options{}).Run(
		snet.NewRecord().SetField("x", 1),
		snet.NewRecord().SetField("x", 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 || c.In() != 2 || c.Out() != 2 {
		t.Fatalf("outs=%d in=%d out=%d", len(outs), c.In(), c.Out())
	}
}

func TestFacadeDetCombinatorsFromSource(t *testing.T) {
	reg := snet.NewRegistry()
	reg.RegisterBox("slow", func(c *snet.BoxCall) error {
		time.Sleep(time.Millisecond)
		c.Emit(snet.NewRecord().SetField("x", c.Field("x")))
		return nil
	})
	reg.RegisterBox("fast", func(c *snet.BoxCall) error {
		c.Emit(snet.NewRecord().SetField("x", c.Field("x")))
		return nil
	})
	res, err := snet.CompileSource(`
		net ordered {
			box slow ((x, <s>) -> (x));
			box fast ((x) -> (x));
		} connect (slow || fast) .. [] ;
	`, reg)
	if err != nil {
		t.Fatal(err)
	}
	ent, _ := res.Net("ordered")
	var ins []*snet.Record
	for i := 0; i < 10; i++ {
		r := snet.NewRecord().SetField("x", i)
		if i%2 == 0 {
			r.SetTag("s", 1)
		}
		ins = append(ins, r)
	}
	outs, err := snet.NewNetwork(ent, snet.Options{}).Run(ins...)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if v, _ := o.Field("x"); v != i {
			t.Fatalf("order violated at %d: %v", i, v)
		}
	}
}

func TestFacadeDetSplitProgrammatic(t *testing.T) {
	work := snet.NewBox("work",
		snet.MustSig([]snet.Label{snet.F("x"), snet.T("k")}, []snet.Label{snet.F("x")}),
		func(c *snet.BoxCall) error {
			if c.Tag("k") == 0 {
				time.Sleep(time.Millisecond)
			}
			c.Emit(snet.NewRecord().SetField("x", c.Field("x")))
			return nil
		})
	var ins []*snet.Record
	for i := 0; i < 12; i++ {
		ins = append(ins, snet.BuildRecord().F("x", i).T("k", i%3).Rec())
	}
	outs, err := snet.NewNetwork(snet.DetSplit(work, "k"), snet.Options{}).Run(ins...)
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range outs {
		if v, _ := o.Field("x"); v != i {
			t.Fatalf("order violated at %d: %v", i, v)
		}
	}
}

func TestFacadeRemainingSurface(t *testing.T) {
	// Programmatic construction of every combinator and helper the facade
	// exports, composed into one runnable network.
	even := snet.NewFilter("evens",
		snet.FilterRule{
			Pattern: snet.NewPattern(snet.NewVariant(snet.T("n"))),
			Outputs: []snet.FilterOutput{{
				CopyTags: []string{"n"},
				SetTags: []snet.TagAssign{{
					Name: "half",
					Expr: func(r *snet.Record) int { v, _ := r.Tag("n"); return v / 2 },
					Src:  "half=n/2",
				}},
			}},
		})
	net := snet.NewNetwork(snet.SerialAll(even, snet.Identity(), snet.At(incBox2(), 0)), snet.Options{})
	outs, err := net.Run(snet.BuildRecord().T("n", 8).F("x", 1).Rec())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := outs[0].Tag("half"); v != 4 {
		t.Fatalf("half = %d", v)
	}

	// Sync + Choice + Star + FeedbackStar through the facade.
	sync := snet.NewSync(
		snet.NewPattern(snet.NewVariant(snet.F("a"))),
		snet.NewPattern(snet.NewVariant(snet.F("b"))),
	)
	outs, err = snet.NewNetwork(sync, snet.Options{}).Run(
		snet.NewRecord().SetField("a", 1),
		snet.NewRecord().SetField("b", 2))
	if err != nil || len(outs) != 1 {
		t.Fatalf("sync outs=%v err=%v", outs, err)
	}

	exit := snet.NewPattern(snet.NewVariant(snet.T("n"))).WithGuard(func(r *snet.Record) bool {
		v, _ := r.Tag("n")
		return v >= 2
	}, "<n> >= 2")
	bump := snet.NewBox("bump",
		snet.MustSig([]snet.Label{snet.T("n")}, []snet.Label{snet.T("n")}),
		func(c *snet.BoxCall) error {
			c.Emit(snet.NewRecord().SetTag("n", c.Tag("n")+1))
			return nil
		})
	for _, star := range []*snet.Entity{snet.Star(bump, exit), snet.FeedbackStar(bump, exit)} {
		outs, err = snet.NewNetwork(star, snet.Options{}).Run(snet.NewRecord().SetTag("n", 0))
		if err != nil || len(outs) != 1 {
			t.Fatalf("star outs=%v err=%v", outs, err)
		}
	}

	choice := snet.Choice(bump, snet.Identity())
	if choice.Name() == "" || choice.Signature().String() == "" || choice.Describe() == "" {
		t.Fatal("entity accessors empty")
	}

	// Parse + CompileProgram path and Split.
	prog, err := snet.Parse(`net idnet connect [];`)
	if err != nil {
		t.Fatal(err)
	}
	res, err := snet.CompileProgram(prog, snet.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Net("idnet"); !ok {
		t.Fatal("idnet missing")
	}
	split := snet.Split(bump, "k")
	outs, err = snet.NewNetwork(split, snet.Options{}).Run(
		snet.BuildRecord().T("n", 0).T("k", 3).Rec())
	if err != nil || len(outs) != 1 {
		t.Fatalf("split outs=%v err=%v", outs, err)
	}

	// Instance-level streaming API.
	inst := snet.NewNetwork(snet.DetChoice(bump, snet.Identity()), snet.Options{}).Start()
	inst.In <- snet.NewRecord().SetTag("n", 1)
	close(inst.In)
	n := 0
	for range inst.Out {
		n++
	}
	if n != 1 || inst.Err() != nil {
		t.Fatalf("instance n=%d err=%v", n, inst.Err())
	}
}

func incBox2() *snet.Entity {
	return snet.NewBox("inc2",
		snet.MustSig([]snet.Label{snet.F("x")}, []snet.Label{snet.F("x")}),
		func(c *snet.BoxCall) error {
			if !c.HasField("x") || c.HasTag("nope") {
				return fmt.Errorf("accessor confusion")
			}
			c.Emit(snet.NewRecord().SetField("x", c.Field("x").(int)+1))
			return nil
		})
}
