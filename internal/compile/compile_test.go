package compile

import (
	"strings"
	"sync"
	"testing"
	"time"

	"snet/internal/core"
	"snet/internal/lang"
	"snet/internal/record"
)

func TestCompileBoxNeedsRegistration(t *testing.T) {
	_, err := Source(`net n { box b ((a) -> (b)); } connect b;`, NewRegistry())
	if err == nil || !strings.Contains(err.Error(), "no registered implementation") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileUnknownName(t *testing.T) {
	_, err := Source(`net n connect mystery;`, NewRegistry())
	if err == nil || !strings.Contains(err.Error(), "unknown name") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileRegisteredButUndeclaredBox(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterBox("b", func(c *core.BoxCall) error { return nil })
	_, err := Source(`net n connect b;`, reg)
	if err == nil || !strings.Contains(err.Error(), "not declared") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileForwardDeclNeedsNet(t *testing.T) {
	_, err := Source(`net main { net helper ((a) -> (b)); } connect helper;`, NewRegistry())
	if err == nil || !strings.Contains(err.Error(), "signature only") {
		t.Fatalf("err = %v", err)
	}
}

func TestCompileSimplePipeline(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterBox("inc", func(c *core.BoxCall) error {
		c.Emit(record.New().SetField("x", c.Field("x").(int)+1))
		return nil
	})
	reg.RegisterBox("dbl", func(c *core.BoxCall) error {
		c.Emit(record.New().SetField("x", c.Field("x").(int)*2))
		return nil
	})
	res, err := Source(`
		net pipe {
			box inc ((x) -> (x));
			box dbl ((x) -> (x));
		} connect inc .. dbl;
	`, reg)
	if err != nil {
		t.Fatal(err)
	}
	ent, ok := res.Net("pipe")
	if !ok {
		t.Fatal("net pipe not in result")
	}
	outs, err := core.NewNetwork(ent, core.Options{}).Run(record.New().SetField("x", 20))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("outs = %v", outs)
	}
	if v, _ := outs[0].Field("x"); v != 42 {
		t.Fatalf("x = %v, want 42", v)
	}
}

func TestCompileFilterTagArithmetic(t *testing.T) {
	res, err := Source(`net f connect [ {<a>, <b>} -> {<c = a*10 + b>, <a>, <b>} ];`, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ent, _ := res.Net("f")
	outs, err := core.NewNetwork(ent, core.Options{}).Run(
		record.Build().T("a", 4).T("b", 2).Rec())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := outs[0].Tag("c"); v != 42 {
		t.Fatalf("c = %d, want 42", v)
	}
	// a and b explicitly copied
	if !outs[0].HasTag("a") || !outs[0].HasTag("b") {
		t.Fatalf("out = %s", outs[0])
	}
}

func TestCompileTagExprDivisionByZeroIsZero(t *testing.T) {
	res, err := Source(`net f connect [ {<a>} -> {<q = 10 / a>, <m = 10 % a>} ];`, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ent, _ := res.Net("f")
	outs, err := core.NewNetwork(ent, core.Options{}).Run(record.Build().T("a", 0).Rec())
	if err != nil {
		t.Fatal(err)
	}
	q, _ := outs[0].Tag("q")
	m, _ := outs[0].Tag("m")
	if q != 0 || m != 0 {
		t.Fatalf("q=%d m=%d, want 0 0", q, m)
	}
}

func TestCompileGuardComparisons(t *testing.T) {
	// star with guard <n> < 3: operand increments; exits once n >= 3 is
	// false... note the guard is the EXIT condition, so exit when n < 3
	// is true. Feed n=5: must loop down? No — operand increments. Use a
	// decrementing box to reach the exit.
	reg := NewRegistry()
	reg.RegisterBox("dec", func(c *core.BoxCall) error {
		c.Emit(record.New().SetTag("n", c.Tag("n")-1))
		return nil
	})
	res, err := Source(`
		net count {
			box dec ((<n>) -> (<n>));
		} connect dec*{<n> <= 0};
	`, reg)
	if err != nil {
		t.Fatal(err)
	}
	ent, _ := res.Net("count")
	outs, err := core.NewNetwork(ent, core.Options{}).Run(record.Build().T("n", 5).Rec())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("outs = %v", outs)
	}
	if v, _ := outs[0].Tag("n"); v != 0 {
		t.Fatalf("n = %d, want 0", v)
	}
}

func TestCompileSerialFlowWarning(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterBox("a", func(c *core.BoxCall) error { return nil })
	reg.RegisterBox("b", func(c *core.BoxCall) error { return nil })
	res, err := Source(`
		net w {
			box a ((x) -> (y));
			box b ((z) -> (w));
		} connect a .. b;
	`, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Warnings) == 0 {
		t.Fatal("expected a type-flow warning for a..b")
	}
	if !strings.Contains(res.Warnings[0], "matches no input variant") {
		t.Fatalf("warning = %q", res.Warnings[0])
	}
}

func TestCompileDeadBranchWarning(t *testing.T) {
	// After a box producing (x), the [] branch of the choice can never
	// win dispatch: the (x)-consuming filter outscores it on every
	// record. The compiler must warn statically (and the optimizer
	// prunes it at instantiation).
	reg := NewRegistry()
	reg.RegisterBox("a", func(c *core.BoxCall) error { return nil })
	res, err := Source(`
		net w {
			box a ((x) -> (x));
		} connect a .. ([ {x} -> {x} ] | []);
	`, reg)
	if err != nil {
		t.Fatal(err)
	}
	var found bool
	for _, w := range res.Warnings {
		if strings.Contains(w, "can never win dispatch") {
			found = true
		}
	}
	if !found {
		t.Fatalf("expected a dead-branch warning, got %q", res.Warnings)
	}
	ent, _ := res.Net("w")
	n := core.NewNetwork(ent, core.Options{})
	if st := n.OptStats(); st.BranchesPruned != 1 {
		t.Fatalf("OptStats = %+v, want one pruned branch", st)
	}
}

func TestCompileDetChoicePreservesOrder(t *testing.T) {
	// slow handles records tagged <slow>; fast handles the rest. Under
	// nondeterministic '|' the fast branch would overtake; under '||'
	// the output order must equal the input order.
	reg := NewRegistry()
	reg.RegisterBox("slow", func(c *core.BoxCall) error {
		time.Sleep(2 * time.Millisecond)
		c.Emit(record.New().SetField("x", c.Field("x")))
		return nil
	})
	reg.RegisterBox("fast", func(c *core.BoxCall) error {
		c.Emit(record.New().SetField("x", c.Field("x")))
		return nil
	})
	res, err := Source(`
		net d {
			box slow ((x, <slow>) -> (x));
			box fast ((x) -> (x));
		} connect slow || fast;
	`, reg)
	if err != nil {
		t.Fatal(err)
	}
	ent, _ := res.Net("d")
	var ins []*record.Record
	for i := 0; i < 12; i++ {
		r := record.New().SetField("x", i)
		if i%3 == 0 {
			r.SetTag("slow", 1)
		}
		ins = append(ins, r)
	}
	outs, err := core.NewNetwork(ent, core.Options{}).Run(ins...)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 12 {
		t.Fatalf("got %d outputs", len(outs))
	}
	for i, o := range outs {
		if v, _ := o.Field("x"); v != i {
			t.Fatalf("order violated at %d: %v", i, v)
		}
	}
}

func TestCompileExprStandalone(t *testing.T) {
	e, err := lang.ParseExpr("[ {<n>} -> {<n += 1>} ]")
	if err != nil {
		t.Fatal(err)
	}
	ent, _, err := Expr(e, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	outs, err := core.NewNetwork(ent, core.Options{}).Run(record.Build().T("n", 1).Rec())
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := outs[0].Tag("n"); v != 2 {
		t.Fatalf("n = %d", v)
	}
}

func TestCompileMinusEqAndUnaryMinus(t *testing.T) {
	res, err := Source(`net f connect [ {<n>} -> {<n -= 2>, <m = -3>} ];`, NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	ent, _ := res.Net("f")
	outs, err := core.NewNetwork(ent, core.Options{}).Run(record.Build().T("n", 10).Rec())
	if err != nil {
		t.Fatal(err)
	}
	n, _ := outs[0].Tag("n")
	m, _ := outs[0].Tag("m")
	if n != 8 || m != -3 {
		t.Fatalf("n=%d m=%d", n, m)
	}
}

// --- Full paper programs -------------------------------------------------

// sink collects records delivered to a terminal box.
type sink struct {
	mu   sync.Mutex
	pics []map[int]string
}

func (s *sink) add(p map[int]string) {
	s.mu.Lock()
	s.pics = append(s.pics, p)
	s.mu.Unlock()
}

// registerRayBoxes registers toy implementations of the paper's boxes over
// a string "scene": splitter cuts the scene into sections, solver
// "renders" a section by uppercasing it, init/merge assemble a picture as
// an index-keyed map, genImg delivers the final picture to the sink.
//
// When tokens < tasks, splitter emits the first `tokens` sections with a
// <node> tag (values 0..tokens-1) and the remaining sections untagged — the
// input convention of the Fig. 4 dynamic solver segment. With tokens >=
// tasks every section is tagged round-robin (the static Fig. 2 setup).
func registerRayBoxes(reg *Registry, out *sink, tokens int) {
	reg.RegisterBox("splitter", func(c *core.BoxCall) error {
		scene := c.Field("scene").(string)
		nodes := c.Tag("nodes")
		tasks := c.Tag("tasks")
		if nodes <= 0 || tasks <= 0 {
			return nil
		}
		for i := 0; i < tasks; i++ {
			lo := i * len(scene) / tasks
			hi := (i + 1) * len(scene) / tasks
			r := record.Build().
				F("scene", scene).
				F("sect", section{Index: i, Lo: lo, Hi: hi}).
				T("tasks", tasks).
				Rec()
			if i == 0 {
				r.SetTag("fst", 1)
			}
			if tokens >= tasks {
				r.SetTag("node", i%nodes)
			} else if i < tokens {
				r.SetTag("node", i)
			}
			c.Emit(r)
		}
		return nil
	})
	solve := func(c *core.BoxCall) error {
		scene := c.Field("scene").(string)
		s := c.Field("sect").(section)
		c.Emit(record.New().
			SetField("chunk", chunk{Index: s.Index, Data: strings.ToUpper(scene[s.Lo:s.Hi])}))
		return nil
	}
	reg.RegisterBox("solver", solve)
	reg.RegisterBox("solve", solve)
	reg.RegisterBox("init", func(c *core.BoxCall) error {
		ch := c.Field("chunk").(chunk)
		c.Emit(record.New().SetField("pic", map[int]string{ch.Index: ch.Data}))
		return nil
	})
	reg.RegisterBox("merge", func(c *core.BoxCall) error {
		ch := c.Field("chunk").(chunk)
		pic := c.Field("pic").(map[int]string)
		np := make(map[int]string, len(pic)+1)
		for k, v := range pic {
			np[k] = v
		}
		np[ch.Index] = ch.Data
		c.Emit(record.New().SetField("pic", np))
		return nil
	})
	reg.RegisterBox("genImg", func(c *core.BoxCall) error {
		out.add(c.Field("pic").(map[int]string))
		return nil
	})
}

type section struct{ Index, Lo, Hi int }

type chunk struct {
	Index int
	Data  string
}

// fig3MergerSrc is the paper's Fig. 3, verbatim.
const fig3MergerSrc = `
net merger
{
    box init  ( (chunk, <fst>) -> (pic));
    box merge ( (chunk, pic) -> (pic));
} connect
    ( ( init .. [ {} -> {<cnt=1>} ] )
      | []
    )
    .. ( [| {pic}, {chunk} |]
         .. ( ( merge
                .. [ {<cnt>} -> {<cnt+=1>}]
              )
              | []
            )
       )*{<tasks> == <cnt>} ;
`

// fig2Src is the paper's Fig. 2, verbatim; the merger net resolves to the
// separately compiled Fig. 3 network.
const fig2Src = `
net raytracing_stat
{
    box splitter( (scene, <nodes>, <tasks>)
                  -> (scene, sect, <node>, <tasks>, <fst>)
                   | (scene, sect, <node>, <tasks> ));
    box solver ( (scene, sect) -> (chunk));
    net merger ( (chunk, <fst>) -> (pic),
                 (chunk) -> (pic));
    box genImg ( (pic) -> ());
} connect
    splitter .. solver!@<node> .. merger .. genImg
`

// dynDeclsSrc is the declaration block shared by both dynamic variants.
const dynDeclsSrc = `
    box splitter( (scene, <nodes>, <tasks>)
                  -> (scene, sect, <node>, <tasks>, <fst>)
                   | (scene, sect, <node>, <tasks> )
                   | (scene, sect, <tasks>, <fst>)
                   | (scene, sect, <tasks> ));
    box solve ( (scene, sect) -> (chunk));
    net merger ( (chunk, <fst>) -> (pic),
                 (chunk) -> (pic));
    box genImg ( (pic) -> ());
`

// fig4VerbatimSrc embeds the paper's Fig. 4 solver segment verbatim in the
// full network. REPRODUCTION FINDING (documented in EXPERIMENTS.md): under
// faithful S-Net filter semantics, flow inheritance attaches the unmatched
// <fst> tag to BOTH outputs of [ {chunk,<node>} -> {chunk}; {<node>} ], so
// the recycled node token carries <fst>, the section it joins produces a
// second <fst>-tagged chunk, the merger's init box fires twice, and the
// picture never completes. The run terminates cleanly but genImg receives
// nothing.
const fig4VerbatimSrc = `
net raytracing_dyn {` + dynDeclsSrc + `} connect
    splitter
    .. ( ( ( solve .. [ {chunk, <node>}
                        -> {chunk}; {<node>} ]
           )!@<node>
           | []
         )
         .. ( [] | [| {sect}, {<node>} |] )
       ) * {chunk}
    .. merger .. genImg
`

// fig4DynSrc is the corrected dynamic network: a choice of two filters
// routes <fst> explicitly with the chunk so the token leaves clean. The
// correction is expressed in plain S-Net, not by bending runtime semantics.
const fig4DynSrc = `
net raytracing_dyn {` + dynDeclsSrc + `} connect
    splitter
    .. ( ( ( solve .. ( [ {chunk, <node>, <fst>}
                          -> {chunk, <fst>}; {<node>} ]
                        | [ {chunk, <node>}
                            -> {chunk}; {<node>} ] )
           )!@<node>
           | []
         )
         .. ( [] | [| {sect}, {<node>} |] )
       ) * {chunk}
    .. merger .. genImg
`

func compileRaytracing(t *testing.T, src string, out *sink, tokens int) *core.Entity {
	t.Helper()
	reg := NewRegistry()
	registerRayBoxes(reg, out, tokens)
	mergerRes, err := Source(fig3MergerSrc, reg)
	if err != nil {
		t.Fatalf("Fig. 3 merger failed to compile: %v", err)
	}
	mergerNet, _ := mergerRes.Net("merger")
	reg.RegisterNet("merger", mergerNet)
	res, err := Source(src, reg)
	if err != nil {
		t.Fatalf("program failed to compile: %v", err)
	}
	for name, ent := range res.Nets {
		_ = name
		return ent
	}
	t.Fatal("no nets compiled")
	return nil
}

func checkScene(t *testing.T, out *sink, scene string, tasks int) {
	t.Helper()
	out.mu.Lock()
	defer out.mu.Unlock()
	if len(out.pics) != 1 {
		t.Fatalf("genImg received %d pictures, want 1", len(out.pics))
	}
	pic := out.pics[0]
	if len(pic) != tasks {
		t.Fatalf("picture has %d chunks, want %d (%v)", len(pic), tasks, pic)
	}
	var sb strings.Builder
	for i := 0; i < tasks; i++ {
		sb.WriteString(pic[i])
	}
	if got, want := sb.String(), strings.ToUpper(scene); got != want {
		t.Fatalf("assembled scene = %q, want %q", got, want)
	}
}

func TestFig2StaticNetworkEndToEnd(t *testing.T) {
	out := &sink{}
	const scene = "the quick brown fox jumps over the lazy dog"
	const tasks, nodes = 8, 4
	ent := compileRaytracing(t, fig2Src, out, tasks /* all tagged */)
	outs, err := core.NewNetwork(ent, core.Options{}).Run(
		record.Build().F("scene", scene).T("nodes", nodes).T("tasks", tasks).Rec())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Fatalf("network emitted %d records, want 0 (genImg consumes)", len(outs))
	}
	checkScene(t, out, scene, tasks)
}

func TestFig4DynamicNetworkEndToEnd(t *testing.T) {
	out := &sink{}
	const scene = "pack my box with five dozen liquor jugs, judge my vow"
	const tasks, nodes, tokens = 12, 4, 5
	ent := compileRaytracing(t, fig4DynSrc, out, tokens)
	outs, err := core.NewNetwork(ent, core.Options{}).Run(
		record.Build().F("scene", scene).T("nodes", nodes).T("tasks", tasks).Rec())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 0 {
		t.Fatalf("network emitted %d records, want 0", len(outs))
	}
	checkScene(t, out, scene, tasks)
}

func TestFig4DynamicTokenSweep(t *testing.T) {
	// The dynamic network must produce a complete picture for every
	// token count, including the degenerate tokens == tasks case the
	// paper identifies as "worst".
	const scene = "sphinx of black quartz judge my vow"
	const tasks, nodes = 8, 4
	for _, tokens := range []int{1, 2, 3, 4, 8} {
		out := &sink{}
		ent := compileRaytracing(t, fig4DynSrc, out, tokens)
		_, err := core.NewNetwork(ent, core.Options{}).Run(
			record.Build().F("scene", scene).T("nodes", nodes).T("tasks", tasks).Rec())
		if err != nil {
			t.Fatalf("tokens=%d: %v", tokens, err)
		}
		checkScene(t, out, scene, tasks)
	}
}

// TestFig4VerbatimTokenInheritsFst documents the reproduction finding: the
// verbatim Fig. 4 network terminates cleanly but never completes a picture,
// because recycled tokens flow-inherit <fst> (see fig4VerbatimSrc).
func TestFig4VerbatimTokenInheritsFst(t *testing.T) {
	out := &sink{}
	const scene = "abcdefghijklmnopqrstuvwx"
	const tasks, nodes, tokens = 8, 4, 3
	ent := compileRaytracing(t, fig4VerbatimSrc, out, tokens)
	_, err := core.NewNetwork(ent, core.Options{}).Run(
		record.Build().F("scene", scene).T("nodes", nodes).T("tasks", tasks).Rec())
	if err != nil {
		t.Fatal(err)
	}
	out.mu.Lock()
	defer out.mu.Unlock()
	if len(out.pics) != 0 {
		t.Fatalf("verbatim Fig. 4 unexpectedly completed %d picture(s); "+
			"the <fst>-inheritance finding no longer reproduces", len(out.pics))
	}
}

func TestFig2DescribeContainsPlacement(t *testing.T) {
	out := &sink{}
	ent := compileRaytracing(t, fig2Src, out, 8)
	d := ent.Describe()
	if !strings.Contains(d, "!@<node>") {
		t.Fatalf("Describe missing placement:\n%s", d)
	}
}
