// Package compile translates parsed S-Net programs (package lang) into
// runnable networks (package core). Box names are resolved against a
// Registry of Go box functions; net forward declarations resolve against
// previously compiled or registered networks. The compiler also infers
// type signatures bottom-up and emits best-effort type-flow warnings.
package compile

import (
	"fmt"
	"strings"

	"snet/internal/core"
	"snet/internal/lang"
	"snet/internal/record"
	"snet/internal/rtype"
)

// Registry binds external names: box implementations (Go functions) and
// pre-built networks available to forward declarations.
type Registry struct {
	boxes map[string]core.BoxFunc
	nets  map[string]*core.Entity
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		boxes: make(map[string]core.BoxFunc),
		nets:  make(map[string]*core.Entity),
	}
}

// RegisterBox binds a box name to its Go implementation. The box's type
// signature comes from the S-Net `box` declaration, not from Go.
func (r *Registry) RegisterBox(name string, fn core.BoxFunc) {
	r.boxes[name] = fn
}

// RegisterNet binds a network name, making it available to `net name
// (sig);` forward declarations and to bare name references.
func (r *Registry) RegisterNet(name string, e *core.Entity) {
	r.nets[name] = e
}

// Result is the outcome of compiling a program.
type Result struct {
	// Nets maps every toplevel net name to its compiled entity.
	Nets map[string]*core.Entity
	// Warnings are non-fatal findings (potential type-flow problems,
	// approximated combinators).
	Warnings []string
}

// Net returns a compiled toplevel net by name.
func (r *Result) Net(name string) (*core.Entity, bool) {
	e, ok := r.Nets[name]
	return e, ok
}

type compiler struct {
	reg      *Registry
	warnings []string
}

type scope struct {
	parent *scope
	names  map[string]*core.Entity
}

func (s *scope) lookup(name string) (*core.Entity, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if e, ok := sc.names[name]; ok {
			return e, true
		}
	}
	return nil, false
}

func (s *scope) child() *scope {
	return &scope{parent: s, names: make(map[string]*core.Entity)}
}

// Program compiles a parsed program. Every toplevel definition is compiled
// in order; later definitions may reference earlier ones.
func Program(prog *lang.Program, reg *Registry) (*Result, error) {
	c := &compiler{reg: reg}
	top := &scope{names: make(map[string]*core.Entity)}
	res := &Result{Nets: make(map[string]*core.Entity)}
	for _, def := range prog.Defs {
		e, err := c.compileDef(def, top)
		if err != nil {
			return nil, err
		}
		top.names[def.DeclName()] = e
		if nd, ok := def.(*lang.NetDecl); ok {
			res.Nets[nd.Name] = e
		}
	}
	res.Warnings = c.warnings
	return res, nil
}

// Source parses and compiles S-Net source text in one step.
func Source(src string, reg *Registry) (*Result, error) {
	prog, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return Program(prog, reg)
}

// Expr compiles a standalone connect expression; names resolve against the
// registry only.
func Expr(e lang.Expr, reg *Registry) (*core.Entity, []string, error) {
	c := &compiler{reg: reg}
	top := &scope{names: make(map[string]*core.Entity)}
	ent, err := c.compileExpr(e, top)
	if err != nil {
		return nil, nil, err
	}
	return ent, c.warnings, nil
}

func (c *compiler) warnf(format string, args ...any) {
	c.warnings = append(c.warnings, fmt.Sprintf(format, args...))
}

func (c *compiler) compileDef(def lang.Def, sc *scope) (*core.Entity, error) {
	switch d := def.(type) {
	case *lang.BoxDecl:
		fn, ok := c.reg.boxes[d.Name]
		if !ok {
			return nil, fmt.Errorf("%s: box %q has no registered implementation", d.Pos, d.Name)
		}
		return core.NewBox(d.Name, mappingToSig(d.Sig), fn), nil

	case *lang.NetDecl:
		if len(d.SigOnly) > 0 {
			ent, ok := sc.lookup(d.Name)
			if !ok {
				ent, ok = c.reg.nets[d.Name]
			}
			if !ok {
				return nil, fmt.Errorf("%s: net %q is declared by signature only but no definition or registered net exists", d.Pos, d.Name)
			}
			c.checkForwardSig(d, ent)
			return ent, nil
		}
		inner := sc.child()
		for _, nd := range d.Decls {
			e, err := c.compileDef(nd, inner)
			if err != nil {
				return nil, err
			}
			inner.names[nd.DeclName()] = e
		}
		ent, err := c.compileExpr(d.Connect, inner)
		if err != nil {
			return nil, fmt.Errorf("net %q: %w", d.Name, err)
		}
		return ent, nil

	default:
		return nil, fmt.Errorf("unknown declaration %T", def)
	}
}

// checkForwardSig warns when a forward declaration's signature is not
// honoured by the resolved entity (inputs declared must be acceptable).
func (c *compiler) checkForwardSig(d *lang.NetDecl, ent *core.Entity) {
	declIn := rtype.NewType()
	for _, m := range d.SigOnly {
		declIn.AddVariant(itemsToVariant(m.In))
	}
	for _, v := range declIn.Variants() {
		matched := false
		for _, w := range ent.Signature().In.Variants() {
			if w.SubsetOf(v) {
				matched = true
				break
			}
		}
		if !matched {
			c.warnf("net %s: declared input variant %s is not covered by resolved net's input type %s",
				d.Name, v, ent.Signature().In)
		}
	}
}

func (c *compiler) compileExpr(e lang.Expr, sc *scope) (*core.Entity, error) {
	switch x := e.(type) {
	case *lang.NameRef:
		if ent, ok := sc.lookup(x.Name); ok {
			return ent, nil
		}
		if ent, ok := c.reg.nets[x.Name]; ok {
			return ent, nil
		}
		if _, ok := c.reg.boxes[x.Name]; ok {
			return nil, fmt.Errorf("%s: box %q is registered but not declared — add a `box %s (...)` declaration with its signature", x.Pos, x.Name, x.Name)
		}
		return nil, fmt.Errorf("%s: unknown name %q", x.Pos, x.Name)

	case *lang.SerialExpr:
		l, err := c.compileExpr(x.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := c.compileExpr(x.R, sc)
		if err != nil {
			return nil, err
		}
		c.checkSerialFlow(l, r)
		return core.Serial(l, r), nil

	case *lang.ChoiceExpr:
		l, err := c.compileExpr(x.L, sc)
		if err != nil {
			return nil, err
		}
		r, err := c.compileExpr(x.R, sc)
		if err != nil {
			return nil, err
		}
		if x.Det {
			return core.DetChoice(l, r), nil
		}
		return core.Choice(l, r), nil

	case *lang.StarExpr:
		op, err := c.compileExpr(x.Operand, sc)
		if err != nil {
			return nil, err
		}
		pat, err := compilePattern(x.Exit)
		if err != nil {
			return nil, err
		}
		return core.Star(op, pat), nil

	case *lang.SplitExpr:
		op, err := c.compileExpr(x.Operand, sc)
		if err != nil {
			return nil, err
		}
		if x.Placed {
			return core.SplitAt(op, x.Tag), nil
		}
		if x.Det {
			return core.DetSplit(op, x.Tag), nil
		}
		return core.Split(op, x.Tag), nil

	case *lang.AtExpr:
		op, err := c.compileExpr(x.Operand, sc)
		if err != nil {
			return nil, err
		}
		return core.At(op, x.Node), nil

	case *lang.FilterExpr:
		if x.Rule == nil {
			return core.Identity(), nil
		}
		rule, err := compileFilterRule(x.Rule)
		if err != nil {
			return nil, err
		}
		return core.NewFilter("", rule), nil

	case *lang.SyncExpr:
		pats := make([]*rtype.Pattern, len(x.Patterns))
		for i, p := range x.Patterns {
			cp, err := compilePattern(p)
			if err != nil {
				return nil, err
			}
			pats[i] = cp
		}
		if len(pats) < 2 {
			return nil, fmt.Errorf("%s: synchrocell needs at least two patterns", x.Pos)
		}
		return core.NewSync(pats...), nil

	default:
		return nil, fmt.Errorf("unknown expression %T", e)
	}
}

// checkSerialFlow warns when an output variant of l cannot match any input
// variant of r even before flow inheritance is considered.
func (c *compiler) checkSerialFlow(l, r *core.Entity) {
	for _, v := range l.Signature().Out.Variants() {
		ok := false
		for _, w := range r.Signature().In.Variants() {
			if w.SubsetOf(v) || v.Size() == 0 {
				ok = true
				break
			}
		}
		if !ok {
			c.warnf("serial %s..%s: output variant %s of %s matches no input variant of %s (%s); records may still match via flow-inherited labels",
				l.Name(), r.Name(), v, l.Name(), r.Name(), r.Signature().In)
		}
	}
	// The static form of the optimizer's branch pruning (core.Optimize):
	// a choice branch no upstream record can ever win dispatch for is
	// almost certainly a programming mistake — the branch compiles, spawns
	// and never fires.
	for _, b := range core.DeadBranches(l, r) {
		c.warnf("serial %s..%s: branch %s can never win dispatch for any record of %s's output type %s; the optimizer prunes it",
			l.Name(), r.Name(), b, l.Name(), l.Signature().Out)
	}
}

// mappingToSig converts a box/net signature mapping to an rtype.Signature.
func mappingToSig(m lang.Mapping) rtype.Signature {
	in := rtype.NewType(itemsToVariant(m.In))
	out := rtype.NewType()
	for _, o := range m.Outs {
		out.AddVariant(itemsToVariant(o))
	}
	return rtype.NewSignature(in, out)
}

func itemsToVariant(items []lang.LabelItem) *rtype.Variant {
	v := rtype.NewVariant()
	for _, it := range items {
		v.Add(itemToLabel(it))
	}
	return v
}

func itemToLabel(it lang.LabelItem) rtype.Label {
	switch {
	case it.BTag:
		return rtype.BT(it.Name)
	case it.Tag:
		return rtype.T(it.Name)
	default:
		return rtype.F(it.Name)
	}
}

// compilePattern turns a pattern AST into a runtime pattern. Tags referenced
// in angled form inside guards are added to the pattern's required labels —
// {<tasks> == <cnt>} requires both tags, as in the paper.
func compilePattern(p *lang.PatternAST) (*rtype.Pattern, error) {
	v := itemsToVariant(p.Labels)
	var guardSrc string
	var guards []core.TagExpr
	for i, g := range p.Guards {
		if !lang.IsComparison(g) {
			return nil, fmt.Errorf("%s: pattern guard %s is not a comparison", p.Pos, g)
		}
		for _, name := range angledRefs(g) {
			v.Add(rtype.T(name))
		}
		guards = append(guards, compileTagExpr(g))
		if i > 0 {
			guardSrc += ", "
		}
		guardSrc += g.String()
	}
	pat := rtype.NewPattern(v)
	if len(guards) > 0 {
		pat.WithGuard(func(r *record.Record) bool {
			for _, g := range guards {
				if g(r) == 0 {
					return false
				}
			}
			return true
		}, guardSrc)
	}
	return pat, nil
}

// angledRefs collects tag names referenced in angled form within an
// expression.
func angledRefs(e lang.TagExprAST) []string {
	var names []string
	var walk func(lang.TagExprAST)
	walk = func(e lang.TagExprAST) {
		switch x := e.(type) {
		case *lang.TagRef:
			if x.Angled {
				names = append(names, x.Name)
			}
		case *lang.BinExpr:
			walk(x.L)
			walk(x.R)
		}
	}
	walk(e)
	return names
}

// compileFilterRule lowers a filter rule AST to the runtime representation.
func compileFilterRule(rule *lang.FilterRuleAST) (core.FilterRule, error) {
	pat, err := compilePattern(rule.Pattern)
	if err != nil {
		return core.FilterRule{}, err
	}
	out := core.FilterRule{Pattern: pat}
	for _, tmpl := range rule.Outputs {
		var fo core.FilterOutput
		for _, it := range tmpl.Items {
			switch it.Kind {
			case lang.OutCopyField:
				fo.CopyFields = append(fo.CopyFields, it.Name)
			case lang.OutCopyTag:
				fo.CopyTags = append(fo.CopyTags, it.Name)
			case lang.OutRenameField:
				fo.RenameFields = append(fo.RenameFields, core.Rename{From: it.From, To: it.Name})
			case lang.OutAssignTag:
				expr := compileTagExpr(it.Expr)
				name := it.Name
				id := record.Intern(name)
				var full core.TagExpr
				switch it.AddOp {
				case lang.PlusEq:
					full = func(r *record.Record) int {
						v, _ := r.TagSym(id)
						return v + expr(r)
					}
				case lang.MinusEq:
					full = func(r *record.Record) int {
						v, _ := r.TagSym(id)
						return v - expr(r)
					}
				default:
					full = expr
				}
				fo.SetTags = append(fo.SetTags, core.TagAssign{
					Name: name, Expr: full,
					Src: strings.Trim(it.String(), "<>"),
				})
			}
		}
		out.Outputs = append(out.Outputs, fo)
	}
	return out, nil
}

// compileTagExpr lowers a tag expression to a closure. Missing tags
// evaluate to 0; division and modulo by zero evaluate to 0 (reported
// behaviour, documented — S-Net leaves this undefined).
func compileTagExpr(e lang.TagExprAST) core.TagExpr {
	switch x := e.(type) {
	case *lang.IntLit:
		v := x.Val
		return func(*record.Record) int { return v }
	case *lang.TagRef:
		// Tag references are interned at compile time: guard and template
		// evaluation per record is then a symbol scan, not a string lookup.
		id := record.Intern(x.Name)
		return func(r *record.Record) int {
			v, _ := r.TagSym(id)
			return v
		}
	case *lang.BinExpr:
		l := compileTagExpr(x.L)
		r := compileTagExpr(x.R)
		switch x.Op {
		case lang.Plus:
			return func(rec *record.Record) int { return l(rec) + r(rec) }
		case lang.Minus:
			return func(rec *record.Record) int { return l(rec) - r(rec) }
		case lang.Star:
			return func(rec *record.Record) int { return l(rec) * r(rec) }
		case lang.Slash:
			return func(rec *record.Record) int {
				d := r(rec)
				if d == 0 {
					return 0
				}
				return l(rec) / d
			}
		case lang.Percent:
			return func(rec *record.Record) int {
				d := r(rec)
				if d == 0 {
					return 0
				}
				return l(rec) % d
			}
		case lang.EqEq:
			return boolExpr(func(a, b int) bool { return a == b }, l, r)
		case lang.Neq:
			return boolExpr(func(a, b int) bool { return a != b }, l, r)
		case lang.Lt:
			return boolExpr(func(a, b int) bool { return a < b }, l, r)
		case lang.Gt:
			return boolExpr(func(a, b int) bool { return a > b }, l, r)
		case lang.Le:
			return boolExpr(func(a, b int) bool { return a <= b }, l, r)
		case lang.Ge:
			return boolExpr(func(a, b int) bool { return a >= b }, l, r)
		}
	}
	return func(*record.Record) int { return 0 }
}

func boolExpr(cmp func(a, b int) bool, l, r core.TagExpr) core.TagExpr {
	return func(rec *record.Record) int {
		if cmp(l(rec), r(rec)) {
			return 1
		}
		return 0
	}
}
