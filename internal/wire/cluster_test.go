package wire

import (
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"snet/internal/core"
	"snet/internal/leakcheck"
	"snet/internal/record"
)

// testFleet runs a coordinator and n in-process Workers over real
// loopback TCP — every frame, codec negotiation, and goroutine is the
// production path; only the process boundary is folded away.
type testFleet struct {
	cl      *Cluster
	workers []*Worker
	wg      sync.WaitGroup
	errs    []error
}

func startFleet(t *testing.T, n, cpus int, ext *ExtTable, boxes map[string]core.BoxFunc) *testFleet {
	t.Helper()
	cl, err := Listen("127.0.0.1:0", CoordinatorConfig{
		Workers: n, CPUsPerNode: cpus, Ext: ext, JoinTimeout: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := &testFleet{cl: cl, errs: make([]error, n)}
	for i := 0; i < n; i++ {
		w := NewWorker(WorkerConfig{Ext: ext})
		for name, fn := range boxes {
			w.Register(name, fn)
		}
		f.workers = append(f.workers, w)
		f.wg.Add(1)
		go func(i int) {
			defer f.wg.Done()
			f.errs[i] = w.Run(cl.Addr().String())
		}(i)
	}
	if err := cl.WaitReady(); err != nil {
		cl.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cl.Close()
		f.wg.Wait()
	})
	return f
}

func doubler(c *core.BoxCall) error {
	c.Emit(c.NewRecord().SetField("x", c.Field("x").(int)*2))
	return nil
}

func TestLoopbackExecRoundTrip(t *testing.T) {
	leakcheck.Check(t)
	f := startFleet(t, 1, 2, nil, map[string]core.BoxFunc{"double": doubler})
	in := record.Build().F("x", 21).T("seq", 7).Rec()
	outs, remote, ok, err := f.cl.ExecBox(1, nil, "double", in, false, func() {
		t.Error("local fallback ran for a registered, marshalable box")
	})
	if err != nil || !ok || !remote {
		t.Fatalf("remote=%v ok=%v err=%v", remote, ok, err)
	}
	if len(outs) != 1 {
		t.Fatalf("outs = %v", outs)
	}
	if v, _ := outs[0].Field("x"); v != 42 {
		t.Fatalf("x = %v", v)
	}
	// CallBox runs detached: the worker must NOT have applied flow
	// inheritance — that is the coordinator's job, after ExecBox returns.
	if outs[0].HasTag("seq") {
		t.Fatalf("worker applied flow inheritance: %s", outs[0])
	}
	ws := f.cl.WireStats()
	if ws.RemoteExecs != 1 || ws.LocalExecs != 0 {
		t.Fatalf("stats = %+v", ws)
	}
	if f.cl.Stats().Execs[1] != 1 {
		t.Fatalf("model execs = %v", f.cl.Stats().Execs)
	}
}

func TestLoopbackCodecNegotiationOnce(t *testing.T) {
	leakcheck.Check(t)
	f := startFleet(t, 1, 1, nil, map[string]core.BoxFunc{"double": doubler})
	for i := 0; i < 3; i++ {
		in := record.Build().F("x", i).Rec()
		if _, _, _, err := f.cl.ExecBox(1, nil, "double", in, false, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	// Label "x" crossed each direction once; later EXECs carry symbol
	// references. 3 identical round trips with shrinking-or-equal frames
	// is the observable: bytes/frame must drop after the first.
	ws := f.cl.WireStats()
	if ws.RemoteExecs != 3 {
		t.Fatalf("remote execs = %d", ws.RemoteExecs)
	}
}

func TestExecBoxUnregisteredBoxRunsLocal(t *testing.T) {
	leakcheck.Check(t)
	f := startFleet(t, 1, 1, nil, map[string]core.BoxFunc{"double": doubler})
	ran := false
	_, remote, ok, err := f.cl.ExecBox(1, nil, "merge", record.New(), false, func() { ran = true })
	if err != nil || !ok || remote || !ran {
		t.Fatalf("remote=%v ok=%v ran=%v err=%v", remote, ok, ran, err)
	}
	if ws := f.cl.WireStats(); ws.LocalExecs != 1 || ws.RemoteExecs != 0 {
		t.Fatalf("stats = %+v", ws)
	}
}

func TestExecBoxUnserializableInputRunsLocal(t *testing.T) {
	leakcheck.Check(t)
	f := startFleet(t, 1, 1, nil, map[string]core.BoxFunc{"double": doubler})
	ran := false
	in := record.New().SetField("x", struct{ no int }{1})
	_, remote, ok, err := f.cl.ExecBox(1, nil, "double", in, false, func() { ran = true })
	if err != nil || !ok || remote || !ran {
		t.Fatalf("remote=%v ok=%v ran=%v err=%v", remote, ok, ran, err)
	}
}

func TestExecBoxNode0RunsLocal(t *testing.T) {
	leakcheck.Check(t)
	f := startFleet(t, 1, 1, nil, map[string]core.BoxFunc{"double": doubler})
	ran := false
	_, remote, ok, _ := f.cl.ExecBox(0, nil, "double", record.New().SetField("x", 1), false,
		func() { ran = true })
	if !ok || remote || !ran {
		t.Fatalf("node 0 must run in-process: remote=%v ok=%v ran=%v", remote, ok, ran)
	}
}

func TestRemoteBoxErrorSurfaces(t *testing.T) {
	leakcheck.Check(t)
	boxes := map[string]core.BoxFunc{
		"half": func(c *core.BoxCall) error {
			c.Emit(c.NewRecord().SetField("y", 1))
			return errors.New("lens cracked")
		},
	}
	f := startFleet(t, 1, 1, nil, boxes)
	outs, remote, ok, err := f.cl.ExecBox(1, nil, "half", record.New(), false, func() {})
	if !ok || !remote {
		t.Fatalf("remote=%v ok=%v", remote, ok)
	}
	if err == nil || !strings.Contains(err.Error(), "lens cracked") {
		t.Fatalf("err = %v", err)
	}
	// Local semantics: emissions before the failure still flow.
	if len(outs) != 1 {
		t.Fatalf("outs = %v", outs)
	}
}

func TestDispatchTimeStealCrossesWire(t *testing.T) {
	leakcheck.Check(t)
	block := make(chan struct{})
	started := make(chan struct{}, 8)
	boxes := map[string]core.BoxFunc{
		"slow": func(c *core.BoxCall) error {
			started <- struct{}{}
			<-block
			c.Emit(c.NewRecord().SetField("x", c.Field("x").(int)))
			return nil
		},
	}
	f := startFleet(t, 2, 1, nil, boxes)
	var wg sync.WaitGroup
	results := make([]bool, 2)
	// Two stealable execs, both homed on node 1, one CPU per node: the
	// first occupies node 1's slot, the second must be granted node 2's —
	// and cross the wire as a STEAL-GRANT frame to the OTHER worker.
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			in := record.Build().F("x", i).Rec()
			_, remote, ok, err := f.cl.ExecBox(1, nil, "slow", in, true, func() {})
			results[i] = ok && remote && err == nil
		}(i)
	}
	// Both box bodies running concurrently proves the grant migrated.
	for i := 0; i < 2; i++ {
		select {
		case <-started:
		case <-time.After(10 * time.Second):
			t.Fatal("second execution never started: steal did not happen")
		}
	}
	close(block)
	wg.Wait()
	if !results[0] || !results[1] {
		t.Fatalf("results = %v", results)
	}
	if st := f.cl.Stats(); st.Steals != 1 || st.Migrated != 1 {
		t.Fatalf("model stats = %+v", st)
	}
	if ws := f.cl.WireStats(); ws.StolenExecs != 1 || ws.RemoteExecs != 2 {
		t.Fatalf("wire stats = %+v", ws)
	}
}

func TestLoadGossipRaisesLoads(t *testing.T) {
	leakcheck.Check(t)
	block := make(chan struct{})
	started := make(chan struct{}, 1)
	boxes := map[string]core.BoxFunc{
		"slow": func(c *core.BoxCall) error {
			started <- struct{}{}
			<-block
			return nil
		},
	}
	f := startFleet(t, 1, 2, nil, boxes)
	defer close(block)
	done := make(chan struct{})
	go func() {
		defer close(done)
		f.cl.ExecBox(1, nil, "slow", record.New(), false, func() {})
	}()
	<-started
	// The model already counts the granted slot; the worker's LOAD frame
	// can only confirm (max-merge). Wait for it to arrive, then check the
	// platform view.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if loads := f.cl.Loads(nil); loads[1] >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Loads never reflected the in-flight execution")
		}
		time.Sleep(time.Millisecond)
	}
	block <- struct{}{}
	<-done
	if ws := f.cl.WireStats(); ws.StealRequests < 1 {
		// After its last execution the worker goes idle and must
		// advertise hunger.
		deadline := time.Now().Add(5 * time.Second)
		for f.cl.WireStats().StealRequests < 1 {
			if time.Now().After(deadline) {
				t.Fatal("idle worker never sent STEAL-REQUEST")
			}
			time.Sleep(time.Millisecond)
		}
	}
}

func TestPeerDeathFailsOverToLocal(t *testing.T) {
	leakcheck.Check(t)
	// A fake worker: joins the fleet, then slams the connection shut the
	// moment the first EXEC arrives — death mid-call.
	cl, err := Listen("127.0.0.1:0", CoordinatorConfig{
		Workers: 1, CPUsPerNode: 1,
		// The fake worker never answers PINGs; keep the sweep inert so
		// only the explicit connection kill is in play.
		HeartbeatInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	conn, err := net.Dial("tcp", cl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write(appendFrame(nil, fHello, appendHello(nil, 1, 0, []string{"double"}))); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := readFrame(conn, DefaultMaxFrame); err != nil || typ != fWelcome {
		t.Fatalf("typ=%d err=%v", typ, err)
	}
	if err := cl.WaitReady(); err != nil {
		t.Fatal(err)
	}
	killed := make(chan struct{})
	go func() {
		readFrame(conn, DefaultMaxFrame) // the EXEC
		conn.Close()
		close(killed)
	}()
	ran := false
	outs, remote, ok, err := cl.ExecBox(1, nil, "double", record.New().SetField("x", 3), false,
		func() { ran = true })
	<-killed
	if err != nil || !ok || remote || !ran || outs != nil {
		t.Fatalf("failover broken: remote=%v ok=%v ran=%v outs=%v err=%v", remote, ok, ran, outs, err)
	}
	ws := cl.WireStats()
	if ws.Failovers != 1 || ws.LocalExecs != 1 || ws.LiveWorkers != 0 {
		t.Fatalf("stats = %+v", ws)
	}
	// The dead peer must not strand the platform: further execs on that
	// node run locally without waiting on the corpse.
	ran = false
	_, remote, ok, err = cl.ExecBox(1, nil, "double", record.New().SetField("x", 4), false,
		func() { ran = true })
	if err != nil || !ok || remote || !ran {
		t.Fatalf("post-death exec: remote=%v ok=%v ran=%v err=%v", remote, ok, ran, err)
	}
}

func TestHelloVersionMismatchRefused(t *testing.T) {
	leakcheck.Check(t)
	cl, err := Listen("127.0.0.1:0", CoordinatorConfig{Workers: 1, CPUsPerNode: 1, JoinTimeout: 10 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	conn, err := net.Dial("tcp", cl.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	bad := appendHello(nil, 1, 0, nil)
	bad[4] = 0xfe // corrupt the version field (bytes 4..5, after the magic)
	if _, err := conn.Write(appendFrame(nil, fHello, bad)); err != nil {
		t.Fatal(err)
	}
	typ, payload, err := readFrame(conn, DefaultMaxFrame)
	if err != nil || typ != fGoodbye {
		t.Fatalf("typ=%d err=%v, want GOODBYE", typ, err)
	}
	reason, _ := parseGoodbye(payload)
	if !strings.Contains(reason, "version") {
		t.Fatalf("reason = %q", reason)
	}
	// The refused join must not burn the slot: a well-versioned worker
	// joining afterwards completes the fleet.
	w := NewWorker(WorkerConfig{})
	done := make(chan error, 1)
	go func() { done <- w.Run(cl.Addr().String()) }()
	if err := cl.WaitReady(); err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if err := <-done; err != nil {
		t.Fatalf("worker after refused join: %v", err)
	}
}

func TestWorkerRefusedJoinReportsReason(t *testing.T) {
	leakcheck.Check(t)
	// A "coordinator" that always refuses.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		readFrame(conn, DefaultMaxFrame)
		conn.Write(appendFrame(nil, fGoodbye, appendGoodbye(nil, "fleet is full")))
	}()
	err = NewWorker(WorkerConfig{}).Run(ln.Addr().String())
	if err == nil || !strings.Contains(err.Error(), "fleet is full") {
		t.Fatalf("err = %v", err)
	}
}

func TestCleanShutdown(t *testing.T) {
	leakcheck.Check(t)
	f := startFleet(t, 2, 1, nil, map[string]core.BoxFunc{"double": doubler})
	for i := 0; i < 4; i++ {
		node := 1 + i%2
		if _, _, _, err := f.cl.ExecBox(node, nil, "double",
			record.Build().F("x", i).Rec(), false, func() {}); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.cl.Close(); err != nil {
		t.Fatal(err)
	}
	f.wg.Wait()
	// GOODBYE means a nil worker exit — connection loss would error.
	for i, err := range f.errs {
		if err != nil {
			t.Fatalf("worker %d exit: %v", i, err)
		}
	}
}

func TestExtensionValuesCrossTheWire(t *testing.T) {
	leakcheck.Check(t)
	type payload struct{ A, B byte }
	mkExt := func() *ExtTable {
		ext := NewExtTable()
		RegisterExt(ext, "test.payload",
			func(p payload) ([]byte, error) { return []byte{p.A, p.B}, nil },
			func(d []byte) (payload, error) { return payload{d[0], d[1]}, nil })
		return ext
	}
	boxes := map[string]core.BoxFunc{
		"swap": func(c *core.BoxCall) error {
			p := c.Field("p").(payload)
			c.Emit(c.NewRecord().SetField("p", payload{p.B, p.A}))
			return nil
		},
	}
	// Distinct table instances per endpoint, same registrations — exactly
	// the two-process situation.
	cl, err := Listen("127.0.0.1:0", CoordinatorConfig{Workers: 1, CPUsPerNode: 1, Ext: mkExt()})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(WorkerConfig{Ext: mkExt()})
	for name, fn := range boxes {
		w.Register(name, fn)
	}
	done := make(chan error, 1)
	go func() { done <- w.Run(cl.Addr().String()) }()
	if err := cl.WaitReady(); err != nil {
		t.Fatal(err)
	}
	outs, remote, ok, err := cl.ExecBox(1, nil, "swap",
		record.New().SetField("p", payload{1, 2}), false, func() {})
	if err != nil || !ok || !remote || len(outs) != 1 {
		t.Fatalf("remote=%v ok=%v outs=%v err=%v", remote, ok, outs, err)
	}
	if v, _ := outs[0].Field("p"); v != (payload{2, 1}) {
		t.Fatalf("p = %v", v)
	}
	cl.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
