package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	buf := appendFrame(nil, fLoad, appendLoad(nil, 3))
	typ, payload, err := readFrame(bytes.NewReader(buf), DefaultMaxFrame)
	if err != nil {
		t.Fatal(err)
	}
	if typ != fLoad {
		t.Fatalf("type = %d", typ)
	}
	if v, err := parseLoad(payload); err != nil || v != 3 {
		t.Fatalf("load = %d, %v", v, err)
	}
	if frameLen(len(payload)) != int64(len(buf)) {
		t.Fatalf("frameLen = %d, wire = %d", frameLen(len(payload)), len(buf))
	}
}

func TestReadFrameShortHeader(t *testing.T) {
	// A peer dying inside the 4-byte length prefix: ReadFull surfaces the
	// truncation, not a hang or a garbage frame.
	_, _, err := readFrame(bytes.NewReader([]byte{7, 0}), DefaultMaxFrame)
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("err = %v, want io.ErrUnexpectedEOF", err)
	}
	// Dying exactly on the frame boundary is a clean EOF — the only
	// place a connection may end silently.
	_, _, err = readFrame(bytes.NewReader(nil), DefaultMaxFrame)
	if err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestReadFrameShortPayload(t *testing.T) {
	full := appendFrame(nil, fGoodbye, appendGoodbye(nil, "bye"))
	for cut := 5; cut < len(full); cut++ {
		_, _, err := readFrame(bytes.NewReader(full[:cut]), DefaultMaxFrame)
		if err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: err = %v, want io.ErrUnexpectedEOF", cut, err)
		}
	}
}

func TestReadFrameOversized(t *testing.T) {
	buf := appendFrame(nil, fBatch, make([]byte, 100))
	_, _, err := readFrame(bytes.NewReader(buf), 32)
	if !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
	// The limit is on the announced length, so a hostile prefix cannot
	// force an allocation: nothing past the header is read.
	r := bytes.NewReader(append([]byte{0xff, 0xff, 0xff, 0xff}, 1))
	if _, _, err := readFrame(r, DefaultMaxFrame); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("err = %v, want ErrFrameTooLarge", err)
	}
}

func TestReadFrameZeroLength(t *testing.T) {
	_, _, err := readFrame(bytes.NewReader([]byte{0, 0, 0, 0}), DefaultMaxFrame)
	if err == nil || !strings.Contains(err.Error(), "zero-length") {
		t.Fatalf("err = %v", err)
	}
}

func TestHelloRoundTrip(t *testing.T) {
	h, err := parseHello(appendHello(nil, 4, 0, []string{"solver", "fuse"}))
	if err != nil {
		t.Fatal(err)
	}
	if h.version != protoVersion || h.cpus != 4 || h.node != 0 || len(h.boxes) != 2 || h.boxes[1] != "fuse" {
		t.Fatalf("hello = %+v", h)
	}
	// A RE-HELLO carries the node id the worker held before.
	h, err = parseHello(appendHello(nil, 4, 2, nil))
	if err != nil {
		t.Fatal(err)
	}
	if h.node != 2 {
		t.Fatalf("rejoin node = %d", h.node)
	}
}

func TestHelloRejectsBadMagic(t *testing.T) {
	payload := appendHello(nil, 1, 0, nil)
	payload[0] ^= 0xff
	if _, err := parseHello(payload); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("err = %v", err)
	}
}

func TestWelcomeRoundTrip(t *testing.T) {
	w, err := parseWelcome(appendWelcome(nil, 2, 3, 8, time.Second, 4*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if w.version != protoVersion || w.node != 2 || w.nodes != 3 || w.slots != 8 {
		t.Fatalf("welcome = %+v", w)
	}
	if w.heartbeat != time.Second || w.liveness != 4*time.Second {
		t.Fatalf("heartbeat params = %v / %v", w.heartbeat, w.liveness)
	}
	// Sub-millisecond and negative durations clamp rather than wrap.
	w, err = parseWelcome(appendWelcome(nil, 1, 2, 1, 500*time.Microsecond, -time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if w.heartbeat != 0 || w.liveness != 0 {
		t.Fatalf("clamped params = %v / %v", w.heartbeat, w.liveness)
	}
}

func TestExecResultHeaders(t *testing.T) {
	rec := []byte{9, 9, 9}
	e, err := parseExec(append(appendExecHeader(nil, 42, 1, "solver"), rec...))
	if err != nil {
		t.Fatal(err)
	}
	if e.req != 42 || e.home != 1 || e.box != "solver" || !bytes.Equal(e.rec, rec) {
		t.Fatalf("exec = %+v", e)
	}
	r, err := parseResult(append(appendResultHeader(nil, 42, statusErr, "boom"), rec...))
	if err != nil {
		t.Fatal(err)
	}
	if r.req != 42 || r.status != statusErr || r.errmsg != "boom" || !bytes.Equal(r.batch, rec) {
		t.Fatalf("result = %+v", r)
	}
}

func TestTruncatedMessages(t *testing.T) {
	// Every parser must reject every truncation of a valid payload
	// rather than read out of bounds or mis-split fields.
	payloads := map[string][]byte{
		"hello":   appendHello(nil, 2, 1, []string{"a", "bc"}),
		"welcome": appendWelcome(nil, 1, 2, 4, time.Second, 4*time.Second),
		"goodbye": appendGoodbye(nil, "reason"),
	}
	for name, full := range payloads {
		for cut := 0; cut < len(full); cut++ {
			var err error
			switch name {
			case "hello":
				_, err = parseHello(full[:cut])
			case "welcome":
				_, err = parseWelcome(full[:cut])
			case "goodbye":
				_, err = parseGoodbye(full[:cut])
			}
			if err == nil {
				t.Errorf("%s truncated at %d parsed successfully", name, cut)
			}
		}
	}
}
