package wire

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snet/internal/core"
	"snet/internal/journal"
	"snet/internal/leakcheck"
	"snet/internal/record"
	"snet/internal/rtype"
)

// startJournalFleet is startFleet with an exec journal, and with shutdown
// under the test's control — the orphan tests care about the order in
// which coordinators die.
func startJournalFleet(t *testing.T, dir string, boxes map[string]core.BoxFunc) (*Cluster, func()) {
	t.Helper()
	cl, err := Listen("127.0.0.1:0", CoordinatorConfig{
		Workers: 1, CPUsPerNode: 1, JoinTimeout: 10 * time.Second, JournalDir: dir,
	})
	if err != nil {
		t.Fatal(err)
	}
	w := NewWorker(WorkerConfig{})
	for name, fn := range boxes {
		w.Register(name, fn)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		w.Run(cl.Addr().String())
	}()
	if err := cl.WaitReady(); err != nil {
		cl.Close()
		t.Fatal(err)
	}
	var once sync.Once
	stop := func() {
		once.Do(func() {
			cl.Close()
			wg.Wait()
		})
	}
	t.Cleanup(stop)
	return cl, stop
}

// A completed round trip leaves nothing in the exec journal: the
// dispatch was journaled before the EXEC shipped and acked when the
// RESULT landed.
func TestExecJournalCompletedCallLeavesNoOrphan(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	cl, stop := startJournalFleet(t, dir, map[string]core.BoxFunc{"double": doubler})
	outs, remote, ok, err := cl.ExecBox(1, nil, "double", record.Build().F("x", 21).Rec(), false,
		func() { t.Error("local fallback ran") })
	if err != nil || !ok || !remote || len(outs) != 1 {
		t.Fatalf("remote=%v ok=%v outs=%v err=%v", remote, ok, outs, err)
	}
	if got := cl.Orphans(); len(got) != 0 {
		t.Fatalf("fresh journal reports orphans: %v", got)
	}
	stop()
	j, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if got := j.Recovered(); len(got) != 0 {
		t.Fatalf("completed call left unacked entries: %v", got)
	}
}

// A coordinator that dies mid-call leaves the dispatched EXEC in its
// journal; the next coordinator on the same directory sees it as an
// orphan and re-drives it through the normal dispatch path — remotely,
// on its own fleet — with the input record intact.
func TestExecJournalOrphanRedrive(t *testing.T) {
	leakcheck.Check(t)
	dir := t.TempDir()
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	hang := func(c *core.BoxCall) error {
		started <- struct{}{}
		<-release
		c.Emit(c.NewRecord().SetField("x", c.Field("x").(int)+1))
		return nil
	}
	clA, stopA := startJournalFleet(t, dir, map[string]core.BoxFunc{"hang": hang})
	var callWG sync.WaitGroup
	callWG.Add(1)
	go func() {
		defer callWG.Done()
		clA.ExecBox(1, nil, "hang", record.Build().F("x", 1).T("seq", 4).Rec(), false,
			func() { t.Error("local fallback ran on coordinator A") })
	}()
	<-started // the EXEC is journaled (append precedes the frame) and executing

	// "Crash": coordinator B opens the same journal directory while A's
	// call is still in flight, exactly what a restarted coordinator sees.
	live := func(c *core.BoxCall) error {
		c.Emit(c.NewRecord().SetField("x", c.Field("x").(int)+1))
		return nil
	}
	clB, stopB := startJournalFleet(t, dir, map[string]core.BoxFunc{"hang": live})
	orphans := clB.Orphans()
	if len(orphans) != 1 {
		t.Fatalf("orphans = %v, want exactly the in-flight call", orphans)
	}
	if orphans[0].Meta != "hang" {
		t.Fatalf("orphan box = %q", orphans[0].Meta)
	}
	if v, _ := orphans[0].Rec.Field("x"); v != 1 {
		t.Fatalf("orphan input x = %v, want the dispatched 1", v)
	}
	if v, ok := orphans[0].Rec.Tag("seq"); !ok || v != 4 {
		t.Fatalf("orphan input lost tag <seq>: %s", orphans[0].Rec)
	}

	var got []*record.Record
	var gotErr error
	n, err := clB.RedriveOrphans(nil, func(box string, outs []*record.Record, err error) {
		got, gotErr = outs, err
	})
	if err != nil || n != 1 {
		t.Fatalf("redriven = %d, err = %v", n, err)
	}
	if gotErr != nil {
		t.Fatalf("redriven call failed: %v", gotErr)
	}
	if len(got) != 1 {
		t.Fatalf("redriven outs = %v", got)
	}
	if v, _ := got[0].Field("x"); v != 2 {
		t.Fatalf("redriven x = %v, want 2", v)
	}
	if ws := clB.WireStats(); ws.RemoteExecs != 1 {
		t.Fatalf("redrive did not cross the wire: %+v", ws)
	}
	if again, err := clB.RedriveOrphans(nil, nil); err != nil || again != 0 {
		t.Fatalf("second redrive = %d, %v; the orphan set must be consumed", again, err)
	}

	// Let A's call finish and both fleets shut down cleanly, then check
	// the directory's final word: nothing left to re-drive.
	close(release)
	callWG.Wait()
	stopB()
	stopA()
	j, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer j.Close()
	if left := j.Recovered(); len(left) != 0 {
		t.Fatalf("unacked entries remain after redrive: %v", left)
	}
}

// A worker-side panic crosses the wire as a RESULT error and feeds the
// dispatching runtime's retry policy like a local panic would: the box
// re-dispatches per BoxRetry and the exact input record — fields and
// inherited tags untouched — lands in the dead-letter queue.
func TestRemotePanicRetriesIntoDeadLetters(t *testing.T) {
	leakcheck.Check(t)
	var remoteCalls atomic.Int32
	boxes := map[string]core.BoxFunc{
		"fragile": func(c *core.BoxCall) error {
			remoteCalls.Add(1)
			panic("kaboom")
		},
	}
	f := startFleet(t, 1, 1, nil, boxes)
	sig := core.MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	ent := core.At(core.NewBox("fragile", sig, func(c *core.BoxCall) error {
		t.Error("box body ran locally; the panic should come from the worker")
		return nil
	}), 1)
	inst := core.NewNetwork(ent, core.Options{
		Platform: f.cl,
		BoxRetry: core.BoxRetry{Attempts: 3, Backoff: time.Microsecond},
	}).Start()
	if !inst.Send(record.Build().F("x", 7).T("evidence", 9).Rec()) {
		t.Fatal("send refused")
	}
	inst.Close()

	if got := remoteCalls.Load(); got != 3 {
		t.Fatalf("remote executions = %d, want one per retry attempt", got)
	}
	letters, dropped := inst.DeadLetters()
	if len(letters) != 1 || dropped != 0 {
		t.Fatalf("dead letters = %v (dropped %d), want exactly the poison record", letters, dropped)
	}
	dl := letters[0]
	if dl.Entity != "fragile" || dl.Attempts != 3 {
		t.Fatalf("dead letter = %+v", dl)
	}
	if err := dl.Err; err == nil || !strings.Contains(err.Error(), "box panicked: kaboom") {
		t.Fatalf("dead letter err = %v, want the worker's panic text", dl.Err)
	}
	if v, _ := dl.Record.Field("x"); v != 7 {
		t.Fatalf("dead letter record x = %v", v)
	}
	if v, ok := dl.Record.Tag("evidence"); !ok || v != 9 {
		t.Fatalf("dead letter record lost tag <evidence>: %s", dl.Record)
	}
	report := inst.Errs()
	var panics int
	for _, e := range report.Retained {
		if e.Category == core.ErrCatPanic {
			panics++
		}
	}
	if panics == 0 {
		t.Fatalf("no ErrCatPanic in structured errors: %+v", report)
	}
}
