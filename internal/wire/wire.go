// Package wire is the multi-process transport underneath Distributed
// S-Net: a length-prefixed TCP protocol that stretches the in-process
// cluster model (internal/dist) across OS processes, so the same S-Net
// program — same combinators, same placement tags, same stealing policy —
// runs on one process or on a coordinator plus snetd workers with zero
// source changes. This is the paper's portability claim made literal: the
// network description stays untouched while the platform underneath it
// changes from threads to sockets.
//
// # Topology and division of labor
//
// One coordinator process runs the S-Net network itself: every entity
// goroutine, every stream link, every placement decision lives there.
// Worker processes (cmd/snetd) contribute CPU slots and a box table. The
// coordinator's Cluster embeds a dist.Cluster as its scheduling model —
// slot queues, dispatch- and release-time stealing, cancellation, and all
// Stats accounting are the model's, byte-for-byte identical to the
// in-process platform — and uses dist.Cluster.ExecOn to learn which node's
// slot an execution was granted. When the granted node is remote, the box
// call ships as an EXEC frame (box name plus codec-encoded input record)
// and the worker's emissions return as a RESULT frame; when it is node 0,
// or the box is not registered remotely, or the input has no wire form,
// the execution runs in-process on the granted slot exactly as before.
//
// Box closures cannot cross a socket, so remote execution rides the
// core.RemotePlatform contract: the runtime offers the box's name and
// triggering record, the worker executes its registered body via
// core.CallBox (no flow inheritance), and the coordinator applies
// inheritance and type checking to the returned emissions — remote and
// local executions are indistinguishable downstream.
//
// # Protocol
//
// Every frame is a u32 little-endian length followed by that many payload
// bytes; the first payload byte is the frame type. Oversized and truncated
// frames sever the connection. See docs/architecture.md for the full frame
// table. The life of a connection:
//
//	worker                         coordinator
//	  HELLO(version, cpus,
//	        rejoin node, boxes)   →
//	                              ← WELCOME(node id, cluster size, slots,
//	                                        heartbeat interval, liveness)
//	                              ← EXEC / STEAL-GRANT(req, box, record)
//	  RESULT(req, emissions)      →
//	  LOAD(gate occupancy)        →
//	  STEAL-REQUEST (idle)        →
//	                              ← RECORD-BATCH (stream hops, mirrored)
//	                              ← PING (idle link, liveness probe)
//	  PONG                        →
//	                              ← GOODBYE
//	  GOODBYE                     →   (both sides close)
//
// PING/PONG keep an idle link observably alive: the coordinator probes any
// link it has not heard from within the heartbeat interval and declares a
// peer dead — hung, not just closed — when nothing arrives for the
// liveness timeout. A worker that loses its connection may reconnect and
// present its old node id in HELLO (a RE-HELLO); the coordinator resets
// that link's codec pair and returns the node to the schedulable set. See
// docs/architecture.md "Failure model" for the full state machine.
//
// Record payloads use the negotiated v2 codec (dist.Codec): each direction
// of each connection owns one codec pair, so a label name crosses each
// socket exactly once and steady-state records carry symbol references.
// Non-scalar field values (scenes, image chunks) cross through a
// dist.ValueCodec extension table registered on both endpoints. A
// connection that drops mid-stream must not reuse its codecs — a
// reconnecting link starts fresh via dist.Codec.Reset.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// protoVersion is the protocol version exchanged in HELLO/WELCOME; a
// mismatch is answered with GOODBYE and the connection is closed.
// Version 2 added the rejoin node id to HELLO, the heartbeat parameters to
// WELCOME, and the PING/PONG frames.
const protoVersion = 2

// helloMagic leads every HELLO frame ("SNET"), so a stray connection from
// something that is not a worker fails fast instead of being interpreted.
const helloMagic = 0x534e4554

// Frame types.
const (
	fHello      byte = 1  // worker → coordinator: join with capabilities
	fWelcome    byte = 2  // coordinator → worker: node id + cluster shape
	fExec       byte = 3  // coordinator → worker: run a box call
	fStealGrant byte = 4  // coordinator → worker: run a box call stolen from its home node
	fResult     byte = 5  // worker → coordinator: a box call's emissions
	fBatch      byte = 6  // coordinator → worker: a mirrored stream batch (RECORD-BATCH)
	fLoad       byte = 7  // worker → coordinator: gate occupancy gossip
	fStealReq   byte = 8  // worker → coordinator: idle, hungry for migrated work
	fGoodbye    byte = 9  // either direction: orderly leave, with reason
	fPing       byte = 10 // either direction: liveness probe (empty payload)
	fPong       byte = 11 // either direction: liveness probe answer (empty payload)
)

// DefaultMaxFrame bounds a single frame (length prefix value). 64 MiB
// accommodates a full-scene image chunk batch with a wide margin while
// keeping a corrupted length prefix from allocating the moon.
const DefaultMaxFrame = 64 << 20

// ErrFrameTooLarge is returned (wrapped, with sizes) when a peer announces
// a frame larger than the configured maximum; the connection is severed,
// since the stream can no longer be trusted.
var ErrFrameTooLarge = errors.New("wire: frame exceeds maximum size")

// readFrame reads one length-prefixed frame and returns its type byte and
// payload (the bytes after the type). Short reads surface as
// io.ErrUnexpectedEOF from io.ReadFull — a peer that dies mid-frame is
// indistinguishable from a truncated stream, and both sever the
// connection. A clean EOF between frames returns io.EOF.
func readFrame(r io.Reader, max int) (byte, []byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return 0, nil, fmt.Errorf("wire: zero-length frame")
	}
	if int64(n) > int64(max) {
		return 0, nil, fmt.Errorf("%w: %d bytes announced, %d allowed", ErrFrameTooLarge, n, max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// appendFrame assembles one frame — length prefix, type byte, payload
// parts — into buf, returning the grown buffer. The frame goes out in a
// single Write so a frame is never interleaved with another writer's bytes
// (writers additionally serialize on a per-connection mutex, which also
// pins the codec negotiation order to the wire order).
func appendFrame(buf []byte, typ byte, parts ...[]byte) []byte {
	n := 1
	for _, p := range parts {
		n += len(p)
	}
	buf = binary.LittleEndian.AppendUint32(buf, uint32(n))
	buf = append(buf, typ)
	for _, p := range parts {
		buf = append(buf, p...)
	}
	return buf
}

// frameLen returns the on-wire size of a frame with the given payload
// length: the length prefix, the type byte, and the payload.
func frameLen(payload int) int64 { return int64(4 + 1 + payload) }
