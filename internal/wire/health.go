// Peer health: the coordinator-side fault accounting that turns transport
// misbehavior into scheduling decisions. Three mechanisms cooperate:
//
//   - Heartbeats (sweep): the coordinator PINGs any link it has not heard
//     from within the heartbeat interval, and declares a peer dead — hung,
//     not just closed — when nothing has arrived for the liveness timeout.
//     Death closes the connection, which fails every pending EXEC over to
//     local execution exactly as an observed disconnect does.
//
//   - Faults and quarantine: call timeouts, send failures, and unclean
//     disconnects are recorded per NODE (not per connection — a flapping
//     worker carries its history across rejoins). FaultLimit faults inside
//     FaultWindow quarantine the node: it is excluded from dispatch
//     (ExecBox runs its calls locally) and reported as saturated by Loads,
//     so load-aware placement and steal scans route around it.
//
//   - Probe-back: after QuarantineCooldown the sweep PINGs the quarantined
//     peer; the first frame that arrives after the cooldown (normally the
//     PONG) requalifies the node. A dead quarantined node requalifies the
//     same way after its replacement rejoins and answers a probe.
//
// All time flows through Cluster.now() so tests drive the machinery with
// a synthetic clock instead of sleeping.
package wire

import (
	"time"
)

// unavailableLoad is added to a node's reported load while its worker
// connection is dead or quarantined: large enough that LeastLoaded never
// prefers an unavailable node over any reachable one, while keeping the
// relative order among unavailable nodes intact.
const unavailableLoad = 1 << 20

// nodeHealth is one node's fault ledger. It belongs to the node id, not
// the connection: a worker that reconnects inherits its history, which is
// what makes the flap policy (K faults in a window) meaningful.
type nodeHealth struct {
	faults []time.Time // unexpired fault times, oldest first
	qUntil time.Time   // zero = healthy; else quarantined, probe after this
}

// fault records one failure event against a node — a call timeout, a send
// failure, or an unclean disconnect — and quarantines the node when
// FaultLimit faults have accumulated inside FaultWindow.
func (c *Cluster) fault(node int, now time.Time) {
	if node < 1 || node >= len(c.health) {
		return
	}
	c.healthMu.Lock()
	defer c.healthMu.Unlock()
	h := &c.health[node]
	keep := h.faults[:0]
	for _, t := range h.faults {
		if now.Sub(t) < c.cfg.FaultWindow {
			keep = append(keep, t)
		}
	}
	h.faults = append(keep, now)
	if len(h.faults) >= c.cfg.FaultLimit && h.qUntil.IsZero() {
		h.qUntil = now.Add(c.cfg.QuarantineCooldown)
		h.faults = h.faults[:0]
		c.quarantines.Add(1)
		c.logf("wire: node %d quarantined after %d faults in %v (cool-down %v)",
			node, c.cfg.FaultLimit, c.cfg.FaultWindow, c.cfg.QuarantineCooldown)
	}
}

// quarantined reports whether the node is currently excluded from
// dispatch and placement.
func (c *Cluster) quarantined(node int) bool {
	if node < 1 || node >= len(c.health) {
		return false
	}
	c.healthMu.Lock()
	q := !c.health[node].qUntil.IsZero()
	c.healthMu.Unlock()
	return q
}

// maybeRequalify clears a node's quarantine when evidence of life (any
// received frame) arrives after the cool-down has passed. Called from the
// peer's reader on every frame.
func (c *Cluster) maybeRequalify(node int, now time.Time) {
	if node < 1 || node >= len(c.health) {
		return
	}
	c.healthMu.Lock()
	h := &c.health[node]
	if !h.qUntil.IsZero() && now.After(h.qUntil) {
		h.qUntil = time.Time{}
		h.faults = h.faults[:0]
		c.healthMu.Unlock()
		c.logf("wire: node %d requalified after quarantine", node)
		return
	}
	c.healthMu.Unlock()
}

// probeDue reports whether a quarantined node's cool-down has passed, so
// the sweep should PING it even though it is excluded from dispatch.
func (c *Cluster) probeDue(node int, now time.Time) bool {
	if node < 1 || node >= len(c.health) {
		return false
	}
	c.healthMu.Lock()
	h := &c.health[node]
	due := !h.qUntil.IsZero() && now.After(h.qUntil)
	c.healthMu.Unlock()
	return due
}

// now is the cluster's clock: time.Now in production, a synthetic clock in
// the deterministic fault tests.
func (c *Cluster) now() time.Time {
	return c.cfg.Clock.Now()
}

// heartbeatLoop drives one sweep per heartbeat interval until Close.
func (c *Cluster) heartbeatLoop() {
	defer c.wg.Done()
	t := c.cfg.Clock.NewTicker(c.cfg.HeartbeatInterval)
	defer t.Stop()
	for {
		select {
		case <-c.closed:
			return
		case <-t.C:
			c.sweep(c.now())
		}
	}
}

// sweep is one heartbeat pass over every live peer: PING links that have
// been receive-idle for a heartbeat interval (and quarantined links whose
// probe is due), and declare dead any link silent past the liveness
// timeout. Death closes the connection; the peer's reader unwinds and
// fails its pending EXECs over to local slots. Tests call sweep directly
// with synthetic times, so detection needs no wall-clock waiting.
func (c *Cluster) sweep(now time.Time) {
	for i := range c.peers {
		p := c.peers[i].Load()
		if p == nil || p.dead.Load() {
			continue
		}
		idle := now.Sub(time.Unix(0, p.lastRecv.Load()))
		if idle >= c.cfg.LivenessTimeout {
			c.logf("wire: node %d silent for %v (liveness timeout %v): declaring it dead",
				p.node, idle, c.cfg.LivenessTimeout)
			// Closing the connection unwinds the peer's reader, which
			// records the fault and fails pending EXECs over to local.
			p.dead.Store(true)
			p.conn.Close()
			continue
		}
		if idle >= c.cfg.HeartbeatInterval || c.probeDue(p.node, now) {
			p.sendPing()
		}
	}
}
