// ExtTable: the wire form of application field values the record codec
// cannot serialize itself. The coordination layer treats field values as
// opaque, so a record crossing a real socket needs the application to say
// what its domain values look like as bytes — this table is that
// registration point, implementing dist.ValueCodec so the per-connection
// codecs consult it for any field value that is not a built-in scalar.
package wire

import (
	"fmt"
	"reflect"
	"sync"
)

// ExtTable maps Go types to named wire encodings. Register every
// application type on BOTH endpoints of a connection (coordinator and
// snetd worker) before the connection carries traffic; a value that
// encoded through the table fails to decode on a peer whose table lacks
// the name. An ExtTable is safe for concurrent use after registration;
// register everything up front, not mid-traffic.
type ExtTable struct {
	mu     sync.RWMutex
	byType map[reflect.Type]*extEntry
	byName map[string]*extEntry
}

type extEntry struct {
	name string
	enc  func(v any) ([]byte, error)
	dec  func(data []byte) (any, error)
}

// NewExtTable returns an empty extension table.
func NewExtTable() *ExtTable {
	return &ExtTable{
		byType: make(map[reflect.Type]*extEntry),
		byName: make(map[string]*extEntry),
	}
}

// RegisterExt registers the wire encoding of one concrete type T under a
// name that must be unique within the table and identical on every
// process. It panics on duplicate names or types — registration happens at
// startup, where a conflict is a programming error worth halting on.
func RegisterExt[T any](t *ExtTable, name string, enc func(T) ([]byte, error), dec func([]byte) (T, error)) {
	var zero T
	rt := reflect.TypeOf(zero)
	if rt == nil {
		panic("wire: RegisterExt of interface type; register concrete types")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.byName[name]; dup {
		panic(fmt.Sprintf("wire: extension name %q registered twice", name))
	}
	if _, dup := t.byType[rt]; dup {
		panic(fmt.Sprintf("wire: extension type %v registered twice", rt))
	}
	e := &extEntry{
		name: name,
		enc:  func(v any) ([]byte, error) { return enc(v.(T)) },
		dec: func(data []byte) (any, error) {
			v, err := dec(data)
			if err != nil {
				var z T
				return z, err
			}
			return v, nil
		},
	}
	t.byName[name] = e
	t.byType[rt] = e
}

// Handles implements dist.ValueCodec.
func (t *ExtTable) Handles(v any) bool {
	if v == nil {
		return false
	}
	t.mu.RLock()
	_, ok := t.byType[reflect.TypeOf(v)]
	t.mu.RUnlock()
	return ok
}

// Encode implements dist.ValueCodec.
func (t *ExtTable) Encode(v any) (string, []byte, error) {
	t.mu.RLock()
	e, ok := t.byType[reflect.TypeOf(v)]
	t.mu.RUnlock()
	if !ok {
		return "", nil, fmt.Errorf("wire: no extension registered for %T", v)
	}
	data, err := e.enc(v)
	return e.name, data, err
}

// Decode implements dist.ValueCodec.
func (t *ExtTable) Decode(name string, data []byte) (any, error) {
	t.mu.RLock()
	e, ok := t.byName[name]
	t.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("wire: extension %q not registered on this process", name)
	}
	return e.dec(data)
}
