// The coordinator side of the transport: wire.Cluster, a core.Platform
// whose CPU slots live partly in other OS processes. Scheduling stays in
// the embedded dist.Cluster model — identical queues, stealing, and Stats
// to the in-process platform — and the transport's job is purely to route
// a granted execution to the process that owns the granted slot, and to
// mirror cross-node stream traffic onto the sockets so the model's byte
// accounting corresponds to bytes that actually moved.
//
// The transport is fault-tolerant: a worker that hangs is detected by
// heartbeat (health.go), a worker that dies has its pending calls failed
// over to local slots, a worker that misbehaves repeatedly is quarantined
// out of placement until a probe readmits it, and a worker that comes
// back — same process reconnecting, or a fresh replacement — rejoins
// under its old node id with the link codecs reset. The S-Net program
// above never observes any of this except through WireStats.
package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snet/internal/dist"
	"snet/internal/journal"
	"snet/internal/record"
)

// CoordinatorConfig shapes a coordinator. Workers is the exact number of
// snetd processes expected to join; the cluster has Workers+1 nodes (node
// 0 is the coordinator process itself, so boxes placed there — sources,
// mergers, sinks — run in-process without a hop).
type CoordinatorConfig struct {
	// Workers is the number of worker processes that must join before
	// WaitReady returns. Required, >= 1.
	Workers int
	// CPUsPerNode is the CPU slots per node, the model's uniform slot
	// count; each worker is told its slot count in WELCOME and gates its
	// executions on it. Zero means 1.
	CPUsPerNode int
	// Ext is the application's value-extension table (shared by every
	// link codec); nil restricts record fields to built-in scalars.
	Ext *ExtTable
	// MaxFrame bounds a single frame; zero means DefaultMaxFrame.
	MaxFrame int
	// JoinTimeout bounds how long WaitReady waits for all workers to
	// join; zero means 30s. Joins (and rejoins) are still accepted after
	// the window closes — the timeout only settles WaitReady.
	JoinTimeout time.Duration
	// HandshakeTimeout bounds the HELLO/WELCOME exchange on one fresh
	// connection, so a stray connection that never says HELLO cannot pin
	// a handshake goroutine. Zero defaults to JoinTimeout.
	HandshakeTimeout time.Duration
	// HeartbeatInterval is how often the coordinator checks each link and
	// PINGs the ones it has not heard from. Zero means 1s.
	HeartbeatInterval time.Duration
	// LivenessTimeout is how long a link may stay silent — no RESULT, no
	// LOAD, no PONG — before its worker is declared dead, pending calls
	// fail over to local slots, and the node waits for a rejoin. It must
	// exceed HeartbeatInterval with margin; zero means 4×HeartbeatInterval.
	LivenessTimeout time.Duration
	// CallTimeout bounds one remote box call (EXEC sent → RESULT
	// received). A call past its deadline is abandoned: retried while the
	// retry budget lasts, then failed over to local execution on the
	// already-granted slot. Zero disables per-call deadlines — the right
	// default when box runtimes are unbounded (a deadline shorter than an
	// honest execution wastes the remote work and double-executes).
	CallTimeout time.Duration
	// CallRetries is how many times a timed-out or send-failed call is
	// re-sent before failing over. Zero means 1; negative means none.
	CallRetries int
	// FaultLimit quarantines a node after this many faults (call
	// timeouts, send failures, unclean disconnects) inside FaultWindow.
	// Zero means 3.
	FaultLimit int
	// FaultWindow is the sliding window for FaultLimit. Zero means 30s.
	FaultWindow time.Duration
	// QuarantineCooldown is how long a quarantined node sits excluded
	// before the sweep probes it back in. Zero means 5s.
	QuarantineCooldown time.Duration
	// JournalDir, when set, opens an exec journal in that directory:
	// every remote box dispatch is journaled (box name + input record)
	// before its EXEC frame ships and acknowledged when the call
	// completes — by a RESULT, or by local failover. After a coordinator
	// crash, the next coordinator opening the same directory finds the
	// orphans (dispatched, never completed) in Orphans and re-runs them
	// with RedriveOrphans. Calls that run locally from the start are not
	// journaled here — the runtime's ingress journal (core.Durability)
	// covers in-process loss. The journal syncs on every append: a
	// dispatch is already a network round trip, so the write is
	// proportionate, and an unsynced dispatch is exactly the loss the
	// journal exists to prevent.
	JournalDir string
	// JournalFS overrides the exec journal's filesystem (fault injection
	// in tests); when set, JournalDir may be empty.
	JournalFS journal.FS
	// Logf, when set, receives one-line lifecycle messages (joins,
	// deaths, rejoins, quarantines). Nil is silent.
	Logf func(format string, args ...any)

	// Clock overrides the cluster's time source and timer construction;
	// tests use it to drive heartbeat, quarantine, and call-deadline
	// decisions with synthetic time. The zero value reads real time.
	Clock Clock
}

// WireStats are the transport-level counters of a coordinator — the
// measured reality next to the model's Stats accounting. Byte counters
// include frame overhead (length prefix and type byte) and cover both
// directions of every worker connection, as seen from the coordinator.
type WireStats struct {
	FramesSent, FramesRecv int64
	BytesSent, BytesRecv   int64
	// RemoteExecs counts box calls that executed in a worker process;
	// LocalExecs ran on the coordinator (node 0's slots, unregistered
	// boxes, non-serializable inputs, or failover after a peer died).
	RemoteExecs, LocalExecs int64
	// StolenExecs counts remote executions dispatched as STEAL-GRANT
	// frames: the model migrated them from their home node to the thief
	// that received them.
	StolenExecs int64
	// Failovers counts remote dispatches abandoned — the peer died or the
	// call ran out of deadline retries — and re-run locally on the
	// already-granted slot (boxes are stateless and the lost emissions
	// never entered the stream, so the re-run is safe).
	Failovers int64
	// Timeouts counts call attempts abandoned at CallTimeout; Retries
	// counts the re-sends those (and send failures) triggered. One box
	// call can contribute several of each before a single Failover.
	Timeouts, Retries int64
	// Rejoins counts accepted RE-HELLOs: a known node id coming back on a
	// fresh connection (the same worker reconnecting, or a replacement
	// process claiming a dead node's slot).
	Rejoins int64
	// Quarantines counts nodes entering quarantine: FaultLimit faults
	// inside FaultWindow excluded them from placement until a post-
	// cool-down probe requalified them.
	Quarantines int64
	// MirroredBatches counts cross-node stream batches shipped for real
	// as RECORD-BATCH frames; SkippedMirrors counts batches accounted by
	// the model only (records without a wire form, or a dead peer).
	MirroredBatches, SkippedMirrors int64
	// StealRequests counts idle advertisements received from workers.
	StealRequests int64
	// LiveWorkers is how many worker connections are currently up.
	LiveWorkers int
}

// Cluster is the coordinator's platform: core.Platform plus the optional
// Cancellable/Batch/Steal/Load/Remote contracts, backed by one TCP
// connection per worker. Create with Listen, wait for the fleet with
// WaitReady, hand it to the runtime via core.Options.Platform (or
// snet.Options.Platform), and Close when done — Close performs the
// orderly GOODBYE exchange and reclaims every transport goroutine.
type Cluster struct {
	cfg   CoordinatorConfig
	model *dist.Cluster
	// probe is a scratch codec carrying the extension table, used only
	// for Marshalable pre-checks (it never negotiates).
	probe *dist.Codec
	ln    net.Listener
	peers []atomic.Pointer[peer] // index node-1

	// links are the per-node codec pairs. They belong to the node id, not
	// the connection: a rejoining node reuses its pair after Reset, which
	// is what lets the new connection renegotiate labels from scratch.
	links []linkCodecs

	// Join bookkeeping: slot claims during handshakes, and the count of
	// distinct nodes that have ever joined (which settles WaitReady).
	joinMu    sync.Mutex
	slotBusy  []bool // a handshake currently holds this slot's claim
	everUp    []bool // this slot has completed a join at least once
	joined    int
	readyOnce sync.Once
	joinTimer *Timer

	// Exec journal (CoordinatorConfig.JournalDir): dispatched-but-
	// uncompleted remote calls, for orphan re-drive after a restart.
	jnl      *journal.Journal
	jnlClose sync.Once
	orphanMu sync.Mutex
	orphans  []journal.Entry

	reqSeq    atomic.Uint64
	wg        sync.WaitGroup
	ready     chan struct{}
	joinErr   error // written inside readyOnce, read after ready closes
	closed    chan struct{}
	closeOnce sync.Once

	// Gossiped load per node (LOAD frames; index 0 unused).
	loads     []atomic.Int64
	loadKnown []atomic.Bool

	// Per-node fault ledger (health.go; index 0 unused).
	healthMu sync.Mutex
	health   []nodeHealth

	framesOut, framesIn atomic.Int64
	bytesOut, bytesIn   atomic.Int64
	remoteExecs         atomic.Int64
	localExecs          atomic.Int64
	stolenExecs         atomic.Int64
	failovers           atomic.Int64
	timeouts            atomic.Int64
	retries             atomic.Int64
	rejoins             atomic.Int64
	quarantines         atomic.Int64
	mirroredBatches     atomic.Int64
	skippedMirrors      atomic.Int64
	stealReqs           atomic.Int64
}

type linkCodecs struct {
	enc *dist.Codec // coordinator → worker records
	dec *dist.Codec // worker → coordinator records
}

// peer is one worker connection, coordinator-side. The node id and its
// codec pair outlive the peer (they belong to the Cluster); everything
// else dies with the connection.
type peer struct {
	c     *Cluster
	node  int
	cpus  int // advertised in HELLO (informational; WELCOME's slots govern)
	conn  net.Conn
	br    *bufio.Reader
	enc   *dist.Codec // coordinator → worker records (c.links[node-1].enc)
	dec   *dist.Codec // worker → coordinator records (c.links[node-1].dec)
	boxes map[string]bool

	wmu    sync.Mutex
	wbuf   []byte
	hdrBuf []byte
	dead   atomic.Bool

	lastRecv atomic.Int64  // UnixNano of the last received frame
	done     chan struct{} // closed when the peer's reader has unwound

	pmu     sync.Mutex
	pending map[uint64]chan execResult
}

type execResult struct {
	outs   []*record.Record
	err    error
	failed bool // peer died before a result arrived
}

var errPeerDead = errors.New("wire: worker connection lost")

// Listen starts a coordinator listening on addr (e.g. "127.0.0.1:0") and
// accepting worker joins in the background. It returns immediately so
// callers can learn Addr and launch workers; WaitReady blocks until the
// configured number of workers has joined.
func Listen(addr string, cfg CoordinatorConfig) (*Cluster, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("wire: coordinator needs at least 1 worker, got %d", cfg.Workers)
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return Serve(ln, cfg)
}

// Serve is Listen over a caller-provided listener — the seam that lets
// tests interpose a fault-injecting listener (internal/faultwire) between
// the coordinator and its workers. Serve owns ln: Close closes it.
func Serve(ln net.Listener, cfg CoordinatorConfig) (*Cluster, error) {
	if cfg.Workers < 1 {
		ln.Close()
		return nil, fmt.Errorf("wire: coordinator needs at least 1 worker, got %d", cfg.Workers)
	}
	if cfg.CPUsPerNode <= 0 {
		cfg.CPUsPerNode = 1
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 30 * time.Second
	}
	if cfg.HandshakeTimeout <= 0 {
		cfg.HandshakeTimeout = cfg.JoinTimeout
	}
	if cfg.HeartbeatInterval <= 0 {
		cfg.HeartbeatInterval = time.Second
	}
	if cfg.LivenessTimeout <= 0 {
		cfg.LivenessTimeout = 4 * cfg.HeartbeatInterval
	}
	if cfg.CallRetries == 0 {
		cfg.CallRetries = 1
	} else if cfg.CallRetries < 0 {
		cfg.CallRetries = 0
	}
	if cfg.FaultLimit <= 0 {
		cfg.FaultLimit = 3
	}
	if cfg.FaultWindow <= 0 {
		cfg.FaultWindow = 30 * time.Second
	}
	if cfg.QuarantineCooldown <= 0 {
		cfg.QuarantineCooldown = 5 * time.Second
	}
	nodes := cfg.Workers + 1
	c := &Cluster{
		cfg:       cfg,
		model:     dist.NewCluster(nodes, cfg.CPUsPerNode),
		probe:     dist.NewCodec(),
		ln:        ln,
		peers:     make([]atomic.Pointer[peer], cfg.Workers),
		links:     make([]linkCodecs, cfg.Workers),
		slotBusy:  make([]bool, cfg.Workers),
		everUp:    make([]bool, cfg.Workers),
		ready:     make(chan struct{}),
		closed:    make(chan struct{}),
		loads:     make([]atomic.Int64, nodes),
		loadKnown: make([]atomic.Bool, nodes),
		health:    make([]nodeHealth, nodes),
	}
	if cfg.Ext != nil {
		c.probe.SetValueCodec(cfg.Ext)
	}
	if cfg.JournalDir != "" || cfg.JournalFS != nil {
		jcfg := journal.Config{Dir: cfg.JournalDir, FS: cfg.JournalFS, Fsync: journal.FsyncAlways}
		if cfg.Ext != nil {
			jcfg.Ext = cfg.Ext
		}
		jnl, err := journal.Open(jcfg)
		if err != nil {
			ln.Close()
			return nil, fmt.Errorf("wire: exec journal: %w", err)
		}
		c.jnl = jnl
		c.orphans = jnl.Recovered()
	}
	for i := range c.links {
		c.links[i] = linkCodecs{enc: dist.NewCodec(), dec: dist.NewCodec()}
		if cfg.Ext != nil {
			c.links[i].enc.SetValueCodec(cfg.Ext)
			c.links[i].dec.SetValueCodec(cfg.Ext)
		}
	}
	c.joinTimer = cfg.Clock.AfterFunc(cfg.JoinTimeout, func() {
		c.joinMu.Lock()
		n := c.joined
		c.joinMu.Unlock()
		if n < c.cfg.Workers {
			c.finishReady(fmt.Errorf("wire: %d of %d workers joined before the %v join window closed",
				n, c.cfg.Workers, c.cfg.JoinTimeout))
		}
	})
	c.wg.Add(2)
	go c.acceptLoop()
	go c.heartbeatLoop()
	return c, nil
}

func (c *Cluster) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}

// Addr returns the coordinator's listen address.
func (c *Cluster) Addr() net.Addr { return c.ln.Addr() }

// WaitReady blocks until every expected worker has joined (nil), the join
// timeout passed, or the cluster was closed.
func (c *Cluster) WaitReady() error {
	<-c.ready
	return c.joinErr
}

func (c *Cluster) finishReady(err error) {
	c.readyOnce.Do(func() {
		c.joinErr = err
		close(c.ready)
	})
}

// acceptLoop admits connections for the cluster's whole lifetime: the
// fleet's initial joins, and — unlike a fixed-membership join window —
// rejoins of dead nodes and replacement workers claiming a dead node's
// slot. The listener closes only on Close.
func (c *Cluster) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		c.wg.Add(1)
		go c.handleConn(conn)
	}
}

// handleConn runs one connection's lifetime: handshake, then serve.
func (c *Cluster) handleConn(conn net.Conn) {
	defer c.wg.Done()
	p, err := c.admit(conn)
	if err != nil {
		conn.Close()
		c.logf("wire: join failed: %v", err)
		return
	}
	c.serve(p)
}

// assignNode picks the node id a fresh connection will hold. want is the
// HELLO's rejoin field: 0 asks for any slot (first never-joined slot,
// else a dead node's slot as a replacement), >0 claims that node id (a
// RE-HELLO, legal only when the node is not currently connected). The
// returned claim is held until finishJoin or revertJoin.
func (c *Cluster) assignNode(want int) (node int, replace bool, err error) {
	c.joinMu.Lock()
	defer c.joinMu.Unlock()
	claim := func(i int) (int, bool) {
		c.slotBusy[i] = true
		return i + 1, c.peers[i].Load() != nil
	}
	if want != 0 {
		if want < 1 || want > len(c.peers) {
			return 0, false, fmt.Errorf("wire: rejoin as node %d: no such node (cluster has %d workers)", want, len(c.peers))
		}
		i := want - 1
		if c.slotBusy[i] {
			return 0, false, fmt.Errorf("wire: rejoin as node %d: another connection is mid-handshake for it", want)
		}
		if p := c.peers[i].Load(); p != nil && !p.dead.Load() {
			return 0, false, fmt.Errorf("wire: rejoin as node %d refused: that node is still connected", want)
		}
		node, replace = claim(i)
		return node, replace, nil
	}
	for i := range c.peers {
		if !c.slotBusy[i] && !c.everUp[i] {
			node, replace = claim(i)
			return node, replace, nil
		}
	}
	for i := range c.peers {
		if c.slotBusy[i] {
			continue
		}
		if p := c.peers[i].Load(); p != nil && p.dead.Load() {
			node, replace = claim(i)
			return node, replace, nil
		}
	}
	return 0, false, errors.New("wire: fleet is full (every node is connected)")
}

// finishJoin publishes a completed handshake: the slot claim converts to
// a live peer, and WaitReady settles when the last first-time join lands.
func (c *Cluster) finishJoin(node int, replace bool) {
	c.joinMu.Lock()
	i := node - 1
	c.slotBusy[i] = false
	first := !c.everUp[i]
	c.everUp[i] = true
	if first {
		c.joined++
	}
	complete := c.joined >= c.cfg.Workers
	c.joinMu.Unlock()
	if replace {
		c.rejoins.Add(1)
	}
	if complete {
		c.finishReady(nil)
	}
}

func (c *Cluster) revertJoin(node int) {
	c.joinMu.Lock()
	c.slotBusy[node-1] = false
	c.joinMu.Unlock()
}

// admit performs the HELLO/WELCOME handshake on a fresh connection. A
// version mismatch, malformed HELLO, or unassignable node id is answered
// with GOODBYE (when writable) and reported as an error. On a rejoin the
// node's codec pair is Reset — the new connection renegotiates every
// label from scratch — and its gossiped load is re-seeded, returning the
// node to the schedulable set with a clean slate.
func (c *Cluster) admit(conn net.Conn) (*peer, error) {
	//lint:reason conn deadlines are compared against real time by the kernel, never against the cluster clock
	conn.SetDeadline(time.Now().Add(c.cfg.HandshakeTimeout))
	br := bufio.NewReaderSize(conn, 64<<10)
	typ, payload, err := readFrame(br, c.cfg.MaxFrame)
	if err != nil {
		return nil, fmt.Errorf("wire: reading HELLO: %w", err)
	}
	if typ != fHello {
		return nil, fmt.Errorf("wire: first frame type %d, want HELLO", typ)
	}
	h, err := parseHello(payload)
	if err != nil {
		return nil, err
	}
	if h.version != protoVersion {
		reason := fmt.Sprintf("protocol version %d not supported; coordinator speaks version %d",
			h.version, protoVersion)
		conn.Write(appendFrame(nil, fGoodbye, appendGoodbye(nil, reason))) //lint:reason handshake rejection: no other goroutine can reach this conn yet, so there is no write order to protect
		return nil, fmt.Errorf("wire: %s", reason)
	}
	node, replace, err := c.assignNode(h.node)
	if err != nil {
		conn.Write(appendFrame(nil, fGoodbye, appendGoodbye(nil, err.Error()))) //lint:reason handshake rejection: no other goroutine can reach this conn yet, so there is no write order to protect
		return nil, err
	}
	if old := c.peers[node-1].Load(); old != nil {
		// Wait for the dead predecessor's reader to unwind so its final
		// decodes cannot interleave with the codec Reset below.
		t := c.cfg.Clock.NewTimer(c.cfg.HandshakeTimeout)
		select {
		case <-old.done:
			t.Stop()
		case <-t.C:
			c.revertJoin(node)
			return nil, fmt.Errorf("wire: node %d rejoin: previous connection still draining", node)
		}
		c.links[node-1].enc.Reset()
		c.links[node-1].dec.Reset()
		c.loads[node].Store(0)
		c.loadKnown[node].Store(false)
	}
	p := &peer{
		c:       c,
		node:    node,
		cpus:    h.cpus,
		conn:    conn,
		br:      br,
		enc:     c.links[node-1].enc,
		dec:     c.links[node-1].dec,
		boxes:   make(map[string]bool, len(h.boxes)),
		done:    make(chan struct{}),
		pending: make(map[uint64]chan execResult),
	}
	for _, b := range h.boxes {
		p.boxes[b] = true
	}
	p.lastRecv.Store(c.now().UnixNano())
	p.wmu.Lock()
	err = p.writeLocked(fWelcome, appendWelcome(nil, node, c.model.Nodes(), c.cfg.CPUsPerNode,
		c.cfg.HeartbeatInterval, c.cfg.LivenessTimeout))
	p.wmu.Unlock()
	if err != nil {
		c.revertJoin(node)
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	c.peers[node-1].Store(p)
	c.finishJoin(node, replace)
	if replace {
		c.logf("wire: node %d rejoined (%d cpus advertised)", node, h.cpus)
	} else {
		c.logf("wire: node %d joined (%d cpus advertised)", node, h.cpus)
	}
	return p, nil
}

// serve is a worker connection's reader: it decodes RESULT batches in
// arrival order (pinning the codec negotiation order), feeds LOAD and
// STEAL-REQUEST gossip, answers PINGs, and on any error — or the GOODBYE
// ack — tears the peer down, failing every pending EXEC so no box call
// waits on a dead socket. Every received frame refreshes the peer's
// liveness and, after a quarantine cool-down, requalifies the node.
func (c *Cluster) serve(p *peer) {
	clean := false
	defer func() {
		p.dead.Store(true)
		p.conn.Close()
		p.failPending()
		close(p.done)
		select {
		case <-c.closed:
			// Shutdown: connection teardown is expected, not a fault.
		default:
			if !clean {
				c.fault(p.node, c.now())
				c.logf("wire: node %d connection lost", p.node)
			}
		}
	}()
	for {
		typ, payload, err := readFrame(p.br, c.cfg.MaxFrame)
		if err != nil {
			return
		}
		now := c.now()
		p.lastRecv.Store(now.UnixNano())
		c.maybeRequalify(p.node, now)
		c.framesIn.Add(1)
		c.bytesIn.Add(frameLen(len(payload)))
		switch typ {
		case fResult:
			res, err := parseResult(payload)
			if err != nil {
				return
			}
			outs, err := p.dec.UnmarshalBatch(res.batch)
			if err != nil {
				// Codec desync: nothing after this frame can be trusted.
				return
			}
			var boxErr error
			if res.status != statusOK {
				boxErr = errors.New(res.errmsg)
			}
			p.complete(res.req, execResult{outs: outs, err: boxErr})
		case fLoad:
			v, err := parseLoad(payload)
			if err != nil {
				return
			}
			c.loads[p.node].Store(int64(v))
			c.loadKnown[p.node].Store(true)
		case fStealReq:
			c.stealReqs.Add(1)
			c.loads[p.node].Store(0)
			c.loadKnown[p.node].Store(true)
		case fPing:
			p.sendPong()
		case fPong:
			// Nothing beyond the liveness refresh above.
		case fGoodbye:
			clean = true
			return
		default:
			return
		}
	}
}

// writeLocked sends one frame; callers hold p.wmu. Writes are bounded by
// the liveness timeout so a peer whose TCP buffer has filled (a hung
// reader) cannot wedge the writer — the deadline expiry marks the peer
// dead and the reader unwinds it. A write failure marks the peer dead
// the same way.
func (p *peer) writeLocked(typ byte, parts ...[]byte) error {
	buf := appendFrame(p.wbuf[:0], typ, parts...)
	p.wbuf = buf
	if lt := p.c.cfg.LivenessTimeout; lt > 0 {
		//lint:reason conn deadlines are compared against real time by the kernel, never against the cluster clock
		p.conn.SetWriteDeadline(time.Now().Add(lt))
	}
	if _, err := p.conn.Write(buf); err != nil {
		p.dead.Store(true)
		return err
	}
	p.c.framesOut.Add(1)
	p.c.bytesOut.Add(int64(len(buf)))
	return nil
}

func (p *peer) addPending(req uint64, ch chan execResult) {
	p.pmu.Lock()
	p.pending[req] = ch
	p.pmu.Unlock()
}

func (p *peer) dropPending(req uint64) {
	p.pmu.Lock()
	delete(p.pending, req)
	p.pmu.Unlock()
}

func (p *peer) complete(req uint64, res execResult) {
	p.pmu.Lock()
	ch, ok := p.pending[req]
	delete(p.pending, req)
	p.pmu.Unlock()
	if ok {
		ch <- res // buffered; never blocks
	}
}

func (p *peer) failPending() {
	p.pmu.Lock()
	for req, ch := range p.pending {
		delete(p.pending, req)
		ch <- execResult{failed: true}
	}
	p.pmu.Unlock()
}

// sendExec ships one box call. Marshalling and writing happen under one
// lock so the codec's negotiation order is the wire order.
func (p *peer) sendExec(req uint64, home int, stolen bool, box string, input *record.Record) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.dead.Load() {
		return errPeerDead
	}
	rec, err := p.enc.Marshal(input)
	if err != nil {
		// Marshalable was pre-checked, so this is an extension Encode
		// failure: the negotiation state may already be advanced and the
		// link cannot be trusted.
		p.dead.Store(true)
		return err
	}
	hdr := appendExecHeader(p.hdrBuf[:0], req, home, box)
	p.hdrBuf = hdr
	typ := fExec
	if stolen {
		typ = fStealGrant
	}
	return p.writeLocked(typ, hdr, rec)
}

func (p *peer) sendGoodbye(reason string) {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.dead.Load() {
		return
	}
	g := appendGoodbye(p.hdrBuf[:0], reason)
	p.hdrBuf = g
	p.writeLocked(fGoodbye, g)
}

// sendPing probes a link the coordinator has not heard from; the worker
// answers PONG from its reader even while every slot is busy executing,
// so only a truly unresponsive process stays silent.
func (p *peer) sendPing() {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.dead.Load() {
		return
	}
	p.writeLocked(fPing)
}

func (p *peer) sendPong() {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.dead.Load() {
		return
	}
	p.writeLocked(fPong)
}

// norm maps an arbitrary node index onto a real node, like the model does.
func (c *Cluster) norm(n int) int {
	size := c.model.Nodes()
	return ((n % size) + size) % size
}

// peerAt returns the live, dispatchable peer owning node n — nil for node
// 0, an un-joined node, a dead connection, or a quarantined node (its
// connection may be up, but calls are kept local until a probe
// requalifies it).
func (c *Cluster) peerAt(n int) *peer {
	if n <= 0 || n > len(c.peers) {
		return nil
	}
	p := c.peers[n-1].Load()
	if p == nil || p.dead.Load() {
		return nil
	}
	if c.quarantined(n) {
		return nil
	}
	return p
}

// Nodes implements core.Platform.
func (c *Cluster) Nodes() int { return c.model.Nodes() }

// Exec implements core.Platform: opaque closures cannot ship, so they run
// in-process gated on the model's slot for the node — semantically the
// in-process platform. Box calls route through ExecBox instead.
func (c *Cluster) Exec(node int, fn func()) { c.model.Exec(node, fn) }

// ExecCancel implements core.CancellablePlatform (in-process; see Exec).
func (c *Cluster) ExecCancel(node int, cancel <-chan struct{}, fn func()) bool {
	return c.model.ExecCancel(node, cancel, fn)
}

// ExecStealable implements core.StealPlatform (in-process; see Exec).
func (c *Cluster) ExecStealable(node int, cancel <-chan struct{}, input *record.Record, fn func()) bool {
	return c.model.ExecStealable(node, cancel, input, fn)
}

// Transfer implements core.Platform: the model accounts the hop, and when
// the destination node lives in a worker process the record is mirrored
// there as a RECORD-BATCH frame, so the link's label negotiation and byte
// traffic are real, not just accounted.
func (c *Cluster) Transfer(from, to int, r *record.Record) {
	c.model.Transfer(from, to, r)
	c.mirror(from, to, []*record.Record{r})
}

// TransferBatch implements core.BatchPlatform (see Transfer).
func (c *Cluster) TransferBatch(from, to int, rs []*record.Record) {
	c.model.TransferBatch(from, to, rs)
	c.mirror(from, to, rs)
}

// mirror ships a cross-node stream batch to the worker that owns the
// destination node. Hops into node 0 are not mirrored — their payloads
// already cross the socket as RESULT frames. Batches containing records
// without a wire form are accounted by the model only, and counted — as
// are batches bound for an unavailable (dead or quarantined) node.
func (c *Cluster) mirror(from, to int, rs []*record.Record) {
	t := c.norm(to)
	f := c.norm(from)
	if t == 0 || t == f || len(rs) == 0 {
		return
	}
	p := c.peerAt(t)
	if p == nil {
		c.skippedMirrors.Add(1)
		return
	}
	for _, r := range rs {
		if !c.probe.Marshalable(r) {
			c.skippedMirrors.Add(1)
			return
		}
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.dead.Load() {
		c.skippedMirrors.Add(1)
		return
	}
	data, err := p.enc.MarshalBatch(rs)
	if err != nil {
		p.dead.Store(true)
		c.skippedMirrors.Add(1)
		return
	}
	hdr := appendBatchHeader(p.hdrBuf[:0], f, t)
	p.hdrBuf = hdr
	if p.writeLocked(fBatch, hdr, data) == nil {
		c.mirroredBatches.Add(1)
	}
}

// Loads implements core.LoadPlatform: element-wise max of the model's
// slot ledger and the workers' gossiped gate occupancy. The model is
// authoritative for work it granted; gossip can only raise a node's
// reported load — it covers activity the model cannot see (a worker
// shared with another tenant), never hides granted work. Nodes whose
// worker is unavailable — dead connection, or quarantined — are reported
// as saturated, so load-aware placement and steal scans route around
// them until a rejoin or probe restores them (graceful degradation: the
// network keeps rendering on the remaining nodes).
func (c *Cluster) Loads(dst []int) []int {
	dst = c.model.Loads(dst)
	for n := 1; n < len(dst) && n <= len(c.peers); n++ {
		if c.loadKnown[n].Load() {
			if g := int(c.loads[n].Load()); g > dst[n] {
				dst[n] = g
			}
		}
		p := c.peers[n-1].Load()
		if p == nil || p.dead.Load() || c.quarantined(n) {
			dst[n] += unavailableLoad
		}
	}
	return dst
}

// ExecBox implements core.RemotePlatform: the model grants a slot (with
// cancellation and stealing exactly as in-process), and when the granted
// node lives in a worker process that registered the box — and the input
// has a wire form — the call ships as an EXEC (or STEAL-GRANT, when the
// model migrated it) frame and the worker's emissions return as the
// outs. Otherwise local() runs on the granted slot, and a peer that dies
// mid-call — or exhausts the call deadline's retry budget — fails over
// to local() too: boxes are stateless and the lost emissions never
// entered the stream, so re-running is safe.
func (c *Cluster) ExecBox(node int, cancel <-chan struct{}, box string, input *record.Record,
	stealable bool, local func()) ([]*record.Record, bool, bool, error) {
	home := c.norm(node)
	var outs []*record.Record
	var boxErr error
	remote := false
	granted := c.model.ExecOn(home, cancel, input, stealable, func(got int) {
		p := c.peerAt(got)
		if p == nil || !p.boxes[box] || !c.probe.Marshalable(input) {
			c.localExecs.Add(1)
			local()
			return
		}
		jid := c.journalDispatch(box, input)
		rs, err, failed := c.roundTrip(p, home, got != home, box, input)
		if failed {
			c.failovers.Add(1)
			c.localExecs.Add(1)
			local()
			// The failover ran the call to completion locally, so the
			// dispatch is done — an orphan only exists when no process
			// finished the work.
			c.journalComplete(jid)
			return
		}
		c.journalComplete(jid)
		c.remoteExecs.Add(1)
		if got != home {
			c.stolenExecs.Add(1)
		}
		outs, boxErr, remote = rs, err, true
	})
	return outs, remote, granted, boxErr
}

// journalDispatch records a remote box dispatch in the exec journal,
// returning the delivery id to acknowledge on completion. Zero means
// untracked: no journal configured, or the append failed — the dispatch
// proceeds either way (durability degrades before availability does),
// with the failure logged.
func (c *Cluster) journalDispatch(box string, input *record.Record) uint64 {
	if c.jnl == nil {
		return 0
	}
	id, err := c.jnl.Append(box, input)
	if err != nil {
		c.logf("wire: exec journal append: %v", err)
		return 0
	}
	return id
}

// journalComplete acknowledges a completed dispatch in the exec journal.
func (c *Cluster) journalComplete(id uint64) {
	if id == 0 {
		return
	}
	if err := c.jnl.Ack([]uint64{id}); err != nil {
		c.logf("wire: exec journal ack: %v", err)
	}
}

// Orphans returns the calls a previous coordinator dispatched to workers
// but never saw complete — journaled before their EXEC frames shipped,
// never acknowledged — as found in the exec journal when this
// coordinator opened it. Entry.Meta is the box name, Entry.Rec the input
// record, exactly as dispatched. Nil without a journal, or after
// RedriveOrphans has consumed them; the records belong to the cluster
// until then.
func (c *Cluster) Orphans() []journal.Entry {
	c.orphanMu.Lock()
	defer c.orphanMu.Unlock()
	return c.orphans
}

// RedriveOrphans re-executes every orphaned call through the normal
// dispatch path: each call is placed round-robin across the worker
// nodes and goes through ExecBox exactly like a live dispatch — remote
// when a live worker registers the box, otherwise via run, the caller's
// local fallback (it receives the box name and input and returns the
// emissions; required because box bodies live with the application, not
// the transport). Each completed call is acknowledged in the journal
// and handed to deliver with its emissions and box error — matching
// local call semantics, emissions before a failure still flow, and the
// error lets the caller route the record into its retry/dead-letter
// policy. deliver owns the emissions. RedriveOrphans consumes the
// orphan set: a second call is a no-op returning 0.
func (c *Cluster) RedriveOrphans(
	run func(box string, input *record.Record) ([]*record.Record, error),
	deliver func(box string, outs []*record.Record, err error),
) (int, error) {
	if c.jnl == nil {
		return 0, errors.New("wire: no exec journal (CoordinatorConfig.JournalDir unset)")
	}
	c.orphanMu.Lock()
	orphans := c.orphans
	c.orphans = nil
	c.orphanMu.Unlock()
	if len(orphans) == 0 {
		return 0, nil
	}
	ids := make([]uint64, 0, len(orphans))
	for i, e := range orphans {
		node := 1 + i%len(c.peers)
		var louts []*record.Record
		var lerr error
		box, input := e.Meta, e.Rec
		outs, remote, granted, err := c.ExecBox(node, nil, box, input, false, func() {
			if run != nil {
				louts, lerr = run(box, input)
			}
		})
		if !granted {
			// Unreachable with a nil cancel channel, but refuse to ack
			// work that did not run.
			break
		}
		if !remote {
			outs, err = louts, lerr
		}
		if deliver != nil {
			deliver(box, outs, err)
		}
		ids = append(ids, e.ID)
	}
	if err := c.jnl.Ack(ids); err != nil {
		return len(ids), fmt.Errorf("wire: exec journal ack after redrive: %w", err)
	}
	return len(ids), nil
}

// roundTrip ships one box call, waiting for its RESULT within the call
// deadline and re-sending up to the retry budget. failed means the peer
// died, was quarantined mid-call, or every attempt timed out — the caller
// should fail over to local execution.
func (c *Cluster) roundTrip(p *peer, home int, stolen bool, box string, input *record.Record) ([]*record.Record, error, bool) {
	for attempt := 0; ; attempt++ {
		if attempt > 0 {
			if p.dead.Load() || c.quarantined(p.node) {
				return nil, nil, true
			}
			c.retries.Add(1)
		}
		outs, err, ok := c.tryCall(p, home, stolen, box, input)
		if ok {
			return outs, err, false
		}
		if attempt >= c.cfg.CallRetries {
			return nil, nil, true
		}
	}
}

// tryCall is one EXEC→RESULT attempt. ok=false means the attempt failed —
// send error, peer death, or call deadline — and a fault was recorded
// against the node; a RESULT arriving after the deadline is discarded
// (its decode still runs in the reader, keeping the codec in step).
func (c *Cluster) tryCall(p *peer, home int, stolen bool, box string, input *record.Record) ([]*record.Record, error, bool) {
	req := c.reqSeq.Add(1)
	ch := make(chan execResult, 1)
	p.addPending(req, ch)
	if err := p.sendExec(req, home, stolen, box, input); err != nil {
		p.dropPending(req)
		c.fault(p.node, c.now())
		return nil, nil, false
	}
	if c.cfg.CallTimeout <= 0 {
		res := <-ch
		if res.failed {
			return nil, nil, false
		}
		return res.outs, res.err, true
	}
	t := c.cfg.Clock.NewTimer(c.cfg.CallTimeout)
	defer t.Stop()
	select {
	case res := <-ch:
		if res.failed {
			return nil, nil, false
		}
		return res.outs, res.err, true
	case <-t.C:
		p.dropPending(req)
		c.timeouts.Add(1)
		c.fault(p.node, c.now())
		return nil, nil, false
	}
}

// Stats returns the scheduling model's accounting — the same counters,
// with the same meaning, as an in-process dist.Cluster, which is what
// keeps BENCH trajectories comparable across transports. The measured
// transport reality is WireStats.
func (c *Cluster) Stats() dist.Stats { return c.model.Stats() }

// SetTransferCost configures the model's transfer-cost delay, layered on
// top of the real socket latency (see docs/performance.md for how the two
// relate).
func (c *Cluster) SetTransferCost(latency time.Duration, bytesPerSecond float64) {
	c.model.SetTransferCost(latency, bytesPerSecond)
}

// WireStats snapshots the transport counters.
func (c *Cluster) WireStats() WireStats {
	live := 0
	for i := range c.peers {
		if p := c.peers[i].Load(); p != nil && !p.dead.Load() {
			live++
		}
	}
	return WireStats{
		FramesSent:      c.framesOut.Load(),
		FramesRecv:      c.framesIn.Load(),
		BytesSent:       c.bytesOut.Load(),
		BytesRecv:       c.bytesIn.Load(),
		RemoteExecs:     c.remoteExecs.Load(),
		LocalExecs:      c.localExecs.Load(),
		StolenExecs:     c.stolenExecs.Load(),
		Failovers:       c.failovers.Load(),
		Timeouts:        c.timeouts.Load(),
		Retries:         c.retries.Load(),
		Rejoins:         c.rejoins.Load(),
		Quarantines:     c.quarantines.Load(),
		MirroredBatches: c.mirroredBatches.Load(),
		SkippedMirrors:  c.skippedMirrors.Load(),
		StealRequests:   c.stealReqs.Load(),
		LiveWorkers:     live,
	}
}

// Workers lists the joined workers' advertised box tables, for
// diagnostics ("worker 2 registered [solver]").
func (c *Cluster) Workers() []string {
	var out []string
	for i := range c.peers {
		p := c.peers[i].Load()
		if p == nil {
			continue
		}
		boxes := make([]string, 0, len(p.boxes))
		for b := range p.boxes {
			boxes = append(boxes, b)
		}
		sort.Strings(boxes)
		state := "up"
		switch {
		case p.dead.Load():
			state = "down"
		case c.quarantined(p.node):
			state = "quarantined"
		}
		out = append(out, fmt.Sprintf("node %d (%s, %d cpus advertised): %v", p.node, state, p.cpus, boxes))
	}
	return out
}

// Close performs the orderly shutdown: GOODBYE to every worker, a bounded
// wait for their acks, and reclamation of every transport goroutine. It
// is idempotent and safe to call with executions drained (close the
// network instance first). Workers exit their Run loop with a nil error
// on receiving GOODBYE.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.joinTimer.Stop()
		c.joinMu.Lock()
		joined := c.joined
		c.joinMu.Unlock()
		c.finishReady(fmt.Errorf("wire: coordinator closed with %d of %d workers joined",
			joined, c.cfg.Workers))
		c.ln.Close()
		for i := range c.peers {
			p := c.peers[i].Load()
			if p == nil {
				continue
			}
			p.sendGoodbye("coordinator shutdown")
			// The reader exits on the worker's GOODBYE ack or, if the
			// worker never answers, on this deadline — either way every
			// goroutine is reclaimed.
			//lint:reason conn deadlines are compared against real time by the kernel, never against the cluster clock
			p.conn.SetReadDeadline(time.Now().Add(3 * time.Second))
		}
	})
	c.wg.Wait()
	// Executions are drained (Close's contract), so no dispatch can race
	// the journal close; a close error surfaces — it can mean the final
	// acks did not reach disk and the next coordinator will re-drive
	// already-completed calls.
	var jerr error
	c.jnlClose.Do(func() {
		if c.jnl != nil {
			jerr = c.jnl.Close()
		}
	})
	return jerr
}
