// The coordinator side of the transport: wire.Cluster, a core.Platform
// whose CPU slots live partly in other OS processes. Scheduling stays in
// the embedded dist.Cluster model — identical queues, stealing, and Stats
// to the in-process platform — and the transport's job is purely to route
// a granted execution to the process that owns the granted slot, and to
// mirror cross-node stream traffic onto the sockets so the model's byte
// accounting corresponds to bytes that actually moved.
package wire

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snet/internal/dist"
	"snet/internal/record"
)

// CoordinatorConfig shapes a coordinator. Workers is the exact number of
// snetd processes expected to join; the cluster has Workers+1 nodes (node
// 0 is the coordinator process itself, so boxes placed there — sources,
// mergers, sinks — run in-process without a hop).
type CoordinatorConfig struct {
	// Workers is the number of worker processes that must join before
	// WaitReady returns. Required, >= 1.
	Workers int
	// CPUsPerNode is the CPU slots per node, the model's uniform slot
	// count; each worker is told its slot count in WELCOME and gates its
	// executions on it. Zero means 1.
	CPUsPerNode int
	// Ext is the application's value-extension table (shared by every
	// link codec); nil restricts record fields to built-in scalars.
	Ext *ExtTable
	// MaxFrame bounds a single frame; zero means DefaultMaxFrame.
	MaxFrame int
	// JoinTimeout bounds how long WaitReady waits for all workers to
	// join; zero means 30s.
	JoinTimeout time.Duration
}

// WireStats are the transport-level counters of a coordinator — the
// measured reality next to the model's Stats accounting. Byte counters
// include frame overhead (length prefix and type byte) and cover both
// directions of every worker connection, as seen from the coordinator.
type WireStats struct {
	FramesSent, FramesRecv int64
	BytesSent, BytesRecv   int64
	// RemoteExecs counts box calls that executed in a worker process;
	// LocalExecs ran on the coordinator (node 0's slots, unregistered
	// boxes, non-serializable inputs, or failover after a peer died).
	RemoteExecs, LocalExecs int64
	// StolenExecs counts remote executions dispatched as STEAL-GRANT
	// frames: the model migrated them from their home node to the thief
	// that received them.
	StolenExecs int64
	// Failovers counts remote dispatches abandoned because the peer died
	// mid-call; the execution re-ran locally on the already-granted slot
	// (boxes are stateless and the lost emissions never entered the
	// stream, so the re-run is safe).
	Failovers int64
	// MirroredBatches counts cross-node stream batches shipped for real
	// as RECORD-BATCH frames; SkippedMirrors counts batches accounted by
	// the model only (records without a wire form, or a dead peer).
	MirroredBatches, SkippedMirrors int64
	// StealRequests counts idle advertisements received from workers.
	StealRequests int64
	// LiveWorkers is how many worker connections are currently up.
	LiveWorkers int
}

// Cluster is the coordinator's platform: core.Platform plus the optional
// Cancellable/Batch/Steal/Load/Remote contracts, backed by one TCP
// connection per worker. Create with Listen, wait for the fleet with
// WaitReady, hand it to the runtime via core.Options.Platform (or
// snet.Options.Platform), and Close when done — Close performs the
// orderly GOODBYE exchange and reclaims every transport goroutine.
type Cluster struct {
	cfg   CoordinatorConfig
	model *dist.Cluster
	// probe is a scratch codec carrying the extension table, used only
	// for Marshalable pre-checks (it never negotiates).
	probe *dist.Codec
	ln    net.Listener
	peers []atomic.Pointer[peer] // index node-1

	reqSeq    atomic.Uint64
	wg        sync.WaitGroup
	ready     chan struct{}
	joinErr   error // write-once before ready closes
	closed    chan struct{}
	closeOnce sync.Once

	// Gossiped load per node (LOAD frames; index 0 unused).
	loads     []atomic.Int64
	loadKnown []atomic.Bool

	framesOut, framesIn atomic.Int64
	bytesOut, bytesIn   atomic.Int64
	remoteExecs         atomic.Int64
	localExecs          atomic.Int64
	stolenExecs         atomic.Int64
	failovers           atomic.Int64
	mirroredBatches     atomic.Int64
	skippedMirrors      atomic.Int64
	stealReqs           atomic.Int64
}

// peer is one worker connection, coordinator-side.
type peer struct {
	c     *Cluster
	node  int
	cpus  int // advertised in HELLO (informational; WELCOME's slots govern)
	conn  net.Conn
	br    *bufio.Reader
	enc   *dist.Codec // coordinator → worker records
	dec   *dist.Codec // worker → coordinator records
	boxes map[string]bool

	wmu    sync.Mutex
	wbuf   []byte
	hdrBuf []byte
	dead   atomic.Bool

	pmu     sync.Mutex
	pending map[uint64]chan execResult
}

type execResult struct {
	outs   []*record.Record
	err    error
	failed bool // peer died before a result arrived
}

var errPeerDead = errors.New("wire: worker connection lost")

// Listen starts a coordinator listening on addr (e.g. "127.0.0.1:0") and
// accepting worker joins in the background. It returns immediately so
// callers can learn Addr and launch workers; WaitReady blocks until the
// configured number of workers has joined.
func Listen(addr string, cfg CoordinatorConfig) (*Cluster, error) {
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("wire: coordinator needs at least 1 worker, got %d", cfg.Workers)
	}
	if cfg.CPUsPerNode <= 0 {
		cfg.CPUsPerNode = 1
	}
	if cfg.MaxFrame <= 0 {
		cfg.MaxFrame = DefaultMaxFrame
	}
	if cfg.JoinTimeout <= 0 {
		cfg.JoinTimeout = 30 * time.Second
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	nodes := cfg.Workers + 1
	c := &Cluster{
		cfg:       cfg,
		model:     dist.NewCluster(nodes, cfg.CPUsPerNode),
		probe:     dist.NewCodec(),
		ln:        ln,
		peers:     make([]atomic.Pointer[peer], cfg.Workers),
		ready:     make(chan struct{}),
		closed:    make(chan struct{}),
		loads:     make([]atomic.Int64, nodes),
		loadKnown: make([]atomic.Bool, nodes),
	}
	if cfg.Ext != nil {
		c.probe.SetValueCodec(cfg.Ext)
	}
	c.wg.Add(1)
	go c.acceptLoop()
	return c, nil
}

// Addr returns the coordinator's listen address.
func (c *Cluster) Addr() net.Addr { return c.ln.Addr() }

// WaitReady blocks until every expected worker has joined (nil), the join
// timeout passed, or the cluster was closed.
func (c *Cluster) WaitReady() error {
	<-c.ready
	return c.joinErr
}

// acceptLoop admits workers until the fleet is complete, then closes the
// listener — membership is fixed for the cluster's lifetime.
func (c *Cluster) acceptLoop() {
	defer c.wg.Done()
	deadline := time.Now().Add(c.cfg.JoinTimeout)
	if d, ok := c.ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(deadline)
	}
	joined := 0
	for joined < c.cfg.Workers {
		conn, err := c.ln.Accept()
		if err != nil {
			select {
			case <-c.closed:
				c.joinErr = fmt.Errorf("wire: coordinator closed with %d of %d workers joined",
					joined, c.cfg.Workers)
			default:
				c.joinErr = fmt.Errorf("wire: %d of %d workers joined before the %v join window closed: %w",
					joined, c.cfg.Workers, c.cfg.JoinTimeout, err)
			}
			close(c.ready)
			return
		}
		p, err := c.admit(conn, joined+1)
		if err != nil {
			conn.Close()
			continue
		}
		c.peers[joined].Store(p)
		joined++
		c.wg.Add(1)
		go c.serve(p)
	}
	c.ln.Close()
	close(c.ready)
}

// admit performs the HELLO/WELCOME handshake on a fresh connection,
// assigning it node id `node`. A version mismatch or malformed HELLO is
// answered with GOODBYE (when writable) and reported as an error.
func (c *Cluster) admit(conn net.Conn, node int) (*peer, error) {
	conn.SetDeadline(time.Now().Add(10 * time.Second))
	br := bufio.NewReaderSize(conn, 64<<10)
	typ, payload, err := readFrame(br, c.cfg.MaxFrame)
	if err != nil {
		return nil, fmt.Errorf("wire: reading HELLO: %w", err)
	}
	if typ != fHello {
		return nil, fmt.Errorf("wire: first frame type %d, want HELLO", typ)
	}
	h, err := parseHello(payload)
	if err != nil {
		return nil, err
	}
	if h.version != protoVersion {
		reason := fmt.Sprintf("protocol version %d not supported; coordinator speaks version %d",
			h.version, protoVersion)
		conn.Write(appendFrame(nil, fGoodbye, appendGoodbye(nil, reason)))
		return nil, fmt.Errorf("wire: %s", reason)
	}
	p := &peer{
		c:       c,
		node:    node,
		cpus:    h.cpus,
		conn:    conn,
		br:      br,
		enc:     dist.NewCodec(),
		dec:     dist.NewCodec(),
		boxes:   make(map[string]bool, len(h.boxes)),
		pending: make(map[uint64]chan execResult),
	}
	for _, b := range h.boxes {
		p.boxes[b] = true
	}
	if c.cfg.Ext != nil {
		p.enc.SetValueCodec(c.cfg.Ext)
		p.dec.SetValueCodec(c.cfg.Ext)
	}
	p.wmu.Lock()
	err = p.write(fWelcome, appendWelcome(nil, node, c.model.Nodes(), c.cfg.CPUsPerNode))
	p.wmu.Unlock()
	if err != nil {
		return nil, err
	}
	conn.SetDeadline(time.Time{})
	return p, nil
}

// serve is a worker connection's reader: it decodes RESULT batches in
// arrival order (pinning the codec negotiation order), feeds LOAD and
// STEAL-REQUEST gossip, and on any error — or the GOODBYE ack — tears the
// peer down, failing every pending EXEC so no box call waits on a dead
// socket.
func (c *Cluster) serve(p *peer) {
	defer c.wg.Done()
	defer func() {
		p.dead.Store(true)
		p.conn.Close()
		p.failPending()
	}()
	for {
		typ, payload, err := readFrame(p.br, c.cfg.MaxFrame)
		if err != nil {
			return
		}
		c.framesIn.Add(1)
		c.bytesIn.Add(frameLen(len(payload)))
		switch typ {
		case fResult:
			res, err := parseResult(payload)
			if err != nil {
				return
			}
			outs, err := p.dec.UnmarshalBatch(res.batch)
			if err != nil {
				// Codec desync: nothing after this frame can be trusted.
				return
			}
			var boxErr error
			if res.status != statusOK {
				boxErr = errors.New(res.errmsg)
			}
			p.complete(res.req, execResult{outs: outs, err: boxErr})
		case fLoad:
			v, err := parseLoad(payload)
			if err != nil {
				return
			}
			c.loads[p.node].Store(int64(v))
			c.loadKnown[p.node].Store(true)
		case fStealReq:
			c.stealReqs.Add(1)
			c.loads[p.node].Store(0)
			c.loadKnown[p.node].Store(true)
		case fGoodbye:
			return
		default:
			return
		}
	}
}

// write sends one frame; callers hold p.wmu. A write failure marks the
// peer dead — the reader will observe the broken connection and unwind.
func (p *peer) write(typ byte, parts ...[]byte) error {
	buf := appendFrame(p.wbuf[:0], typ, parts...)
	p.wbuf = buf
	if _, err := p.conn.Write(buf); err != nil {
		p.dead.Store(true)
		return err
	}
	p.c.framesOut.Add(1)
	p.c.bytesOut.Add(int64(len(buf)))
	return nil
}

func (p *peer) addPending(req uint64, ch chan execResult) {
	p.pmu.Lock()
	p.pending[req] = ch
	p.pmu.Unlock()
}

func (p *peer) dropPending(req uint64) {
	p.pmu.Lock()
	delete(p.pending, req)
	p.pmu.Unlock()
}

func (p *peer) complete(req uint64, res execResult) {
	p.pmu.Lock()
	ch, ok := p.pending[req]
	delete(p.pending, req)
	p.pmu.Unlock()
	if ok {
		ch <- res // buffered; never blocks
	}
}

func (p *peer) failPending() {
	p.pmu.Lock()
	for req, ch := range p.pending {
		delete(p.pending, req)
		ch <- execResult{failed: true}
	}
	p.pmu.Unlock()
}

// sendExec ships one box call. Marshalling and writing happen under one
// lock so the codec's negotiation order is the wire order.
func (p *peer) sendExec(req uint64, home int, stolen bool, box string, input *record.Record) error {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.dead.Load() {
		return errPeerDead
	}
	rec, err := p.enc.Marshal(input)
	if err != nil {
		// Marshalable was pre-checked, so this is an extension Encode
		// failure: the negotiation state may already be advanced and the
		// link cannot be trusted.
		p.dead.Store(true)
		return err
	}
	hdr := appendExecHeader(p.hdrBuf[:0], req, home, box)
	p.hdrBuf = hdr
	typ := fExec
	if stolen {
		typ = fStealGrant
	}
	return p.write(typ, hdr, rec)
}

func (p *peer) sendGoodbye(reason string) {
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.dead.Load() {
		return
	}
	g := appendGoodbye(p.hdrBuf[:0], reason)
	p.hdrBuf = g
	p.write(fGoodbye, g)
}

// norm maps an arbitrary node index onto a real node, like the model does.
func (c *Cluster) norm(n int) int {
	size := c.model.Nodes()
	return ((n % size) + size) % size
}

// peerAt returns the live peer owning node n, nil for node 0, an
// un-joined node, or a dead connection.
func (c *Cluster) peerAt(n int) *peer {
	if n <= 0 || n > len(c.peers) {
		return nil
	}
	p := c.peers[n-1].Load()
	if p == nil || p.dead.Load() {
		return nil
	}
	return p
}

// Nodes implements core.Platform.
func (c *Cluster) Nodes() int { return c.model.Nodes() }

// Exec implements core.Platform: opaque closures cannot ship, so they run
// in-process gated on the model's slot for the node — semantically the
// in-process platform. Box calls route through ExecBox instead.
func (c *Cluster) Exec(node int, fn func()) { c.model.Exec(node, fn) }

// ExecCancel implements core.CancellablePlatform (in-process; see Exec).
func (c *Cluster) ExecCancel(node int, cancel <-chan struct{}, fn func()) bool {
	return c.model.ExecCancel(node, cancel, fn)
}

// ExecStealable implements core.StealPlatform (in-process; see Exec).
func (c *Cluster) ExecStealable(node int, cancel <-chan struct{}, input *record.Record, fn func()) bool {
	return c.model.ExecStealable(node, cancel, input, fn)
}

// Transfer implements core.Platform: the model accounts the hop, and when
// the destination node lives in a worker process the record is mirrored
// there as a RECORD-BATCH frame, so the link's label negotiation and byte
// traffic are real, not just accounted.
func (c *Cluster) Transfer(from, to int, r *record.Record) {
	c.model.Transfer(from, to, r)
	c.mirror(from, to, []*record.Record{r})
}

// TransferBatch implements core.BatchPlatform (see Transfer).
func (c *Cluster) TransferBatch(from, to int, rs []*record.Record) {
	c.model.TransferBatch(from, to, rs)
	c.mirror(from, to, rs)
}

// mirror ships a cross-node stream batch to the worker that owns the
// destination node. Hops into node 0 are not mirrored — their payloads
// already cross the socket as RESULT frames. Batches containing records
// without a wire form are accounted by the model only, and counted.
func (c *Cluster) mirror(from, to int, rs []*record.Record) {
	t := c.norm(to)
	f := c.norm(from)
	if t == 0 || t == f || len(rs) == 0 {
		return
	}
	p := c.peerAt(t)
	if p == nil {
		c.skippedMirrors.Add(1)
		return
	}
	for _, r := range rs {
		if !c.probe.Marshalable(r) {
			c.skippedMirrors.Add(1)
			return
		}
	}
	p.wmu.Lock()
	defer p.wmu.Unlock()
	if p.dead.Load() {
		c.skippedMirrors.Add(1)
		return
	}
	data, err := p.enc.MarshalBatch(rs)
	if err != nil {
		p.dead.Store(true)
		c.skippedMirrors.Add(1)
		return
	}
	hdr := appendBatchHeader(p.hdrBuf[:0], f, t)
	p.hdrBuf = hdr
	if p.write(fBatch, hdr, data) == nil {
		c.mirroredBatches.Add(1)
	}
}

// Loads implements core.LoadPlatform: element-wise max of the model's
// slot ledger and the workers' gossiped gate occupancy. The model is
// authoritative for work it granted; gossip can only raise a node's
// reported load — it covers activity the model cannot see (a worker
// shared with another tenant), never hides granted work.
func (c *Cluster) Loads(dst []int) []int {
	dst = c.model.Loads(dst)
	for n := 1; n < len(dst) && n < len(c.loads); n++ {
		if c.loadKnown[n].Load() {
			if g := int(c.loads[n].Load()); g > dst[n] {
				dst[n] = g
			}
		}
	}
	return dst
}

// ExecBox implements core.RemotePlatform: the model grants a slot (with
// cancellation and stealing exactly as in-process), and when the granted
// node lives in a worker process that registered the box — and the input
// has a wire form — the call ships as an EXEC (or STEAL-GRANT, when the
// model migrated it) frame and the worker's emissions return as the
// outs. Otherwise local() runs on the granted slot, and a peer that dies
// mid-call fails over to local() too: boxes are stateless and the lost
// emissions never entered the stream, so re-running is safe.
func (c *Cluster) ExecBox(node int, cancel <-chan struct{}, box string, input *record.Record,
	stealable bool, local func()) ([]*record.Record, bool, bool, error) {
	home := c.norm(node)
	var outs []*record.Record
	var boxErr error
	remote := false
	granted := c.model.ExecOn(home, cancel, input, stealable, func(got int) {
		p := c.peerAt(got)
		if p == nil || !p.boxes[box] || !c.probe.Marshalable(input) {
			c.localExecs.Add(1)
			local()
			return
		}
		rs, err, failed := c.roundTrip(p, home, got != home, box, input)
		if failed {
			c.failovers.Add(1)
			c.localExecs.Add(1)
			local()
			return
		}
		c.remoteExecs.Add(1)
		if got != home {
			c.stolenExecs.Add(1)
		}
		outs, boxErr, remote = rs, err, true
	})
	return outs, remote, granted, boxErr
}

// roundTrip ships one box call and waits for its RESULT. failed means the
// peer died (at send time or mid-call) and the caller should fail over.
func (c *Cluster) roundTrip(p *peer, home int, stolen bool, box string, input *record.Record) ([]*record.Record, error, bool) {
	req := c.reqSeq.Add(1)
	ch := make(chan execResult, 1)
	p.addPending(req, ch)
	if err := p.sendExec(req, home, stolen, box, input); err != nil {
		p.dropPending(req)
		return nil, nil, true
	}
	res := <-ch
	if res.failed {
		return nil, nil, true
	}
	return res.outs, res.err, false
}

// Stats returns the scheduling model's accounting — the same counters,
// with the same meaning, as an in-process dist.Cluster, which is what
// keeps BENCH trajectories comparable across transports. The measured
// transport reality is WireStats.
func (c *Cluster) Stats() dist.Stats { return c.model.Stats() }

// SetTransferCost configures the model's transfer-cost delay, layered on
// top of the real socket latency (see docs/performance.md for how the two
// relate).
func (c *Cluster) SetTransferCost(latency time.Duration, bytesPerSecond float64) {
	c.model.SetTransferCost(latency, bytesPerSecond)
}

// WireStats snapshots the transport counters.
func (c *Cluster) WireStats() WireStats {
	live := 0
	for i := range c.peers {
		if p := c.peers[i].Load(); p != nil && !p.dead.Load() {
			live++
		}
	}
	return WireStats{
		FramesSent:      c.framesOut.Load(),
		FramesRecv:      c.framesIn.Load(),
		BytesSent:       c.bytesOut.Load(),
		BytesRecv:       c.bytesIn.Load(),
		RemoteExecs:     c.remoteExecs.Load(),
		LocalExecs:      c.localExecs.Load(),
		StolenExecs:     c.stolenExecs.Load(),
		Failovers:       c.failovers.Load(),
		MirroredBatches: c.mirroredBatches.Load(),
		SkippedMirrors:  c.skippedMirrors.Load(),
		StealRequests:   c.stealReqs.Load(),
		LiveWorkers:     live,
	}
}

// Workers lists the joined workers' advertised box tables, for
// diagnostics ("worker 2 registered [solver]").
func (c *Cluster) Workers() []string {
	var out []string
	for i := range c.peers {
		p := c.peers[i].Load()
		if p == nil {
			continue
		}
		boxes := make([]string, 0, len(p.boxes))
		for b := range p.boxes {
			boxes = append(boxes, b)
		}
		sort.Strings(boxes)
		state := "up"
		if p.dead.Load() {
			state = "down"
		}
		out = append(out, fmt.Sprintf("node %d (%s, %d cpus advertised): %v", p.node, state, p.cpus, boxes))
	}
	return out
}

// Close performs the orderly shutdown: GOODBYE to every worker, a bounded
// wait for their acks, and reclamation of every transport goroutine. It
// is idempotent and safe to call with executions drained (close the
// network instance first). Workers exit their Run loop with a nil error
// on receiving GOODBYE.
func (c *Cluster) Close() error {
	c.closeOnce.Do(func() {
		close(c.closed)
		c.ln.Close()
		for i := range c.peers {
			p := c.peers[i].Load()
			if p == nil {
				continue
			}
			p.sendGoodbye("coordinator shutdown")
			// The reader exits on the worker's GOODBYE ack or, if the
			// worker never answers, on this deadline — either way every
			// goroutine is reclaimed.
			p.conn.SetReadDeadline(time.Now().Add(3 * time.Second))
		}
	})
	c.wg.Wait()
	return nil
}
