// The worker side of the transport: wire.Worker, the engine inside a
// cmd/snetd process. A worker owns no scheduling policy — the coordinator's
// model granted a slot before any EXEC frame was sent — it just runs box
// bodies against its registered table, gated on its own slot count so a
// worker shared between clusters can never be oversubscribed, and gossips
// its occupancy back so the coordinator's load-aware placers see reality.
//
// Workers are the expendable half of the fault model: a worker that loses
// its coordinator reconnects with jittered exponential backoff (RunLoop)
// and presents its old node id in HELLO, so the coordinator can reset the
// link's codecs and return the node to service without disturbing the
// running network.
package wire

import (
	"bufio"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"snet/internal/core"
	"snet/internal/dist"
	"snet/internal/record"
)

// WorkerConfig shapes a worker process.
type WorkerConfig struct {
	// Ext is the application's value-extension table; it must register
	// the same names as the coordinator's.
	Ext *ExtTable
	// MaxFrame bounds a single frame; zero means DefaultMaxFrame.
	MaxFrame int
	// AdvertiseCPUs is the capability reported in HELLO (informational;
	// the WELCOME's slot count governs the gate). Zero means GOMAXPROCS.
	AdvertiseCPUs int
	// ReconnectBase is RunLoop's initial backoff delay, doubling per
	// consecutive failed attempt (capped at 32×base) with ±50% jitter so
	// a restarted fleet does not stampede the coordinator. Zero means
	// 250ms.
	ReconnectBase time.Duration
	// Dial overrides how Run reaches the coordinator; tests use it to
	// route the connection through a fault injector
	// (internal/faultwire). Nil means net.Dial("tcp", addr).
	Dial func(addr string) (net.Conn, error)
	// Logf, when set, receives one-line progress messages (joins, exec
	// counts at shutdown). Nil is silent.
	Logf func(format string, args ...any)
	// Clock overrides the worker's time source and timer construction;
	// tests use it to drive the pinger, liveness stamps, and reconnect
	// backoff with synthetic time. The zero value reads real time.
	Clock Clock
}

// ErrRetriesExhausted wraps the final connection error when RunLoop gives
// up: the coordinator stayed unreachable through the whole retry budget.
// cmd/snetd maps it to a distinct exit code so supervisors can tell
// "coordinator vanished" from a clean shutdown.
var ErrRetriesExhausted = errors.New("wire: reconnect attempts exhausted")

// Worker executes box calls on behalf of a coordinator. Register every box
// body before Run; Run dials, joins, and blocks serving EXEC frames until
// the coordinator says GOODBYE (nil return) or the connection breaks —
// RunLoop adds the reconnect policy on top.
type Worker struct {
	cfg   WorkerConfig
	boxes map[string]core.BoxFunc

	node  int // assigned in WELCOME; presented as the rejoin id afterwards
	nodes int
	slots int
	gate  *dist.Cluster // 1 node × slots: the local execution gate

	conn net.Conn
	enc  *dist.Codec // worker → coordinator
	dec  *dist.Codec // coordinator → worker

	// Heartbeat parameters from WELCOME: the worker bounds its reads with
	// the liveness timeout and probes a silent coordinator, mirroring the
	// coordinator's policy toward it.
	heartbeat time.Duration
	liveness  time.Duration
	lastRecv  atomic.Int64 // UnixNano of the last received frame

	joined bool // this Run reached WELCOME (resets RunLoop's budget)

	wmu    sync.Mutex
	wbuf   []byte
	hdrBuf []byte

	inflight atomic.Int64 // executions accepted and not yet finished
	execs    atomic.Int64
	execWG   sync.WaitGroup
}

// NewWorker returns a worker with an empty box table.
func NewWorker(cfg WorkerConfig) *Worker {
	return &Worker{cfg: cfg, boxes: make(map[string]core.BoxFunc)}
}

// Register adds a box body under the name the coordinator's network uses.
// All registrations must happen before Run.
func (w *Worker) Register(name string, fn core.BoxFunc) {
	w.boxes[name] = fn
}

// Node returns the node id assigned in WELCOME (valid once Run has
// joined; primarily for log lines).
func (w *Worker) Node() int { return w.node }

// Execs returns how many box calls this worker has completed, across all
// connections it has held.
func (w *Worker) Execs() int64 { return w.execs.Load() }

func (w *Worker) logf(format string, args ...any) {
	if w.cfg.Logf != nil {
		w.cfg.Logf(format, args...)
	}
}

func (w *Worker) maxFrame() int {
	if w.cfg.MaxFrame > 0 {
		return w.cfg.MaxFrame
	}
	return DefaultMaxFrame
}

func (w *Worker) dial(addr string) (net.Conn, error) {
	if w.cfg.Dial != nil {
		return w.cfg.Dial(addr)
	}
	return net.Dial("tcp", addr)
}

// RunLoop is Run wrapped in the reconnect policy: a lost connection is
// redialed with jittered exponential backoff, presenting the worker's
// node id for a rejoin. maxRetries bounds CONSECUTIVE failed attempts —
// any connection that reaches WELCOME refills the budget, so a worker
// that flaps daily retries forever while a vanished coordinator exhausts
// the budget promptly. Returns nil on GOODBYE (orderly shutdown) or an
// error wrapping ErrRetriesExhausted.
func (w *Worker) RunLoop(addr string, maxRetries int) error {
	failures := 0
	for {
		err := w.Run(addr)
		if err == nil {
			return nil
		}
		if w.joined {
			failures = 0
			w.joined = false
		}
		if failures >= maxRetries {
			return fmt.Errorf("%w: coordinator at %s unreachable after %d consecutive attempts: %v",
				ErrRetriesExhausted, addr, failures+1, err)
		}
		failures++
		delay := w.backoff(failures)
		w.logf("connection lost (%v); reconnect attempt %d/%d in %v", err, failures, maxRetries, delay)
		<-w.cfg.Clock.NewTimer(delay).C
	}
}

// backoff is the delay before the n-th consecutive failed attempt:
// base×2^(n-1) capped at 32×base, jittered uniformly over [½d, 1½d].
func (w *Worker) backoff(failure int) time.Duration {
	base := w.cfg.ReconnectBase
	if base <= 0 {
		base = 250 * time.Millisecond
	}
	shift := failure - 1
	if shift > 5 {
		shift = 5
	}
	d := base << shift
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// Run dials the coordinator, joins with HELLO, and serves box calls until
// GOODBYE (nil) or a connection/protocol failure (error). It blocks for
// the life of the connection. A worker that has joined before presents
// its node id (a RE-HELLO), asking for its old slot back.
func (w *Worker) Run(addr string) error {
	w.joined = false
	conn, err := w.dial(addr)
	if err != nil {
		return err
	}
	defer conn.Close()
	w.conn = conn
	w.enc, w.dec = dist.NewCodec(), dist.NewCodec()
	if w.cfg.Ext != nil {
		w.enc.SetValueCodec(w.cfg.Ext)
		w.dec.SetValueCodec(w.cfg.Ext)
	}
	br := bufio.NewReaderSize(conn, 64<<10)

	cpus := w.cfg.AdvertiseCPUs
	if cpus <= 0 {
		cpus = runtime.GOMAXPROCS(0)
	}
	names := make([]string, 0, len(w.boxes))
	for n := range w.boxes {
		names = append(names, n)
	}
	sort.Strings(names)
	rejoin := w.node
	if err := w.write(fHello, appendHello(nil, cpus, rejoin, names)); err != nil {
		return fmt.Errorf("wire: sending HELLO: %w", err)
	}

	typ, payload, err := readFrame(br, w.maxFrame())
	if err != nil {
		return fmt.Errorf("wire: waiting for WELCOME: %w", err)
	}
	switch typ {
	case fWelcome:
	case fGoodbye:
		reason, _ := parseGoodbye(payload)
		return fmt.Errorf("wire: coordinator refused join: %s", reason)
	default:
		return fmt.Errorf("wire: frame type %d before WELCOME", typ)
	}
	wm, err := parseWelcome(payload)
	if err != nil {
		return err
	}
	if wm.version != protoVersion {
		return fmt.Errorf("wire: coordinator speaks protocol version %d, this worker speaks %d",
			wm.version, protoVersion)
	}
	w.node, w.nodes, w.slots = wm.node, wm.nodes, wm.slots
	w.heartbeat, w.liveness = wm.heartbeat, wm.liveness
	if w.slots < 1 {
		w.slots = 1
	}
	w.gate = dist.NewCluster(1, w.slots)
	w.joined = true
	w.lastRecv.Store(w.cfg.Clock.Now().UnixNano())
	if rejoin > 0 {
		w.logf("rejoined as node %d of %d (%d slots, boxes %v)", w.node, w.nodes, w.slots, names)
	} else {
		w.logf("joined as node %d of %d (%d slots, boxes %v)", w.node, w.nodes, w.slots, names)
	}
	if w.heartbeat > 0 && w.liveness > 0 {
		pingerDone := make(chan struct{})
		pingerExited := make(chan struct{})
		go func() {
			defer close(pingerExited)
			w.pinger(pingerDone, w.heartbeat)
		}()
		// Join the pinger before returning: a reconnecting Run rewrites
		// the connection fields this goroutine touches.
		defer func() {
			close(pingerDone)
			<-pingerExited
		}()
	}

	var loopErr error
	goodbye := false
	for loopErr == nil && !goodbye {
		if w.liveness > 0 {
			//lint:reason conn deadlines are compared against real time by the kernel, never against the injected clock
			conn.SetReadDeadline(time.Now().Add(w.liveness))
		}
		typ, payload, err := readFrame(br, w.maxFrame())
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				err = fmt.Errorf("wire: coordinator silent past the %v liveness timeout", w.liveness)
			}
			loopErr = err
			break
		}
		w.lastRecv.Store(w.cfg.Clock.Now().UnixNano())
		switch typ {
		case fExec, fStealGrant:
			e, err := parseExec(payload)
			if err != nil {
				loopErr = err
				break
			}
			// Decode inline, before spawning: the reader is the only
			// decoder, so label definitions are consumed in the order the
			// coordinator's encoder emitted them.
			in, err := w.dec.Unmarshal(e.rec)
			if err != nil {
				loopErr = fmt.Errorf("wire: decoding EXEC %d input: %w", e.req, err)
				break
			}
			w.execWG.Add(1)
			go w.execute(e.req, e.box, in)
		case fBatch:
			b, err := parseBatch(payload)
			if err != nil {
				loopErr = err
				break
			}
			// Mirrored stream hops end their journey here: decoding keeps
			// this link's label table in step with the coordinator's
			// encoder (and makes the traffic real); the records themselves
			// are owned by the coordinator-resident network.
			if _, err := w.dec.UnmarshalBatch(b.batch); err != nil {
				loopErr = fmt.Errorf("wire: decoding RECORD-BATCH: %w", err)
			}
		case fPing:
			// Answered from the reader, so a worker whose every slot is
			// busy inside long box executions still proves liveness.
			w.write(fPong)
		case fPong:
			// Nothing beyond the lastRecv refresh above.
		case fGoodbye:
			goodbye = true
		default:
			loopErr = fmt.Errorf("wire: unexpected frame type %d", typ)
		}
	}
	// Let in-flight executions finish and their results flush — on
	// GOODBYE the coordinator keeps reading until our ack.
	w.execWG.Wait()
	if goodbye {
		w.wmu.Lock()
		g := appendGoodbye(w.hdrBuf[:0], "worker done")
		w.hdrBuf = g
		w.writeLocked(fGoodbye, g)
		w.wmu.Unlock()
		w.logf("left after %d executions", w.execs.Load())
		return nil
	}
	return loopErr
}

// pinger probes a receive-idle link from the worker side, mirroring the
// coordinator's sweep: the PONGs it provokes are what keep the worker's
// read deadline honest on a link that is healthy but quiet (the
// coordinator only probes when IT is not hearing from the worker, which
// is not quite the same condition). Exits with the Run that started it.
func (w *Worker) pinger(done chan struct{}, interval time.Duration) {
	t := w.cfg.Clock.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-done:
			return
		case <-t.C:
			idle := w.cfg.Clock.Since(time.Unix(0, w.lastRecv.Load()))
			if idle >= interval {
				w.write(fPing)
			}
		}
	}
}

// execute runs one box call on a gate slot and sends its RESULT, with
// LOAD gossip around it and a STEAL-REQUEST when the worker goes idle.
func (w *Worker) execute(req uint64, box string, in *record.Record) {
	defer w.execWG.Done()
	fn, found := w.boxes[box]
	if !found {
		w.sendResult(req, nil, fmt.Errorf("box %q is not registered on worker node %d", box, w.node))
		return
	}
	w.sendLoad(int(w.inflight.Add(1)))
	var outs []*record.Record
	var boxErr error
	w.gate.Exec(0, func() {
		outs, boxErr = core.CallBox(fn, in)
	})
	w.execs.Add(1)
	left := w.inflight.Add(-1)
	w.sendResult(req, outs, boxErr)
	w.sendLoad(int(left))
	if left == 0 {
		// Idle: advertise hunger for migrated work (the coordinator's
		// model treats this as "load zero", feeding its steal scans).
		w.write(fStealReq)
	}
}

// sendResult marshals the emissions and writes the RESULT frame under one
// lock, pinning this link's codec negotiation order to the wire order. A
// batch that cannot be marshalled (an emission outside the extension
// table) degrades to a box error with an empty batch — MarshalBatch
// validates before negotiating, so the codec state is untouched.
func (w *Worker) sendResult(req uint64, outs []*record.Record, boxErr error) {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	batch, err := w.enc.MarshalBatch(outs)
	if err != nil {
		if boxErr == nil {
			boxErr = err
		} else {
			boxErr = fmt.Errorf("%v (and emissions were unserializable: %v)", boxErr, err)
		}
		outs = nil
		batch, _ = w.enc.MarshalBatch(nil)
	}
	status, errmsg := statusOK, ""
	if boxErr != nil {
		status, errmsg = statusErr, boxErr.Error()
	}
	hdr := appendResultHeader(w.hdrBuf[:0], req, status, errmsg)
	w.hdrBuf = hdr
	w.writeLocked(fResult, hdr, batch)
}

func (w *Worker) sendLoad(load int) {
	w.wmu.Lock()
	g := appendLoad(w.hdrBuf[:0], load)
	w.hdrBuf = g
	w.writeLocked(fLoad, g)
	w.wmu.Unlock()
}

// write sends one frame, taking the write lock.
func (w *Worker) write(typ byte, parts ...[]byte) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	return w.writeLocked(typ, parts...)
}

// writeLocked sends one frame; callers hold wmu. Writes are bounded by
// the liveness timeout (once known) so a blackholed link cannot wedge a
// writer behind a full TCP buffer.
func (w *Worker) writeLocked(typ byte, parts ...[]byte) error {
	buf := appendFrame(w.wbuf[:0], typ, parts...)
	w.wbuf = buf
	if w.liveness > 0 {
		//lint:reason conn deadlines are compared against real time by the kernel, never against the injected clock
		w.conn.SetWriteDeadline(time.Now().Add(w.liveness))
	}
	_, err := w.conn.Write(buf)
	return err
}
