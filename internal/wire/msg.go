// Message payload encodings: the fixed-layout bytes between a frame's type
// byte and its record payload. Everything is little-endian, matching the
// record codec. Each message has an append* builder and a parse* reader;
// record payloads (EXEC inputs, RESULT/RECORD-BATCH batches) are the
// remaining bytes of the frame and are decoded by the connection's
// dist.Codec, never here.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// mr is a bounds-checked message reader over one frame's payload.
type mr struct {
	buf []byte
	off int
}

func (m *mr) take(n int) ([]byte, error) {
	if m.off+n > len(m.buf) {
		return nil, fmt.Errorf("wire: truncated message at byte %d", m.off)
	}
	b := m.buf[m.off : m.off+n]
	m.off += n
	return b, nil
}

func (m *mr) u8() (byte, error) {
	b, err := m.take(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (m *mr) u16() (int, error) {
	b, err := m.take(2)
	if err != nil {
		return 0, err
	}
	return int(binary.LittleEndian.Uint16(b)), nil
}

func (m *mr) u32() (uint32, error) {
	b, err := m.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (m *mr) u64() (uint64, error) {
	b, err := m.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (m *mr) str16() (string, error) {
	n, err := m.u16()
	if err != nil {
		return "", err
	}
	b, err := m.take(n)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// rest returns the unread remainder of the payload (the record bytes).
func (m *mr) rest() []byte { return m.buf[m.off:] }

func appendU16(buf []byte, v int) []byte {
	return binary.LittleEndian.AppendUint16(buf, uint16(v))
}

func appendStr16(buf []byte, s string) []byte {
	buf = appendU16(buf, len(s))
	return append(buf, s...)
}

// HELLO: magic u32, version u16, cpus u16, rejoin node u16 (0 = fresh
// join; >0 = RE-HELLO claiming the node id a previous connection held),
// box count u16, then each box name u16-length-prefixed.
type helloMsg struct {
	version int
	cpus    int
	node    int // 0 = fresh join, >0 = rejoin as this node
	boxes   []string
}

func appendHello(buf []byte, cpus, node int, boxes []string) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, helloMagic)
	buf = appendU16(buf, protoVersion)
	buf = appendU16(buf, cpus)
	buf = appendU16(buf, node)
	buf = appendU16(buf, len(boxes))
	for _, b := range boxes {
		buf = appendStr16(buf, b)
	}
	return buf
}

func parseHello(payload []byte) (helloMsg, error) {
	m := &mr{buf: payload}
	magic, err := m.u32()
	if err != nil {
		return helloMsg{}, err
	}
	if magic != helloMagic {
		return helloMsg{}, fmt.Errorf("wire: HELLO magic %#x, want %#x (not an snet worker?)", magic, helloMagic)
	}
	var h helloMsg
	if h.version, err = m.u16(); err != nil {
		return helloMsg{}, err
	}
	if h.cpus, err = m.u16(); err != nil {
		return helloMsg{}, err
	}
	if h.node, err = m.u16(); err != nil {
		return helloMsg{}, err
	}
	n, err := m.u16()
	if err != nil {
		return helloMsg{}, err
	}
	for i := 0; i < n; i++ {
		b, err := m.str16()
		if err != nil {
			return helloMsg{}, err
		}
		h.boxes = append(h.boxes, b)
	}
	return h, nil
}

// WELCOME: version u16, node u16, nodes u16, slots u16, heartbeat interval
// u32 (milliseconds), liveness timeout u32 (milliseconds). The heartbeat
// parameters tell the worker how aggressively the coordinator probes, so
// the worker can bound its own reads with the matching deadline; zero
// disables worker-side read deadlines.
type welcomeMsg struct {
	version   int
	node      int
	nodes     int
	slots     int
	heartbeat time.Duration
	liveness  time.Duration
}

func appendWelcome(buf []byte, node, nodes, slots int, heartbeat, liveness time.Duration) []byte {
	buf = appendU16(buf, protoVersion)
	buf = appendU16(buf, node)
	buf = appendU16(buf, nodes)
	buf = appendU16(buf, slots)
	buf = binary.LittleEndian.AppendUint32(buf, clampMs(heartbeat))
	return binary.LittleEndian.AppendUint32(buf, clampMs(liveness))
}

// clampMs converts a duration to whole milliseconds saturating at u32 —
// the wire form of the heartbeat parameters.
func clampMs(d time.Duration) uint32 {
	ms := d.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > math.MaxUint32 {
		ms = math.MaxUint32
	}
	return uint32(ms)
}

func parseWelcome(payload []byte) (welcomeMsg, error) {
	m := &mr{buf: payload}
	var w welcomeMsg
	var err error
	if w.version, err = m.u16(); err != nil {
		return w, err
	}
	if w.node, err = m.u16(); err != nil {
		return w, err
	}
	if w.nodes, err = m.u16(); err != nil {
		return w, err
	}
	if w.slots, err = m.u16(); err != nil {
		return w, err
	}
	hb, err := m.u32()
	if err != nil {
		return w, err
	}
	lv, err := m.u32()
	if err != nil {
		return w, err
	}
	w.heartbeat = time.Duration(hb) * time.Millisecond
	w.liveness = time.Duration(lv) * time.Millisecond
	return w, nil
}

// EXEC / STEAL-GRANT: request id u64, home node u16, box name (u16 +
// bytes), then the codec-encoded input record.
type execMsg struct {
	req  uint64
	home int
	box  string
	rec  []byte
}

func appendExecHeader(buf []byte, req uint64, home int, box string) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, req)
	buf = appendU16(buf, home)
	return appendStr16(buf, box)
}

func parseExec(payload []byte) (execMsg, error) {
	m := &mr{buf: payload}
	var e execMsg
	var err error
	if e.req, err = m.u64(); err != nil {
		return e, err
	}
	if e.home, err = m.u16(); err != nil {
		return e, err
	}
	if e.box, err = m.str16(); err != nil {
		return e, err
	}
	e.rec = m.rest()
	return e, nil
}

// RESULT: request id u64, status u8 (0 ok, 1 box error), error message
// (u16 + bytes, empty on ok), then the codec-encoded emission batch.
const (
	statusOK  byte = 0
	statusErr byte = 1
)

type resultMsg struct {
	req    uint64
	status byte
	errmsg string
	batch  []byte
}

func appendResultHeader(buf []byte, req uint64, status byte, errmsg string) []byte {
	buf = binary.LittleEndian.AppendUint64(buf, req)
	buf = append(buf, status)
	if len(errmsg) > math.MaxUint16 {
		errmsg = errmsg[:math.MaxUint16]
	}
	return appendStr16(buf, errmsg)
}

func parseResult(payload []byte) (resultMsg, error) {
	m := &mr{buf: payload}
	var r resultMsg
	var err error
	if r.req, err = m.u64(); err != nil {
		return r, err
	}
	if r.status, err = m.u8(); err != nil {
		return r, err
	}
	if r.errmsg, err = m.str16(); err != nil {
		return r, err
	}
	r.batch = m.rest()
	return r, nil
}

// RECORD-BATCH: from node u16, to node u16, then the codec-encoded batch.
type batchMsg struct {
	from, to int
	batch    []byte
}

func appendBatchHeader(buf []byte, from, to int) []byte {
	buf = appendU16(buf, from)
	return appendU16(buf, to)
}

func parseBatch(payload []byte) (batchMsg, error) {
	m := &mr{buf: payload}
	var b batchMsg
	var err error
	if b.from, err = m.u16(); err != nil {
		return b, err
	}
	if b.to, err = m.u16(); err != nil {
		return b, err
	}
	b.batch = m.rest()
	return b, nil
}

// LOAD: gate occupancy u16 (executions running plus queued at the worker).
func appendLoad(buf []byte, load int) []byte {
	if load > math.MaxUint16 {
		load = math.MaxUint16
	}
	return appendU16(buf, load)
}

func parseLoad(payload []byte) (int, error) {
	m := &mr{buf: payload}
	return m.u16()
}

// GOODBYE: reason (u16 + bytes).
func appendGoodbye(buf []byte, reason string) []byte {
	if len(reason) > math.MaxUint16 {
		reason = reason[:math.MaxUint16]
	}
	return appendStr16(buf, reason)
}

func parseGoodbye(payload []byte) (string, error) {
	m := &mr{buf: payload}
	return m.str16()
}
