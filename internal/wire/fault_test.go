// Deterministic fault-tolerance tests, driven by internal/faultwire and a
// synthetic clock: hung-peer detection is proved by sweeping with
// manufactured times (no wall-clock waiting decides correctness), and the
// injected faults — blackholes, severs, torn frames — are applied at
// points the tests control exactly.
package wire

import (
	"sync"
	"testing"
	"time"

	"snet/internal/core"
	"snet/internal/faultwire"
	"snet/internal/leakcheck"
	"snet/internal/record"
)

// fakeClock is a hand-advanced time source for CoordinatorConfig.Clock.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1_000_000, 0)} }

func (f *fakeClock) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) advance(d time.Duration) time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.t = f.t.Add(d)
	return f.t
}

type boxCallResult struct {
	outs     []*record.Record
	remote   bool
	ok       bool
	localRan bool
	err      error
}

// execAsync runs one ExecBox in a goroutine, delivering the outcome.
func execAsync(cl *Cluster, node int, box string, in *record.Record) <-chan boxCallResult {
	done := make(chan boxCallResult, 1)
	go func() {
		var r boxCallResult
		r.outs, r.remote, r.ok, r.err = cl.ExecBox(node, nil, box, in, false,
			func() { r.localRan = true })
		done <- r
	}()
	return done
}

// waitFor polls cond until it holds or the deadline passes; the waits are
// for asynchronous delivery, never for triggering the behavior itself.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHungPeerDetectedByHeartbeat proves liveness detection catches a
// worker that is reachable but silent — the connection stays open, bytes
// go in, nothing comes out — which no read-error path can see. The
// worker's outbound direction is blackholed mid-call; only the heartbeat
// sweep crossing the liveness timeout (driven by a synthetic clock, no
// real waiting) declares it dead and fails the pending call over to a
// local slot.
func TestHungPeerDetectedByHeartbeat(t *testing.T) {
	leakcheck.Check(t)
	fc := newFakeClock()
	cl, err := Listen("127.0.0.1:0", CoordinatorConfig{
		Workers: 1, CPUsPerNode: 1, JoinTimeout: 10 * time.Second,
		// An hour-scale interval keeps the background ticker inert: every
		// sweep in this test is explicit, at a manufactured time.
		HeartbeatInterval: time.Hour, // liveness defaults to 4h
		Clock:             Clock{NowFn: fc.now},
	})
	if err != nil {
		t.Fatal(err)
	}
	var d faultwire.Dialer
	w := NewWorker(WorkerConfig{Dial: d.Dial})
	w.Register("double", doubler)
	workerErr := make(chan error, 1)
	go func() { workerErr <- w.Run(cl.Addr().String()) }()
	if err := cl.WaitReady(); err != nil {
		cl.Close()
		t.Fatal(err)
	}
	link := d.Last()
	defer func() {
		// Unblock anything still parked in the blackhole so the worker
		// goroutine can unwind.
		link.SetWriteMode(faultwire.Pass, 0)
		cl.Close()
		<-workerErr
	}()

	// Hang the worker: everything it sends from now on is withheld. The
	// EXEC still reaches it (inbound is untouched) — it goes to work and
	// its frames vanish, exactly a wedged-but-alive process.
	link.SetWriteMode(faultwire.Blackhole, 0)
	done := execAsync(cl, 1, "double", record.New().SetField("x", 5))
	waitFor(t, "EXEC dispatch", func() bool { return cl.WireStats().FramesSent >= 2 })

	// One heartbeat interval of silence: the sweep PINGs, and that is
	// all. Without liveness expiry there is provably no progress — the
	// RESULT cannot arrive, and nothing has failed the call over.
	cl.sweep(fc.advance(2 * time.Hour))
	select {
	case r := <-done:
		t.Fatalf("call completed with only a PING sweep: %+v", r)
	default:
	}
	if ws := cl.WireStats(); ws.LiveWorkers != 1 || ws.Failovers != 0 {
		t.Fatalf("after PING sweep: %+v", ws)
	}

	// Past the liveness timeout the sweep declares the peer dead, which
	// fails the pending call over to the local slot.
	cl.sweep(fc.advance(3 * time.Hour)) // 5h silent > 4h liveness
	r := <-done
	if r.err != nil || !r.ok || r.remote || !r.localRan {
		t.Fatalf("failover: %+v", r)
	}
	ws := cl.WireStats()
	if ws.Failovers != 1 || ws.LocalExecs != 1 || ws.LiveWorkers != 0 {
		t.Fatalf("stats = %+v", ws)
	}
}

// TestCallTimeoutQuarantineAndProbeBack drives the whole fault ledger:
// call deadlines convert a stuck box into timeouts and a bounded retry,
// the second fault inside the window quarantines the node (excluded from
// dispatch, reported saturated by Loads), and after the cool-down a sweep
// PING — answered by the still-alive worker — requalifies it, restoring
// remote dispatch. The box is stuck because the test holds it on a
// channel, so every timeout is certain, not a race won.
func TestCallTimeoutQuarantineAndProbeBack(t *testing.T) {
	leakcheck.Check(t)
	fc := newFakeClock()
	cl, err := Listen("127.0.0.1:0", CoordinatorConfig{
		Workers: 1, CPUsPerNode: 2, JoinTimeout: 10 * time.Second,
		HeartbeatInterval:  time.Hour,
		CallTimeout:        50 * time.Millisecond,
		CallRetries:        1,
		FaultLimit:         2,
		FaultWindow:        24 * time.Hour,
		QuarantineCooldown: time.Hour,
		Clock:              Clock{NowFn: fc.now},
	})
	if err != nil {
		t.Fatal(err)
	}
	release := make(chan struct{})
	var d faultwire.Dialer
	w := NewWorker(WorkerConfig{Dial: d.Dial})
	w.Register("held", func(c *core.BoxCall) error {
		<-release
		c.Emit(c.NewRecord().SetField("x", c.Field("x").(int)*2))
		return nil
	})
	workerErr := make(chan error, 1)
	go func() { workerErr <- w.Run(cl.Addr().String()) }()
	if err := cl.WaitReady(); err != nil {
		cl.Close()
		t.Fatal(err)
	}
	defer func() {
		cl.Close()
		<-workerErr
	}()

	// Call 1: attempt times out, the retry times out, the second fault
	// trips the quarantine, and the call fails over to a local slot.
	r := <-execAsync(cl, 1, "held", record.New().SetField("x", 1))
	if r.err != nil || !r.ok || r.remote || !r.localRan {
		t.Fatalf("quarantining call: %+v", r)
	}
	ws := cl.WireStats()
	if ws.Timeouts != 2 || ws.Retries != 1 || ws.Quarantines != 1 || ws.Failovers != 1 {
		t.Fatalf("stats = %+v", ws)
	}
	if !cl.quarantined(1) {
		t.Fatal("node 1 not quarantined after FaultLimit faults")
	}
	if loads := cl.Loads(nil); loads[1] < unavailableLoad {
		t.Fatalf("Loads[1] = %d: quarantined node not reported saturated", loads[1])
	}

	// While quarantined, calls run locally at once — no deadline burned.
	r = <-execAsync(cl, 1, "held", record.New().SetField("x", 2))
	if !r.localRan || r.remote {
		t.Fatalf("quarantined-node call: %+v", r)
	}
	if ws := cl.WireStats(); ws.Timeouts != 2 || ws.LocalExecs != 2 {
		t.Fatalf("quarantine must bypass the deadline path: %+v", ws)
	}

	// Probe-back: past the cool-down, the sweep PINGs the quarantined
	// peer even though it is excluded from dispatch; its PONG is the
	// evidence of life that requalifies it. The link was otherwise silent
	// (the held boxes have sent nothing), so the PING is load-bearing.
	cl.sweep(fc.advance(2 * time.Hour))
	waitFor(t, "requalification", func() bool { return !cl.quarantined(1) })

	// Release the held boxes: their late RESULTs arrive for dropped
	// request ids and are discarded — and the link's codecs are still
	// consistent, proved by the remote call that follows.
	close(release)
	r = <-execAsync(cl, 1, "held", record.New().SetField("x", 3))
	if r.err != nil || !r.remote {
		t.Fatalf("post-requalify call: %+v", r)
	}
	if v, _ := r.outs[0].Field("x"); v != 6 {
		t.Fatalf("x = %v", v)
	}
	if ws := cl.WireStats(); ws.RemoteExecs != 1 {
		t.Fatalf("stats = %+v", ws)
	}
}

// TestLateResultDiscardedWithoutRetry covers the no-retry configuration:
// one timeout fails straight over, the RESULT that eventually arrives for
// the abandoned request id is discarded — and because its decode still
// ran, the link's codecs stay in step and the next call goes remote.
func TestLateResultDiscardedWithoutRetry(t *testing.T) {
	leakcheck.Check(t)
	cl, err := Listen("127.0.0.1:0", CoordinatorConfig{
		Workers: 1, CPUsPerNode: 2, JoinTimeout: 10 * time.Second,
		HeartbeatInterval: time.Hour,
		CallTimeout:       50 * time.Millisecond,
		CallRetries:       -1, // no retries: first timeout fails over
		FaultLimit:        100,
	})
	if err != nil {
		t.Fatal(err)
	}
	var d faultwire.Dialer
	w := NewWorker(WorkerConfig{Dial: d.Dial})
	w.Register("double", doubler)
	workerErr := make(chan error, 1)
	go func() { workerErr <- w.Run(cl.Addr().String()) }()
	if err := cl.WaitReady(); err != nil {
		cl.Close()
		t.Fatal(err)
	}
	link := d.Last()
	defer func() {
		link.SetWriteMode(faultwire.Pass, 0)
		cl.Close()
		<-workerErr
	}()

	link.SetWriteMode(faultwire.Blackhole, 0)
	r := <-execAsync(cl, 1, "double", record.New().SetField("x", 4))
	if r.err != nil || !r.localRan || r.remote {
		t.Fatalf("timed-out call: %+v", r)
	}
	ws := cl.WireStats()
	if ws.Timeouts != 1 || ws.Retries != 0 || ws.Failovers != 1 || ws.Quarantines != 0 {
		t.Fatalf("stats = %+v", ws)
	}

	// Recovery: the withheld frames (LOAD, the late RESULT) deliver in
	// order; the stale RESULT matches no pending call and is dropped.
	link.SetWriteMode(faultwire.Pass, 0)
	r = <-execAsync(cl, 1, "double", record.New().SetField("x", 5))
	if r.err != nil || !r.remote {
		t.Fatalf("post-recovery call: %+v", r)
	}
	if v, _ := r.outs[0].Field("x"); v != 10 {
		t.Fatalf("x = %v", v)
	}
}

// TestWorkerRejoinReceivesNewExecs severs a live worker's connection and
// lets RunLoop reconnect it: the coordinator must accept the RE-HELLO for
// node 1, reset the link codecs, count the rejoin, and dispatch new EXECs
// to the rejoined worker — the remote call succeeding after rejoin is the
// proof the codec Reset actually produced a fresh negotiation.
func TestWorkerRejoinReceivesNewExecs(t *testing.T) {
	leakcheck.Check(t)
	cl, err := Listen("127.0.0.1:0", CoordinatorConfig{
		Workers: 1, CPUsPerNode: 1, JoinTimeout: 10 * time.Second,
		HeartbeatInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	var d faultwire.Dialer
	w := NewWorker(WorkerConfig{Dial: d.Dial, ReconnectBase: time.Millisecond})
	w.Register("double", doubler)
	workerErr := make(chan error, 1)
	go func() { workerErr <- w.RunLoop(cl.Addr().String(), 100) }()
	if err := cl.WaitReady(); err != nil {
		cl.Close()
		t.Fatal(err)
	}

	r := <-execAsync(cl, 1, "double", record.New().SetField("x", 6))
	if r.err != nil || !r.remote {
		t.Fatalf("pre-sever call: %+v", r)
	}

	d.Last().Sever()
	waitFor(t, "rejoin", func() bool {
		ws := cl.WireStats()
		return ws.Rejoins >= 1 && ws.LiveWorkers == 1
	})
	if len(d.Conns()) < 2 {
		t.Fatalf("dialed %d connections, want a reconnect", len(d.Conns()))
	}

	// New EXECs flow to the rejoined node: the call goes remote, with a
	// label negotiation starting from scratch on the reset codecs.
	r = <-execAsync(cl, 1, "double", record.New().SetField("x", 7))
	if r.err != nil || !r.remote {
		t.Fatalf("post-rejoin call: %+v", r)
	}
	if v, _ := r.outs[0].Field("x"); v != 14 {
		t.Fatalf("x = %v", v)
	}
	if ws := cl.WireStats(); ws.RemoteExecs != 2 || ws.Rejoins != 1 {
		t.Fatalf("stats = %+v", ws)
	}
	// The model's per-node accounting shows the post-rejoin execution on
	// the same node id.
	if ex := cl.Stats().Execs[1]; ex != 2 {
		t.Fatalf("model execs on node 1 = %d, want 2", ex)
	}

	// Orderly shutdown ends the reconnect loop with a nil error.
	cl.Close()
	if err := <-workerErr; err != nil {
		t.Fatalf("RunLoop exit: %v", err)
	}
}

// TestConcurrentHammerSurvivesMidResultSever is the many-in-flight
// failover test: 64 concurrent calls against one worker whose outbound
// stream is torn mid-frame (a byte budget lands the sever inside a frame,
// the truncation a SIGKILL produces). Every call must complete — remotely
// before the cut, locally after — with at least one observed failover,
// and no goroutine left behind.
func TestConcurrentHammerSurvivesMidResultSever(t *testing.T) {
	leakcheck.Check(t)
	cl, err := Listen("127.0.0.1:0", CoordinatorConfig{
		Workers: 1, CPUsPerNode: 4, JoinTimeout: 10 * time.Second,
		HeartbeatInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	var d faultwire.Dialer
	w := NewWorker(WorkerConfig{Dial: d.Dial})
	w.Register("double", doubler)
	workerErr := make(chan error, 1)
	go func() { workerErr <- w.Run(cl.Addr().String()) }()
	if err := cl.WaitReady(); err != nil {
		cl.Close()
		t.Fatal(err)
	}
	defer func() {
		cl.Close()
		<-workerErr
	}()

	// 40 bytes of budget lands inside the first handful of worker frames
	// (LOADs are 7 bytes on the wire, RESULTs bigger): some frame is
	// guaranteed torn while its call — which cannot have completed — is
	// still pending, so Failovers >= 1 is certain, not probabilistic.
	d.Last().SeverAfterWrite(40)

	const calls = 64
	results := make([]boxCallResult, calls)
	var wg sync.WaitGroup
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = <-execAsync(cl, 1, "double", record.New().SetField("x", i))
		}(i)
	}
	wg.Wait()

	for i, r := range results {
		if r.err != nil || !r.ok {
			t.Fatalf("call %d: %+v", i, r)
		}
		if r.remote {
			if v, _ := r.outs[0].Field("x"); v != i*2 {
				t.Fatalf("call %d: remote x = %v, want %d", i, v, i*2)
			}
		} else if !r.localRan {
			t.Fatalf("call %d neither remote nor local: %+v", i, r)
		}
	}
	ws := cl.WireStats()
	if ws.Failovers < 1 {
		t.Fatalf("no failover despite mid-frame sever: %+v", ws)
	}
	if ws.RemoteExecs+ws.LocalExecs != calls {
		t.Fatalf("execs don't add up: %+v", ws)
	}
	if ws.LiveWorkers != 0 {
		t.Fatalf("severed worker still counted live: %+v", ws)
	}
}
