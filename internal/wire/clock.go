// The clock seam: every wall-clock read and timer construction in this
// package flows through Clock, so the fault detectors — heartbeat sweep,
// liveness timeout, call deadlines, quarantine cool-down, reconnect
// backoff — can be driven by synthetic time in deterministic tests. The
// wallclock analyzer (internal/analysis/wallclock) enforces this
// mechanically; the default real-time bindings below are the package's
// only sanctioned direct uses of the time package, besides net.Conn
// deadline arithmetic (the kernel compares deadlines against real time,
// so a synthetic cluster clock must never shift those).
package wire

import "time"

// Clock is an injectable time source. The zero value reads real time and
// builds real timers; tests override individual hooks (usually just
// NowFn) to drive time by hand.
type Clock struct {
	// NowFn overrides Now. Nil means time.Now.
	NowFn func() time.Time
	// TimerFn overrides NewTimer. Nil means time.NewTimer.
	TimerFn func(d time.Duration) *Timer
	// TickerFn overrides NewTicker. Nil means time.NewTicker.
	TickerFn func(d time.Duration) *Ticker
	// AfterFn overrides AfterFunc. Nil means time.AfterFunc.
	AfterFn func(d time.Duration, f func()) *Timer
}

// Now returns the current time as the clock sees it.
func (c Clock) Now() time.Time {
	if c.NowFn != nil {
		return c.NowFn()
	}
	return time.Now() //lint:reason default real-time binding of the clock seam
}

// Since is time.Since against this clock.
func (c Clock) Since(t time.Time) time.Duration { return c.Now().Sub(t) }

// NewTimer is time.NewTimer against this clock.
func (c Clock) NewTimer(d time.Duration) *Timer {
	if c.TimerFn != nil {
		return c.TimerFn(d)
	}
	t := time.NewTimer(d) //lint:reason default real-time binding of the clock seam
	return &Timer{C: t.C, StopFn: t.Stop}
}

// NewTicker is time.NewTicker against this clock.
func (c Clock) NewTicker(d time.Duration) *Ticker {
	if c.TickerFn != nil {
		return c.TickerFn(d)
	}
	t := time.NewTicker(d) //lint:reason default real-time binding of the clock seam
	return &Ticker{C: t.C, StopFn: t.Stop}
}

// AfterFunc is time.AfterFunc against this clock.
func (c Clock) AfterFunc(d time.Duration, f func()) *Timer {
	if c.AfterFn != nil {
		return c.AfterFn(d, f)
	}
	t := time.AfterFunc(d, f) //lint:reason default real-time binding of the clock seam
	return &Timer{C: t.C, StopFn: t.Stop}
}

// Timer mirrors time.Timer behind the seam.
type Timer struct {
	C      <-chan time.Time
	StopFn func() bool
}

// Stop stops the timer; it reports whether the stop preempted the fire,
// like time.Timer.Stop.
func (t *Timer) Stop() bool {
	if t.StopFn != nil {
		return t.StopFn()
	}
	return false
}

// Ticker mirrors time.Ticker behind the seam.
type Ticker struct {
	C      <-chan time.Time
	StopFn func()
}

// Stop stops the ticker.
func (t *Ticker) Stop() {
	if t.StopFn != nil {
		t.StopFn()
	}
}
