// Package netdiff is a differential equivalence harness for the network
// optimizer (core.Optimize): it runs the same record stream through two
// instantiations of the same network — one built with OptimizeOff (the
// reference: the entity tree exactly as constructed) and one with the full
// rewrite catalogue — and asserts the observable outcomes are equal.
//
// Equality is the S-Net contract, not byte-level trace equality:
//
//   - For general networks the output is compared as a multiset — the
//     nondeterministic combinators (|, !, star) never promised an order,
//     only the records themselves.
//   - For deterministic networks (serial/det-combinator trees) the output
//     is compared as a sequence: ||, !! and deterministic merging promise
//     arrival order, and the optimizer must preserve it.
//   - Both sides must agree on error-ness (a record matching no filter
//     rule must still be reported after fusion) and both instances must
//     reclaim every runtime goroutine (leakcheck).
//
// The harness is wired over every combinator topology the core tests
// exercise plus randomized combinator trees (see Generate); CI runs a
// fixed corpus and a seed budget under -race.
package netdiff

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"snet/internal/core"
	"snet/internal/leakcheck"
	"snet/internal/record"
)

// Config shapes one differential check.
type Config struct {
	// Ordered compares outputs as sequences instead of multisets. Set it
	// only for networks whose output order is promised: trees of serial
	// and deterministic combinators.
	Ordered bool
	// Opts is the base options both instantiations share; the Optimize
	// field is overridden per side.
	Opts core.Options
}

// Check runs inputs() through e twice — optimizer off and on — and fails
// t on any observable difference. inputs is called once per side because
// Run takes ownership of the records.
func Check(t testing.TB, e *core.Entity, cfg Config, inputs func() []*record.Record) {
	t.Helper()
	leakcheck.Check(t)

	run := func(lvl core.OptimizeLevel) ([]string, error, core.OptStats) {
		opts := cfg.Opts
		opts.Optimize = lvl
		n := core.NewNetwork(e, opts)
		outs, err := n.Run(inputs()...)
		keys := make([]string, len(outs))
		for i, r := range outs {
			keys[i] = canon(r)
		}
		return keys, err, n.OptStats()
	}

	ref, refErr, _ := run(core.OptimizeOff)
	opt, optErr, st := run(core.OptimizeFull)

	if (refErr == nil) != (optErr == nil) {
		t.Fatalf("netdiff: error divergence\n  reference: %v\n  optimized: %v\n  optimizer: %+v",
			refErr, optErr, st)
	}
	if !st.Enabled {
		t.Fatalf("netdiff: optimized side reported disabled stats: %+v", st)
	}
	if st.EntitiesAfter > st.EntitiesBefore {
		t.Fatalf("netdiff: optimizer grew the network: %+v", st)
	}
	if len(ref) != len(opt) {
		t.Fatalf("netdiff: output count %d (reference) vs %d (optimized)\n%s\noptimizer: %+v",
			len(ref), len(opt), diff(ref, opt, cfg.Ordered), st)
	}
	if cfg.Ordered {
		for i := range ref {
			if ref[i] != opt[i] {
				t.Fatalf("netdiff: sequence divergence at output %d\n  reference: %s\n  optimized: %s\noptimizer: %+v",
					i, ref[i], opt[i], st)
			}
		}
		return
	}
	if d := diff(ref, opt, false); d != "" {
		t.Fatalf("netdiff: multiset divergence\n%s\noptimizer: %+v", d, st)
	}
}

// canon renders a record as a canonical string: sorted fields WITH their
// values (record.String prints field names only), sorted tags and binding
// tags. Two records with equal canon are indistinguishable to any S-Net
// consumer.
func canon(r *record.Record) string {
	var parts []string
	for _, f := range r.Fields() {
		v, _ := r.Field(f)
		parts = append(parts, fmt.Sprintf("%s=%v", f, v))
	}
	for _, k := range r.Tags() {
		v, _ := r.Tag(k)
		parts = append(parts, fmt.Sprintf("<%s=%d>", k, v))
	}
	for _, k := range r.BTags() {
		v, _ := r.BTag(k)
		parts = append(parts, fmt.Sprintf("<#%s=%d>", k, v))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// diff reports the multiset difference between the two sides, empty when
// equal. For ordered mismatches it still prints the multiset view (the
// most readable summary of what went missing or appeared).
func diff(ref, opt []string, _ bool) string {
	counts := map[string]int{}
	for _, k := range ref {
		counts[k]++
	}
	for _, k := range opt {
		counts[k]--
	}
	var lines []string
	for k, c := range counts {
		switch {
		case c > 0:
			lines = append(lines, fmt.Sprintf("  missing from optimized (x%d): %s", c, k))
		case c < 0:
			lines = append(lines, fmt.Sprintf("  extra in optimized (x%d): %s", -c, k))
		}
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
