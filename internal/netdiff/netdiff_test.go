package netdiff

import (
	"fmt"
	"os"
	"strconv"
	"testing"

	"snet/internal/core"
	"snet/internal/record"
	"snet/internal/rtype"
)

// xrecs builds n records {x=i, <k=i%3>}, tag <a> on even i — the stream
// shape the whole corpus (and the generator) uses.
func xrecs(n int) func() []*record.Record {
	return func() []*record.Record {
		ins := make([]*record.Record, n)
		for i := range ins {
			b := record.Build().F("x", i).T("k", i%3)
			if i%2 == 0 {
				b = b.T("a", 1)
			}
			ins[i] = b.Rec()
		}
		return ins
	}
}

func inc(delta int) *core.Entity {
	sig := core.MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	return core.NewBox(fmt.Sprintf("inc%d", delta), sig, func(c *core.BoxCall) error {
		c.Emit(record.New().SetField("x", c.Field("x").(int)+delta))
		return nil
	})
}

// TestFixedTopologies drives every combinator topology the core test
// suite exercises through the differential harness: the fused, flattened,
// pruned instantiation must be observably equal to the tree as built.
func TestFixedTopologies(t *testing.T) {
	cases := []struct {
		name    string
		ordered bool
		build   func() *core.Entity
	}{
		{"serial-filters", true, func() *core.Entity {
			return core.SerialAll(setTag("p", 1), setTag("q", 2), setTag("r", 3))
		}},
		{"serial-identities", true, func() *core.Entity {
			return core.SerialAll(core.Identity(), core.Identity(), core.Identity())
		}},
		{"identity-box-sandwich", true, func() *core.Entity {
			return core.SerialAll(core.Identity(), inc(1), core.Identity(), inc(10), core.Identity())
		}},
		{"filter-box-filter", true, func() *core.Entity {
			return core.SerialAll(setTag("p", 1), inc(1), setTag("q", 2))
		}},
		{"box-chain", true, func() *core.Entity {
			return core.SerialAll(inc(1), inc(2), inc(3), inc(4))
		}},
		{"fanout-chain", true, func() *core.Entity {
			fan := core.NewFilter("", core.FilterRule{
				Pattern: rtype.NewPattern(rtype.NewVariant()),
				Outputs: []core.FilterOutput{
					{SetTags: []core.TagAssign{constTag("h", 0)}},
					{SetTags: []core.TagAssign{constTag("h", 1)}},
				},
			})
			return core.SerialAll(fan, setTag("p", 1), inc(1))
		}},
		{"nested-choice-ties", false, func() *core.Entity {
			return core.Choice(
				core.Choice(core.Serial(guardX(), setTag("b0", 1)), core.Serial(guardX(), setTag("b1", 1))),
				core.Serial(guardX(), setTag("b2", 1)))
		}},
		{"choice-guarded", false, func() *core.Entity {
			return core.Choice(
				core.Serial(guardXA(), setTag("ba", 1)),
				core.Serial(guardX(), setTag("bx", 1)))
		}},
		{"choice-identity-branch", false, func() *core.Entity {
			return core.Choice(core.Serial(guardXA(), inc(5)), core.Identity())
		}},
		{"choice-dominated-branch", false, func() *core.Entity {
			// After inc, every record matches {x}: the empty-pattern
			// branch is dominated and pruned; routing must not change.
			return core.Serial(inc(1), core.Choice(guardX(), core.Identity()))
		}},
		{"nested-detchoice", true, func() *core.Entity {
			return core.DetChoice(
				core.DetChoice(core.Serial(guardX(), setTag("b0", 1)), core.Serial(guardX(), setTag("b1", 1))),
				core.Serial(guardX(), setTag("b2", 1)))
		}},
		{"detchoice-identity-branch", true, func() *core.Entity {
			return core.DetChoice(core.Serial(guardXA(), inc(5)), core.Identity())
		}},
		{"mixed-det-nondet-choice", false, func() *core.Entity {
			return core.Choice(
				core.DetChoice(core.Serial(guardXA(), setTag("da", 1)), core.Serial(guardX(), setTag("dx", 1))),
				core.Serial(guardX(), setTag("nx", 1)))
		}},
		{"sync-firing", true, func() *core.Entity {
			return core.SerialAll(
				setTag("p", 1),
				core.NewSync(
					rtype.NewPattern(rtype.NewVariant(rtype.T("a"))),
					rtype.NewPattern(rtype.NewVariant(rtype.F("x"))),
				),
				setTag("q", 2))
		}},
		{"sync-then-choice-no-pruning", false, func() *core.Entity {
			// The sync's loose output type must block pruning; dispatch
			// still has unique winners, so results stay equal.
			return core.Serial(
				core.NewSync(
					rtype.NewPattern(rtype.NewVariant(rtype.T("nv1"))),
					rtype.NewPattern(rtype.NewVariant(rtype.T("nv2"))),
				),
				core.Choice(core.Serial(guardXA(), setTag("ba", 1)), core.Serial(guardX(), setTag("bx", 1))))
		}},
		{"star-countdown", false, func() *core.Entity {
			return starWrap(core.Serial(setTag("p", 1), inc(1)), 2)
		}},
		{"feedback-star", false, func() *core.Entity {
			arm := setTag("s", 2)
			dec := core.NewFilter("", core.FilterRule{
				Pattern: rtype.NewPattern(rtype.NewVariant(rtype.T("s"))),
				Outputs: []core.FilterOutput{{SetTags: []core.TagAssign{{
					Name: "s",
					Expr: func(r *record.Record) int { v, _ := r.Tag("s"); return v - 1 },
					Src:  "s-=1",
				}}}},
			})
			exit := rtype.NewPattern(rtype.NewVariant(rtype.T("s"))).
				WithGuard(func(r *record.Record) bool { v, _ := r.Tag("s"); return v <= 0 }, "s<=0")
			return core.Serial(arm, core.FeedbackStar(core.Serial(inc(1), dec), exit))
		}},
		{"split", false, func() *core.Entity {
			return core.Split(core.Serial(setTag("p", 1), inc(1)), "k")
		}},
		{"detsplit", true, func() *core.Entity {
			return core.DetSplit(core.Serial(setTag("p", 1), inc(1)), "k")
		}},
		{"split-of-choice", false, func() *core.Entity {
			return core.Split(core.Choice(
				core.Serial(guardXA(), setTag("ba", 1)),
				core.Serial(guardX(), setTag("bx", 1))), "k")
		}},
		{"deep-mixed", false, func() *core.Entity {
			return core.SerialAll(
				setTag("p", 1),
				core.DetChoice(
					core.Serial(guardXA(), core.SerialAll(inc(1), setTag("da", 1))),
					core.Serial(guardX(), starWrap(inc(2), 1))),
				core.Identity(),
				setTag("q", 2))
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			Check(t, tc.build(), Config{Ordered: tc.ordered}, xrecs(18))
		})
	}
}

// TestErrorEquivalence feeds a record that matches no filter rule: the
// fused instantiation must report the type error exactly like the plain
// one (and neither may leak).
func TestErrorEquivalence(t *testing.T) {
	narrow := core.NewFilter("", core.FilterRule{
		Pattern: rtype.NewPattern(rtype.NewVariant(rtype.F("missing"))),
	})
	e := core.Serial(setTag("p", 1), narrow)
	Check(t, e, Config{}, xrecs(4))
}

// TestDetBatchSizes runs the deterministic corpus across transport batch
// sizes 1–16: sequence preservation under fusion and flattening must not
// depend on batch boundaries (extends the PR 4/5 determinism matrix to
// the optimizer).
func TestDetBatchSizes(t *testing.T) {
	build := func() *core.Entity {
		return core.SerialAll(
			setTag("p", 1),
			core.DetChoice(
				core.DetChoice(core.Serial(guardXA(), inc(1)), core.Serial(guardX(), inc(2))),
				core.Serial(guardX(), setTag("b2", 1))),
			core.DetSplit(core.Serial(inc(3), setTag("q", 2)), "k"))
	}
	for _, bs := range []int{1, 2, 3, 4, 8, 16} {
		t.Run(fmt.Sprintf("batch%d", bs), func(t *testing.T) {
			Check(t, build(), Config{Ordered: true, Opts: core.Options{BatchSize: bs}}, xrecs(24))
		})
	}
}

// TestRandomNetworks drives seeded random combinator trees through the
// harness. The seed count is SNET_NETDIFF_SEEDS (default 32; CI runs a
// larger budget under -race). A failing case is identified by its seed in
// the subtest name — rerun with -run 'TestRandomNetworks/seed42'.
func TestRandomNetworks(t *testing.T) {
	seeds := 32
	if s := os.Getenv("SNET_NETDIFF_SEEDS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("SNET_NETDIFF_SEEDS=%q: %v", s, err)
		}
		seeds = n
	}
	for seed := 0; seed < seeds; seed++ {
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			t.Parallel()
			g := Generate(int64(seed))
			t.Logf("seed %d: %s", seed, g.Desc)
			Check(t, g.Entity, Config{Ordered: g.Ordered}, g.Inputs)
		})
	}
}
