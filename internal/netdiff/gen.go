package netdiff

import (
	"fmt"
	"math/rand"

	"snet/internal/core"
	"snet/internal/record"
	"snet/internal/rtype"
)

// Gen is one generated differential test case: a combinator tree, a
// matching record stream, and whether the tree promises output order
// (det-only grammar) so Check can compare sequences instead of multisets.
type Gen struct {
	Entity  *core.Entity
	Inputs  func() []*record.Record
	Ordered bool
	Desc    string
}

// Generate builds a seeded random combinator tree over the grammar
// serial / choice / det-choice / star / split / det-split / sync /
// filter / box / identity, bounded in depth and width, together with a
// record stream every generated network is total over.
//
// The stream invariant that makes totality checkable by construction:
// every record carries field x and tag <k>, and every generated entity
// preserves both (boxes re-emit x, filters match {} and inherit, split
// dispatches on <k> without consuming it). Tag <a> on half the records is
// the dispatch discriminator: choices guard one branch with {x,<a>}
// (score 2, a-records only) and one with {x} (score 1, everything), so
// dispatch has a unique winner per record and is arrival-order
// independent — required wherever upstream order is nondeterministic.
// Where upstream order IS deterministic the generator also emits
// same-score branch pairs, exercising round-robin tie-breaking, and
// firing synchrocells (their state transitions depend on arrival order).
//
// The generator threads an "arrival order deterministic here" flag
// through the tree: choice, split and star destroy downstream order;
// serial, the det combinators, filters, boxes and synchrocells preserve
// it. A third of the seeds restrict themselves to the order-preserving
// grammar and are checked as sequences (Ordered).
func Generate(seed int64) Gen {
	r := rand.New(rand.NewSource(seed))
	g := &gen{r: r, det: r.Intn(3) == 0}
	width := 2 + r.Intn(2)
	subs := make([]*core.Entity, width)
	ordered := true
	for i := range subs {
		subs[i], ordered = g.node(3, ordered)
	}
	ent := core.SerialAll(subs[0], subs[1:]...)
	nrec := 12 + r.Intn(12)
	return Gen{
		Entity: ent,
		Inputs: func() []*record.Record {
			ins := make([]*record.Record, nrec)
			for i := range ins {
				b := record.Build().F("x", i).T("k", i%3)
				if i%2 == 0 {
					b = b.T("a", 1)
				}
				ins[i] = b.Rec()
			}
			return ins
		},
		Ordered: ordered,
		Desc:    ent.Name(),
	}
}

type gen struct {
	r *rand.Rand
	// det restricts the grammar to order-preserving constructs so the
	// check can assert sequence equality.
	det     bool
	nextTag int
}

func (g *gen) tag() string {
	g.nextTag++
	return fmt.Sprintf("g%d", g.nextTag)
}

// node generates a subtree. ordered says whether record arrival order at
// this point is deterministic; the returned flag says the same about the
// subtree's output.
func (g *gen) node(depth int, ordered bool) (*core.Entity, bool) {
	if depth == 0 {
		return g.leaf(), ordered
	}
	for {
		switch g.r.Intn(8) {
		case 0:
			return g.leaf(), ordered
		case 1, 2: // serial
			width := 2 + g.r.Intn(2)
			subs := make([]*core.Entity, width)
			o := ordered
			for i := range subs {
				subs[i], o = g.node(depth-1, o)
			}
			return core.SerialAll(subs[0], subs[1:]...), o
		case 3: // choice
			if g.det {
				continue
			}
			e, _ := g.choice(depth, ordered, false)
			return e, false
		case 4: // det-choice
			return g.choice(depth, ordered, true)
		case 5: // star
			if g.det {
				continue
			}
			// The star body sees records from different unfolding rounds
			// interleaved, so arrival order inside it is never
			// deterministic regardless of the input order.
			sub, _ := g.node(depth-1, false)
			return starWrap(sub, 1+g.r.Intn(2)), false
		case 6: // split / det-split
			// Each split instance receives its subsequence in arrival
			// order; the det merger restores global order only when the
			// body is itself order-preserving.
			sub, so := g.node(depth-1, ordered)
			if g.det || g.r.Intn(2) == 0 {
				return core.DetSplit(sub, "k"), ordered && so
			}
			return core.Split(sub, "k"), false
		case 7: // synchrocell
			if ordered {
				// Firing sync: the first a-record and the first other
				// record merge — deterministic only under deterministic
				// arrival.
				return core.NewSync(
					rtype.NewPattern(rtype.NewVariant(rtype.T("a"))),
					rtype.NewPattern(rtype.NewVariant(rtype.F("x"))),
				), true
			}
			// Non-firing sync on labels the stream never carries: pure
			// pass-through, but still a looseOut barrier for pruning.
			return core.NewSync(
				rtype.NewPattern(rtype.NewVariant(rtype.T("nv1"))),
				rtype.NewPattern(rtype.NewVariant(rtype.T("nv2"))),
			), ordered
		}
	}
}

func (g *gen) leaf() *core.Entity {
	switch g.r.Intn(4) {
	case 0: // box: x += delta
		delta := 1 + g.r.Intn(5)
		sig := core.MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
		return core.NewBox(fmt.Sprintf("inc%d", delta), sig, func(c *core.BoxCall) error {
			c.Emit(record.New().SetField("x", c.Field("x").(int)+delta))
			return nil
		})
	case 1: // filter: stamp a fresh tag
		return setTag(g.tag(), g.r.Intn(10))
	case 2: // fan-out filter: two outputs distinguished by a fresh tag
		name := g.tag()
		return core.NewFilter("", core.FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant()),
			Outputs: []core.FilterOutput{
				{SetTags: []core.TagAssign{constTag(name, 0)}},
				{SetTags: []core.TagAssign{constTag(name, 1)}},
			},
		})
	default:
		return core.Identity()
	}
}

// choice builds a two-branch (det-)choice. Under deterministic arrival it
// sometimes emits a same-score branch pair (round-robin ties); otherwise
// dispatch uses the {x,<a>} / {x} guard pair, whose per-record winner is
// unique and therefore arrival-order independent. The returned order flag
// holds for the det form only: the deterministic merger restores input
// order only when both branches are internally order-preserving — a
// nondeterministic combinator inside a branch reorders records across the
// hidden sequence, which the merger passes through rather than restores.
func (g *gen) choice(depth int, ordered, det bool) (*core.Entity, bool) {
	sub0, o0 := g.node(depth-1, ordered)
	sub1, o1 := g.node(depth-1, ordered)
	var b0, b1 *core.Entity
	if ordered && g.r.Intn(2) == 0 {
		b0 = core.Serial(guardX(), sub0)
		b1 = core.Serial(guardX(), sub1)
	} else {
		b0 = core.Serial(guardXA(), sub0)
		b1 = core.Serial(guardX(), sub1)
	}
	if det {
		return core.DetChoice(b0, b1), ordered && o0 && o1
	}
	return core.Choice(b0, b1), false
}

// starWrap puts sub under a countdown star: a prefix filter arms tag <s>,
// each pass decrements it, the star exits at zero.
func starWrap(sub *core.Entity, rounds int) *core.Entity {
	arm := core.NewFilter("", core.FilterRule{
		Pattern: rtype.NewPattern(rtype.NewVariant()),
		Outputs: []core.FilterOutput{{SetTags: []core.TagAssign{constTag("s", rounds)}}},
	})
	dec := core.NewFilter("", core.FilterRule{
		Pattern: rtype.NewPattern(rtype.NewVariant(rtype.T("s"))),
		Outputs: []core.FilterOutput{{SetTags: []core.TagAssign{{
			Name: "s",
			Expr: func(r *record.Record) int { v, _ := r.Tag("s"); return v - 1 },
			Src:  "s-=1",
		}}}},
	})
	exit := rtype.NewPattern(rtype.NewVariant(rtype.T("s"))).
		WithGuard(func(r *record.Record) bool { v, _ := r.Tag("s"); return v <= 0 }, "s<=0")
	return core.Serial(arm, core.Star(core.Serial(sub, dec), exit))
}

// setTag builds [ {} -> {<name=v>} ].
func setTag(name string, v int) *core.Entity {
	return core.NewFilter("", core.FilterRule{
		Pattern: rtype.NewPattern(rtype.NewVariant()),
		Outputs: []core.FilterOutput{{SetTags: []core.TagAssign{constTag(name, v)}}},
	})
}

func constTag(name string, v int) core.TagAssign {
	return core.TagAssign{
		Name: name,
		Expr: func(*record.Record) int { return v },
		Src:  fmt.Sprintf("%s=%d", name, v),
	}
}

// guardXA is the a-branch guard [ {x,<a>} -> {x,<a>} ] (score 2).
func guardXA() *core.Entity {
	return core.NewFilter("", core.FilterRule{
		Pattern: rtype.NewPattern(rtype.NewVariant(rtype.F("x"), rtype.T("a"))),
		Outputs: []core.FilterOutput{{CopyFields: []string{"x"}, CopyTags: []string{"a"}}},
	})
}

// guardX is the catch-all guard [ {x} -> {x} ] (score 1).
func guardX() *core.Entity {
	return core.NewFilter("", core.FilterRule{
		Pattern: rtype.NewPattern(rtype.NewVariant(rtype.F("x"))),
		Outputs: []core.FilterOutput{{CopyFields: []string{"x"}}},
	})
}
