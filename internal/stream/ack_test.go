package stream

import "testing"

type captureSink struct {
	calls   int
	batches [][]uint64
}

func (c *captureSink) AckBatch(ids []uint64) {
	c.calls++
	cp := make([]uint64, len(ids))
	copy(cp, ids)
	c.batches = append(c.batches, cp)
}

func TestAckerBatchesPerFlush(t *testing.T) {
	sink := &captureSink{}
	a := NewAcker(sink)
	a.Observe(1)
	a.Observe(0) // untracked: dropped
	a.Observe(2)
	a.Flush()
	a.Observe(3)
	a.Flush()
	a.Flush() // empty: no call
	if sink.calls != 2 {
		t.Fatalf("sink called %d times, want 2", sink.calls)
	}
	if len(sink.batches[0]) != 2 || sink.batches[0][0] != 1 || sink.batches[0][1] != 2 {
		t.Errorf("first batch = %v, want [1 2]", sink.batches[0])
	}
	if len(sink.batches[1]) != 1 || sink.batches[1][0] != 3 {
		t.Errorf("second batch = %v, want [3]", sink.batches[1])
	}
}

func TestAckerNilSink(t *testing.T) {
	a := NewAcker(nil)
	a.Observe(1)
	a.Flush() // must not panic
	if len(a.ids) != 0 {
		t.Fatalf("nil-sink Acker accumulated %d ids", len(a.ids))
	}
}
