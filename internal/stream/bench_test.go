package stream

// Micro-benchmarks of the batched transport against the raw channel
// handoff it replaced. BenchmarkLinkHop/batch=1 approximates the old
// one-record-per-channel-op runtime (plus the link's bookkeeping);
// the larger batch sizes show the amortization the runtime actually runs
// with. CI's bench smoke runs these with -benchmem.

import (
	"fmt"
	"testing"

	"snet/internal/record"
)

// hop pushes n records through a producer→consumer link and waits for the
// consumer to drain them.
func benchHop(b *testing.B, batch int) {
	r := record.New().SetTag("i", 1)
	done := make(chan struct{})
	const n = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := NewLink(Config{Capacity: 64, BatchSize: batch})
		drained := make(chan struct{})
		go func() {
			for {
				if _, ok := l.Recv(done); !ok {
					close(drained)
					return
				}
			}
		}()
		for j := 0; j < n; j++ {
			l.Send(r, done)
		}
		l.Close(done)
		<-drained
	}
	b.ReportMetric(float64(n), "records/op")
}

func BenchmarkLinkHop(b *testing.B) {
	for _, batch := range []int{1, 4, 16, 64} {
		b.Run(fmt.Sprintf("batch=%d", batch), func(b *testing.B) {
			benchHop(b, batch)
		})
	}
}

// BenchmarkRawChannelHop is the pre-batching reference: the same traffic
// over a bare buffered channel with the runtime's old non-blocking
// fast-path send.
func BenchmarkRawChannelHop(b *testing.B) {
	r := record.New().SetTag("i", 1)
	done := make(chan struct{})
	const n = 1024
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch := make(chan *record.Record, 32)
		drained := make(chan struct{})
		go func() {
			for range ch {
			}
			close(drained)
		}()
		for j := 0; j < n; j++ {
			select {
			case ch <- r:
			default:
				select {
				case ch <- r:
				case <-done:
				}
			}
		}
		close(ch)
		<-drained
	}
	b.ReportMetric(float64(n), "records/op")
}

// BenchmarkLinkSendMany measures the box-emission path: bursts delivered
// under one lock acquisition.
func BenchmarkLinkSendMany(b *testing.B) {
	r := record.New().SetTag("i", 1)
	burst := make([]*record.Record, 8)
	for i := range burst {
		burst[i] = r
	}
	done := make(chan struct{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := NewLink(Config{Capacity: 256, BatchSize: 16})
		drained := make(chan struct{})
		go func() {
			for {
				if _, ok := l.Recv(done); !ok {
					close(drained)
					return
				}
			}
		}()
		for j := 0; j < 128; j++ {
			l.SendMany(burst, done)
		}
		l.Close(done)
		<-drained
	}
	b.ReportMetric(float64(128*len(burst)), "records/op")
}
