package stream

// AckSink receives delivery-id acknowledgements in batches. The runtime's
// completion tracker implements it; the outlet pump feeds it through an
// Acker so a whole received Batch costs one sink call instead of one per
// record.
type AckSink interface {
	// AckBatch acknowledges the given delivery ids. The slice is only
	// valid for the duration of the call.
	AckBatch(ids []uint64)
}

// Acker coalesces per-record delivery acknowledgements into batched
// AckSink calls. It is not safe for concurrent use; each pump owns its
// own Acker.
type Acker struct {
	sink AckSink
	ids  []uint64
}

// NewAcker returns an Acker feeding sink. A nil sink yields a no-op Acker.
func NewAcker(sink AckSink) *Acker {
	return &Acker{sink: sink}
}

// Observe records one delivery id for the next Flush; id 0 (untracked) is
// ignored.
func (a *Acker) Observe(id uint64) {
	if a.sink == nil || id == 0 {
		return
	}
	a.ids = append(a.ids, id)
}

// Flush forwards the accumulated ids to the sink in one call and resets
// the accumulator.
func (a *Acker) Flush() {
	if a.sink == nil || len(a.ids) == 0 {
		return
	}
	a.sink.AckBatch(a.ids)
	a.ids = a.ids[:0]
}
