package stream

import (
	"sync"
	"testing"
	"time"

	"snet/internal/record"
)

// mk builds a data record carrying tag <i>=v.
func mk(v int) *record.Record { return record.New().SetTag("i", v) }

// val reads the tag back.
func val(t *testing.T, r *record.Record) int {
	t.Helper()
	v, ok := r.Tag("i")
	if !ok {
		t.Fatalf("record %s lacks tag <i>", r)
	}
	return v
}

func TestFIFOAcrossBatchSizes(t *testing.T) {
	for _, bs := range []int{1, 2, 3, 16, 64} {
		l := NewLink(Config{Capacity: 64, BatchSize: bs})
		done := make(chan struct{})
		const n = 200
		go func() {
			for i := 0; i < n; i++ {
				if !l.Send(mk(i), done) {
					return
				}
			}
			l.Close(done)
		}()
		for i := 0; i < n; i++ {
			r, ok := l.Recv(done)
			if !ok {
				t.Fatalf("batch %d: stream ended at %d/%d", bs, i, n)
			}
			if got := val(t, r); got != i {
				t.Fatalf("batch %d: record %d out of order (got %d)", bs, i, got)
			}
		}
		if _, ok := l.Recv(done); ok {
			t.Fatalf("batch %d: extra record past close", bs)
		}
	}
}

func TestIdleFlushDeliversImmediately(t *testing.T) {
	// A receiver already blocked on an empty link must get the very next
	// record without waiting for fill-up or the (deliberately huge) timer.
	l := NewLink(Config{Capacity: 64, BatchSize: 64, FlushInterval: time.Hour})
	done := make(chan struct{})
	got := make(chan int, 1)
	ready := make(chan struct{})
	go func() {
		close(ready)
		r, ok := l.Recv(done)
		if ok {
			got <- val(t, r)
		}
	}()
	<-ready
	// Let the receiver reach its blocking point; correctness does not
	// depend on this (a steal covers the other interleaving), but the test
	// targets the idle-flush path.
	time.Sleep(10 * time.Millisecond)
	if !l.Send(mk(7), done) {
		t.Fatal("Send refused")
	}
	select {
	case v := <-got:
		if v != 7 {
			t.Fatalf("got %d", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("idle receiver did not get the record promptly; idle flush broken")
	}
	st := l.Stats()
	if st.IdleFlushes+st.Steals == 0 {
		t.Fatalf("expected an idle flush or steal, stats: %+v", st)
	}
	close(done)
}

func TestReceiverStealsPartialBatch(t *testing.T) {
	// Records parked in a partial batch are reachable by a receiver that
	// arrives later, even though no further send will ever flush them.
	l := NewLink(Config{Capacity: 64, BatchSize: 16, FlushInterval: time.Hour})
	done := make(chan struct{})
	for i := 0; i < 3; i++ {
		if !l.Send(mk(i), done) {
			t.Fatal("Send refused")
		}
	}
	for i := 0; i < 3; i++ {
		r, ok := l.Recv(done)
		if !ok || val(t, r) != i {
			t.Fatalf("steal lost record %d (ok=%v)", i, ok)
		}
	}
	if st := l.Stats(); st.Steals == 0 {
		t.Fatalf("expected a steal, stats: %+v", st)
	}
}

func TestTimerFlush(t *testing.T) {
	// A trickling sender whose receiver never goes idle: the linger
	// deadline must push partial batches out. The receiver is kept
	// "non-idle" by never blocking before records exist.
	l := NewLink(Config{Capacity: 256, BatchSize: 64, FlushInterval: time.Microsecond})
	done := make(chan struct{})
	// The timer is probed every fourth append; with a 1µs linger the
	// fourth record's append must flush the batch of four.
	for i := 0; i < 4; i++ {
		if !l.Send(mk(i), done) {
			t.Fatal("Send refused")
		}
		time.Sleep(time.Millisecond)
	}
	if st := l.Stats(); st.TimerFlushes == 0 {
		t.Fatalf("expected a timer flush, stats: %+v", st)
	} else if st.SentBatches == 0 || st.SentRecords != 4 {
		t.Fatalf("stats inconsistent: %+v", st)
	}
	// The flushed batch is in the queue; a receiver drains it without any
	// sender involvement.
	for i := 0; i < 4; i++ {
		r, ok := l.Recv(done)
		if !ok || val(t, r) != i {
			t.Fatalf("timer-flushed record %d lost (ok=%v)", i, ok)
		}
	}
}

func TestCloseFlushesPending(t *testing.T) {
	l := NewLink(Config{Capacity: 64, BatchSize: 16, FlushInterval: -1})
	done := make(chan struct{})
	for i := 0; i < 5; i++ {
		l.Send(mk(i), done)
	}
	l.Close(done)
	for i := 0; i < 5; i++ {
		r, ok := l.Recv(done)
		if !ok || val(t, r) != i {
			t.Fatalf("record %d lost at close (ok=%v)", i, ok)
		}
	}
	if _, ok := l.Recv(done); ok {
		t.Fatal("record past end of stream")
	}
}

func TestDoneUnblocksSenderAndReceiver(t *testing.T) {
	// Capacity 2 with batch 1: the third concurrent send must block, and
	// closing done must release it with false.
	l := NewLink(Config{Capacity: 2, BatchSize: 1})
	done := make(chan struct{})
	res := make(chan bool, 8)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res <- l.Send(mk(i), done)
		}(i)
	}
	time.Sleep(20 * time.Millisecond)
	// A receiver on a second link observes done too.
	empty := NewLink(Config{Capacity: 2})
	recvDone := make(chan bool, 1)
	go func() {
		_, ok := empty.Recv(done)
		recvDone <- ok
	}()
	close(done)
	wg.Wait()
	delivered := 0
	for i := 0; i < 8; i++ {
		if <-res {
			delivered++
		}
	}
	if delivered == 8 {
		t.Fatal("all sends claimed delivery despite a full link and done")
	}
	if ok := <-recvDone; ok {
		t.Fatal("Recv returned a record from an empty link after done")
	}
}

func TestSendBatchOrderedAfterPending(t *testing.T) {
	l := NewLink(Config{Capacity: 64, BatchSize: 16, FlushInterval: time.Hour})
	done := make(chan struct{})
	l.Send(mk(0), done) // parked in pend
	b := &Batch{Recs: []*record.Record{mk(1), mk(2)}}
	if !l.SendBatch(b, done) {
		t.Fatal("SendBatch refused")
	}
	for i := 0; i < 3; i++ {
		r, ok := l.Recv(done)
		if !ok || val(t, r) != i {
			t.Fatalf("record %d out of order after SendBatch (ok=%v)", i, ok)
		}
	}
}

func TestRecvBatchHandsOverRemainder(t *testing.T) {
	l := NewLink(Config{Capacity: 64, BatchSize: 8})
	done := make(chan struct{})
	for i := 0; i < 8; i++ {
		l.Send(mk(i), done)
	}
	if r, ok := l.Recv(done); !ok || val(t, r) != 0 {
		t.Fatal("first record lost")
	}
	b, ok := l.RecvBatch(done)
	if !ok {
		t.Fatal("RecvBatch failed")
	}
	if len(b.Recs) != 7 {
		t.Fatalf("remainder has %d records, want 7", len(b.Recs))
	}
	for i, r := range b.Recs {
		if val(t, r) != i+1 {
			t.Fatalf("remainder record %d = %d", i, val(t, r))
		}
	}
	FreeBatch(b)
}

func TestConcurrentSendersDeliverEverything(t *testing.T) {
	// The second config is a regression pin: a tiny queue with batch 2
	// maximizes contention on the flush slot — unserialized flushes used
	// to let a preempted sender's detached batch be overtaken by a newer
	// one, breaking per-sender FIFO within seconds under -race.
	for _, cfg := range []Config{
		{Capacity: 32, BatchSize: 8, FlushInterval: time.Millisecond},
		{Capacity: 2, BatchSize: 2, FlushInterval: time.Millisecond},
	} {
		testConcurrentSenders(t, cfg)
	}
}

func testConcurrentSenders(t *testing.T, cfg Config) {
	t.Helper()
	l := NewLink(cfg)
	done := make(chan struct{})
	const senders, per = 8, 500
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if !l.Send(mk(s*per+i), done) {
					t.Error("Send refused without done")
					return
				}
			}
		}(s)
	}
	go func() {
		wg.Wait()
		l.Close(done)
	}()
	seen := make(map[int]bool, senders*per)
	lastPerSender := make([]int, senders)
	for s := range lastPerSender {
		lastPerSender[s] = -1
	}
	for {
		r, ok := l.Recv(done)
		if !ok {
			break
		}
		v := val(t, r)
		if seen[v] {
			t.Fatalf("duplicate record %d", v)
		}
		seen[v] = true
		// Per-sender FIFO must hold even under concurrent interleaving.
		s := v / per
		if i := v % per; i <= lastPerSender[s] {
			t.Fatalf("sender %d reordered: %d after %d", s, i, lastPerSender[s])
		}
		lastPerSender[s] = v % per
	}
	if len(seen) != senders*per {
		t.Fatalf("delivered %d records, want %d", len(seen), senders*per)
	}
	st := l.Stats()
	if st.SentRecords != senders*per || st.RecvRecords != senders*per {
		t.Fatalf("stats lost records: %+v", st)
	}
	if st.Depth != 0 {
		t.Fatalf("drained link reports depth %d", st.Depth)
	}
}

func TestSendManySpansBatches(t *testing.T) {
	l := NewLink(Config{Capacity: 256, BatchSize: 4})
	done := make(chan struct{})
	rs := make([]*record.Record, 11)
	for i := range rs {
		rs[i] = mk(i)
	}
	if !l.SendMany(rs, done) {
		t.Fatal("SendMany refused")
	}
	l.Close(done)
	for i := 0; i < 11; i++ {
		r, ok := l.Recv(done)
		if !ok || val(t, r) != i {
			t.Fatalf("record %d lost or reordered (ok=%v)", i, ok)
		}
	}
	if st := l.Stats(); st.FullFlushes < 2 {
		t.Fatalf("SendMany of 11 over batch 4 should flush full batches, stats: %+v", st)
	}
}

func TestSendManyAccumulatesAcrossBursts(t *testing.T) {
	// Regression: SendMany bursts must accumulate toward a full batch
	// while the receiver is busy. A stale (never-stamped) linger
	// timestamp used to fire a spurious timer flush at the end of every
	// burst whose pending count hit a multiple of four, capping batches
	// at burst size and defeating the amortization.
	l := NewLink(Config{Capacity: 256, BatchSize: 16, FlushInterval: time.Hour})
	done := make(chan struct{})
	for burst := 0; burst < 3; burst++ {
		rs := make([]*record.Record, 4)
		for i := range rs {
			rs[i] = mk(burst*4 + i)
		}
		if !l.SendMany(rs, done) {
			t.Fatal("SendMany refused")
		}
	}
	st := l.Stats()
	if st.SentBatches != 0 || st.TimerFlushes != 0 {
		t.Fatalf("12 records under a 16-batch with an hour linger flushed early: %+v", st)
	}
	// A fourth burst crosses the batch size and must flush full.
	rs := make([]*record.Record, 4)
	for i := range rs {
		rs[i] = mk(12 + i)
	}
	if !l.SendMany(rs, done) {
		t.Fatal("SendMany refused")
	}
	if st := l.Stats(); st.FullFlushes != 1 {
		t.Fatalf("16th record did not trigger the fill-up flush: %+v", st)
	}
	for i := 0; i < 16; i++ {
		r, ok := l.Recv(done)
		if !ok || val(t, r) != i {
			t.Fatalf("record %d lost or reordered (ok=%v)", i, ok)
		}
	}
}

func TestSynchronousConfig(t *testing.T) {
	// Capacity <= 0 degrades to unbuffered record-at-a-time handoff.
	cfg := Config{Capacity: -1}.Normalize()
	if cfg.BatchSize != 1 {
		t.Fatalf("synchronous config batch = %d", cfg.BatchSize)
	}
	l := NewLink(Config{Capacity: -1})
	done := make(chan struct{})
	const n = 10
	go func() {
		for i := 0; i < n; i++ {
			l.Send(mk(i), done)
		}
		l.Close(done)
	}()
	for i := 0; i < n; i++ {
		r, ok := l.Recv(done)
		if !ok || val(t, r) != i {
			t.Fatalf("sync link record %d (ok=%v)", i, ok)
		}
	}
}

func TestStatsFlushBreakdown(t *testing.T) {
	l := NewLink(Config{Capacity: 64, BatchSize: 2, FlushInterval: -1})
	done := make(chan struct{})
	for i := 0; i < 6; i++ {
		l.Send(mk(i), done)
	}
	st := l.Stats()
	if st.FullFlushes != 3 || st.SentBatches != 3 || st.SentRecords != 6 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Depth != 6 {
		t.Fatalf("depth %d, want 6 (nothing received yet)", st.Depth)
	}
	close(done)
}
