//snet:hot
// Package stream implements the batched record transport that connects
// S-Net entities. A Link replaces the raw one-record-per-channel-op handoff
// (two scheduler wakeups per hop) with reusable batches of records: senders
// accumulate records into a pooled pending batch and hand whole batches to
// the receiver, so the per-record coordination cost — channel operation,
// goroutine wakeup, cache-line bounce — is amortized over the batch.
//
// # Flush policy
//
// A pending batch is flushed to the receiver when any of these fires:
//
//   - fill-up: the batch has reached the configured batch size;
//   - downstream-idle: the receiver is blocked waiting for records, so
//     holding the batch back would add pure latency for no throughput win;
//   - timer: the oldest record in the batch has lingered past the
//     configured flush interval (a sender that keeps trickling records
//     into a busy link cannot delay them indefinitely);
//   - close: Close flushes whatever is pending before closing the link.
//
// In addition, a receiver that finds the batch queue empty steals the
// sender's pending partial batch directly (under the link lock) before
// blocking. Stealing is what makes batching deadlock-free: a record parked
// in a partial batch whose sender has gone on to block elsewhere — on its
// own input, on a platform CPU slot — is still reachable by the consumer
// that needs it to make progress, with FIFO order preserved. It also means
// latency-sensitive networks are not penalized: an idle consumer never
// waits out a timer for a record that already exists.
//
// # Ownership and lifecycle
//
// Links follow the channel discipline of the runtime they replace: any
// number of senders, one receiver, and Close only after every sender has
// finished. Every potentially blocking operation takes a done channel and
// gives up (returning false) when it closes, which is how Instance.Stop
// unwinds a network mid-batch. Batch slices are pooled and recycled by the
// receiver; records themselves are owned by whoever holds them, exactly as
// on a raw channel.
package stream

import (
	"sync"
	"sync/atomic"
	"time"

	"snet/internal/record"
)

// Default configuration, used by Config.Normalize for zero values.
const (
	// DefaultBatchSize is the records-per-batch ceiling when Config leaves
	// BatchSize zero.
	DefaultBatchSize = 16
	// DefaultFlushInterval bounds how long a record may linger in a
	// partial batch while the receiver is busy, when Config leaves
	// FlushInterval zero.
	DefaultFlushInterval = 200 * time.Microsecond
)

// now is the package's clock seam: the linger-flush deadline reads time
// through it so tests can pin flush-latency decisions to synthetic time.
var now = time.Now //lint:reason default real-time binding of the clock seam

// Config fixes a Link's batching behavior at creation time.
type Config struct {
	// Capacity is the link's backpressure bound in records: once roughly
	// this many records are queued between senders and the receiver,
	// senders block. Zero or negative selects a fully synchronous link
	// (batch size one, unbuffered handoff).
	Capacity int
	// BatchSize is the maximum records per batch. Zero selects
	// DefaultBatchSize; values are clamped to Capacity (batching more
	// than the link may buffer would be meaningless). One disables
	// batching.
	BatchSize int
	// FlushInterval is the timer flush bound: a partial batch whose
	// oldest record has lingered this long is flushed by the next send.
	// Zero selects DefaultFlushInterval; negative disables the timer
	// (fill-up, downstream-idle and close flushes still apply).
	FlushInterval time.Duration
}

// Normalize resolves zero values to defaults and returns the effective
// configuration.
func (c Config) Normalize() Config {
	if c.Capacity <= 0 {
		c.Capacity = 0
		c.BatchSize = 1
	}
	if c.BatchSize == 0 {
		c.BatchSize = DefaultBatchSize
	}
	if c.BatchSize < 1 {
		c.BatchSize = 1
	}
	if c.Capacity > 0 && c.BatchSize > c.Capacity {
		c.BatchSize = c.Capacity
	}
	if c.FlushInterval == 0 {
		c.FlushInterval = DefaultFlushInterval
	}
	if c.FlushInterval < 0 {
		c.FlushInterval = 0
	}
	return c
}

// Batch is one unit of transport: a reusable slice of records. Batches
// travel between links (a relay receives a batch from one link and
// forwards it unchanged into the next), so they are pooled package-wide
// as stable heap objects — recycling one never re-boxes a slice header.
type Batch struct {
	// Recs holds the batch's records in stream order. Consumers iterate
	// it; producers must not touch it after handing the batch over.
	Recs []*record.Record
}

// batchPool recycles Batch containers across all links.
var batchPool = sync.Pool{New: func() any {
	return &Batch{Recs: make([]*record.Record, 0, DefaultBatchSize)}
}}

// Link is one directed stream between entities: multiple senders, a single
// receiver, records delivered in batches. The zero value is not usable;
// construct with NewLink.
type Link struct {
	batch  int           // max records per batch
	linger time.Duration // timer flush bound; 0 = disabled

	ch chan *Batch // the batch queue

	mu          sync.Mutex
	flushCond   sync.Cond // signals the flush slot free (see awaitFlushSlot)
	pend        *Batch    // accumulating batch (nil when empty)
	pendAt      time.Time // start of the pending batch's linger window
	pendStamped bool      // pendAt is set for the current pending batch
	flushing    int       // batches detached but not yet in ch
	rwaiting    bool      // receiver is blocked waiting for a batch
	closed      bool

	// Sender-side counters, guarded by mu (the send path holds it anyway).
	sent        int64 // records accepted by Send/SendMany/SendBatch
	sentBatches int64 // batches delivered to the queue (incl. steals)
	fullFlushes int64
	idleFlushes int64
	timeFlushes int64
	steals      int64

	// Receiver-side state: the single-receiver contract makes these
	// exclusively the receiver's.
	rbatch *Batch
	rpos   int

	recvd     atomic.Int64 // records handed to the receiver (read by Stats)
	exhausted atomic.Bool  // receiver saw the close; counters are final
}

// Exhausted reports whether the receiver has observed end-of-stream: the
// link is closed and fully drained, so its counters are final. Registries
// tracking many short-lived links (star unfoldings, feedback generations)
// use it to fold finished links into an aggregate instead of pinning them
// forever.
func (l *Link) Exhausted() bool { return l.exhausted.Load() }

// NewLink creates a link with the given configuration (normalized first).
func NewLink(cfg Config) *Link {
	l := &Link{}
	l.Init(cfg)
	return l
}

// Init prepares a zero Link with the given configuration (normalized
// first). Callers that create links in bulk — one per entity hop, at
// every network instantiation and star unfolding — allocate them in slabs
// and Init each slot, so a link costs one channel allocation, not two
// heap objects.
func (l *Link) Init(cfg Config) {
	cfg = cfg.Normalize()
	chCap := 0
	if cfg.Capacity > 0 {
		chCap = cfg.Capacity / cfg.BatchSize
		if chCap < 1 {
			chCap = 1
		}
	}
	l.batch = cfg.BatchSize
	l.linger = cfg.FlushInterval
	l.ch = make(chan *Batch, chCap)
	l.flushCond.L = &l.mu
}

// BatchSize returns the link's effective records-per-batch ceiling.
func (l *Link) BatchSize() int { return l.batch }

// getBatch draws an empty batch with at least the link's batch capacity
// from the shared pool.
func (l *Link) getBatch() *Batch {
	b := batchPool.Get().(*Batch)
	if cap(b.Recs) < l.batch {
		b.Recs = make([]*record.Record, 0, l.batch)
	}
	return b
}

// FreeBatch returns a fully consumed batch to the shared pool. Only the
// batch's current owner may free it; record pointers are cleared so the
// pool retains no references.
func FreeBatch(b *Batch) {
	clear(b.Recs)
	b.Recs = b.Recs[:0]
	batchPool.Put(b)
}

// Send delivers one record, blocking when the link is at capacity. It
// reports false — the record was not delivered and the caller must unwind —
// when done closes first.
func (l *Link) Send(r *record.Record, done <-chan struct{}) bool {
	l.mu.Lock()
	if l.pend == nil {
		l.pend = l.getBatch()
	}
	l.pend.Recs = append(l.pend.Recs, r)
	cause := l.flushCause()
	if cause == nil {
		l.sent++
		l.mu.Unlock()
		return true
	}
	ok := l.flushPend(done, cause)
	if ok {
		l.sent++
	}
	l.mu.Unlock()
	return ok
}

// SendMany delivers rs in order under a single lock acquisition, flushing
// full batches as they fill. The slice itself stays the caller's (records
// are appended into the link's own batches), so reusable emission buffers —
// a box's pending outputs — can be handed over without copying ownership.
// False means done closed mid-delivery; a prefix of rs may have been
// delivered.
func (l *Link) SendMany(rs []*record.Record, done <-chan struct{}) bool {
	if len(rs) == 0 {
		return true
	}
	l.mu.Lock()
	for i, r := range rs {
		if l.pend == nil {
			l.pend = l.getBatch()
		}
		l.pend.Recs = append(l.pend.Recs, r)
		if len(l.pend.Recs) >= l.batch {
			if !l.flushPend(done, &l.fullFlushes) {
				l.mu.Unlock()
				return false
			}
			l.sent += int64(i + 1)
			rs = rs[i+1:]
			l.mu.Unlock()
			// Re-enter for the remainder: flushPend dropped the lock
			// mid-send, so the loop state is stale.
			return l.SendMany(rs, done)
		}
	}
	if l.pend != nil && len(l.pend.Recs) > 0 {
		if cause := l.flushCause(); cause != nil {
			if !l.flushPend(done, cause) {
				l.mu.Unlock()
				return false
			}
		}
	}
	l.sent += int64(len(rs))
	l.mu.Unlock()
	return true
}

// SendBatch forwards a whole batch, transferring ownership of the slice to
// the link (the final receiver recycles it). Relays use it to move batches
// between links without re-accumulating them record by record. Any pending
// partial batch is flushed first so order is preserved. False means done
// closed before delivery; ownership of undelivered records stays with the
// caller.
func (l *Link) SendBatch(b *Batch, done <-chan struct{}) bool {
	if len(b.Recs) == 0 {
		FreeBatch(b)
		return true
	}
	// The batch belongs to the receiver the moment deliver hands it over
	// (it may already be drained and recycled by the time deliver
	// returns), so take its size now.
	n := int64(len(b.Recs))
	l.mu.Lock()
	// Order: everything pending must be queued ahead of b, and the flush
	// slot must be free before b goes out. Both waits drop the lock, so
	// re-check until an iteration finds nothing pending with the slot
	// free. The pre-flush is credited to IdleFlushes by convention (see
	// Stats); it exists to preserve order, not because the receiver is
	// known idle.
	for {
		if l.pend != nil && len(l.pend.Recs) > 0 {
			if !l.flushPend(done, &l.idleFlushes) {
				l.mu.Unlock()
				return false
			}
			continue
		}
		l.awaitFlushSlot()
		if l.pend == nil || len(l.pend.Recs) == 0 {
			break
		}
	}
	ok := l.deliver(b, done)
	if ok {
		l.sent += n
		l.sentBatches++
	}
	l.mu.Unlock()
	return ok
}

// flushCause decides whether the pending batch must be flushed now and
// returns the counter to credit, or nil. The linger window opens the
// first time a pending batch survives this check without flushing
// (pendStamped) — so the degenerate regime (every record flushed
// immediately to an idle receiver) never reads the clock — and is
// re-probed only when the pending count is a multiple of four rather
// than on every append: the clock read is a measurable share of the
// per-hop cost, and a quarter-batch of slack on a deliberately coarse
// deadline is invisible (the timer is a staleness bound, not a
// scheduler). Callers hold mu.
func (l *Link) flushCause() *int64 {
	n := len(l.pend.Recs)
	switch {
	case n >= l.batch:
		return &l.fullFlushes
	case l.rwaiting:
		return &l.idleFlushes
	case l.linger > 0:
		if !l.pendStamped {
			l.pendAt = now()
			l.pendStamped = true
		} else if n&3 == 0 && now().Sub(l.pendAt) >= l.linger {
			return &l.timeFlushes
		}
	}
	return nil
}

// awaitFlushSlot blocks — releasing mu while waiting — until no flush is
// in flight. Flushes must be fully serialized per link: a detached batch
// whose push is preempted between dropping mu and the channel send would
// otherwise race a newer batch (possibly carrying the same sender's later
// records, since pend is shared) into the queue ahead of it, breaking
// per-sender FIFO on multi-sender links. The in-flight push always
// completes (its blocking send selects on done) and signals on its way
// out. Callers hold mu.
func (l *Link) awaitFlushSlot() {
	for l.flushing > 0 {
		l.flushCond.Wait()
	}
}

// flushPend waits for the flush slot, then detaches the pending batch and
// delivers it. While waiting, the pend may be taken by the receiver (a
// steal) or by another sender's flush — both mean the records this caller
// wanted flushed are already on their way, so it succeeds vacuously.
// Callers hold mu; the lock is dropped while waiting and during the send,
// so callers must not rely on any other link state across the call.
// Reports false when done closed before delivery.
func (l *Link) flushPend(done <-chan struct{}, cause *int64) bool {
	l.awaitFlushSlot()
	if l.pend == nil || len(l.pend.Recs) == 0 {
		return true
	}
	b := l.pend
	l.pend = nil
	l.pendStamped = false
	ok := l.deliver(b, done)
	if ok {
		*cause++
		l.sentBatches++
	}
	return ok
}

// deliver sends one detached batch into the queue, then hands over any
// pending batch a blocked receiver is waiting for. Callers hold mu with
// the flush slot free; the lock is dropped during each send.
//
// The flushing counter keeps the receiver's steal path honest: while a
// detached batch is in flight the receiver must wait for it (stealing
// newer pending records would reorder the stream). That refusal opens a
// window — the receiver can block after skipping the steal while another
// sender's records sit in pend with no further send coming — so the
// completion of the in-flight flush is responsible for the wakeup: once
// no flush is in flight, a waiting receiver gets whatever accumulated.
func (l *Link) deliver(b *Batch, done <-chan struct{}) bool {
	ok := l.push(b, done)
	for ok && l.flushing == 0 && l.rwaiting && l.pend != nil && len(l.pend.Recs) > 0 {
		nb := l.pend
		l.pend = nil
		l.pendStamped = false
		if ok = l.push(nb, done); ok {
			l.idleFlushes++
			l.sentBatches++
		}
	}
	return ok
}

// push moves one detached batch into the queue, dropping mu for the send,
// and signals the flush slot free again. Callers hold mu with the flush
// slot free (flushing rises to at most one).
func (l *Link) push(b *Batch, done <-chan struct{}) bool {
	l.flushing++
	l.rwaiting = false // the arriving batch will wake the receiver
	l.mu.Unlock()
	ok := true
	select {
	case l.ch <- b:
	default:
		select {
		case l.ch <- b:
		case <-done:
			ok = false
		}
	}
	l.mu.Lock()
	l.flushing--
	// Broadcast, not Signal: several senders can be waiting on the slot
	// while one shared pend holds all their records. The first waiter to
	// run flushes it and the rest find nothing to do — but a single
	// Signal would wake only one, and a waiter that returns vacuously
	// does not push and so would never pass the wakeup on.
	l.flushCond.Broadcast()
	return ok
}

// Close flushes any pending records and closes the link. It must only be
// called once, by the last sender standing — the same discipline as closing
// a Go channel. When done closes before the final flush lands, the pending
// records are dropped (the instance is being aborted) and the link is
// closed anyway so the receiver unblocks.
func (l *Link) Close(done <-chan struct{}) {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return
	}
	if l.pend != nil && len(l.pend.Recs) > 0 {
		l.flushPend(done, &l.idleFlushes)
	}
	l.closed = true
	l.mu.Unlock()
	close(l.ch)
}

// Recv returns the next record, blocking until one is available. ok is
// false when the link is closed and drained, or when done closes first.
// Only the link's single receiver may call it.
func (l *Link) Recv(done <-chan struct{}) (r *record.Record, ok bool) {
	if l.rbatch == nil {
		b, ok := l.nextBatch(done)
		if !ok {
			return nil, false
		}
		l.rbatch, l.rpos = b, 0
	}
	r = l.rbatch.Recs[l.rpos]
	l.rpos++
	if l.rpos == len(l.rbatch.Recs) {
		FreeBatch(l.rbatch)
		l.rbatch = nil
	}
	return r, true
}

// RecvBatch returns the next whole batch, transferring ownership of the
// slice to the caller (forward it with SendBatch or recycle it with
// FreeBatch after draining). Relays use it to move batches across a link
// boundary in one operation. ok is false when the link is closed and
// drained, or when done closes first.
func (l *Link) RecvBatch(done <-chan struct{}) (b *Batch, ok bool) {
	if l.rbatch != nil {
		// A partially consumed batch: hand over the remainder, compacted
		// to the front so the eventual FreeBatch clears everything.
		b = l.rbatch
		n := copy(b.Recs, b.Recs[l.rpos:])
		clear(b.Recs[n:])
		b.Recs = b.Recs[:n]
		l.rbatch = nil
		return b, true
	}
	return l.nextBatch(done)
}

// nextBatch obtains the next batch from the queue, stealing the senders'
// pending partial batch when the queue is empty, and blocking — registered
// as idle, so the next send flushes immediately — when there is nothing to
// steal either.
func (l *Link) nextBatch(done <-chan struct{}) (*Batch, bool) {
	// Prompt-stop poll: a stopped instance must not keep consuming
	// backlog until the next blocking point.
	select {
	case <-done:
		return nil, false
	default:
	}
	// Fast path: a batch is already queued.
	select {
	case b, ok := <-l.ch:
		if !ok {
			l.exhausted.Store(true)
			return nil, false
		}
		l.recvd.Add(int64(len(b.Recs)))
		return b, true
	default:
	}
	l.mu.Lock()
	// Re-check under the lock: a sender may have flushed between the poll
	// above and the lock acquisition, and order requires draining the
	// queue before stealing.
	select {
	case b, ok := <-l.ch:
		l.mu.Unlock()
		if !ok {
			l.exhausted.Store(true)
			return nil, false
		}
		l.recvd.Add(int64(len(b.Recs)))
		return b, true
	default:
	}
	if l.flushing == 0 && l.pend != nil && len(l.pend.Recs) > 0 {
		// Steal: take the partial batch directly. No batch is in flight
		// and the queue is empty, so this preserves FIFO order.
		b := l.pend
		l.pend = nil
		l.pendStamped = false
		l.steals++
		l.sentBatches++
		l.recvd.Add(int64(len(b.Recs)))
		l.mu.Unlock()
		return b, true
	}
	// Nothing to take: block, flagged as idle so the very next send (or
	// the completion of an in-flight flush) delivers without batching
	// delay.
	l.rwaiting = true
	l.mu.Unlock()
	select {
	case b, ok := <-l.ch:
		if !ok {
			l.exhausted.Store(true)
			return nil, false
		}
		l.recvd.Add(int64(len(b.Recs)))
		return b, true
	case <-done:
		return nil, false
	}
}

// Stats is a snapshot of one link's traffic counters.
type Stats struct {
	// SentRecords counts records accepted by the send side; RecvRecords
	// counts records handed to the receiver, credited when the receiver
	// takes a whole batch. Depth is their difference: the records queued
	// in the link — the batch queue plus any pending partial batch, but
	// not the up-to-BatchSize records of a batch the receiver has taken
	// and is still draining.
	SentRecords, RecvRecords, Depth int64
	// SentBatches counts batches delivered to the receiver; the average
	// batch size RecvRecords/SentBatches is the amortization factor the
	// link achieved.
	SentBatches int64
	// Flush-cause breakdown: batches flushed because they filled up,
	// because the receiver was idle, or because the oldest record
	// lingered past the flush interval. Steals counts partial batches
	// the receiver took directly. IdleFlushes is overloaded by
	// convention with the flushes that exist for ordering rather than
	// latency: the close flush and SendBatch's order-preserving
	// pre-flush of the pending batch are credited here whether or not
	// the receiver was idle. Whole batches forwarded by relays via
	// SendBatch count in SentBatches without a flush cause (nothing was
	// pending to flush).
	FullFlushes, IdleFlushes, TimerFlushes, Steals int64
}

// Stats snapshots the link's counters. It is safe to call concurrently
// with traffic; receiver-side counts may lag sender-side counts by the
// batch in flight.
func (l *Link) Stats() Stats {
	l.mu.Lock()
	s := Stats{
		SentRecords:  l.sent,
		SentBatches:  l.sentBatches,
		FullFlushes:  l.fullFlushes,
		IdleFlushes:  l.idleFlushes,
		TimerFlushes: l.timeFlushes,
		Steals:       l.steals,
	}
	l.mu.Unlock()
	s.RecvRecords = l.recvd.Load()
	s.Depth = s.SentRecords - s.RecvRecords
	if s.Depth < 0 {
		s.Depth = 0
	}
	return s
}
