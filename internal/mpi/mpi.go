// Package mpi implements a message-passing substrate in the style of MPI
// point-to-point communication: a fixed-size communicator of ranks with
// tagged, source-addressed Send/Recv, wildcard receives, probes and a
// barrier. It underpins both the reimplementation of the paper's "original
// MPI implementation" baseline (internal/mpiray) and the transfer
// accounting of the Distributed S-Net platform.
//
// Semantics follow MPI's standard mode with buffered sends: Send enqueues
// without blocking (unbounded mailbox), Recv blocks until a matching
// message arrives, and messages between the same (source, dest, tag) triple
// are non-overtaking, as the MPI standard requires.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Wildcards for Recv and Probe.
const (
	// AnySource matches messages from every rank.
	AnySource = -1
	// AnyTag matches every tag.
	AnyTag = -1
)

// Message is a received message envelope.
type Message struct {
	Source int
	Tag    int
	Data   any
	Bytes  int
}

// ByteSizer lets payloads declare their transfer size for the traffic
// accounting.
type ByteSizer interface {
	ByteSize() int
}

// Stats aggregates communicator traffic.
type Stats struct {
	Messages int64
	Bytes    int64
}

// Comm is a communicator over a fixed set of ranks.
type Comm struct {
	size      int
	mailboxes []*mailbox
	closed    atomic.Bool
	stats     Stats

	barrierMu   sync.Mutex
	barrierCond *sync.Cond
	barrierCnt  int
	barrierGen  int
}

type mailbox struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []Message
	closed bool
}

// NewComm creates a communicator with the given number of ranks.
func NewComm(size int) *Comm {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: communicator size %d", size))
	}
	c := &Comm{size: size, mailboxes: make([]*mailbox, size)}
	for i := range c.mailboxes {
		mb := &mailbox{}
		mb.cond = sync.NewCond(&mb.mu)
		c.mailboxes[i] = mb
	}
	c.barrierCond = sync.NewCond(&c.barrierMu)
	return c
}

// Size returns the number of ranks.
func (c *Comm) Size() int { return c.size }

// Stats returns a snapshot of the traffic counters.
func (c *Comm) Stats() Stats {
	return Stats{
		Messages: atomic.LoadInt64(&c.stats.Messages),
		Bytes:    atomic.LoadInt64(&c.stats.Bytes),
	}
}

// Close shuts the communicator down: all blocked and future Recv calls
// return ok=false. Close is idempotent.
func (c *Comm) Close() {
	if c.closed.Swap(true) {
		return
	}
	for _, mb := range c.mailboxes {
		mb.mu.Lock()
		mb.closed = true
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// PayloadBytes estimates a payload's wire size: ByteSizer payloads declare
// their own size, byte slices and strings count their length, numbers count
// eight bytes, and opaque values fall back to a fixed estimate. The
// Distributed S-Net platform (internal/dist) sizes record fields with the
// same conventions, so the MPI baseline and the S-Net cluster account
// traffic identically.
func PayloadBytes(data any) int {
	switch d := data.(type) {
	case nil:
		return 0
	case []byte:
		return len(d)
	case ByteSizer:
		return d.ByteSize()
	case int, int64, float64:
		return 8
	case string:
		return len(d)
	default:
		return 64 // opaque struct estimate
	}
}

// Send delivers data to rank dst with the given tag. It never blocks
// (buffered standard mode). Sending on a closed communicator is a no-op.
// Send panics on an out-of-range destination, mirroring an MPI abort.
func (c *Comm) Send(src, dst, tag int, data any) {
	if dst < 0 || dst >= c.size {
		panic(fmt.Sprintf("mpi: send to rank %d of %d", dst, c.size))
	}
	if c.closed.Load() {
		return
	}
	n := PayloadBytes(data)
	atomic.AddInt64(&c.stats.Messages, 1)
	atomic.AddInt64(&c.stats.Bytes, int64(n))
	mb := c.mailboxes[dst]
	mb.mu.Lock()
	mb.queue = append(mb.queue, Message{Source: src, Tag: tag, Data: data, Bytes: n})
	mb.cond.Broadcast()
	mb.mu.Unlock()
}

func match(m Message, src, tag int) bool {
	return (src == AnySource || m.Source == src) && (tag == AnyTag || m.Tag == tag)
}

// Recv blocks until a message matching (src, tag) arrives at rank `rank`
// and removes it from the mailbox. It returns ok=false when the
// communicator is closed and no matching message is queued. Matching
// respects arrival order, so point-to-point messages do not overtake.
func (c *Comm) Recv(rank, src, tag int) (Message, bool) {
	mb := c.mailboxes[rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.queue {
			if match(m, src, tag) {
				mb.queue = append(mb.queue[:i], mb.queue[i+1:]...)
				return m, true
			}
		}
		if mb.closed {
			return Message{}, false
		}
		mb.cond.Wait()
	}
}

// Probe reports without blocking whether a message matching (src, tag) is
// queued at rank `rank`, returning a copy of its envelope.
func (c *Comm) Probe(rank, src, tag int) (Message, bool) {
	mb := c.mailboxes[rank]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for _, m := range mb.queue {
		if match(m, src, tag) {
			return m, true
		}
	}
	return Message{}, false
}

// Barrier blocks until all ranks have entered it. Every rank must call
// Barrier exactly once per synchronization round.
func (c *Comm) Barrier() {
	c.barrierMu.Lock()
	gen := c.barrierGen
	c.barrierCnt++
	if c.barrierCnt == c.size {
		c.barrierCnt = 0
		c.barrierGen++
		c.barrierCond.Broadcast()
		c.barrierMu.Unlock()
		return
	}
	for gen == c.barrierGen {
		c.barrierCond.Wait()
	}
	c.barrierMu.Unlock()
}

// Proc is a rank-bound view of a communicator, the handle a "process"
// closure works with.
type Proc struct {
	comm *Comm
	rank int
}

// Rank returns a Proc bound to the given rank.
func (c *Comm) Rank(r int) *Proc {
	if r < 0 || r >= c.size {
		panic(fmt.Sprintf("mpi: rank %d of %d", r, c.size))
	}
	return &Proc{comm: c, rank: r}
}

// RankID returns the process's rank number.
func (p *Proc) RankID() int { return p.rank }

// Size returns the communicator size.
func (p *Proc) Size() int { return p.comm.size }

// Send sends data to dst with tag.
func (p *Proc) Send(dst, tag int, data any) { p.comm.Send(p.rank, dst, tag, data) }

// Recv receives a matching message.
func (p *Proc) Recv(src, tag int) (Message, bool) { return p.comm.Recv(p.rank, src, tag) }

// Probe checks for a matching message without blocking.
func (p *Proc) Probe(src, tag int) (Message, bool) { return p.comm.Probe(p.rank, src, tag) }

// Barrier enters the communicator-wide barrier.
func (p *Proc) Barrier() { p.comm.Barrier() }

// Run spawns fn as a goroutine per rank and waits for all to finish — the
// moral equivalent of mpirun for in-process processes.
func Run(size int, fn func(p *Proc)) *Comm {
	c := NewComm(size)
	var wg sync.WaitGroup
	wg.Add(size)
	for r := 0; r < size; r++ {
		go func(r int) {
			defer wg.Done()
			fn(c.Rank(r))
		}(r)
	}
	wg.Wait()
	return c
}
