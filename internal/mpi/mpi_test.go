package mpi

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSendRecvBasic(t *testing.T) {
	c := NewComm(2)
	done := make(chan Message, 1)
	go func() {
		m, ok := c.Recv(1, 0, 7)
		if !ok {
			t.Error("Recv failed")
		}
		done <- m
	}()
	c.Send(0, 1, 7, "hello")
	m := <-done
	if m.Source != 0 || m.Tag != 7 || m.Data != "hello" {
		t.Fatalf("m = %+v", m)
	}
	if m.Bytes != 5 {
		t.Fatalf("Bytes = %d", m.Bytes)
	}
}

func TestRecvWildcards(t *testing.T) {
	c := NewComm(3)
	c.Send(2, 0, 9, 42)
	m, ok := c.Recv(0, AnySource, AnyTag)
	if !ok || m.Source != 2 || m.Tag != 9 {
		t.Fatalf("m = %+v ok=%v", m, ok)
	}
}

func TestRecvTagFiltering(t *testing.T) {
	c := NewComm(2)
	c.Send(0, 1, 1, "first")
	c.Send(0, 1, 2, "second")
	m, ok := c.Recv(1, 0, 2)
	if !ok || m.Data != "second" {
		t.Fatalf("tag filter broken: %+v", m)
	}
	m, ok = c.Recv(1, 0, 1)
	if !ok || m.Data != "first" {
		t.Fatalf("remaining message lost: %+v", m)
	}
}

func TestNonOvertaking(t *testing.T) {
	// Messages with the same src/dst/tag must arrive in send order.
	c := NewComm(2)
	for i := 0; i < 100; i++ {
		c.Send(0, 1, 5, i)
	}
	for i := 0; i < 100; i++ {
		m, ok := c.Recv(1, 0, 5)
		if !ok || m.Data != i {
			t.Fatalf("message %d out of order: %+v", i, m)
		}
	}
}

func TestRecvBlocksUntilSend(t *testing.T) {
	c := NewComm(2)
	var got atomic.Bool
	go func() {
		c.Recv(1, AnySource, AnyTag)
		got.Store(true)
	}()
	time.Sleep(10 * time.Millisecond)
	if got.Load() {
		t.Fatal("Recv returned before Send")
	}
	c.Send(0, 1, 0, nil)
	deadline := time.After(time.Second)
	for !got.Load() {
		select {
		case <-deadline:
			t.Fatal("Recv never returned")
		default:
			time.Sleep(time.Millisecond)
		}
	}
}

func TestProbe(t *testing.T) {
	c := NewComm(2)
	if _, ok := c.Probe(1, AnySource, AnyTag); ok {
		t.Fatal("Probe on empty mailbox")
	}
	c.Send(0, 1, 3, "x")
	m, ok := c.Probe(1, 0, 3)
	if !ok || m.Data != "x" {
		t.Fatal("Probe missed message")
	}
	// Probe must not consume.
	if _, ok := c.Recv(1, 0, 3); !ok {
		t.Fatal("Probe consumed the message")
	}
}

func TestCloseUnblocksRecv(t *testing.T) {
	c := NewComm(1)
	done := make(chan bool, 1)
	go func() {
		_, ok := c.Recv(0, AnySource, AnyTag)
		done <- ok
	}()
	time.Sleep(5 * time.Millisecond)
	c.Close()
	select {
	case ok := <-done:
		if ok {
			t.Fatal("Recv on closed comm returned ok")
		}
	case <-time.After(time.Second):
		t.Fatal("Close did not unblock Recv")
	}
	// Close is idempotent.
	c.Close()
}

func TestRecvDrainsQueueAfterClose(t *testing.T) {
	c := NewComm(2)
	c.Send(0, 1, 1, "queued")
	c.Close()
	if _, ok := c.Recv(1, 0, 1); !ok {
		t.Fatal("queued message lost on close")
	}
	if _, ok := c.Recv(1, 0, 1); ok {
		t.Fatal("Recv after drain should fail")
	}
}

func TestSendAfterCloseDropped(t *testing.T) {
	c := NewComm(2)
	c.Close()
	c.Send(0, 1, 1, "late")
	if _, ok := c.Probe(1, AnySource, AnyTag); ok {
		t.Fatal("send after close delivered")
	}
}

func TestBarrier(t *testing.T) {
	const n = 8
	c := NewComm(n)
	var phase [n]int32
	var wg sync.WaitGroup
	wg.Add(n)
	for r := 0; r < n; r++ {
		go func(r int) {
			defer wg.Done()
			for round := 0; round < 5; round++ {
				atomic.StoreInt32(&phase[r], int32(round))
				c.Barrier()
				// after the barrier, nobody may be in an earlier round
				for i := 0; i < n; i++ {
					if atomic.LoadInt32(&phase[i]) < int32(round) {
						t.Errorf("rank %d lagging at round %d", i, round)
					}
				}
				c.Barrier()
			}
		}(r)
	}
	wg.Wait()
}

func TestStatsCounting(t *testing.T) {
	c := NewComm(2)
	c.Send(0, 1, 0, []byte{1, 2, 3, 4})
	c.Send(0, 1, 0, "ab")
	s := c.Stats()
	if s.Messages != 2 || s.Bytes != 6 {
		t.Fatalf("stats = %+v", s)
	}
}

type sized struct{ n int }

func (s sized) ByteSize() int { return s.n }

func TestPayloadByteSizer(t *testing.T) {
	c := NewComm(2)
	c.Send(0, 1, 0, sized{n: 1000})
	c.Send(0, 1, 0, nil)
	c.Send(0, 1, 0, 3.14)
	c.Send(0, 1, 0, struct{ X int }{1})
	if s := c.Stats(); s.Bytes != 1000+0+8+64 {
		t.Fatalf("bytes = %d", s.Bytes)
	}
}

func TestRunSpawnsAllRanks(t *testing.T) {
	var count int64
	comm := Run(16, func(p *Proc) {
		atomic.AddInt64(&count, 1)
		if p.Size() != 16 {
			t.Error("Size wrong")
		}
		p.Barrier()
	})
	if count != 16 {
		t.Fatalf("ran %d ranks", count)
	}
	if comm.Size() != 16 {
		t.Fatal("comm size wrong")
	}
}

func TestRunRingPass(t *testing.T) {
	// Classic ring: each rank passes an incrementing token around.
	const n = 6
	Run(n, func(p *Proc) {
		r := p.RankID()
		if r == 0 {
			p.Send(1, 0, 1)
			m, ok := p.Recv(n-1, 0)
			if !ok || m.Data != n {
				t.Errorf("ring token = %v", m.Data)
			}
			return
		}
		m, ok := p.Recv(r-1, 0)
		if !ok {
			t.Error("ring recv failed")
			return
		}
		p.Send((r+1)%n, 0, m.Data.(int)+1)
	})
}

func TestPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("NewComm(0)", func() { NewComm(0) })
	c := NewComm(2)
	mustPanic("bad dst", func() { c.Send(0, 5, 0, nil) })
	mustPanic("bad rank", func() { c.Rank(2) })
}

func TestProcAccessors(t *testing.T) {
	c := NewComm(3)
	p := c.Rank(2)
	if p.RankID() != 2 || p.Size() != 3 {
		t.Fatal("accessors wrong")
	}
	p.Send(0, 1, "via proc")
	m, ok := c.Rank(0).Recv(2, 1)
	if !ok || m.Data != "via proc" {
		t.Fatal("proc send/recv failed")
	}
	if _, ok := c.Rank(0).Probe(2, 1); ok {
		t.Fatal("message not consumed")
	}
}
