package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func vecAlmost(a, b Vec3) bool {
	return almost(a.X, b.X) && almost(a.Y, b.Y) && almost(a.Z, b.Z)
}

func TestVecArithmetic(t *testing.T) {
	a, b := V(1, 2, 3), V(4, 5, 6)
	if a.Add(b) != V(5, 7, 9) {
		t.Fatal("Add")
	}
	if b.Sub(a) != V(3, 3, 3) {
		t.Fatal("Sub")
	}
	if a.Mul(b) != V(4, 10, 18) {
		t.Fatal("Mul")
	}
	if a.Scale(2) != V(2, 4, 6) {
		t.Fatal("Scale")
	}
	if a.Neg() != V(-1, -2, -3) {
		t.Fatal("Neg")
	}
	if a.Dot(b) != 32 {
		t.Fatal("Dot")
	}
	if a.Cross(b) != V(-3, 6, -3) {
		t.Fatal("Cross")
	}
}

func TestVecLenNormalize(t *testing.T) {
	v := V(3, 4, 0)
	if !almost(v.Len(), 5) || !almost(v.Len2(), 25) {
		t.Fatal("Len")
	}
	n := v.Normalize()
	if !almost(n.Len(), 1) {
		t.Fatal("Normalize length")
	}
	if !vecAlmost(V(0, 0, 0).Normalize(), V(0, 0, 0)) {
		t.Fatal("zero normalize")
	}
}

func TestReflect(t *testing.T) {
	// 45° incidence on the XZ plane.
	in := V(1, -1, 0).Normalize()
	out := in.Reflect(V(0, 1, 0))
	if !vecAlmost(out, V(1, 1, 0).Normalize()) {
		t.Fatalf("Reflect = %v", out)
	}
}

func TestRefractStraightThrough(t *testing.T) {
	// Normal incidence: direction unchanged regardless of eta.
	in := V(0, -1, 0)
	out, ok := in.Refract(V(0, 1, 0), 1.5)
	if !ok || !vecAlmost(out, V(0, -1, 0)) {
		t.Fatalf("Refract = %v ok=%v", out, ok)
	}
}

func TestRefractTotalInternalReflection(t *testing.T) {
	// Shallow angle from dense to thin medium: TIR.
	in := V(1, -0.1, 0).Normalize()
	if _, ok := in.Refract(V(0, 1, 0), 1.8); ok {
		t.Fatal("expected total internal reflection")
	}
}

func TestRefractSnell(t *testing.T) {
	// 45° into glass (eta = 1/1.5): check Snell's law.
	in := V(1, -1, 0).Normalize()
	n := V(0, 1, 0)
	out, ok := in.Refract(n, 1/1.5)
	if !ok {
		t.Fatal("unexpected TIR")
	}
	sinI := math.Sqrt(1 - math.Pow(-in.Dot(n), 2))
	sinT := math.Sqrt(1 - math.Pow(-out.Dot(n.Neg()), 2))
	if !almost(sinI/sinT, 1.5) {
		t.Fatalf("Snell violated: sinI/sinT = %g", sinI/sinT)
	}
}

func TestLerpMinMaxClamp(t *testing.T) {
	if !vecAlmost(V(0, 0, 0).Lerp(V(2, 4, 6), 0.5), V(1, 2, 3)) {
		t.Fatal("Lerp")
	}
	if V(1, 5, 3).Min(V(2, 4, 6)) != V(1, 4, 3) {
		t.Fatal("Min")
	}
	if V(1, 5, 3).Max(V(2, 4, 6)) != V(2, 5, 6) {
		t.Fatal("Max")
	}
	if V(-1, 0.5, 2).Clamp01() != V(0, 0.5, 1) {
		t.Fatal("Clamp01")
	}
	if V(1, 5, 3).MaxComponent() != 5 {
		t.Fatal("MaxComponent")
	}
}

func TestRayAt(t *testing.T) {
	r := NewRay(V(1, 0, 0), V(0, 2, 0))
	if !vecAlmost(r.Dir, V(0, 1, 0)) {
		t.Fatal("NewRay must normalize")
	}
	if !vecAlmost(r.At(3), V(1, 3, 0)) {
		t.Fatal("At")
	}
}

func TestAABBUnionContains(t *testing.T) {
	b := EmptyAABB().Extend(V(0, 0, 0)).Extend(V(1, 2, 3))
	if !b.Contains(V(0.5, 1, 1.5)) || b.Contains(V(2, 0, 0)) {
		t.Fatal("Contains")
	}
	u := b.Union(AABB{Min: V(-1, 0, 0), Max: V(0, 1, 1)})
	if u.Min != V(-1, 0, 0) || u.Max != V(1, 2, 3) {
		t.Fatalf("Union = %v", u)
	}
	if !u.ContainsBox(b) {
		t.Fatal("ContainsBox")
	}
	if got := b.Center(); !vecAlmost(got, V(0.5, 1, 1.5)) {
		t.Fatal("Center")
	}
}

func TestAABBSurfaceArea(t *testing.T) {
	b := AABB{Min: V(0, 0, 0), Max: V(1, 2, 3)}
	if !almost(b.SurfaceArea(), 2*(2+6+3)) {
		t.Fatalf("SA = %g", b.SurfaceArea())
	}
	if EmptyAABB().SurfaceArea() != 0 {
		t.Fatal("empty box SA must be 0")
	}
}

func TestAABBHit(t *testing.T) {
	b := AABB{Min: V(-1, -1, -1), Max: V(1, 1, 1)}
	if !b.Hit(NewRay(V(0, 0, -5), V(0, 0, 1)), 0, math.Inf(1)) {
		t.Fatal("ray through center must hit")
	}
	if b.Hit(NewRay(V(0, 0, -5), V(0, 0, -1)), 0, math.Inf(1)) {
		t.Fatal("ray away from box must miss")
	}
	if b.Hit(NewRay(V(5, 5, -5), V(0, 0, 1)), 0, math.Inf(1)) {
		t.Fatal("offset ray must miss")
	}
	// tMax clipping: box is beyond the allowed range
	if b.Hit(NewRay(V(0, 0, -5), V(0, 0, 1)), 0, 1) {
		t.Fatal("hit beyond tMax must be rejected")
	}
	// ray starting inside
	if !b.Hit(NewRay(V(0, 0, 0), V(1, 0, 0)), 0, math.Inf(1)) {
		t.Fatal("ray from inside must hit")
	}
}

func randomVec(rng *rand.Rand) Vec3 {
	return V(rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*20-10)
}

func TestPropReflectPreservesLength(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomVec(rng)
		n := randomVec(rng).Normalize()
		if n.Len() == 0 {
			return true
		}
		return almost(v.Reflect(n).Len(), v.Len())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropUnionContainsBoth(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := EmptyAABB().Extend(randomVec(rng)).Extend(randomVec(rng))
		b := EmptyAABB().Extend(randomVec(rng)).Extend(randomVec(rng))
		u := a.Union(b)
		return u.ContainsBox(a) && u.ContainsBox(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropSurfaceAreaMonotoneUnderUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := EmptyAABB().Extend(randomVec(rng)).Extend(randomVec(rng))
		b := EmptyAABB().Extend(randomVec(rng)).Extend(randomVec(rng))
		u := a.Union(b)
		return u.SurfaceArea() >= a.SurfaceArea()-1e-12 &&
			u.SurfaceArea() >= b.SurfaceArea()-1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropDotCrossOrthogonal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a, b := randomVec(rng), randomVec(rng)
		c := a.Cross(b)
		return math.Abs(c.Dot(a)) < 1e-6 && math.Abs(c.Dot(b)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
