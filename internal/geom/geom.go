// Package geom provides the vector and geometric primitives underneath the
// ray tracer: 3-vectors, rays and axis-aligned bounding boxes.
package geom

import (
	"fmt"
	"math"
)

// Vec3 is a 3-component vector of float64.
type Vec3 struct {
	X, Y, Z float64
}

// V constructs a vector.
func V(x, y, z float64) Vec3 { return Vec3{X: x, Y: y, Z: z} }

// Add returns v + w.
func (v Vec3) Add(w Vec3) Vec3 { return Vec3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v Vec3) Sub(w Vec3) Vec3 { return Vec3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Mul returns the component-wise product v ⊙ w.
func (v Vec3) Mul(w Vec3) Vec3 { return Vec3{v.X * w.X, v.Y * w.Y, v.Z * w.Z} }

// Scale returns s·v.
func (v Vec3) Scale(s float64) Vec3 { return Vec3{v.X * s, v.Y * s, v.Z * s} }

// Neg returns -v.
func (v Vec3) Neg() Vec3 { return Vec3{-v.X, -v.Y, -v.Z} }

// Dot returns the dot product v·w.
func (v Vec3) Dot(w Vec3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Cross returns the cross product v × w.
func (v Vec3) Cross(w Vec3) Vec3 {
	return Vec3{
		v.Y*w.Z - v.Z*w.Y,
		v.Z*w.X - v.X*w.Z,
		v.X*w.Y - v.Y*w.X,
	}
}

// Len returns |v|.
func (v Vec3) Len() float64 { return math.Sqrt(v.Dot(v)) }

// Len2 returns |v|².
func (v Vec3) Len2() float64 { return v.Dot(v) }

// Normalize returns v/|v|; the zero vector normalizes to itself.
func (v Vec3) Normalize() Vec3 {
	l := v.Len()
	if l == 0 {
		return v
	}
	return v.Scale(1 / l)
}

// Reflect returns the reflection of v about the unit normal n.
func (v Vec3) Reflect(n Vec3) Vec3 {
	return v.Sub(n.Scale(2 * v.Dot(n)))
}

// Refract returns the refraction of unit vector v entering a surface with
// unit normal n and relative refractive index ratio eta (n1/n2). The second
// result is false on total internal reflection.
func (v Vec3) Refract(n Vec3, eta float64) (Vec3, bool) {
	cosI := -v.Dot(n)
	sin2T := eta * eta * (1 - cosI*cosI)
	if sin2T > 1 {
		return Vec3{}, false
	}
	cosT := math.Sqrt(1 - sin2T)
	return v.Scale(eta).Add(n.Scale(eta*cosI - cosT)), true
}

// Lerp returns v + t·(w − v).
func (v Vec3) Lerp(w Vec3, t float64) Vec3 {
	return v.Add(w.Sub(v).Scale(t))
}

// Min returns the component-wise minimum.
func (v Vec3) Min(w Vec3) Vec3 {
	return Vec3{math.Min(v.X, w.X), math.Min(v.Y, w.Y), math.Min(v.Z, w.Z)}
}

// Max returns the component-wise maximum.
func (v Vec3) Max(w Vec3) Vec3 {
	return Vec3{math.Max(v.X, w.X), math.Max(v.Y, w.Y), math.Max(v.Z, w.Z)}
}

// MaxComponent returns the largest component.
func (v Vec3) MaxComponent() float64 { return math.Max(v.X, math.Max(v.Y, v.Z)) }

// Clamp01 clamps every component into [0, 1].
func (v Vec3) Clamp01() Vec3 {
	c := func(x float64) float64 {
		if x < 0 {
			return 0
		}
		if x > 1 {
			return 1
		}
		return x
	}
	return Vec3{c(v.X), c(v.Y), c(v.Z)}
}

// String renders the vector.
func (v Vec3) String() string { return fmt.Sprintf("(%g, %g, %g)", v.X, v.Y, v.Z) }

// Ray is a half-line: origin plus direction (not necessarily unit-length;
// intersection code normalizes where required).
type Ray struct {
	Origin, Dir Vec3
}

// NewRay builds a ray with a normalized direction.
func NewRay(origin, dir Vec3) Ray {
	return Ray{Origin: origin, Dir: dir.Normalize()}
}

// At returns the point origin + t·dir.
func (r Ray) At(t float64) Vec3 { return r.Origin.Add(r.Dir.Scale(t)) }

// AABB is an axis-aligned bounding box.
type AABB struct {
	Min, Max Vec3
}

// EmptyAABB returns the inverted box that unions as the identity.
func EmptyAABB() AABB {
	inf := math.Inf(1)
	return AABB{Min: V(inf, inf, inf), Max: V(-inf, -inf, -inf)}
}

// Union returns the smallest box containing both operands.
func (b AABB) Union(o AABB) AABB {
	return AABB{Min: b.Min.Min(o.Min), Max: b.Max.Max(o.Max)}
}

// Extend returns the smallest box containing b and the point p.
func (b AABB) Extend(p Vec3) AABB {
	return AABB{Min: b.Min.Min(p), Max: b.Max.Max(p)}
}

// Contains reports whether p lies inside the (closed) box.
func (b AABB) Contains(p Vec3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// ContainsBox reports whether o lies entirely inside b.
func (b AABB) ContainsBox(o AABB) bool {
	return b.Contains(o.Min) && b.Contains(o.Max)
}

// Center returns the box's center point.
func (b AABB) Center() Vec3 { return b.Min.Add(b.Max).Scale(0.5) }

// SurfaceArea returns the total surface area, the cost measure of the
// Goldsmith–Salmon BVH construction. An empty (inverted) box has area 0.
func (b AABB) SurfaceArea() float64 {
	d := b.Max.Sub(b.Min)
	if d.X < 0 || d.Y < 0 || d.Z < 0 {
		return 0
	}
	return 2 * (d.X*d.Y + d.Y*d.Z + d.Z*d.X)
}

// Hit reports whether the ray intersects the box within (tMin, tMax), using
// the slab method.
func (b AABB) Hit(r Ray, tMin, tMax float64) bool {
	for axis := 0; axis < 3; axis++ {
		var lo, hi, o, d float64
		switch axis {
		case 0:
			lo, hi, o, d = b.Min.X, b.Max.X, r.Origin.X, r.Dir.X
		case 1:
			lo, hi, o, d = b.Min.Y, b.Max.Y, r.Origin.Y, r.Dir.Y
		default:
			lo, hi, o, d = b.Min.Z, b.Max.Z, r.Origin.Z, r.Dir.Z
		}
		inv := 1 / d
		t0 := (lo - o) * inv
		t1 := (hi - o) * inv
		if inv < 0 {
			t0, t1 = t1, t0
		}
		if t0 > tMin {
			tMin = t0
		}
		if t1 < tMax {
			tMax = t1
		}
		if tMax < tMin {
			return false
		}
	}
	return true
}
