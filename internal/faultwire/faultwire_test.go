package faultwire

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"

	"snet/internal/leakcheck"
)

// pipe returns a wrapped end and a raw peer end.
func pipe() (*Conn, net.Conn) {
	a, b := net.Pipe()
	return Wrap(a), b
}

func TestPassDelivers(t *testing.T) {
	leakcheck.Check(t)
	c, peer := pipe()
	defer c.Close()
	defer peer.Close()
	go c.Write([]byte("hello"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(peer, buf); err != nil || string(buf) != "hello" {
		t.Fatalf("got %q, %v", buf, err)
	}
}

func TestDropLosesBytesSilently(t *testing.T) {
	leakcheck.Check(t)
	c, peer := pipe()
	defer c.Close()
	defer peer.Close()
	c.SetWriteMode(Drop, 0)
	// net.Pipe writes block until read; Drop must return without any
	// reader — the bytes are gone, and the writer believes they went out.
	if n, err := c.Write([]byte("lost")); n != 4 || err != nil {
		t.Fatalf("dropped write: n=%d err=%v", n, err)
	}
	c.SetWriteMode(Pass, 0)
	go c.Write([]byte("kept"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(peer, buf); err != nil || string(buf) != "kept" {
		t.Fatalf("got %q, %v (dropped bytes leaked through?)", buf, err)
	}
}

func TestBlackholeWithholdsThenDeliversInOrder(t *testing.T) {
	leakcheck.Check(t)
	c, peer := pipe()
	defer c.Close()
	defer peer.Close()
	c.SetWriteMode(Blackhole, 0)
	done := make(chan struct{})
	go func() {
		c.Write([]byte("ab"))
		c.Write([]byte("cd"))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("writes completed through a blackhole")
	case <-time.After(20 * time.Millisecond):
	}
	c.SetWriteMode(Pass, 0)
	buf := make([]byte, 4)
	if _, err := io.ReadFull(peer, buf); err != nil || string(buf) != "abcd" {
		t.Fatalf("got %q, %v — blackholed bytes must arrive, in order", buf, err)
	}
	<-done
}

func TestSeverWakesBlackholedAndFailsEverything(t *testing.T) {
	leakcheck.Check(t)
	c, peer := pipe()
	defer peer.Close()
	c.SetWriteMode(Blackhole, 0)
	errs := make(chan error, 1)
	go func() {
		_, err := c.Write([]byte("x"))
		errs <- err
	}()
	c.Sever()
	err := <-errs
	if !errors.Is(err, ErrSevered) || !errors.Is(err, net.ErrClosed) {
		t.Fatalf("blocked write woke with %v, want ErrSevered (and net.ErrClosed)", err)
	}
	if _, err := c.Read(make([]byte, 1)); !errors.Is(err, ErrSevered) {
		t.Fatalf("post-sever read: %v", err)
	}
	if _, err := c.Write([]byte("y")); !errors.Is(err, ErrSevered) {
		t.Fatalf("post-sever write: %v", err)
	}
}

func TestSeverAfterWriteTruncatesMidTransfer(t *testing.T) {
	leakcheck.Check(t)
	c, peer := pipe()
	got := make(chan []byte, 1)
	go func() {
		var all []byte
		buf := make([]byte, 16)
		for {
			n, err := peer.Read(buf)
			all = append(all, buf[:n]...)
			if err != nil {
				got <- all
				return
			}
		}
	}()
	c.SeverAfterWrite(3)
	n, err := c.Write([]byte("abcde"))
	if n != 3 || !errors.Is(err, ErrSevered) {
		t.Fatalf("torn write: n=%d err=%v, want 3 bytes then ErrSevered", n, err)
	}
	if all := <-got; string(all) != "abc" {
		t.Fatalf("peer saw %q, want the torn prefix %q", all, "abc")
	}
	peer.Close()
}

func TestSeverOnScheduleIsSeedDeterministic(t *testing.T) {
	leakcheck.Check(t)
	// Two connections with the same seed die after the same byte count;
	// the count lands inside the configured range.
	run := func(seed uint64) int {
		c, peer := pipe()
		defer peer.Close()
		go io.Copy(io.Discard, peer)
		c.SeverOnSchedule(seed, 4, 32)
		sent := 0
		for {
			if _, err := c.Write([]byte{byte(sent)}); err != nil {
				return sent
			}
			sent++
		}
	}
	a, b := run(7), run(7)
	if a != b {
		t.Fatalf("same seed, different sever points: %d vs %d", a, b)
	}
	if a < 4 || a > 32 {
		t.Fatalf("sever point %d outside schedule range [4,32]", a)
	}
	if other := run(8); other == a {
		// Not strictly guaranteed for every pair, but for these fixed
		// seeds the PCG streams differ; a collision here means the seed
		// is being ignored.
		t.Fatalf("seeds 7 and 8 severed at the same point %d", a)
	}
}

func TestDelayDelivers(t *testing.T) {
	leakcheck.Check(t)
	c, peer := pipe()
	defer c.Close()
	defer peer.Close()
	c.SetWriteMode(Delay, time.Millisecond)
	go c.Write([]byte("zz"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(peer, buf); err != nil || string(buf) != "zz" {
		t.Fatalf("got %q, %v", buf, err)
	}
}

func TestListenerRefuseAndAdmit(t *testing.T) {
	leakcheck.Check(t)
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := NewListener(raw)
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		c, err := ln.Accept()
		if err == nil {
			accepted <- c
		}
	}()
	ln.Refuse(true)
	refused, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	// The refused connection dies before delivering anything.
	refused.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := refused.Read(make([]byte, 1)); err == nil {
		t.Fatal("refused connection delivered data")
	}
	refused.Close()
	ln.Refuse(false)
	admitted, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer admitted.Close()
	srv := <-accepted
	defer srv.Close()
	if len(ln.Conns()) != 1 {
		t.Fatalf("Conns() = %d, want 1 (refused connections are not recorded)", len(ln.Conns()))
	}
	go srv.Write([]byte("ok"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(admitted, buf); err != nil || string(buf) != "ok" {
		t.Fatalf("got %q, %v", buf, err)
	}
}

func TestDialerWrapsAndRecords(t *testing.T) {
	leakcheck.Check(t)
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	go func() {
		for {
			c, err := raw.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c) // echo
		}
	}()
	var d Dialer
	c1, err := d.Dial(raw.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	c2, err := d.Dial(raw.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if len(d.Conns()) != 2 || d.Last() != c2 {
		t.Fatalf("dialer bookkeeping: %d conns, last=%p want %p", len(d.Conns()), d.Last(), c2)
	}
	if _, err := c2.Write([]byte("ping")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c2, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo through wrapped dial: %q, %v", buf, err)
	}
}
