// Package faultwire is the fault-injection harness under the wire
// transport's tests: a net.Conn (and net.Listener, and dialer) wrapper
// that misbehaves on command. Each direction of a wrapped connection can
// independently pass, drop, delay, or blackhole traffic, and the
// connection can be severed cleanly or mid-frame (after an exact byte
// budget), either explicitly or on a seed-derived schedule — which is
// what lets the wire package prove its failure handling deterministically
// instead of hoping a real network misbehaves on cue.
//
// The modes map onto distinct real-world failures, and they differ in a
// way that matters to the wire protocol's negotiated codecs:
//
//   - Drop loses bytes. The stream is framed, so the receiver either
//     desyncs or hangs mid-frame — the connection is doomed, like a
//     middlebox eating packets forever. Use it when the test expects the
//     link to die.
//   - Delay holds each transfer for a fixed duration, then delivers —
//     congestion, not failure.
//   - Blackhole withholds delivery until the mode changes: the classic
//     hung peer. Crucially the bytes are NOT lost — on recovery they
//     arrive in order, so both ends' codecs stay consistent. Use it for
//     failures the link is supposed to survive (quarantine + probe-back).
//   - Sever is process death: the underlying connection closes, blocked
//     operations wake with errors. SeverAfterWrite kills mid-frame, the
//     worst-case truncation a crash can produce.
package faultwire

import (
	"errors"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"time"
)

// Mode is one direction's behavior.
type Mode int

const (
	// Pass delivers traffic untouched.
	Pass Mode = iota
	// Drop silently discards traffic (writes pretend success, reads
	// consume and discard) — the stream loses bytes and cannot recover.
	Drop
	// Delay delivers traffic after the direction's configured delay.
	Delay
	// Blackhole withholds traffic — the operation blocks — until the
	// mode changes or the connection severs. Delivery resumes in order.
	Blackhole
)

// ErrSevered is returned by operations on a connection that faultwire
// killed (it wraps net.ErrClosed for errors.Is).
var ErrSevered = errors.New("faultwire: connection severed")

// errSevered satisfies errors.Is for both ErrSevered and net.ErrClosed,
// so code that checks either recognizes an injected kill.
type severedError struct{}

func (severedError) Error() string        { return ErrSevered.Error() }
func (severedError) Is(target error) bool { return target == ErrSevered || target == net.ErrClosed }

// side is one direction's fault state.
type side struct {
	mu     sync.Mutex
	mode   Mode
	delay  time.Duration
	change chan struct{} // closed-and-replaced on every state change
	// budget, when armed, is how many more bytes may cross before the
	// connection severs mid-transfer (write side only).
	budget      int
	budgetArmed bool
}

func newSide() *side { return &side{change: make(chan struct{})} }

func (s *side) set(m Mode, d time.Duration) {
	s.mu.Lock()
	s.mode, s.delay = m, d
	close(s.change)
	s.change = make(chan struct{})
	s.mu.Unlock()
}

// Conn wraps a net.Conn with per-direction fault injection. Direction
// names are from the wrapped endpoint's point of view: SetReadMode
// shapes what this endpoint receives, SetWriteMode what it sends.
type Conn struct {
	inner net.Conn
	rd    *side
	wr    *side

	sevMu   sync.Mutex
	severed bool
}

// Wrap returns c behind a fault injector, initially in Pass/Pass.
func Wrap(c net.Conn) *Conn {
	return &Conn{inner: c, rd: newSide(), wr: newSide()}
}

// SetReadMode switches the receive direction's behavior. delay is only
// meaningful for Delay.
func (c *Conn) SetReadMode(m Mode, delay time.Duration) { c.rd.set(m, delay) }

// SetWriteMode switches the send direction's behavior. delay is only
// meaningful for Delay.
func (c *Conn) SetWriteMode(m Mode, delay time.Duration) { c.wr.set(m, delay) }

// Sever kills the connection: the underlying conn closes and every
// blocked or future operation returns ErrSevered. Idempotent.
func (c *Conn) Sever() {
	c.sevMu.Lock()
	already := c.severed
	c.severed = true
	c.sevMu.Unlock()
	if already {
		return
	}
	c.inner.Close()
	// Wake anything parked in a Blackhole.
	c.rd.set(c.rd.snapshotMode())
	c.wr.set(c.wr.snapshotMode())
}

func (s *side) snapshotMode() (Mode, time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mode, s.delay
}

func (c *Conn) isSevered() bool {
	c.sevMu.Lock()
	defer c.sevMu.Unlock()
	return c.severed
}

// SeverAfterWrite arms a byte budget on the send direction: the next n
// written bytes are delivered, then the connection severs — mid-frame
// when n lands inside one, which is exactly the torn write a crashing
// process produces.
func (c *Conn) SeverAfterWrite(n int) {
	c.wr.mu.Lock()
	c.wr.budget, c.wr.budgetArmed = n, true
	c.wr.mu.Unlock()
}

// SeverOnSchedule arms SeverAfterWrite with a seed-derived budget in
// [minBytes, maxBytes], so a fleet of test connections dies at
// reproducible but varied points. Same seed, same schedule.
func (c *Conn) SeverOnSchedule(seed uint64, minBytes, maxBytes int) {
	r := rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
	span := maxBytes - minBytes
	n := minBytes
	if span > 0 {
		n += r.IntN(span + 1)
	}
	c.SeverAfterWrite(n)
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	for {
		if c.isSevered() {
			return 0, severedError{}
		}
		s := c.rd
		s.mu.Lock()
		mode, delay, change := s.mode, s.delay, s.change
		s.mu.Unlock()
		switch mode {
		case Pass:
			return c.inner.Read(p)
		case Delay:
			time.Sleep(delay)
			return c.inner.Read(p)
		case Drop:
			// Consume and discard, then re-check the mode: the reader
			// observes silence while bytes are lost.
			if _, err := c.inner.Read(p); err != nil {
				return 0, err
			}
		case Blackhole:
			<-change
		}
	}
}

// Write implements net.Conn.
func (c *Conn) Write(p []byte) (int, error) {
	for {
		if c.isSevered() {
			return 0, severedError{}
		}
		s := c.wr
		s.mu.Lock()
		mode, delay, change := s.mode, s.delay, s.change
		budget, armed := s.budget, s.budgetArmed
		if armed && mode == Pass {
			if budget >= len(p) {
				s.budget -= len(p)
			} else {
				s.budgetArmed = false
			}
		}
		s.mu.Unlock()
		switch mode {
		case Pass:
			if armed && budget < len(p) {
				// Deliver the torn prefix, then die mid-frame.
				if budget > 0 {
					c.inner.Write(p[:budget])
				}
				c.Sever()
				return budget, severedError{}
			}
			return c.inner.Write(p)
		case Drop:
			return len(p), nil
		case Delay:
			time.Sleep(delay)
			return c.inner.Write(p)
		case Blackhole:
			<-change
		}
	}
}

// Close implements net.Conn; an explicit Close is a sever.
func (c *Conn) Close() error {
	c.Sever()
	return nil
}

// LocalAddr implements net.Conn.
func (c *Conn) LocalAddr() net.Addr { return c.inner.LocalAddr() }

// RemoteAddr implements net.Conn.
func (c *Conn) RemoteAddr() net.Addr { return c.inner.RemoteAddr() }

// SetDeadline implements net.Conn. Deadlines apply to the underlying
// operations; an operation parked in a Blackhole outlives them by design
// (that is what "hung" means).
func (c *Conn) SetDeadline(t time.Time) error { return c.inner.SetDeadline(t) }

// SetReadDeadline implements net.Conn.
func (c *Conn) SetReadDeadline(t time.Time) error { return c.inner.SetReadDeadline(t) }

// SetWriteDeadline implements net.Conn.
func (c *Conn) SetWriteDeadline(t time.Time) error { return c.inner.SetWriteDeadline(t) }

// Listener wraps a net.Listener so every accepted connection comes back
// fault-injectable. The coordinator side of a test cluster serves on one
// of these (wire.Serve), giving the test a handle on each worker link as
// it is admitted.
type Listener struct {
	net.Listener

	mu     sync.Mutex
	conns  []*Conn
	refuse bool
}

// NewListener wraps ln.
func NewListener(ln net.Listener) *Listener { return &Listener{Listener: ln} }

// Accept implements net.Listener, wrapping each accepted connection.
// While Refuse is set, incoming connections are closed immediately —
// the dialer sees a connection that dies before HELLO completes.
func (l *Listener) Accept() (net.Conn, error) {
	for {
		raw, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		l.mu.Lock()
		if l.refuse {
			l.mu.Unlock()
			raw.Close()
			continue
		}
		c := Wrap(raw)
		l.conns = append(l.conns, c)
		l.mu.Unlock()
		return c, nil
	}
}

// Refuse makes Accept slam the door on new connections (true) or admit
// them again (false).
func (l *Listener) Refuse(v bool) {
	l.mu.Lock()
	l.refuse = v
	l.mu.Unlock()
}

// Conns returns every connection accepted so far, in accept order.
func (l *Listener) Conns() []*Conn {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]*Conn(nil), l.conns...)
}

// Dialer produces fault-injectable outbound connections; its Dial method
// plugs into wire.WorkerConfig.Dial so a test holds a handle on each
// connection a reconnecting worker makes.
type Dialer struct {
	mu    sync.Mutex
	conns []*Conn
}

// Dial connects over TCP and wraps the connection.
func (d *Dialer) Dial(addr string) (net.Conn, error) {
	raw, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c := Wrap(raw)
	d.mu.Lock()
	d.conns = append(d.conns, c)
	d.mu.Unlock()
	return c, nil
}

// Conns returns every connection dialed so far, in dial order.
func (d *Dialer) Conns() []*Conn {
	d.mu.Lock()
	defer d.mu.Unlock()
	return append([]*Conn(nil), d.conns...)
}

// Last returns the most recently dialed connection, or nil.
func (d *Dialer) Last() *Conn {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.conns) == 0 {
		return nil
	}
	return d.conns[len(d.conns)-1]
}

// assert the interfaces hold
var (
	_ net.Conn     = (*Conn)(nil)
	_ net.Listener = (*Listener)(nil)
	_ io.Reader    = (*Conn)(nil)
)
