package mpiray

import (
	"testing"

	"snet/internal/dist"
	"snet/internal/raytrace"
	"snet/internal/sched"
)

const testW, testH = 40, 36

func referenceImage(t *testing.T, scene *raytrace.Scene) *raytrace.Image {
	t.Helper()
	img, _ := raytrace.Render(scene, testW, testH)
	return img
}

func TestRenderStaticMatchesSequential(t *testing.T) {
	scene := raytrace.BalancedScene(30, 3)
	want := referenceImage(t, scene)
	for _, procs := range []int{1, 2, 3, 8} {
		img, stats, err := RenderStatic(scene, testW, testH, Options{Procs: procs})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if !img.Equal(want) {
			t.Fatalf("procs=%d: image differs from sequential render", procs)
		}
		if procs > 1 && stats.Messages != int64(procs-1) {
			t.Fatalf("procs=%d: %d messages, want %d chunk sends", procs, stats.Messages, procs-1)
		}
	}
}

func TestRenderStaticOnCluster(t *testing.T) {
	scene := raytrace.UnbalancedScene(40, 9)
	want := referenceImage(t, scene)
	cluster := dist.NewCluster(4, 2)
	img, _, err := RenderStatic(scene, testW, testH, Options{Procs: 8, Cluster: cluster})
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(want) {
		t.Fatal("clustered render differs")
	}
	s := cluster.Stats()
	var total int64
	for _, e := range s.Execs {
		total += e
		if e == 0 {
			t.Fatalf("a node did no work: %v", s.Execs)
		}
	}
	if total != 8 {
		t.Fatalf("total execs = %d, want 8", total)
	}
}

func TestRenderStaticErrors(t *testing.T) {
	scene := raytrace.BalancedScene(5, 1)
	if _, _, err := RenderStatic(scene, 8, 8, Options{Procs: 0}); err == nil {
		t.Fatal("Procs=0 should error")
	}
}

func TestMasterWorkerMatchesSequential(t *testing.T) {
	scene := raytrace.UnbalancedScene(50, 4)
	want := referenceImage(t, scene)
	spans := sched.Block(testH, 12)
	for _, procs := range []int{2, 3, 5} {
		img, _, err := RenderMasterWorker(scene, testW, testH, spans, Options{Procs: procs})
		if err != nil {
			t.Fatalf("procs=%d: %v", procs, err)
		}
		if !img.Equal(want) {
			t.Fatalf("procs=%d: image differs", procs)
		}
	}
}

func TestMasterWorkerFactoringSpans(t *testing.T) {
	scene := raytrace.BalancedScene(25, 7)
	want := referenceImage(t, scene)
	spans, err := sched.PaperFactoring(testH, 6)
	if err != nil {
		t.Fatal(err)
	}
	img, _, err := RenderMasterWorker(scene, testW, testH, spans, Options{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(want) {
		t.Fatal("factoring master/worker render differs")
	}
}

func TestMasterWorkerMoreWorkersThanWork(t *testing.T) {
	// Workers that never get a section must still terminate.
	scene := raytrace.BalancedScene(10, 2)
	spans := sched.Block(testH, 2)
	img, _, err := RenderMasterWorker(scene, testW, testH, spans, Options{Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	if !img.Equal(referenceImage(t, scene)) {
		t.Fatal("image differs")
	}
}

func TestMasterWorkerErrors(t *testing.T) {
	scene := raytrace.BalancedScene(5, 1)
	if _, _, err := RenderMasterWorker(scene, 8, 8, sched.Block(8, 2), Options{Procs: 1}); err == nil {
		t.Fatal("single-proc master/worker should error")
	}
	if _, _, err := RenderMasterWorker(scene, 8, 8, []sched.Span{{Lo: 0, Hi: 3}}, Options{Procs: 2}); err == nil {
		t.Fatal("invalid spans should error")
	}
}

func TestChunkMsgByteSize(t *testing.T) {
	m := chunkMsg{raytrace.Chunk{Pix: make([]byte, 100)}}
	if m.ByteSize() != 132 {
		t.Fatalf("ByteSize = %d", m.ByteSize())
	}
}
