// Package mpiray reimplements the paper's baseline: the "original C/MPI
// implementation" of the ray tracer, which "distributes an image evenly
// across all cluster nodes and processes these independently. The root
// process collects all sub-results and assembles the completed scene."
//
// A master/worker variant is included as well; it is not in the paper (the
// authors only ran the static MPI program) and serves as the ablation
// baseline for dynamic scheduling.
package mpiray

import (
	"fmt"

	"snet/internal/dist"
	"snet/internal/mpi"
	"snet/internal/raytrace"
	"snet/internal/sched"
)

// Message tags.
const (
	tagChunk = iota + 1
	tagWork
	tagStop
	tagReady
)

// chunkMsg wraps a chunk for transport; the embedded Chunk's ByteSize
// (mpi.ByteSizer) declares the transfer size, so the baseline and the S-Net
// cluster charge identical bytes for chunk traffic.
type chunkMsg struct {
	raytrace.Chunk
}

// Options configure a parallel render.
type Options struct {
	// Procs is the number of MPI ranks.
	Procs int
	// Cluster, when non-nil, gates each rank's compute on the cluster's
	// CPU slots (rank r runs on node r mod Nodes), so the baseline and
	// the S-Net version compete for identical resources.
	Cluster *dist.Cluster
}

// gate runs fn on the rank's node when a cluster is configured.
func (o Options) gate(rank int, fn func()) {
	if o.Cluster == nil {
		fn()
		return
	}
	o.Cluster.Exec(rank%o.Cluster.Nodes(), fn)
}

// RenderStatic is the paper's MPI program: block distribution, rank r
// renders its section, root (rank 0) collects and assembles.
func RenderStatic(scene *raytrace.Scene, w, h int, opts Options) (*raytrace.Image, mpi.Stats, error) {
	if opts.Procs <= 0 {
		return nil, mpi.Stats{}, fmt.Errorf("mpiray: need at least one process")
	}
	spans := sched.Block(h, opts.Procs)
	img := raytrace.NewImage(w, h)
	comm := mpi.Run(opts.Procs, func(p *mpi.Proc) {
		span := spans[p.RankID()]
		sec := raytrace.Section{Index: p.RankID(), W: w, H: h, Y0: span.Lo, Y1: span.Hi}
		var chunk raytrace.Chunk
		opts.gate(p.RankID(), func() {
			chunk, _ = raytrace.RenderSection(scene, sec)
		})
		if p.RankID() != 0 {
			p.Send(0, tagChunk, chunkMsg{chunk})
			return
		}
		img.SetChunk(chunk)
		for i := 1; i < p.Size(); i++ {
			m, ok := p.Recv(mpi.AnySource, tagChunk)
			if !ok {
				return
			}
			img.SetChunk(m.Data.(chunkMsg).Chunk)
		}
	})
	return img, comm.Stats(), nil
}

// RenderMasterWorker renders with a dynamic master/worker protocol: rank 0
// deals sections from the given span list to workers on demand. This is the
// message-passing twin of the paper's dynamically scheduled S-Net solver.
func RenderMasterWorker(scene *raytrace.Scene, w, h int, spans []sched.Span, opts Options) (*raytrace.Image, mpi.Stats, error) {
	if opts.Procs < 2 {
		return nil, mpi.Stats{}, fmt.Errorf("mpiray: master/worker needs at least two processes")
	}
	if err := sched.Validate(spans, h); err != nil {
		return nil, mpi.Stats{}, err
	}
	img := raytrace.NewImage(w, h)
	comm := mpi.Run(opts.Procs, func(p *mpi.Proc) {
		if p.RankID() == 0 {
			// Every worker message (ready or chunk) asks for more work;
			// answer with a section or a stop. Each worker sends exactly
			// one message after its last section, so it receives exactly
			// one stop.
			next := 0
			stopped := 0
			for stopped < p.Size()-1 {
				m, ok := p.Recv(mpi.AnySource, mpi.AnyTag)
				if !ok {
					return
				}
				if m.Tag == tagChunk {
					img.SetChunk(m.Data.(chunkMsg).Chunk)
				}
				if next < len(spans) {
					span := spans[next]
					p.Send(m.Source, tagWork, raytrace.Section{
						Index: next, W: w, H: h, Y0: span.Lo, Y1: span.Hi,
					})
					next++
				} else {
					p.Send(m.Source, tagStop, nil)
					stopped++
				}
			}
			return
		}
		// worker
		p.Send(0, tagReady, nil)
		for {
			m, ok := p.Recv(0, mpi.AnyTag)
			if !ok || m.Tag == tagStop {
				return
			}
			sec := m.Data.(raytrace.Section)
			var chunk raytrace.Chunk
			opts.gate(p.RankID(), func() {
				chunk, _ = raytrace.RenderSection(scene, sec)
			})
			p.Send(0, tagChunk, chunkMsg{chunk})
		}
	})
	return img, comm.Stats(), nil
}
