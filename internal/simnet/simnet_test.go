package simnet

import (
	"math"
	"testing"
)

func TestSimEventOrdering(t *testing.T) {
	s := NewSim()
	var order []int
	s.At(2, func() { order = append(order, 2) })
	s.At(1, func() { order = append(order, 1) })
	s.At(1, func() { order = append(order, 11) }) // same time: FIFO by seq
	s.After(3, func() { order = append(order, 3) })
	end := s.Run()
	if end != 3 {
		t.Fatalf("end = %g", end)
	}
	want := []int{1, 11, 2, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v", order)
		}
	}
}

func TestSimNestedScheduling(t *testing.T) {
	s := NewSim()
	var hit float64
	s.At(1, func() {
		s.After(2, func() { hit = s.Now() })
	})
	s.Run()
	if hit != 3 {
		t.Fatalf("nested event at %g, want 3", hit)
	}
}

func TestSimPastEventClamped(t *testing.T) {
	s := NewSim()
	var at float64
	s.At(5, func() {
		s.At(1, func() { at = s.Now() }) // in the past: runs "now"
	})
	s.Run()
	if at != 5 {
		t.Fatalf("past event ran at %g", at)
	}
}

func TestResourceCapacityAndFIFO(t *testing.T) {
	s := NewSim()
	r := NewResource(s, 2)
	var finished []int
	job := func(id int, d float64) {
		r.Use(d, func() { finished = append(finished, id) })
	}
	s.At(0, func() {
		job(0, 10) // occupies until 10
		job(1, 1)  // occupies until 1
		job(2, 1)  // waits for a slot (freed at 1), done at 2
		job(3, 1)  // waits, done at 3
	})
	end := s.Run()
	if end != 10 {
		t.Fatalf("end = %g", end)
	}
	want := []int{1, 2, 3, 0}
	for i, v := range want {
		if finished[i] != v {
			t.Fatalf("finished = %v", finished)
		}
	}
	if r.BusySeconds != 13 {
		t.Fatalf("busy = %g", r.BusySeconds)
	}
}

func TestResourcePanics(t *testing.T) {
	s := NewSim()
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	mustPanic("zero capacity", func() { NewResource(s, 0) })
	r := NewResource(s, 1)
	mustPanic("release without acquire", func() { r.Release() })
}

func TestPaperRowProfileCalibration(t *testing.T) {
	p := PaperRowProfile(3000)
	var sum float64
	for _, c := range p {
		sum += c
	}
	if math.Abs(sum-650.99) > 1e-6 {
		t.Fatalf("total = %g, want 650.99", sum)
	}
	// The first half must carry ~62% of the work (drives the paper's
	// 2-node MPI number 405.95 of 650.99).
	var firstHalf float64
	for _, c := range p[:1500] {
		firstHalf += c
	}
	frac := firstHalf / sum
	if frac < 0.59 || frac < 0.5 || frac > 0.66 {
		t.Fatalf("first-half fraction = %g, want ≈0.62", frac)
	}
	// strictly positive everywhere
	for y, c := range p {
		if c <= 0 {
			t.Fatalf("row %d cost %g", y, c)
		}
	}
}

func TestScaleProfile(t *testing.T) {
	p := ScaleProfile([]float64{1, 2, 3}, 60)
	if p[0] != 10 || p[1] != 20 || p[2] != 30 {
		t.Fatalf("scaled = %v", p)
	}
	z := ScaleProfile([]float64{0, 0}, 60)
	if z[0] != 0 || z[1] != 0 {
		t.Fatal("zero profile must stay zero")
	}
}

func profile() []float64 { return PaperRowProfile(3000) }

func TestMPIStaticSingleNodeMatchesPaper(t *testing.T) {
	got := MPIStatic(PaperTestbed(1), profile(), 1)
	// Paper: 650.99 s. Everything is local, so overheads are memcpy only.
	if math.Abs(got-650.99) > 5 {
		t.Fatalf("MPI 1 node = %g, want ≈651", got)
	}
	got2 := MPIStatic(PaperTestbed(1), profile(), 2)
	// Paper: 401.8 s (the imbalanced half dominates).
	if math.Abs(got2-401.8) > 25 {
		t.Fatalf("MPI 2proc 1 node = %g, want ≈402", got2)
	}
}

func TestMPIStaticScalingShape(t *testing.T) {
	// Paper Fig. 6: 650.99, 405.95, 213.43, 163.83, 136.23.
	want := map[int]float64{1: 650.99, 2: 405.95, 4: 213.43, 6: 163.83, 8: 136.23}
	for _, n := range PaperNodeCounts {
		got := MPIStatic(PaperTestbed(n), profile(), 1)
		if rel := math.Abs(got-want[n]) / want[n]; rel > 0.15 {
			t.Errorf("MPI %d nodes = %.1f, paper %.1f (rel err %.0f%%)",
				n, got, want[n], rel*100)
		}
	}
}

func TestSNetStaticSoloMatchesPaper(t *testing.T) {
	got := SNetStatic(PaperTestbed(1), profile(), 1)
	if math.Abs(got-941.87) > 20 {
		t.Fatalf("S-Net static 1 node = %g, want ≈942", got)
	}
	got2 := SNetStatic(PaperTestbed(1), profile(), 2)
	if math.Abs(got2-829.74) > 20 {
		t.Fatalf("S-Net static 2CPU 1 node = %g, want ≈830", got2)
	}
}

func TestSNetDynamicSoloMatchesPaper(t *testing.T) {
	got, err := SNetDynamic(PaperTestbed(1), profile(), 8, 4, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-953.18) > 25 {
		t.Fatalf("S-Net dynamic 1 node = %g, want ≈953", got)
	}
}

func TestSNetOverheadAmortizedFromTwoNodes(t *testing.T) {
	// Paper: S-Net Static 402.75 vs MPI 405.95 on 2 nodes — within a few
	// percent of each other.
	p := profile()
	tb := PaperTestbed(2)
	snet := SNetStatic(tb, p, 1)
	mpi := MPIStatic(tb, p, 1)
	if rel := math.Abs(snet-mpi) / mpi; rel > 0.10 {
		t.Fatalf("2-node S-Net %.1f vs MPI %.1f: overhead not amortized (%.0f%%)",
			snet, mpi, rel*100)
	}
}

func TestDynamicBeatsStaticAtScale(t *testing.T) {
	// Paper 8 nodes: best dynamic 61.84 vs MPI 2proc 87.01 vs static 132.66.
	p := profile()
	tb := PaperTestbed(8)
	dyn, err := SNetDynamic(tb, p, 64, 32, false)
	if err != nil {
		t.Fatal(err)
	}
	mpi2 := MPIStatic(tb, p, 2)
	static := SNetStatic(tb, p, 1)
	if !(dyn < mpi2 && mpi2 < static) {
		t.Fatalf("ordering violated: dyn=%.1f mpi2=%.1f static=%.1f", dyn, mpi2, static)
	}
	// And the dynamic win factor over static should be roughly the
	// paper's 2.1× (132.66/61.84), allow 1.5–3.5×.
	if f := static / dyn; f < 1.5 || f > 3.5 {
		t.Fatalf("dynamic win factor = %.2f, want ≈2.1", f)
	}
}

func TestTokensSweetSpotSixteen(t *testing.T) {
	// Paper: "performance was generally best when 16 tokens were made
	// available" (two per node, one per CPU) and "worst when the number
	// of tasks equals the number of tokens".
	p := profile()
	tb := PaperTestbed(8)
	const tasks = 48
	rt := func(tokens int) float64 {
		v, err := SNetDynamic(tb, p, tasks, tokens, false)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	best := rt(16)
	if worst := rt(tasks); worst <= best {
		t.Fatalf("tokens==tasks (%.1f) not worse than 16 tokens (%.1f)", worst, best)
	}
	if eight := rt(8); eight <= best {
		t.Fatalf("8 tokens (%.1f) should idle one CPU per node vs 16 (%.1f)", eight, best)
	}
}

func TestFig6RowsAndSpeedup(t *testing.T) {
	rows, err := Fig6(profile(), PaperNodeCounts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Monotone improvement with nodes for every variant.
	for i := 1; i < len(rows); i++ {
		if rows[i].MPI >= rows[i-1].MPI || rows[i].BestDynamic >= rows[i-1].BestDynamic ||
			rows[i].SNetStatic >= rows[i-1].SNetStatic {
			t.Fatalf("non-monotone scaling: %+v -> %+v", rows[i-1], rows[i])
		}
	}
	sp := Fig6Speedup(rows)
	// Paper Fig. 6 right: dynamic speed-up vs MPI2 < 1 on 1-2 nodes,
	// > 1 from ~4 nodes on (1.16 at 4, 1.38 at 6, 1.41 at 8).
	if sp[0].BestDynamic >= 1 {
		t.Fatalf("1-node dynamic speedup = %.2f, want < 1", sp[0].BestDynamic)
	}
	last := sp[len(sp)-1]
	if last.BestDynamic <= 1 {
		t.Fatalf("8-node dynamic speedup = %.2f, want > 1", last.BestDynamic)
	}
	if last.BestDynamic < 1.1 || last.BestDynamic > 2.2 {
		t.Fatalf("8-node dynamic speedup = %.2f, paper ≈1.41", last.BestDynamic)
	}
}

func TestFig5Panels(t *testing.T) {
	for _, factoring := range []bool{true, false} {
		pts, err := Fig5(profile(), factoring, PaperTaskTokenCounts, PaperTaskTokenCounts)
		if err != nil {
			t.Fatal(err)
		}
		if len(pts) != 36 {
			t.Fatalf("points = %d", len(pts))
		}
		for _, pt := range pts {
			if pt.Runtime <= 0 || pt.Runtime > 700 {
				t.Fatalf("implausible runtime %+v", pt)
			}
		}
	}
}

func TestFig5TokensBeyondTasksClamped(t *testing.T) {
	p := profile()
	tb := PaperTestbed(8)
	a, err := SNetDynamic(tb, p, 8, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := SNetDynamic(tb, p, 8, 72, false)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("clamping broken: %g vs %g", a, b)
	}
}

func TestSNetDynamicNeedsTokens(t *testing.T) {
	if _, err := SNetDynamic(PaperTestbed(2), profile(), 8, 0, false); err == nil {
		t.Fatal("0 tokens should error")
	}
}

func TestDeterminism(t *testing.T) {
	p := profile()
	a, _ := SNetDynamic(PaperTestbed(8), p, 48, 16, true)
	b, _ := SNetDynamic(PaperTestbed(8), p, 48, 16, true)
	if a != b {
		t.Fatalf("simulation not deterministic: %g vs %g", a, b)
	}
}
