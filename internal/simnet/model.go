package simnet

import (
	"fmt"
	"math"

	"snet/internal/sched"
)

// Testbed models the paper's evaluation platform.
type Testbed struct {
	// Nodes and CPUs describe the cluster (paper: 8 nodes × 2 CPUs).
	Nodes, CPUs int
	// Width is the image width in pixels (bytes per row = 3·Width).
	Width int
	// BusBytesPerSec is the shared Ethernet bandwidth (100 Mbit ⇒ 12.5 MB/s).
	BusBytesPerSec float64
	// MsgLatency is the per-message latency in seconds.
	MsgLatency float64
	// MemBytesPerSec is the master's copy/assembly speed.
	MemBytesPerSec float64
	// RecordOverhead is the S-Net runtime's per-record handling cost on
	// the master (record management, matching, serialization setup).
	RecordOverhead float64
	// BoxTax multiplies box compute under the S-Net runtime (wrapper and
	// scheduling cost around the identical kernel).
	BoxTax float64
	// Solo taxes are fitted constants reproducing the paper's 1-node
	// column of Fig. 6, where the 2010 C prototype's runtime slowed
	// co-located computation by 27–46% and its service threads saturated
	// the second CPU (the paper's own 1-node numbers show almost no gain
	// from a second solver instance: 941.87 s → 829.74 s). Solo S-Net
	// runs therefore use ONE effective compute CPU plus the fitted tax;
	// both apply only when Nodes == 1 ("from only two nodes onwards the
	// overheads are amortised").
	SoloTaxStatic, SoloTaxStatic2, SoloTaxDynamic float64
}

// PaperTestbed returns the paper's platform with the given node count:
// 2 CPUs per node, 100 Mbit Ethernet, 3000-pixel-wide image.
func PaperTestbed(nodes int) Testbed {
	return Testbed{
		Nodes:          nodes,
		CPUs:           2,
		Width:          3000,
		BusBytesPerSec: 12.5e6,
		MsgLatency:     0.5e-3,
		MemBytesPerSec: 200e6,
		RecordOverhead: 2e-3,
		BoxTax:         1.02,
		SoloTaxStatic:  1.447,
		SoloTaxStatic2: 1.275,
		SoloTaxDynamic: 1.464,
	}
}

// PaperRowProfile returns the per-row rendering cost (seconds on one
// testbed CPU) of the calibrated 3000-row scene. The profile is uniform
// background plus a Gaussian object band and is calibrated so that
// (a) the total single-CPU time matches the paper's 1-node MPI run
// (650.99 s) and (b) the per-block maxima reproduce the paper's static MPI
// scaling on 2–8 nodes (the imbalance the dynamic scheduler exploits).
func PaperRowProfile(h int) []float64 {
	const (
		totalSeconds = 650.99
		bandMass     = 0.24 // fraction of work inside the object band
		bandCenter   = 0.22 // ×H
		bandSigma    = 0.09 // ×H
	)
	mu := bandCenter * float64(h)
	sigma := bandSigma * float64(h)
	base := (1 - bandMass) * totalSeconds / float64(h)
	// Discrete Gaussian normalized to carry exactly bandMass·total.
	weights := make([]float64, h)
	var wsum float64
	for y := 0; y < h; y++ {
		z := (float64(y) - mu) / sigma
		weights[y] = math.Exp(-z * z / 2)
		wsum += weights[y]
	}
	profile := make([]float64, h)
	for y := 0; y < h; y++ {
		profile[y] = base + bandMass*totalSeconds*weights[y]/wsum
	}
	return profile
}

// ScaleProfile rescales an arbitrary per-row cost profile (e.g. measured
// from the real ray tracer via raytrace.RowCosts) to the given total
// seconds, so measured scenes can drive the simulator.
func ScaleProfile(costs []float64, totalSeconds float64) []float64 {
	var sum float64
	for _, c := range costs {
		sum += c
	}
	out := make([]float64, len(costs))
	if sum == 0 {
		return out
	}
	for i, c := range costs {
		out[i] = c * totalSeconds / sum
	}
	return out
}

// sectionCost sums the profile over a span.
func sectionCost(profile []float64, s sched.Span) float64 {
	var c float64
	for y := s.Lo; y < s.Hi; y++ {
		c += profile[y]
	}
	return c
}

// rowBytes returns the pixel payload of one row.
func (tb Testbed) rowBytes() float64 { return 3 * float64(tb.Width) }

// chunkBytes returns the pixel payload of a span.
func (tb Testbed) chunkBytes(s sched.Span) float64 {
	return tb.rowBytes() * float64(s.Rows())
}

// cluster bundles the simulation resources of one run.
type cluster struct {
	sim    *Sim
	tb     Testbed
	cpus   []*Resource // per node
	bus    *Resource   // shared Ethernet
	master *Resource   // master runtime/message thread
}

func newCluster(tb Testbed, cpusPerNode int) *cluster {
	sim := NewSim()
	c := &cluster{
		sim:    sim,
		tb:     tb,
		cpus:   make([]*Resource, tb.Nodes),
		bus:    NewResource(sim, 1),
		master: NewResource(sim, 1),
	}
	for i := range c.cpus {
		c.cpus[i] = NewResource(sim, cpusPerNode)
	}
	return c
}

// snetComputeCPUs returns the effective per-node compute CPUs for S-Net
// variants: on a single node the prototype's runtime threads saturate the
// second CPU (see Testbed solo-tax comment).
func (tb Testbed) snetComputeCPUs() int {
	if tb.Nodes == 1 {
		return 1
	}
	return tb.CPUs
}

// transfer moves bytes from node a to node b, then calls done. Transfers
// within a node bypass the bus at memory speed.
func (c *cluster) transfer(a, b int, bytes float64, done func()) {
	if a == b {
		c.sim.After(bytes/c.tb.MemBytesPerSec, done)
		return
	}
	c.bus.Use(c.tb.MsgLatency+bytes/c.tb.BusBytesPerSec, done)
}

// masterWork runs a master-side record-handling step of duration d.
func (c *cluster) masterWork(d float64, done func()) {
	c.master.Use(d, done)
}

// MPIStatic simulates the paper's MPI baseline with procsPerNode ranks per
// node: block distribution, every rank renders its section on its own CPU,
// non-root ranks send chunks to the root, the root assembles. Returns the
// makespan in seconds.
func MPIStatic(tb Testbed, profile []float64, procsPerNode int) float64 {
	c := newCluster(tb, tb.CPUs)
	ranks := tb.Nodes * procsPerNode
	spans := sched.Block(len(profile), ranks)
	remaining := ranks
	for r := 0; r < ranks; r++ {
		r := r
		node := r % tb.Nodes
		span := spans[r]
		cost := sectionCost(profile, span)
		c.sim.At(0, func() {
			c.cpus[node].Use(cost, func() {
				c.transfer(node, 0, c.tb.chunkBytes(span), func() {
					// root assembles the sub-result
					c.masterWork(c.tb.chunkBytes(span)/c.tb.MemBytesPerSec, func() {
						remaining--
					})
				})
			})
		})
	}
	return c.sim.Run()
}

// SNetStatic simulates the Fig. 2 static S-Net design (solversPerNode == 1)
// and the Section V (solver!<cpu>)!@<node> refinement (solversPerNode == 2):
// tasks = Nodes·solversPerNode block sections, section i placed on node
// i mod Nodes, with S-Net record handling on the master and the box tax on
// solver compute. Returns the makespan in seconds.
func SNetStatic(tb Testbed, profile []float64, solversPerNode int) float64 {
	c := newCluster(tb, tb.snetComputeCPUs())
	tasks := tb.Nodes * solversPerNode
	spans := sched.Block(len(profile), tasks)
	tax := tb.BoxTax
	if tb.Nodes == 1 {
		if solversPerNode > 1 {
			tax *= tb.SoloTaxStatic2
		} else {
			tax *= tb.SoloTaxStatic
		}
	}
	const sectionMsgBytes = 1024
	for i := 0; i < tasks; i++ {
		i := i
		node := i % tb.Nodes
		span := spans[i]
		cost := sectionCost(profile, span) * tax
		c.sim.At(0, func() {
			// splitter emits the section record (master runtime thread)
			c.masterWork(tb.RecordOverhead, func() {
				c.transfer(0, node, sectionMsgBytes, func() {
					c.cpus[node].Use(cost, func() {
						c.transfer(node, 0, c.tb.chunkBytes(span), func() {
							// merger consumes the chunk
							c.masterWork(tb.RecordOverhead+c.tb.chunkBytes(span)/c.tb.MemBytesPerSec, func() {})
						})
					})
				})
			})
		})
	}
	return c.sim.Run()
}

// SNetDynamic simulates the Fig. 4 token-based dynamic design: the first
// `tokens` sections carry distinct node-token values (value mod Nodes
// selects the node), the rest queue at the master's synchrocells and are
// re-dispatched as tokens return with completed chunks. Returns the
// makespan in seconds.
func SNetDynamic(tb Testbed, profile []float64, tasks, tokens int, factoring bool) (float64, error) {
	var spans []sched.Span
	var err error
	if factoring {
		spans, err = sched.PaperFactoring(len(profile), tasks)
		if err != nil {
			return 0, err
		}
	} else {
		spans = sched.Block(len(profile), tasks)
	}
	if tokens > tasks {
		tokens = tasks
	}
	if tokens <= 0 {
		return 0, fmt.Errorf("simnet: dynamic needs at least one token")
	}
	c := newCluster(tb, tb.snetComputeCPUs())
	tax := tb.BoxTax
	if tb.Nodes == 1 {
		tax *= tb.SoloTaxDynamic
	}
	const sectionMsgBytes = 1024
	const tokenMsgBytes = 64

	queue := []int{} // indices of sections waiting for a token

	// nodeOfToken maps a token value onto a compute node. Distributed
	// S-Net leaves the number→machine mapping implementation-dependent;
	// like the prototype's MPI backend we use block (contiguous) mapping,
	// so 16 tokens on 8 nodes put two solver instances on every node —
	// one per CPU, the paper's sweet spot — and tokens == tasks
	// degenerates to a contiguous static split, reproducing the paper's
	// "benefits of dynamic scheduling are lost" worst case.
	nodeOfToken := func(v int) int {
		n := v * tb.Nodes / tokens
		if n >= tb.Nodes {
			n = tb.Nodes - 1
		}
		return n
	}

	// dispatch sends section i to the node of token value v and recycles
	// the token when the chunk has been produced.
	var dispatch func(i, v int)
	dispatch = func(i, v int) {
		node := nodeOfToken(v)
		span := spans[i]
		cost := sectionCost(profile, span) * tax
		c.transfer(0, node, sectionMsgBytes, func() {
			c.cpus[node].Use(cost, func() {
				// The chunk/token filter runs on the node: chunk and token
				// travel back independently.
				c.transfer(node, 0, c.tb.chunkBytes(span), func() {
					c.masterWork(tb.RecordOverhead+c.tb.chunkBytes(span)/c.tb.MemBytesPerSec, func() {})
				})
				c.transfer(node, 0, tokenMsgBytes, func() {
					// synchrocell joins the token with the next waiting
					// section (master runtime thread).
					c.masterWork(tb.RecordOverhead, func() {
						if len(queue) == 0 {
							return
						}
						next := queue[0]
						queue = queue[1:]
						dispatch(next, v)
					})
				})
			})
		})
	}

	for i := 0; i < tasks; i++ {
		i := i
		c.sim.At(0, func() {
			// splitter emits records in order on the master thread
			c.masterWork(tb.RecordOverhead, func() {
				if i < tokens {
					dispatch(i, i)
				} else {
					queue = append(queue, i)
				}
			})
		})
	}
	return c.sim.Run(), nil
}

// Fig6Row is one node count of the paper's Fig. 6 (left): absolute
// runtimes of the five variants.
type Fig6Row struct {
	Nodes       int
	SNetStatic  float64
	SNetStatic2 float64
	MPI         float64
	MPI2        float64
	BestDynamic float64
}

// Fig6 regenerates the paper's Fig. 6 (left) series. Per the paper, the
// dynamic variant uses nodes·8 tasks and tasks/2 tokens with block
// scheduling.
func Fig6(profile []float64, nodeCounts []int) ([]Fig6Row, error) {
	rows := make([]Fig6Row, 0, len(nodeCounts))
	for _, n := range nodeCounts {
		tb := PaperTestbed(n)
		tasks := 8 * n
		dyn, err := SNetDynamic(tb, profile, tasks, tasks/2, false)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Fig6Row{
			Nodes:       n,
			SNetStatic:  SNetStatic(tb, profile, 1),
			SNetStatic2: SNetStatic(tb, profile, 2),
			MPI:         MPIStatic(tb, profile, 1),
			MPI2:        MPIStatic(tb, profile, 2),
			BestDynamic: dyn,
		})
	}
	return rows, nil
}

// SpeedupRow is one node count of Fig. 6 (right): speed-up of the two
// S-Net contenders versus MPI with 2 processes per node.
type SpeedupRow struct {
	Nodes       int
	Static2CPU  float64
	BestDynamic float64
}

// Fig6Speedup derives the paper's Fig. 6 (right) from Fig. 6 (left).
func Fig6Speedup(rows []Fig6Row) []SpeedupRow {
	out := make([]SpeedupRow, len(rows))
	for i, r := range rows {
		out[i] = SpeedupRow{
			Nodes:       r.Nodes,
			Static2CPU:  r.MPI2 / r.SNetStatic2,
			BestDynamic: r.MPI2 / r.BestDynamic,
		}
	}
	return out
}

// Fig5Point is one measurement of Fig. 5: runtime for a (tasks, tokens)
// pair on the 8-node testbed.
type Fig5Point struct {
	Tasks, Tokens int
	Runtime       float64
}

// Fig5 regenerates a panel of the paper's Fig. 5 on the 8-node testbed:
// runtime versus token count for each task count, under factoring or block
// scheduling. Token counts exceeding the task count are clamped, as in the
// splitter (every section simply gets a token).
func Fig5(profile []float64, factoring bool, taskCounts, tokenCounts []int) ([]Fig5Point, error) {
	tb := PaperTestbed(8)
	var pts []Fig5Point
	for _, tasks := range taskCounts {
		for _, tokens := range tokenCounts {
			rt, err := SNetDynamic(tb, profile, tasks, tokens, factoring)
			if err != nil {
				return nil, err
			}
			pts = append(pts, Fig5Point{Tasks: tasks, Tokens: tokens, Runtime: rt})
		}
	}
	return pts, nil
}

// PaperTaskTokenCounts are the x-axis and series values of Fig. 5.
var PaperTaskTokenCounts = []int{8, 16, 32, 48, 64, 72}

// PaperNodeCounts are the node counts of Fig. 6.
var PaperNodeCounts = []int{1, 2, 4, 6, 8}
