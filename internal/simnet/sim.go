// Package simnet reproduces the paper's evaluation platform as a
// deterministic discrete-event simulation: an 8-node cluster of 2-CPU
// Pentium III machines on 100 Mbit Ethernet rendering a 3000×3000 scene.
// The simulator regenerates Figure 5 (runtime vs. token count under
// factoring and block scheduling) and Figure 6 (absolute runtimes and
// speed-ups of the five implementation variants on 1–8 nodes) at the
// paper's scale, which a single laptop cannot reach in wall-clock time.
//
// The simulation kernel is a classic event-calendar DES: no goroutines, no
// wall-clock — every run is exactly reproducible.
package simnet

import "container/heap"

// Sim is a discrete-event simulator with a floating-point clock (seconds).
type Sim struct {
	now float64
	pq  eventHeap
	seq int64 // tie-breaker keeps event order deterministic
}

// NewSim returns a simulator at time zero.
func NewSim() *Sim { return &Sim{} }

// Now returns the current simulation time in seconds.
func (s *Sim) Now() float64 { return s.now }

// At schedules fn at absolute time t (clamped to now).
func (s *Sim) At(t float64, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.pq, event{t: t, seq: s.seq, fn: fn})
}

// After schedules fn d seconds from now.
func (s *Sim) After(d float64, fn func()) { s.At(s.now+d, fn) }

// Run executes events until the calendar is empty and returns the final
// simulation time.
func (s *Sim) Run() float64 {
	for s.pq.Len() > 0 {
		ev := heap.Pop(&s.pq).(event)
		s.now = ev.t
		ev.fn()
	}
	return s.now
}

type event struct {
	t   float64
	seq int64
	fn  func()
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Resource is a capacity-limited resource with a FIFO wait queue (CPU
// slots, the shared Ethernet bus, the master's runtime thread).
type Resource struct {
	sim      *Sim
	capacity int
	busy     int
	queue    []func()
	// BusySeconds accumulates utilization for reporting.
	BusySeconds float64
}

// NewResource creates a resource with the given capacity.
func NewResource(sim *Sim, capacity int) *Resource {
	if capacity <= 0 {
		panic("simnet: resource capacity must be positive")
	}
	return &Resource{sim: sim, capacity: capacity}
}

// Acquire grants a unit to fn as soon as one is free (FIFO order). fn must
// eventually call Release exactly once.
func (r *Resource) Acquire(fn func()) {
	if r.busy < r.capacity {
		r.busy++
		fn()
		return
	}
	r.queue = append(r.queue, fn)
}

// Release returns a unit and hands it to the next waiter, if any.
func (r *Resource) Release() {
	if len(r.queue) > 0 {
		next := r.queue[0]
		r.queue = r.queue[1:]
		next()
		return
	}
	r.busy--
	if r.busy < 0 {
		panic("simnet: Release without Acquire")
	}
}

// Use acquires the resource, holds it for d seconds, then releases it and
// calls done. It is the common acquire-delay-release idiom.
func (r *Resource) Use(d float64, done func()) {
	r.Acquire(func() {
		r.BusySeconds += d
		r.sim.After(d, func() {
			r.Release()
			done()
		})
	})
}
