package snetray

import (
	"context"
	"errors"
	"testing"
	"time"

	"snet/internal/compile"
	"snet/internal/core"
	"snet/internal/dist"
	"snet/internal/leakcheck"
	"snet/internal/raytrace"
	"snet/internal/record"
)

// headSource is the front half of the paper's Fig. 2 network — splitter and
// placed solvers, no merger and no genImg — so every rendered chunk heads
// for the network's global output. Feeding it and not reading Out is the
// canonical saturation scenario: solvers block on the output path while
// further sections queue behind the cluster's CPU slots.
const headSource = `
net raytracing_head
{
    box splitter( (scene, <nodes>, <tasks>)
                  -> (scene, sect, <node>, <tasks>, <fst>)
                   | (scene, sect, <node>, <tasks> ));
    box solver ( (scene, sect) -> (chunk));
} connect
    splitter .. solver!@<node>
`

// TestStopSaturatedRaytraceNetwork is the PR's acceptance scenario: a
// raytrace network wedged against an unread Out must be fully reclaimed by
// Stop — every goroutine gone, every cluster CPU slot released.
func TestStopSaturatedRaytraceNetwork(t *testing.T) {
	leakcheck.Check(t)
	scene := raytrace.UnbalancedScene(40, 7)
	cfg := Config{Scene: scene, W: testW, H: testH,
		Nodes: 4, CPUs: 1, Tasks: 16, Mode: Static}
	sink := &imageSink{}
	reg, err := cfg.registry(sink)
	if err != nil {
		t.Fatal(err)
	}
	res, err := compile.Source(headSource, reg)
	if err != nil {
		t.Fatal(err)
	}
	ent, ok := res.Net("raytracing_head")
	if !ok {
		t.Fatal("headSource did not compile a net")
	}
	cluster := dist.NewCluster(cfg.Nodes, cfg.CPUs)
	// Tiny buffers: a couple of chunks wedge the whole path.
	net := core.NewNetwork(ent, core.Options{Platform: cluster, BufferSize: 1})
	inst := net.Start()
	if !inst.Send(record.Build().
		F("scene", scene).T("nodes", cfg.Nodes).T("tasks", cfg.Tasks).Rec()) {
		t.Fatal("Send refused")
	}
	// Wait until solvers have actually rendered chunks nobody is reading.
	deadline := time.Now().Add(10 * time.Second)
	for {
		s := cluster.Stats()
		var execs int64
		for _, e := range s.Execs {
			execs += e
		}
		if execs >= 3 && len(inst.Out) > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("network never saturated: stats=%+v buffered=%d", s, len(inst.Out))
		}
		time.Sleep(5 * time.Millisecond)
	}

	stopRet := make(chan error, 1)
	go func() { stopRet <- inst.Stop() }()
	select {
	case err := <-stopRet:
		if !errors.Is(err, core.ErrStopped) {
			t.Fatalf("Stop = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Stop did not reclaim the saturated raytrace network")
	}

	// The cluster keeps serving: a full render on the same platform
	// completes and matches the sequential reference.
	cfg.Cluster = cluster
	full, err := Render(cfg)
	if err != nil {
		t.Fatalf("render after Stop: %v", err)
	}
	want, _ := raytrace.Render(scene, testW, testH)
	if !full.Image.Equal(want) {
		t.Fatal("post-Stop render differs from sequential reference")
	}
}

func TestRenderContextCancelled(t *testing.T) {
	leakcheck.Check(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the render must abort promptly
	_, err := RenderContext(ctx, Config{
		Scene: raytrace.BalancedScene(30, 1), W: testW, H: testH,
		Nodes: 4, CPUs: 1, Tasks: 8, Mode: Static,
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestRenderContextCompletes(t *testing.T) {
	leakcheck.Check(t)
	scene := raytrace.BalancedScene(30, 1)
	res, err := RenderContext(context.Background(), Config{
		Scene: scene, W: testW, H: testH,
		Nodes: 4, CPUs: 1, Tasks: 8, Mode: Static,
	})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := raytrace.Render(scene, testW, testH)
	if !res.Image.Equal(want) {
		t.Fatal("image differs from sequential reference")
	}
}
