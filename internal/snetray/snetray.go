// Package snetray is the paper's application layer: the ray tracer
// coordinated by S-Net. It provides the Go implementations of the paper's
// boxes (splitter, solver, init, merge, genImg), the S-Net source text of
// the three network designs — the static fork–join of Fig. 2 with the
// Fig. 3 merger, the two-solvers-per-node static variant of Section V, and
// the dynamically load-balanced design of Fig. 4 — and a driver that
// compiles and runs them on a dist.Cluster platform.
package snetray

import (
	"context"
	"fmt"
	"sync"
	"time"

	"snet/internal/compile"
	"snet/internal/core"
	"snet/internal/dist"
	"snet/internal/lang"
	"snet/internal/raytrace"
	"snet/internal/record"
	"snet/internal/sched"
)

// Mode selects the network design.
type Mode int

// Network designs from the paper, plus the load-aware extension.
const (
	// Static is Fig. 2: splitter .. solver!@<node> .. merger .. genImg.
	Static Mode = iota
	// Static2CPU is the Section V variant (solver!<cpu>)!@<node> with two
	// solver instances per node.
	Static2CPU
	// Dynamic is Fig. 4: token-based dynamic load balancing.
	Dynamic
	// DynamicSteal goes past the paper's token scheme: placement becomes
	// a runtime decision of the coordination layer (the S+Net view of
	// placement as an extra-functional concern). The splitter emits
	// untagged sections; the indexed placement combinator dispatches each
	// one through a fresh solver replica on the node the placement policy
	// (default core.LeastLoaded) picks at that moment, and solver
	// executions queued on a busy node may be claimed by an idle node
	// (work stealing), with the migrated section charged to the cluster's
	// transfer-cost model.
	DynamicSteal
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Static:
		return "S-Net Static"
	case Static2CPU:
		return "S-Net Static 2CPU"
	case Dynamic:
		return "S-Net Dynamic"
	case DynamicSteal:
		return "S-Net Dynamic Steal"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// Policy selects how the splitter sizes sections in Dynamic mode.
type Policy int

// Section scheduling policies from Section V.
const (
	// BlockPolicy divides the image into equal sections.
	BlockPolicy Policy = iota
	// FactoringPolicy uses the paper's simple factoring variant
	// (factor 3, two batches).
	FactoringPolicy
)

// String names the policy.
func (p Policy) String() string {
	if p == FactoringPolicy {
		return "factoring"
	}
	return "block"
}

// Config parameterizes a coordinated render.
type Config struct {
	Scene *raytrace.Scene
	W, H  int
	// Nodes is the cluster size; CPUs the per-node CPU slots.
	Nodes int
	CPUs  int
	// Tasks is the number of sections the splitter creates.
	Tasks int
	// Tokens is the number of node tokens circulating in Dynamic mode;
	// ignored otherwise.
	Tokens int
	Mode   Mode
	Policy Policy
	// Placer overrides the placement policy the runtime's dynamic
	// placement sites use. Nil keeps the mode's default: static tag
	// placement for the paper's designs, core.LeastLoaded for
	// DynamicSteal.
	Placer core.Placer
	// SolveScale models paper-scale sections on a reduced bench render:
	// when above 1, the solver renders its section (taking w wall time)
	// and then sleeps (SolveScale-1)·w while still holding its node's CPU
	// slot, so the cluster's resource model sees every section at
	// SolveScale× its real cost — with the scene's real skew preserved.
	// Scheduling quality then shows up in wall time on any host, even one
	// whose core count cannot physically parallelize the real render (see
	// docs/performance.md, "Scheduling & placement"). 0 or 1 disables.
	SolveScale int
	// Cluster, when non-nil, is used instead of a fresh one (lets callers
	// share a platform between variants or inject network delays).
	Cluster *dist.Cluster
	// Platform, when non-nil, overrides Cluster entirely: the render runs
	// on this platform — e.g. a wire.Cluster whose CPU slots live in
	// other OS processes. Result.Cluster is populated when the platform
	// has a Stats() dist.Stats method (wire.Cluster and dist.Cluster do).
	Platform core.Platform
	// Optimize selects the instantiation-time network optimizer level
	// (core.Optimize). The zero value enables it; core.OptimizeOff
	// renders on the network exactly as compiled.
	Optimize core.OptimizeLevel
	// Durability, when non-nil, journals the render's input record to
	// disk before it enters the network and acknowledges it only when the
	// whole derivation tree — every section, chunk, and the final picture
	// — has completed (core.Options.Durability). A render killed
	// mid-flight leaves the input unacknowledged; the next render over
	// the same directory replays it with Recover. The journal needs an
	// Ext codec that can encode the scene field — wireapp.RaytraceExt
	// provides one keyed by SceneSpec (use the spec's cached scene as
	// Config.Scene so journal and render agree).
	Durability *core.Durability
	// Recover, with Durability set, replays the journal's unacknowledged
	// inputs into the fresh render. When the journal holds a crashed
	// render's input, the replay IS the render and the configured scene
	// input is not re-sent; with a clean journal the render proceeds
	// normally. Result.Recovered reports which happened.
	Recover bool
	// BoxRetry is the per-box failure policy (core.Options.BoxRetry): the
	// zero value reports failures and lets partial emissions flow; with
	// Attempts >= 1, failed executions are retried with backoff and
	// exhausted records land in Result.DeadLetters.
	BoxRetry core.BoxRetry
}

// MergerSource is the paper's Fig. 3 merger network, verbatim.
const MergerSource = `
net merger
{
    box init  ( (chunk, <fst>) -> (pic));
    box merge ( (chunk, pic) -> (pic));
} connect
    ( ( init .. [ {} -> {<cnt=1>} ] )
      | []
    )
    .. ( [| {pic}, {chunk} |]
         .. ( ( merge
                .. [ {<cnt>} -> {<cnt+=1>}]
              )
              | []
            )
       )*{<tasks> == <cnt>} ;
`

// StaticSource is the paper's Fig. 2 static fork–join network, verbatim.
const StaticSource = `
net raytracing_stat
{
    box splitter( (scene, <nodes>, <tasks>)
                  -> (scene, sect, <node>, <tasks>, <fst>)
                   | (scene, sect, <node>, <tasks> ));
    box solver ( (scene, sect) -> (chunk));
    net merger ( (chunk, <fst>) -> (pic),
                 (chunk) -> (pic));
    box genImg ( (pic) -> ());
} connect
    splitter .. solver!@<node> .. merger .. genImg
`

// Static2CPUSource is the Section V refinement: "by adding one more index
// split combinator to the solver of Fig. 2 ((solver!<cpu>)!@<node>) and
// marking input data with a <cpu> tag of values 0 and 1".
const Static2CPUSource = `
net raytracing_stat2
{
    box splitter( (scene, <nodes>, <tasks>)
                  -> (scene, sect, <node>, <cpu>, <tasks>, <fst>)
                   | (scene, sect, <node>, <cpu>, <tasks> ));
    box solver ( (scene, sect) -> (chunk));
    net merger ( (chunk, <fst>) -> (pic),
                 (chunk) -> (pic));
    box genImg ( (pic) -> ());
} connect
    splitter .. (solver!<cpu>)!@<node> .. merger .. genImg
`

// DynamicSource is the Fig. 4 dynamically scheduled network. The chunk/token
// filter deviates from the paper's figure in one respect, documented in
// EXPERIMENTS.md: a choice of two filters routes the <fst> tag explicitly
// with the chunk, because under faithful flow-inheritance semantics the
// figure's single filter would attach <fst> to the recycled node token and
// the merger's init box would fire twice.
const DynamicSource = `
net raytracing_dyn
{
    box splitter( (scene, <nodes>, <tasks>)
                  -> (scene, sect, <node>, <tasks>, <fst>)
                   | (scene, sect, <node>, <tasks> )
                   | (scene, sect, <tasks>, <fst>)
                   | (scene, sect, <tasks> ));
    box solve ( (scene, sect) -> (chunk));
    net merger ( (chunk, <fst>) -> (pic),
                 (chunk) -> (pic));
    box genImg ( (pic) -> ());
} connect
    splitter
    .. ( ( ( solve .. ( [ {chunk, <node>, <fst>}
                          -> {chunk, <fst>}; {<node>} ]
                        | [ {chunk, <node>}
                            -> {chunk}; {<node>} ] )
           )!@<node>
           | []
         )
         .. ( [] | [| {sect}, {<node>} |] )
       ) * {chunk}
    .. merger .. genImg
`

// StealSource is the load-aware network of the DynamicSteal mode: the
// static fork–join of Fig. 2, but the splitter no longer stamps <node>
// tags — its sections leave untagged, and the placement combinator
// !@<node> resolves each one's node at dispatch time through the
// configured placement policy (an extra-functional scheduling decision,
// invisible in the network structure). Work stealing then lets sections
// queued on a busy node migrate to idle ones.
const StealSource = `
net raytracing_steal
{
    box splitter( (scene, <nodes>, <tasks>)
                  -> (scene, sect, <tasks>, <fst>)
                   | (scene, sect, <tasks> ));
    box solver ( (scene, sect) -> (chunk));
    net merger ( (chunk, <fst>) -> (pic),
                 (chunk) -> (pic));
    box genImg ( (pic) -> ());
} connect
    splitter .. solver!@<node> .. merger .. genImg
`

// The application's label vocabulary, interned once: box bodies run per
// section per render, so they use the symbol-keyed record API.
var (
	symScene = record.Intern("scene")
	symSect  = record.Intern("sect")
	symChunk = record.Intern("chunk")
	symPic   = record.Intern("pic")
	symNodes = record.Intern("nodes")
	symTasks = record.Intern("tasks")
	symNode  = record.Intern("node")
	symCPU   = record.Intern("cpu")
	symFst   = record.Intern("fst")
)

// imageSink collects the pictures genImg delivers.
type imageSink struct {
	mu   sync.Mutex
	pics []*raytrace.Image
}

func (s *imageSink) add(img *raytrace.Image) {
	s.mu.Lock()
	s.pics = append(s.pics, img)
	s.mu.Unlock()
}

// spans returns the section spans for the config.
func (cfg *Config) spans() ([]sched.Span, error) {
	if (cfg.Mode == Dynamic || cfg.Mode == DynamicSteal) && cfg.Policy == FactoringPolicy {
		return sched.PaperFactoring(cfg.H, cfg.Tasks)
	}
	return sched.Block(cfg.H, cfg.Tasks), nil
}

// registry builds the box registry for the config, delivering final images
// to the sink.
func (cfg *Config) registry(sink *imageSink) (*compile.Registry, error) {
	spans, err := cfg.spans()
	if err != nil {
		return nil, err
	}
	reg := compile.NewRegistry()
	reg.RegisterBox("splitter", func(c *core.BoxCall) error {
		scene := c.FieldSym(symScene).(*raytrace.Scene)
		nodes := c.TagSym(symNodes)
		tasks := c.TagSym(symTasks)
		if nodes <= 0 || tasks <= 0 || tasks != len(spans) {
			return fmt.Errorf("splitter: inconsistent nodes=%d tasks=%d spans=%d",
				nodes, tasks, len(spans))
		}
		for i, span := range spans {
			r := c.NewRecord().
				SetFieldSym(symScene, scene).
				SetFieldSym(symSect, raytrace.Section{Index: i, W: cfg.W, H: cfg.H, Y0: span.Lo, Y1: span.Hi}).
				SetTagSym(symTasks, tasks)
			if i == 0 {
				r.SetTagSym(symFst, 1)
			}
			switch cfg.Mode {
			case Static:
				r.SetTagSym(symNode, i%nodes)
			case Static2CPU:
				r.SetTagSym(symNode, i%nodes)
				r.SetTagSym(symCPU, (i/nodes)%cfg.CPUs)
			case Dynamic:
				// The first `tokens` sections carry distinct node-token
				// values; the platform maps value→node modulo Nodes, so
				// 16 tokens on 8 nodes give two solver instances per
				// node, one per CPU — the paper's sweet spot.
				if i < cfg.Tokens {
					r.SetTagSym(symNode, i)
				}
			case DynamicSteal:
				// Untagged: placement is the runtime scheduler's call.
			}
			c.Emit(r)
		}
		return nil
	})
	solve := SolverBox(cfg.SolveScale)
	reg.RegisterBox("solver", solve)
	reg.RegisterBox("solve", solve)
	reg.RegisterBox("init", func(c *core.BoxCall) error {
		chunk := c.FieldSym(symChunk).(raytrace.Chunk)
		img := raytrace.NewImage(chunk.W, chunk.H)
		img.SetChunk(chunk)
		c.Emit(c.NewRecord().SetFieldSym(symPic, img))
		return nil
	})
	reg.RegisterBox("merge", func(c *core.BoxCall) error {
		chunk := c.FieldSym(symChunk).(raytrace.Chunk)
		pic := c.FieldSym(symPic).(*raytrace.Image)
		c.Emit(c.NewRecord().SetFieldSym(symPic, pic.Merge(chunk)))
		return nil
	})
	reg.RegisterBox("genImg", func(c *core.BoxCall) error {
		sink.add(c.FieldSym(symPic).(*raytrace.Image))
		return nil
	})
	return reg, nil
}

// SolverBox returns the compute box's body — render one section, emit one
// chunk — parameterized by the SolveScale cost model. It is exported so a
// wire worker process (cmd/snetd) can register the identical body that the
// coordinator's network would run, making in-process and multi-process
// renders pixel-identical by construction.
func SolverBox(solveScale int) core.BoxFunc {
	return func(c *core.BoxCall) error {
		scene := c.FieldSym(symScene).(*raytrace.Scene)
		sect := c.FieldSym(symSect).(raytrace.Section)
		var start time.Time
		if solveScale > 1 {
			start = time.Now()
		}
		chunk, _ := raytrace.RenderSection(scene, sect)
		if solveScale > 1 {
			// Model the paper-scale section: keep the CPU slot for
			// (scale-1)× the real render time, preserving the scene's
			// per-section cost skew in the cluster's resource model.
			time.Sleep(time.Duration(solveScale-1) * time.Since(start))
		}
		c.Emit(c.NewRecord().SetFieldSym(symChunk, chunk))
		return nil
	}
}

// WorkerBoxes is the box table a worker process registers to serve renders:
// the compute boxes under both names the network sources use. The
// coordination boxes (splitter, merger, genImg) stay coordinator-resident.
func WorkerBoxes(solveScale int) map[string]core.BoxFunc {
	solve := SolverBox(solveScale)
	return map[string]core.BoxFunc{"solver": solve, "solve": solve}
}

// source returns the S-Net source text for the mode.
func (cfg *Config) source() string {
	switch cfg.Mode {
	case Static2CPU:
		return Static2CPUSource
	case Dynamic:
		return DynamicSource
	case DynamicSteal:
		return StealSource
	default:
		return StaticSource
	}
}

// progCache memoizes the parsed form of the (constant) network sources:
// renders recompile against their own registry, but the AST is immutable
// and shared, so the front end runs once per source text per process.
var progCache sync.Map // source text -> *lang.Program

func parsedSource(src string) (*lang.Program, error) {
	if p, ok := progCache.Load(src); ok {
		return p.(*lang.Program), nil
	}
	p, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	actual, _ := progCache.LoadOrStore(src, p)
	return actual.(*lang.Program), nil
}

// Build compiles the configured network, returning the toplevel entity and
// the sink that will receive the final image.
func (cfg *Config) build() (*core.Entity, *imageSink, error) {
	sink := &imageSink{}
	reg, err := cfg.registry(sink)
	if err != nil {
		return nil, nil, err
	}
	mergerProg, err := parsedSource(MergerSource)
	if err != nil {
		return nil, nil, fmt.Errorf("snetray: merger: %w", err)
	}
	mergerRes, err := compile.Program(mergerProg, reg)
	if err != nil {
		return nil, nil, fmt.Errorf("snetray: merger: %w", err)
	}
	merger, _ := mergerRes.Net("merger")
	reg.RegisterNet("merger", merger)
	prog, err := parsedSource(cfg.source())
	if err != nil {
		return nil, nil, fmt.Errorf("snetray: %w", err)
	}
	res, err := compile.Program(prog, reg)
	if err != nil {
		return nil, nil, fmt.Errorf("snetray: %w", err)
	}
	for _, ent := range res.Nets {
		return ent, sink, nil
	}
	return nil, nil, fmt.Errorf("snetray: no toplevel net compiled")
}

// Result is the outcome of a coordinated render.
type Result struct {
	Image   *raytrace.Image
	Cluster dist.Stats
	// Opt reports what the instantiation-time optimizer did to the
	// compiled network (core.OptStats; zero when Config.Optimize was
	// core.OptimizeOff).
	Opt core.OptStats
	// Recovered counts journal entries replayed into this render
	// (Config.Recover): 0 means a fresh render, 1 means a crashed
	// predecessor's input was replayed instead.
	Recovered int
	// DeadLetters are the records that exhausted Config.BoxRetry, with
	// DeadDropped counting any beyond the runtime's retention cap.
	DeadLetters []core.DeadLetter
	DeadDropped int
}

// Render compiles and runs the configured network on a cluster platform and
// returns the assembled image.
func Render(cfg Config) (*Result, error) {
	return RenderContext(context.Background(), cfg)
}

// RenderContext is Render with a lifetime: when ctx is cancelled before the
// render completes, the coordinated network is stopped — all of its
// goroutines are reclaimed and its queued box executions release their
// cluster CPU slots — and the context's error is returned. Use it to bound
// renders serving interactive requests.
func RenderContext(ctx context.Context, cfg Config) (*Result, error) {
	if cfg.Nodes <= 0 || cfg.CPUs <= 0 {
		return nil, fmt.Errorf("snetray: need positive Nodes and CPUs")
	}
	if cfg.Mode == Dynamic && (cfg.Tokens <= 0 || cfg.Tokens > cfg.Tasks) {
		return nil, fmt.Errorf("snetray: Dynamic mode needs 0 < Tokens <= Tasks")
	}
	ent, sink, err := cfg.build()
	if err != nil {
		return nil, err
	}
	var plat core.Platform
	if cfg.Platform != nil {
		plat = cfg.Platform
	} else {
		cluster := cfg.Cluster
		if cluster == nil {
			cluster = dist.NewCluster(cfg.Nodes, cfg.CPUs)
		}
		plat = cluster
	}
	opts := core.Options{Platform: plat, Placer: cfg.Placer, Optimize: cfg.Optimize,
		Durability: cfg.Durability, BoxRetry: cfg.BoxRetry}
	if cfg.Mode == DynamicSteal {
		opts.WorkStealing = true
		if opts.Placer == nil {
			opts.Placer = &core.LeastLoaded{}
		}
	}
	if cfg.Recover && cfg.Durability == nil {
		return nil, fmt.Errorf("snetray: Recover needs Durability")
	}
	net := core.NewNetwork(ent, opts)
	input := record.Build().
		F("scene", cfg.Scene).
		T("nodes", cfg.Nodes).
		T("tasks", cfg.Tasks).
		Rec()
	inst := net.Start()
	unwatch := context.AfterFunc(ctx, func() { inst.Stop() })
	defer unwatch()
	recovered := 0
	if cfg.Recover {
		n, err := inst.Recover(cfg.Durability.Dir)
		if err != nil {
			inst.Stop()
			return nil, fmt.Errorf("snetray: %w", err)
		}
		recovered = n
	}
	go func() {
		// A replayed input IS the render: re-sending the configured one
		// would run the image twice and confuse the merger's task count.
		if recovered == 0 {
			inst.Send(input)
		}
		inst.CloseIn()
	}()
	leaked := 0
	//lint:reason collection drain: the feeder closes In (or ctx cancellation stops the instance), so the cascade closes Out in finite time
	for range inst.Out {
		leaked++
	}
	err = inst.Close()
	if ctx.Err() != nil {
		return nil, fmt.Errorf("snetray: %w", ctx.Err())
	}
	if err != nil {
		return nil, err
	}
	if leaked != 0 {
		return nil, fmt.Errorf("snetray: network leaked %d records past genImg", leaked)
	}
	sink.mu.Lock()
	defer sink.mu.Unlock()
	if len(sink.pics) != 1 {
		return nil, fmt.Errorf("snetray: genImg received %d pictures, want 1", len(sink.pics))
	}
	res := &Result{Image: sink.pics[0], Opt: net.OptStats(), Recovered: recovered}
	res.DeadLetters, res.DeadDropped = inst.DeadLetters()
	if s, ok := plat.(interface{ Stats() dist.Stats }); ok {
		res.Cluster = s.Stats()
	}
	return res, nil
}
