package snetray

import (
	"strings"
	"testing"

	"snet/internal/core"
	"snet/internal/dist"
	"snet/internal/mpiray"
	"snet/internal/raytrace"
	"snet/internal/sched"
)

const testW, testH = 40, 32

func reference(t *testing.T, scene *raytrace.Scene) *raytrace.Image {
	t.Helper()
	img, _ := raytrace.Render(scene, testW, testH)
	return img
}

func TestStaticRenderMatchesSequential(t *testing.T) {
	scene := raytrace.BalancedScene(30, 1)
	want := reference(t, scene)
	res, err := Render(Config{
		Scene: scene, W: testW, H: testH,
		Nodes: 4, CPUs: 1, Tasks: 8, Mode: Static,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Image.Equal(want) {
		t.Fatal("static S-Net image differs from sequential render")
	}
	// every node must have executed at least one solver call
	for n, e := range res.Cluster.Execs {
		if e == 0 {
			t.Fatalf("node %d idle: %v", n, res.Cluster.Execs)
		}
	}
	if res.Cluster.Transfers == 0 {
		t.Fatal("no transfers accounted for placed solvers")
	}
}

func TestStatic2CPURenderMatchesSequential(t *testing.T) {
	scene := raytrace.UnbalancedScene(40, 2)
	want := reference(t, scene)
	res, err := Render(Config{
		Scene: scene, W: testW, H: testH,
		Nodes: 2, CPUs: 2, Tasks: 8, Mode: Static2CPU,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Image.Equal(want) {
		t.Fatal("static 2CPU image differs")
	}
}

func TestDynamicRenderMatchesSequential(t *testing.T) {
	scene := raytrace.UnbalancedScene(50, 3)
	want := reference(t, scene)
	for _, policy := range []Policy{BlockPolicy, FactoringPolicy} {
		res, err := Render(Config{
			Scene: scene, W: testW, H: testH,
			Nodes: 4, CPUs: 2, Tasks: 8, Tokens: 4,
			Mode: Dynamic, Policy: policy,
		})
		if err != nil {
			t.Fatalf("%s: %v", policy, err)
		}
		if !res.Image.Equal(want) {
			t.Fatalf("%s: dynamic image differs", policy)
		}
	}
}

// TestDynamicStealRenderMatchesSequential verifies the load-aware design:
// untagged sections placed at dispatch time, work stealing on, the image
// still exactly matches the sequential render, and the steal counters stay
// consistent. (Whether a steal actually fires during a real render is a
// timing race — guaranteed-steal coverage lives in internal/dist's
// ExecStealable tests, and the skewed benchmarks record steals_op as the
// engagement evidence.)
func TestDynamicStealRenderMatchesSequential(t *testing.T) {
	scene := raytrace.SkewedScene(40, 2)
	want := reference(t, scene)
	res, err := Render(Config{
		Scene: scene, W: testW, H: testH,
		Nodes: 4, CPUs: 1, Tasks: 16, Mode: DynamicSteal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Image.Equal(want) {
		t.Fatal("dynamic-steal image differs from sequential render")
	}
	total := int64(0)
	for _, e := range res.Cluster.Execs {
		total += e
	}
	if total == 0 {
		t.Fatal("no executions accounted")
	}
	if res.Cluster.Migrated != res.Cluster.Steals {
		t.Fatalf("migrated=%d steals=%d; every steal of a box execution migrates its record",
			res.Cluster.Migrated, res.Cluster.Steals)
	}
	if res.Cluster.Migrated > res.Cluster.Transfers {
		t.Fatalf("migrated=%d > transfers=%d; migrations must be counted as record hops",
			res.Cluster.Migrated, res.Cluster.Transfers)
	}
	// SolveScale must not change the image either (it only stretches the
	// resource model's notion of section cost).
	res2, err := Render(Config{
		Scene: scene, W: testW, H: testH,
		Nodes: 2, CPUs: 2, Tasks: 8, Mode: DynamicSteal, SolveScale: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Image.Equal(want) {
		t.Fatal("scaled dynamic-steal image differs from sequential render")
	}
}

func TestDynamicTokenSweepCompletes(t *testing.T) {
	scene := raytrace.UnbalancedScene(30, 4)
	want := reference(t, scene)
	for _, tokens := range []int{1, 3, 6, 12} {
		res, err := Render(Config{
			Scene: scene, W: testW, H: testH,
			Nodes: 3, CPUs: 2, Tasks: 12, Tokens: tokens,
			Mode: Dynamic, Policy: BlockPolicy,
		})
		if err != nil {
			t.Fatalf("tokens=%d: %v", tokens, err)
		}
		if !res.Image.Equal(want) {
			t.Fatalf("tokens=%d: image differs", tokens)
		}
	}
}

func TestRenderValidation(t *testing.T) {
	scene := raytrace.BalancedScene(5, 1)
	if _, err := Render(Config{Scene: scene, W: 8, H: 8, Nodes: 0, CPUs: 1, Tasks: 2}); err == nil {
		t.Fatal("Nodes=0 should error")
	}
	if _, err := Render(Config{
		Scene: scene, W: 8, H: 8, Nodes: 1, CPUs: 1, Tasks: 2, Mode: Dynamic, Tokens: 0,
	}); err == nil {
		t.Fatal("Dynamic with Tokens=0 should error")
	}
	if _, err := Render(Config{
		Scene: scene, W: 8, H: 8, Nodes: 1, CPUs: 1, Tasks: 2, Mode: Dynamic, Tokens: 5,
	}); err == nil {
		t.Fatal("Tokens > Tasks should error")
	}
}

func TestFactoringRequiresDivisibleTasks(t *testing.T) {
	scene := raytrace.BalancedScene(5, 1)
	_, err := Render(Config{
		Scene: scene, W: 8, H: 8, Nodes: 1, CPUs: 1, Tasks: 7, Tokens: 3,
		Mode: Dynamic, Policy: FactoringPolicy,
	})
	if err == nil || !strings.Contains(err.Error(), "divisible") {
		t.Fatalf("err = %v", err)
	}
}

func TestSharedClusterAccumulates(t *testing.T) {
	scene := raytrace.BalancedScene(10, 6)
	cluster := dist.NewCluster(2, 1)
	for i := 0; i < 2; i++ {
		if _, err := Render(Config{
			Scene: scene, W: testW, H: testH,
			Nodes: 2, CPUs: 1, Tasks: 4, Mode: Static, Cluster: cluster,
		}); err != nil {
			t.Fatal(err)
		}
	}
	// Per run: 1 splitter + 4 solvers + 1 init + 3 merges + 1 genImg = 10
	// box executions; two runs on the shared cluster accumulate 20.
	var total int64
	for _, e := range cluster.Stats().Execs {
		total += e
	}
	if total != 20 {
		t.Fatalf("shared cluster execs = %d, want 20", total)
	}
}

func TestModeAndPolicyStrings(t *testing.T) {
	if Static.String() != "S-Net Static" || Static2CPU.String() != "S-Net Static 2CPU" ||
		Dynamic.String() != "S-Net Dynamic" {
		t.Fatal("mode strings wrong")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode empty")
	}
	if BlockPolicy.String() != "block" || FactoringPolicy.String() != "factoring" {
		t.Fatal("policy strings wrong")
	}
}

func TestDynamicUsesAllNodesWhenTokensSpan(t *testing.T) {
	scene := raytrace.UnbalancedScene(40, 8)
	res, err := Render(Config{
		Scene: scene, W: testW, H: testH,
		Nodes: 4, CPUs: 2, Tasks: 16, Tokens: 8,
		Mode: Dynamic, Policy: BlockPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	for n, e := range res.Cluster.Execs {
		if e == 0 {
			t.Fatalf("node %d never executed: %v", n, res.Cluster.Execs)
		}
	}
}

// TestOptimizerPixelEquality is the application-level differential check:
// the fused, flattened render network must produce a pixel-identical image
// to the un-optimized instantiation of the same network (the end-to-end
// counterpart of internal/netdiff's record-level harness).
func TestOptimizerPixelEquality(t *testing.T) {
	scene := raytrace.BalancedScene(30, 1)
	base := Config{
		Scene: scene, W: testW, H: testH,
		Nodes: 4, CPUs: 1, Tasks: 8, Mode: Static,
	}
	off := base
	off.Optimize = core.OptimizeOff
	refRes, err := Render(off)
	if err != nil {
		t.Fatal(err)
	}
	optRes, err := Render(base)
	if err != nil {
		t.Fatal(err)
	}
	if !optRes.Image.Equal(refRes.Image) {
		t.Fatal("optimized render differs from OptimizeOff render")
	}
	if !optRes.Opt.Enabled {
		t.Fatalf("optimizer stats not recorded: %+v", optRes.Opt)
	}
	if optRes.Opt.EntitiesAfter >= optRes.Opt.EntitiesBefore {
		t.Fatalf("optimizer did not shrink the render network: %+v", optRes.Opt)
	}
}

// TestCrossImplementationAgreement checks that the S-Net-coordinated
// renderer and the message-passing master/worker baseline produce
// pixel-identical images from the same kernel — the property that makes the
// paper's performance comparison meaningful.
func TestCrossImplementationAgreement(t *testing.T) {
	scene := raytrace.UnbalancedScene(60, 13)
	snetRes, err := Render(Config{
		Scene: scene, W: testW, H: testH,
		Nodes: 4, CPUs: 2, Tasks: 12, Tokens: 6,
		Mode: Dynamic, Policy: BlockPolicy,
	})
	if err != nil {
		t.Fatal(err)
	}
	mpiImg, _, err := mpiray.RenderMasterWorker(scene, testW, testH,
		sched.Block(testH, 12), mpiray.Options{Procs: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !snetRes.Image.Equal(mpiImg) {
		t.Fatal("S-Net and MPI renders differ")
	}
}
