// Package raytrace implements the Whitted ray tracer from the paper's
// Section II: primary rays cast through every pixel of the image plane,
// tested against a Goldsmith–Salmon bounding-volume hierarchy, with
// reflective, refractive (transmitted) and shadow secondary rays, up to a
// maximum ray depth.
package raytrace

import "snet/internal/geom"

// Material describes how a surface interacts with light (Phong shading
// plus Whitted-style reflection and transmission).
type Material struct {
	// Color is the surface's diffuse base colour.
	Color geom.Vec3
	// Diffuse scales Lambertian reflection.
	Diffuse float64
	// Specular scales the Phong highlight.
	Specular float64
	// Shininess is the Phong exponent.
	Shininess float64
	// Reflectivity scales the contribution of the reflected ray R1.
	Reflectivity float64
	// Transparency scales the contribution of the transmitted ray T1.
	Transparency float64
	// IOR is the index of refraction used by transmitted rays.
	IOR float64
}

// Matte returns a purely diffuse material.
func Matte(color geom.Vec3) Material {
	return Material{Color: color, Diffuse: 0.9, Specular: 0.2, Shininess: 16}
}

// Shiny returns a reflective material of the given colour.
func Shiny(color geom.Vec3, reflect float64) Material {
	return Material{
		Color: color, Diffuse: 0.6, Specular: 0.8, Shininess: 64,
		Reflectivity: reflect,
	}
}

// Glass returns a transparent, refractive material.
func Glass(tint geom.Vec3) Material {
	return Material{
		Color: tint, Diffuse: 0.1, Specular: 1, Shininess: 128,
		Reflectivity: 0.1, Transparency: 0.9, IOR: 1.5,
	}
}

// Light is a point light source.
type Light struct {
	Pos       geom.Vec3
	Intensity geom.Vec3
}
