package raytrace

import (
	"fmt"

	"snet/internal/geom"
)

// Stats counts the work a tracer performed; the counters are deterministic
// for a fixed scene and section, which is what makes them usable as the
// cost measure of the cluster simulator (internal/simnet).
type Stats struct {
	PrimaryRays   int64
	SecondaryRays int64
	ShadowRays    int64
	NodeVisits    int64
	ObjectTests   int64
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.PrimaryRays += other.PrimaryRays
	s.SecondaryRays += other.SecondaryRays
	s.ShadowRays += other.ShadowRays
	s.NodeVisits += other.NodeVisits
	s.ObjectTests += other.ObjectTests
}

// Cost collapses the counters into a single abstract work measure
// (approximately proportional to wall-clock on a scalar CPU).
func (s Stats) Cost() float64 {
	return float64(s.NodeVisits) + 4*float64(s.ObjectTests) +
		2*float64(s.PrimaryRays+s.SecondaryRays+s.ShadowRays)
}

// Tracer renders pixels of one scene; it is cheap to create and NOT safe
// for concurrent use (each goroutine uses its own Tracer, in keeping with
// the stateless-box discipline).
type Tracer struct {
	Scene *Scene
	Stats Stats
}

// NewTracer returns a tracer over the scene.
func NewTracer(s *Scene) *Tracer { return &Tracer{Scene: s} }

// cast finds the closest intersection among BVH objects and unbounded
// planes — the paper's Cast function traversing the BVH.
func (t *Tracer) cast(r geom.Ray) (Hit, bool) {
	const tMin, tMax = 1e-6, 1e18
	best, found := t.Scene.BVH.Intersect(r, tMin, tMax, &t.Stats)
	limit := tMax
	if found {
		limit = best.T
	}
	for _, p := range t.Scene.Unbounded {
		t.Stats.ObjectTests++
		if h, ok := p.Intersect(r, tMin, limit); ok {
			best = h
			limit = h.T
			found = true
		}
	}
	return best, found
}

// occluded reports whether an opaque object blocks the segment of length
// dist along the shadow ray.
func (t *Tracer) occluded(r geom.Ray, dist float64) bool {
	t.Stats.ShadowRays++
	if _, ok := t.Scene.BVH.Occluded(r, 1e-6, dist, &t.Stats); ok {
		return true
	}
	for _, p := range t.Scene.Unbounded {
		t.Stats.ObjectTests++
		if h, ok := p.Intersect(r, 1e-6, dist); ok && h.Mat.Transparency == 0 {
			return true
		}
	}
	return false
}

// Trace follows a ray and decides the shade of a pixel — the paper's
// Algorithm 2: if depth allows, cast the ray; on a hit, shade considering
// reflective, refractive and shadow interactions; otherwise the background.
func (t *Tracer) Trace(r geom.Ray, depth int) geom.Vec3 {
	if depth >= t.Scene.maxDepth() {
		return t.Scene.Background
	}
	hit, ok := t.cast(r)
	if !ok {
		return t.Scene.Background
	}
	return t.shade(r, hit, depth)
}

// shade implements the paper's Shader: Phong direct lighting with shadow
// rays S1, plus recursive reflection R1 and transmission T1.
func (t *Tracer) shade(r geom.Ray, h Hit, depth int) geom.Vec3 {
	mat := h.Mat
	color := t.Scene.Ambient.Mul(mat.Color)

	for _, l := range t.Scene.Lights {
		toLight := l.Pos.Sub(h.Point)
		dist := toLight.Len()
		dir := toLight.Scale(1 / dist)
		if t.occluded(geom.Ray{Origin: h.Point, Dir: dir}, dist) {
			continue
		}
		nDotL := h.Normal.Dot(dir)
		if nDotL > 0 {
			color = color.Add(mat.Color.Mul(l.Intensity).Scale(mat.Diffuse * nDotL))
			half := dir.Sub(r.Dir).Normalize()
			spec := h.Normal.Dot(half)
			if spec > 0 && mat.Specular > 0 {
				color = color.Add(l.Intensity.Scale(mat.Specular * pow(spec, mat.Shininess)))
			}
		}
	}

	if mat.Reflectivity > 0 {
		t.Stats.SecondaryRays++
		refl := geom.Ray{Origin: h.Point, Dir: r.Dir.Reflect(h.Normal)}
		color = color.Add(t.Trace(refl, depth+1).Scale(mat.Reflectivity))
	}
	if mat.Transparency > 0 {
		eta := 1 / mat.IOR
		if h.Inside {
			eta = mat.IOR
		}
		if dir, ok := r.Dir.Refract(h.Normal, eta); ok {
			t.Stats.SecondaryRays++
			refr := geom.Ray{Origin: h.Point, Dir: dir}
			color = color.Add(t.Trace(refr, depth+1).Scale(mat.Transparency))
		} else {
			// total internal reflection
			t.Stats.SecondaryRays++
			refl := geom.Ray{Origin: h.Point, Dir: r.Dir.Reflect(h.Normal)}
			color = color.Add(t.Trace(refl, depth+1).Scale(mat.Transparency))
		}
	}
	return color
}

// pow is an exponentiation-by-squaring for small integral Phong exponents
// with a float fallback; Phong exponents are whole numbers in this package.
func pow(base, exp float64) float64 {
	n := int(exp)
	result := 1.0
	for i := 0; i < n; i++ {
		result *= base
	}
	return result
}

// Pixel renders the pixel (x, y) of a w×h image — one primary ray per
// pixel, as in the paper's Algorithm 1.
func (t *Tracer) Pixel(x, y, w, h int) geom.Vec3 {
	t.Stats.PrimaryRays++
	r := t.Scene.Camera.ray(float64(x), float64(y), w, h)
	return t.Trace(r, 0).Clamp01()
}

// Section is a horizontal band of the image: rows [Y0, Y1). It is the unit
// of work the splitter distributes to solvers.
type Section struct {
	Index  int // section number within the image
	W, H   int // full image dimensions
	Y0, Y1 int // row range [Y0, Y1)
}

// Rows returns the number of rows in the section.
func (s Section) Rows() int { return s.Y1 - s.Y0 }

// String renders the section for diagnostics.
func (s Section) String() string {
	return fmt.Sprintf("section %d rows [%d,%d) of %dx%d", s.Index, s.Y0, s.Y1, s.W, s.H)
}

// Chunk is a rendered section: RGB bytes for rows [Y0, Y1), exactly what
// the solver box sends back to the merger.
type Chunk struct {
	Section
	Pix []byte // 3 bytes per pixel, row-major, len = 3*W*Rows()
}

// ByteSize declares the chunk's wire size — the pixel payload plus a fixed
// section header — following the mpi.ByteSizer convention, so the cluster
// platform and the MPI baseline charge identical bytes for chunk traffic.
func (c Chunk) ByteSize() int { return len(c.Pix) + 32 }

// RenderSection renders one section of the image and returns the chunk
// plus the work statistics.
func RenderSection(s *Scene, sec Section) (Chunk, Stats) {
	tr := NewTracer(s)
	pix := make([]byte, 3*sec.W*sec.Rows())
	i := 0
	for y := sec.Y0; y < sec.Y1; y++ {
		for x := 0; x < sec.W; x++ {
			c := tr.Pixel(x, y, sec.W, sec.H)
			pix[i] = byte(c.X*255 + 0.5)
			pix[i+1] = byte(c.Y*255 + 0.5)
			pix[i+2] = byte(c.Z*255 + 0.5)
			i += 3
		}
	}
	return Chunk{Section: sec, Pix: pix}, tr.Stats
}

// Render renders the whole image sequentially (the reference path used by
// tests and by the MPI baseline's per-rank work loop).
func Render(s *Scene, w, h int) (*Image, Stats) {
	img := NewImage(w, h)
	chunk, stats := RenderSection(s, Section{W: w, H: h, Y0: 0, Y1: h})
	img.SetChunk(chunk)
	return img, stats
}

// RowCosts renders every row of a w×h image and returns each row's
// abstract cost (Stats.Cost). The simulator uses this profile as ground
// truth for section service times.
func RowCosts(s *Scene, w, h int) []float64 {
	costs := make([]float64, h)
	for y := 0; y < h; y++ {
		_, st := RenderSection(s, Section{W: w, H: h, Y0: y, Y1: y + 1})
		costs[y] = st.Cost()
	}
	return costs
}
