package raytrace

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"snet/internal/geom"
)

func TestSphereIntersect(t *testing.T) {
	s := &Sphere{Center: geom.V(0, 0, 5), Radius: 1, Mat: Matte(geom.V(1, 0, 0))}
	h, ok := s.Intersect(geom.NewRay(geom.V(0, 0, 0), geom.V(0, 0, 1)), 0, 1e18)
	if !ok {
		t.Fatal("head-on ray must hit")
	}
	if !almost(h.T, 4) {
		t.Fatalf("T = %g, want 4", h.T)
	}
	if !vecAlmost(h.Normal, geom.V(0, 0, -1)) {
		t.Fatalf("normal = %v", h.Normal)
	}
	if h.Inside {
		t.Fatal("outside hit flagged inside")
	}
	if _, ok := s.Intersect(geom.NewRay(geom.V(0, 3, 0), geom.V(0, 0, 1)), 0, 1e18); ok {
		t.Fatal("offset ray must miss")
	}
}

func TestSphereInsideHit(t *testing.T) {
	s := &Sphere{Center: geom.V(0, 0, 0), Radius: 2, Mat: Glass(geom.V(1, 1, 1))}
	h, ok := s.Intersect(geom.NewRay(geom.V(0, 0, 0), geom.V(0, 0, 1)), 0, 1e18)
	if !ok || !h.Inside {
		t.Fatalf("inside ray: ok=%v inside=%v", ok, h.Inside)
	}
	// normal must face the origin side
	if h.Normal.Dot(geom.V(0, 0, 1)) >= 0 {
		t.Fatalf("inside normal = %v", h.Normal)
	}
}

func TestSphereTMaxRespected(t *testing.T) {
	s := &Sphere{Center: geom.V(0, 0, 5), Radius: 1}
	if _, ok := s.Intersect(geom.NewRay(geom.V(0, 0, 0), geom.V(0, 0, 1)), 0, 3); ok {
		t.Fatal("hit beyond tMax must be rejected")
	}
}

func TestTriangleIntersect(t *testing.T) {
	tri := &Triangle{A: geom.V(-1, -1, 3), B: geom.V(1, -1, 3), C: geom.V(0, 1, 3)}
	if _, ok := tri.Intersect(geom.NewRay(geom.V(0, 0, 0), geom.V(0, 0, 1)), 0, 1e18); !ok {
		t.Fatal("center ray must hit triangle")
	}
	if _, ok := tri.Intersect(geom.NewRay(geom.V(2, 2, 0), geom.V(0, 0, 1)), 0, 1e18); ok {
		t.Fatal("outside ray must miss triangle")
	}
	// Parallel ray misses.
	if _, ok := tri.Intersect(geom.NewRay(geom.V(0, 0, 0), geom.V(1, 0, 0)), 0, 1e18); ok {
		t.Fatal("parallel ray must miss")
	}
	b := tri.Bounds()
	if !b.Contains(geom.V(0, 0, 3)) {
		t.Fatal("triangle bounds wrong")
	}
}

func TestPlaneIntersectAndChecker(t *testing.T) {
	p := &Plane{
		Point: geom.V(0, 0, 0), Normal: geom.V(0, 1, 0),
		Mat: Matte(geom.V(1, 1, 1)), Checker: true, CheckerColor: geom.V(0, 0, 0),
	}
	h1, ok := p.Intersect(geom.NewRay(geom.V(0.5, 1, 0.5), geom.V(0, -1, 0)), 0, 1e18)
	if !ok {
		t.Fatal("downward ray must hit plane")
	}
	h2, ok := p.Intersect(geom.NewRay(geom.V(1.5, 1, 0.5), geom.V(0, -1, 0)), 0, 1e18)
	if !ok {
		t.Fatal("second ray must hit plane")
	}
	if h1.Mat.Color == h2.Mat.Color {
		t.Fatal("checker squares must alternate")
	}
	if _, ok := p.Intersect(geom.NewRay(geom.V(0, 1, 0), geom.V(1, 0, 0)), 0, 1e18); ok {
		t.Fatal("parallel ray must miss plane")
	}
}

func TestBVHInsertAndValidate(t *testing.T) {
	b := &BVH{}
	if ok, why := b.Validate(); !ok {
		t.Fatal(why)
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		b.Insert(randomSphere(rng, geom.V(-10, -10, -10), geom.V(10, 10, 10), 0.1, 0.5))
		if ok, why := b.Validate(); !ok {
			t.Fatalf("after %d inserts: %s", i+1, why)
		}
	}
	if b.Len() != 200 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestBVHDepthReasonable(t *testing.T) {
	// Goldsmith–Salmon insertion on uniform input should produce a tree
	// far shallower than a degenerate list.
	b := &BVH{}
	rng := rand.New(rand.NewSource(7))
	const n = 512
	for i := 0; i < n; i++ {
		b.Insert(randomSphere(rng, geom.V(-10, -10, -10), geom.V(10, 10, 10), 0.1, 0.3))
	}
	depth := b.Depth()
	if depth > 6*int(math.Log2(n)) {
		t.Fatalf("depth %d too large for %d uniform objects", depth, n)
	}
}

func TestBVHIntersectMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	b := &BVH{}
	var objs []Object
	for i := 0; i < 100; i++ {
		s := randomSphere(rng, geom.V(-5, -5, 0), geom.V(5, 5, 10), 0.2, 0.6)
		objs = append(objs, s)
		b.Insert(s)
	}
	for i := 0; i < 200; i++ {
		r := geom.NewRay(
			geom.V(rng.Float64()*10-5, rng.Float64()*10-5, -5),
			geom.V(rng.Float64()-0.5, rng.Float64()-0.5, 1),
		)
		bh, bok := b.Intersect(r, 1e-6, 1e18, nil)
		// brute force
		var fh Hit
		fok := false
		limit := 1e18
		for _, o := range objs {
			if h, ok := o.Intersect(r, 1e-6, limit); ok {
				fh = h
				limit = h.T
				fok = true
			}
		}
		if bok != fok {
			t.Fatalf("ray %d: bvh=%v brute=%v", i, bok, fok)
		}
		if bok && !almost(bh.T, fh.T) {
			t.Fatalf("ray %d: bvh T=%g brute T=%g", i, bh.T, fh.T)
		}
	}
}

func TestBVHEmptyIntersect(t *testing.T) {
	b := &BVH{}
	if _, ok := b.Intersect(geom.NewRay(geom.V(0, 0, 0), geom.V(0, 0, 1)), 0, 1e18, nil); ok {
		t.Fatal("empty BVH must not hit")
	}
	if _, ok := b.Occluded(geom.NewRay(geom.V(0, 0, 0), geom.V(0, 0, 1)), 0, 1e18, nil); ok {
		t.Fatal("empty BVH must not occlude")
	}
}

func TestBVHOccludedSkipsTransparent(t *testing.T) {
	b := &BVH{}
	b.Insert(&Sphere{Center: geom.V(0, 0, 5), Radius: 1, Mat: Glass(geom.V(1, 1, 1))})
	if _, ok := b.Occluded(geom.NewRay(geom.V(0, 0, 0), geom.V(0, 0, 1)), 1e-6, 100, nil); ok {
		t.Fatal("transparent object must not occlude")
	}
	b.Insert(&Sphere{Center: geom.V(0, 0, 3), Radius: 0.5, Mat: Matte(geom.V(1, 0, 0))})
	if _, ok := b.Occluded(geom.NewRay(geom.V(0, 0, 0), geom.V(0, 0, 1)), 1e-6, 100, nil); !ok {
		t.Fatal("opaque object must occlude")
	}
}

func TestPropBVHInvariantHolds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := &BVH{}
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			b.Insert(randomSphere(rng, geom.V(-8, -8, -8), geom.V(8, 8, 8), 0.05, 0.8))
		}
		ok, _ := b.Validate()
		return ok && b.Len() == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropBVHHitAgreesWithBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := &BVH{}
		var objs []Object
		n := 1 + rng.Intn(30)
		for i := 0; i < n; i++ {
			s := randomSphere(rng, geom.V(-5, -5, 0), geom.V(5, 5, 8), 0.2, 0.7)
			objs = append(objs, s)
			b.Insert(s)
		}
		r := geom.NewRay(geom.V(0, 0, -6), geom.V(rng.Float64()-0.5, rng.Float64()-0.5, 1))
		_, bok := b.Intersect(r, 1e-6, 1e18, nil)
		fok := false
		for _, o := range objs {
			if _, ok := o.Intersect(r, 1e-6, 1e18); ok {
				fok = true
				break
			}
		}
		return bok == fok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceBackground(t *testing.T) {
	s := NewScene()
	tr := NewTracer(s)
	c := tr.Pixel(0, 0, 8, 8)
	if !vecAlmost(c, s.Background) {
		t.Fatalf("empty scene pixel = %v, want background", c)
	}
}

func TestTraceDepthLimit(t *testing.T) {
	// Two parallel mirrors: without the depth bound this recurses
	// forever; the trace must terminate and count bounded secondary rays.
	s := NewScene()
	s.MaxRayDepth = 4
	mirror := Material{Color: geom.V(1, 1, 1), Reflectivity: 1}
	s.Add(&Sphere{Center: geom.V(0, 0, 3), Radius: 1, Mat: mirror})
	s.Add(&Sphere{Center: geom.V(0, 0, -3), Radius: 1, Mat: mirror})
	s.Camera.Pos = geom.V(0, 0, 0)
	s.Camera.LookAt = geom.V(0, 0, 1)
	tr := NewTracer(s)
	tr.Pixel(4, 4, 8, 8)
	if tr.Stats.SecondaryRays == 0 {
		t.Fatal("expected secondary rays")
	}
	if tr.Stats.SecondaryRays > 8 {
		t.Fatalf("depth limit not enforced: %d secondary rays", tr.Stats.SecondaryRays)
	}
}

func TestShadowRays(t *testing.T) {
	// A large opaque sphere between the light and the ground darkens the
	// point under it.
	s := NewScene()
	s.Lights = nil
	s.AddLight(Light{Pos: geom.V(0, 10, 0), Intensity: geom.V(1, 1, 1)})
	s.AddPlane(&Plane{Point: geom.V(0, 0, 0), Normal: geom.V(0, 1, 0), Mat: Matte(geom.V(1, 1, 1))})
	tr := NewTracer(s)
	lit := tr.Trace(geom.NewRay(geom.V(0, 1, -3), geom.V(0, -0.5, 1.5)), 0)
	s.Add(&Sphere{Center: geom.V(0, 5, 0), Radius: 2, Mat: Matte(geom.V(1, 0, 0))})
	tr2 := NewTracer(s)
	shadowed := tr2.Trace(geom.NewRay(geom.V(0, 1, -3), geom.V(0, -0.5, 1.5)), 0)
	if shadowed.MaxComponent() >= lit.MaxComponent() {
		t.Fatalf("shadow did not darken: lit=%v shadowed=%v", lit, shadowed)
	}
	if tr2.Stats.ShadowRays == 0 {
		t.Fatal("no shadow rays counted")
	}
}

func TestRenderSectionsComposeToFullImage(t *testing.T) {
	// Rendering in sections must be pixel-identical to rendering whole.
	sc := BalancedScene(40, 11)
	const w, h = 48, 48
	full, _ := Render(sc, w, h)
	img := NewImage(w, h)
	for _, rows := range [][2]int{{0, 13}, {13, 30}, {30, 48}} {
		chunk, _ := RenderSection(sc, Section{W: w, H: h, Y0: rows[0], Y1: rows[1]})
		img.SetChunk(chunk)
	}
	if !img.Equal(full) {
		t.Fatal("sectioned render differs from full render")
	}
}

func TestRenderDeterministic(t *testing.T) {
	sc := UnbalancedScene(60, 42)
	a, sa := Render(sc, 32, 32)
	b, sb := Render(sc, 32, 32)
	if !a.Equal(b) {
		t.Fatal("render not deterministic")
	}
	if sa != sb {
		t.Fatalf("stats not deterministic: %+v vs %+v", sa, sb)
	}
}

func TestUnbalancedSceneIsActuallyUnbalanced(t *testing.T) {
	// The paper's dynamic scheduling story needs real cost skew: the most
	// expensive row must cost several times the cheapest.
	sc := UnbalancedScene(150, 5)
	costs := RowCosts(sc, 32, 32)
	lo, hi := math.Inf(1), 0.0
	for _, c := range costs {
		lo = math.Min(lo, c)
		hi = math.Max(hi, c)
	}
	if hi < 3*lo {
		t.Fatalf("insufficient imbalance: min row cost %g, max %g", lo, hi)
	}
}

func TestBalancedSceneIsRoughlyBalanced(t *testing.T) {
	sc := BalancedScene(80, 5)
	costs := RowCosts(sc, 32, 32)
	var sum float64
	hi, lo := 0.0, math.Inf(1)
	for _, c := range costs {
		sum += c
		hi = math.Max(hi, c)
		lo = math.Min(lo, c)
	}
	mean := sum / float64(len(costs))
	if hi > 6*mean {
		t.Fatalf("balanced scene too skewed: max %g vs mean %g (min %g)", hi, mean, lo)
	}
}

func TestImageChunkPanicsOnWidthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SetChunk with wrong width did not panic")
		}
	}()
	NewImage(10, 10).SetChunk(Chunk{Section: Section{W: 5, Y0: 0, Y1: 1}, Pix: make([]byte, 15)})
}

func TestImageMergePure(t *testing.T) {
	base := NewImage(4, 4)
	chunk := Chunk{Section: Section{W: 4, H: 4, Y0: 1, Y1: 2}, Pix: bytes.Repeat([]byte{9}, 12)}
	merged := base.Merge(chunk)
	if base.Pix[3*4] != 0 {
		t.Fatal("Merge mutated receiver")
	}
	if merged.Pix[3*4] != 9 {
		t.Fatal("Merge did not apply chunk")
	}
}

func TestPPMAndPNGWriters(t *testing.T) {
	sc := BalancedScene(10, 2)
	img, _ := Render(sc, 16, 12)
	var ppm bytes.Buffer
	if err := img.WritePPM(&ppm); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(ppm.Bytes(), []byte("P6\n16 12\n255\n")) {
		t.Fatalf("PPM header wrong: %q", ppm.Bytes()[:20])
	}
	if ppm.Len() != 13+3*16*12 {
		t.Fatalf("PPM size = %d", ppm.Len())
	}
	var png bytes.Buffer
	if err := img.WritePNG(&png); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(png.Bytes(), []byte("\x89PNG")) {
		t.Fatal("PNG magic missing")
	}
}

func TestStatsAddAndCost(t *testing.T) {
	a := Stats{PrimaryRays: 1, SecondaryRays: 2, ShadowRays: 3, NodeVisits: 4, ObjectTests: 5}
	b := a
	a.Add(b)
	if a.PrimaryRays != 2 || a.ObjectTests != 10 {
		t.Fatalf("Add wrong: %+v", a)
	}
	if a.Cost() <= 0 {
		t.Fatal("Cost must be positive")
	}
	if b.Cost()*2 != a.Cost() {
		t.Fatal("Cost must be linear")
	}
}

func TestSectionString(t *testing.T) {
	s := Section{Index: 2, W: 100, H: 80, Y0: 20, Y1: 40}
	if s.Rows() != 20 {
		t.Fatal("Rows")
	}
	if s.String() == "" {
		t.Fatal("String empty")
	}
}

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func vecAlmost(a, b geom.Vec3) bool {
	return almost(a.X, b.X) && almost(a.Y, b.Y) && almost(a.Z, b.Z)
}
