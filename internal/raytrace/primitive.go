package raytrace

import (
	"math"

	"snet/internal/geom"
)

// Hit describes the closest intersection found for a ray.
type Hit struct {
	T      float64
	Point  geom.Vec3
	Normal geom.Vec3 // unit, facing the ray origin side
	Mat    Material
	Inside bool // ray origin was inside the object (refraction bookkeeping)
}

// Object is a finite scene primitive usable inside the BVH.
type Object interface {
	// Bounds returns the object's bounding box (the "bounding volume"
	// inserted into the hierarchy).
	Bounds() geom.AABB
	// Intersect tests the ray against the object within (tMin, tMax) and
	// reports the closest hit, if any.
	Intersect(r geom.Ray, tMin, tMax float64) (Hit, bool)
}

// Sphere is a sphere primitive.
type Sphere struct {
	Center geom.Vec3
	Radius float64
	Mat    Material
}

// Bounds returns the sphere's bounding box.
func (s *Sphere) Bounds() geom.AABB {
	r := geom.V(s.Radius, s.Radius, s.Radius)
	return geom.AABB{Min: s.Center.Sub(r), Max: s.Center.Add(r)}
}

// Intersect solves the quadratic for ray–sphere intersection.
func (s *Sphere) Intersect(r geom.Ray, tMin, tMax float64) (Hit, bool) {
	oc := r.Origin.Sub(s.Center)
	a := r.Dir.Len2()
	halfB := oc.Dot(r.Dir)
	c := oc.Len2() - s.Radius*s.Radius
	disc := halfB*halfB - a*c
	if disc < 0 {
		return Hit{}, false
	}
	sq := math.Sqrt(disc)
	t := (-halfB - sq) / a
	if t <= tMin || t >= tMax {
		t = (-halfB + sq) / a
		if t <= tMin || t >= tMax {
			return Hit{}, false
		}
	}
	p := r.At(t)
	n := p.Sub(s.Center).Scale(1 / s.Radius)
	h := Hit{T: t, Point: p, Normal: n, Mat: s.Mat}
	if r.Dir.Dot(n) > 0 {
		h.Normal = n.Neg()
		h.Inside = true
	}
	return h, true
}

// Triangle is a single-sided triangle primitive (Möller–Trumbore test).
type Triangle struct {
	A, B, C geom.Vec3
	Mat     Material
}

// Bounds returns the triangle's bounding box.
func (t *Triangle) Bounds() geom.AABB {
	return geom.EmptyAABB().Extend(t.A).Extend(t.B).Extend(t.C)
}

// Intersect implements the Möller–Trumbore ray–triangle test.
func (t *Triangle) Intersect(r geom.Ray, tMin, tMax float64) (Hit, bool) {
	const eps = 1e-12
	e1 := t.B.Sub(t.A)
	e2 := t.C.Sub(t.A)
	p := r.Dir.Cross(e2)
	det := e1.Dot(p)
	if math.Abs(det) < eps {
		return Hit{}, false
	}
	inv := 1 / det
	s := r.Origin.Sub(t.A)
	u := s.Dot(p) * inv
	if u < 0 || u > 1 {
		return Hit{}, false
	}
	q := s.Cross(e1)
	v := r.Dir.Dot(q) * inv
	if v < 0 || u+v > 1 {
		return Hit{}, false
	}
	tt := e2.Dot(q) * inv
	if tt <= tMin || tt >= tMax {
		return Hit{}, false
	}
	n := e1.Cross(e2).Normalize()
	h := Hit{T: tt, Point: r.At(tt), Normal: n, Mat: t.Mat}
	if r.Dir.Dot(n) > 0 {
		h.Normal = n.Neg()
		h.Inside = true
	}
	return h, true
}

// Plane is an infinite plane; being unbounded it lives outside the BVH in
// the scene's unbounded-object list.
type Plane struct {
	Point  geom.Vec3
	Normal geom.Vec3
	Mat    Material
	// Checker, when set, alternates Mat.Color with CheckerColor in a 1×1
	// checkerboard — a classic ray-tracing ground plane.
	Checker      bool
	CheckerColor geom.Vec3
}

// Intersect tests the ray against the plane.
func (p *Plane) Intersect(r geom.Ray, tMin, tMax float64) (Hit, bool) {
	n := p.Normal.Normalize()
	denom := r.Dir.Dot(n)
	if math.Abs(denom) < 1e-12 {
		return Hit{}, false
	}
	t := p.Point.Sub(r.Origin).Dot(n) / denom
	if t <= tMin || t >= tMax {
		return Hit{}, false
	}
	pt := r.At(t)
	mat := p.Mat
	if p.Checker {
		ix := int(math.Floor(pt.X)) + int(math.Floor(pt.Z))
		if ix&1 != 0 {
			mat.Color = p.CheckerColor
		}
	}
	h := Hit{T: t, Point: pt, Normal: n, Mat: mat}
	if denom > 0 {
		h.Normal = n.Neg()
	}
	return h, true
}
