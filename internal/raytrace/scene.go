package raytrace

import (
	"math"
	"math/rand"

	"snet/internal/geom"
)

// Camera is a pinhole camera.
type Camera struct {
	Pos    geom.Vec3
	LookAt geom.Vec3
	Up     geom.Vec3
	FOV    float64 // vertical field of view in degrees
}

// ray builds the primary ray through the pixel (x, y) of a w×h image,
// shooting "through each pixel in the image plane" as in the paper's
// Algorithm 1.
func (c Camera) ray(x, y float64, w, h int) geom.Ray {
	forward := c.LookAt.Sub(c.Pos).Normalize()
	right := forward.Cross(c.Up).Normalize()
	up := right.Cross(forward)
	aspect := float64(w) / float64(h)
	halfH := math.Tan(c.FOV * math.Pi / 360)
	halfW := halfH * aspect
	u := (2*(x+0.5)/float64(w) - 1) * halfW
	v := (1 - 2*(y+0.5)/float64(h)) * halfH
	dir := forward.Add(right.Scale(u)).Add(up.Scale(v))
	return geom.NewRay(c.Pos, dir)
}

// Scene holds everything needed to render: the BVH over finite objects,
// unbounded objects (planes), lights, camera and global constants.
type Scene struct {
	BVH        *BVH
	Unbounded  []*Plane
	Lights     []Light
	Camera     Camera
	Background geom.Vec3
	Ambient    geom.Vec3
	// MaxRayDepth is the paper's MAX_RAY_DEPTH; zero means DefaultMaxDepth.
	MaxRayDepth int
}

// DefaultMaxDepth bounds recursive ray generation when Scene.MaxRayDepth is
// unset.
const DefaultMaxDepth = 5

// NewScene returns an empty scene with a default camera and lighting.
func NewScene() *Scene {
	return &Scene{
		BVH: &BVH{},
		Camera: Camera{
			Pos:    geom.V(0, 1.5, -6),
			LookAt: geom.V(0, 1, 0),
			Up:     geom.V(0, 1, 0),
			FOV:    60,
		},
		Background:  geom.V(0.08, 0.09, 0.12),
		Ambient:     geom.V(0.08, 0.08, 0.08),
		MaxRayDepth: DefaultMaxDepth,
	}
}

// Add inserts a finite object into the scene's BVH — "when adding an object
// to the BVH, it inserts the bounding volume that contains the object at
// the optimal place in the hierarchy".
func (s *Scene) Add(obj Object) { s.BVH.Insert(obj) }

// AddPlane registers an unbounded plane.
func (s *Scene) AddPlane(p *Plane) { s.Unbounded = append(s.Unbounded, p) }

// AddLight registers a point light.
func (s *Scene) AddLight(l Light) { s.Lights = append(s.Lights, l) }

// maxDepth returns the effective recursion bound.
func (s *Scene) maxDepth() int {
	if s.MaxRayDepth > 0 {
		return s.MaxRayDepth
	}
	return DefaultMaxDepth
}

// BalancedScene generates a procedural scene whose n spheres are spread
// uniformly over the camera's view, so per-row rendering cost is roughly
// even. Deterministic in seed.
func BalancedScene(n int, seed int64) *Scene {
	rng := rand.New(rand.NewSource(seed))
	s := NewScene()
	s.AddPlane(&Plane{
		Point: geom.V(0, -0.5, 0), Normal: geom.V(0, 1, 0),
		Mat:     Matte(geom.V(0.85, 0.85, 0.85)),
		Checker: true, CheckerColor: geom.V(0.25, 0.3, 0.35),
	})
	for i := 0; i < n; i++ {
		s.Add(randomSphere(rng,
			geom.V(-6, -0.2, -2), geom.V(6, 4.5, 10), 0.25, 0.7))
	}
	addDefaultLights(s)
	return s
}

// UnbalancedScene generates the workload-imbalance scene motivating the
// paper's dynamic load balancing: the vast majority of objects — many of
// them reflective or refractive — are concentrated in a horizontal band of
// the image, so the sections covering that band cost far more to render
// than the rest ("imbalances in the distribution of objects within any
// given scene quickly lead to limited scalability"). Deterministic in seed.
func UnbalancedScene(n int, seed int64) *Scene {
	rng := rand.New(rand.NewSource(seed))
	s := NewScene()
	s.AddPlane(&Plane{
		Point: geom.V(0, -0.5, 0), Normal: geom.V(0, 1, 0),
		Mat:     Matte(geom.V(0.8, 0.8, 0.8)),
		Checker: true, CheckerColor: geom.V(0.2, 0.25, 0.3),
	})
	// 85% of the spheres cluster in a band around y≈2.2 (upper third of
	// the image), densely packed and highly reflective (expensive
	// secondary rays). The remaining spheres scatter sparsely.
	cluster := n * 85 / 100
	for i := 0; i < cluster; i++ {
		c := geom.V(
			rng.Float64()*7-3.5,
			2.0+rng.Float64()*0.9,
			1+rng.Float64()*4,
		)
		r := 0.18 + rng.Float64()*0.3
		var mat Material
		switch i % 3 {
		case 0:
			mat = Shiny(randColor(rng), 0.7)
		case 1:
			mat = Glass(geom.V(0.9, 0.95, 1))
		default:
			mat = Shiny(randColor(rng), 0.4)
		}
		s.Add(&Sphere{Center: c, Radius: r, Mat: mat})
	}
	for i := cluster; i < n; i++ {
		s.Add(randomSphere(rng,
			geom.V(-6, -0.3, -2), geom.V(6, 1.2, 10), 0.2, 0.45))
	}
	addDefaultLights(s)
	return s
}

// SkewedScene generates the sharply skewed workload for the scheduling
// benchmarks: nearly all objects pack into one thin, wide shelf of
// reflective and refractive spheres across the upper-middle of the frame,
// while the rest of the image sees only a bare matte floor and a few small
// distant spheres. Per-section render cost then varies by roughly an order
// of magnitude between shelf sections and empty sections — the regime where
// placement fixed at split time leaves some nodes saturated while others
// sit idle — without any single section dominating the total (the shelf is
// wide enough to span several sections at benchmark task counts).
// Deterministic in seed.
func SkewedScene(n int, seed int64) *Scene {
	rng := rand.New(rand.NewSource(seed))
	s := NewScene()
	s.AddPlane(&Plane{
		Point: geom.V(0, -0.5, 0), Normal: geom.V(0, 1, 0),
		Mat: Matte(geom.V(0.72, 0.74, 0.78)),
	})
	// 90% of the spheres: the dense shelf. Alternating mirror and glass
	// makes every primary hit spawn expensive secondary rays.
	shelf := n * 9 / 10
	for i := 0; i < shelf; i++ {
		c := geom.V(
			rng.Float64()*9-4.5,
			0.9+rng.Float64()*1.7,
			1+rng.Float64()*3.5,
		)
		r := 0.16 + rng.Float64()*0.22
		var mat Material
		if i%2 == 0 {
			mat = Shiny(randColor(rng), 0.75)
		} else {
			mat = Glass(geom.V(0.92, 0.96, 1))
		}
		s.Add(&Sphere{Center: c, Radius: r, Mat: mat})
	}
	// The remainder: small matte spheres scattered low and far — visible,
	// but cheap to shade.
	for i := shelf; i < n; i++ {
		c := geom.V(
			rng.Float64()*12-6,
			-0.3+rng.Float64()*0.7,
			4+rng.Float64()*5,
		)
		s.Add(&Sphere{
			Center: c,
			Radius: 0.15 + rng.Float64()*0.15,
			Mat:    Matte(randColor(rng)),
		})
	}
	addDefaultLights(s)
	return s
}

func randomSphere(rng *rand.Rand, lo, hi geom.Vec3, rMin, rMax float64) *Sphere {
	c := geom.V(
		lo.X+rng.Float64()*(hi.X-lo.X),
		lo.Y+rng.Float64()*(hi.Y-lo.Y),
		lo.Z+rng.Float64()*(hi.Z-lo.Z),
	)
	r := rMin + rng.Float64()*(rMax-rMin)
	var mat Material
	switch rng.Intn(4) {
	case 0:
		mat = Shiny(randColor(rng), 0.5)
	case 1:
		mat = Glass(geom.V(0.95, 0.95, 1))
	default:
		mat = Matte(randColor(rng))
	}
	return &Sphere{Center: c, Radius: r, Mat: mat}
}

func randColor(rng *rand.Rand) geom.Vec3 {
	return geom.V(0.3+0.7*rng.Float64(), 0.3+0.7*rng.Float64(), 0.3+0.7*rng.Float64())
}

func addDefaultLights(s *Scene) {
	s.AddLight(Light{Pos: geom.V(-5, 8, -4), Intensity: geom.V(0.9, 0.9, 0.85)})
	s.AddLight(Light{Pos: geom.V(6, 6, -2), Intensity: geom.V(0.45, 0.45, 0.5)})
}
