package raytrace

import (
	"fmt"
	"image"
	"image/color"
	"image/png"
	"io"
	"os"
)

// Image is an RGB image buffer assembled from chunks — the "pic" record the
// merger accumulates.
type Image struct {
	W, H int
	Pix  []byte // 3 bytes per pixel, row-major
}

// NewImage allocates a black image.
func NewImage(w, h int) *Image {
	return &Image{W: w, H: h, Pix: make([]byte, 3*w*h)}
}

// SetChunk copies a rendered chunk into place.
func (im *Image) SetChunk(c Chunk) {
	if c.W != im.W {
		panic(fmt.Sprintf("raytrace: chunk width %d != image width %d", c.W, im.W))
	}
	copy(im.Pix[3*im.W*c.Y0:], c.Pix)
}

// Merge returns a new image with the chunk merged in; the receiver is not
// modified. This is the pure functional form used by the S-Net merge box
// (boxes must not mutate their inputs).
func (im *Image) Merge(c Chunk) *Image {
	out := NewImage(im.W, im.H)
	copy(out.Pix, im.Pix)
	out.SetChunk(c)
	return out
}

// ByteSize declares the image's wire size (pixel payload plus header) for
// transfer accounting, following the mpi.ByteSizer convention.
func (im *Image) ByteSize() int { return len(im.Pix) + 32 }

// At returns the pixel at (x, y) as 8-bit RGB.
func (im *Image) At(x, y int) (r, g, b byte) {
	i := 3 * (y*im.W + x)
	return im.Pix[i], im.Pix[i+1], im.Pix[i+2]
}

// WritePPM writes the image in binary PPM (P6) format.
func (im *Image) WritePPM(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "P6\n%d %d\n255\n", im.W, im.H); err != nil {
		return err
	}
	_, err := w.Write(im.Pix)
	return err
}

// WritePNG encodes the image as PNG.
func (im *Image) WritePNG(w io.Writer) error {
	rgba := image.NewRGBA(image.Rect(0, 0, im.W, im.H))
	for y := 0; y < im.H; y++ {
		for x := 0; x < im.W; x++ {
			r, g, b := im.At(x, y)
			rgba.SetRGBA(x, y, color.RGBA{R: r, G: g, B: b, A: 255})
		}
	}
	return png.Encode(w, rgba)
}

// SaveFile writes the image to path; the format is chosen by extension
// (.png or .ppm).
func (im *Image) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if len(path) > 4 && path[len(path)-4:] == ".png" {
		if err := im.WritePNG(f); err != nil {
			return err
		}
	} else {
		if err := im.WritePPM(f); err != nil {
			return err
		}
	}
	return f.Close()
}

// Equal reports whether two images have identical dimensions and pixels.
func (im *Image) Equal(other *Image) bool {
	if im.W != other.W || im.H != other.H || len(im.Pix) != len(other.Pix) {
		return false
	}
	for i := range im.Pix {
		if im.Pix[i] != other.Pix[i] {
			return false
		}
	}
	return true
}
