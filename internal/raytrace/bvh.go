package raytrace

import (
	"math"

	"snet/internal/geom"
)

// BVH is a bounding-volume hierarchy built by the Goldsmith–Salmon
// incremental construction (IEEE CG&A 1987), as used in the paper: each
// object's bounding volume is inserted at the place in the hierarchy that
// minimizes the estimated cost increase, where cost is surface area — a
// branch-and-bound descent choosing, at every internal node, the child
// whose surface-area growth from absorbing the new volume is smallest.
type BVH struct {
	root *bvhNode
	n    int
}

type bvhNode struct {
	bounds      geom.AABB
	left, right *bvhNode
	obj         Object // non-nil for leaves
}

func (n *bvhNode) isLeaf() bool { return n.obj != nil }

// Insert adds an object to the hierarchy.
func (b *BVH) Insert(obj Object) {
	nb := obj.Bounds()
	leaf := &bvhNode{bounds: nb, obj: obj}
	b.n++
	if b.root == nil {
		b.root = leaf
		return
	}
	b.root = insertNode(b.root, leaf)
}

// insertNode descends greedily: at an internal node the new leaf goes into
// the child whose bounds grow least in surface area (ties favour the
// smaller child); reaching a leaf, the two are paired under a new internal
// node. Bounds are refitted on the way back up.
func insertNode(node, leaf *bvhNode) *bvhNode {
	if node.isLeaf() {
		return &bvhNode{
			bounds: node.bounds.Union(leaf.bounds),
			left:   node,
			right:  leaf,
		}
	}
	growth := func(child *bvhNode) float64 {
		return child.bounds.Union(leaf.bounds).SurfaceArea() - child.bounds.SurfaceArea()
	}
	gl, gr := growth(node.left), growth(node.right)
	if gl < gr || (gl == gr && node.left.bounds.SurfaceArea() <= node.right.bounds.SurfaceArea()) {
		node.left = insertNode(node.left, leaf)
	} else {
		node.right = insertNode(node.right, leaf)
	}
	node.bounds = node.left.bounds.Union(node.right.bounds)
	return node
}

// Len returns the number of objects in the hierarchy.
func (b *BVH) Len() int { return b.n }

// Bounds returns the bounding box of the whole hierarchy.
func (b *BVH) Bounds() geom.AABB {
	if b.root == nil {
		return geom.EmptyAABB()
	}
	return b.root.bounds
}

// Intersect finds the closest hit of the ray within (tMin, tMax). The
// stats counters, when non-nil, accumulate node visits and object tests —
// the deterministic cost measure used by the cluster simulator.
func (b *BVH) Intersect(r geom.Ray, tMin, tMax float64, stats *Stats) (Hit, bool) {
	if b.root == nil {
		return Hit{}, false
	}
	var best Hit
	found := false
	// Explicit stack avoids deep recursion on degenerate hierarchies.
	stack := make([]*bvhNode, 0, 64)
	stack = append(stack, b.root)
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if stats != nil {
			stats.NodeVisits++
		}
		if !node.bounds.Hit(r, tMin, tMax) {
			continue
		}
		if node.isLeaf() {
			if stats != nil {
				stats.ObjectTests++
			}
			if h, ok := node.obj.Intersect(r, tMin, tMax); ok {
				best = h
				tMax = h.T
				found = true
			}
			continue
		}
		stack = append(stack, node.left, node.right)
	}
	return best, found
}

// Occluded reports whether anything blocks the ray within (tMin, tMax),
// returning the first blocking hit found (not necessarily the closest).
// Transparent occluders are reported like any other; the shader decides how
// to attenuate.
func (b *BVH) Occluded(r geom.Ray, tMin, tMax float64, stats *Stats) (Hit, bool) {
	if b.root == nil {
		return Hit{}, false
	}
	stack := make([]*bvhNode, 0, 64)
	stack = append(stack, b.root)
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if stats != nil {
			stats.NodeVisits++
		}
		if !node.bounds.Hit(r, tMin, tMax) {
			continue
		}
		if node.isLeaf() {
			if stats != nil {
				stats.ObjectTests++
			}
			if h, ok := node.obj.Intersect(r, tMin, tMax); ok && h.Mat.Transparency == 0 {
				return h, true
			}
			continue
		}
		stack = append(stack, node.left, node.right)
	}
	return Hit{}, false
}

// Depth returns the height of the hierarchy (0 for empty, 1 for a single
// leaf). It is used by tests to check that incremental insertion produces
// reasonably balanced trees on uniform input.
func (b *BVH) Depth() int { return nodeDepth(b.root) }

func nodeDepth(n *bvhNode) int {
	if n == nil {
		return 0
	}
	if n.isLeaf() {
		return 1
	}
	return 1 + int(math.Max(float64(nodeDepth(n.left)), float64(nodeDepth(n.right))))
}

// Validate checks the BVH structural invariants: every internal node has
// two children, every node's bounds contain its children's bounds, and the
// leaf count matches Len. It returns false with a reason string on
// violation; tests use it as the property-check oracle.
func (b *BVH) Validate() (bool, string) {
	if b.root == nil {
		if b.n != 0 {
			return false, "empty tree with nonzero count"
		}
		return true, ""
	}
	leaves := 0
	var walk func(n *bvhNode) (bool, string)
	walk = func(n *bvhNode) (bool, string) {
		if n.isLeaf() {
			leaves++
			if n.left != nil || n.right != nil {
				return false, "leaf with children"
			}
			return true, ""
		}
		if n.left == nil || n.right == nil {
			return false, "internal node with missing child"
		}
		if !n.bounds.ContainsBox(n.left.bounds) || !n.bounds.ContainsBox(n.right.bounds) {
			return false, "node bounds do not contain child bounds"
		}
		if ok, why := walk(n.left); !ok {
			return false, why
		}
		return walk(n.right)
	}
	if ok, why := walk(b.root); !ok {
		return false, why
	}
	if leaves != b.n {
		return false, "leaf count mismatch"
	}
	return true, ""
}
