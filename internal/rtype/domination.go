package rtype

// Dominated analyses best-match dispatch over a set of member input types
// (the branches of a choice combinator) fed by records of an upstream
// output type. Member j is *dominated* when no record credited to the
// upstream type can ever win dispatch for j: for every record, some other
// member matches with a strictly higher score. Dominated members are dead
// routing targets — the network optimizer prunes them, and the compiler
// warns about them — without changing which branch any record reaches.
//
// The analysis is sound under flow inheritance: a record leaving an
// upstream entity carries the labels of one declared output variant u plus
// arbitrary inherited extras. Member j's score for such a record is the
// size of its largest matching variant vj; j is dominated when, for every
// pair (u, vj), some other member has a variant vk with
//
//	vk ⊆ u ∪ vj  and  |vk| > |vj|
//
// — vk matches every record that u and vj jointly describe (extras only
// enlarge the label set, which cannot un-match vk) and always outscores
// vj. Domination is transitive along strictly growing variant sizes, so
// pruning every dominated member at once is safe: each keeps an
// undominated dominator among the survivors, and at least one member
// always survives.
//
// The guarantee is only as good as the upstream type: it assumes records
// really carry some declared output variant's labels. Filters and the star
// combinator enforce this structurally; boxes promise it by contract
// (Options.CheckTypes verifies it); synchrocells do not (records matching
// no storage pattern pass through outside the declared output type), so
// callers must not feed a synchrocell-derived type to this analysis.
//
// A nil or empty upstream type yields no domination (nothing is known
// about the records), as does an empty member type.
func Dominated(upstream *Type, members []*Type) []bool {
	out := make([]bool, len(members))
	if upstream == nil || len(upstream.variants) == 0 {
		return out
	}
	for j, m := range members {
		if m == nil || len(m.variants) == 0 {
			continue
		}
		out[j] = dominatedMember(upstream, members, j)
	}
	return out
}

// dominatedMember reports whether every (upstream variant, member variant)
// pair of member j has a strictly better competitor.
func dominatedMember(upstream *Type, members []*Type, j int) bool {
	for _, u := range upstream.variants {
		for _, vj := range members[j].variants {
			if !hasDominator(u, vj, members, j) {
				return false
			}
		}
	}
	return true
}

// hasDominator searches the other members for a variant vk ⊆ u ∪ vj with
// |vk| > |vj|.
func hasDominator(u, vj *Variant, members []*Type, j int) bool {
	base := u.Union(vj)
	size := vj.Size()
	for k, mk := range members {
		if k == j || mk == nil {
			continue
		}
		for _, vk := range mk.variants {
			if vk.Size() > size && vk.SubsetOf(base) {
				return true
			}
		}
	}
	return false
}
