package rtype

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"snet/internal/record"
)

func TestLabelString(t *testing.T) {
	cases := []struct {
		l    Label
		want string
	}{
		{F("scene"), "scene"},
		{T("node"), "<node>"},
		{BT("i"), "<#i>"},
	}
	for _, c := range cases {
		if got := c.l.String(); got != c.want {
			t.Errorf("%v.String() = %q, want %q", c.l, got, c.want)
		}
	}
}

func TestLabelClassString(t *testing.T) {
	if Field.String() != "field" || Tag.String() != "tag" || BTag.String() != "btag" {
		t.Fatal("LabelClass.String wrong")
	}
	if LabelClass(9).String() != "LabelClass(9)" {
		t.Fatal("unknown class String wrong")
	}
}

func TestVariantBasics(t *testing.T) {
	v := NewVariant(F("a"), F("b"), T("t"), BT("bt"))
	if !v.HasField("a") || !v.HasField("b") || !v.HasTag("t") || !v.HasBTag("bt") {
		t.Fatalf("variant missing labels: %s", v)
	}
	if v.Size() != 4 {
		t.Fatalf("Size = %d, want 4", v.Size())
	}
	if got := v.String(); got != "{a, b, <t>, <#bt>}" {
		t.Fatalf("String = %q", got)
	}
}

func TestVariantSubset(t *testing.T) {
	ab := NewVariant(F("a"), F("b"))
	abc := NewVariant(F("a"), F("b"), F("c"))
	if !ab.SubsetOf(abc) {
		t.Fatal("{a,b} should be subset of {a,b,c}")
	}
	if abc.SubsetOf(ab) {
		t.Fatal("{a,b,c} should not be subset of {a,b}")
	}
	// subtyping is the inverse: {a,b,c} is a SUBTYPE of {a,b}
	if !abc.SubtypeOf(ab) {
		t.Fatal("{a,b,c} should be subtype of {a,b}")
	}
	if ab.SubtypeOf(abc) {
		t.Fatal("{a,b} should not be subtype of {a,b,c}")
	}
}

func TestVariantClassesDistinct(t *testing.T) {
	fv := NewVariant(F("x"))
	tv := NewVariant(T("x"))
	if fv.SubsetOf(tv) || tv.SubsetOf(fv) {
		t.Fatal("field x and tag x must be distinct labels")
	}
}

func TestVariantUnion(t *testing.T) {
	u := NewVariant(F("a"), T("t")).Union(NewVariant(F("b"), T("t")))
	if u.Size() != 3 || !u.HasField("a") || !u.HasField("b") || !u.HasTag("t") {
		t.Fatalf("union = %s", u)
	}
}

func TestMatchesRecordSubtyping(t *testing.T) {
	// The paper's example: a component expecting {a, b} also accepts
	// {a, c, b} by ignoring c.
	v := NewVariant(F("a"), F("b"))
	r := record.Build().F("a", 1).F("c", 2).F("b", 3).Rec()
	if !v.MatchesRecord(r) {
		t.Fatal("{a,b} must accept {a,c,b}")
	}
	r2 := record.Build().F("a", 1).Rec()
	if v.MatchesRecord(r2) {
		t.Fatal("{a,b} must not accept {a}")
	}
}

func TestMatchesRecordTags(t *testing.T) {
	v := NewVariant(F("scene"), T("nodes"), T("tasks"))
	r := record.Build().F("scene", nil).T("nodes", 8).T("tasks", 48).T("extra", 1).Rec()
	if !v.MatchesRecord(r) {
		t.Fatal("record with extra tag must match")
	}
	r.DeleteTag("nodes")
	if v.MatchesRecord(r) {
		t.Fatal("record missing tag must not match")
	}
}

func TestRecordVariant(t *testing.T) {
	r := record.Build().F("a", 1).T("t", 2).BT("b", 3).Rec()
	v := RecordVariant(r)
	if !v.Equal(NewVariant(F("a"), T("t"), BT("b"))) {
		t.Fatalf("RecordVariant = %s", v)
	}
}

func TestTypeSubtyping(t *testing.T) {
	// x = {a,b,c} | {a,d}; y = {a} — every variant of x is a subtype of {a}.
	x := NewType(NewVariant(F("a"), F("b"), F("c")), NewVariant(F("a"), F("d")))
	y := NewType(NewVariant(F("a")))
	if !x.SubtypeOf(y) {
		t.Fatal("x should be subtype of y")
	}
	if y.SubtypeOf(x) {
		t.Fatal("y should not be subtype of x")
	}
}

func TestTypeUnionDedup(t *testing.T) {
	a := NewType(NewVariant(F("a")), NewVariant(F("b")))
	b := NewType(NewVariant(F("b")), NewVariant(F("c")))
	u := a.Union(b)
	if u.NumVariants() != 3 {
		t.Fatalf("union has %d variants, want 3 (%s)", u.NumVariants(), u)
	}
}

func TestBestMatchSpecificity(t *testing.T) {
	// Record {chunk, <fst>} against merger's input {chunk,<fst>} | {chunk}:
	// the two-label variant must win.
	tt := NewType(
		NewVariant(F("chunk")),
		NewVariant(F("chunk"), T("fst")),
	)
	r := record.Build().F("chunk", nil).T("fst", 1).Rec()
	v, score := tt.BestMatch(r)
	if score != 2 || !v.HasTag("fst") {
		t.Fatalf("BestMatch = %s score %d, want the {chunk,<fst>} variant", v, score)
	}
	r2 := record.Build().F("chunk", nil).Rec()
	v2, score2 := tt.BestMatch(r2)
	if score2 != 1 || v2.HasTag("fst") {
		t.Fatalf("BestMatch = %s score %d, want the {chunk} variant", v2, score2)
	}
	if _, s := tt.BestMatch(record.New()); s != -1 {
		t.Fatal("BestMatch on non-matching record must return -1")
	}
}

func TestTypeAccepts(t *testing.T) {
	tt := NewType(NewVariant(F("pic")), NewVariant(F("chunk")))
	if !tt.Accepts(record.Build().F("pic", 1).Rec()) {
		t.Fatal("type must accept {pic}")
	}
	if tt.Accepts(record.Build().T("pic", 1).Rec()) {
		t.Fatal("type must not accept tag pic as field pic")
	}
}

func TestTypeString(t *testing.T) {
	tt := NewType(NewVariant(F("c")), NewVariant(F("c"), F("d"), T("e")))
	if got := tt.String(); got != "{c} | {c, d, <e>}" {
		t.Fatalf("String = %q", got)
	}
	if EmptyType().String() != "{}|∅" {
		t.Fatal("empty type String wrong")
	}
}

func TestSignatureString(t *testing.T) {
	sig := NewSignature(
		NewType(NewVariant(F("a"), T("b"))),
		NewType(NewVariant(F("c")), NewVariant(F("c"), F("d"), T("e"))),
	)
	want := "{a, <b>} -> {c} | {c, d, <e>}"
	if got := sig.String(); got != want {
		t.Fatalf("Signature = %q, want %q", got, want)
	}
}

func TestPatternGuard(t *testing.T) {
	// {<tasks> == <cnt>} — the merger exit pattern from Fig. 3.
	p := NewPattern(NewVariant(T("tasks"), T("cnt"))).WithGuard(func(r *record.Record) bool {
		a, _ := r.Tag("tasks")
		b, _ := r.Tag("cnt")
		return a == b
	}, "<tasks> == <cnt>")
	r := record.Build().F("pic", nil).T("tasks", 48).T("cnt", 48).Rec()
	if !p.Matches(r) {
		t.Fatal("guard should pass when tasks == cnt")
	}
	r.SetTag("cnt", 3)
	if p.Matches(r) {
		t.Fatal("guard should fail when tasks != cnt")
	}
	r.DeleteTag("cnt")
	if p.Matches(r) {
		t.Fatal("pattern should fail without required tag")
	}
}

func TestPatternString(t *testing.T) {
	p := NewPattern(NewVariant(F("chunk")))
	if p.String() != "{chunk}" {
		t.Fatalf("String = %q", p.String())
	}
	g := NewPattern(NewVariant()).WithGuard(func(*record.Record) bool { return true }, "<a> == <b>")
	if g.String() != "{<a> == <b>}" {
		t.Fatalf("guard String = %q", g.String())
	}
}

func randomVariant(rng *rand.Rand) *Variant {
	v := NewVariant()
	for i, n := 0, rng.Intn(5); i < n; i++ {
		v.Add(F(fmt.Sprintf("f%d", rng.Intn(6))))
	}
	for i, n := 0, rng.Intn(4); i < n; i++ {
		v.Add(T(fmt.Sprintf("t%d", rng.Intn(6))))
	}
	return v
}

func TestPropSubtypingReflexiveTransitive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomVariant(rng)
		if !a.SubtypeOf(a) {
			return false // reflexivity
		}
		// build b ⊆ a by dropping labels, and c ⊆ b: then a ≤ b ≤ c must
		// give a ≤ c (transitivity along the chain).
		b := NewVariant()
		for _, l := range a.Labels() {
			if rng.Intn(2) == 0 {
				b.Add(l)
			}
		}
		c := NewVariant()
		for _, l := range b.Labels() {
			if rng.Intn(2) == 0 {
				c.Add(l)
			}
		}
		return a.SubtypeOf(b) && b.SubtypeOf(c) && a.SubtypeOf(c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropUnionIsSupertypeLowerBound(t *testing.T) {
	// v ∪ w has all labels of both, so it is a subtype of each operand.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v, w := randomVariant(rng), randomVariant(rng)
		u := v.Union(w)
		return u.SubtypeOf(v) && u.SubtypeOf(w)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMatchAgreesWithSubtyping(t *testing.T) {
	// A record matches a variant iff the record's exact variant is a
	// subtype of it.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := randomVariant(rng)
		r := record.New()
		for i, n := 0, rng.Intn(6); i < n; i++ {
			r.SetField(fmt.Sprintf("f%d", rng.Intn(6)), 0)
		}
		for i, n := 0, rng.Intn(5); i < n; i++ {
			r.SetTag(fmt.Sprintf("t%d", rng.Intn(6)), 0)
		}
		return v.MatchesRecord(r) == RecordVariant(r).SubtypeOf(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
