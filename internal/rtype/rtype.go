// Package rtype implements the S-Net structural type system.
//
// A record variant is a set of labels (fields, tags, binding tags). A record
// type is a disjunction (set) of variants. Subtyping is the inverse
// set-inclusion relation on label sets, lifted to multivariant types:
//
//   - variant v is a subtype of variant w  iff  w ⊆ v
//     (a record with MORE labels is MORE specific, hence a subtype);
//   - type x is a subtype of type y iff every variant of x is a subtype of
//     some variant of y.
//
// A signature maps an input type to an output type; boxes declare
// signatures, and the compiler infers signatures for whole networks.
package rtype

import (
	"fmt"
	"sort"
	"strings"

	"snet/internal/record"
)

// LabelClass distinguishes the three S-Net label namespaces.
type LabelClass uint8

const (
	// Field is an opaque box-language value label.
	Field LabelClass = iota
	// Tag is an integer label visible to the coordination layer.
	Tag
	// BTag is a binding tag: like Tag, but exempt from flow inheritance.
	BTag
)

// String returns the class name.
func (c LabelClass) String() string {
	switch c {
	case Field:
		return "field"
	case Tag:
		return "tag"
	case BTag:
		return "btag"
	}
	return fmt.Sprintf("LabelClass(%d)", uint8(c))
}

// Label is a classified label name.
type Label struct {
	Name  string
	Class LabelClass
}

// F constructs a field label.
func F(name string) Label { return Label{Name: name, Class: Field} }

// T constructs a tag label.
func T(name string) Label { return Label{Name: name, Class: Tag} }

// BT constructs a binding-tag label.
func BT(name string) Label { return Label{Name: name, Class: BTag} }

// String renders the label in S-Net syntax: plain for fields, <x> for tags,
// <#x> for binding tags.
func (l Label) String() string {
	switch l.Class {
	case Tag:
		return "<" + l.Name + ">"
	case BTag:
		return "<#" + l.Name + ">"
	default:
		return l.Name
	}
}

// Variant is a set of labels, e.g. {scene, sect, <node>}.
type Variant struct {
	fields map[string]bool
	tags   map[string]bool
	btags  map[string]bool
}

// NewVariant builds a variant from the given labels.
func NewVariant(labels ...Label) *Variant {
	v := &Variant{
		fields: make(map[string]bool),
		tags:   make(map[string]bool),
		btags:  make(map[string]bool),
	}
	for _, l := range labels {
		v.Add(l)
	}
	return v
}

// Add inserts a label into the variant.
func (v *Variant) Add(l Label) *Variant {
	switch l.Class {
	case Field:
		v.fields[l.Name] = true
	case Tag:
		v.tags[l.Name] = true
	case BTag:
		v.btags[l.Name] = true
	}
	return v
}

// HasField reports whether the variant contains the field label.
func (v *Variant) HasField(name string) bool { return v.fields[name] }

// HasTag reports whether the variant contains the tag label.
func (v *Variant) HasTag(name string) bool { return v.tags[name] }

// HasBTag reports whether the variant contains the binding-tag label.
func (v *Variant) HasBTag(name string) bool { return v.btags[name] }

// Fields returns the variant's field labels in sorted order.
func (v *Variant) Fields() []string { return sortedKeys(v.fields) }

// Tags returns the variant's tag labels in sorted order.
func (v *Variant) Tags() []string { return sortedKeys(v.tags) }

// BTags returns the variant's binding-tag labels in sorted order.
func (v *Variant) BTags() []string { return sortedKeys(v.btags) }

// Size returns the total number of labels in the variant.
func (v *Variant) Size() int { return len(v.fields) + len(v.tags) + len(v.btags) }

// Labels returns all labels, fields first, then tags, then btags, each group
// sorted.
func (v *Variant) Labels() []Label {
	out := make([]Label, 0, v.Size())
	for _, f := range v.Fields() {
		out = append(out, F(f))
	}
	for _, t := range v.Tags() {
		out = append(out, T(t))
	}
	for _, t := range v.BTags() {
		out = append(out, BT(t))
	}
	return out
}

// Copy returns an independent copy of the variant.
func (v *Variant) Copy() *Variant {
	c := NewVariant()
	for f := range v.fields {
		c.fields[f] = true
	}
	for t := range v.tags {
		c.tags[t] = true
	}
	for t := range v.btags {
		c.btags[t] = true
	}
	return c
}

// Union returns a new variant containing the labels of both operands.
func (v *Variant) Union(w *Variant) *Variant {
	u := v.Copy()
	for f := range w.fields {
		u.fields[f] = true
	}
	for t := range w.tags {
		u.tags[t] = true
	}
	for t := range w.btags {
		u.btags[t] = true
	}
	return u
}

// SubsetOf reports whether every label of v also appears in w.
func (v *Variant) SubsetOf(w *Variant) bool {
	for f := range v.fields {
		if !w.fields[f] {
			return false
		}
	}
	for t := range v.tags {
		if !w.tags[t] {
			return false
		}
	}
	for t := range v.btags {
		if !w.btags[t] {
			return false
		}
	}
	return true
}

// SubtypeOf reports whether v is a subtype of w, i.e. w ⊆ v.
func (v *Variant) SubtypeOf(w *Variant) bool { return w.SubsetOf(v) }

// Equal reports whether two variants contain exactly the same labels.
func (v *Variant) Equal(w *Variant) bool { return v.SubsetOf(w) && w.SubsetOf(v) }

// MatchesRecord reports whether the record's label set is a subtype of the
// variant, i.e. the record carries at least every label of v. This is the
// acceptance test used for routing, box triggering and synchrocell patterns.
func (v *Variant) MatchesRecord(r *record.Record) bool {
	for f := range v.fields {
		if !r.HasField(f) {
			return false
		}
	}
	for t := range v.tags {
		if !r.HasTag(t) {
			return false
		}
	}
	for t := range v.btags {
		if !r.HasBTag(t) {
			return false
		}
	}
	return true
}

// String renders the variant in S-Net syntax, e.g. {a, b, <t>}.
func (v *Variant) String() string {
	parts := make([]string, 0, v.Size())
	for _, l := range v.Labels() {
		parts = append(parts, l.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// RecordVariant returns the exact variant of a record's label set.
func RecordVariant(r *record.Record) *Variant {
	v := NewVariant()
	for _, f := range r.Fields() {
		v.Add(F(f))
	}
	for _, t := range r.Tags() {
		v.Add(T(t))
	}
	for _, t := range r.BTags() {
		v.Add(BT(t))
	}
	return v
}

// Type is a disjunction of variants.
type Type struct {
	variants []*Variant
}

// NewType builds a type from the given variants.
func NewType(variants ...*Variant) *Type {
	return &Type{variants: variants}
}

// EmptyType returns the type with no variants (accepts nothing).
func EmptyType() *Type { return &Type{} }

// Variants returns the type's variants.
func (t *Type) Variants() []*Variant { return t.variants }

// NumVariants returns the number of variants.
func (t *Type) NumVariants() int { return len(t.variants) }

// AddVariant appends a variant to the disjunction.
func (t *Type) AddVariant(v *Variant) *Type {
	t.variants = append(t.variants, v)
	return t
}

// Union returns the disjunction of both types' variants (duplicates by
// Equal are removed).
func (t *Type) Union(u *Type) *Type {
	out := NewType()
	add := func(v *Variant) {
		for _, w := range out.variants {
			if w.Equal(v) {
				return
			}
		}
		out.variants = append(out.variants, v)
	}
	for _, v := range t.variants {
		add(v)
	}
	for _, v := range u.variants {
		add(v)
	}
	return out
}

// SubtypeOf reports whether every variant of t is a subtype of some variant
// of u.
func (t *Type) SubtypeOf(u *Type) bool {
	for _, v := range t.variants {
		ok := false
		for _, w := range u.variants {
			if v.SubtypeOf(w) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Accepts reports whether the record matches at least one variant of t.
func (t *Type) Accepts(r *record.Record) bool {
	for _, v := range t.variants {
		if v.MatchesRecord(r) {
			return true
		}
	}
	return false
}

// BestMatch returns the variant of t that best matches the record, together
// with its match score, or (nil, -1) when no variant matches. The score is
// the size of the matched variant: a larger matched variant is a more
// specific — hence better — match. Among equally sized matches the first in
// declaration order wins (callers that need nondeterministic tie-breaking
// resolve ties themselves).
func (t *Type) BestMatch(r *record.Record) (*Variant, int) {
	best := -1
	var bestV *Variant
	for _, v := range t.variants {
		if !v.MatchesRecord(r) {
			continue
		}
		if s := v.Size(); s > best {
			best = s
			bestV = v
		}
	}
	return bestV, best
}

// String renders the type as variant disjunction, e.g. {a} | {b, <t>}.
func (t *Type) String() string {
	if len(t.variants) == 0 {
		return "{}|∅"
	}
	parts := make([]string, len(t.variants))
	for i, v := range t.variants {
		parts[i] = v.String()
	}
	return strings.Join(parts, " | ")
}

// Signature is a type mapping from an input type to an output type, written
// in S-Net as input -> out1 | out2 | ....
type Signature struct {
	In  *Type
	Out *Type
}

// NewSignature constructs a signature.
func NewSignature(in, out *Type) Signature { return Signature{In: in, Out: out} }

// String renders the signature in S-Net style.
func (s Signature) String() string {
	return fmt.Sprintf("%s -> %s", s.In, s.Out)
}

func sortedKeys(m map[string]bool) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
