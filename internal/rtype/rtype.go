// Package rtype implements the S-Net structural type system.
//
// A record variant is a set of labels (fields, tags, binding tags). A record
// type is a disjunction (set) of variants. Subtyping is the inverse
// set-inclusion relation on label sets, lifted to multivariant types:
//
//   - variant v is a subtype of variant w  iff  w ⊆ v
//     (a record with MORE labels is MORE specific, hence a subtype);
//   - type x is a subtype of type y iff every variant of x is a subtype of
//     some variant of y.
//
// A signature maps an input type to an output type; boxes declare
// signatures, and the compiler infers signatures for whole networks.
//
// Variants compile their label sets down to sorted interned-symbol slices
// (record.Sym) at construction time, so the acceptance tests the runtime
// runs per record — MatchesRecord, Type.Accepts, Type.BestMatch — are
// merge-scans over small integer slices: no hashing, no allocation.
package rtype

import (
	"fmt"
	"sort"
	"strings"

	"snet/internal/record"
)

// LabelClass distinguishes the three S-Net label namespaces.
type LabelClass uint8

const (
	// Field is an opaque box-language value label.
	Field LabelClass = iota
	// Tag is an integer label visible to the coordination layer.
	Tag
	// BTag is a binding tag: like Tag, but exempt from flow inheritance.
	BTag
)

// String returns the class name.
func (c LabelClass) String() string {
	switch c {
	case Field:
		return "field"
	case Tag:
		return "tag"
	case BTag:
		return "btag"
	}
	return fmt.Sprintf("LabelClass(%d)", uint8(c))
}

// Label is a classified label name.
type Label struct {
	Name  string
	Class LabelClass
}

// F constructs a field label.
func F(name string) Label { return Label{Name: name, Class: Field} }

// T constructs a tag label.
func T(name string) Label { return Label{Name: name, Class: Tag} }

// BT constructs a binding-tag label.
func BT(name string) Label { return Label{Name: name, Class: BTag} }

// String renders the label in S-Net syntax: plain for fields, <x> for tags,
// <#x> for binding tags.
func (l Label) String() string {
	switch l.Class {
	case Tag:
		return "<" + l.Name + ">"
	case BTag:
		return "<#" + l.Name + ">"
	default:
		return l.Name
	}
}

// Variant is a set of labels, e.g. {scene, sect, <node>}. Internally each
// label class is a sorted slice of interned symbols, fixed at construction
// time (Add), which is what makes record matching allocation-free.
type Variant struct {
	fields []record.Sym
	tags   []record.Sym
	btags  []record.Sym
}

// NewVariant builds a variant from the given labels.
func NewVariant(labels ...Label) *Variant {
	v := &Variant{}
	for _, l := range labels {
		v.Add(l)
	}
	return v
}

// insertSym inserts id into the sorted symbol set, keeping it duplicate
// free.
func insertSym(s []record.Sym, id record.Sym) []record.Sym {
	i := sort.Search(len(s), func(j int) bool { return s[j] >= id })
	if i < len(s) && s[i] == id {
		return s
	}
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = id
	return s
}

// containsSym reports membership in a sorted symbol set.
func containsSym(s []record.Sym, id record.Sym) bool {
	i := sort.Search(len(s), func(j int) bool { return s[j] >= id })
	return i < len(s) && s[i] == id
}

// symSubset reports whether every symbol of a appears in b (both sorted).
func symSubset(a, b []record.Sym) bool {
	if len(a) > len(b) {
		return false
	}
	j := 0
	for _, id := range a {
		for j < len(b) && b[j] < id {
			j++
		}
		if j >= len(b) || b[j] != id {
			return false
		}
		j++
	}
	return true
}

// symUnion merges two sorted symbol sets into a fresh sorted set.
func symUnion(a, b []record.Sym) []record.Sym {
	out := make([]record.Sym, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}

// symNames maps a symbol set to its label names in sorted (name) order.
func symNamesSorted(s []record.Sym) []string {
	out := make([]string, len(s))
	for i, id := range s {
		out[i] = record.SymName(id)
	}
	sort.Strings(out)
	return out
}

// Add inserts a label into the variant.
func (v *Variant) Add(l Label) *Variant {
	id := record.Intern(l.Name)
	switch l.Class {
	case Field:
		v.fields = insertSym(v.fields, id)
	case Tag:
		v.tags = insertSym(v.tags, id)
	case BTag:
		v.btags = insertSym(v.btags, id)
	}
	return v
}

// HasField reports whether the variant contains the field label.
func (v *Variant) HasField(name string) bool {
	id, ok := record.LookupSym(name)
	return ok && containsSym(v.fields, id)
}

// HasTag reports whether the variant contains the tag label.
func (v *Variant) HasTag(name string) bool {
	id, ok := record.LookupSym(name)
	return ok && containsSym(v.tags, id)
}

// HasBTag reports whether the variant contains the binding-tag label.
func (v *Variant) HasBTag(name string) bool {
	id, ok := record.LookupSym(name)
	return ok && containsSym(v.btags, id)
}

// Fields returns the variant's field labels in sorted order.
func (v *Variant) Fields() []string { return symNamesSorted(v.fields) }

// Tags returns the variant's tag labels in sorted order.
func (v *Variant) Tags() []string { return symNamesSorted(v.tags) }

// BTags returns the variant's binding-tag labels in sorted order.
func (v *Variant) BTags() []string { return symNamesSorted(v.btags) }

// FieldSyms returns the variant's field label symbols, sorted ascending.
// The slice is the variant's own storage: callers must treat it as
// read-only. It is the allocation-free counterpart of Fields() used by the
// runtime for consumed-label sets.
func (v *Variant) FieldSyms() []record.Sym { return v.fields }

// TagSyms returns the variant's tag label symbols, sorted ascending, as
// read-only shared storage.
func (v *Variant) TagSyms() []record.Sym { return v.tags }

// BTagSyms returns the variant's binding-tag label symbols, sorted
// ascending, as read-only shared storage.
func (v *Variant) BTagSyms() []record.Sym { return v.btags }

// Size returns the total number of labels in the variant.
func (v *Variant) Size() int { return len(v.fields) + len(v.tags) + len(v.btags) }

// Labels returns all labels, fields first, then tags, then btags, each group
// sorted.
func (v *Variant) Labels() []Label {
	out := make([]Label, 0, v.Size())
	for _, f := range v.Fields() {
		out = append(out, F(f))
	}
	for _, t := range v.Tags() {
		out = append(out, T(t))
	}
	for _, t := range v.BTags() {
		out = append(out, BT(t))
	}
	return out
}

// Copy returns an independent copy of the variant.
func (v *Variant) Copy() *Variant {
	return &Variant{
		fields: append([]record.Sym(nil), v.fields...),
		tags:   append([]record.Sym(nil), v.tags...),
		btags:  append([]record.Sym(nil), v.btags...),
	}
}

// Union returns a new variant containing the labels of both operands.
func (v *Variant) Union(w *Variant) *Variant {
	return &Variant{
		fields: symUnion(v.fields, w.fields),
		tags:   symUnion(v.tags, w.tags),
		btags:  symUnion(v.btags, w.btags),
	}
}

// SubsetOf reports whether every label of v also appears in w.
func (v *Variant) SubsetOf(w *Variant) bool {
	return symSubset(v.fields, w.fields) &&
		symSubset(v.tags, w.tags) &&
		symSubset(v.btags, w.btags)
}

// SubtypeOf reports whether v is a subtype of w, i.e. w ⊆ v.
func (v *Variant) SubtypeOf(w *Variant) bool { return w.SubsetOf(v) }

// Equal reports whether two variants contain exactly the same labels.
func (v *Variant) Equal(w *Variant) bool {
	return len(v.fields) == len(w.fields) &&
		len(v.tags) == len(w.tags) &&
		len(v.btags) == len(w.btags) &&
		v.SubsetOf(w)
}

// MatchesRecord reports whether the record's label set is a subtype of the
// variant, i.e. the record carries at least every label of v. This is the
// acceptance test used for routing, box triggering and synchrocell
// patterns. It is a merge-scan over interned symbols and never allocates.
func (v *Variant) MatchesRecord(r *record.Record) bool {
	return r.HasAllFieldSyms(v.fields) &&
		r.HasAllTagSyms(v.tags) &&
		r.HasAllBTagSyms(v.btags)
}

// String renders the variant in S-Net syntax, e.g. {a, b, <t>}.
func (v *Variant) String() string {
	parts := make([]string, 0, v.Size())
	for _, l := range v.Labels() {
		parts = append(parts, l.String())
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// RecordVariant returns the exact variant of a record's label set.
func RecordVariant(r *record.Record) *Variant {
	v := &Variant{
		fields: make([]record.Sym, 0, r.NumFields()),
		tags:   make([]record.Sym, 0, r.NumTags()),
		btags:  make([]record.Sym, 0, r.NumBTags()),
	}
	// Record entries are already sorted by symbol, so appending keeps the
	// variant's invariant.
	r.VisitFieldSyms(func(id record.Sym, _ any) { v.fields = append(v.fields, id) })
	r.VisitTagSyms(func(id record.Sym, _ int) { v.tags = append(v.tags, id) })
	r.VisitBTagSyms(func(id record.Sym, _ int) { v.btags = append(v.btags, id) })
	return v
}

// Type is a disjunction of variants.
type Type struct {
	variants []*Variant
}

// NewType builds a type from the given variants.
func NewType(variants ...*Variant) *Type {
	return &Type{variants: variants}
}

// EmptyType returns the type with no variants (accepts nothing).
func EmptyType() *Type { return &Type{} }

// Variants returns the type's variants.
func (t *Type) Variants() []*Variant { return t.variants }

// NumVariants returns the number of variants.
func (t *Type) NumVariants() int { return len(t.variants) }

// AddVariant appends a variant to the disjunction.
func (t *Type) AddVariant(v *Variant) *Type {
	t.variants = append(t.variants, v)
	return t
}

// Union returns the disjunction of both types' variants (duplicates by
// Equal are removed).
func (t *Type) Union(u *Type) *Type {
	out := NewType()
	add := func(v *Variant) {
		for _, w := range out.variants {
			if w.Equal(v) {
				return
			}
		}
		out.variants = append(out.variants, v)
	}
	for _, v := range t.variants {
		add(v)
	}
	for _, v := range u.variants {
		add(v)
	}
	return out
}

// SubtypeOf reports whether every variant of t is a subtype of some variant
// of u.
func (t *Type) SubtypeOf(u *Type) bool {
	for _, v := range t.variants {
		ok := false
		for _, w := range u.variants {
			if v.SubtypeOf(w) {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Accepts reports whether the record matches at least one variant of t. It
// never allocates.
func (t *Type) Accepts(r *record.Record) bool {
	for _, v := range t.variants {
		if v.MatchesRecord(r) {
			return true
		}
	}
	return false
}

// BestMatch returns the variant of t that best matches the record, together
// with its match score, or (nil, -1) when no variant matches. The score is
// the size of the matched variant: a larger matched variant is a more
// specific — hence better — match. Among equally sized matches the first in
// declaration order wins (callers that need nondeterministic tie-breaking
// resolve ties themselves). It never allocates.
func (t *Type) BestMatch(r *record.Record) (*Variant, int) {
	best := -1
	var bestV *Variant
	for _, v := range t.variants {
		if !v.MatchesRecord(r) {
			continue
		}
		if s := v.Size(); s > best {
			best = s
			bestV = v
		}
	}
	return bestV, best
}

// String renders the type as variant disjunction, e.g. {a} | {b, <t>}.
func (t *Type) String() string {
	if len(t.variants) == 0 {
		return "{}|∅"
	}
	parts := make([]string, len(t.variants))
	for i, v := range t.variants {
		parts[i] = v.String()
	}
	return strings.Join(parts, " | ")
}

// Signature is a type mapping from an input type to an output type, written
// in S-Net as input -> out1 | out2 | ....
type Signature struct {
	In  *Type
	Out *Type
}

// NewSignature constructs a signature.
func NewSignature(in, out *Type) Signature { return Signature{In: in, Out: out} }

// String renders the signature in S-Net style.
func (s Signature) String() string {
	return fmt.Sprintf("%s -> %s", s.In, s.Out)
}
