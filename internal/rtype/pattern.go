package rtype

import "snet/internal/record"

// Guard is a predicate over a record's tag values, used in pattern guards
// such as the star exit condition {<tasks> == <cnt>} from the paper's merger
// network. A nil Guard is always true.
type Guard func(r *record.Record) bool

// Pattern is a record pattern: a variant (the labels a record must carry)
// plus an optional guard over its tag values. Patterns appear as the exit
// condition of the star combinator and as the storage patterns of
// synchrocells.
type Pattern struct {
	Variant  *Variant
	Guard    Guard
	GuardSrc string // textual form of the guard, for diagnostics; may be empty
}

// NewPattern builds a pattern over the given variant with no guard.
func NewPattern(v *Variant) *Pattern { return &Pattern{Variant: v} }

// WithGuard attaches a guard predicate (and an optional textual rendering)
// and returns the pattern.
func (p *Pattern) WithGuard(g Guard, src string) *Pattern {
	p.Guard = g
	p.GuardSrc = src
	return p
}

// Matches reports whether the record carries the pattern's labels and
// satisfies its guard.
func (p *Pattern) Matches(r *record.Record) bool {
	if !p.Variant.MatchesRecord(r) {
		return false
	}
	if p.Guard != nil && !p.Guard(r) {
		return false
	}
	return true
}

// String renders the pattern; a guard is rendered from GuardSrc when known.
func (p *Pattern) String() string {
	if p.GuardSrc != "" {
		if p.Variant.Size() == 0 {
			return "{" + p.GuardSrc + "}"
		}
		return p.Variant.String() + " if " + p.GuardSrc
	}
	return p.Variant.String()
}
