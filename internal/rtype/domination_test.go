package rtype

import "testing"

func TestDominatedBasic(t *testing.T) {
	// Upstream emits {a,b}. A branch matching {a} is always outscored by a
	// branch matching {a,b}; the empty-pattern identity branch likewise.
	up := NewType(NewVariant(F("a"), F("b")))
	members := []*Type{
		NewType(NewVariant(F("a"))),
		NewType(NewVariant(F("a"), F("b"))),
		NewType(NewVariant()),
	}
	got := Dominated(up, members)
	want := []bool{true, false, true}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Dominated[%d] = %v, want %v (got %v)", i, got[i], want[i], got)
		}
	}
}

func TestDominatedRespectsFlowInheritedExtras(t *testing.T) {
	// Upstream emits {chunk}. Branch 0 wants {chunk,fst}: it cannot match a
	// bare {chunk} record, but a flow-inherited fst label would make it win
	// over the identity branch — so neither branch is dominated.
	up := NewType(NewVariant(F("chunk")))
	members := []*Type{
		NewType(NewVariant(F("chunk"), T("fst"))),
		NewType(NewVariant()),
	}
	got := Dominated(up, members)
	if got[0] || got[1] {
		t.Fatalf("Dominated = %v, want [false false]: inherited extras can activate branch 0", got)
	}
}

func TestDominatedDominatorMayUseInheritedLabels(t *testing.T) {
	// Upstream emits {a,b}. Branch 0 wants {a,c}: it only matches when c is
	// inherited, but any such record also matches branch 1's {a,b,c} with a
	// higher score — branch 0 is dead even though its variant is not a
	// subset of the upstream variant.
	up := NewType(NewVariant(F("a"), F("b")))
	members := []*Type{
		NewType(NewVariant(F("a"), F("c"))),
		NewType(NewVariant(F("a"), F("b"), F("c"))),
	}
	got := Dominated(up, members)
	if !got[0] || got[1] {
		t.Fatalf("Dominated = %v, want [true false]", got)
	}
}

func TestDominatedMultiVariantUpstream(t *testing.T) {
	// Domination must hold for every upstream variant. Branch 0 is dominated
	// for {a,b} records but wins {a}-only records, so it stays live.
	up := NewType(NewVariant(F("a"), F("b")), NewVariant(F("a")))
	members := []*Type{
		NewType(NewVariant(F("a"))),
		NewType(NewVariant(F("a"), F("b"))),
	}
	got := Dominated(up, members)
	if got[0] || got[1] {
		t.Fatalf("Dominated = %v, want [false false]", got)
	}
}

func TestDominatedTransitiveChainKeepsSurvivor(t *testing.T) {
	// a < ab < abc: the two smaller branches are dominated, the largest
	// survives — pruning all dominated members at once leaves a winner.
	up := NewType(NewVariant(F("a"), F("b"), F("c")))
	members := []*Type{
		NewType(NewVariant(F("a"))),
		NewType(NewVariant(F("a"), F("b"))),
		NewType(NewVariant(F("a"), F("b"), F("c"))),
	}
	got := Dominated(up, members)
	want := []bool{true, true, false}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Dominated = %v, want %v", got, want)
		}
	}
}

func TestDominatedEqualSizesNeverDominate(t *testing.T) {
	// Two branches with same-size variants tie; ties round-robin, so
	// neither is dead.
	up := NewType(NewVariant(F("a")))
	members := []*Type{
		NewType(NewVariant(F("a"))),
		NewType(NewVariant(F("a"))),
	}
	got := Dominated(up, members)
	if got[0] || got[1] {
		t.Fatalf("Dominated = %v, want [false false]: equal scores tie, not dominate", got)
	}
}

func TestDominatedUnknownUpstream(t *testing.T) {
	members := []*Type{
		NewType(NewVariant(F("a"))),
		NewType(NewVariant(F("a"), F("b"))),
	}
	for _, up := range []*Type{nil, EmptyType()} {
		got := Dominated(up, members)
		if got[0] || got[1] {
			t.Fatalf("Dominated(upstream=%v) = %v, want all false", up, got)
		}
	}
}

func TestDominatedClassesDistinct(t *testing.T) {
	// A tag t is not a field t: branch 0's tag variant is not covered by
	// branch 1's field variant.
	up := NewType(NewVariant(F("a"), T("t")))
	members := []*Type{
		NewType(NewVariant(T("t"))),
		NewType(NewVariant(F("t"), F("a"))),
	}
	got := Dominated(up, members)
	if got[0] {
		t.Fatalf("Dominated = %v: field t must not cover tag t", got)
	}
}
