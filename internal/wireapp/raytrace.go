// The distributed ray tracer: the wire form of the application's field
// values. Scenes do not cross the socket as geometry — both endpoints
// build the identical scene from the same (unbalanced, objects, seed)
// spec, and the wire carries only the 13-byte spec as a consistency
// check. Sections are 5 ints; chunks are a section header plus the real
// pixel bytes, so a multi-process render's pixel traffic is genuine.
package wireapp

import (
	"encoding/binary"
	"fmt"
	"sync"

	"snet/internal/raytrace"
	"snet/internal/wire"
)

// SceneSpec deterministically identifies a scene: every process that
// builds a scene from the same spec gets geometrically identical objects,
// which is what lets a render span processes without serializing geometry.
type SceneSpec struct {
	Unbalanced bool
	Objects    int
	Seed       int64
}

var (
	sceneMu    sync.Mutex
	sceneCache = map[SceneSpec]*raytrace.Scene{}
)

// Build returns the spec's scene, constructing it at most once per
// process (scene construction is deterministic but not free).
func (s SceneSpec) Build() *raytrace.Scene {
	sceneMu.Lock()
	defer sceneMu.Unlock()
	if sc, ok := sceneCache[s]; ok {
		return sc
	}
	var sc *raytrace.Scene
	if s.Unbalanced {
		sc = raytrace.UnbalancedScene(s.Objects, s.Seed)
	} else {
		sc = raytrace.BalancedScene(s.Objects, s.Seed)
	}
	sceneCache[s] = sc
	return sc
}

func (s SceneSpec) encode() []byte {
	buf := make([]byte, 0, 13)
	b := byte(0)
	if s.Unbalanced {
		b = 1
	}
	buf = append(buf, b)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(s.Objects))
	return binary.LittleEndian.AppendUint64(buf, uint64(s.Seed))
}

func decodeSpec(data []byte) (SceneSpec, error) {
	if len(data) != 13 {
		return SceneSpec{}, fmt.Errorf("wireapp: scene spec is %d bytes, want 13", len(data))
	}
	return SceneSpec{
		Unbalanced: data[0] != 0,
		Objects:    int(binary.LittleEndian.Uint32(data[1:5])),
		Seed:       int64(binary.LittleEndian.Uint64(data[5:13])),
	}, nil
}

func appendSection(buf []byte, s raytrace.Section) []byte {
	for _, v := range [5]int{s.Index, s.W, s.H, s.Y0, s.Y1} {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(v))
	}
	return buf
}

func parseSection(data []byte) (raytrace.Section, []byte, error) {
	if len(data) < 20 {
		return raytrace.Section{}, nil, fmt.Errorf("wireapp: section is %d bytes, want >= 20", len(data))
	}
	u := func(i int) int { return int(binary.LittleEndian.Uint32(data[i*4:])) }
	return raytrace.Section{Index: u(0), W: u(1), H: u(2), Y0: u(3), Y1: u(4)}, data[20:], nil
}

// RaytraceExt builds the extension table for a render of the given scene:
//
//	rt.scene  — *raytrace.Scene, carried as its 13-byte spec; the decoder
//	            rebuilds (well, cache-hits) the identical scene and rejects
//	            a spec that does not match its own, so a fleet launched
//	            with inconsistent scene flags fails loudly, not with
//	            subtly wrong pixels.
//	rt.sect   — raytrace.Section, 5 × u32.
//	rt.chunk  — raytrace.Chunk, section header + raw pixel bytes.
//
// Register the SAME spec on the coordinator and every snetd worker.
func RaytraceExt(spec SceneSpec) *wire.ExtTable {
	t := wire.NewExtTable()
	scene := spec.Build()
	wire.RegisterExt(t, "rt.scene",
		func(s *raytrace.Scene) ([]byte, error) {
			if s != scene {
				return nil, fmt.Errorf("wireapp: scene is not the one built from the registered spec %+v", spec)
			}
			return spec.encode(), nil
		},
		func(data []byte) (*raytrace.Scene, error) {
			got, err := decodeSpec(data)
			if err != nil {
				return nil, err
			}
			if got != spec {
				return nil, fmt.Errorf("wireapp: peer renders scene %+v, this process was launched with %+v", got, spec)
			}
			return scene, nil
		})
	wire.RegisterExt(t, "rt.sect",
		func(s raytrace.Section) ([]byte, error) {
			return appendSection(make([]byte, 0, 20), s), nil
		},
		func(data []byte) (raytrace.Section, error) {
			s, rest, err := parseSection(data)
			if err == nil && len(rest) != 0 {
				err = fmt.Errorf("wireapp: %d trailing bytes after section", len(rest))
			}
			return s, err
		})
	wire.RegisterExt(t, "rt.chunk",
		func(c raytrace.Chunk) ([]byte, error) {
			buf := appendSection(make([]byte, 0, 20+len(c.Pix)), c.Section)
			return append(buf, c.Pix...), nil
		},
		func(data []byte) (raytrace.Chunk, error) {
			s, rest, err := parseSection(data)
			if err != nil {
				return raytrace.Chunk{}, err
			}
			// Copy: a decoder must not alias the transient input buffer.
			pix := make([]byte, len(rest))
			copy(pix, rest)
			return raytrace.Chunk{Section: s, Pix: pix}, nil
		})
	return t
}
