// True multi-process tests: the test binary re-executes itself as snetd
// worker processes (TestMain intercepts the child role before the test
// runner starts), so coordinator and workers are separate OS processes
// joined by real sockets — under -race on both sides.
package wireapp

import (
	"fmt"
	"os"
	"os/exec"
	"testing"
	"time"

	"snet/internal/leakcheck"
	"snet/internal/snetray"
	"snet/internal/wire"
)

// testSpec must be identical in parent and child: the scene extension
// verifies it across the socket.
var testSpec = SceneSpec{Unbalanced: true, Objects: 40, Seed: 7}

const testFuseDelay = 30 * time.Millisecond

func TestMain(m *testing.M) {
	if app := os.Getenv("SNET_WIRE_WORKER"); app != "" {
		runWorkerProcess(app, os.Getenv("SNET_WIRE_ADDR"))
		return
	}
	os.Exit(m.Run())
}

func runWorkerProcess(app, addr string) {
	w := wire.NewWorker(wire.WorkerConfig{Ext: RaytraceExt(testSpec)})
	switch app {
	case "pipeline":
		for name, fn := range PipelineWorkerBoxes(testFuseDelay) {
			w.Register(name, fn)
		}
	case "raytrace":
		for name, fn := range snetray.WorkerBoxes(0) {
			w.Register(name, fn)
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown worker app %q\n", app)
		os.Exit(2)
	}
	if err := w.Run(addr); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	os.Exit(0)
}

// spawnWorker re-executes the test binary as a worker process and returns
// a wait function delivering its exit error (nil = clean GOODBYE exit).
// The wait function may be called any number of times.
func spawnWorker(t *testing.T, app, addr string) func() error {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(), "SNET_WIRE_WORKER="+app, "SNET_WIRE_ADDR="+addr)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	var exitErr error
	done := make(chan struct{})
	go func() {
		exitErr = cmd.Wait()
		close(done)
	}()
	t.Cleanup(func() {
		select {
		case <-done:
		case <-time.After(20 * time.Second):
			cmd.Process.Kill()
			<-done
			t.Error("worker process had to be killed")
		}
	})
	return func() error {
		<-done
		return exitErr
	}
}

// TestThreeProcessPipelineSteals is the acceptance scenario: the pipeline
// S-Net program, unmodified, across 1 coordinator + 2 worker processes,
// with at least one dispatch-time steal observed in Stats.Steals.
func TestThreeProcessPipelineSteals(t *testing.T) {
	leakcheck.Check(t)
	cl, err := wire.Listen("127.0.0.1:0", wire.CoordinatorConfig{
		Workers: 2, CPUsPerNode: 1, Ext: RaytraceExt(testSpec), JoinTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	w1 := spawnWorker(t, "pipeline", cl.Addr().String())
	w2 := spawnWorker(t, "pipeline", cl.Addr().String())
	if err := cl.WaitReady(); err != nil {
		t.Fatal(err)
	}
	const seqs = 8
	res, err := RunPipeline(cl, seqs, testFuseDelay)
	if err != nil {
		t.Fatal(err)
	}
	if res.Readings != seqs || res.Sum != ExpectedPipelineSum(seqs) {
		t.Fatalf("readings=%d sum=%d, want %d/%d", res.Readings, res.Sum, seqs, ExpectedPipelineSum(seqs))
	}
	// Every fuse execution was homed on node 1 with one slot; 8 overlapping
	// 30ms executions cannot all fit there, so the model must have stolen.
	if res.Stats.Steals < 1 {
		t.Fatalf("Stats.Steals = %d, want >= 1", res.Stats.Steals)
	}
	ws := cl.WireStats()
	if ws.RemoteExecs < 1 {
		t.Fatalf("no execution crossed a process boundary: %+v", ws)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w1(); err != nil {
		t.Fatalf("worker 1 exit: %v", err)
	}
	if err := w2(); err != nil {
		t.Fatalf("worker 2 exit: %v", err)
	}
}

// TestTwoProcessRaytracePixelIdentical renders the same scene twice — once
// in-process, once with the solver across a real socket in another OS
// process — and requires the images to be byte-identical.
func TestTwoProcessRaytracePixelIdentical(t *testing.T) {
	leakcheck.Check(t)
	cl, err := wire.Listen("127.0.0.1:0", wire.CoordinatorConfig{
		Workers: 1, CPUsPerNode: 2, Ext: RaytraceExt(testSpec), JoinTimeout: 20 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	wdone := spawnWorker(t, "raytrace", cl.Addr().String())
	if err := cl.WaitReady(); err != nil {
		t.Fatal(err)
	}
	cfg := snetray.Config{
		Scene: testSpec.Build(), W: 80, H: 60,
		Nodes: 2, CPUs: 2, Tasks: 6,
		Mode: snetray.DynamicSteal,
	}
	distCfg := cfg
	distCfg.Platform = cl
	got, err := snetray.Render(distCfg)
	if err != nil {
		t.Fatal(err)
	}
	want, err := snetray.Render(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Image.Equal(want.Image) {
		t.Fatal("distributed render differs from in-process render")
	}
	ws := cl.WireStats()
	if ws.RemoteExecs < 1 {
		t.Fatalf("no solver execution crossed the socket: %+v", ws)
	}
	if ws.BytesRecv == 0 {
		t.Fatalf("no pixel bytes came back over the wire: %+v", ws)
	}
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	if err := wdone(); err != nil {
		t.Fatalf("worker exit: %v", err)
	}
}

// TestPipelineInProcessMatchesWire runs the identical program on a plain
// dist.Cluster — the "same program, different platform" half of the claim
// the wire tests exercise, and the in-process baseline for BENCH_wire.
func TestPipelineInProcessMatchesWire(t *testing.T) {
	leakcheck.Check(t)
	res, err := RunPipeline(newLocalCluster(3, 1), 8, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Readings != 8 || res.Sum != ExpectedPipelineSum(8) {
		t.Fatalf("readings=%d sum=%d", res.Readings, res.Sum)
	}
}
