// Application-level fault tolerance: a real raytrace render survives its
// worker being killed mid-flight, with the pending solver calls completing
// on local slots and the image coming out pixel-identical to an
// undisturbed in-process render. The worker here is in-process (its
// connection severed via faultwire — indistinguishable, from the
// coordinator's side, from a SIGKILL), which is what lets the test hold
// solver calls on a channel and kill the link at a moment it controls
// exactly; scripts/chaos-smoke.sh kills a real OS process the same way.
package wireapp

import (
	"testing"
	"time"

	"snet/internal/core"
	"snet/internal/faultwire"
	"snet/internal/leakcheck"
	"snet/internal/snetray"
	"snet/internal/wire"
)

func TestKilledWorkerRaytracePixelIdentical(t *testing.T) {
	leakcheck.Check(t)
	cl, err := wire.Listen("127.0.0.1:0", wire.CoordinatorConfig{
		Workers: 1, CPUsPerNode: 2, Ext: RaytraceExt(testSpec), JoinTimeout: 20 * time.Second,
		// Keep the heartbeat sweep inert: this test's kill is an observed
		// disconnect, not a silent hang (fault_test.go in internal/wire
		// covers that detector).
		HeartbeatInterval: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	// The worker's solver boxes hold every call on a channel until
	// released — so when the link is severed there is, with certainty, a
	// remote call pending (the render's placement guarantees at least one
	// solver execution is granted the worker's node).
	held := make(chan struct{}, 64)
	gate := make(chan struct{})
	var d faultwire.Dialer
	w := wire.NewWorker(wire.WorkerConfig{Ext: RaytraceExt(testSpec), Dial: d.Dial})
	for name, fn := range snetray.WorkerBoxes(0) {
		inner := fn
		w.Register(name, func(c *core.BoxCall) error {
			held <- struct{}{}
			<-gate
			return inner(c)
		})
	}
	workerErr := make(chan error, 1)
	go func() { workerErr <- w.Run(cl.Addr().String()) }()
	if err := cl.WaitReady(); err != nil {
		t.Fatal(err)
	}
	defer func() { <-workerErr }()

	cfg := snetray.Config{
		Scene: testSpec.Build(), W: 80, H: 60,
		Nodes: 2, CPUs: 2, Tasks: 6,
		Mode: snetray.DynamicSteal,
	}
	distCfg := cfg
	distCfg.Platform = cl
	renderDone := make(chan struct{})
	var got *snetray.Result
	var renderErr error
	go func() {
		defer close(renderDone)
		got, renderErr = snetray.Render(distCfg)
	}()

	// Kill the worker while at least one remote solver call is held
	// mid-execution — its RESULT can never arrive, so the coordinator
	// MUST fail it over for the render to finish at all.
	<-held
	d.Last().Sever()
	close(gate)
	<-renderDone
	if renderErr != nil {
		t.Fatal(renderErr)
	}

	want, err := snetray.Render(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Image.Equal(want.Image) {
		t.Fatal("render with a killed worker differs from the in-process render")
	}
	ws := cl.WireStats()
	if ws.Failovers < 1 {
		t.Fatalf("no failover recorded despite pending calls at the kill: %+v", ws)
	}
	if ws.LiveWorkers != 0 {
		t.Fatalf("killed worker still counted live: %+v", ws)
	}
}
