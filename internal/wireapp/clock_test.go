// Application-level exercise of the wire.Clock seam: the coordinator's
// entire fault detector — heartbeat ticker AND wall-clock reads — is
// driven by a synthetic clock injected through the public
// CoordinatorConfig.Clock, with a real pipeline running over a real
// socket underneath. No sleeps, no unexported hooks: detection happens
// exactly when the test advances time and fires a tick, and the
// application keeps completing runs afterwards on local slots.
package wireapp

import (
	"sync"
	"testing"
	"time"

	"snet/internal/leakcheck"
	"snet/internal/wire"
)

// syntheticClock is a hand-advanced wire.Clock: Now reads a settable
// time, and the heartbeat ticker fires only when the test says so.
type syntheticClock struct {
	mu   sync.Mutex
	t    time.Time
	tick chan time.Time
}

func newSyntheticClock() *syntheticClock {
	return &syntheticClock{t: time.Unix(5_000_000, 0), tick: make(chan time.Time, 1)}
}

func (s *syntheticClock) now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.t
}

func (s *syntheticClock) advance(d time.Duration) time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.t = s.t.Add(d)
	return s.t
}

// clock assembles the wire.Clock: synthetic Now, and a ticker whose
// channel the test feeds by hand (interval is irrelevant).
func (s *syntheticClock) clock() wire.Clock {
	return wire.Clock{
		NowFn: s.now,
		TickerFn: func(time.Duration) *wire.Ticker {
			return &wire.Ticker{C: s.tick, StopFn: func() {}}
		},
	}
}

func TestSyntheticClockDrivesLivenessOverRealPipeline(t *testing.T) {
	leakcheck.Check(t)
	sc := newSyntheticClock()
	cl, err := wire.Listen("127.0.0.1:0", wire.CoordinatorConfig{
		Workers: 1, CPUsPerNode: 2, JoinTimeout: 20 * time.Second,
		HeartbeatInterval: time.Second,
		LivenessTimeout:   4 * time.Second,
		Clock:             sc.clock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	w := wire.NewWorker(wire.WorkerConfig{})
	for name, fn := range PipelineWorkerBoxes(0) {
		w.Register(name, fn)
	}
	workerErr := make(chan error, 1)
	go func() { workerErr <- w.Run(cl.Addr().String()) }()
	if err := cl.WaitReady(); err != nil {
		t.Fatal(err)
	}
	defer func() { <-workerErr }()

	// A full pipeline run with the fleet healthy: records cross the
	// socket, fuse executes remotely. Synthetic time never moves, so the
	// detector cannot misfire mid-run.
	const seqs = 6
	res, err := RunPipeline(cl, seqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != ExpectedPipelineSum(seqs) {
		t.Fatalf("healthy run sum = %d, want %d", res.Sum, ExpectedPipelineSum(seqs))
	}
	if ws := cl.WireStats(); ws.LiveWorkers != 1 {
		t.Fatalf("worker not live after a successful run: %+v", ws)
	}

	// Advance past the liveness timeout and fire exactly one heartbeat
	// tick: the sweep must compare the synthetic idle time against the
	// stamps it recorded with the same clock and declare the worker dead —
	// no wall-clock time has passed at all.
	sc.advance(5 * time.Second)
	sc.tick <- sc.now()
	deadline := time.Now().Add(10 * time.Second)
	for cl.WireStats().LiveWorkers != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("worker never declared dead: %+v", cl.WireStats())
		}
		time.Sleep(time.Millisecond)
	}
	if err := <-workerErr; err == nil {
		t.Fatal("worker Run returned nil after its connection was declared dead")
	}
	workerErr <- nil // keep the deferred drain non-blocking

	// The application survives its only worker's death: the next run
	// completes on the coordinator's local slots.
	res, err = RunPipeline(cl, seqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Sum != ExpectedPipelineSum(seqs) {
		t.Fatalf("post-death run sum = %d, want %d", res.Sum, ExpectedPipelineSum(seqs))
	}
}
