// Package wireapp holds the demonstration applications for the
// multi-process transport (internal/wire): a sensor-fusion pipeline whose
// records are plain scalars, and the paper's ray tracer, whose scene,
// section, and chunk values need a wire.ExtTable to cross a socket. Both
// are written once against core.Platform — the SAME program runs on an
// in-process dist.Cluster or a wire.Cluster spanning OS processes, which
// is the claim the transport exists to demonstrate.
package wireapp

import (
	"fmt"
	"time"

	"snet/internal/compile"
	"snet/internal/core"
	"snet/internal/dist"
	"snet/internal/lang"
	"snet/internal/record"
)

// PipelineSource is the sensor-fusion pipeline: a generator fans out
// <n> sequences of temperature/humidity readings, a per-sequence
// synchrocell pairs them, and the fuse box combines each pair. Every
// record is tagged <node>=1, so every fuse execution's HOME is node 1 —
// with work stealing on and node 1 saturated, dispatch-time steals onto
// the other nodes are structurally guaranteed once fuse calls overlap.
const PipelineSource = `
net pipeline
{
    box gen  ( (<n>) -> (temp, <seq>, <node>) | (humid, <seq>, <node>) );
    box fuse ( (temp, humid) -> (reading) );
} connect
    gen .. ( ( [| {temp}, {humid} |] .. fuse )!<seq> )!@<node>
`

// Deterministic sensor values, shared by the generator and the checker.
func pipeTemp(seq int) int  { return 10*seq + 3 }
func pipeHumid(seq int) int { return 100*seq + 7 }

// ExpectedPipelineSum is the sum of all fused readings for n sequences.
func ExpectedPipelineSum(n int) int {
	sum := 0
	for i := 0; i < n; i++ {
		sum += pipeTemp(i) + pipeHumid(i)
	}
	return sum
}

// FuseBox returns the fuse body: reading = temp + humid, holding its CPU
// slot for delay to model real compute (and to force executions to
// overlap, which is what makes stealing observable).
func FuseBox(delay time.Duration) core.BoxFunc {
	return func(c *core.BoxCall) error {
		temp := c.Field("temp").(int)
		humid := c.Field("humid").(int)
		if delay > 0 {
			time.Sleep(delay)
		}
		c.Emit(c.NewRecord().SetField("reading", temp+humid))
		return nil
	}
}

// PipelineWorkerBoxes is the box table a worker process registers to
// serve the pipeline: fuse only — the generator is coordination-side.
func PipelineWorkerBoxes(delay time.Duration) map[string]core.BoxFunc {
	return map[string]core.BoxFunc{"fuse": FuseBox(delay)}
}

// PipelineResult is the outcome of one pipeline run.
type PipelineResult struct {
	Readings int
	Sum      int
	Stats    dist.Stats
}

// RunPipeline compiles the pipeline and runs it with n sequences on the
// given platform with work stealing enabled. The platform decides where
// fuse runs — a dist.Cluster keeps it in-process, a wire.Cluster ships it
// to snetd workers — and the result is identical either way.
func RunPipeline(plat core.Platform, n int, delay time.Duration) (*PipelineResult, error) {
	reg := compile.NewRegistry()
	reg.RegisterBox("gen", func(c *core.BoxCall) error {
		count := c.Tag("n")
		for i := 0; i < count; i++ {
			c.Emit(c.NewRecord().SetField("temp", pipeTemp(i)).
				SetTag("seq", i).SetTag("node", 1))
			c.Emit(c.NewRecord().SetField("humid", pipeHumid(i)).
				SetTag("seq", i).SetTag("node", 1))
		}
		return nil
	})
	reg.RegisterBox("fuse", FuseBox(delay))
	prog, err := lang.Parse(PipelineSource)
	if err != nil {
		return nil, fmt.Errorf("wireapp: %w", err)
	}
	res, err := compile.Program(prog, reg)
	if err != nil {
		return nil, fmt.Errorf("wireapp: %w", err)
	}
	ent, ok := res.Net("pipeline")
	if !ok {
		return nil, fmt.Errorf("wireapp: pipeline net not compiled")
	}
	outs, err := core.NewNetwork(ent, core.Options{Platform: plat, WorkStealing: true}).
		Run(record.Build().T("n", n).Rec())
	if err != nil {
		return nil, err
	}
	r := &PipelineResult{Readings: len(outs)}
	for _, o := range outs {
		v, ok := o.Field("reading")
		if !ok {
			return nil, fmt.Errorf("wireapp: output %s has no reading", o)
		}
		r.Sum += v.(int)
	}
	if s, ok := plat.(interface{ Stats() dist.Stats }); ok {
		r.Stats = s.Stats()
	}
	return r, nil
}
