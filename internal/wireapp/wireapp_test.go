package wireapp

import (
	"strings"
	"testing"

	"snet/internal/dist"
	"snet/internal/raytrace"
)

func newLocalCluster(nodes, cpus int) *dist.Cluster {
	return dist.NewCluster(nodes, cpus)
}

func TestSceneSpecBuildCached(t *testing.T) {
	spec := SceneSpec{Unbalanced: true, Objects: 10, Seed: 3}
	if spec.Build() != spec.Build() {
		t.Fatal("Build must return the cached scene")
	}
	other := SceneSpec{Unbalanced: false, Objects: 10, Seed: 3}
	if spec.Build() == other.Build() {
		t.Fatal("distinct specs share a scene")
	}
}

func TestRaytraceExtRoundTrips(t *testing.T) {
	spec := SceneSpec{Unbalanced: true, Objects: 10, Seed: 3}
	ext := RaytraceExt(spec)

	name, data, err := ext.Encode(spec.Build())
	if err != nil || name != "rt.scene" {
		t.Fatalf("name=%q err=%v", name, err)
	}
	v, err := ext.Decode(name, data)
	if err != nil {
		t.Fatal(err)
	}
	if v.(*raytrace.Scene) != spec.Build() {
		t.Fatal("scene did not decode to the cached instance")
	}

	sect := raytrace.Section{Index: 2, W: 64, H: 48, Y0: 12, Y1: 24}
	name, data, err = ext.Encode(sect)
	if err != nil || name != "rt.sect" {
		t.Fatalf("name=%q err=%v", name, err)
	}
	if v, err = ext.Decode(name, data); err != nil || v.(raytrace.Section) != sect {
		t.Fatalf("section = %v, %v", v, err)
	}

	chunk, _ := raytrace.RenderSection(spec.Build(), sect)
	name, data, err = ext.Encode(chunk)
	if err != nil || name != "rt.chunk" {
		t.Fatalf("name=%q err=%v", name, err)
	}
	v, err = ext.Decode(name, data)
	if err != nil {
		t.Fatal(err)
	}
	got := v.(raytrace.Chunk)
	if got.Section != chunk.Section || len(got.Pix) != len(chunk.Pix) {
		t.Fatalf("chunk header mismatch: %+v vs %+v", got.Section, chunk.Section)
	}
	for i := range got.Pix {
		if got.Pix[i] != chunk.Pix[i] {
			t.Fatalf("pixel %d differs", i)
		}
	}
}

func TestRaytraceExtRejectsForeignScene(t *testing.T) {
	spec := SceneSpec{Unbalanced: true, Objects: 10, Seed: 3}
	ext := RaytraceExt(spec)
	// A scene that is not the registered spec's cached instance must be
	// refused at encode time — shipping its spec would lie.
	if _, _, err := ext.Encode(raytrace.BalancedScene(5, 99)); err == nil {
		t.Fatal("foreign scene encoded")
	}
	// A peer launched with different scene flags must be refused at
	// decode time, with a message naming both specs.
	otherData := SceneSpec{Unbalanced: false, Objects: 99, Seed: 1}.encode()
	if _, err := ext.Decode("rt.scene", otherData); err == nil ||
		!strings.Contains(err.Error(), "launched with") {
		t.Fatalf("err = %v", err)
	}
}

func TestExpectedPipelineSum(t *testing.T) {
	// Spot-check the arithmetic the distributed assertions lean on.
	if got := ExpectedPipelineSum(1); got != pipeTemp(0)+pipeHumid(0) {
		t.Fatalf("sum(1) = %d", got)
	}
	if got, want := ExpectedPipelineSum(3), (3+7)+(13+107)+(23+207); got != want {
		t.Fatalf("sum(3) = %d, want %d", got, want)
	}
}
