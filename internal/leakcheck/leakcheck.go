// Package leakcheck is a test harness asserting that the S-Net runtime
// reclaims every goroutine it starts. The lifecycle contract (core's
// package doc) promises that both orderly shutdown and Instance.Stop leave
// zero runtime goroutines behind; tests enforce it by calling Check at the
// top of the test body and letting the registered cleanup diff the live
// goroutine set.
//
// Detection is by stack inspection: a goroutine belongs to the runtime when
// any frame of its stack lies in an snet package. Goroutines take a moment
// to be descheduled after their work is logically done (a collector's
// closer between wg.Wait and its return, a test's own feeder draining), so
// the cleanup polls with a grace period before declaring a leak.
package leakcheck

import (
	"runtime"
	"strings"
	"testing"
	"time"
)

// grace is how long the cleanup waits for in-flight goroutines to finish
// unwinding before declaring them leaked. Reclamation after Stop or a full
// drain is prompt; the window only absorbs scheduler latency.
const grace = 5 * time.Second

// Check registers a cleanup that fails the test if any snet runtime
// goroutine is still alive once the test body (and the grace period) has
// passed. Call it first thing in a test that instantiates networks.
func Check(t testing.TB) {
	t.Helper()
	t.Cleanup(func() {
		deadline := time.Now().Add(grace)
		var leaked []string
		for {
			leaked = Leaked()
			if len(leaked) == 0 {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("leakcheck: %d runtime goroutine(s) leaked:\n\n%s",
			len(leaked), strings.Join(leaked, "\n\n"))
	})
}

// Leaked returns the stacks of live goroutines that have an snet frame,
// excluding test-runner goroutines (the test function itself runs snet
// code) and this package's own polling.
func Leaked() []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, 2*len(buf))
	}
	var leaked []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if !strings.Contains(g, "snet/internal/") && !strings.Contains(g, "\nsnet.") {
			continue
		}
		if strings.Contains(g, "testing.tRunner") ||
			strings.Contains(g, "leakcheck.Leaked") {
			continue
		}
		leaked = append(leaked, g)
	}
	return leaked
}
