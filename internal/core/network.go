package core

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"snet/internal/journal"
	"snet/internal/record"
	"snet/internal/stream"
)

// ErrStopped is reported by instances aborted with Instance.Stop (directly
// or via a cancelled RunContext): the network did not run to completion and
// in-flight records were discarded.
var ErrStopped = errors.New("snet: instance stopped")

// Network is an instantiable S-Net: a toplevel entity plus runtime options.
// A Network may be instantiated many times; each Start/Run creates a fresh
// set of goroutines and channels.
type Network struct {
	entity    *Entity
	optimized *Entity
	opts      Options
	optStats  OptStats
}

// NewNetwork wraps an entity into a runnable network. A zero Options value
// selects the LocalPlatform, DefaultBufferSize and the full optimizer
// (see Optimize); OptimizeOff instantiates the tree exactly as built.
func NewNetwork(e *Entity, opts Options) *Network {
	if opts.BufferSize == 0 {
		opts.BufferSize = DefaultBufferSize
	}
	n := &Network{entity: e, optimized: e, opts: opts}
	if opts.Optimize != OptimizeOff {
		n.optimized, n.optStats = Optimize(e)
	}
	return n
}

// Entity returns the underlying toplevel entity, as constructed (not the
// optimized form Start instantiates).
func (n *Network) Entity() *Entity { return n.entity }

// OptStats reports what the instantiation-time optimizer did to this
// network's entity tree. With Options.Optimize set to OptimizeOff the
// zero value is returned (Enabled false).
func (n *Network) OptStats() OptStats { return n.optStats }

// Instance is one running network instantiation. It terminates in one of
// two ways:
//
//   - orderly: close In (or call Close) and drain Out; the shutdown
//     cascades entity by entity and Out closes after the last record;
//   - abort: call Stop; every runtime goroutine — including those blocked
//     sending to an unread Out or waiting for a platform CPU slot — is
//     unwound and reclaimed before Stop returns. Records in flight are
//     discarded.
type Instance struct {
	// In is the network's global input stream. Close it to initiate
	// orderly shutdown. Sending a record transfers its ownership to the
	// network — the runtime recycles records it consumes, so the caller
	// must not touch a record after sending it (see Run). After Stop, a
	// plain send on In can block forever; producers that may race a Stop
	// should use Send or select on Done themselves.
	In chan<- *record.Record
	// Out is the network's global output stream. It is closed after the
	// network has fully drained — or fully unwound, after Stop.
	Out <-chan *record.Record

	env       *Env
	in        chan *record.Record
	optStats  OptStats
	stopOnce  sync.Once
	closeOnce sync.Once
	jnlOnce   sync.Once
	recovered bool
}

// Start instantiates the network and returns its global input and output
// streams. The public In and Out are plain record channels; two boundary
// pumps batch records entering the first link and unbatch records leaving
// the last one, so callers keep the channel API while every interior hop
// runs on the batched transport.
func (n *Network) Start() *Instance {
	env := newEnv(n.opts)
	if d := n.opts.Durability; d != nil {
		// A journal that cannot open degrades durability, not delivery:
		// the failure is reported and the instance runs untracked.
		j, err := journal.Open(journal.Config{
			Dir: d.Dir, FS: d.FS, SegmentBytes: d.SegmentBytes,
			Fsync: d.Fsync, FsyncInterval: d.FsyncInterval,
			Clock: d.Clock, Ext: d.Ext,
		})
		if err != nil {
			env.reportRT("", ErrCatJournal, "", fmt.Errorf("journal open: %w", err))
		} else {
			env.jnl = j
			env.track = newTracker(j, env.errs)
		}
	}
	in := make(chan *record.Record, max(0, n.opts.BufferSize))
	out := make(chan *record.Record, max(0, n.opts.BufferSize))
	first := env.newLink()
	last := env.newLink()
	n.optimized.Spawn(env, first, last)
	// Intake: channel -> first link. The link's own flush policy decides
	// batch boundaries; closing In cascades into the network. With a
	// journal, each accepted data record is logged and stamped with its
	// delivery id before it enters the network — a record arriving with a
	// delivery id already set is a replay (Recover) and is tracked without
	// being re-journaled. Records the journal cannot encode (opaque field
	// values without an Ext codec) flow through untracked.
	env.start(func() {
		defer env.closeLink(first)
		for {
			var r *record.Record
			var ok bool
			select {
			case r, ok = <-in:
			case <-env.done:
				return
			}
			if !ok {
				return
			}
			if env.jnl != nil && r.IsData() {
				if id := r.Delivery(); id != 0 {
					env.track.open(id)
				} else if env.jnl.Marshalable(r) {
					id, err := env.jnl.Append("", r)
					if err != nil {
						env.reportRT("", ErrCatJournal, r.String(),
							fmt.Errorf("journal append: %w", err))
					} else {
						r.SetDelivery(id)
						env.track.open(id)
					}
				}
			}
			if !first.Send(r, env.done) {
				return
			}
		}
	})
	// Outlet: last link -> channel. Records are delivered one at a time
	// (the public contract), whole batches are drained per wakeup. The
	// hand-off to Out is the completion boundary of a tracked delivery:
	// each record's id is acknowledged — batched, one tracker call per
	// link batch — after the record is in the caller's channel.
	var sink stream.AckSink
	if env.track != nil {
		sink = env.track
	}
	env.start(func() {
		defer close(out)
		acker := stream.NewAcker(sink)
		for {
			b, ok := last.RecvBatch(env.done)
			if !ok {
				return
			}
			for _, r := range b.Recs {
				// Read the id before the send: the channel hand-off
				// transfers ownership, the receiver may recycle at once.
				id := r.Delivery()
				select {
				case out <- r: // buffered fast path
				default:
					select {
					case out <- r:
					case <-env.done:
						return
					}
				}
				acker.Observe(id)
			}
			acker.Flush()
			stream.FreeBatch(b)
		}
	})
	return &Instance{In: in, Out: out, env: env, in: in, optStats: n.optStats}
}

// LinkStats is a snapshot of one stream link's traffic counters: records
// and batches sent, current queued depth, and the flush-cause breakdown.
type LinkStats = stream.Stats

// LinkStats returns a snapshot of every stream link in the instance, in
// creation order (links appear as their entities are instantiated,
// including dynamically unfolded star stages and split replicas). Summing
// SentBatches against SentRecords gives the batching amortization the
// instance achieved; Depth localizes where records are queued.
//
// A long-running instance keeps creating links (star unfoldings,
// feedback-star generations), so links whose receiver has observed
// end-of-stream — their counters are final — are periodically folded
// into one cumulative entry to bound memory; when any have been folded,
// that aggregate is the first element of the result.
func (i *Instance) LinkStats() []LinkStats { return i.env.links.snapshot() }

// OptStats reports what the instantiation-time optimizer did to the
// network this instance was started from (see Network.OptStats).
func (i *Instance) OptStats() OptStats { return i.optStats }

// Err returns all runtime errors reported so far, joined, or nil. After
// Stop the result includes ErrStopped.
func (i *Instance) Err() error {
	return errors.Join(i.env.errs.all()...)
}

// Errs returns the structured view of the instance's runtime errors: each
// retained error with the reporting entity, a failure category and the
// involved record's shape, plus per-category counts of errors dropped
// beyond the retention cap (see ErrorReport for the retention contract).
func (i *Instance) Errs() ErrorReport { return i.env.errs.report() }

// DeadLetters returns the records the runtime has given up on under
// Options.BoxRetry: for each, the exact input record of the failed box
// executions, the box's name, the attempt count and the final error. The
// queue keeps the first maxDeadLetters letters; dropped is how many more
// were discarded beyond that cap. The records stay owned by the instance —
// treat them as read-only.
func (i *Instance) DeadLetters() (letters []DeadLetter, dropped int) {
	return i.env.dead.snapshot()
}

// Recover replays the journal's unacknowledged records — deliveries whose
// derivation trees had not completed when the previous instance died —
// into this instance's input, in original acceptance order. dir must match
// Options.Durability.Dir (a cross-check that the caller is replaying the
// journal this instance actually opened). Replayed records keep their
// original delivery ids: they are tracked without being re-journaled, and
// the journal's own replay already deduplicated by id, so a record is
// re-offered at most once per restart.
//
// Call Recover once, after Start and before feeding new input, so replayed
// records precede fresh ones. It returns how many records were re-offered.
func (i *Instance) Recover(dir string) (int, error) {
	if i.env.jnl == nil {
		return 0, errors.New("snet: Recover: instance has no journal (Options.Durability unset or open failed)")
	}
	if d := i.env.opts.Durability.Dir; dir != d {
		return 0, fmt.Errorf("snet: Recover: dir %q does not match the instance journal dir %q", dir, d)
	}
	if i.recovered {
		return 0, errors.New("snet: Recover: already recovered")
	}
	i.recovered = true
	n := 0
	for _, e := range i.env.jnl.Recovered() {
		e.Rec.SetDelivery(e.ID)
		if !i.Send(e.Rec) {
			return n, ErrStopped
		}
		n++
	}
	return n, nil
}

// closeJournal releases the ingress journal once, reporting a failed close
// to the error sink. It must only run after every runtime goroutine has
// finished (no more appends or acks in flight).
func (i *Instance) closeJournal() {
	if i.env.jnl == nil {
		return
	}
	i.jnlOnce.Do(func() {
		if err := i.env.jnl.Close(); err != nil {
			i.env.errs.add(&RuntimeError{Category: ErrCatJournal,
				Err: fmt.Errorf("journal close: %w", err)})
		}
	})
}

// ErrCount returns the number of runtime errors reported so far, including
// those beyond the sink's retention cap (Err keeps the first
// maxRetainedErrors plus a dropped-count summary).
func (i *Instance) ErrCount() int { return i.env.errs.count() }

// Done returns a channel closed when the instance is stopped. Producers
// feeding In from their own goroutines select on it (or use Send) so a
// Stop cannot strand them mid-send.
func (i *Instance) Done() <-chan struct{} { return i.env.done }

// Send delivers a record to In unless the instance has been stopped; it
// reports whether the record was accepted. Unlike a plain channel send it
// cannot block past a Stop, and once Stop has returned it always refuses.
// Send guards against Stop only: Close (and closing In by hand) follows
// the usual Go channel rule that the input may only be closed once all
// producers have finished — a Send racing a Close panics, exactly like a
// raw send would.
func (i *Instance) Send(r *record.Record) bool {
	select {
	case <-i.env.done:
		return false
	default:
	}
	select {
	case i.in <- r:
		return true
	default:
	}
	select {
	case i.in <- r:
		return true
	case <-i.env.done:
		return false
	}
}

// CloseIn closes the instance's input stream, idempotently, initiating
// orderly shutdown; Out closes once the network has drained. Use it when
// the caller collects Out itself and only then calls Close (which becomes
// the completion barrier — its own drain finds Out already empty). The
// channel rules still apply: every producer must have stopped sending.
func (i *Instance) CloseIn() {
	i.closeOnce.Do(func() { close(i.in) })
}

// Stop aborts the instance: all entity goroutines — wherever they are
// blocked — unwind, platform CPU slots being waited on are released, Out is
// closed and drained, and every runtime goroutine is reclaimed before Stop
// returns. Records still in flight are discarded, not recycled; ownership
// of records already received from Out stays with the caller. Stop is
// idempotent and always returns ErrStopped.
func (i *Instance) Stop() error {
	i.stopOnce.Do(func() {
		i.env.errs.markStopped()
		close(i.env.done)
	})
	i.env.wg.Wait()
	// The cascade has closed Out; empty whatever it still buffers so the
	// instance leaves no records behind even when nobody was reading.
	//lint:reason Out is already closed once wg.Wait returns, so this drain cannot block
	for r := range i.Out {
		recycle(r)
	}
	// Discarded in-flight records were never acknowledged — that is the
	// point: a successor instance over the same directory replays them.
	i.closeJournal()
	return ErrStopped
}

// Close shuts the instance down in an orderly fashion: it closes In, drains
// (and recycles) any output the caller has not consumed, waits for every
// runtime goroutine to finish and returns the instance's accumulated error.
// Callers that want the output should drain Out themselves before calling
// Close. Close must not be combined with closing In by hand, and — like
// closing any Go channel — must only be called once every producer has
// stopped sending (use Stop to abort past live producers). It is safe to
// call after Stop, and calling Stop after Close is safe too.
func (i *Instance) Close() error {
	i.closeOnce.Do(func() { close(i.in) })
	//lint:reason orderly-shutdown drain: In is closed, so the cascade closes Out in finite time
	for r := range i.Out {
		recycle(r)
	}
	i.env.wg.Wait()
	i.closeJournal()
	return i.Err()
}

// Run feeds the input records into a fresh instantiation of the network,
// closes the input, and collects the complete output. It returns the
// outputs in arrival order together with any runtime errors.
//
// Run takes ownership of the input records — the stream single-owner rule.
// The runtime recycles records it consumes (box triggers, filter inputs,
// synchrocell merges), so a caller must not reuse records after feeding
// them in; build fresh ones per run, or draw them from a record.Pool and
// return the outputs to it. Ownership of the returned records is the
// caller's.
func (n *Network) Run(inputs ...*record.Record) ([]*record.Record, error) {
	return n.RunContext(context.Background(), inputs...)
}

// RunContext is Run with a lifetime: when ctx is cancelled before the
// network has drained, the instance is stopped, all goroutines are
// reclaimed, and the records produced so far are returned together with an
// error wrapping ctx's cause and ErrStopped.
func (n *Network) RunContext(ctx context.Context, inputs ...*record.Record) ([]*record.Record, error) {
	inst := n.Start()
	unwatch := context.AfterFunc(ctx, func() { inst.Stop() })
	defer unwatch()
	go func() {
		for _, r := range inputs {
			if !inst.Send(r) {
				return
			}
		}
		inst.closeOnce.Do(func() { close(inst.in) })
	}()
	var outs []*record.Record
	//lint:reason collection drain: the feeder closes In (or ctx cancellation stops the instance), so the cascade closes Out in finite time
	for r := range inst.Out {
		outs = append(outs, r)
	}
	inst.env.wg.Wait()
	inst.closeJournal()
	if ctx.Err() != nil {
		return outs, errors.Join(ctx.Err(), inst.Err())
	}
	return outs, inst.Err()
}
