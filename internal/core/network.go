package core

import (
	"errors"

	"snet/internal/record"
)

// Network is an instantiable S-Net: a toplevel entity plus runtime options.
// A Network may be instantiated many times; each Start/Run creates a fresh
// set of goroutines and channels.
type Network struct {
	entity *Entity
	opts   Options
}

// NewNetwork wraps an entity into a runnable network. A zero Options value
// selects the LocalPlatform and DefaultBufferSize.
func NewNetwork(e *Entity, opts Options) *Network {
	if opts.BufferSize == 0 {
		opts.BufferSize = DefaultBufferSize
	}
	return &Network{entity: e, opts: opts}
}

// Entity returns the underlying toplevel entity.
func (n *Network) Entity() *Entity { return n.entity }

// Instance is one running instantiation of a Network.
type Instance struct {
	// In is the network's global input stream. Close it to initiate
	// orderly shutdown. Sending a record transfers its ownership to the
	// network — the runtime recycles records it consumes, so the caller
	// must not touch a record after sending it (see Run).
	In chan<- *record.Record
	// Out is the network's global output stream. It is closed after the
	// network has fully drained.
	Out <-chan *record.Record

	env *Env
}

// Start instantiates the network and returns its global input and output
// streams.
func (n *Network) Start() *Instance {
	env := newEnv(n.opts)
	in := env.newChan()
	out := env.newChan()
	n.entity.Spawn(env, in, out)
	return &Instance{In: in, Out: out, env: env}
}

// Err returns all runtime errors reported so far, joined, or nil.
func (i *Instance) Err() error {
	return errors.Join(i.env.errs.all()...)
}

// Run feeds the input records into a fresh instantiation of the network,
// closes the input, and collects the complete output. It returns the
// outputs in arrival order together with any runtime errors.
//
// Run takes ownership of the input records — the stream single-owner rule.
// The runtime recycles records it consumes (box triggers, filter inputs,
// synchrocell merges), so a caller must not reuse records after feeding
// them in; build fresh ones per run, or draw them from a record.Pool and
// return the outputs to it. Ownership of the returned records is the
// caller's.
func (n *Network) Run(inputs ...*record.Record) ([]*record.Record, error) {
	inst := n.Start()
	go func() {
		for _, r := range inputs {
			inst.In <- r
		}
		close(inst.In)
	}()
	var outs []*record.Record
	for r := range inst.Out {
		outs = append(outs, r)
	}
	return outs, inst.Err()
}
