package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"snet/internal/journal"
	"snet/internal/leakcheck"
	"snet/internal/record"
	"snet/internal/rtype"
)

// failNBox returns a box {x} -> {x} that fails its first n executions per
// record value and then passes the record through incremented.
func failNBox(name string, n int) *Entity {
	var mu sync.Mutex
	attempts := map[int]int{}
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	return NewBox(name, sig, func(c *BoxCall) error {
		x := c.Field("x").(int)
		mu.Lock()
		attempts[x]++
		cur := attempts[x]
		mu.Unlock()
		if cur <= n {
			return fmt.Errorf("induced failure %d for x=%d", cur, x)
		}
		c.Emit(record.New().SetField("x", x+1))
		return nil
	})
}

// immediateClock returns a retry clock whose timers fire at once, recording
// each requested delay.
func immediateClock(delays *[]time.Duration) journal.Clock {
	var mu sync.Mutex
	return journal.Clock{
		TimerFn: func(d time.Duration) journal.Timer {
			mu.Lock()
			*delays = append(*delays, d)
			mu.Unlock()
			ch := make(chan time.Time, 1)
			ch <- time.Time{}
			return journal.Timer{C: ch, StopFn: func() bool { return false }}
		},
	}
}

func TestPoisonRecordDeadLetters(t *testing.T) {
	defer leakcheck.Check(t)
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	poison := NewBox("poison", sig, func(c *BoxCall) error {
		return errors.New("always fails")
	})
	net := NewNetwork(poison, Options{BoxRetry: BoxRetry{Attempts: 3}})
	inst := net.Start()
	in := record.Build().F("x", 7).F("evidence", "intact").Rec()
	inst.Send(in)
	if err := inst.Close(); err == nil {
		t.Fatal("expected a reported error")
	}
	letters, dropped := inst.DeadLetters()
	if dropped != 0 || len(letters) != 1 {
		t.Fatalf("dead letters = %d (dropped %d), want 1", len(letters), dropped)
	}
	dl := letters[0]
	if dl.Entity != "poison" || dl.Attempts != 3 {
		t.Errorf("dead letter = %+v, want entity poison, 3 attempts", dl)
	}
	if dl.Record != in {
		t.Errorf("dead letter holds %p, want the exact input record %p", dl.Record, in)
	}
	if v, _ := dl.Record.Field("evidence"); v != "intact" {
		t.Errorf("dead-letter record mutated: %s", dl.Record)
	}
	if dl.Err == nil || !strings.Contains(dl.Err.Error(), "always fails") {
		t.Errorf("dead letter err = %v", dl.Err)
	}
	if err := inst.Err(); !strings.Contains(err.Error(), "dead-lettered after 3 attempts") {
		t.Errorf("instance error = %v", err)
	}
}

func TestRetryEventuallySucceeds(t *testing.T) {
	defer leakcheck.Check(t)
	var delays []time.Duration
	net := NewNetwork(failNBox("flaky", 2), Options{BoxRetry: BoxRetry{
		Attempts:   5,
		Backoff:    10 * time.Millisecond,
		MaxBackoff: 15 * time.Millisecond,
		Clock:      immediateClock(&delays),
	}})
	outs, err := net.Run(record.New().SetField("x", 1))
	if err != nil {
		t.Fatalf("network error: %v", err)
	}
	if len(outs) != 1 || xVal(t, outs[0]) != 2 {
		t.Fatalf("outs = %v", outs)
	}
	// Two failures: waits of base then min(2*base, max).
	want := []time.Duration{10 * time.Millisecond, 15 * time.Millisecond}
	if len(delays) != len(want) || delays[0] != want[0] || delays[1] != want[1] {
		t.Errorf("backoff delays = %v, want %v", delays, want)
	}
}

func TestRetryDiscardsPartialEmissions(t *testing.T) {
	defer leakcheck.Check(t)
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	leaky := NewBox("leaky", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetField("x", 99))
		return errors.New("fails after emitting")
	})
	net := NewNetwork(leaky, Options{BoxRetry: BoxRetry{Attempts: 2}})
	outs, err := net.Run(record.New().SetField("x", 1))
	if err == nil {
		t.Fatal("expected error")
	}
	if len(outs) != 0 {
		t.Fatalf("partial emissions escaped a retried failure: %v", outs)
	}
}

func TestLegacyFailureLetsEmissionsFlow(t *testing.T) {
	defer leakcheck.Check(t)
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	leaky := NewBox("leaky", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetField("x", 99))
		return errors.New("late failure")
	})
	net := NewNetwork(leaky, Options{}) // Attempts 0: historical behaviour
	inst := net.Start()
	inst.Send(record.New().SetField("x", 1))
	var outs []*record.Record
	go func() {
		inst.closeOnce.Do(func() { close(inst.in) })
	}()
	for r := range inst.Out {
		outs = append(outs, r)
	}
	if err := inst.Close(); err == nil || !strings.Contains(err.Error(), "late failure") {
		t.Fatalf("err = %v", err)
	}
	if len(outs) != 1 || xVal(t, outs[0]) != 99 {
		t.Fatalf("outs = %v, want the partial emission", outs)
	}
	if letters, _ := inst.DeadLetters(); len(letters) != 0 {
		t.Fatalf("legacy mode produced dead letters: %v", letters)
	}
}

func TestPanicRetriesAndDeadLetters(t *testing.T) {
	defer leakcheck.Check(t)
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	bomb := NewBox("bomb", sig, func(c *BoxCall) error {
		panic("kaboom")
	})
	net := NewNetwork(bomb, Options{BoxRetry: BoxRetry{Attempts: 2}})
	inst := net.Start()
	inst.Send(record.New().SetField("x", 1))
	inst.Close()
	letters, _ := inst.DeadLetters()
	if len(letters) != 1 || letters[0].Attempts != 2 {
		t.Fatalf("dead letters = %v", letters)
	}
	if !strings.Contains(letters[0].Err.Error(), "box panicked: kaboom") {
		t.Errorf("dead letter err = %v", letters[0].Err)
	}
	rep := inst.Errs()
	if len(rep.Retained) != 1 || rep.Retained[0].Category != ErrCatPanic {
		t.Fatalf("Errs = %+v, want one ErrCatPanic", rep)
	}
}

func TestErrsStructuredAndDropCounts(t *testing.T) {
	defer leakcheck.Check(t)
	box := incBox("typed", 1)
	inst := NewNetwork(box, Options{}).Start()
	n := maxRetainedErrors + 6
	for i := 0; i < n; i++ {
		inst.Send(record.New().SetField("wrong", i))
	}
	inst.Close()
	rep := inst.Errs()
	if rep.Total != n {
		t.Fatalf("Total = %d, want %d", rep.Total, n)
	}
	if len(rep.Retained) != maxRetainedErrors {
		t.Fatalf("Retained = %d, want %d", len(rep.Retained), maxRetainedErrors)
	}
	re := rep.Retained[0]
	if re.Entity != "typed" || re.Category != ErrCatNoMatch || re.Shape == "" {
		t.Errorf("retained[0] = %+v", re)
	}
	if rep.Dropped[ErrCatNoMatch] != 6 {
		t.Errorf("Dropped = %v, want 6 no-match", rep.Dropped)
	}
	if rep.Stopped {
		t.Error("Stopped set on an orderly close")
	}
}

// TestDurabilityAcksOnCompletion drives records — including a fan-out and a
// sanctioned drop — through a durable instance and verifies the journal is
// empty afterwards: every delivery's derivation tree completed.
func TestDurabilityAcksOnCompletion(t *testing.T) {
	defer leakcheck.Check(t)
	dir := t.TempDir()
	// fan: {x} -> {a=x}, {b=x} — one input record, two outputs.
	fan := NewFilter("", FilterRule{
		Pattern: rtype.NewPattern(rtype.NewVariant(rtype.F("x"))),
		Outputs: []FilterOutput{
			{RenameFields: []Rename{{From: "x", To: "a"}}},
			{RenameFields: []Rename{{From: "x", To: "b"}}},
		},
	})
	net := NewNetwork(fan, Options{Durability: &Durability{Dir: dir}})
	inst := net.Start()
	for i := 0; i < 8; i++ {
		inst.Send(record.New().SetField("x", i))
	}
	inst.Send(record.New().SetTag("unmatched", 1)) // sanctioned no-match drop
	outs := 0
	go func() { inst.closeOnce.Do(func() { close(inst.in) }) }()
	for range inst.Out {
		outs++
	}
	inst.Close()
	if outs != 16 {
		t.Fatalf("got %d outputs, want 16", outs)
	}
	j, err := journal.Open(journal.Config{Dir: dir})
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer j.Close()
	if rec := j.Recovered(); len(rec) != 0 {
		t.Fatalf("journal still holds %d unacked deliveries after full completion", len(rec))
	}
}

// blockyNet builds intake -> mark -> hold with fusion off: mark signals every
// record it forwards (so the test knows the record was journaled upstream),
// hold parks records against gate/done. Both boxes re-emit their input, so a
// stopped instance leaves every in-flight delivery unacknowledged.
func blockyNet(arrivals chan<- struct{}, gate, done <-chan struct{}) *Entity {
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	mark := NewBox("mark", sig, func(c *BoxCall) error {
		arrivals <- struct{}{}
		c.Emit(c.In)
		return nil
	})
	hold := NewBox("hold", sig, func(c *BoxCall) error {
		select {
		case <-gate:
		case <-done:
		}
		c.Emit(c.In)
		return nil
	})
	return Serial(mark, hold)
}

func TestDurabilityReplayAfterStop(t *testing.T) {
	defer leakcheck.Check(t)
	dir := t.TempDir()
	opts := Options{
		Durability: &Durability{Dir: dir, Fsync: journal.FsyncAlways},
		Optimize:   OptimizeOff, // keep mark and hold pipelined, not fused
	}

	arrivals := make(chan struct{}, 8)
	gate := make(chan struct{}) // never closed: the first life blocks in hold
	// hold unparks via a proxy channel the test closes alongside Stop (the
	// instance's own Done channel does not exist until after Start).
	proxy := make(chan struct{})
	inst := NewNetwork(blockyNet(arrivals, gate, proxy), opts).Start()
	for i := 0; i < 3; i++ {
		if !inst.Send(record.New().SetField("x", i)) {
			t.Fatal("send refused")
		}
	}
	for i := 0; i < 3; i++ {
		<-arrivals // mark forwarded record i: the journal holds it
	}
	go func() {
		time.Sleep(10 * time.Millisecond)
		close(proxy) // unpark hold so Stop's unwind completes
	}()
	inst.Stop()

	// Second life: same directory, open gate, fresh instance.
	open := make(chan struct{})
	close(open)
	inst2 := NewNetwork(blockyNet(arrivals, open, nil), opts).Start()
	n, err := inst2.Recover(dir)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if n != 3 {
		t.Fatalf("recovered %d deliveries, want 3", n)
	}
	for i := 0; i < 3; i++ {
		<-arrivals
	}
	var got []int
	go func() { inst2.closeOnce.Do(func() { close(inst2.in) }) }()
	for r := range inst2.Out {
		got = append(got, xVal(t, r))
	}
	if err := inst2.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	sort.Ints(got)
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("replayed outputs = %v, want [0 1 2]", got)
	}

	// Third life: everything was acknowledged, nothing left to replay.
	inst3 := NewNetwork(blockyNet(arrivals, open, nil), opts).Start()
	if n, err := inst3.Recover(dir); err != nil || n != 0 {
		t.Fatalf("third life recovered %d, %v; want 0, nil", n, err)
	}
	inst3.Close()
}

func TestDurabilityOutputEquivalence(t *testing.T) {
	defer leakcheck.Check(t)
	run := func(opts Options) []int {
		outs, err := NewNetwork(incBox("inc", 1), opts).Run(
			record.New().SetField("x", 10),
			record.New().SetField("x", 20),
			record.New().SetField("x", 30))
		if err != nil {
			t.Fatalf("network error: %v", err)
		}
		var xs []int
		for _, r := range outs {
			xs = append(xs, xVal(t, r))
		}
		sort.Ints(xs)
		return xs
	}
	plain := run(Options{})
	durable := run(Options{Durability: &Durability{Dir: t.TempDir()}})
	if len(plain) != len(durable) {
		t.Fatalf("plain %v vs durable %v", plain, durable)
	}
	for i := range plain {
		if plain[i] != durable[i] {
			t.Fatalf("plain %v vs durable %v", plain, durable)
		}
	}
}

func TestRecoverValidation(t *testing.T) {
	defer leakcheck.Check(t)
	inst := NewNetwork(incBox("inc", 1), Options{}).Start()
	if _, err := inst.Recover(t.TempDir()); err == nil {
		t.Error("Recover without a journal succeeded")
	}
	inst.Close()

	dir := t.TempDir()
	inst2 := NewNetwork(incBox("inc", 1), Options{Durability: &Durability{Dir: dir}}).Start()
	if _, err := inst2.Recover("/somewhere/else"); err == nil {
		t.Error("Recover with mismatched dir succeeded")
	}
	if _, err := inst2.Recover(dir); err != nil {
		t.Errorf("Recover: %v", err)
	}
	if _, err := inst2.Recover(dir); err == nil {
		t.Error("second Recover succeeded")
	}
	inst2.Close()
}
