package core

import (
	"fmt"
	"sync"
	"time"

	"snet/internal/dist"
	"snet/internal/journal"
	"snet/internal/record"
)

// Durability configures at-least-once record delivery: every data record
// accepted on Instance.In is appended to a segmented on-disk journal
// (internal/journal) before it enters the network and is acknowledged only
// once its entire derivation tree has completed — every descendant either
// delivered on Out or dropped for a sanctioned reason (no-match, dead
// letter). After a crash, a fresh instance over the same directory replays
// the unacknowledged records with Instance.Recover.
type Durability struct {
	// Dir is the journal directory. Required.
	Dir string
	// Fsync is the flush-to-stable-storage policy; the zero value
	// (FsyncNever) trusts the OS page cache.
	Fsync journal.FsyncPolicy
	// FsyncInterval bounds data-loss exposure under FsyncBatch; zero
	// selects journal.DefaultFsyncInterval.
	FsyncInterval time.Duration
	// SegmentBytes is the rotation threshold; zero selects
	// journal.DefaultSegmentBytes.
	SegmentBytes int
	// FS overrides the journal's disk seam (fault injection, tests); nil
	// selects the real disk rooted at Dir.
	FS journal.FS
	// Clock overrides the journal's time source; the zero value binds to
	// real time.
	Clock journal.Clock
	// Ext encodes field values beyond the wire-native set, exactly as for
	// distribution (dist.ValueCodec). Records whose fields the journal
	// cannot encode flow through the network untracked.
	Ext dist.ValueCodec
}

// BoxRetry configures how box execution failures (body errors and recovered
// panics) are handled.
//
// The zero value keeps the historical behaviour: the failure is reported to
// the error sink and whatever the body emitted before failing flows
// downstream. With Attempts >= 1 the runtime instead discards the failed
// attempt's partial emissions, re-runs the box against the unchanged input
// record up to Attempts times total (waiting Backoff, doubled per failure
// and capped at MaxBackoff, between attempts), and — when every attempt has
// failed — drops the record into the instance's dead-letter queue
// (Instance.DeadLetters) with the exact input record, entity name, attempt
// count and final error.
type BoxRetry struct {
	// Attempts is the total number of times a box execution is tried per
	// record; 0 disables retry and dead-lettering.
	Attempts int
	// Backoff is the wait after the first failed attempt; each further
	// failure doubles it. Zero retries immediately.
	Backoff time.Duration
	// MaxBackoff caps the doubling; zero means uncapped.
	MaxBackoff time.Duration
	// Clock injects the time source for backoff waits (tests drive retries
	// with synthetic timers); the zero value binds to real time.
	Clock journal.Clock
}

// DeadLetter is one record the runtime gave up on: a box exhausted its
// retry budget against it. The record is the exact input of the failed
// executions — the runtime retains ownership, callers must treat it as
// read-only.
type DeadLetter struct {
	// Entity is the box that exhausted its retries.
	Entity string
	// Record is the triggering input record, unmodified.
	Record *record.Record
	// Attempts is how many times the execution was tried.
	Attempts int
	// Err is the final attempt's failure.
	Err error
}

// maxDeadLetters bounds the dead-letter queue like maxRetainedErrors bounds
// the error sink: a poison flood keeps the first letters and counts the
// rest.
const maxDeadLetters = 256

// deadSink accumulates dead letters from concurrently executing boxes.
type deadSink struct {
	mu      sync.Mutex
	letters []DeadLetter
	dropped int
}

// add captures one dead letter, recycling the record when the queue is
// already at capacity (the drop is still counted).
func (s *deadSink) add(dl DeadLetter) {
	s.mu.Lock()
	if len(s.letters) < maxDeadLetters {
		s.letters = append(s.letters, dl)
		s.mu.Unlock()
		return
	}
	s.dropped++
	s.mu.Unlock()
	recycle(dl.Record)
}

// snapshot returns the captured letters (shared records — read-only) and
// the beyond-cap drop count.
func (s *deadSink) snapshot() ([]DeadLetter, int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DeadLetter, len(s.letters))
	copy(out, s.letters)
	return out, s.dropped
}

// tracker follows each journaled record's derivation tree through the
// network and acknowledges the journal once the tree has completed. The
// invariant is a per-delivery-id reference count: opened at 1 when the
// record enters the network, incremented by fan-out (an entity consuming
// one record and emitting n bumps the count by n-1 — before the emissions
// are released downstream, so the count can never touch zero while
// descendants are in flight), and decremented when a descendant leaves on
// Out or is dropped for a sanctioned reason. Zero means nothing derived
// from the record remains in the network: the journal forgets it.
type tracker struct {
	mu      sync.Mutex
	pending map[uint64]int64
	jnl     *journal.Journal
	errs    *errSink
	acks    []uint64 // reusable zero-crossing batch
}

func newTracker(jnl *journal.Journal, errs *errSink) *tracker {
	return &tracker{pending: make(map[uint64]int64), jnl: jnl, errs: errs}
}

// open starts tracking id at count 1. Re-opening a live id (a replay raced
// into a still-tracked delivery) is ignored — the first tree wins.
func (t *tracker) open(id uint64) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, live := t.pending[id]; live {
		return false
	}
	t.pending[id] = 1
	return true
}

// fork adjusts id's count by delta, acknowledging the journal when the
// count reaches zero. Untracked ids (untracked records, or counts already
// closed) are ignored.
func (t *tracker) fork(id uint64, delta int64) {
	if delta == 0 {
		return
	}
	t.mu.Lock()
	n, live := t.pending[id]
	if !live {
		t.mu.Unlock()
		return
	}
	n += delta
	if n > 0 {
		t.pending[id] = n
		t.mu.Unlock()
		return
	}
	delete(t.pending, id)
	t.acks = append(t.acks[:0], id)
	t.flushLocked()
}

// AckBatch decrements each id once — the outlet pump's batched completion
// signal (stream.AckSink). Ids whose count reaches zero are acknowledged to
// the journal in one append.
func (t *tracker) AckBatch(ids []uint64) {
	t.mu.Lock()
	t.acks = t.acks[:0]
	for _, id := range ids {
		n, live := t.pending[id]
		if !live {
			continue
		}
		if n--; n > 0 {
			t.pending[id] = n
			continue
		}
		delete(t.pending, id)
		t.acks = append(t.acks, id)
	}
	t.flushLocked()
}

// flushLocked writes the accumulated zero-crossings to the journal. Callers
// hold mu (and release it here): the scratch is detached first so the
// journal write happens outside the tracker lock — completion accounting
// never stalls on disk — without a concurrent caller reusing the slice
// mid-write.
func (t *tracker) flushLocked() {
	acks := t.acks
	t.acks = nil
	t.mu.Unlock()
	if len(acks) > 0 {
		if err := t.jnl.Ack(acks); err != nil {
			t.errs.add(&RuntimeError{Category: ErrCatJournal,
				Err: fmt.Errorf("journal ack: %w", err)})
		}
	}
	t.mu.Lock()
	if t.acks == nil {
		t.acks = acks[:0]
	}
	t.mu.Unlock()
}

// trackFork accounts record r being consumed and n records derived from it
// being released downstream; it must run before the derivations are sent.
// n == 0 is a sanctioned drop.
func (e *Env) trackFork(r *record.Record, n int) {
	if e.track == nil {
		return
	}
	if id := r.Delivery(); id != 0 {
		e.track.fork(id, int64(n-1))
	}
}

// trackDrop accounts a sanctioned drop of r: the record dies here on
// purpose (no-match, dead letter), so replaying it would change nothing.
func (e *Env) trackDrop(r *record.Record) { e.trackFork(r, 0) }

// deadLetter captures a retry-exhausted record; ownership of r moves to the
// dead-letter queue.
func (e *Env) deadLetter(entity string, r *record.Record, attempts int, err error) {
	e.dead.add(DeadLetter{Entity: entity, Record: r, Attempts: attempts, Err: err})
}

// retryWait blocks for one backoff delay on the retry clock, giving up when
// the instance is stopped. A non-positive delay only polls for stop.
func (e *Env) retryWait(d time.Duration) bool {
	if d <= 0 {
		select {
		case <-e.done:
			return false
		default:
			return true
		}
	}
	t := e.opts.BoxRetry.Clock.Timer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-e.done:
		return false
	}
}
