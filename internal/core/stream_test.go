package core

// Batch-boundary edge cases of the stream transport threaded through the
// runtime: single-record batches through every combinator, Stop with
// records parked in partial batches, determinism across batch boundaries,
// and the LinkStats surface.

import (
	"testing"
	"time"

	"snet/internal/leakcheck"
	"snet/internal/record"
	"snet/internal/rtype"
)

// combinatorShapes builds one instance of every combinator (and the two
// stateful entities) over simple {x}->{x} boxes, paired with the number of
// outputs expected for a single {x} input record.
func combinatorShapes() map[string]struct {
	e    *Entity
	outs int
} {
	exit := rtype.NewPattern(rtype.NewVariant(rtype.F("x"))).WithGuard(
		func(r *record.Record) bool {
			v, _ := r.Field("x")
			iv, _ := v.(int)
			return iv >= 2
		}, "x >= 2")
	xy := rtype.NewPattern(rtype.NewVariant(rtype.F("x")))
	yy := rtype.NewPattern(rtype.NewVariant(rtype.F("y")))
	filter := NewFilter("", FilterRule{
		Pattern: rtype.NewPattern(rtype.NewVariant(rtype.F("x"))),
		Outputs: []FilterOutput{{CopyFields: []string{"x"}}},
	})
	fanout := NewFilter("", FilterRule{
		Pattern: rtype.NewPattern(rtype.NewVariant(rtype.F("x"))),
		Outputs: []FilterOutput{
			{CopyFields: []string{"x"}},
			{RenameFields: []Rename{{From: "x", To: "y"}}},
		},
	})
	tagged := func(e *Entity) *Entity {
		// Wraps e so the input may carry the index tag <k> required by
		// the splits; incBox signatures ignore extra tags via subtyping.
		return e
	}
	return map[string]struct {
		e    *Entity
		outs int
	}{
		"Serial":       {SerialAll(incBox("a", 1), incBox("b", 1)), 1},
		"Choice":       {Choice(incBox("a", 1), Identity()), 1},
		"DetChoice":    {DetChoice(incBox("a", 1), incBox("b", 10)), 1},
		"Star":         {Star(incBox("s", 1), exit), 1},
		"FeedbackStar": {FeedbackStar(incBox("s", 1), exit), 1},
		"Split":        {tagged(Split(incBox("a", 1), "k")), 1},
		"DetSplit":     {tagged(DetSplit(incBox("a", 1), "k")), 1},
		"SplitAt":      {tagged(SplitAt(incBox("a", 1), "k")), 1},
		"At":           {At(incBox("a", 1), 0), 1},
		"Observe":      {Observe(incBox("a", 1), func(ObserveDirection, *record.Record) {}), 1},
		"Filter":       {filter, 1},
		"FilterFanout": {fanout, 2},
		"Sync":         {SerialAll(NewSync(xy, yy), filter), 1},
	}
}

// TestSingleRecordBatchEveryCombinator drives one record — necessarily a
// one-record batch at every hop — through every combinator, across batch
// sizes including the degenerate BatchSize 1 and a batch far larger than
// the traffic.
func TestSingleRecordBatchEveryCombinator(t *testing.T) {
	leakcheck.Check(t)
	for _, bs := range []int{0, 1, 64} {
		for name, shape := range combinatorShapes() {
			ins := []*record.Record{record.Build().F("x", 0).T("k", 3).Rec()}
			if name == "Sync" {
				ins = append(ins, record.New().SetField("y", 1))
			}
			outs, err := NewNetwork(shape.e, Options{BatchSize: bs}).Run(ins...)
			if err != nil {
				t.Fatalf("%s (BatchSize %d): %v", name, bs, err)
			}
			if len(outs) != shape.outs {
				t.Fatalf("%s (BatchSize %d): %d outputs, want %d",
					name, bs, len(outs), shape.outs)
			}
		}
	}
}

// TestStopMidBatchLeakFree parks records in partial batches everywhere —
// a huge batch size and a disabled timer keep them pending — then stops
// the instance. Every goroutine must be reclaimed (leakcheck) with records
// still sitting in pending batches, queues and receiver buffers.
func TestStopMidBatchLeakFree(t *testing.T) {
	leakcheck.Check(t)
	slow := NewBox("slow", MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")}),
		func(c *BoxCall) error {
			time.Sleep(time.Millisecond)
			c.Emit(record.New().SetField("x", c.Field("x").(int)))
			return nil
		})
	e := SerialAll(incBox("a", 1), Choice(slow, Identity()), incBox("b", 1))
	inst := NewNetwork(e, Options{
		BufferSize:    1024,
		BatchSize:     512,
		FlushInterval: -1, // only fill-up, idle and close flushes
	}).Start()
	for i := 0; i < 100; i++ {
		if !inst.Send(record.New().SetField("x", i)) {
			t.Fatal("Send refused before Stop")
		}
	}
	// Some records are mid-pipeline in partial batches; stop now.
	if err := inst.Stop(); err != ErrStopped {
		t.Fatalf("Stop = %v", err)
	}
	// Depth bookkeeping may legitimately be nonzero (discarded records),
	// but the snapshot must not panic or race after Stop.
	_ = inst.LinkStats()
}

// TestDetChoiceDeterministicAcrossBatchBoundaries checks that DetChoice
// preserves input order for every batch size, including sizes that split
// the input stream at awkward points relative to the branch traffic.
func TestDetChoiceDeterministicAcrossBatchBoundaries(t *testing.T) {
	leakcheck.Check(t)
	const n = 200
	for _, bs := range []int{1, 2, 3, 5, 16} {
		slowEven := NewBox("slowEven", MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")}),
			func(c *BoxCall) error {
				x := c.Field("x").(int)
				if x%4 == 0 {
					time.Sleep(200 * time.Microsecond)
				}
				c.Emit(record.New().SetField("x", x))
				return nil
			})
		never := NewBox("never", MustSig([]rtype.Label{rtype.F("y")}, []rtype.Label{rtype.F("y")}),
			func(c *BoxCall) error { return nil })
		e := DetChoice(slowEven, never)
		var ins []*record.Record
		for i := 0; i < n; i++ {
			ins = append(ins, record.New().SetField("x", i))
		}
		outs, err := NewNetwork(e, Options{BatchSize: bs, BufferSize: 8}).Run(ins...)
		if err != nil {
			t.Fatalf("BatchSize %d: %v", bs, err)
		}
		if len(outs) != n {
			t.Fatalf("BatchSize %d: %d outputs, want %d", bs, len(outs), n)
		}
		for i, r := range outs {
			if got := xVal(t, r); got != i {
				t.Fatalf("BatchSize %d: output %d = %d; DetChoice lost input order", bs, i, got)
			}
		}
	}
}

// TestDetSplitDeterministicAcrossBatchBoundaries is the same property for
// the deterministic indexed split, whose replicas see interleaved
// single-record and multi-record runs.
func TestDetSplitDeterministicAcrossBatchBoundaries(t *testing.T) {
	leakcheck.Check(t)
	const n = 120
	sig := MustSig([]rtype.Label{rtype.F("x"), rtype.T("k")}, []rtype.Label{rtype.F("x")})
	echo := NewBox("echo", sig, func(c *BoxCall) error {
		if c.Tag("k") == 0 {
			time.Sleep(100 * time.Microsecond)
		}
		c.Emit(record.New().SetField("x", c.Field("x")).SetTag("k", c.Tag("k")))
		return nil
	})
	for _, bs := range []int{1, 3, 16} {
		var ins []*record.Record
		for i := 0; i < n; i++ {
			ins = append(ins, record.Build().F("x", i).T("k", i%3).Rec())
		}
		outs, err := NewNetwork(DetSplit(echo, "k"), Options{BatchSize: bs}).Run(ins...)
		if err != nil {
			t.Fatalf("BatchSize %d: %v", bs, err)
		}
		if len(outs) != n {
			t.Fatalf("BatchSize %d: %d outputs, want %d", bs, len(outs), n)
		}
		for i, r := range outs {
			if got := xVal(t, r); got != i {
				t.Fatalf("BatchSize %d: output %d = %d; DetSplit lost input order", bs, i, got)
			}
		}
	}
}

// TestLinkStatsSurface exercises the LinkStats hook: a drained pipeline
// reports conserved record counts, formed batches, and zero depth.
func TestLinkStatsSurface(t *testing.T) {
	leakcheck.Check(t)
	const n = 500
	e := SerialAll(incBox("a", 1), incBox("b", 1), incBox("c", 1))
	inst := NewNetwork(e, Options{}).Start()
	go func() {
		for i := 0; i < n; i++ {
			if !inst.Send(record.New().SetField("x", i)) {
				return
			}
		}
		close(inst.In)
	}()
	got := 0
	for range inst.Out {
		got++
	}
	if got != n {
		t.Fatalf("drained %d records, want %d", got, n)
	}
	stats := inst.LinkStats()
	// First link, two mids, last link.
	if len(stats) != 4 {
		t.Fatalf("LinkStats reports %d links, want 4", len(stats))
	}
	for i, ls := range stats {
		if ls.SentRecords != n || ls.RecvRecords != n {
			t.Errorf("link %d: sent %d recv %d, want %d", i, ls.SentRecords, ls.RecvRecords, n)
		}
		if ls.Depth != 0 {
			t.Errorf("link %d: depth %d after drain", i, ls.Depth)
		}
		if ls.SentBatches == 0 || ls.SentBatches > n {
			t.Errorf("link %d: %d batches for %d records", i, ls.SentBatches, n)
		}
		if ls.FullFlushes+ls.IdleFlushes+ls.TimerFlushes+ls.Steals != ls.SentBatches {
			t.Errorf("link %d: flush causes %d+%d+%d+%d do not sum to %d batches",
				i, ls.FullFlushes, ls.IdleFlushes, ls.TimerFlushes, ls.Steals, ls.SentBatches)
		}
	}
}

// TestLinkRegistryBoundedAcrossFeedbackGenerations pins the registry
// sweep: a feedback star that drains through many generations creates two
// links per generation, and links whose receiver has seen end-of-stream
// must be folded into the cumulative first entry instead of pinning the
// registry's memory for the instance's lifetime.
func TestLinkRegistryBoundedAcrossFeedbackGenerations(t *testing.T) {
	leakcheck.Check(t)
	const steps = 300 // generations during the drain; 2 links each
	sig := MustSig([]rtype.Label{rtype.T("n")}, []rtype.Label{rtype.T("n")})
	inc := NewBox("incn", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetTag("n", c.Tag("n")+1))
		return nil
	})
	exit := rtype.NewPattern(rtype.NewVariant(rtype.T("n"))).WithGuard(func(r *record.Record) bool {
		v, _ := r.Tag("n")
		return v >= steps
	}, "<n> >= steps")
	inst := NewNetwork(FeedbackStar(inc, exit), Options{}).Start()
	if !inst.Send(record.New().SetTag("n", 0)) {
		t.Fatal("Send refused")
	}
	inst.closeOnce.Do(func() { close(inst.in) })
	got := 0
	for range inst.Out {
		got++
	}
	if got != 1 {
		t.Fatalf("%d outputs, want 1", got)
	}
	stats := inst.LinkStats()
	if len(stats) >= steps {
		t.Fatalf("registry holds %d entries after %d generations; sweep not folding", len(stats), steps)
	}
	// Conservation: the aggregate plus the survivors still account for
	// every record the generations carried (steps hops in, steps out).
	var sent int64
	for _, ls := range stats {
		sent += ls.SentRecords
	}
	if sent < steps {
		t.Fatalf("folded stats lost traffic: %d records accounted, want >= %d", sent, steps)
	}
	if err := inst.Err(); err != nil {
		t.Fatal(err)
	}
}

// TestSynchronousOptionStillWorks pins the BufferSize<0 contract: fully
// synchronous record-at-a-time links.
func TestSynchronousOptionStillWorks(t *testing.T) {
	leakcheck.Check(t)
	outs, err := NewNetwork(SerialAll(incBox("a", 1), incBox("b", 1)),
		Options{BufferSize: -1}).Run(
		record.New().SetField("x", 0),
		record.New().SetField("x", 10))
	if err != nil || len(outs) != 2 {
		t.Fatalf("outs=%v err=%v", outs, err)
	}
}
