// Package core implements the S-Net streaming runtime: stateless boxes made
// into asynchronous stream components, the four SISO network combinators
// (serial ".." and parallel "|" composition, serial replication "*" and
// indexed parallel replication "!"), filters, synchrocells, and the
// Distributed S-Net placement combinators "@" and "!@".
//
// Every network entity — box or combinator — is a SISO stream transformer:
// it consumes records from one input channel and produces records on one
// output channel. Entities are descriptions; Spawn instantiates them as
// goroutines. An entity owns its output channel and closes it once its input
// is drained and all in-flight work has finished, so network shutdown
// cascades naturally from closing the toplevel input.
//
// Beyond the orderly drain, every instance is cancellable: the environment
// carries a done channel closed by Instance.Stop, every blocking channel
// operation an entity performs selects on it, and every runtime goroutine
// is tracked by a WaitGroup, so an aborted network — even one wedged
// against an unread output or a saturated platform — unwinds completely
// and leaks nothing.
//
//snet:hot
package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"snet/internal/journal"
	"snet/internal/record"
	"snet/internal/rtype"
	"snet/internal/stream"
)

// Platform abstracts the compute substrate underneath a network: where box
// functions execute and what happens when a record crosses between abstract
// compute nodes. The default LocalPlatform runs everything inline on one
// node; package dist provides a multi-node platform with bounded per-node
// CPU slots and transfer accounting.
type Platform interface {
	// Nodes returns the number of abstract compute nodes.
	Nodes() int
	// Exec runs a box function on the given node. Exec blocks until fn
	// has finished; implementations typically gate fn on a per-node CPU
	// slot.
	Exec(node int, fn func())
	// Transfer is called when a record moves from node `from` to node
	// `to`. Implementations may account for or delay the transfer. It is
	// never called with from == to.
	Transfer(from, to int, r *record.Record)
}

// CancellablePlatform is optionally implemented by platforms whose Exec can
// abandon waiting for a CPU slot. The runtime uses it when an instance is
// stopped: a box queued behind a busy node must not strand the stopping
// network (nor, for bounded platforms such as dist.Cluster, consume a slot
// it will never use). ExecCancel returns false — without running fn — when
// cancel fires before a slot was acquired; once fn has started it always
// runs to completion and the slot is released normally.
type CancellablePlatform interface {
	ExecCancel(node int, cancel <-chan struct{}, fn func()) bool
}

// BatchPlatform is optionally implemented by platforms that can account a
// whole batch of records crossing between nodes in one operation, so
// per-message framing and per-hop fixed costs (codec locking, modelled
// link latency) are amortized over the batch. The runtime uses it whenever
// a placement relay moves an entire stream batch across a node boundary;
// platforms without it see the same records as individual Transfer calls.
// It is never called with from == to or with an empty batch.
type BatchPlatform interface {
	TransferBatch(from, to int, rs []*record.Record)
}

// RemotePlatform is optionally implemented by platforms that can execute a
// whole box call in another OS process (internal/wire): a closure cannot
// cross a socket, so instead of handing the platform an opaque fn the
// runtime offers the box's registered name and its triggering record, and
// the platform may ship both to the process that owns the target node and
// return the records the box emitted there. The returned records are the
// box's raw emissions — the runtime applies flow inheritance and output
// type checking on them exactly as it would for a local execution, so
// remote and local box calls are indistinguishable downstream.
//
// ExecBox must schedule like Exec: acquire and release the node's CPU
// slot, honor cancel like CancellablePlatform.ExecCancel, and — when
// stealable — migrate like StealPlatform.ExecStealable. Outcomes:
//
//   - ok == false: cancel fired before a slot was granted; nothing ran and
//     outs/remote/err are meaningless.
//   - ok && !remote: the execution could not be shipped (granted node is
//     local, box not registered remotely, input has no wire form, peer
//     lost); the platform ran local() on the granted slot instead, and
//     outs/err are meaningless.
//   - ok && remote: the box ran in a remote process; outs are its
//     emissions (owned by the caller, never aliasing the input) and err is
//     its failure, if any. A failed remote call may still carry the
//     emissions queued before the failure, matching local semantics.
type RemotePlatform interface {
	ExecBox(node int, cancel <-chan struct{}, box string, input *record.Record,
		stealable bool, local func()) (outs []*record.Record, remote, ok bool, err error)
}

// LocalPlatform is the trivial single-node platform.
type LocalPlatform struct{}

// Nodes returns 1.
func (LocalPlatform) Nodes() int { return 1 }

// Exec runs fn inline.
func (LocalPlatform) Exec(node int, fn func()) { fn() }

// Transfer does nothing.
func (LocalPlatform) Transfer(from, to int, r *record.Record) {}

// Options configure a network instantiation.
type Options struct {
	// BufferSize is the capacity of every stream link in records — the
	// backpressure bound between adjacent entities. Zero selects
	// DefaultBufferSize; a negative value makes every link fully
	// synchronous (unbuffered, record-at-a-time).
	BufferSize int
	// BatchSize is the records-per-batch ceiling of every stream link.
	// Zero selects stream.DefaultBatchSize; one disables batching
	// (every record is its own channel operation, the pre-batching
	// behavior). Values above BufferSize are clamped to it.
	BatchSize int
	// FlushInterval bounds how long a record may linger in a partial
	// batch while its receiver is busy. Zero selects
	// stream.DefaultFlushInterval; a negative value disables the timer
	// flush (fill-up, downstream-idle and close flushes still apply).
	FlushInterval time.Duration
	// Platform is the compute substrate; nil means LocalPlatform.
	Platform Platform
	// Placer is the placement policy dynamic placement sites consult at
	// dispatch time: which node an indexed-split replica (SplitAt) is
	// instantiated on, where an untagged record is dispatched, which node
	// a star unfolding's replica runs on. Nil selects Static — the
	// pre-stamped-tag convention, where the tag value is the node — which
	// reproduces the pre-policy behavior exactly. See Env.AtPolicy for
	// overriding the policy per subtree.
	Placer Placer
	// WorkStealing lets a box execution queued on a busy node be claimed
	// by an idle node, when the platform supports migration
	// (StealPlatform; dist.Cluster does). The platform charges its
	// transfer-cost model for the migrated triggering record and counts
	// the steal. Placement combinators still decide the home node;
	// stealing only redistributes work the home node has not started.
	WorkStealing bool
	// CheckTypes enables runtime verification that every record emitted
	// by a box matches one of the box's declared output variants (before
	// flow inheritance). Violations are reported as errors.
	CheckTypes bool
	// FlushSyncOnClose makes synchrocells emit their partially matched
	// contents when their input stream closes. The default (false)
	// matches the reference runtime: partial matches are discarded at
	// network termination. Flushing must not be combined with networks
	// that re-circulate synchrocell output through a star (such as the
	// paper's Fig. 4 solver segment), where flushed tokens would unroll
	// new star stages indefinitely during shutdown.
	FlushSyncOnClose bool
	// Optimize selects how aggressively NewNetwork rewrites the entity
	// tree before instantiation (see Optimize and OptStats). The zero
	// value enables the full rewrite catalogue; OptimizeOff spawns the
	// tree exactly as constructed.
	Optimize OptimizeLevel
	// Durability enables the ingress journal: at-least-once delivery with
	// replay after a crash (see Durability and Instance.Recover). Nil
	// keeps the in-memory-only behaviour.
	Durability *Durability
	// BoxRetry governs failed box executions: the zero value reports and
	// moves on (historical behaviour); Attempts >= 1 retries with backoff
	// and dead-letters the record once the budget is exhausted (see
	// BoxRetry and Instance.DeadLetters).
	BoxRetry BoxRetry
}

// DefaultBufferSize is used when Options.BufferSize is zero-valued via
// NewNetwork's option normalization.
const DefaultBufferSize = 32

// Env is the per-network runtime context threaded through entity spawning.
// It carries the platform, the current placement node, the shared error
// sink, the options, and the instance's lifecycle state: a done channel
// closed when the instance is stopped and a WaitGroup tracking every
// runtime goroutine, so Stop can wait for full reclamation.
type Env struct {
	platform  Platform
	cancPlat  CancellablePlatform // platform, when it supports cancellation
	batchPlat BatchPlatform       // platform, when it supports batch transfer
	stealPlat StealPlatform       // platform, when executions can migrate
	loadPlat  LoadPlatform        // platform, when it reports per-node load
	remPlat   RemotePlatform      // platform, when box calls can cross processes
	placer    Placer              // placement policy; nil = Static semantics
	node      int
	opts      Options
	errs      *errSink
	done      chan struct{}    // closed by Instance.Stop; nil never happens
	wg        *sync.WaitGroup  // counts every goroutine started via start
	links     *linkReg         // every stream link of the instance
	jnl       *journal.Journal // ingress journal; nil without Durability
	track     *tracker         // delivery completion tracking; nil without a journal
	dead      *deadSink        // retry-exhausted records (BoxRetry)
}

// newEnv builds the root environment.
func newEnv(opts Options) *Env {
	if opts.Platform == nil {
		opts.Platform = LocalPlatform{}
	}
	e := &Env{
		platform: opts.Platform,
		node:     0,
		opts:     opts,
		errs:     &errSink{},
		done:     make(chan struct{}),
		wg:       &sync.WaitGroup{},
		links:    &linkReg{},
		dead:     &deadSink{},
	}
	e.cancPlat, _ = opts.Platform.(CancellablePlatform)
	e.batchPlat, _ = opts.Platform.(BatchPlatform)
	e.stealPlat, _ = opts.Platform.(StealPlatform)
	e.loadPlat, _ = opts.Platform.(LoadPlatform)
	e.remPlat, _ = opts.Platform.(RemotePlatform)
	e.placer = opts.Placer
	return e
}

// linkReg tracks every stream link an instance creates, so Instance can
// expose per-link depth and throughput counters. Links are registered at
// creation time, which happens both at instantiation and dynamically
// (star unfoldings, split replicas), hence the lock. The registry is also
// the links' allocator: Link structs are carved out of fixed-size slabs
// (a slab is never reallocated once handed out, so the pointers stay
// stable), which keeps deep networks — a star unrolling one stage per
// record wave — at roughly one allocation per link, the channel itself.
//
// A long-lived instance keeps creating links (every feedback-star
// generation and star unfolding makes two), so the registry must not pin
// them all forever: alloc periodically sweeps links whose receiver has
// observed end-of-stream (their counters are final) into a cumulative
// aggregate and drops the references, bounding live registry size by the
// number of links still carrying traffic. The sweep threshold doubles
// with the surviving population, keeping the amortized sweep cost per
// alloc constant.
type linkReg struct {
	mu      sync.Mutex
	links   []*stream.Link
	slab    []stream.Link // current slab; grown slot by slot up to its cap
	sweepAt int           // next sweep when len(links) reaches this
	retired stream.Stats  // folded counters of swept (exhausted) links
	nswept  int           // how many links the aggregate covers
}

// linkSlabSize is how many Link structs share one slab allocation.
const linkSlabSize = 16

// linkSweepMin is the registry size below which no sweep happens.
const linkSweepMin = 64

func (lr *linkReg) alloc(cfg stream.Config) *stream.Link {
	lr.mu.Lock()
	if len(lr.slab) == cap(lr.slab) {
		lr.slab = make([]stream.Link, 0, linkSlabSize)
	}
	lr.slab = lr.slab[:len(lr.slab)+1]
	l := &lr.slab[len(lr.slab)-1]
	l.Init(cfg)
	lr.links = append(lr.links, l)
	if lr.sweepAt < linkSweepMin {
		lr.sweepAt = linkSweepMin
	}
	if len(lr.links) >= lr.sweepAt {
		lr.sweep()
	}
	lr.mu.Unlock()
	return l
}

// sweep folds exhausted links into the retired aggregate. Callers hold mu.
func (lr *linkReg) sweep() {
	kept := lr.links[:0]
	for _, l := range lr.links {
		if !l.Exhausted() {
			kept = append(kept, l)
			continue
		}
		s := l.Stats()
		lr.retired.SentRecords += s.SentRecords
		lr.retired.RecvRecords += s.RecvRecords
		lr.retired.SentBatches += s.SentBatches
		lr.retired.FullFlushes += s.FullFlushes
		lr.retired.IdleFlushes += s.IdleFlushes
		lr.retired.TimerFlushes += s.TimerFlushes
		lr.retired.Steals += s.Steals
		lr.nswept++
	}
	clear(lr.links[len(kept):])
	lr.links = kept
	lr.sweepAt = max(linkSweepMin, 2*len(kept))
}

func (lr *linkReg) snapshot() []stream.Stats {
	lr.mu.Lock()
	// Copy: sweep compacts lr.links in place, so a shared view would race.
	links := make([]*stream.Link, len(lr.links))
	copy(links, lr.links)
	retired, nswept := lr.retired, lr.nswept
	lr.mu.Unlock()
	out := make([]stream.Stats, 0, len(links)+1)
	if nswept > 0 {
		out = append(out, retired)
	}
	for _, l := range links {
		out = append(out, l.Stats())
	}
	return out
}

// At returns a copy of the environment placed on the given node.
func (e *Env) At(node int) *Env {
	c := *e
	c.node = node
	return &c
}

// AtPolicy returns a copy of the environment whose dynamic placement sites
// (indexed splits, untagged dispatch, star unfoldings) use placement policy
// p instead of the instance-wide Options.Placer. Like At it scopes
// lexically: the override covers the subtree spawned from the copy.
func (e *Env) AtPolicy(p Placer) *Env {
	c := *e
	c.placer = p
	return &c
}

// dynamicPlacer returns the placement policy when it makes decisions at
// dispatch time, nil when placement follows the static pre-stamped-tag
// convention (no policy configured, or explicitly Static — by value or by
// pointer, since the stateful sibling policies are naturally passed as
// pointers).
func (e *Env) dynamicPlacer() Placer {
	switch e.placer.(type) {
	case nil, Static, *Static:
		return nil
	}
	return e.placer
}

// place resolves the node for dispatch key key under the environment's
// placement policy. scratch is a caller-owned reusable slice for the load
// snapshot (placement sites place from a single dispatcher goroutine, so a
// per-site scratch never contends).
func (e *Env) place(key int, scratch *[]int) int {
	n := e.Nodes()
	if n <= 1 {
		return 0
	}
	p := e.placer
	if p == nil {
		return ((key % n) + n) % n
	}
	var load []int
	if e.loadPlat != nil {
		// Skip the snapshot for policies that declare they never read
		// it: Loads takes the platform's scheduler lock, which per-record
		// dispatch should not contend for nothing.
		if _, skip := p.(loadFree); !skip {
			*scratch = e.loadPlat.Loads(*scratch)
			load = *scratch
		}
	}
	return ((p.Place(key, n, load) % n) + n) % n
}

// Node returns the abstract compute node the current entity is placed on.
func (e *Env) Node() int { return e.node }

// Nodes returns the platform's node count.
func (e *Env) Nodes() int { return e.platform.Nodes() }

// start launches fn as an instance goroutine tracked by the lifecycle
// WaitGroup. Every goroutine the runtime spawns goes through here, so
// Instance.Stop can wait for all of them to be reclaimed.
func (e *Env) start(fn func()) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		fn()
	}()
}

// send delivers r on out unless the instance has been stopped. It reports
// whether the record was delivered; on false the caller must unwind (its
// output is no longer wanted).
func (e *Env) send(out *stream.Link, r *record.Record) bool {
	return out.Send(r, e.done)
}

// sendMany delivers rs in order on out under one link-lock acquisition;
// the slice stays the caller's. False means the instance was stopped
// mid-delivery and the caller must unwind.
func (e *Env) sendMany(out *stream.Link, rs []*record.Record) bool {
	return out.SendMany(rs, e.done)
}

// recv takes the next record from in, giving up when the instance is
// stopped. Stop promptness is batch-granular: a stopped instance finishes
// the batch it already holds (at most BatchSize records) and gives up at
// the next batch boundary.
func (e *Env) recv(in *stream.Link) (*record.Record, bool) {
	return in.Recv(e.done)
}

// exec runs fn as a box execution on the environment's node, with trigger
// as the record the execution consumes. When work stealing is enabled and
// the platform supports migration, a queued execution may be claimed by an
// idle node (the platform charges the migration of trigger). It reports
// false — without having run fn — when the instance was stopped while
// waiting for the platform to grant a CPU slot.
func (e *Env) exec(trigger *record.Record, fn func()) bool {
	if e.opts.WorkStealing && e.stealPlat != nil {
		return e.stealPlat.ExecStealable(e.node, e.done, trigger, fn)
	}
	if e.cancPlat != nil {
		return e.cancPlat.ExecCancel(e.node, e.done, fn)
	}
	e.platform.Exec(e.node, fn)
	return true
}

// transfer accounts one record moving between nodes; same-node moves are
// free.
func (e *Env) transfer(from, to int, r *record.Record) {
	if from != to {
		e.platform.Transfer(from, to, r)
	}
}

// transferBatch accounts a whole batch moving between nodes, in one
// platform operation when the platform supports it (dist.Cluster sizes the
// batch against the link codec under a single lock and charges modelled
// link latency once per batch, not once per record).
func (e *Env) transferBatch(from, to int, rs []*record.Record) {
	if from == to || len(rs) == 0 {
		return
	}
	if e.batchPlat != nil {
		e.batchPlat.TransferBatch(from, to, rs)
		return
	}
	for _, r := range rs {
		e.platform.Transfer(from, to, r)
	}
}

// newLink allocates a stream link with the configured capacity and
// batching, registered for Instance.LinkStats.
func (e *Env) newLink() *stream.Link {
	return e.links.alloc(stream.Config{
		Capacity:      e.opts.BufferSize,
		BatchSize:     e.opts.BatchSize,
		FlushInterval: e.opts.FlushInterval,
	})
}

// closeLink ends a link: pending records are flushed (or dropped, when the
// instance is already stopped) and the receiver observes end-of-stream.
func (e *Env) closeLink(l *stream.Link) { l.Close(e.done) }

// report records a runtime error.
func (e *Env) report(err error) { e.errs.add(err) }

// maxRetainedErrors bounds the error sink: under a sustained flood of
// malformed input the sink keeps the first maxRetainedErrors errors (the
// ones that tell the story) plus a count of everything dropped, so a
// long-lived instance cannot grow memory without limit.
const maxRetainedErrors = 64

// errSink accumulates runtime errors from concurrently executing entities,
// retaining at most maxRetainedErrors of them. The stopped marker lives
// outside the capped retention: ErrStopped must surface from Err even when
// an error flood has already filled the sink.
type errSink struct {
	mu        sync.Mutex
	errs      []error
	total     int // every error ever reported, retained or not
	dropped   int // errors beyond the retention cap
	droppedBy [numErrorCategories]int
	stopped   bool
}

func (s *errSink) add(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	s.total++
	if len(s.errs) < maxRetainedErrors {
		s.errs = append(s.errs, err)
	} else {
		s.dropped++
		s.droppedBy[categoryOf(err)]++
	}
	s.mu.Unlock()
}

// markStopped records the instance abort; it counts as one reported error
// but is never subject to the retention cap.
func (s *errSink) markStopped() {
	s.mu.Lock()
	s.stopped = true
	s.total++
	s.mu.Unlock()
}

func (s *errSink) all() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]error, 0, len(s.errs)+2)
	if s.stopped {
		out = append(out, ErrStopped)
	}
	out = append(out, s.errs...)
	if s.dropped > 0 {
		out = append(out, fmt.Errorf(
			"snet: %d further errors dropped (first %d retained)",
			s.dropped, maxRetainedErrors))
	}
	return out
}

func (s *errSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// report builds the structured snapshot behind Instance.Errs.
func (s *errSink) report() ErrorReport {
	s.mu.Lock()
	defer s.mu.Unlock()
	rep := ErrorReport{Stopped: s.stopped, Total: s.total}
	rep.Retained = make([]*RuntimeError, len(s.errs))
	for i, err := range s.errs {
		rep.Retained[i] = asRuntimeError(err)
	}
	if s.dropped > 0 {
		rep.Dropped = make(map[ErrorCategory]int)
		for c, n := range s.droppedBy {
			if n > 0 {
				rep.Dropped[ErrorCategory(c)] = n
			}
		}
	}
	return rep
}

// SpawnFunc instantiates an entity: it must start whatever goroutines the
// entity needs, consume `in` until it is closed, and close `out` once all
// output has been produced. Entities exchange records over batched stream
// links (stream.Link); an entity is its input link's single receiver and
// may share its output link with sibling producers under a collector.
type SpawnFunc func(env *Env, in, out *stream.Link)

// entityKind discriminates what an Entity is, so the network optimizer can
// rewrite trees structurally (flatten serial/choice nests, fuse filter and
// box runs, elide identities) without per-combinator knowledge leaking out
// of the constructors. kindOpaque covers everything the optimizer treats as
// a black box (stars, splits, placement, observers, feedback); such nodes
// still participate in optimization through their rebuild hook.
type entityKind uint8

const (
	kindOpaque entityKind = iota
	kindBox
	kindFilter
	kindIdentity
	kindSync
	kindSerial    // n-ary serial chain; kids are the stages in order
	kindChoice    // n-ary nondeterministic choice; kids are the leaves
	kindDetChoice // n-ary deterministic choice; kids are the leaves
	kindFused     // optimizer-built single-goroutine stage chain
)

// Entity is a SISO network component: a box, filter, synchrocell, or a
// network built from combinators. Entities are immutable descriptions and
// may be instantiated any number of times.
type Entity struct {
	// name is the materialized diagnostic name; nameFn computes it on
	// first use. Combinator names compose their operands' names, so eager
	// construction is quadratic-ish string building per compile — names
	// are only needed for diagnostics (Describe, runtime errors), so they
	// stay latent until asked for.
	name     string
	nameFn   func() string
	nameOnce sync.Once

	sig   rtype.Signature
	kids  []*Entity
	spawn SpawnFunc
	kind  entityKind

	// rebuild reconstructs this node around rewritten children (same
	// length and order as kids). Set by combinator constructors the
	// optimizer has no structural rewrite for (star, split, placement,
	// observe, feedback), so their operands still get optimized.
	rebuild func(kids []*Entity) *Entity

	// rules is the filter payload (kindFilter): the compiled rule set,
	// shared with fused entities so a fused filter stage is bit-identical
	// to the standalone one.
	rules []compiledRule
	// box is the box payload (kindBox), shared with fused entities.
	box *boxImpl
	// stages is the fused-chain payload (kindFused): the flattened stage
	// list a single goroutine threads each record through. kids keeps the
	// original parts for Describe.
	stages []fuseStage
	// selTree/selCursors drive choice dispatch (kindChoice/kindDetChoice):
	// the selector tree reproduces nested round-robin tie-breaking over
	// the flattened leaf list; selCursors is the number of cursor slots a
	// dispatcher instance needs. See selNode.
	selTree    *selNode
	selCursors int
	// elide lets a choice dispatcher bypass identity leaves (record goes
	// straight to the merge, no goroutine per leaf). Only the optimizer
	// sets it: plain construction spawns what was written.
	elide bool
	// seqSym is the hidden sequence tag (kindDetChoice and DetSplit):
	// deterministic combinators at different nesting depths use distinct
	// tags so an inner combinator cannot clobber an outer one's stamp.
	seqSym record.Sym

	// detDepth is the maximum nesting depth of deterministic combinators
	// in this subtree (0 = none); constructors propagate it so each Det*
	// entity can pick a sequence tag no nested one will touch.
	detDepth int
	// looseOut marks subtrees whose runtime output can fall outside the
	// declared output type: synchrocells pass unmatched records through
	// unchanged, so everything downstream of one must not trust sig.Out
	// (rtype.Dominated-based pruning is disabled there).
	looseOut bool
}

// maxDetDepth is the detDepth a combinator inherits from its operands.
func maxDetDepth(ops []*Entity) int {
	d := 0
	for _, op := range ops {
		if op.detDepth > d {
			d = op.detDepth
		}
	}
	return d
}

// anyLooseOut is the looseOut a union-typed combinator (choice) inherits.
func anyLooseOut(ops []*Entity) bool {
	for _, op := range ops {
		if op.looseOut {
			return true
		}
	}
	return false
}

// Name returns the entity's diagnostic name.
func (e *Entity) Name() string {
	e.nameOnce.Do(func() {
		if e.nameFn != nil {
			e.name = e.nameFn()
			e.nameFn = nil
		}
	})
	return e.name
}

// Signature returns the entity's (declared or inferred) type signature.
func (e *Entity) Signature() rtype.Signature { return e.sig }

// Spawn instantiates the entity in the given environment.
func (e *Entity) Spawn(env *Env, in, out *stream.Link) {
	e.spawn(env, in, out)
}

// Describe renders the entity tree with names and signatures, one entity
// per line, indented by depth. It is used by the snetc command.
func (e *Entity) Describe() string {
	var b []byte
	var walk func(ent *Entity, depth int)
	walk = func(ent *Entity, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		b = append(b, ent.Name()...)
		b = append(b, "  :: "...)
		b = append(b, ent.sig.String()...)
		b = append(b, '\n')
		for _, k := range ent.kids {
			walk(k, depth+1)
		}
	}
	walk(e, 0)
	return string(b)
}

// collector lets a dynamic set of producers (star unfoldings, split
// instances, parallel branches) share one output link. The link is closed
// once every registered producer has finished — producers only send while
// registered, so the close can never race a send even during an abort. The
// last producer to sign off closes the link from its own goroutine (no
// dedicated closer goroutine): star-heavy networks create a collector per
// unfolding, so the closer's goroutine and closure were a per-stage cost.
type collector struct {
	env *Env
	out *stream.Link
	n   atomic.Int32
}

// newCollector registers `initial` producers.
func newCollector(env *Env, out *stream.Link, initial int) *collector {
	c := &collector{env: env, out: out}
	c.n.Store(int32(initial))
	return c
}

// add registers additional producers. It must be called from a goroutine
// that is itself a registered producer (so the count cannot reach zero
// concurrently).
func (c *collector) add(n int) { c.n.Add(int32(n)) }

// done signs off one producer; the last one out closes the shared link.
func (c *collector) done() {
	if c.n.Add(-1) == 0 {
		c.env.closeLink(c.out)
	}
}

// send forwards a record to the shared output; false means the instance
// was stopped and the producer must unwind.
func (c *collector) send(r *record.Record) bool { return c.env.send(c.out, r) }

// drainInto forwards everything from src to the collector in whole
// batches (a batch formed upstream crosses the merge as one operation),
// then signs off.
func (c *collector) drainInto(src *stream.Link) {
	defer c.done()
	for {
		b, ok := src.RecvBatch(c.env.done)
		if !ok {
			return
		}
		if !c.out.SendBatch(b, c.env.done) {
			return
		}
	}
}

// pump copies src to dst in whole batches and closes dst when src is
// exhausted or the instance is stopped.
func (e *Env) pump(src, dst *stream.Link) {
	defer e.closeLink(dst)
	for {
		b, ok := src.RecvBatch(e.done)
		if !ok {
			return
		}
		if !dst.SendBatch(b, e.done) {
			return
		}
	}
}

// entityError annotates a runtime error with the entity that raised it.
func entityError(name string, err error) error {
	return fmt.Errorf("snet: entity %s: %w", name, err)
}
