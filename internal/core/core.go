// Package core implements the S-Net streaming runtime: stateless boxes made
// into asynchronous stream components, the four SISO network combinators
// (serial ".." and parallel "|" composition, serial replication "*" and
// indexed parallel replication "!"), filters, synchrocells, and the
// Distributed S-Net placement combinators "@" and "!@".
//
// Every network entity — box or combinator — is a SISO stream transformer:
// it consumes records from one input channel and produces records on one
// output channel. Entities are descriptions; Spawn instantiates them as
// goroutines. An entity owns its output channel and closes it once its input
// is drained and all in-flight work has finished, so network shutdown
// cascades naturally from closing the toplevel input.
package core

import (
	"fmt"
	"sync"

	"snet/internal/record"
	"snet/internal/rtype"
)

// Platform abstracts the compute substrate underneath a network: where box
// functions execute and what happens when a record crosses between abstract
// compute nodes. The default LocalPlatform runs everything inline on one
// node; package dist provides a multi-node platform with bounded per-node
// CPU slots and transfer accounting.
type Platform interface {
	// Nodes returns the number of abstract compute nodes.
	Nodes() int
	// Exec runs a box function on the given node. Exec blocks until fn
	// has finished; implementations typically gate fn on a per-node CPU
	// slot.
	Exec(node int, fn func())
	// Transfer is called when a record moves from node `from` to node
	// `to`. Implementations may account for or delay the transfer. It is
	// never called with from == to.
	Transfer(from, to int, r *record.Record)
}

// LocalPlatform is the trivial single-node platform.
type LocalPlatform struct{}

// Nodes returns 1.
func (LocalPlatform) Nodes() int { return 1 }

// Exec runs fn inline.
func (LocalPlatform) Exec(node int, fn func()) { fn() }

// Transfer does nothing.
func (LocalPlatform) Transfer(from, to int, r *record.Record) {}

// Options configure a network instantiation.
type Options struct {
	// BufferSize is the capacity of every stream channel. Zero selects
	// DefaultBufferSize; a negative value makes every stream fully
	// synchronous (unbuffered).
	BufferSize int
	// Platform is the compute substrate; nil means LocalPlatform.
	Platform Platform
	// CheckTypes enables runtime verification that every record emitted
	// by a box matches one of the box's declared output variants (before
	// flow inheritance). Violations are reported as errors.
	CheckTypes bool
	// FlushSyncOnClose makes synchrocells emit their partially matched
	// contents when their input stream closes. The default (false)
	// matches the reference runtime: partial matches are discarded at
	// network termination. Flushing must not be combined with networks
	// that re-circulate synchrocell output through a star (such as the
	// paper's Fig. 4 solver segment), where flushed tokens would unroll
	// new star stages indefinitely during shutdown.
	FlushSyncOnClose bool
}

// DefaultBufferSize is used when Options.BufferSize is zero-valued via
// NewNetwork's option normalization.
const DefaultBufferSize = 32

// Env is the per-network runtime context threaded through entity spawning.
// It carries the platform, the current placement node, the shared error
// sink and the options.
type Env struct {
	platform Platform
	node     int
	opts     Options
	errs     *errSink
}

// newEnv builds the root environment.
func newEnv(opts Options) *Env {
	if opts.Platform == nil {
		opts.Platform = LocalPlatform{}
	}
	return &Env{
		platform: opts.Platform,
		node:     0,
		opts:     opts,
		errs:     &errSink{},
	}
}

// At returns a copy of the environment placed on the given node.
func (e *Env) At(node int) *Env {
	c := *e
	c.node = node
	return &c
}

// Node returns the abstract compute node the current entity is placed on.
func (e *Env) Node() int { return e.node }

// Nodes returns the platform's node count.
func (e *Env) Nodes() int { return e.platform.Nodes() }

// exec runs fn as a box execution on the environment's node.
func (e *Env) exec(fn func()) { e.platform.Exec(e.node, fn) }

// transfer accounts a record moving between nodes.
func (e *Env) transfer(from, to int, r *record.Record) {
	if from != to {
		e.platform.Transfer(from, to, r)
	}
}

// newChan allocates a stream channel with the configured buffering.
func (e *Env) newChan() chan *record.Record {
	if e.opts.BufferSize < 0 {
		return make(chan *record.Record)
	}
	return make(chan *record.Record, e.opts.BufferSize)
}

// report records a runtime error.
func (e *Env) report(err error) { e.errs.add(err) }

// errSink accumulates runtime errors from concurrently executing entities.
type errSink struct {
	mu   sync.Mutex
	errs []error
}

func (s *errSink) add(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	s.errs = append(s.errs, err)
	s.mu.Unlock()
}

func (s *errSink) all() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]error, len(s.errs))
	copy(out, s.errs)
	return out
}

// SpawnFunc instantiates an entity: it must start whatever goroutines the
// entity needs, consume `in` until it is closed, and close `out` once all
// output has been produced.
type SpawnFunc func(env *Env, in <-chan *record.Record, out chan<- *record.Record)

// Entity is a SISO network component: a box, filter, synchrocell, or a
// network built from combinators. Entities are immutable descriptions and
// may be instantiated any number of times.
type Entity struct {
	// name is the materialized diagnostic name; nameFn computes it on
	// first use. Combinator names compose their operands' names, so eager
	// construction is quadratic-ish string building per compile — names
	// are only needed for diagnostics (Describe, runtime errors), so they
	// stay latent until asked for.
	name     string
	nameFn   func() string
	nameOnce sync.Once

	sig   rtype.Signature
	kids  []*Entity
	spawn SpawnFunc
	// identity marks the identity filter []: a pure pass-through that
	// combinators may elide at instantiation time (no channels, no
	// goroutine) without changing network semantics.
	identity bool
}

// Name returns the entity's diagnostic name.
func (e *Entity) Name() string {
	e.nameOnce.Do(func() {
		if e.nameFn != nil {
			e.name = e.nameFn()
			e.nameFn = nil
		}
	})
	return e.name
}

// Signature returns the entity's (declared or inferred) type signature.
func (e *Entity) Signature() rtype.Signature { return e.sig }

// Spawn instantiates the entity in the given environment.
func (e *Entity) Spawn(env *Env, in <-chan *record.Record, out chan<- *record.Record) {
	e.spawn(env, in, out)
}

// Describe renders the entity tree with names and signatures, one entity
// per line, indented by depth. It is used by the snetc command.
func (e *Entity) Describe() string {
	var b []byte
	var walk func(ent *Entity, depth int)
	walk = func(ent *Entity, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		b = append(b, ent.Name()...)
		b = append(b, "  :: "...)
		b = append(b, ent.sig.String()...)
		b = append(b, '\n')
		for _, k := range ent.kids {
			walk(k, depth+1)
		}
	}
	walk(e, 0)
	return string(b)
}

// collector lets a dynamic set of producers (star unfoldings, split
// instances, parallel branches) share one output channel. The channel is
// closed once every registered producer has finished.
type collector struct {
	out chan<- *record.Record
	wg  sync.WaitGroup
}

// newCollector registers `initial` producers and starts the closer.
func newCollector(out chan<- *record.Record, initial int) *collector {
	c := &collector{out: out}
	c.wg.Add(initial)
	go func() {
		c.wg.Wait()
		close(out)
	}()
	return c
}

// add registers additional producers. It must be called from a goroutine
// that is itself a registered producer (so the count cannot reach zero
// concurrently).
func (c *collector) add(n int) { c.wg.Add(n) }

// done signs off one producer.
func (c *collector) done() { c.wg.Done() }

// send forwards a record to the shared output.
func (c *collector) send(r *record.Record) { c.out <- r }

// drainInto forwards everything from src to the collector, then signs off.
func (c *collector) drainInto(src <-chan *record.Record) {
	defer c.done()
	for r := range src {
		c.out <- r
	}
}

// pump copies src to dst and closes dst when src is exhausted.
func pump(src <-chan *record.Record, dst chan<- *record.Record) {
	for r := range src {
		dst <- r
	}
	close(dst)
}

// entityError annotates a runtime error with the entity that raised it.
func entityError(name string, err error) error {
	return fmt.Errorf("snet: entity %s: %w", name, err)
}
