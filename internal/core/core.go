// Package core implements the S-Net streaming runtime: stateless boxes made
// into asynchronous stream components, the four SISO network combinators
// (serial ".." and parallel "|" composition, serial replication "*" and
// indexed parallel replication "!"), filters, synchrocells, and the
// Distributed S-Net placement combinators "@" and "!@".
//
// Every network entity — box or combinator — is a SISO stream transformer:
// it consumes records from one input channel and produces records on one
// output channel. Entities are descriptions; Spawn instantiates them as
// goroutines. An entity owns its output channel and closes it once its input
// is drained and all in-flight work has finished, so network shutdown
// cascades naturally from closing the toplevel input.
//
// Beyond the orderly drain, every instance is cancellable: the environment
// carries a done channel closed by Instance.Stop, every blocking channel
// operation an entity performs selects on it, and every runtime goroutine
// is tracked by a WaitGroup, so an aborted network — even one wedged
// against an unread output or a saturated platform — unwinds completely
// and leaks nothing.
package core

import (
	"fmt"
	"sync"

	"snet/internal/record"
	"snet/internal/rtype"
)

// Platform abstracts the compute substrate underneath a network: where box
// functions execute and what happens when a record crosses between abstract
// compute nodes. The default LocalPlatform runs everything inline on one
// node; package dist provides a multi-node platform with bounded per-node
// CPU slots and transfer accounting.
type Platform interface {
	// Nodes returns the number of abstract compute nodes.
	Nodes() int
	// Exec runs a box function on the given node. Exec blocks until fn
	// has finished; implementations typically gate fn on a per-node CPU
	// slot.
	Exec(node int, fn func())
	// Transfer is called when a record moves from node `from` to node
	// `to`. Implementations may account for or delay the transfer. It is
	// never called with from == to.
	Transfer(from, to int, r *record.Record)
}

// CancellablePlatform is optionally implemented by platforms whose Exec can
// abandon waiting for a CPU slot. The runtime uses it when an instance is
// stopped: a box queued behind a busy node must not strand the stopping
// network (nor, for bounded platforms such as dist.Cluster, consume a slot
// it will never use). ExecCancel returns false — without running fn — when
// cancel fires before a slot was acquired; once fn has started it always
// runs to completion and the slot is released normally.
type CancellablePlatform interface {
	ExecCancel(node int, cancel <-chan struct{}, fn func()) bool
}

// LocalPlatform is the trivial single-node platform.
type LocalPlatform struct{}

// Nodes returns 1.
func (LocalPlatform) Nodes() int { return 1 }

// Exec runs fn inline.
func (LocalPlatform) Exec(node int, fn func()) { fn() }

// Transfer does nothing.
func (LocalPlatform) Transfer(from, to int, r *record.Record) {}

// Options configure a network instantiation.
type Options struct {
	// BufferSize is the capacity of every stream channel. Zero selects
	// DefaultBufferSize; a negative value makes every stream fully
	// synchronous (unbuffered).
	BufferSize int
	// Platform is the compute substrate; nil means LocalPlatform.
	Platform Platform
	// CheckTypes enables runtime verification that every record emitted
	// by a box matches one of the box's declared output variants (before
	// flow inheritance). Violations are reported as errors.
	CheckTypes bool
	// FlushSyncOnClose makes synchrocells emit their partially matched
	// contents when their input stream closes. The default (false)
	// matches the reference runtime: partial matches are discarded at
	// network termination. Flushing must not be combined with networks
	// that re-circulate synchrocell output through a star (such as the
	// paper's Fig. 4 solver segment), where flushed tokens would unroll
	// new star stages indefinitely during shutdown.
	FlushSyncOnClose bool
}

// DefaultBufferSize is used when Options.BufferSize is zero-valued via
// NewNetwork's option normalization.
const DefaultBufferSize = 32

// Env is the per-network runtime context threaded through entity spawning.
// It carries the platform, the current placement node, the shared error
// sink, the options, and the instance's lifecycle state: a done channel
// closed when the instance is stopped and a WaitGroup tracking every
// runtime goroutine, so Stop can wait for full reclamation.
type Env struct {
	platform Platform
	cancPlat CancellablePlatform // platform, when it supports cancellation
	node     int
	opts     Options
	errs     *errSink
	done     chan struct{}   // closed by Instance.Stop; nil never happens
	wg       *sync.WaitGroup // counts every goroutine started via start
}

// newEnv builds the root environment.
func newEnv(opts Options) *Env {
	if opts.Platform == nil {
		opts.Platform = LocalPlatform{}
	}
	e := &Env{
		platform: opts.Platform,
		node:     0,
		opts:     opts,
		errs:     &errSink{},
		done:     make(chan struct{}),
		wg:       &sync.WaitGroup{},
	}
	e.cancPlat, _ = opts.Platform.(CancellablePlatform)
	return e
}

// At returns a copy of the environment placed on the given node.
func (e *Env) At(node int) *Env {
	c := *e
	c.node = node
	return &c
}

// Node returns the abstract compute node the current entity is placed on.
func (e *Env) Node() int { return e.node }

// Nodes returns the platform's node count.
func (e *Env) Nodes() int { return e.platform.Nodes() }

// start launches fn as an instance goroutine tracked by the lifecycle
// WaitGroup. Every goroutine the runtime spawns goes through here, so
// Instance.Stop can wait for all of them to be reclaimed.
func (e *Env) start(fn func()) {
	e.wg.Add(1)
	go func() {
		defer e.wg.Done()
		fn()
	}()
}

// send delivers r on out unless the instance has been stopped. It reports
// whether the record was delivered; on false the caller must unwind (its
// output is no longer wanted). The buffered fast path stays a single
// non-blocking channel operation so steady-state throughput does not pay
// for cancellability.
func (e *Env) send(out chan<- *record.Record, r *record.Record) bool {
	select {
	case out <- r:
		return true
	default:
	}
	select {
	case out <- r:
		return true
	case <-e.done:
		return false
	}
}

// recv takes the next record from in, giving up when the instance is
// stopped. The leading done poll makes a stopped instance stop consuming
// buffered backlog immediately instead of processing it to the next
// blocking point.
func (e *Env) recv(in <-chan *record.Record) (*record.Record, bool) {
	select {
	case <-e.done:
		return nil, false
	default:
	}
	select {
	case r, ok := <-in:
		return r, ok
	default:
	}
	select {
	case r, ok := <-in:
		return r, ok
	case <-e.done:
		return nil, false
	}
}

// exec runs fn as a box execution on the environment's node. It reports
// false — without having run fn — when the instance was stopped while
// waiting for the platform to grant a CPU slot.
func (e *Env) exec(fn func()) bool {
	if e.cancPlat != nil {
		return e.cancPlat.ExecCancel(e.node, e.done, fn)
	}
	e.platform.Exec(e.node, fn)
	return true
}

// transfer accounts a record moving between nodes.
func (e *Env) transfer(from, to int, r *record.Record) {
	if from != to {
		e.platform.Transfer(from, to, r)
	}
}

// newChan allocates a stream channel with the configured buffering.
func (e *Env) newChan() chan *record.Record {
	if e.opts.BufferSize < 0 {
		return make(chan *record.Record)
	}
	return make(chan *record.Record, e.opts.BufferSize)
}

// report records a runtime error.
func (e *Env) report(err error) { e.errs.add(err) }

// maxRetainedErrors bounds the error sink: under a sustained flood of
// malformed input the sink keeps the first maxRetainedErrors errors (the
// ones that tell the story) plus a count of everything dropped, so a
// long-lived instance cannot grow memory without limit.
const maxRetainedErrors = 64

// errSink accumulates runtime errors from concurrently executing entities,
// retaining at most maxRetainedErrors of them. The stopped marker lives
// outside the capped retention: ErrStopped must surface from Err even when
// an error flood has already filled the sink.
type errSink struct {
	mu      sync.Mutex
	errs    []error
	total   int // every error ever reported, retained or not
	dropped int // errors beyond the retention cap
	stopped bool
}

func (s *errSink) add(err error) {
	if err == nil {
		return
	}
	s.mu.Lock()
	s.total++
	if len(s.errs) < maxRetainedErrors {
		s.errs = append(s.errs, err)
	} else {
		s.dropped++
	}
	s.mu.Unlock()
}

// markStopped records the instance abort; it counts as one reported error
// but is never subject to the retention cap.
func (s *errSink) markStopped() {
	s.mu.Lock()
	s.stopped = true
	s.total++
	s.mu.Unlock()
}

func (s *errSink) all() []error {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]error, 0, len(s.errs)+2)
	if s.stopped {
		out = append(out, ErrStopped)
	}
	out = append(out, s.errs...)
	if s.dropped > 0 {
		out = append(out, fmt.Errorf(
			"snet: %d further errors dropped (first %d retained)",
			s.dropped, maxRetainedErrors))
	}
	return out
}

func (s *errSink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// SpawnFunc instantiates an entity: it must start whatever goroutines the
// entity needs, consume `in` until it is closed, and close `out` once all
// output has been produced.
type SpawnFunc func(env *Env, in <-chan *record.Record, out chan<- *record.Record)

// Entity is a SISO network component: a box, filter, synchrocell, or a
// network built from combinators. Entities are immutable descriptions and
// may be instantiated any number of times.
type Entity struct {
	// name is the materialized diagnostic name; nameFn computes it on
	// first use. Combinator names compose their operands' names, so eager
	// construction is quadratic-ish string building per compile — names
	// are only needed for diagnostics (Describe, runtime errors), so they
	// stay latent until asked for.
	name     string
	nameFn   func() string
	nameOnce sync.Once

	sig   rtype.Signature
	kids  []*Entity
	spawn SpawnFunc
	// identity marks the identity filter []: a pure pass-through that
	// combinators may elide at instantiation time (no channels, no
	// goroutine) without changing network semantics.
	identity bool
}

// Name returns the entity's diagnostic name.
func (e *Entity) Name() string {
	e.nameOnce.Do(func() {
		if e.nameFn != nil {
			e.name = e.nameFn()
			e.nameFn = nil
		}
	})
	return e.name
}

// Signature returns the entity's (declared or inferred) type signature.
func (e *Entity) Signature() rtype.Signature { return e.sig }

// Spawn instantiates the entity in the given environment.
func (e *Entity) Spawn(env *Env, in <-chan *record.Record, out chan<- *record.Record) {
	e.spawn(env, in, out)
}

// Describe renders the entity tree with names and signatures, one entity
// per line, indented by depth. It is used by the snetc command.
func (e *Entity) Describe() string {
	var b []byte
	var walk func(ent *Entity, depth int)
	walk = func(ent *Entity, depth int) {
		for i := 0; i < depth; i++ {
			b = append(b, ' ', ' ')
		}
		b = append(b, ent.Name()...)
		b = append(b, "  :: "...)
		b = append(b, ent.sig.String()...)
		b = append(b, '\n')
		for _, k := range ent.kids {
			walk(k, depth+1)
		}
	}
	walk(e, 0)
	return string(b)
}

// collector lets a dynamic set of producers (star unfoldings, split
// instances, parallel branches) share one output channel. The channel is
// closed once every registered producer has finished — producers only send
// while registered, so the close can never race a send even during an
// abort.
type collector struct {
	env *Env
	out chan<- *record.Record
	wg  sync.WaitGroup
}

// newCollector registers `initial` producers and starts the closer.
func newCollector(env *Env, out chan<- *record.Record, initial int) *collector {
	c := &collector{env: env, out: out}
	c.wg.Add(initial)
	env.start(func() {
		c.wg.Wait()
		close(out)
	})
	return c
}

// add registers additional producers. It must be called from a goroutine
// that is itself a registered producer (so the count cannot reach zero
// concurrently).
func (c *collector) add(n int) { c.wg.Add(n) }

// done signs off one producer.
func (c *collector) done() { c.wg.Done() }

// send forwards a record to the shared output; false means the instance
// was stopped and the producer must unwind.
func (c *collector) send(r *record.Record) bool { return c.env.send(c.out, r) }

// drainInto forwards everything from src to the collector, then signs off.
func (c *collector) drainInto(src <-chan *record.Record) {
	defer c.done()
	for {
		r, ok := c.env.recv(src)
		if !ok {
			return
		}
		if !c.env.send(c.out, r) {
			return
		}
	}
}

// pump copies src to dst and closes dst when src is exhausted or the
// instance is stopped.
func (e *Env) pump(src <-chan *record.Record, dst chan<- *record.Record) {
	defer close(dst)
	for {
		r, ok := e.recv(src)
		if !ok {
			return
		}
		if !e.send(dst, r) {
			return
		}
	}
}

// entityError annotates a runtime error with the entity that raised it.
func entityError(name string, err error) error {
	return fmt.Errorf("snet: entity %s: %w", name, err)
}
