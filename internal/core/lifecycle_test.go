package core

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"snet/internal/leakcheck"
	"snet/internal/record"
	"snet/internal/rtype"
)

// withTimeout fails the test if fn does not return within d.
func withTimeout(t *testing.T, d time.Duration, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatalf("%s did not return within %v", what, d)
	}
}

// saturate feeds records through Send until the instance stops accepting
// them promptly (every buffer in the path is full) or n records are in.
func saturate(t *testing.T, inst *Instance, n int, mk func(i int) *record.Record) {
	t.Helper()
	for i := 0; i < n; i++ {
		delivered := make(chan bool, 1)
		go func(r *record.Record) { delivered <- inst.Send(r) }(mk(i))
		select {
		case ok := <-delivered:
			if !ok {
				t.Fatal("Send refused before Stop")
			}
		case <-time.After(50 * time.Millisecond):
			// The pipeline is wedged on its buffers — saturated. The
			// in-flight Send unblocks via Done when the test stops the
			// instance.
			return
		}
	}
}

func TestStopSaturatedPipelineReclaimsEverything(t *testing.T) {
	leakcheck.Check(t)
	// A deep composition — serial boxes, a choice, an unrolling star —
	// with tiny buffers and an unread Out: every entity ends up blocked
	// on a send. Stop must unwind all of it.
	e := SerialAll(
		incBox("a", 1),
		Choice(incBox("b", 10), Identity()),
		Star(incBox("s", 1), rtype.NewPattern(rtype.NewVariant(rtype.F("x"))).WithGuard(
			func(r *record.Record) bool {
				v, _ := r.Field("x")
				iv, _ := v.(int)
				return iv >= 1000
			}, "x >= 1000")),
	)
	inst := NewNetwork(e, Options{BufferSize: 1}).Start()
	saturate(t, inst, 500, func(i int) *record.Record {
		return record.New().SetField("x", i)
	})
	withTimeout(t, 5*time.Second, "Stop on a saturated network", func() {
		if err := inst.Stop(); !errors.Is(err, ErrStopped) {
			t.Errorf("Stop = %v, want ErrStopped", err)
		}
	})
	if err := inst.Err(); !errors.Is(err, ErrStopped) {
		t.Errorf("Err() = %v, want to include ErrStopped", err)
	}
}

func TestStopDuringBoxExecution(t *testing.T) {
	leakcheck.Check(t)
	started := make(chan struct{})
	release := make(chan struct{})
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	blocking := NewBox("blocking", sig, func(c *BoxCall) error {
		close(started)
		<-release
		c.Emit(record.New().SetField("x", 1))
		return nil
	})
	inst := NewNetwork(blocking, Options{}).Start()
	if !inst.Send(record.New().SetField("x", 0)) {
		t.Fatal("Send refused")
	}
	<-started
	stopRet := make(chan error, 1)
	go func() { stopRet <- inst.Stop() }()
	// Stop must wait for the running box body — executions are never
	// interrupted mid-flight — so it cannot have returned yet.
	select {
	case err := <-stopRet:
		t.Fatalf("Stop returned %v while a box body was still running", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	select {
	case err := <-stopRet:
		if !errors.Is(err, ErrStopped) {
			t.Fatalf("Stop = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stop did not return after the box body finished")
	}
}

func TestStopWithBlockedConsumer(t *testing.T) {
	leakcheck.Check(t)
	inst := NewNetwork(incBox("inc", 1), Options{}).Start()
	// A consumer blocked on an empty Out must be released by Stop via the
	// Out close.
	consumed := make(chan int, 1)
	go func() {
		n := 0
		for range inst.Out {
			n++
		}
		consumed <- n
	}()
	withTimeout(t, 5*time.Second, "Stop with a blocked consumer", func() { inst.Stop() })
	select {
	case <-consumed:
	case <-time.After(5 * time.Second):
		t.Fatal("consumer still blocked on Out after Stop")
	}
}

func TestDoubleStopIdempotent(t *testing.T) {
	leakcheck.Check(t)
	inst := NewNetwork(incBox("inc", 1), Options{}).Start()
	withTimeout(t, 5*time.Second, "double Stop", func() {
		err1 := inst.Stop()
		err2 := inst.Stop()
		if !errors.Is(err1, ErrStopped) || !errors.Is(err2, ErrStopped) {
			t.Errorf("Stop, Stop = %v, %v", err1, err2)
		}
	})
	// Exactly one ErrStopped lands in the sink.
	if n := inst.ErrCount(); n != 1 {
		t.Errorf("ErrCount after double Stop = %d, want 1", n)
	}
}

func TestSendAfterStopRefused(t *testing.T) {
	leakcheck.Check(t)
	inst := NewNetwork(incBox("inc", 1), Options{}).Start()
	inst.Stop()
	if inst.Send(record.New().SetField("x", 1)) {
		t.Fatal("Send accepted a record after Stop")
	}
	select {
	case <-inst.Done():
	default:
		t.Fatal("Done not closed after Stop")
	}
}

func TestCloseOrderly(t *testing.T) {
	leakcheck.Check(t)
	inst := NewNetwork(incBox("inc", 1), Options{}).Start()
	for i := 0; i < 3; i++ {
		if !inst.Send(record.New().SetField("x", i)) {
			t.Fatal("Send refused")
		}
	}
	// Close drains and recycles the unread output and reports no error.
	withTimeout(t, 5*time.Second, "Close", func() {
		if err := inst.Close(); err != nil {
			t.Errorf("Close = %v", err)
		}
	})
}

func TestCloseAfterStopAndStopAfterClose(t *testing.T) {
	leakcheck.Check(t)
	a := NewNetwork(incBox("inc", 1), Options{}).Start()
	a.Stop()
	withTimeout(t, 5*time.Second, "Close after Stop", func() {
		if err := a.Close(); !errors.Is(err, ErrStopped) {
			t.Errorf("Close after Stop = %v, want ErrStopped", err)
		}
	})
	b := NewNetwork(incBox("inc", 1), Options{}).Start()
	withTimeout(t, 5*time.Second, "Close then Stop", func() {
		if err := b.Close(); err != nil {
			t.Errorf("Close = %v", err)
		}
		if err := b.Stop(); !errors.Is(err, ErrStopped) {
			t.Errorf("Stop after Close = %v", err)
		}
	})
}

func TestRunContextCancel(t *testing.T) {
	leakcheck.Check(t)
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	slow := NewBox("slow", sig, func(c *BoxCall) error {
		time.Sleep(5 * time.Millisecond)
		c.Emit(record.New().SetField("x", c.Field("x").(int)))
		return nil
	})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	var ins []*record.Record
	for i := 0; i < 1000; i++ {
		ins = append(ins, record.New().SetField("x", i))
	}
	var outs []*record.Record
	var err error
	withTimeout(t, 5*time.Second, "cancelled RunContext", func() {
		outs, err = NewNetwork(slow, Options{}).RunContext(ctx, ins...)
	})
	if !errors.Is(err, context.DeadlineExceeded) || !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want DeadlineExceeded and ErrStopped", err)
	}
	if len(outs) >= 1000 {
		t.Fatalf("cancelled run still produced all %d outputs", len(outs))
	}
}

func TestRunContextCompletes(t *testing.T) {
	leakcheck.Check(t)
	outs, err := NewNetwork(incBox("inc", 1), Options{}).RunContext(
		context.Background(), record.New().SetField("x", 41))
	if err != nil || len(outs) != 1 || xVal(t, outs[0]) != 42 {
		t.Fatalf("outs=%v err=%v", outs, err)
	}
}

func TestStopStarUnrollingLeakFree(t *testing.T) {
	leakcheck.Check(t)
	// A star that keeps unrolling replicas (exit threshold never reached
	// by the first inputs) and an unread Out: Stop while replicas are
	// mid-instantiation.
	sig := MustSig([]rtype.Label{rtype.T("n")}, []rtype.Label{rtype.T("n")})
	inc := NewBox("incn", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetTag("n", c.Tag("n")+1))
		return nil
	})
	exit := rtype.NewPattern(rtype.NewVariant(rtype.T("n"))).WithGuard(func(r *record.Record) bool {
		v, _ := r.Tag("n")
		return v >= 1_000_000
	}, "<n> >= 1000000")
	inst := NewNetwork(Star(inc, exit), Options{BufferSize: 1}).Start()
	saturate(t, inst, 64, func(i int) *record.Record {
		return record.New().SetTag("n", 0)
	})
	withTimeout(t, 5*time.Second, "Stop of an unrolling star", func() { inst.Stop() })
}

func TestStopSplitInstancesLeakFree(t *testing.T) {
	leakcheck.Check(t)
	sig := MustSig([]rtype.Label{rtype.F("x"), rtype.T("k")}, []rtype.Label{rtype.F("x")})
	echo := NewBox("echo", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetField("x", c.Field("x")).SetTag("k", c.Tag("k")))
		return nil
	})
	inst := NewNetwork(Split(echo, "k"), Options{BufferSize: 1}).Start()
	saturate(t, inst, 64, func(i int) *record.Record {
		return record.Build().F("x", i).T("k", i%8).Rec()
	})
	withTimeout(t, 5*time.Second, "Stop of a split", func() { inst.Stop() })
}

func TestStopDetChoiceLeakFree(t *testing.T) {
	leakcheck.Check(t)
	inst := NewNetwork(DetChoice(incBox("a", 1), incBox("b", 2)), Options{BufferSize: 1}).Start()
	saturate(t, inst, 64, func(i int) *record.Record {
		return record.New().SetField("x", i)
	})
	withTimeout(t, 5*time.Second, "Stop of a det-choice", func() { inst.Stop() })
}

func TestStopFeedbackStarLeakFree(t *testing.T) {
	leakcheck.Check(t)
	sig := MustSig([]rtype.Label{rtype.T("n")}, []rtype.Label{rtype.T("n")})
	inc := NewBox("incn", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetTag("n", c.Tag("n")+1))
		return nil
	})
	exit := rtype.NewPattern(rtype.NewVariant(rtype.T("n"))).WithGuard(func(r *record.Record) bool {
		v, _ := r.Tag("n")
		return v >= 1_000_000
	}, "<n> >= 1000000")
	inst := NewNetwork(FeedbackStar(inc, exit), Options{BufferSize: 1}).Start()
	saturate(t, inst, 32, func(i int) *record.Record {
		return record.New().SetTag("n", 0)
	})
	withTimeout(t, 5*time.Second, "Stop of a feedback star", func() { inst.Stop() })
}

// --- FeedbackStar termination regressions -------------------------------

func TestFeedbackStarZeroOutputBox(t *testing.T) {
	leakcheck.Check(t)
	// A box that consumes every record and emits nothing: the old
	// one-output-per-input accounting never decremented its in-flight
	// count and shutdown hung forever.
	sig := MustSig([]rtype.Label{rtype.T("n")}, []rtype.Label{rtype.T("n")})
	sink := NewBox("sinkbox", sig, func(c *BoxCall) error { return nil })
	exit := rtype.NewPattern(rtype.NewVariant(rtype.T("n"))).WithGuard(func(r *record.Record) bool {
		v, _ := r.Tag("n")
		return v >= 10
	}, "<n> >= 10")
	var outs []*record.Record
	var err error
	withTimeout(t, 5*time.Second, "feedback star over a zero-output box", func() {
		outs, err = NewNetwork(FeedbackStar(sink, exit), Options{}).Run(
			record.New().SetTag("n", 0),
			record.New().SetTag("n", 3),
			record.New().SetTag("n", 42)) // exits immediately at intake
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outputs, want just the immediate exit", len(outs))
	}
}

func TestFeedbackStarMultiExitBox(t *testing.T) {
	leakcheck.Check(t)
	// A box that emits two exit records per consumed record: the old
	// accounting decremented in-flight twice per input, closed the
	// operand early and dropped whatever was still queued.
	sig := MustSig([]rtype.Label{rtype.T("n")}, []rtype.Label{rtype.T("n")})
	double := NewBox("double", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetTag("n", 100+c.Tag("n")))
		c.Emit(record.New().SetTag("n", 200+c.Tag("n")))
		return nil
	})
	exit := rtype.NewPattern(rtype.NewVariant(rtype.T("n"))).WithGuard(func(r *record.Record) bool {
		v, _ := r.Tag("n")
		return v >= 100
	}, "<n> >= 100")
	const n = 16
	var ins []*record.Record
	for i := 0; i < n; i++ {
		ins = append(ins, record.New().SetTag("n", i))
	}
	var outs []*record.Record
	var err error
	withTimeout(t, 5*time.Second, "feedback star over a multi-exit box", func() {
		outs, err = NewNetwork(FeedbackStar(double, exit), Options{}).Run(ins...)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2*n {
		t.Fatalf("got %d outputs, want %d (two exits per input, none dropped)", len(outs), 2*n)
	}
}

func TestFeedbackStarMultiExitAfterFeedback(t *testing.T) {
	leakcheck.Check(t)
	// Records circulate a few times before fanning out into two exits:
	// exercises the generation-drain shutdown (feedback emerging while
	// the operand is being flushed).
	sig := MustSig([]rtype.Label{rtype.T("n")}, []rtype.Label{rtype.T("n")})
	fan := NewBox("fan", sig, func(c *BoxCall) error {
		n := c.Tag("n")
		if n < 5 {
			c.Emit(record.New().SetTag("n", n+1))
			return nil
		}
		c.Emit(record.New().SetTag("n", 100+n))
		c.Emit(record.New().SetTag("n", 200+n))
		return nil
	})
	exit := rtype.NewPattern(rtype.NewVariant(rtype.T("n"))).WithGuard(func(r *record.Record) bool {
		v, _ := r.Tag("n")
		return v >= 100
	}, "<n> >= 100")
	var outs []*record.Record
	var err error
	withTimeout(t, 5*time.Second, "feedback star with circulation then fan-out", func() {
		outs, err = NewNetwork(FeedbackStar(fan, exit), Options{}).Run(
			record.New().SetTag("n", 0),
			record.New().SetTag("n", 4))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 4 {
		t.Fatalf("got %d outputs, want 4", len(outs))
	}
}

// --- Choice control routing ---------------------------------------------

func TestChoiceControlRecordKeepsBranchOrder(t *testing.T) {
	leakcheck.Check(t)
	// Branch 0 is the (elided) identity, branch 1 a slow box. A control
	// record sent after a data record must not overtake the data queued
	// in the non-elided branch — it rides the same channel.
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	slow := NewBox("slowbox", sig, func(c *BoxCall) error {
		time.Sleep(30 * time.Millisecond)
		c.Emit(record.New().SetField("x", c.Field("x").(int)))
		return nil
	})
	e := Choice(Identity(), slow)
	outs, err := NewNetwork(e, Options{}).Run(
		record.New().SetField("x", 7), // routed to slow (more specific)
		record.NewTrigger(),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d outputs, want 2", len(outs))
	}
	if !outs[0].IsData() || outs[1].IsData() {
		t.Fatalf("control record overtook data queued in its branch: [%s %s]",
			outs[0], outs[1])
	}
}

func TestChoiceAllIdentityControlPassThrough(t *testing.T) {
	leakcheck.Check(t)
	outs, err := NewNetwork(Choice(Identity(), Identity()), Options{}).Run(
		record.NewTrigger())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || outs[0].IsData() {
		t.Fatalf("outs = %v", outs)
	}
}

// --- error sink bounds ---------------------------------------------------

func TestErrSinkBoundedUnderFlood(t *testing.T) {
	leakcheck.Check(t)
	inst := NewNetwork(incBox("inc", 1), Options{}).Start()
	const flood = 10 * maxRetainedErrors
	for i := 0; i < flood; i++ {
		if !inst.Send(record.New().SetField("wrong", i)) {
			t.Fatal("Send refused")
		}
	}
	if err := inst.Close(); err == nil {
		t.Fatal("flood of unmatched records reported no error")
	}
	if n := inst.ErrCount(); n != flood {
		t.Fatalf("ErrCount = %d, want %d", n, flood)
	}
	msg := inst.Err().Error()
	if !strings.Contains(msg, "further errors dropped") {
		t.Fatalf("joined error lacks the dropped-count summary:\n%.300s", msg)
	}
	// The retained set is bounded: the joined message must not contain
	// anywhere near `flood` lines.
	if n := strings.Count(msg, "\n"); n > maxRetainedErrors+1 {
		t.Fatalf("joined error has %d lines; retention cap leaks", n)
	}
}

func TestStopAfterErrorFloodStillReportsErrStopped(t *testing.T) {
	leakcheck.Check(t)
	// The stopped marker lives outside the capped retention: even when a
	// flood has filled the sink before the abort, errors.Is must find
	// ErrStopped.
	inst := NewNetwork(incBox("inc", 1), Options{}).Start()
	for i := 0; i < 2*maxRetainedErrors; i++ {
		if !inst.Send(record.New().SetField("wrong", i)) {
			t.Fatal("Send refused")
		}
	}
	// Let the box consume (and report) the whole flood before stopping.
	deadline := time.Now().Add(5 * time.Second)
	for inst.ErrCount() < 2*maxRetainedErrors {
		if time.Now().After(deadline) {
			t.Fatalf("flood not fully reported: %d", inst.ErrCount())
		}
		time.Sleep(time.Millisecond)
	}
	inst.Stop()
	if err := inst.Err(); !errors.Is(err, ErrStopped) {
		t.Fatalf("Err after flood+Stop lost ErrStopped: %.200s", err)
	}
}

func TestErrSinkRetainsFirstErrors(t *testing.T) {
	s := &errSink{}
	for i := 0; i < maxRetainedErrors+5; i++ {
		s.add(errors.New("e"))
	}
	if got := len(s.all()); got != maxRetainedErrors+1 {
		t.Fatalf("retained %d, want %d + summary", got, maxRetainedErrors)
	}
	if s.count() != maxRetainedErrors+5 {
		t.Fatalf("count = %d", s.count())
	}
}
