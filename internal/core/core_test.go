package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"snet/internal/leakcheck"
	"snet/internal/record"
	"snet/internal/rtype"
)

// incBox returns a box {x} -> {x} that adds delta to the integer field x.
func incBox(name string, delta int) *Entity {
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	return NewBox(name, sig, func(c *BoxCall) error {
		c.Emit(record.New().SetField("x", c.Field("x").(int)+delta))
		return nil
	})
}

func runEntity(t *testing.T, e *Entity, inputs ...*record.Record) []*record.Record {
	t.Helper()
	outs, err := NewNetwork(e, Options{}).Run(inputs...)
	if err != nil {
		t.Fatalf("network error: %v", err)
	}
	return outs
}

func xVal(t *testing.T, r *record.Record) int {
	t.Helper()
	v, ok := r.Field("x")
	if !ok {
		t.Fatalf("record %s lacks field x", r)
	}
	return v.(int)
}

func TestBoxBasic(t *testing.T) {
	outs := runEntity(t, incBox("inc", 1), record.New().SetField("x", 41))
	if len(outs) != 1 || xVal(t, outs[0]) != 42 {
		t.Fatalf("outs = %v", outs)
	}
}

func TestBoxFlowInheritance(t *testing.T) {
	// Extra labels must ride along; consumed labels must not.
	sig := MustSig([]rtype.Label{rtype.F("a"), rtype.T("b")}, []rtype.Label{rtype.F("c")})
	box := NewBox("foo", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetField("c", 1))
		return nil
	})
	in := record.Build().F("a", 1).T("b", 2).F("extra", "e").T("etag", 7).Rec()
	outs := runEntity(t, box, in)
	if len(outs) != 1 {
		t.Fatalf("got %d outputs", len(outs))
	}
	o := outs[0]
	if !o.HasField("c") || !o.HasField("extra") || !o.HasTag("etag") {
		t.Fatalf("inheritance failed: %s", o)
	}
	if o.HasField("a") || o.HasTag("b") {
		t.Fatalf("consumed labels leaked: %s", o)
	}
}

func TestBoxOverrideOnInheritance(t *testing.T) {
	// A box emitting a label that would also inherit keeps its own value.
	sig := MustSig([]rtype.Label{rtype.F("a")}, []rtype.Label{rtype.F("keep")})
	box := NewBox("b", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetField("keep", "box"))
		return nil
	})
	in := record.Build().F("a", 1).F("keep", "input").Rec()
	outs := runEntity(t, box, in)
	if v, _ := outs[0].Field("keep"); v != "box" {
		t.Fatalf("override failed: %v", v)
	}
}

func TestBoxMultipleOutputs(t *testing.T) {
	sig := MustSig([]rtype.Label{rtype.T("n")}, []rtype.Label{rtype.T("i")})
	fan := NewBox("fan", sig, func(c *BoxCall) error {
		for i := 0; i < c.Tag("n"); i++ {
			c.Emit(record.New().SetTag("i", i))
		}
		return nil
	})
	outs := runEntity(t, fan, record.New().SetTag("n", 5))
	if len(outs) != 5 {
		t.Fatalf("got %d outputs, want 5", len(outs))
	}
}

func TestBoxTypeMismatchReported(t *testing.T) {
	net := NewNetwork(incBox("inc", 1), Options{})
	_, err := net.Run(record.New().SetField("y", 1))
	if err == nil || !strings.Contains(err.Error(), "does not match input type") {
		t.Fatalf("err = %v", err)
	}
}

func TestBoxErrorPropagates(t *testing.T) {
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	bad := NewBox("bad", sig, func(c *BoxCall) error {
		return fmt.Errorf("deliberate")
	})
	_, err := NewNetwork(bad, Options{}).Run(record.New().SetField("x", 1))
	if err == nil || !strings.Contains(err.Error(), "deliberate") {
		t.Fatalf("err = %v", err)
	}
}

func TestBoxPanicRecovered(t *testing.T) {
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	bad := NewBox("panicky", sig, func(c *BoxCall) error {
		panic("boom")
	})
	_, err := NewNetwork(bad, Options{}).Run(record.New().SetField("x", 1))
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestBoxOutputTypeCheck(t *testing.T) {
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("y")})
	box := NewBox("wrongout", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetField("z", 1)) // violates declared output {y}
		return nil
	})
	_, err := NewNetwork(box, Options{CheckTypes: true}).Run(record.New().SetField("x", 1))
	if err == nil || !strings.Contains(err.Error(), "does not match output type") {
		t.Fatalf("err = %v", err)
	}
	// Without CheckTypes the same network runs silently.
	if _, err := NewNetwork(box, Options{}).Run(record.New().SetField("x", 1)); err != nil {
		t.Fatalf("unchecked err = %v", err)
	}
}

func TestSerialPipeline(t *testing.T) {
	e := SerialAll(incBox("a", 1), incBox("b", 10), incBox("c", 100))
	outs := runEntity(t, e, record.New().SetField("x", 0))
	if len(outs) != 1 || xVal(t, outs[0]) != 111 {
		t.Fatalf("outs = %v", outs)
	}
}

func TestSerialPreservesOrder(t *testing.T) {
	e := Serial(incBox("a", 1), incBox("b", 1))
	var ins []*record.Record
	for i := 0; i < 50; i++ {
		ins = append(ins, record.New().SetField("x", i*10))
	}
	outs := runEntity(t, e, ins...)
	if len(outs) != 50 {
		t.Fatalf("got %d outputs", len(outs))
	}
	for i, o := range outs {
		if xVal(t, o) != i*10+2 {
			t.Fatalf("order violated at %d: %v", i, o)
		}
	}
}

func TestChoiceRoutesBySpecificity(t *testing.T) {
	// Branch A handles {x,<special>}, branch B handles {x}. A record with
	// the tag must go to A even though it also matches B.
	sigA := MustSig([]rtype.Label{rtype.F("x"), rtype.T("special")}, []rtype.Label{rtype.F("via")})
	a := NewBox("a", sigA, func(c *BoxCall) error {
		c.Emit(record.New().SetField("via", "A"))
		return nil
	})
	sigB := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("via")})
	b := NewBox("b", sigB, func(c *BoxCall) error {
		c.Emit(record.New().SetField("via", "B"))
		return nil
	})
	e := Choice(a, b)
	outs := runEntity(t, e,
		record.Build().F("x", 1).T("special", 1).Rec(),
		record.Build().F("x", 2).Rec())
	if len(outs) != 2 {
		t.Fatalf("got %d outputs", len(outs))
	}
	seen := map[string]bool{}
	for _, o := range outs {
		v, _ := o.Field("via")
		seen[v.(string)] = true
	}
	if !seen["A"] || !seen["B"] {
		t.Fatalf("routing wrong: %v", seen)
	}
}

func TestChoiceNoMatchReported(t *testing.T) {
	e := Choice(incBox("a", 1), incBox("b", 2))
	_, err := NewNetwork(e, Options{}).Run(record.New().SetField("nope", 1))
	if err == nil || !strings.Contains(err.Error(), "matches no branch") {
		t.Fatalf("err = %v", err)
	}
}

func TestChoiceTieRoundRobin(t *testing.T) {
	// Two identical branches: ties must spread records across both.
	mk := func(tag string) *Entity {
		sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("via")})
		return NewBox(tag, sig, func(c *BoxCall) error {
			c.Emit(record.New().SetField("via", tag))
			return nil
		})
	}
	e := Choice(mk("L"), mk("R"))
	var ins []*record.Record
	for i := 0; i < 20; i++ {
		ins = append(ins, record.New().SetField("x", i))
	}
	outs, err := NewNetwork(e, Options{}).Run(ins...)
	if err != nil {
		t.Fatal(err)
	}
	count := map[string]int{}
	for _, o := range outs {
		v, _ := o.Field("via")
		count[v.(string)]++
	}
	if count["L"] != 10 || count["R"] != 10 {
		t.Fatalf("tie-break not round-robin: %v", count)
	}
}

func TestChoiceSingleBranchIsOperand(t *testing.T) {
	a := incBox("a", 1)
	if Choice(a) != a {
		t.Fatal("Choice of one branch should return the operand")
	}
}

func TestStarUnrolls(t *testing.T) {
	leakcheck.Check(t)
	// Operand increments <n>; exit when <n> carries value via guard n>=5.
	sig := MustSig([]rtype.Label{rtype.T("n")}, []rtype.Label{rtype.T("n")})
	inc := NewBox("incn", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetTag("n", c.Tag("n")+1))
		return nil
	})
	exit := rtype.NewPattern(rtype.NewVariant(rtype.T("n"))).WithGuard(func(r *record.Record) bool {
		v, _ := r.Tag("n")
		return v >= 5
	}, "<n> >= 5")
	e := Star(inc, exit)
	outs := runEntity(t, e,
		record.New().SetTag("n", 0),
		record.New().SetTag("n", 3),
		record.New().SetTag("n", 7)) // matches exit immediately at first tap
	if len(outs) != 3 {
		t.Fatalf("got %d outputs", len(outs))
	}
	vals := map[int]int{}
	for _, o := range outs {
		v, _ := o.Tag("n")
		vals[v]++
	}
	if vals[5] != 2 || vals[7] != 1 {
		t.Fatalf("star results wrong: %v", vals)
	}
}

func TestStarExitPatternOnly(t *testing.T) {
	// Exit on presence of field done; operand turns {work} into {done}.
	sig := MustSig([]rtype.Label{rtype.F("work")}, []rtype.Label{rtype.F("done")})
	fin := NewBox("finish", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetField("done", c.Field("work")))
		return nil
	})
	e := Star(fin, rtype.NewPattern(rtype.NewVariant(rtype.F("done"))))
	outs := runEntity(t, e, record.New().SetField("work", 1), record.New().SetField("done", 99))
	if len(outs) != 2 {
		t.Fatalf("got %d outputs", len(outs))
	}
}

func TestSplitPerTagInstance(t *testing.T) {
	leakcheck.Check(t)
	// The box records which instance processed the record by echoing a
	// per-instance counter: instances are sequential, so per-tag ordering
	// is preserved.
	sig := MustSig([]rtype.Label{rtype.F("x"), rtype.T("k")}, []rtype.Label{rtype.F("x")})
	echo := NewBox("echo", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetField("x", c.Field("x")).SetTag("k", c.Tag("k")))
		return nil
	})
	e := Split(echo, "k")
	var ins []*record.Record
	for i := 0; i < 30; i++ {
		ins = append(ins, record.Build().F("x", i).T("k", i%3).Rec())
	}
	outs := runEntity(t, e, ins...)
	if len(outs) != 30 {
		t.Fatalf("got %d outputs", len(outs))
	}
	// per-tag subsequences must be in order
	last := map[int]int{0: -1, 1: -1, 2: -1}
	for _, o := range outs {
		k, _ := o.Tag("k")
		x, _ := o.Field("x")
		if x.(int) < last[k] {
			t.Fatalf("per-instance order violated for k=%d", k)
		}
		last[k] = x.(int)
	}
}

func TestSplitMissingTagReported(t *testing.T) {
	sig := MustSig([]rtype.Label{rtype.F("x"), rtype.T("k")}, []rtype.Label{rtype.F("x")})
	echo := NewBox("echo", sig, func(c *BoxCall) error { return nil })
	_, err := NewNetwork(Split(echo, "k"), Options{}).Run(record.New().SetField("x", 1))
	if err == nil || !strings.Contains(err.Error(), "lacks index tag") {
		t.Fatalf("err = %v", err)
	}
}

func TestSplitSignatureRequiresTag(t *testing.T) {
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	e := Split(NewBox("b", sig, func(c *BoxCall) error { return nil }), "k")
	if e.Signature().In.Accepts(record.New().SetField("x", 1)) {
		t.Fatal("split input type must require the index tag")
	}
	if !e.Signature().In.Accepts(record.Build().F("x", 1).T("k", 0).Rec()) {
		t.Fatal("split input type must accept records with the tag")
	}
}

// nodeTrackingPlatform records which node each Exec ran on.
type nodeTrackingPlatform struct {
	nodes     int
	execNodes chan int
	transfers chan [2]int
}

func (p *nodeTrackingPlatform) Nodes() int { return p.nodes }
func (p *nodeTrackingPlatform) Exec(node int, fn func()) {
	p.execNodes <- node
	fn()
}
func (p *nodeTrackingPlatform) Transfer(from, to int, r *record.Record) {
	p.transfers <- [2]int{from, to}
}

func TestAtPlacesExecution(t *testing.T) {
	p := &nodeTrackingPlatform{nodes: 4, execNodes: make(chan int, 16), transfers: make(chan [2]int, 16)}
	e := At(incBox("inc", 1), 2)
	outs, err := NewNetwork(e, Options{Platform: p}).Run(record.New().SetField("x", 1))
	if err != nil || len(outs) != 1 {
		t.Fatalf("outs=%v err=%v", outs, err)
	}
	close(p.execNodes)
	close(p.transfers)
	var nodes []int
	for n := range p.execNodes {
		nodes = append(nodes, n)
	}
	if len(nodes) != 1 || nodes[0] != 2 {
		t.Fatalf("exec nodes = %v, want [2]", nodes)
	}
	var moves [][2]int
	for m := range p.transfers {
		moves = append(moves, m)
	}
	// one transfer 0->2 on entry and one 2->0 on exit
	if len(moves) != 2 || moves[0] != [2]int{0, 2} || moves[1] != [2]int{2, 0} {
		t.Fatalf("transfers = %v", moves)
	}
}

func TestSplitAtPlacesByTagValue(t *testing.T) {
	p := &nodeTrackingPlatform{nodes: 4, execNodes: make(chan int, 64), transfers: make(chan [2]int, 64)}
	sig := MustSig([]rtype.Label{rtype.F("x"), rtype.T("node")}, []rtype.Label{rtype.F("x")})
	work := NewBox("w", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetField("x", c.Field("x")))
		return nil
	})
	e := SplitAt(work, "node")
	var ins []*record.Record
	for i := 0; i < 8; i++ {
		ins = append(ins, record.Build().F("x", i).T("node", i%4).Rec())
	}
	outs, err := NewNetwork(e, Options{Platform: p}).Run(ins...)
	if err != nil || len(outs) != 8 {
		t.Fatalf("outs=%d err=%v", len(outs), err)
	}
	close(p.execNodes)
	seen := map[int]int{}
	for n := range p.execNodes {
		seen[n]++
	}
	for n := 0; n < 4; n++ {
		if seen[n] != 2 {
			t.Fatalf("node %d executed %d boxes, want 2 (%v)", n, seen[n], seen)
		}
	}
}

func TestSplitAtNegativeTagWraps(t *testing.T) {
	p := &nodeTrackingPlatform{nodes: 4, execNodes: make(chan int, 16), transfers: make(chan [2]int, 64)}
	sig := MustSig([]rtype.Label{rtype.T("node")}, []rtype.Label{rtype.T("ok")})
	work := NewBox("w", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetTag("ok", 1))
		return nil
	})
	outs, err := NewNetwork(SplitAt(work, "node"), Options{Platform: p}).
		Run(record.New().SetTag("node", -1))
	if err != nil || len(outs) != 1 {
		t.Fatalf("outs=%v err=%v", outs, err)
	}
	close(p.execNodes)
	if n := <-p.execNodes; n != 3 {
		t.Fatalf("node for tag -1 = %d, want 3", n)
	}
}

func TestFilterAddTag(t *testing.T) {
	// [ {} -> {<cnt=1>} ] from Fig. 3.
	f := NewFilter("",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant()),
			Outputs: []FilterOutput{{SetTags: []TagAssign{{
				Name: "cnt", Expr: func(*record.Record) int { return 1 }, Src: "cnt=1",
			}}}},
		})
	outs := runEntity(t, f, record.Build().F("pic", "P").T("tasks", 9).Rec())
	o := outs[0]
	if v, _ := o.Tag("cnt"); v != 1 {
		t.Fatalf("cnt = %v", o)
	}
	if !o.HasField("pic") || !o.HasTag("tasks") {
		t.Fatalf("inheritance failed: %s", o)
	}
}

func TestFilterIncrementTag(t *testing.T) {
	// [ {<cnt>} -> {<cnt+=1>} ] from Fig. 3.
	f := NewFilter("",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant(rtype.T("cnt"))),
			Outputs: []FilterOutput{{SetTags: []TagAssign{{
				Name: "cnt",
				Expr: func(r *record.Record) int { v, _ := r.Tag("cnt"); return v + 1 },
				Src:  "cnt+=1",
			}}}},
		})
	outs := runEntity(t, f, record.Build().F("pic", "P").T("cnt", 3).Rec())
	if v, _ := outs[0].Tag("cnt"); v != 4 {
		t.Fatalf("cnt = %d, want 4", v)
	}
}

func TestFilterSplitsRecord(t *testing.T) {
	// [ {chunk, <node>} -> {chunk}; {<node>} ] from Fig. 4.
	f := NewFilter("",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant(rtype.F("chunk"), rtype.T("node"))),
			Outputs: []FilterOutput{
				{CopyFields: []string{"chunk"}},
				{CopyTags: []string{"node"}},
			},
		})
	outs := runEntity(t, f, record.Build().F("chunk", "C").T("node", 5).T("tasks", 8).Rec())
	if len(outs) != 2 {
		t.Fatalf("got %d outputs, want 2", len(outs))
	}
	var chunkRec, nodeRec *record.Record
	for _, o := range outs {
		if o.HasField("chunk") {
			chunkRec = o
		}
		if o.HasTag("node") {
			nodeRec = o
		}
	}
	if chunkRec == nil || nodeRec == nil {
		t.Fatalf("outputs = %v", outs)
	}
	if chunkRec.HasTag("node") {
		t.Fatal("chunk record must not carry <node>")
	}
	if nodeRec.HasField("chunk") {
		t.Fatal("node record must not carry chunk")
	}
	// flow inheritance attaches <tasks> to both
	if !chunkRec.HasTag("tasks") || !nodeRec.HasTag("tasks") {
		t.Fatal("flow inheritance missing on filter outputs")
	}
}

func TestFilterRename(t *testing.T) {
	f := NewFilter("",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant(rtype.F("old"))),
			Outputs: []FilterOutput{{RenameFields: []Rename{{From: "old", To: "new"}}}},
		})
	outs := runEntity(t, f, record.New().SetField("old", 7))
	if v, ok := outs[0].Field("new"); !ok || v != 7 {
		t.Fatalf("rename failed: %s", outs[0])
	}
	if outs[0].HasField("old") {
		t.Fatal("old label survived rename")
	}
}

func TestFilterNoMatchReported(t *testing.T) {
	f := NewFilter("",
		FilterRule{Pattern: rtype.NewPattern(rtype.NewVariant(rtype.F("a")))})
	_, err := NewNetwork(f, Options{}).Run(record.New().SetField("b", 1))
	if err == nil || !strings.Contains(err.Error(), "matches no filter rule") {
		t.Fatalf("err = %v", err)
	}
}

func TestIdentityPassesEverything(t *testing.T) {
	outs := runEntity(t, Identity(),
		record.New().SetField("a", 1),
		record.New().SetTag("t", 2))
	if len(outs) != 2 {
		t.Fatalf("got %d outputs", len(outs))
	}
}

func TestSyncJoins(t *testing.T) {
	s := NewSync(
		rtype.NewPattern(rtype.NewVariant(rtype.F("pic"))),
		rtype.NewPattern(rtype.NewVariant(rtype.F("chunk"))),
	)
	outs := runEntity(t, s,
		record.Build().F("pic", "P").T("cnt", 1).Rec(),
		record.Build().F("chunk", "C").Rec())
	if len(outs) != 1 {
		t.Fatalf("got %d outputs, want 1 merged", len(outs))
	}
	o := outs[0]
	if !o.HasField("pic") || !o.HasField("chunk") || !o.HasTag("cnt") {
		t.Fatalf("merged record wrong: %s", o)
	}
}

func TestSyncEarlierPatternPriority(t *testing.T) {
	s := NewSync(
		rtype.NewPattern(rtype.NewVariant(rtype.F("a"))),
		rtype.NewPattern(rtype.NewVariant(rtype.F("b"))),
	)
	outs := runEntity(t, s,
		record.Build().F("b", "B").F("shared", "fromB").Rec(),
		record.Build().F("a", "A").F("shared", "fromA").Rec())
	if len(outs) != 1 {
		t.Fatalf("got %d outputs", len(outs))
	}
	// pattern 1 ({a}) has priority on overlap even though {b} arrived first
	if v, _ := outs[0].Field("shared"); v != "fromA" {
		t.Fatalf("priority wrong: %v", v)
	}
}

func TestSyncPassThroughAfterFiring(t *testing.T) {
	s := NewSync(
		rtype.NewPattern(rtype.NewVariant(rtype.F("a"))),
		rtype.NewPattern(rtype.NewVariant(rtype.F("b"))),
	)
	outs := runEntity(t, s,
		record.New().SetField("a", 1),
		record.New().SetField("b", 2),
		record.New().SetField("b", 3), // after firing: passes through
		record.New().SetField("a", 4)) // after firing: passes through
	if len(outs) != 3 {
		t.Fatalf("got %d outputs, want merged + 2 pass-through", len(outs))
	}
}

func TestSyncSecondMatchPassesThroughBeforeFiring(t *testing.T) {
	s := NewSync(
		rtype.NewPattern(rtype.NewVariant(rtype.F("a"))),
		rtype.NewPattern(rtype.NewVariant(rtype.F("b"))),
	)
	// two {a} records: the second must pass through (pattern already filled)
	outs := runEntity(t, s,
		record.New().SetField("a", 1),
		record.New().SetField("a", 2),
		record.New().SetField("b", 3))
	if len(outs) != 2 {
		t.Fatalf("got %d outputs, want pass-through + merged", len(outs))
	}
}

func TestSyncDropsPartialOnCloseByDefault(t *testing.T) {
	s := NewSync(
		rtype.NewPattern(rtype.NewVariant(rtype.F("a"))),
		rtype.NewPattern(rtype.NewVariant(rtype.F("b"))),
	)
	outs := runEntity(t, s, record.New().SetField("a", 1))
	if len(outs) != 0 {
		t.Fatalf("partial contents must be discarded at close: %v", outs)
	}
}

func TestSyncFlushOnCloseOption(t *testing.T) {
	s := NewSync(
		rtype.NewPattern(rtype.NewVariant(rtype.F("a"))),
		rtype.NewPattern(rtype.NewVariant(rtype.F("b"))),
	)
	outs, err := NewNetwork(s, Options{FlushSyncOnClose: true}).
		Run(record.New().SetField("a", 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || !outs[0].HasField("a") {
		t.Fatalf("flush on close failed: %v", outs)
	}
}

func TestSyncNeedsTwoPatterns(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewSync with one pattern did not panic")
		}
	}()
	NewSync(rtype.NewPattern(rtype.NewVariant(rtype.F("a"))))
}

func TestDescribeTree(t *testing.T) {
	e := Serial(incBox("a", 1), Choice(incBox("b", 1), Identity()))
	d := e.Describe()
	for _, want := range []string{"(a..(b|[]))", "a  ::", "[]  ::"} {
		if !strings.Contains(d, want) {
			t.Fatalf("Describe missing %q:\n%s", want, d)
		}
	}
}

func TestFeedbackStarConverges(t *testing.T) {
	leakcheck.Check(t)
	sig := MustSig([]rtype.Label{rtype.T("n")}, []rtype.Label{rtype.T("n")})
	inc := NewBox("incn", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetTag("n", c.Tag("n")+1))
		return nil
	})
	exit := rtype.NewPattern(rtype.NewVariant(rtype.T("n"))).WithGuard(func(r *record.Record) bool {
		v, _ := r.Tag("n")
		return v >= 10
	}, "<n> >= 10")
	e := FeedbackStar(inc, exit)
	outs := runEntity(t, e,
		record.New().SetTag("n", 0),
		record.New().SetTag("n", 4))
	if len(outs) != 2 {
		t.Fatalf("got %d outputs", len(outs))
	}
	for _, o := range outs {
		if v, _ := o.Tag("n"); v != 10 {
			t.Fatalf("feedback result = %v", o)
		}
	}
}

// TestMergerNetworkFig3 reproduces the paper's Fig. 3 merger network,
// built programmatically: ((init .. [{}->{<cnt=1>}]) | []) followed by a
// star over ([|{pic},{chunk}|] .. ((merge .. [{<cnt>}->{<cnt+=1>}]) | []))
// with exit {<tasks> == <cnt>}.
func TestMergerNetworkFig3(t *testing.T) {
	mergerNet := buildFig3Merger()
	// Feed 6 chunks, the first tagged <fst>; all carry <tasks>=6.
	var ins []*record.Record
	for i := 0; i < 6; i++ {
		r := record.Build().F("chunk", fmt.Sprintf("c%d", i)).T("tasks", 6).Rec()
		if i == 0 {
			r.SetTag("fst", 1)
		}
		ins = append(ins, r)
	}
	outs, err := NewNetwork(mergerNet, Options{}).Run(ins...)
	if err != nil {
		t.Fatalf("merger error: %v", err)
	}
	if len(outs) != 1 {
		t.Fatalf("merger produced %d records, want exactly 1 picture", len(outs))
	}
	o := outs[0]
	pic, ok := o.Field("pic")
	if !ok {
		t.Fatalf("output lacks pic: %s", o)
	}
	// Our merge box concatenates chunk ids; all six must be present.
	got := pic.(string)
	for i := 0; i < 6; i++ {
		if !strings.Contains(got, fmt.Sprintf("c%d", i)) {
			t.Fatalf("chunk c%d missing from assembled pic %q", i, got)
		}
	}
	if v, _ := o.Tag("cnt"); v != 6 {
		t.Fatalf("cnt = %d, want 6", v)
	}
}

// buildFig3Merger assembles the Fig. 3 merger with string-typed chunks.
func buildFig3Merger() *Entity {
	initSig := MustSig(
		[]rtype.Label{rtype.F("chunk"), rtype.T("fst")},
		[]rtype.Label{rtype.F("pic")})
	initBox := NewBox("init", initSig, func(c *BoxCall) error {
		c.Emit(record.New().SetField("pic", c.Field("chunk").(string)))
		return nil
	})
	cntInit := NewFilter("",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant()),
			Outputs: []FilterOutput{{SetTags: []TagAssign{{
				Name: "cnt", Expr: func(*record.Record) int { return 1 }, Src: "cnt=1",
			}}}},
		})
	mergeSig := MustSig(
		[]rtype.Label{rtype.F("chunk"), rtype.F("pic")},
		[]rtype.Label{rtype.F("pic")})
	mergeBox := NewBox("merge", mergeSig, func(c *BoxCall) error {
		c.Emit(record.New().SetField("pic",
			c.Field("pic").(string)+"+"+c.Field("chunk").(string)))
		return nil
	})
	cntInc := NewFilter("",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant(rtype.T("cnt"))),
			Outputs: []FilterOutput{{SetTags: []TagAssign{{
				Name: "cnt",
				Expr: func(r *record.Record) int { v, _ := r.Tag("cnt"); return v + 1 },
				Src:  "cnt+=1",
			}}}},
		})
	sync := NewSync(
		rtype.NewPattern(rtype.NewVariant(rtype.F("pic"))),
		rtype.NewPattern(rtype.NewVariant(rtype.F("chunk"))),
	)
	exit := rtype.NewPattern(rtype.NewVariant(rtype.T("tasks"), rtype.T("cnt"))).
		WithGuard(func(r *record.Record) bool {
			a, _ := r.Tag("tasks")
			b, _ := r.Tag("cnt")
			return a == b
		}, "<tasks> == <cnt>")
	return Serial(
		Choice(Serial(initBox, cntInit), Identity()),
		Star(Serial(sync, Choice(Serial(mergeBox, cntInc), Identity())), exit),
	)
}

func TestMergerFig3SingleTask(t *testing.T) {
	outs, err := NewNetwork(buildFig3Merger(), Options{}).Run(
		record.Build().F("chunk", "only").T("tasks", 1).T("fst", 1).Rec())
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 || !outs[0].HasField("pic") {
		t.Fatalf("outs = %v", outs)
	}
}

func TestMergerFig3ManyTasksStress(t *testing.T) {
	leakcheck.Check(t)
	const n = 64
	var ins []*record.Record
	for i := 0; i < n; i++ {
		r := record.Build().F("chunk", fmt.Sprintf("c%d", i)).T("tasks", n).Rec()
		if i == 0 {
			r.SetTag("fst", 1)
		}
		ins = append(ins, r)
	}
	outs, err := NewNetwork(buildFig3Merger(), Options{BufferSize: 4}).Run(ins...)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outputs, want 1", len(outs))
	}
}

func TestErrorInsideStarDoesNotHang(t *testing.T) {
	// A box failing on some records inside a star must surface errors and
	// still terminate the run (failed records are dropped).
	sig := MustSig([]rtype.Label{rtype.T("n")}, []rtype.Label{rtype.T("n")})
	flaky := NewBox("flaky", sig, func(c *BoxCall) error {
		n := c.Tag("n")
		if n == 3 {
			return fmt.Errorf("injected failure at n=%d", n)
		}
		c.Emit(record.New().SetTag("n", n+1))
		return nil
	})
	exit := rtype.NewPattern(rtype.NewVariant(rtype.T("n"))).WithGuard(func(r *record.Record) bool {
		v, _ := r.Tag("n")
		return v >= 5
	}, "<n> >= 5")
	done := make(chan struct{})
	var outs []*record.Record
	var err error
	go func() {
		outs, err = NewNetwork(Star(flaky, exit), Options{}).Run(
			record.New().SetTag("n", 0), // dies at n=3
			record.New().SetTag("n", 4)) // completes
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("network hung after box error")
	}
	if err == nil || !strings.Contains(err.Error(), "injected failure") {
		t.Fatalf("err = %v", err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outputs, want 1 survivor", len(outs))
	}
}

func TestErrorInsideSplitDoesNotHang(t *testing.T) {
	sig := MustSig([]rtype.Label{rtype.T("k")}, []rtype.Label{rtype.T("ok")})
	flaky := NewBox("flaky", sig, func(c *BoxCall) error {
		if c.Tag("k") == 1 {
			return fmt.Errorf("instance failure")
		}
		c.Emit(record.New().SetTag("ok", c.Tag("k")))
		return nil
	})
	outs, err := NewNetwork(Split(flaky, "k"), Options{}).Run(
		record.New().SetTag("k", 0),
		record.New().SetTag("k", 1),
		record.New().SetTag("k", 2))
	if err == nil || !strings.Contains(err.Error(), "instance failure") {
		t.Fatalf("err = %v", err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d outputs, want 2", len(outs))
	}
}

func TestTinyBuffersNoDeadlock(t *testing.T) {
	leakcheck.Check(t)
	// Fully synchronous channels across a deep composition: the acyclic
	// dataflow must still drain.
	e := SerialAll(
		Choice(incBox("a", 1), Identity()),
		Star(incBox("s", 1), rtype.NewPattern(rtype.NewVariant(rtype.F("x"))).WithGuard(
			func(r *record.Record) bool {
				v, _ := r.Field("x")
				iv, _ := v.(int)
				return iv >= 3
			}, "x >= 3")),
		incBox("z", 100),
	)
	var ins []*record.Record
	for i := 0; i < 40; i++ {
		ins = append(ins, record.New().SetField("x", i%4))
	}
	done := make(chan struct{})
	var outs []*record.Record
	var err error
	go func() {
		outs, err = NewNetwork(e, Options{BufferSize: -1}).Run(ins...)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock with synchronous channels")
	}
	if err != nil || len(outs) != 40 {
		t.Fatalf("outs=%d err=%v", len(outs), err)
	}
}
