package core

// Placement-policy coverage: the Placer implementations, dispatch-time
// node resolution in SplitAt (including untagged dispatch), star-unfolding
// placement, and the AtPolicy environment override.

import (
	"sync"
	"testing"

	"snet/internal/leakcheck"
	"snet/internal/record"
	"snet/internal/rtype"
)

// fakeCluster is a multi-node test platform that executes inline and
// records which node every execution ran on. Loads returns a caller-set
// snapshot, so tests can steer LeastLoaded deterministically.
type fakeCluster struct {
	nodes int

	mu    sync.Mutex
	execs []int
	loads []int
}

func newFakeCluster(nodes int) *fakeCluster {
	return &fakeCluster{nodes: nodes, execs: make([]int, nodes)}
}

func (f *fakeCluster) Nodes() int { return f.nodes }

func (f *fakeCluster) Exec(node int, fn func()) {
	f.mu.Lock()
	f.execs[node]++
	f.mu.Unlock()
	fn()
}

func (f *fakeCluster) Transfer(from, to int, r *record.Record) {}

func (f *fakeCluster) Loads(dst []int) []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append(dst[:0], f.loads...)
}

func (f *fakeCluster) setLoads(loads ...int) {
	f.mu.Lock()
	f.loads = append(f.loads[:0], loads...)
	f.mu.Unlock()
}

func (f *fakeCluster) execSnapshot() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.execs...)
}

func TestStaticPlacerIsTagModuloNodes(t *testing.T) {
	p := Static{}
	for _, tc := range []struct{ key, nodes, want int }{
		{0, 4, 0}, {3, 4, 3}, {4, 4, 0}, {7, 4, 3}, {-1, 4, 3}, {-5, 4, 3},
	} {
		if got := p.Place(tc.key, tc.nodes, nil); got != tc.want {
			t.Errorf("Static.Place(%d, %d) = %d, want %d", tc.key, tc.nodes, got, tc.want)
		}
	}
}

func TestRoundRobinPlacerCycles(t *testing.T) {
	p := &RoundRobin{}
	for i := 0; i < 8; i++ {
		if got := p.Place(99, 4, nil); got != i%4 {
			t.Fatalf("RoundRobin.Place call %d = %d, want %d", i, got, i%4)
		}
	}
}

func TestLeastLoadedPlacerPicksMinimum(t *testing.T) {
	p := &LeastLoaded{}
	load := []int{5, 2, 7, 2}
	for i := 0; i < 8; i++ {
		got := p.Place(0, 4, load)
		if load[got] != 2 {
			t.Fatalf("LeastLoaded.Place = node %d (load %d), want a load-2 node", got, load[got])
		}
	}
	// Without load information it degrades to round-robin coverage: all
	// nodes are hit over a full cycle.
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[p.Place(0, 4, nil)] = true
	}
	if len(seen) != 4 {
		t.Fatalf("LeastLoaded without load hit %d distinct nodes, want 4", len(seen))
	}
}

func TestAtPolicyOverridesPlacer(t *testing.T) {
	plat := newFakeCluster(4)
	plat.setLoads(9, 9, 0, 9)
	env := newEnv(Options{Platform: plat, Placer: Static{}})
	var scratch []int
	if got := env.place(7, &scratch); got != 3 {
		t.Fatalf("static env.place(7) = %d, want 3", got)
	}
	ll := env.AtPolicy(&LeastLoaded{})
	if got := ll.place(7, &scratch); got != 2 {
		t.Fatalf("AtPolicy(LeastLoaded).place = %d, want least-loaded node 2", got)
	}
	// The original environment is untouched (AtPolicy copies).
	if got := env.place(7, &scratch); got != 3 {
		t.Fatalf("env.place after AtPolicy copy = %d, want 3", got)
	}
}

// tagSig builds the {x,<k>} -> {x} signature used by split operands.
func splitOperand(name string) *Entity {
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	return NewBox(name, sig, func(c *BoxCall) error {
		c.Emit(record.New().SetField("x", c.Field("x").(int)+100))
		return nil
	})
}

// TestSplitAtUntaggedDispatch routes records without the index tag through
// SplitAt under a dynamic policy: every record is processed (through a
// fresh replica on the policy-chosen node) and the executions spread over
// the platform.
func TestSplitAtUntaggedDispatch(t *testing.T) {
	leakcheck.Check(t)
	plat := newFakeCluster(4)
	e := SplitAt(splitOperand("solve"), "node")
	var ins []*record.Record
	const n = 32
	for i := 0; i < n; i++ {
		ins = append(ins, record.New().SetField("x", i))
	}
	outs, err := NewNetwork(e, Options{Platform: plat, Placer: &RoundRobin{}}).Run(ins...)
	if err != nil {
		t.Fatalf("untagged dispatch errored: %v", err)
	}
	if len(outs) != n {
		t.Fatalf("%d outputs, want %d", len(outs), n)
	}
	got := map[int]bool{}
	for _, r := range outs {
		v, _ := r.Field("x")
		got[v.(int)] = true
	}
	for i := 0; i < n; i++ {
		if !got[i+100] {
			t.Fatalf("output %d missing", i+100)
		}
	}
	for node, c := range plat.execSnapshot() {
		if c != n/4 {
			t.Fatalf("node %d ran %d execs, want %d (round-robin spread)", node, c, n/4)
		}
	}
}

// TestSplitAtUntaggedStaticPolicyStillErrors preserves the pre-policy
// contract: without a dynamic placer an untagged record is a runtime type
// error and is dropped, not silently placed. Static by pointer must behave
// exactly like Static by value (the stateful policies are naturally passed
// as pointers, so users will write &Static{} too).
func TestSplitAtUntaggedStaticPolicyStillErrors(t *testing.T) {
	leakcheck.Check(t)
	for _, placer := range []Placer{nil, Static{}, &Static{}} {
		plat := newFakeCluster(2)
		inst := NewNetwork(SplitAt(splitOperand("solve"), "node"),
			Options{Platform: plat, Placer: placer}).Start()
		inst.In <- record.New().SetField("x", 1)
		close(inst.In)
		var outs int
		for range inst.Out {
			outs++
		}
		if outs != 0 {
			t.Fatalf("placer %T: untagged record produced %d outputs, want 0", placer, outs)
		}
		if inst.ErrCount() != 1 {
			t.Fatalf("placer %T: ErrCount = %d, want 1", placer, inst.ErrCount())
		}
	}
}

// TestSplitAtPlacedByLoad pins replica placement to the load snapshot: with
// LeastLoaded and a rigged load report, the first replica must be created
// on the (only) idle node regardless of its tag value.
func TestSplitAtPlacedByLoad(t *testing.T) {
	leakcheck.Check(t)
	plat := newFakeCluster(4)
	plat.setLoads(3, 3, 3, 0)
	e := SplitAt(splitOperand("solve"), "node")
	outs, err := NewNetwork(e, Options{Platform: plat, Placer: &LeastLoaded{}}).Run(
		record.Build().F("x", 1).T("node", 0).Rec())
	if err != nil || len(outs) != 1 {
		t.Fatalf("outs=%d err=%v", len(outs), err)
	}
	execs := plat.execSnapshot()
	if execs[3] != 1 {
		t.Fatalf("execs = %v, want the replica for tag 0 placed on idle node 3", execs)
	}
}

// TestStarUnfoldingPlacedByPolicy verifies star replicas are placed at
// unfolding time: with RoundRobin, consecutive stages land on consecutive
// nodes rather than all on the star's spawn node.
func TestStarUnfoldingPlacedByPolicy(t *testing.T) {
	leakcheck.Check(t)
	plat := newFakeCluster(3)
	exit := rtype.NewPattern(rtype.NewVariant(rtype.F("x"))).WithGuard(
		func(r *record.Record) bool {
			v, _ := r.Field("x")
			return v.(int) >= 6
		}, "x >= 6")
	outs, err := NewNetwork(Star(incBox("inc", 1), exit),
		Options{Platform: plat, Placer: &RoundRobin{}}).Run(
		record.New().SetField("x", 0))
	if err != nil || len(outs) != 1 {
		t.Fatalf("outs=%d err=%v", len(outs), err)
	}
	// Six increments unroll six stages over three nodes round-robin: two
	// executions per node.
	for node, c := range plat.execSnapshot() {
		if c != 2 {
			t.Fatalf("node %d ran %d execs, want 2 (stages spread)", node, c)
		}
	}
}
