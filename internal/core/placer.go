package core

import (
	"sync/atomic"

	"snet/internal/record"
)

// Placer decides which compute node a dynamically placed dispatch unit — an
// indexed-split replica, an untagged record, a star unfolding — runs on.
// Placement is an extra-functional concern: a Placer never changes what a
// network computes, only where its box executions queue, so policies can be
// swapped per instantiation (Options.Placer) or per subtree (Env.AtPolicy)
// without touching network structure.
//
// Place is called with the dispatch key (a split tag value, an untagged
// dispatch sequence number, a star stage depth), the platform's node count,
// and — when the platform reports it (LoadPlatform) — a per-node load
// snapshot. It must be safe for concurrent use: one Placer instance serves
// every dynamic placement site of a network instance.
type Placer interface {
	// Place returns the node for dispatch key key. nodes is at least 1;
	// load is the platform's per-node load snapshot (CPU slots in use
	// plus queued executions), or nil when the platform does not report
	// load. Out-of-range results are normalized modulo nodes.
	Place(key, nodes int, load []int) int
}

// loadFree marks built-in placers that never read the load snapshot, so
// the runtime can skip querying the platform (the snapshot takes the
// cluster's scheduler lock) on their behalf. Policies without the marker —
// including third-party Placer implementations — get the snapshot whenever
// the platform can provide one.
type loadFree interface{ placesWithoutLoad() }

// Static is the pre-stamped-tag convention of Distributed S-Net: the
// dispatch key (the splitter's <node> tag) IS the placement, modulo the
// node count. It is the default policy and reproduces the behavior of
// placement resolved at split time.
type Static struct{}

// Place returns key modulo nodes.
func (Static) Place(key, nodes int, _ []int) int {
	return ((key % nodes) + nodes) % nodes
}

func (Static) placesWithoutLoad() {}

// RoundRobin ignores the dispatch key and cycles through the nodes,
// spreading dispatch units evenly regardless of how their tag values are
// distributed. One RoundRobin value carries the cursor; share it to spread
// across sites, or use separate values for per-site cycles.
type RoundRobin struct{ next atomic.Int64 }

// Place returns the next node in cyclic order.
func (p *RoundRobin) Place(_, nodes int, _ []int) int {
	return int((p.next.Add(1) - 1) % int64(nodes))
}

func (*RoundRobin) placesWithoutLoad() {}

// LeastLoaded places each dispatch unit on the node with the smallest
// current load — the runtime decision the paper's dynamic load balancing
// approximates with circulating node tokens. Ties (and platforms that
// report no load) fall back to round-robin, so a burst of dispatches
// against a stale load snapshot still spreads instead of piling onto one
// node.
type LeastLoaded struct{ rr atomic.Int64 }

// Place returns the least-loaded node, breaking ties round-robin.
func (p *LeastLoaded) Place(_, nodes int, load []int) int {
	start := int((p.rr.Add(1) - 1) % int64(nodes))
	if len(load) < nodes {
		return start
	}
	best := start
	for off := 1; off < nodes; off++ {
		n := (start + off) % nodes
		if load[n] < load[best] {
			best = n
		}
	}
	return best
}

// LoadPlatform is optionally implemented by platforms that can report
// per-node scheduling load: CPU slots in use plus executions queued for
// them. Load-aware placement policies (LeastLoaded) consult it at dispatch
// time; dist.Cluster implements it. Loads appends one entry per node into
// dst — callers pass a reused scratch slice — and must be safe for
// concurrent use.
type LoadPlatform interface {
	Loads(dst []int) []int
}

// StealPlatform is optionally implemented by platforms whose queued
// executions may migrate: ExecStealable is ExecCancel, except that while
// the execution waits for its home node's CPU slot, another node that runs
// out of local work may claim it. input is the execution's triggering
// record — the data that would travel with the work — which the platform
// sizes and charges its transfer-cost model for when a steal occurs; it is
// only read. dist.Cluster implements it (counting Stats.Steals and
// Stats.Migrated). The runtime uses it for every box execution when
// Options.WorkStealing is set.
type StealPlatform interface {
	ExecStealable(node int, cancel <-chan struct{}, input *record.Record, fn func()) bool
}
