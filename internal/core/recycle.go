package core

import "snet/internal/record"

// recordPool recycles records the runtime consumes, so steady-state
// pipelines approach zero record allocations: a box's triggering record is
// dead once the execution has flushed (boxes consume their input — S-Net
// semantics), a rule filter's input is dead once its output templates have
// fired, and a synchrocell's stored records are dead once merged into the
// released record. Those are exactly the points where the runtime is the
// single owner, so recycling is invisible to user code as long as boxes
// honor the documented contract (treat BoxCall.In as read-only, do not
// retain records after emitting them).
//
// Field values are never recycled — they are opaque and flow by reference
// into emitted records; only the label-entry storage is reset.
var recordPool = record.NewPool()

// recycle returns a dead record to the pool.
func recycle(r *record.Record) { recordPool.Put(r) }

// NewRecord returns an empty data record drawn from the runtime's record
// pool; emit it like any other record. Box bodies that build their outputs
// with NewRecord let the network recycle label storage end to end instead
// of allocating per message.
func (c *BoxCall) NewRecord() *record.Record { return recordPool.Get() }
