package core

import (
	"fmt"
	"sync/atomic"

	"snet/internal/record"
	"snet/internal/stream"
)

// ObserveDirection tells an observer callback whether a record was entering
// or leaving the observed entity.
type ObserveDirection uint8

// Observation directions.
const (
	// ObserveIn reports a record entering the observed entity.
	ObserveIn ObserveDirection = iota
	// ObserveOut reports a record leaving the observed entity.
	ObserveOut
)

// String names the direction.
func (d ObserveDirection) String() string {
	if d == ObserveIn {
		return "in"
	}
	return "out"
}

// Observe wraps an entity with a transparent observer, the S-Net tooling
// facility for inspecting record traffic without touching the network's
// semantics: fn is invoked for every record entering and leaving the
// operand, in stream order per direction. The callback must treat the
// record as read-only and must not retain it past its own return: once a
// record flows on, the consuming entity may recycle it, after which a
// stashed pointer would observe unrelated contents. Observation does not
// change routing, typing or ordering.
func Observe(a *Entity, fn func(dir ObserveDirection, r *record.Record)) *Entity {
	return &Entity{
		nameFn: func() string { return fmt.Sprintf("observe(%s)", a.Name()) },
		sig:    a.sig,
		kids:   []*Entity{a},
		// The tap is a fusion barrier (fn must see every record cross the
		// boundary), but the operand itself still gets optimized.
		detDepth: a.detDepth,
		looseOut: a.looseOut,
		rebuild:  func(kids []*Entity) *Entity { return Observe(kids[0], fn) },
		spawn: func(env *Env, in, out *stream.Link) {
			innerIn := env.newLink()
			innerOut := env.newLink()
			env.start(func() {
				defer env.closeLink(innerIn)
				for {
					r, ok := env.recv(in)
					if !ok {
						return
					}
					fn(ObserveIn, r)
					if !env.send(innerIn, r) {
						return
					}
				}
			})
			a.spawn(env, innerIn, innerOut)
			env.start(func() {
				defer env.closeLink(out)
				for {
					r, ok := env.recv(innerOut)
					if !ok {
						return
					}
					fn(ObserveOut, r)
					if !env.send(out, r) {
						return
					}
				}
			})
		},
	}
}

// Counter is a ready-made observer callback that counts records entering
// and leaving an entity; its methods are safe for concurrent use.
type Counter struct {
	in, out atomic.Int64
}

// Observe is the callback to pass to Observe.
func (c *Counter) Observe(dir ObserveDirection, r *record.Record) {
	if dir == ObserveIn {
		c.in.Add(1)
	} else {
		c.out.Add(1)
	}
}

// In returns the number of records observed entering.
func (c *Counter) In() int64 { return c.in.Load() }

// Out returns the number of records observed leaving.
func (c *Counter) Out() int64 { return c.out.Load() }
