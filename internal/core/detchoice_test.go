package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"snet/internal/record"
	"snet/internal/rtype"
)

// slowEcho returns a box that copies x after an artificial delay, so a
// nondeterministic merge would reorder.
func slowEcho(name string, matchTag string, delay time.Duration) *Entity {
	in := []rtype.Label{rtype.F("x")}
	if matchTag != "" {
		in = append(in, rtype.T(matchTag))
	}
	sig := MustSig(in, []rtype.Label{rtype.F("x")})
	return NewBox(name, sig, func(c *BoxCall) error {
		if delay > 0 {
			time.Sleep(delay)
		}
		c.Emit(record.New().SetField("x", c.Field("x")))
		return nil
	})
}

func TestDetChoicePreservesInputOrder(t *testing.T) {
	e := DetChoice(
		slowEcho("slow", "slow", 2*time.Millisecond),
		slowEcho("fast", "", 0),
	)
	var ins []*record.Record
	for i := 0; i < 20; i++ {
		r := record.New().SetField("x", i)
		if i%4 == 0 {
			r.SetTag("slow", 1)
		}
		ins = append(ins, r)
	}
	outs := runEntity(t, e, ins...)
	if len(outs) != 20 {
		t.Fatalf("got %d outputs", len(outs))
	}
	for i, o := range outs {
		if v, _ := o.Field("x"); v != i {
			t.Fatalf("output %d = %v, order violated", i, v)
		}
		if o.HasTag("__snet_seq") {
			t.Fatal("internal sequence tag leaked")
		}
	}
}

func TestDetChoiceMultiOutputGrouping(t *testing.T) {
	// The fan box emits <n> copies; all copies of record i must precede
	// every output of record i+1 even when a later record finishes first.
	sigFan := MustSig([]rtype.Label{rtype.T("n"), rtype.T("fan")}, []rtype.Label{rtype.T("i")})
	fan := NewBox("fan", sigFan, func(c *BoxCall) error {
		time.Sleep(2 * time.Millisecond)
		for i := 0; i < c.Tag("n"); i++ {
			c.Emit(record.New().SetTag("i", i))
		}
		return nil
	})
	sigOne := MustSig([]rtype.Label{rtype.T("n")}, []rtype.Label{rtype.T("i")})
	one := NewBox("one", sigOne, func(c *BoxCall) error {
		c.Emit(record.New().SetTag("i", 99))
		return nil
	})
	e := DetChoice(fan, one)
	outs := runEntity(t, e,
		record.Build().T("n", 3).T("fan", 1).T("id", 0).Rec(),
		record.Build().T("n", 1).T("id", 1).Rec(),
		record.Build().T("n", 2).T("fan", 1).T("id", 2).Rec())
	if len(outs) != 6 {
		t.Fatalf("got %d outputs", len(outs))
	}
	wantIDs := []int{0, 0, 0, 1, 2, 2}
	for i, o := range outs {
		id, _ := o.Tag("id")
		if id != wantIDs[i] {
			var got []int
			for _, oo := range outs {
				v, _ := oo.Tag("id")
				got = append(got, v)
			}
			t.Fatalf("grouping violated: ids = %v", got)
		}
	}
}

func TestDetChoiceZeroOutputRecords(t *testing.T) {
	// A record that produces no outputs must not stall younger records.
	sigDrop := MustSig([]rtype.Label{rtype.F("x"), rtype.T("drop")}, []rtype.Label{rtype.F("x")})
	drop := NewBox("drop", sigDrop, func(c *BoxCall) error { return nil })
	e := DetChoice(drop, slowEcho("echo", "", 0))
	var ins []*record.Record
	for i := 0; i < 10; i++ {
		r := record.New().SetField("x", i)
		if i%2 == 0 {
			r.SetTag("drop", 1)
		}
		ins = append(ins, r)
	}
	done := make(chan []*record.Record, 1)
	go func() {
		outs, err := NewNetwork(e, Options{}).Run(ins...)
		if err != nil {
			t.Error(err)
		}
		done <- outs
	}()
	select {
	case outs := <-done:
		if len(outs) != 5 {
			t.Fatalf("got %d outputs, want 5", len(outs))
		}
		for i, o := range outs {
			if v, _ := o.Field("x"); v != 2*i+1 {
				t.Fatalf("output %d = %v", i, v)
			}
		}
	case <-time.After(5 * time.Second):
		t.Fatal("deterministic merge stalled on zero-output record")
	}
}

func TestDetChoiceSingleBranchIsOperand(t *testing.T) {
	a := slowEcho("a", "", 0)
	if DetChoice(a) != a {
		t.Fatal("DetChoice of one branch should return the operand")
	}
}

func TestDetChoiceNoMatchReported(t *testing.T) {
	e := DetChoice(slowEcho("a", "need", 0), slowEcho("b", "need", 0))
	_, err := NewNetwork(e, Options{}).Run(record.New().SetField("y", 1))
	if err == nil {
		t.Fatal("expected no-match error")
	}
}

func TestDetChoiceNestedEntities(t *testing.T) {
	// Branches can be whole subnetworks: seq tags must survive filters
	// and serial composition via flow inheritance.
	inc := incBox("inc", 1)
	addTag := NewFilter("",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant()),
			Outputs: []FilterOutput{{SetTags: []TagAssign{{
				Name: "seen", Expr: func(*record.Record) int { return 1 }, Src: "seen=1",
			}}}},
		})
	branch := Serial(inc, addTag)
	e := DetChoice(Serial(branch, incBox("inc2", 10)), slowEcho("never", "never", 0))
	var ins []*record.Record
	for i := 0; i < 8; i++ {
		ins = append(ins, record.New().SetField("x", i))
	}
	outs := runEntity(t, e, ins...)
	for i, o := range outs {
		if v, _ := o.Field("x"); v != i+11 {
			t.Fatalf("output %d = %v", i, v)
		}
		if o.HasTag("__snet_seq") {
			t.Fatal("sequence tag leaked through nested entities")
		}
	}
}

func TestDetChoicePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DetChoice() did not panic")
		}
	}()
	DetChoice()
}

func TestPropDetChoiceIsPermutationFreeIdentity(t *testing.T) {
	// For echo-only branches, DetChoice must be the identity on the
	// input sequence, regardless of which branch each record takes and
	// how the scheduler interleaves.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := DetChoice(
			slowEcho("a", "ta", time.Duration(rng.Intn(2))*time.Millisecond),
			slowEcho("b", "tb", 0),
			slowEcho("c", "", 0),
		)
		n := 1 + rng.Intn(24)
		var ins []*record.Record
		for i := 0; i < n; i++ {
			r := record.New().SetField("x", i)
			switch rng.Intn(3) {
			case 0:
				r.SetTag("ta", 1)
			case 1:
				r.SetTag("tb", 1)
			}
			ins = append(ins, r)
		}
		outs, err := NewNetwork(e, Options{BufferSize: 1 + rng.Intn(4)}).Run(ins...)
		if err != nil || len(outs) != n {
			return false
		}
		for i, o := range outs {
			if v, _ := o.Field("x"); v != i {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDetChoiceStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	e := DetChoice(
		slowEcho("a", "ta", 0),
		slowEcho("b", "", 0),
	)
	const n = 2000
	var ins []*record.Record
	for i := 0; i < n; i++ {
		r := record.New().SetField("x", i)
		if i%7 == 0 {
			r.SetTag("ta", 1)
		}
		ins = append(ins, r)
	}
	outs, err := NewNetwork(e, Options{BufferSize: 8}).Run(ins...)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != n {
		t.Fatalf("got %d outputs", len(outs))
	}
	for i, o := range outs {
		if v, _ := o.Field("x"); v != i {
			t.Fatalf("order violated at %d", i)
		}
	}
	_ = fmt.Sprint() // keep fmt import if assertions change
}

func TestDetSplitPreservesInputOrder(t *testing.T) {
	// Per-instance delays differ, so a nondeterministic split would let
	// fast instances overtake; DetSplit must restore input order.
	sig := MustSig([]rtype.Label{rtype.F("x"), rtype.T("k")}, []rtype.Label{rtype.F("x")})
	work := NewBox("work", sig, func(c *BoxCall) error {
		if c.Tag("k") == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		c.Emit(record.New().SetField("x", c.Field("x")))
		return nil
	})
	e := DetSplit(work, "k")
	var ins []*record.Record
	for i := 0; i < 24; i++ {
		ins = append(ins, record.Build().F("x", i).T("k", i%3).Rec())
	}
	outs := runEntity(t, e, ins...)
	if len(outs) != 24 {
		t.Fatalf("got %d outputs", len(outs))
	}
	for i, o := range outs {
		if v, _ := o.Field("x"); v != i {
			t.Fatalf("order violated at %d: %v", i, v)
		}
		if o.HasTag("__snet_seq") {
			t.Fatal("sequence tag leaked")
		}
	}
}

func TestDetSplitNegativeTagValues(t *testing.T) {
	sig := MustSig([]rtype.Label{rtype.F("x"), rtype.T("k")}, []rtype.Label{rtype.F("x")})
	echo := NewBox("echo", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetField("x", c.Field("x")))
		return nil
	})
	e := DetSplit(echo, "k")
	var ins []*record.Record
	for i := 0; i < 9; i++ {
		ins = append(ins, record.Build().F("x", i).T("k", -(i%3)).Rec())
	}
	outs := runEntity(t, e, ins...)
	if len(outs) != 9 {
		t.Fatalf("got %d outputs", len(outs))
	}
	for i, o := range outs {
		if v, _ := o.Field("x"); v != i {
			t.Fatalf("order violated at %d: %v", i, v)
		}
	}
}

func TestDetSplitMissingTagReported(t *testing.T) {
	sig := MustSig([]rtype.Label{rtype.F("x"), rtype.T("k")}, []rtype.Label{rtype.F("x")})
	echo := NewBox("echo", sig, func(c *BoxCall) error { return nil })
	_, err := NewNetwork(DetSplit(echo, "k"), Options{}).Run(record.New().SetField("x", 1))
	if err == nil || !strings.Contains(err.Error(), "lacks index tag") {
		t.Fatalf("err = %v", err)
	}
}

func TestDetSplitSignature(t *testing.T) {
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("y")})
	e := DetSplit(NewBox("b", sig, func(c *BoxCall) error { return nil }), "k")
	if !e.Signature().In.Accepts(record.Build().F("x", 1).T("k", 0).Rec()) {
		t.Fatal("DetSplit input type must accept tagged records")
	}
	if e.Signature().In.Accepts(record.New().SetField("x", 1)) {
		t.Fatal("DetSplit input type must require the index tag")
	}
}
