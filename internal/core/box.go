package core

import (
	"errors"
	"fmt"
	"strings"

	"snet/internal/journal"
	"snet/internal/record"
	"snet/internal/rtype"
	"snet/internal/stream"
)

// BoxCall is the context handed to a box function for one triggering record.
// It gives typed access to the input record and an emitter for output
// records. Flow inheritance is applied by the runtime: labels of the input
// record that were not part of the matched input variant are transferred to
// every emitted record (unless the box emitted an identically labelled
// item, which overrides).
//
// A BoxCall is reused across the invocations of one box instance (boxes are
// sequential per instance); a box function must not retain the BoxCall or
// the input record beyond its own return — the same statelessness contract
// that makes boxes relocatable.
type BoxCall struct {
	// In is the triggering input record. Boxes must treat it as
	// read-only.
	In *record.Record
	// Matched is the input variant the record was matched against.
	Matched *rtype.Variant

	env      *Env
	box      *boxImpl
	pending  []*record.Record
	consumeF []record.Sym
	consumeT []record.Sym
	emitted  int
	// err is the completed execution's failure (body error, or recovered
	// panic as *panicError), left for the caller to handle: attempt
	// decides between report-and-continue, retry, and dead-letter.
	err error
	// noInherit marks a detached call (CallBox): the emissions leave as the
	// box's raw output and the process that dispatched the call applies
	// flow inheritance when they return (see RemotePlatform).
	noInherit bool
	// pendArr seeds pending: most boxes emit a handful of records per
	// invocation, so the emission buffer lives inline in the call context
	// and only spills to the heap when a call emits more than fits.
	pendArr [4]*record.Record
}

// Field returns the input field value; it panics when absent (the runtime
// has already verified the matched variant's labels are present).
//
//lint:reason string-keyed convenience surface for cold boxes; hot boxes use the Sym forms below
func (c *BoxCall) Field(name string) any { return c.In.MustField(name) }

// FieldSym returns the input field value by interned symbol; it panics when
// absent. Boxes on hot paths intern their labels once and use this form.
func (c *BoxCall) FieldSym(id record.Sym) any {
	v, ok := c.In.FieldSym(id)
	if !ok {
		panic(fmt.Sprintf("record: field %q absent from %s", record.SymName(id), c.In))
	}
	return v
}

// Tag returns the input tag value; it panics when absent.
//
//lint:reason string-keyed convenience surface for cold boxes; hot boxes use the Sym forms below
func (c *BoxCall) Tag(name string) int { return c.In.MustTag(name) }

// TagSym returns the input tag value by interned symbol; it panics when
// absent.
func (c *BoxCall) TagSym(id record.Sym) int {
	v, ok := c.In.TagSym(id)
	if !ok {
		panic(fmt.Sprintf("record: tag <%s> absent from %s", record.SymName(id), c.In))
	}
	return v
}

// HasTag reports whether the input record carries the tag (useful for
// optional, flow-inherited tags).
//
//lint:reason string-keyed convenience surface for cold boxes; hot boxes use the Sym forms below
func (c *BoxCall) HasTag(name string) bool { return c.In.HasTag(name) }

// HasTagSym reports whether the input record carries the tag symbol.
func (c *BoxCall) HasTagSym(id record.Sym) bool { return c.In.HasTagSym(id) }

// HasField reports whether the input record carries the field.
//
//lint:reason string-keyed convenience surface for cold boxes; hot boxes use the Sym forms below
func (c *BoxCall) HasField(name string) bool { return c.In.HasField(name) }

// HasFieldSym reports whether the input record carries the field symbol.
func (c *BoxCall) HasFieldSym(id record.Sym) bool { return c.In.HasFieldSym(id) }

// Node returns the abstract compute node this box execution runs on.
func (c *BoxCall) Node() int { return c.env.node }

// Emit queues an output record; all queued records are sent downstream once
// the box execution has finished. The runtime applies flow inheritance from
// the input record and, when type checking is enabled, verifies the record
// against the box's declared output type before inheritance.
//
// Queuing instead of sending inline keeps the box's platform CPU slot free
// of stream backpressure: a box never blocks on a full output channel while
// occupying a node CPU, which on a bounded platform (dist.Cluster) could
// deadlock co-located producers and consumers competing for the same slots.
// The queue costs memory proportional to one call's emissions, and Emit
// must be called from the box function's own goroutine — both consequences
// of the box contract that an execution is one atomic transformation.
func (c *BoxCall) Emit(r *record.Record) {
	if c.env.opts.CheckTypes && !c.box.sig.Out.Accepts(r) {
		c.env.reportRT(c.box.name, ErrCatTypeCheck, r.String(), fmt.Errorf(
			"emitted record %s does not match output type %s", r, c.box.sig.Out))
	}
	if !c.noInherit {
		r.InheritFromExcept(c.In, c.consumeF, c.consumeT)
	}
	c.emitted++
	c.pending = append(c.pending, r)
}

// Emitted returns how many records this call has emitted so far.
func (c *BoxCall) Emitted() int { return c.emitted }

// BoxFunc is the body of a box: a pure function of the triggering record
// that emits zero or more output records through the BoxCall. Box functions
// must not retain state between invocations — the S-Net contract that makes
// boxes relocatable and replicable — and must call Emit only from the
// goroutine the body runs on (internal worker goroutines must hand results
// back before the body emits them).
type BoxFunc func(c *BoxCall) error

type boxImpl struct {
	name string
	sig  rtype.Signature
	fn   BoxFunc
}

// NewBox creates a box entity from a name, a type signature and a body.
// Operationally the box is triggered by each arriving record: the record is
// matched against the box's input type, the body runs as a single box
// execution on the current platform node, and the box is only then ready
// for the next record (boxes are sequential per instance, as in S-Net;
// concurrency comes from replication and pipelining).
//
// The consumed-label sets used for flow inheritance are fixed here, at
// construction time: each input variant's interned-symbol slices (built
// once when the signature was constructed) are handed to the per-record
// invocation as-is, so matching and inheritance allocate nothing per
// record.
func NewBox(name string, sig rtype.Signature, fn BoxFunc) *Entity {
	b := &boxImpl{name: name, sig: sig, fn: fn}
	return &Entity{
		name: name,
		sig:  sig,
		kind: kindBox,
		box:  b,
		spawn: func(env *Env, in, out *stream.Link) {
			env.start(func() {
				defer env.closeLink(out)
				call, run := newBoxRunner(env, b)
				for {
					r, ok := env.recv(in)
					if !ok {
						return
					}
					if !r.IsData() {
						if !env.send(out, r) {
							return
						}
						continue
					}
					if !b.invoke(call, run, r, out) {
						return
					}
				}
			})
		},
	}
}

// newBoxRunner builds the reusable per-instance call context and execution
// closure: boxes are sequential per instance, so both (including the
// pending-output buffer) are recycled across invocations rather than
// allocated per record. Shared by the standalone box entity and by fused
// chain stages (each fused box stage is one instance).
func newBoxRunner(env *Env, b *boxImpl) (*BoxCall, func()) {
	call := &BoxCall{env: env, box: b}
	call.pending = call.pendArr[:0]
	run := func() {
		defer func() {
			if p := recover(); p != nil {
				call.err = &panicError{val: p}
			}
		}()
		call.err = b.fn(call)
	}
	return call, run
}

// panicError is a recovered box panic, kept distinguishable from an
// ordinary body error so it reports under ErrCatPanic (and so dead letters
// say what actually happened).
type panicError struct{ val any }

func (p *panicError) Error() string { return fmt.Sprintf("box panicked: %v", p.val) }

// execute runs one box execution for record r, leaving the emissions in
// call.pending — matching, platform scheduling (local, cancellable, or
// remote via RemotePlatform), type checking and flow inheritance, but not
// delivery. ok is false when the instance was stopped before the body ran
// (the caller must unwind); matched is false when r matched no input
// variant (reported, r recycled, nothing pending). On matched, call.In
// stays set until the caller has flushed call.pending and decided whether
// r was re-emitted. invoke flushes downstream; fused chain stages hand the
// emissions to the next stage in memory.
func (b *boxImpl) execute(call *BoxCall, run func(), r *record.Record) (matched, ok bool) {
	env := call.env
	v, score := b.sig.In.BestMatch(r)
	if score < 0 {
		env.reportRT(b.name, ErrCatNoMatch, r.String(), fmt.Errorf(
			"record %s does not match input type %s", r, b.sig.In))
		// The record matched nothing and is dead; the drop is sanctioned,
		// so its delivery completes here. Reclaim it.
		env.trackDrop(r)
		recycle(r)
		return false, true
	}
	call.In = r
	call.Matched = v
	call.consumeF = v.FieldSyms()
	call.consumeT = v.TagSyms()
	call.emitted = 0
	call.err = nil
	if env.remPlat != nil {
		// The platform can ship whole box calls across processes: offer it
		// the box name and triggering record. When the call does execute
		// remotely, the returned records are the box's raw emissions — type
		// checking and flow inheritance are applied here, on the dispatching
		// side, so remote execution is invisible downstream.
		outs, remote, ok, err := env.remPlat.ExecBox(env.node, env.done, b.name, r,
			env.opts.WorkStealing, run)
		if !ok {
			call.In = nil
			call.Matched = nil
			return false, false
		}
		if remote {
			call.err = err
			for _, o := range outs {
				if env.opts.CheckTypes && !b.sig.Out.Accepts(o) {
					env.reportRT(b.name, ErrCatTypeCheck, o.String(), fmt.Errorf(
						"emitted record %s does not match output type %s", o, b.sig.Out))
				}
				o.InheritFromExcept(r, call.consumeF, call.consumeT)
			}
			call.emitted = len(outs)
			call.pending = append(call.pending, outs...)
		}
	} else if !env.exec(r, run) {
		// Stopped while queued for a platform CPU slot; the body never
		// ran. Drop the record (stopped instances do not recycle).
		call.In = nil
		call.Matched = nil
		return false, false
	}
	return true, true
}

// boxErrCategory classifies an execution failure: panics — local (typed) or
// remote (flattened to text by the wire) — report under ErrCatPanic,
// everything else is an ordinary box error.
func boxErrCategory(err error) ErrorCategory {
	var pe *panicError
	if errors.As(err, &pe) || strings.HasPrefix(err.Error(), "box panicked:") {
		return ErrCatPanic
	}
	return ErrCatBox
}

// attempt runs box executions for record r under the instance's retry
// policy (Options.BoxRetry), leaving the successful execution's emissions
// in call.pending. Outcomes mirror execute's, plus dead: with retry enabled
// (Attempts >= 1), a failed attempt's partial emissions are discarded and
// the box re-runs against the unchanged input after a backoff; once the
// budget is exhausted the record moves to the dead-letter queue and dead is
// true — call.pending is empty and r now belongs to the queue, the caller
// must neither send nor recycle. Without retry, a failure is reported and
// the partial emissions flow (the historical behaviour).
func (b *boxImpl) attempt(call *BoxCall, run func(), r *record.Record) (matched, ok, dead bool) {
	env := call.env
	policy := env.opts.BoxRetry
	for n := 1; ; n++ {
		matched, ok = b.execute(call, run, r)
		if !ok || !matched {
			return matched, ok, false
		}
		err := call.err
		call.err = nil
		if err == nil {
			env.trackFork(r, len(call.pending))
			return true, true, false
		}
		cat := boxErrCategory(err)
		if policy.Attempts <= 0 {
			env.reportRT(b.name, cat, r.String(), err)
			env.trackFork(r, len(call.pending))
			return true, true, false
		}
		// Failed under retry: the attempt's partial emissions are
		// discarded — a re-run must start from the input record alone, or
		// the attempts' outputs would compound.
		b.discardAttempt(call, r)
		if n >= policy.Attempts {
			env.reportRT(b.name, cat, r.String(), fmt.Errorf(
				"dead-lettered after %d attempts: %w", n, err))
			env.trackDrop(r)
			env.deadLetter(b.name, r, n, err)
			call.In = nil
			call.Matched = nil
			return true, true, true
		}
		if !env.retryWait(journal.Backoff(policy.Backoff, policy.MaxBackoff, n)) {
			call.In = nil
			call.Matched = nil
			return false, false, false
		}
	}
}

// discardAttempt reclaims a failed attempt's partial emissions. The input
// record survives even when the body re-emitted it — it is the retry's (or
// the dead letter's) subject.
func (b *boxImpl) discardAttempt(call *BoxCall, r *record.Record) {
	for _, o := range call.pending {
		if o != r {
			recycle(o)
		}
	}
	clear(call.pending)
	call.pending = call.pending[:0]
	call.emitted = 0
}

// finishCall inspects a completed execution's emissions for the input
// record itself (identity-style bodies may re-emit it) and resets the call
// context for the next invocation without retaining record references. The
// emissions must already have been moved out of call.pending (sent, or
// copied into the next fused stage's input).
func finishCall(call *BoxCall, r *record.Record) (reemitted bool) {
	for _, o := range call.pending {
		if o == r {
			reemitted = true
		}
	}
	clear(call.pending)
	call.pending = call.pending[:0]
	call.In = nil
	call.Matched = nil
	return reemitted
}

// invoke runs one box execution for record r, reusing the instance's call
// context and execution closure, and flushes the emissions downstream. It
// reports false when the instance was stopped (while waiting for a CPU
// slot or flushing output), in which case the box goroutine must unwind.
func (b *boxImpl) invoke(call *BoxCall, run func(), r *record.Record, out *stream.Link) bool {
	matched, ok, dead := b.attempt(call, run, r)
	if !ok {
		return false
	}
	if !matched || dead {
		return true
	}
	env := call.env
	// Flush outside the platform slot: downstream backpressure must not
	// hold a node CPU. The whole emission set goes out in one link
	// operation (SendMany batches it under a single lock), and the
	// pending buffer stays the box's — records are appended into the
	// link's own batches. The box consumed its input, so r is dead
	// afterwards and returns to the pool — unless the body emitted the
	// input record itself.
	delivered := env.sendMany(out, call.pending)
	reemitted := finishCall(call, r)
	if !reemitted && delivered {
		recycle(r)
	}
	return delivered
}

// CallBox runs a box body once against input as a detached execution: no
// network, no platform slot, and no flow inheritance — this is how a
// remote worker (internal/wire, cmd/snetd) executes a box call shipped to
// it by a RemotePlatform, and the dispatching process applies inheritance
// and type checking when the emissions return. The emitted records are
// returned in emission order and are owned by the caller; input stays the
// caller's (the body treats it read-only, per the box contract). Matching
// local semantics, a body error or panic is returned as err together with
// the records emitted before the failure.
func CallBox(fn BoxFunc, input *record.Record) ([]*record.Record, error) {
	call := &BoxCall{env: detachedEnv, In: input, noInherit: true}
	call.pending = call.pendArr[:0]
	err := runDetached(fn, call)
	var outs []*record.Record
	if len(call.pending) > 0 {
		outs = append(outs, call.pending...)
	}
	clear(call.pending)
	return outs, err
}

// runDetached executes one detached box body, converting a panic into an
// error like the in-network execution closure does.
func runDetached(fn BoxFunc, call *BoxCall) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("box panicked: %v", p)
		}
	}()
	return fn(call)
}

// detachedEnv hosts CallBox executions: options are all defaults (no type
// checking — the dispatching side checks) and errors have nowhere to go,
// they return to the caller instead.
var detachedEnv = &Env{opts: Options{}, errs: &errSink{}}

// MustSig is a convenience for building a single-input-variant signature:
// MustSig(inLabels, outVariants...) ≡ {in...} -> v1 | v2 | ....
func MustSig(in []rtype.Label, outs ...[]rtype.Label) rtype.Signature {
	inT := rtype.NewType(rtype.NewVariant(in...))
	outT := rtype.NewType()
	for _, o := range outs {
		outT.AddVariant(rtype.NewVariant(o...))
	}
	return rtype.NewSignature(inT, outT)
}
