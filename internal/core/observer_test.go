package core

import (
	"strings"
	"sync"
	"testing"

	"snet/internal/record"
	"snet/internal/rtype"
)

func TestObserveTransparent(t *testing.T) {
	var mu sync.Mutex
	var seen []string
	obs := Observe(incBox("inc", 1), func(dir ObserveDirection, r *record.Record) {
		mu.Lock()
		seen = append(seen, dir.String()+":"+r.String())
		mu.Unlock()
	})
	outs := runEntity(t, obs, record.New().SetField("x", 1), record.New().SetField("x", 2))
	if len(outs) != 2 {
		t.Fatalf("got %d outputs", len(outs))
	}
	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 4 {
		t.Fatalf("observed %d events, want 4: %v", len(seen), seen)
	}
	ins, outsN := 0, 0
	for _, s := range seen {
		if strings.HasPrefix(s, "in:") {
			ins++
		} else {
			outsN++
		}
	}
	if ins != 2 || outsN != 2 {
		t.Fatalf("ins=%d outs=%d", ins, outsN)
	}
}

func TestObserveSignatureUnchanged(t *testing.T) {
	a := incBox("inc", 1)
	obs := Observe(a, func(ObserveDirection, *record.Record) {})
	if obs.Signature().String() != a.Signature().String() {
		t.Fatal("observer changed the signature")
	}
	if !strings.Contains(obs.Name(), "observe(inc)") {
		t.Fatalf("name = %q", obs.Name())
	}
}

func TestCounterObserver(t *testing.T) {
	var c Counter
	// fan box: 1 record in, <n> out
	sig := MustSig([]rtype.Label{rtype.T("n")}, []rtype.Label{rtype.T("i")})
	fan := NewBox("fan", sig, func(bc *BoxCall) error {
		for i := 0; i < bc.Tag("n"); i++ {
			bc.Emit(record.New().SetTag("i", i))
		}
		return nil
	})
	obs := Observe(fan, c.Observe)
	outs := runEntity(t, obs, record.New().SetTag("n", 3))
	if len(outs) != 3 {
		t.Fatalf("got %d outputs", len(outs))
	}
	if c.In() != 1 || c.Out() != 3 {
		t.Fatalf("counter in=%d out=%d", c.In(), c.Out())
	}
}

func TestObserveDirectionString(t *testing.T) {
	if ObserveIn.String() != "in" || ObserveOut.String() != "out" {
		t.Fatal("direction strings wrong")
	}
}
