package core

import (
	"fmt"
	"strings"

	"snet/internal/record"
	"snet/internal/rtype"
	"snet/internal/stream"
)

// TagExpr computes an integer from a record's tag values; it is the runtime
// form of filter tag expressions such as <cnt+=1>.
type TagExpr func(r *record.Record) int

// FilterOutput is one output template of a filter rule. For each input
// record, the template produces one output record containing:
//
//   - CopyFields: fields copied from the input record;
//   - CopyTags: tags copied verbatim from the input record;
//   - SetTags: tags computed from the input record's tag values;
//   - RenameFields: fields copied under a new name (old -> new).
//
// Labels of the input record NOT matched by the rule's pattern are
// additionally attached to the output by flow inheritance; pattern-matched
// labels that the template does not mention are consumed (dropped).
type FilterOutput struct {
	CopyFields   []string
	CopyTags     []string
	SetTags      []TagAssign
	RenameFields []Rename
}

// TagAssign sets tag Name to the value of Expr; Src is the textual form for
// diagnostics.
type TagAssign struct {
	Name string
	Expr TagExpr
	Src  string
}

// Rename copies field From under label To.
type Rename struct {
	From, To string
}

// FilterRule couples a match pattern with one or more output templates
// (separated by ';' in the concrete syntax: one input record yields one
// output record per template).
type FilterRule struct {
	Pattern *rtype.Pattern
	Outputs []FilterOutput
}

// compiledOutput is a FilterOutput with every label interned, fixed at
// NewFilter time so applying the template is pure symbol work.
type compiledOutput struct {
	copyFields []record.Sym
	copyTags   []record.Sym
	setTags    []compiledAssign
	renames    []compiledRename
}

type compiledAssign struct {
	id   record.Sym
	expr TagExpr
}

type compiledRename struct {
	from, to record.Sym
}

// compiledRule is a FilterRule lowered to interned symbols: the consumed
// sets come straight from the pattern variant's symbol slices (no per-record
// set construction), and templates address labels by symbol.
type compiledRule struct {
	pattern   *rtype.Pattern
	consumedF []record.Sym
	consumedT []record.Sym
	outputs   []compiledOutput
}

func compileRule(rule FilterRule) compiledRule {
	cr := compiledRule{
		pattern:   rule.Pattern,
		consumedF: rule.Pattern.Variant.FieldSyms(),
		consumedT: rule.Pattern.Variant.TagSyms(),
	}
	for _, o := range rule.Outputs {
		var co compiledOutput
		for _, f := range o.CopyFields {
			co.copyFields = append(co.copyFields, record.Intern(f))
		}
		for _, t := range o.CopyTags {
			co.copyTags = append(co.copyTags, record.Intern(t))
		}
		for _, a := range o.SetTags {
			co.setTags = append(co.setTags, compiledAssign{id: record.Intern(a.Name), expr: a.Expr})
		}
		for _, rn := range o.RenameFields {
			co.renames = append(co.renames, compiledRename{
				from: record.Intern(rn.From), to: record.Intern(rn.To)})
		}
		cr.outputs = append(cr.outputs, co)
	}
	return cr
}

// NewFilter builds a filter entity from match rules. A record is processed
// by the first rule whose pattern it matches; a record matching no rule is
// a runtime type error. The identity filter [] is Identity. Rules are
// lowered to interned-symbol form here, once, so the per-record work is
// symbol scans and entry copies only.
func NewFilter(name string, rules ...FilterRule) *Entity {
	inT := rtype.NewType()
	outT := rtype.NewType()
	for _, rule := range rules {
		inT.AddVariant(rule.Pattern.Variant)
		for _, o := range rule.Outputs {
			v := rtype.NewVariant()
			for _, f := range o.CopyFields {
				v.Add(rtype.F(f))
			}
			for _, t := range o.CopyTags {
				v.Add(rtype.T(t))
			}
			for _, a := range o.SetTags {
				v.Add(rtype.T(a.Name))
			}
			for _, rn := range o.RenameFields {
				v.Add(rtype.F(rn.To))
			}
			outT.AddVariant(v)
		}
	}
	compiled := make([]compiledRule, len(rules))
	for i, rule := range rules {
		compiled[i] = compileRule(rule)
	}
	e := &Entity{
		name:  name,
		sig:   rtype.NewSignature(inT, outT),
		kind:  kindFilter,
		rules: compiled,
	}
	if name == "" {
		// The S-Net-ish rendering of the rules is pure diagnostics; defer
		// building it until someone asks.
		e.nameFn = func() string { return describeFilter(rules) }
	}
	e.spawn = func(env *Env, in, out *stream.Link) {
		env.start(func() {
			defer env.closeLink(out)
			// One reusable emission buffer per instance: a rule's outputs
			// leave as a single link operation, so a multi-template rule
			// (one input record fanning into several outputs) travels
			// downstream as one batch.
			var pending []*record.Record
			for {
				r, ok := env.recv(in)
				if !ok {
					return
				}
				if !r.IsData() {
					if !env.send(out, r) {
						return
					}
					continue
				}
				delivered := false
				pending, delivered = applyFilter(env, e, compiled, r, out, pending[:0])
				if !delivered {
					return
				}
			}
		})
	}
	return e
}

// applyFilter processes one record through the first matching rule. A
// single-output rule emits directly; a multi-template rule builds its
// outputs in scratch and emits them as one batched link operation, so the
// fan-out travels downstream as a unit (scratch only grows for such
// rules). It returns the scratch for reuse and reports false when the
// instance was stopped mid-emission.
func applyFilter(env *Env, e *Entity, rules []compiledRule, r *record.Record, out *stream.Link, scratch []*record.Record) ([]*record.Record, bool) {
	for i := range rules {
		rule := &rules[i]
		if !rule.pattern.Matches(r) {
			continue
		}
		var delivered bool
		if len(rule.outputs) == 1 {
			// Fan count 1: the output carries the input's delivery
			// lineage, no accounting needed.
			delivered = env.send(out, buildOutput(&rule.outputs[0], rule, r))
		} else {
			for oi := range rule.outputs {
				scratch = append(scratch, buildOutput(&rule.outputs[oi], rule, r))
			}
			env.trackFork(r, len(rule.outputs))
			delivered = env.sendMany(out, scratch)
			clear(scratch)
		}
		if !delivered {
			return scratch, false
		}
		// The input was consumed by the rule (outputs are fresh records);
		// recycle it.
		recycle(r)
		return scratch, true
	}
	env.reportRT(e.Name(), ErrCatNoMatch, r.String(), fmt.Errorf(
		"record %s matches no filter rule", r))
	// The unmatched record was dropped on purpose; its delivery completes
	// here. Reclaim it.
	env.trackDrop(r)
	recycle(r)
	return scratch, true
}

// runRules is the filter's whole per-record semantics minus delivery:
// apply the first matching rule to r, append the rule's outputs to dst,
// recycle r (rules build fresh records); report a record matching no rule
// against e and drop it. Fused chain stages use it to hand a filter's
// outputs to the next stage in memory; it is kept in lockstep with
// applyFilter, which adds the standalone entity's direct-send fast path.
func runRules(env *Env, e *Entity, rules []compiledRule, r *record.Record, dst []*record.Record) []*record.Record {
	for i := range rules {
		rule := &rules[i]
		if !rule.pattern.Matches(r) {
			continue
		}
		for oi := range rule.outputs {
			dst = append(dst, buildOutput(&rule.outputs[oi], rule, r))
		}
		env.trackFork(r, len(rule.outputs))
		recycle(r)
		return dst
	}
	env.reportRT(e.Name(), ErrCatNoMatch, r.String(), fmt.Errorf(
		"record %s matches no filter rule", r))
	env.trackDrop(r)
	recycle(r)
	return dst
}

// buildOutput instantiates one output template against the input record,
// flow inheritance included.
func buildOutput(o *compiledOutput, rule *compiledRule, r *record.Record) *record.Record {
	nr := recordPool.Get()
	for _, f := range o.copyFields {
		if v, ok := r.FieldSym(f); ok {
			nr.SetFieldSym(f, v)
		}
	}
	for _, rn := range o.renames {
		if v, ok := r.FieldSym(rn.from); ok {
			nr.SetFieldSym(rn.to, v)
		}
	}
	for _, t := range o.copyTags {
		if v, ok := r.TagSym(t); ok {
			nr.SetTagSym(t, v)
		}
	}
	for _, a := range o.setTags {
		nr.SetTagSym(a.id, a.expr(r))
	}
	nr.InheritFromExcept(r, rule.consumedF, rule.consumedT)
	return nr
}

// Identity builds the identity filter [], which passes every record through
// unchanged. Its input type is the empty variant (accepts everything with
// match score 0), which is what makes it usable as the bypass branch in the
// paper's merger and solver networks. The optimizer elides identities from
// serial chains and choice dispatch (the trivial case of fusion); under
// OptimizeOff the pass-through goroutine spawns as written.
func Identity() *Entity {
	empty := rtype.NewType(rtype.NewVariant())
	return &Entity{
		name: "[]",
		sig:  rtype.NewSignature(empty, empty),
		kind: kindIdentity,
		spawn: func(env *Env, in, out *stream.Link) {
			env.start(func() { env.pump(in, out) })
		},
	}
}

// describeFilter renders rules in S-Net-ish syntax for diagnostics.
func describeFilter(rules []FilterRule) string {
	var parts []string
	for _, rule := range rules {
		var outs []string
		for _, o := range rule.Outputs {
			var items []string
			items = append(items, o.CopyFields...)
			for _, rn := range o.RenameFields {
				items = append(items, rn.From+"->"+rn.To)
			}
			for _, t := range o.CopyTags {
				items = append(items, "<"+t+">")
			}
			for _, a := range o.SetTags {
				src := a.Src
				if src == "" {
					src = a.Name + "=…"
				}
				items = append(items, "<"+src+">")
			}
			outs = append(outs, "{"+strings.Join(items, ",")+"}")
		}
		parts = append(parts, rule.Pattern.String()+" -> "+strings.Join(outs, "; "))
	}
	return "[" + strings.Join(parts, " | ") + "]"
}
