package core

import (
	"fmt"
	"strings"

	"snet/internal/record"
	"snet/internal/rtype"
)

// TagExpr computes an integer from a record's tag values; it is the runtime
// form of filter tag expressions such as <cnt+=1>.
type TagExpr func(r *record.Record) int

// FilterOutput is one output template of a filter rule. For each input
// record, the template produces one output record containing:
//
//   - CopyFields: fields copied from the input record;
//   - CopyTags: tags copied verbatim from the input record;
//   - SetTags: tags computed from the input record's tag values;
//   - RenameFields: fields copied under a new name (old -> new).
//
// Labels of the input record NOT matched by the rule's pattern are
// additionally attached to the output by flow inheritance; pattern-matched
// labels that the template does not mention are consumed (dropped).
type FilterOutput struct {
	CopyFields   []string
	CopyTags     []string
	SetTags      []TagAssign
	RenameFields []Rename
}

// TagAssign sets tag Name to the value of Expr; Src is the textual form for
// diagnostics.
type TagAssign struct {
	Name string
	Expr TagExpr
	Src  string
}

// Rename copies field From under label To.
type Rename struct {
	From, To string
}

// FilterRule couples a match pattern with one or more output templates
// (separated by ';' in the concrete syntax: one input record yields one
// output record per template).
type FilterRule struct {
	Pattern *rtype.Pattern
	Outputs []FilterOutput
}

// NewFilter builds a filter entity from match rules. A record is processed
// by the first rule whose pattern it matches; a record matching no rule is
// a runtime type error. The identity filter [] is Identity.
func NewFilter(name string, rules ...FilterRule) *Entity {
	if name == "" {
		name = describeFilter(rules)
	}
	inT := rtype.NewType()
	outT := rtype.NewType()
	for _, rule := range rules {
		inT.AddVariant(rule.Pattern.Variant)
		for _, o := range rule.Outputs {
			v := rtype.NewVariant()
			for _, f := range o.CopyFields {
				v.Add(rtype.F(f))
			}
			for _, t := range o.CopyTags {
				v.Add(rtype.T(t))
			}
			for _, a := range o.SetTags {
				v.Add(rtype.T(a.Name))
			}
			for _, rn := range o.RenameFields {
				v.Add(rtype.F(rn.To))
			}
			outT.AddVariant(v)
		}
	}
	return &Entity{
		name: name,
		sig:  rtype.NewSignature(inT, outT),
		spawn: func(env *Env, in <-chan *record.Record, out chan<- *record.Record) {
			go func() {
				defer close(out)
				for r := range in {
					if !r.IsData() {
						out <- r
						continue
					}
					applyFilter(env, name, rules, r, out)
				}
			}()
		},
	}
}

// applyFilter processes one record through the first matching rule.
func applyFilter(env *Env, name string, rules []FilterRule, r *record.Record, out chan<- *record.Record) {
	for _, rule := range rules {
		if !rule.Pattern.Matches(r) {
			continue
		}
		consumedF := setOf(rule.Pattern.Variant.Fields())
		consumedT := setOf(rule.Pattern.Variant.Tags())
		for _, o := range rule.Outputs {
			nr := record.New()
			for _, f := range o.CopyFields {
				if v, ok := r.Field(f); ok {
					nr.SetField(f, v)
				}
			}
			for _, rn := range o.RenameFields {
				if v, ok := r.Field(rn.From); ok {
					nr.SetField(rn.To, v)
				}
			}
			for _, t := range o.CopyTags {
				if v, ok := r.Tag(t); ok {
					nr.SetTag(t, v)
				}
			}
			for _, a := range o.SetTags {
				nr.SetTag(a.Name, a.Expr(r))
			}
			nr.InheritFromExcept(r, consumedF, consumedT)
			out <- nr
		}
		return
	}
	env.report(entityError(name, fmt.Errorf(
		"record %s matches no filter rule", r)))
}

// Identity builds the identity filter [], which passes every record through
// unchanged. Its input type is the empty variant (accepts everything with
// match score 0), which is what makes it usable as the bypass branch in the
// paper's merger and solver networks.
func Identity() *Entity {
	empty := rtype.NewType(rtype.NewVariant())
	return &Entity{
		name: "[]",
		sig:  rtype.NewSignature(empty, empty),
		spawn: func(env *Env, in <-chan *record.Record, out chan<- *record.Record) {
			go pump(in, out)
		},
	}
}

// describeFilter renders rules in S-Net-ish syntax for diagnostics.
func describeFilter(rules []FilterRule) string {
	var parts []string
	for _, rule := range rules {
		var outs []string
		for _, o := range rule.Outputs {
			var items []string
			items = append(items, o.CopyFields...)
			for _, rn := range o.RenameFields {
				items = append(items, rn.From+"->"+rn.To)
			}
			for _, t := range o.CopyTags {
				items = append(items, "<"+t+">")
			}
			for _, a := range o.SetTags {
				src := a.Src
				if src == "" {
					src = a.Name + "=…"
				}
				items = append(items, "<"+src+">")
			}
			outs = append(outs, "{"+strings.Join(items, ",")+"}")
		}
		parts = append(parts, rule.Pattern.String()+" -> "+strings.Join(outs, "; "))
	}
	return "[" + strings.Join(parts, " | ") + "]"
}
