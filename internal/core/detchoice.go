package core

import (
	"fmt"

	"snet/internal/record"
	"snet/internal/rtype"
	"snet/internal/stream"
)

// seqTag is the reserved tag used by deterministic combinators to track
// which input record an output descends from. It rides through branches via
// flow inheritance (no branch entity ever matches it) and is stripped
// before records leave the combinator. User networks must not use this
// label.
const seqTag = "__snet_seq"

// seqTagSym is the interned form, fixed at init so stamping and stripping
// the sequence tag never touches the symbol table's string index.
var seqTagSym = record.Intern(seqTag)

// DetChoice builds the deterministic parallel composition A||B||...:
// records are dispatched exactly like Choice, but the output stream
// preserves the input order — all outputs descending from input record i
// are emitted before any output descending from record i+1, matching the
// semantics of S-Net's deterministic combinator variants.
//
// The implementation stamps each dispatched record with a hidden sequence
// tag (inherited through the branch) and reorders at the merge: outputs of
// the oldest outstanding input flow through immediately; later outputs are
// buffered until every older input is known to be finished, which is
// learned from each branch's FIFO progress (a branch emitting an output of
// a younger input completes all its older inputs) and from branch
// termination.
func DetChoice(branches ...*Entity) *Entity {
	if len(branches) == 0 {
		panic("core.DetChoice: no branches")
	}
	if len(branches) == 1 {
		return branches[0]
	}
	inT := rtype.NewType()
	outT := rtype.NewType()
	for _, b := range branches {
		inT = inT.Union(b.sig.In)
		outT = outT.Union(b.sig.Out)
	}
	e := &Entity{
		nameFn: func() string { return combName(branches, "||") },
		sig:    rtype.NewSignature(inT, outT),
		kids:   branches,
	}
	e.spawn = func(env *Env, in, out *stream.Link) {
		events := make(chan detEvent, max(0, env.opts.BufferSize)+len(branches))
		// Per-branch input links and the bestBranch score cache share one
		// scratch slice, as in Choice.
		st := make([]branchState, len(branches))
		for i, b := range branches {
			st[i].in = env.newLink()
			bo := env.newLink()
			b.spawn(env, st[i].in, bo)
			env.start(func() { detPump(env, i, bo, events) })
		}
		env.start(func() { runDetMerger(env, events, out) })
		env.start(func() {
			defer func() {
				for i := range st {
					env.closeLink(st[i].in)
				}
			}()
			rr := 0
			seq := 0
			for {
				r, ok := env.recv(in)
				if !ok {
					break
				}
				if !r.IsData() {
					// Control records take a sequence slot of their
					// own and complete immediately.
					if !sendEvent(env, events, detEvent{kind: evAssign, key: ctrlKey, seq: seq}) {
						return
					}
					if !sendEvent(env, events, detEvent{kind: evOutput, key: ctrlKey, seq: seq, rec: r}) {
						return
					}
					seq++
					continue
				}
				best := bestBranch(branches, st, r, &rr)
				if best < 0 {
					env.report(entityError(e.Name(), fmt.Errorf(
						"record %s matches no branch input type", r)))
					recycle(r)
					continue
				}
				r.SetTagSym(seqTagSym, seq)
				if !sendEvent(env, events, detEvent{kind: evAssign, key: best, seq: seq}) {
					return
				}
				seq++
				if !env.send(st[best].in, r) {
					return
				}
			}
			sendEvent(env, events, detEvent{kind: evNoMoreKeys, seq: len(branches)})
		})
	}
	return e
}

// DetSplit builds the deterministic indexed parallel replication A!!<tag>:
// like Split, one replica of A per distinct tag value, but the output
// stream preserves the input order across replicas, using the same
// sequence-and-reorder machinery as DetChoice.
func DetSplit(a *Entity, tag string) *Entity {
	inT := rtype.NewType()
	for _, v := range a.sig.In.Variants() {
		inT.AddVariant(v.Copy().Add(rtype.T(tag)))
	}
	if inT.NumVariants() == 0 {
		inT.AddVariant(rtype.NewVariant(rtype.T(tag)))
	}
	tagSym := record.Intern(tag)
	e := &Entity{
		nameFn: func() string { return fmt.Sprintf("(%s!!<%s>)", a.Name(), tag) },
		sig:    rtype.NewSignature(inT, a.sig.Out),
		kids:   []*Entity{a},
	}
	e.spawn = func(env *Env, in, out *stream.Link) {
		events := make(chan detEvent, max(0, env.opts.BufferSize)+4)
		env.start(func() { runDetMerger(env, events, out) })
		env.start(func() {
			instances := make(map[int]*stream.Link)
			defer func() {
				for _, c := range instances {
					env.closeLink(c)
				}
			}()
			// Dense instance ids keep merger keys distinct from the
			// reserved control key even for negative tag values.
			ids := make(map[int]int)
			seq := 0
			for {
				r, ok := env.recv(in)
				if !ok {
					break
				}
				if !r.IsData() {
					if !sendEvent(env, events, detEvent{kind: evAssign, key: ctrlKey, seq: seq}) {
						return
					}
					if !sendEvent(env, events, detEvent{kind: evOutput, key: ctrlKey, seq: seq, rec: r}) {
						return
					}
					seq++
					continue
				}
				v, ok := r.TagSym(tagSym)
				if !ok {
					env.report(entityError(e.Name(), fmt.Errorf(
						"record %s lacks index tag <%s>", r, tag)))
					recycle(r)
					continue
				}
				instIn, ok := instances[v]
				if !ok {
					instIn = env.newLink()
					instances[v] = instIn
					ids[v] = len(ids)
					instOut := env.newLink()
					a.spawn(env, instIn, instOut)
					id := ids[v]
					env.start(func() { detPump(env, id, instOut, events) })
				}
				r.SetTagSym(seqTagSym, seq)
				if !sendEvent(env, events, detEvent{kind: evAssign, key: ids[v], seq: seq}) {
					return
				}
				seq++
				if !env.send(instIn, r) {
					return
				}
			}
			sendEvent(env, events, detEvent{kind: evNoMoreKeys, seq: len(instances)})
		})
	}
	return e
}
