package core

import (
	"fmt"
	"sync"

	"snet/internal/record"
	"snet/internal/rtype"
	"snet/internal/stream"
)

// seqTag is the reserved tag used by deterministic combinators to track
// which input record an output descends from. It rides through branches via
// flow inheritance (no branch entity ever matches it) and is stripped
// before records leave the combinator. User networks must not use this
// label (or any label starting with it).
const seqTag = "__snet_seq"

// seqTagSym is the interned form, fixed at init so stamping and stripping
// the sequence tag never touches the symbol table's string index.
var seqTagSym = record.Intern(seqTag)

// seqSyms caches one interned sequence tag per deterministic-nesting depth.
// A Det* combinator containing further Det* combinators must stamp a tag
// none of them will strip: each entity uses the tag indexed by its own
// nesting depth (1 = innermost, the historical bare seqTag), so an inner
// combinator's stamp-and-strip cycle leaves the outer one's stamp intact
// and ordering is preserved at every level. The slice only ever grows to
// the deepest nesting seen process-wide.
var (
	seqSymsMu sync.Mutex
	seqSyms   = []record.Sym{seqTagSym}
)

// seqSymAt returns the sequence tag for nesting depth d >= 1.
func seqSymAt(d int) record.Sym {
	seqSymsMu.Lock()
	defer seqSymsMu.Unlock()
	for len(seqSyms) < d {
		seqSyms = append(seqSyms, record.Intern(fmt.Sprintf("%s@%d", seqTag, len(seqSyms)+1)))
	}
	return seqSyms[d-1]
}

// DetChoice builds the deterministic parallel composition A||B||...:
// records are dispatched exactly like Choice, but the output stream
// preserves the input order — all outputs descending from input record i
// are emitted before any output descending from record i+1, matching the
// semantics of S-Net's deterministic combinator variants.
//
// The implementation stamps each dispatched record with a hidden sequence
// tag (inherited through the branch) and reorders at the merge: outputs of
// the oldest outstanding input flow through immediately; later outputs are
// buffered until every older input is known to be finished, which is
// learned from each branch's FIFO progress (a branch emitting an output of
// a younger input completes all its older inputs) and from branch
// termination.
func DetChoice(branches ...*Entity) *Entity {
	if len(branches) == 0 {
		panic("core.DetChoice: no branches")
	}
	if len(branches) == 1 {
		return branches[0]
	}
	tree, ncursors := flatSelTree(len(branches))
	return detChoiceEnt(branches, tree, ncursors, false)
}

// detChoiceEnt builds the n-ary deterministic choice over the given leaf
// branches, dispatching through the selector tree exactly like choiceEnt.
// With elide set (optimizer-built trees), identity leaves are not spawned:
// their records take a control-style event pair straight into the merger,
// which emits them at their sequence position — the identity's output is
// its input, so no branch pipeline is needed to preserve order.
func detChoiceEnt(branches []*Entity, tree *selNode, ncursors int, elide bool) *Entity {
	inT := rtype.NewType()
	outT := rtype.NewType()
	for _, b := range branches {
		inT = inT.Union(b.sig.In)
		outT = outT.Union(b.sig.Out)
	}
	depth := 1 + maxDetDepth(branches)
	e := &Entity{
		nameFn:     func() string { return combName(branches, "||") },
		sig:        rtype.NewSignature(inT, outT),
		kids:       branches,
		kind:       kindDetChoice,
		selTree:    tree,
		selCursors: ncursors,
		elide:      elide,
		seqSym:     seqSymAt(depth),
		detDepth:   depth,
		looseOut:   anyLooseOut(branches),
	}
	e.spawn = func(env *Env, in, out *stream.Link) {
		events := make(chan detEvent, max(0, env.opts.BufferSize)+len(branches))
		// Per-branch input links and the dispatch score cache share one
		// scratch slice, as in Choice. st[i].in == nil marks an elided
		// identity leaf.
		st := make([]branchState, len(branches))
		spawned := 0
		for i, b := range branches {
			if elide && b.kind == kindIdentity {
				continue
			}
			spawned++
			st[i].in = env.newLink()
			bo := env.newLink()
			b.spawn(env, st[i].in, bo)
			env.start(func() { detPump(env, i, bo, events, e.seqSym) })
		}
		env.start(func() { runDetMerger(env, events, out) })
		env.start(func() {
			defer func() {
				for i := range st {
					if st[i].in != nil {
						env.closeLink(st[i].in)
					}
				}
			}()
			cursors := make([]int, ncursors)
			seq := 0
			for {
				r, ok := env.recv(in)
				if !ok {
					break
				}
				if !r.IsData() {
					// Control records take a sequence slot of their
					// own and complete immediately.
					if !sendEvent(env, events, detEvent{kind: evAssign, key: ctrlKey, seq: seq}) {
						return
					}
					if !sendEvent(env, events, detEvent{kind: evOutput, key: ctrlKey, seq: seq, rec: r}) {
						return
					}
					seq++
					continue
				}
				best := pickBranch(branches, tree, st, cursors, r)
				if best < 0 {
					env.reportRT(e.Name(), ErrCatNoMatch, r.String(), fmt.Errorf(
						"record %s matches no branch input type", r))
					env.trackDrop(r)
					recycle(r)
					continue
				}
				if st[best].in == nil {
					// Elided identity leaf: the record is its own output;
					// hand it to the merger as a completed slot, unstamped.
					if !sendEvent(env, events, detEvent{kind: evAssign, key: ctrlKey, seq: seq}) {
						return
					}
					if !sendEvent(env, events, detEvent{kind: evOutput, key: ctrlKey, seq: seq, rec: r}) {
						return
					}
					seq++
					continue
				}
				r.SetTagSym(e.seqSym, seq)
				if !sendEvent(env, events, detEvent{kind: evAssign, key: best, seq: seq}) {
					return
				}
				seq++
				if !env.send(st[best].in, r) {
					return
				}
			}
			sendEvent(env, events, detEvent{kind: evNoMoreKeys, seq: spawned})
		})
	}
	return e
}

// DetSplit builds the deterministic indexed parallel replication A!!<tag>:
// like Split, one replica of A per distinct tag value, but the output
// stream preserves the input order across replicas, using the same
// sequence-and-reorder machinery as DetChoice.
func DetSplit(a *Entity, tag string) *Entity {
	inT := rtype.NewType()
	for _, v := range a.sig.In.Variants() {
		inT.AddVariant(v.Copy().Add(rtype.T(tag)))
	}
	if inT.NumVariants() == 0 {
		inT.AddVariant(rtype.NewVariant(rtype.T(tag)))
	}
	tagSym := record.Intern(tag)
	depth := 1 + a.detDepth
	e := &Entity{
		nameFn:   func() string { return fmt.Sprintf("(%s!!<%s>)", a.Name(), tag) },
		sig:      rtype.NewSignature(inT, a.sig.Out),
		kids:     []*Entity{a},
		seqSym:   seqSymAt(depth),
		detDepth: depth,
		looseOut: a.looseOut,
		rebuild:  func(kids []*Entity) *Entity { return DetSplit(kids[0], tag) },
	}
	e.spawn = func(env *Env, in, out *stream.Link) {
		events := make(chan detEvent, max(0, env.opts.BufferSize)+4)
		env.start(func() { runDetMerger(env, events, out) })
		env.start(func() {
			instances := make(map[int]*stream.Link)
			defer func() {
				for _, c := range instances {
					env.closeLink(c)
				}
			}()
			// Dense instance ids keep merger keys distinct from the
			// reserved control key even for negative tag values.
			ids := make(map[int]int)
			seq := 0
			for {
				r, ok := env.recv(in)
				if !ok {
					break
				}
				if !r.IsData() {
					if !sendEvent(env, events, detEvent{kind: evAssign, key: ctrlKey, seq: seq}) {
						return
					}
					if !sendEvent(env, events, detEvent{kind: evOutput, key: ctrlKey, seq: seq, rec: r}) {
						return
					}
					seq++
					continue
				}
				v, ok := r.TagSym(tagSym)
				if !ok {
					env.reportRT(e.Name(), ErrCatNoMatch, r.String(), fmt.Errorf(
						"record %s lacks index tag <%s>", r, tag))
					env.trackDrop(r)
					recycle(r)
					continue
				}
				instIn, ok := instances[v]
				if !ok {
					instIn = env.newLink()
					instances[v] = instIn
					ids[v] = len(ids)
					instOut := env.newLink()
					a.spawn(env, instIn, instOut)
					id := ids[v]
					env.start(func() { detPump(env, id, instOut, events, e.seqSym) })
				}
				r.SetTagSym(e.seqSym, seq)
				if !sendEvent(env, events, detEvent{kind: evAssign, key: ids[v], seq: seq}) {
					return
				}
				seq++
				if !env.send(instIn, r) {
					return
				}
			}
			sendEvent(env, events, detEvent{kind: evNoMoreKeys, seq: len(instances)})
		})
	}
	return e
}
