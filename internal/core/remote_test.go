package core

import (
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"snet/internal/record"
	"snet/internal/rtype"
)

func TestCallBoxDetached(t *testing.T) {
	fn := func(c *BoxCall) error {
		x := c.Field("x").(int)
		c.Emit(record.New().SetField("x", x+1))
		c.Emit(record.New().SetField("x", x+2))
		return nil
	}
	in := record.Build().F("x", 10).T("extra", 7).Rec()
	outs, err := CallBox(fn, in)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 2 {
		t.Fatalf("got %d emissions, want 2", len(outs))
	}
	if v, _ := outs[0].Field("x"); v != 11 {
		t.Fatalf("first emission x = %v", v)
	}
	// Detached calls must NOT apply flow inheritance: the dispatching
	// process does that when the emissions return.
	if outs[0].HasTag("extra") {
		t.Fatalf("detached emission inherited tag <extra>: %s", outs[0])
	}
}

func TestCallBoxErrorKeepsEmissions(t *testing.T) {
	fn := func(c *BoxCall) error {
		c.Emit(record.New().SetField("y", 1))
		return errors.New("boom")
	}
	outs, err := CallBox(fn, record.New())
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
	if len(outs) != 1 {
		t.Fatalf("emissions before the failure were dropped: %v", outs)
	}
}

func TestCallBoxPanic(t *testing.T) {
	outs, err := CallBox(func(c *BoxCall) error { panic("ouch") }, record.New())
	if err == nil || !strings.Contains(err.Error(), "ouch") {
		t.Fatalf("err = %v, want the panic converted", err)
	}
	if len(outs) != 0 {
		t.Fatalf("outs = %v", outs)
	}
}

// fakeRemote implements RemotePlatform by running registered boxes through
// CallBox in-process — the worker side of the wire protocol without the
// wire. Boxes not in the table fall back to local().
type fakeRemote struct {
	LocalPlatform
	boxes   map[string]BoxFunc
	remotes atomic.Int64
	locals  atomic.Int64
}

func (f *fakeRemote) Nodes() int { return 2 }

func (f *fakeRemote) ExecBox(node int, cancel <-chan struct{}, box string, input *record.Record,
	stealable bool, local func()) ([]*record.Record, bool, bool, error) {
	fn, found := f.boxes[box]
	if !found {
		f.locals.Add(1)
		local()
		return nil, false, true, nil
	}
	f.remotes.Add(1)
	outs, err := CallBox(fn, input)
	return outs, true, true, err
}

func TestRemotePlatformExecBoxPath(t *testing.T) {
	// The box registered with the fake "remote" doubles x; the network's
	// own body would add 1. Seeing doubled outputs with inherited labels
	// proves the remote path ran the remote table's body AND applied flow
	// inheritance on the dispatching side.
	remoteFn := func(c *BoxCall) error {
		c.Emit(record.New().SetField("x", c.Field("x").(int)*2))
		return nil
	}
	plat := &fakeRemote{boxes: map[string]BoxFunc{"inc": remoteFn}}
	sig := MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	box := NewBox("inc", sig, func(c *BoxCall) error {
		c.Emit(record.New().SetField("x", c.Field("x").(int)+1))
		return nil
	})
	in := record.Build().F("x", 21).T("ride", 5).Rec()
	outs, err := NewNetwork(box, Options{Platform: plat}).Run(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(outs) != 1 {
		t.Fatalf("got %d outputs", len(outs))
	}
	if v, _ := outs[0].Field("x"); v != 42 {
		t.Fatalf("x = %v, want the remote body's 42", v)
	}
	if v, ok := outs[0].Tag("ride"); !ok || v != 5 {
		t.Fatalf("flow inheritance lost tag <ride>: %s", outs[0])
	}
	if plat.remotes.Load() != 1 {
		t.Fatalf("remote executions = %d, want 1", plat.remotes.Load())
	}
}

func TestRemotePlatformFallsBackLocal(t *testing.T) {
	plat := &fakeRemote{boxes: map[string]BoxFunc{}}
	outs := runEntity(t, incBox("inc", 1), record.New().SetField("x", 1))
	_ = outs
	got, err := NewNetwork(incBox("inc", 1), Options{Platform: plat}).
		Run(record.New().SetField("x", 41))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || xVal(t, got[0]) != 42 {
		t.Fatalf("outs = %v", got)
	}
	if plat.locals.Load() != 1 || plat.remotes.Load() != 0 {
		t.Fatalf("locals=%d remotes=%d, want the unregistered box to run locally",
			plat.locals.Load(), plat.remotes.Load())
	}
}

func TestRemotePlatformReportsRemoteError(t *testing.T) {
	plat := &fakeRemote{boxes: map[string]BoxFunc{
		"inc": func(c *BoxCall) error {
			c.Emit(record.New().SetField("x", 1))
			return fmt.Errorf("remote failure")
		},
	}}
	outs, err := NewNetwork(incBox("inc", 1), Options{Platform: plat}).
		Run(record.New().SetField("x", 0))
	if err == nil || !strings.Contains(err.Error(), "remote failure") {
		t.Fatalf("err = %v, want the remote box error reported", err)
	}
	// Matching local semantics, the emissions before the failure flow on.
	if len(outs) != 1 {
		t.Fatalf("outs = %v, want the pre-failure emission delivered", outs)
	}
}
