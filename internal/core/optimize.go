package core

import (
	"snet/internal/record"
	"snet/internal/rtype"
	"snet/internal/stream"
)

// OptimizeLevel selects how aggressively NewNetwork rewrites the entity
// tree before instantiation.
type OptimizeLevel int

const (
	// OptimizeFull — the zero value, on by default — enables the whole
	// rewrite catalogue: serial/choice flattening, identity elision,
	// filter/box fusion, and signature-driven branch pruning.
	OptimizeFull OptimizeLevel = iota
	// OptimizeOff disables the optimizer: the tree spawns exactly as
	// constructed. It is the escape hatch (and the reference side of the
	// internal/netdiff differential equivalence harness).
	OptimizeOff
)

// OptStats reports what the instantiation-time optimizer did to a network,
// rewrite by rewrite; Network.OptStats and Instance.OptStats return it
// next to LinkStats. Entity counts are spawn-faithful (a subtree shared by
// reference counts once per reference, a fused chain counts as one).
type OptStats struct {
	// Enabled is false when the network was built with OptimizeOff.
	Enabled bool
	// EntitiesBefore/EntitiesAfter count entity-tree nodes around the
	// rewrite; the difference is roughly goroutines-and-links not spawned.
	EntitiesBefore int
	EntitiesAfter  int
	// SerialsFlattened counts nested serial nodes spliced into an n-ary
	// chain; ChoicesFlattened counts same-determinism choice nests spliced
	// into an n-ary dispatch.
	SerialsFlattened int
	ChoicesFlattened int
	// IdentitiesElided counts identity filters removed from serial chains
	// (choice-embedded identities stay as dispatch targets but spawn
	// nothing; they are not counted here).
	IdentitiesElided int
	// Fusions by adjacent-stage kind: each counts one boundary where two
	// entities became stages of one fused goroutine.
	FilterFilterFused int
	FilterBoxFused    int
	BoxFilterFused    int
	// BranchesPruned counts choice branches removed because no upstream
	// record can ever win dispatch for them (rtype.Dominated);
	// ChoicesShortCircuited counts choices replaced outright by their sole
	// surviving branch.
	BranchesPruned        int
	ChoicesShortCircuited int
}

// fuseStage is one stage of a fused chain: a filter rule set or a box,
// with the original entity kept for error attribution.
type fuseStage struct {
	ent   *Entity
	rules []compiledRule // filter stage (box == nil)
	box   *boxImpl       // box stage
}

// Optimize rewrites an entity tree into a cheaper equivalent and reports
// what it did. The input is never mutated (entities are immutable and may
// be shared); unchanged subtrees are returned by reference. The catalogue:
//
//   - Flattening: nested Serial nests become one n-ary chain; nested
//     Choice (and nested DetChoice) nests become one n-ary dispatch whose
//     selector tree reproduces the nest's per-level round-robin
//     tie-breaking exactly.
//   - Identity elision: identity filters disappear from serial chains, and
//     choice dispatchers route records for identity branches straight to
//     the merge — the trivial case of fusion, generalized from the
//     per-combinator special cases earlier versions hard-coded in spawn.
//   - Fusion: a maximal run of adjacent filters containing at most one box
//     becomes a single entity whose one goroutine threads each record
//     through the stages in memory — no links, no per-hop handoff. Runs
//     with two or more boxes are not merged across the second box: box
//     pipelining is real parallelism, and serializing heavy stages to save
//     a hop is a loss. Stage semantics are shared code with the standalone
//     entities (runRules, boxImpl.execute), so matching, flow inheritance,
//     error reporting, recycling, and remote/stealable box execution are
//     identical.
//   - Branch pruning: a choice branch no upstream record can ever win
//     dispatch for (rtype.Dominated over the declared signatures, sound
//     under flow inheritance) is removed; a choice left with one branch is
//     replaced by it. Disabled when the upstream entity's output type is
//     not trustworthy (Entity.looseOut: synchrocells and what follows
//     them).
//
// Stateful or structural entities — boxes under observation taps,
// synchrocells, stars, splits, placement — are never merged into fused
// chains; their operands are still rewritten through their rebuild hooks.
func Optimize(e *Entity) (*Entity, OptStats) {
	st := OptStats{Enabled: true, EntitiesBefore: countEntities(e)}
	o := &optimizer{stats: &st, memo: map[*Entity]*Entity{}}
	root := o.rewrite(e)
	st.EntitiesAfter = countEntities(root)
	return root, st
}

type optimizer struct {
	stats *OptStats
	// memo keeps rewrites by identity: entity trees are DAGs (one entity
	// may be referenced several times), and each reference must resolve to
	// the same rewritten node.
	memo map[*Entity]*Entity
}

func (o *optimizer) rewrite(e *Entity) *Entity {
	if r, ok := o.memo[e]; ok {
		return r
	}
	var r *Entity
	switch e.kind {
	case kindSerial:
		r = o.rewriteSerial(e)
	case kindChoice, kindDetChoice:
		r = o.rewriteChoice(e)
	default:
		r = o.rewriteGeneric(e)
	}
	o.memo[e] = r
	return r
}

// rewriteGeneric handles nodes the optimizer has no structural rewrite
// for: leaves pass through, and nodes with a rebuild hook are
// reconstructed around their rewritten children (only when any changed).
func (o *optimizer) rewriteGeneric(e *Entity) *Entity {
	if len(e.kids) == 0 || e.rebuild == nil {
		return e
	}
	kids := make([]*Entity, len(e.kids))
	same := true
	for i, k := range e.kids {
		kids[i] = o.rewrite(k)
		if kids[i] != k {
			same = false
		}
	}
	if same {
		return e
	}
	return e.rebuild(kids)
}

// rewriteSerial flattens a serial nest into one op list, simplifies it
// (identity elision, branch pruning, short-circuiting) and fuses adjacent
// stateless runs.
func (o *optimizer) rewriteSerial(e *Entity) *Entity {
	var ops []*Entity
	serialNodes := 0
	var collect func(n *Entity)
	collect = func(n *Entity) {
		if n.kind == kindSerial {
			serialNodes++
			for _, k := range n.kids {
				collect(k)
			}
			return
		}
		op := o.rewrite(n)
		if op.kind == kindSerial {
			// The operand's rewrite produced a chain (e.g. a
			// short-circuited choice whose surviving branch was serial);
			// splice it.
			serialNodes++
			ops = append(ops, op.kids...)
			return
		}
		ops = append(ops, op)
	}
	collect(e)
	o.stats.SerialsFlattened += serialNodes - 1

	ops = o.simplifyChain(ops)
	ops = o.fuseChain(ops)
	return serialChain(ops)
}

// simplifyChain runs identity elision and choice pruning/short-circuiting
// over a flattened op list to a fixpoint (a short-circuited choice may
// expose a serial to splice, new identities to elide, or a next choice to
// prune).
func (o *optimizer) simplifyChain(ops []*Entity) []*Entity {
	for {
		changed := false

		// Identity elision: a pure pass-through contributes nothing to a
		// chain. An all-identity chain keeps one.
		nonID := 0
		for _, op := range ops {
			if op.kind != kindIdentity {
				nonID++
			}
		}
		switch {
		case nonID == 0:
			if len(ops) > 1 {
				o.stats.IdentitiesElided += len(ops) - 1
				ops = ops[:1]
			}
		case nonID < len(ops):
			o.stats.IdentitiesElided += len(ops) - nonID
			kept := ops[:0]
			for _, op := range ops {
				if op.kind != kindIdentity {
					kept = append(kept, op)
				}
			}
			ops = kept
			changed = true
		}

		// Branch pruning: a choice fed by a trustworthy upstream sheds
		// branches that can never win dispatch.
		for i := 1; i < len(ops); i++ {
			op := ops[i]
			if op.kind != kindChoice && op.kind != kindDetChoice {
				continue
			}
			up := ops[i-1]
			if up.looseOut {
				continue
			}
			if np := o.pruneChoice(op, up.sig.Out); np != op {
				ops[i] = np
				changed = true
			}
		}

		// Splice chains a short-circuit may have exposed.
		for _, op := range ops {
			if op.kind == kindSerial {
				var flat []*Entity
				for _, op := range ops {
					if op.kind == kindSerial {
						o.stats.SerialsFlattened++
						flat = append(flat, op.kids...)
					} else {
						flat = append(flat, op)
					}
				}
				ops = flat
				changed = true
				break
			}
		}

		if !changed {
			return ops
		}
	}
}

// pruneChoice removes branches that can never win dispatch against records
// of the upstream output type (rtype.Dominated). Returns op unchanged when
// nothing is dominated, or the sole surviving branch when all others are
// (the short circuit: single-branch dispatch is the branch itself, for
// the deterministic variant too — one FIFO branch needs no reorder
// machinery). Pruning cannot perturb the surviving branches' round-robin
// routing: a dominated branch is strictly outscored whenever it matches,
// so it never participates in a winning tie at any selector level.
func (o *optimizer) pruneChoice(op *Entity, upstream *rtype.Type) *Entity {
	ins := make([]*rtype.Type, len(op.kids))
	for i, b := range op.kids {
		ins[i] = b.sig.In
	}
	dom := rtype.Dominated(upstream, ins)
	n := 0
	for _, d := range dom {
		if d {
			n++
		}
	}
	if n == 0 {
		return op
	}
	o.stats.BranchesPruned += n
	var leaves []*Entity
	remap := make([]int, len(op.kids))
	for i, b := range op.kids {
		if dom[i] {
			remap[i] = -1
			continue
		}
		remap[i] = len(leaves)
		leaves = append(leaves, b)
	}
	if len(leaves) == 1 {
		o.stats.ChoicesShortCircuited++
		return leaves[0]
	}
	nc := 0
	tree := pruneSelTree(op.selTree, remap, &nc)
	if op.kind == kindDetChoice {
		return detChoiceEnt(leaves, tree, nc, op.elide)
	}
	return choiceEnt(leaves, tree, nc, op.elide)
}

// pruneSelTree copies a selector tree without the pruned leaves,
// renumbering surviving leaves (remap) and cursor slots (nc). Groups left
// with a single kid collapse into it: a one-way tie never advances a
// cursor, so the collapse is routing-neutral.
func pruneSelTree(n *selNode, remap []int, nc *int) *selNode {
	if n.leaf >= 0 {
		if remap[n.leaf] < 0 {
			return nil
		}
		return &selNode{leaf: remap[n.leaf]}
	}
	var kids []selNode
	for i := range n.kids {
		if k := pruneSelTree(&n.kids[i], remap, nc); k != nil {
			kids = append(kids, *k)
		}
	}
	switch len(kids) {
	case 0:
		return nil
	case 1:
		return &kids[0]
	}
	id := *nc
	*nc++
	return &selNode{leaf: -1, kids: kids, id: id}
}

// rewriteChoice flattens same-determinism choice nests into one n-ary
// dispatch. Each nested choice contributes its selector tree (grafted with
// its own cursor slots), so the flattened dispatcher breaks ties exactly
// as the nest did, level by level. Branches of the other determinism, and
// everything else, stay leaves — rewritten, not spliced.
func (o *optimizer) rewriteChoice(e *Entity) *Entity {
	var leaves []*Entity
	nc := 0
	var graft func(n *selNode, kids []*Entity) selNode
	graft = func(n *selNode, kids []*Entity) selNode {
		if n.leaf >= 0 {
			idx := len(leaves)
			leaves = append(leaves, kids[n.leaf])
			return selNode{leaf: idx}
		}
		gk := make([]selNode, len(n.kids))
		for i := range n.kids {
			gk[i] = graft(&n.kids[i], kids)
		}
		id := nc
		nc++
		return selNode{leaf: -1, kids: gk, id: id}
	}
	kids := make([]selNode, 0, len(e.kids))
	for _, k := range e.kids {
		rk := o.rewrite(k)
		if rk.kind == e.kind && rk.selTree != nil {
			o.stats.ChoicesFlattened++
			kids = append(kids, graft(rk.selTree, rk.kids))
			continue
		}
		kids = append(kids, selNode{leaf: len(leaves)})
		leaves = append(leaves, rk)
	}
	id := nc
	nc++
	tree := &selNode{leaf: -1, kids: kids, id: id}
	if e.kind == kindDetChoice {
		return detChoiceEnt(leaves, tree, nc, true)
	}
	return choiceEnt(leaves, tree, nc, true)
}

// fusableBoxes reports how many box stages op would contribute to a fused
// chain, or -1 when op cannot be a fused stage.
func fusableBoxes(op *Entity) int {
	switch op.kind {
	case kindFilter:
		return 0
	case kindBox:
		return 1
	case kindFused:
		n := 0
		for i := range op.stages {
			if op.stages[i].box != nil {
				n++
			}
		}
		return n
	}
	return -1
}

// fuseChain merges maximal fusable runs (filters plus at most one box) in
// an op list into single fused entities.
func (o *optimizer) fuseChain(ops []*Entity) []*Entity {
	var res []*Entity
	i := 0
	for i < len(ops) {
		if fusableBoxes(ops[i]) < 0 {
			res = append(res, ops[i])
			i++
			continue
		}
		j, boxes := i, 0
		for j < len(ops) {
			n := fusableBoxes(ops[j])
			if n < 0 || boxes+n > 1 {
				break
			}
			boxes += n
			j++
		}
		if j-i >= 2 {
			res = append(res, o.fuseParts(ops[i:j]))
		} else {
			res = append(res, ops[i])
		}
		i = j
	}
	return res
}

// boundaryStageIsBox resolves what stage kind a part presents at its first
// (last=false) or last (last=true) stage, for fusion accounting.
func boundaryStageIsBox(op *Entity, last bool) bool {
	if op.kind == kindFused {
		if last {
			return op.stages[len(op.stages)-1].box != nil
		}
		return op.stages[0].box != nil
	}
	return op.kind == kindBox
}

// fuseParts builds one fused entity over the given adjacent parts.
func (o *optimizer) fuseParts(parts []*Entity) *Entity {
	var stages []fuseStage
	for _, p := range parts {
		switch p.kind {
		case kindFilter:
			stages = append(stages, fuseStage{ent: p, rules: p.rules})
		case kindBox:
			stages = append(stages, fuseStage{ent: p, box: p.box})
		case kindFused:
			stages = append(stages, p.stages...)
		}
	}
	// Count the new part boundaries only (an already-fused part's internal
	// boundaries were counted when it was built).
	for i := 1; i < len(parts); i++ {
		a := boundaryStageIsBox(parts[i-1], true)
		b := boundaryStageIsBox(parts[i], false)
		switch {
		case !a && !b:
			o.stats.FilterFilterFused++
		case !a && b:
			o.stats.FilterBoxFused++
		case a && !b:
			o.stats.BoxFilterFused++
		}
	}
	parts = append([]*Entity(nil), parts...)
	e := &Entity{
		nameFn: func() string { return "fused" + combName(parts, "..") },
		sig:    rtype.NewSignature(parts[0].sig.In, parts[len(parts)-1].sig.Out),
		kids:   parts,
		kind:   kindFused,
		stages: stages,
	}
	e.spawn = spawnFused(e)
	return e
}

// spawnFused instantiates a fused chain: one goroutine threads each input
// record through the stage list in memory, emitting the final stage's
// outputs downstream in the same DFS order the unfused pipeline would
// produce. Control records pass straight through, FIFO with the data.
func spawnFused(e *Entity) SpawnFunc {
	stages := e.stages
	return func(env *Env, in, out *stream.Link) {
		env.start(func() {
			defer env.closeLink(out)
			// One reusable call context and execution closure per box
			// stage (boxes are sequential per instance).
			calls := make([]*BoxCall, len(stages))
			runs := make([]func(), len(stages))
			for i := range stages {
				if stages[i].box != nil {
					calls[i], runs[i] = newBoxRunner(env, stages[i].box)
				}
			}
			// cur/next are the record front between stages, reused across
			// inputs.
			var cur, next []*record.Record
			for {
				r, ok := env.recv(in)
				if !ok {
					return
				}
				if !r.IsData() {
					if !env.send(out, r) {
						return
					}
					continue
				}
				cur = append(cur[:0], r)
				for si := range stages {
					s := &stages[si]
					next = next[:0]
					if s.box == nil {
						for _, rec := range cur {
							next = runRules(env, s.ent, s.rules, rec, next)
						}
					} else {
						for _, rec := range cur {
							matched, ok, dead := s.box.attempt(calls[si], runs[si], rec)
							if !ok {
								// Stopped mid-chain: unwind; in-flight
								// records are dropped like any stopped
								// instance's.
								return
							}
							if !matched || dead {
								// Dropped (no match) or dead-lettered:
								// nothing pending, the record is no
								// longer ours.
								continue
							}
							next = append(next, calls[si].pending...)
							if !finishCall(calls[si], rec) {
								recycle(rec)
							}
						}
					}
					cur, next = next, cur
				}
				if !env.sendMany(out, cur) {
					return
				}
				// Drop the references so recycled records are not retained
				// past delivery.
				clear(cur)
				clear(next)
			}
		})
	}
}

// countEntities counts entity-tree nodes with spawn multiplicity: a
// subtree referenced twice instantiates twice, so it counts twice; a fused
// chain instantiates one goroutine, so it counts once regardless of how
// many parts it swallowed.
func countEntities(e *Entity) int {
	type memoEnt struct {
		n int
	}
	memo := map[*Entity]memoEnt{}
	var walk func(n *Entity) int
	walk = func(n *Entity) int {
		if m, ok := memo[n]; ok {
			return m.n
		}
		c := 1
		if n.kind != kindFused {
			for _, k := range n.kids {
				c += walk(k)
			}
		}
		memo[n] = memoEnt{n: c}
		return c
	}
	return walk(e)
}

// DeadBranches reports the names of choice branches of e that can never
// win dispatch against records produced by up (rtype.Dominated over the
// declared signatures) — the static form of the optimizer's branch
// pruning, used by the compiler to warn about dead branches. Nil unless e
// is a choice and up's declared output type is trustworthy (Entity
// looseness: synchrocells pass unmatched records through outside their
// declared type).
func DeadBranches(up, e *Entity) []string {
	if e.kind != kindChoice && e.kind != kindDetChoice {
		return nil
	}
	if up.looseOut {
		return nil
	}
	ins := make([]*rtype.Type, len(e.kids))
	for i, b := range e.kids {
		ins[i] = b.sig.In
	}
	dom := rtype.Dominated(up.sig.Out, ins)
	var names []string
	for i, d := range dom {
		if d {
			names = append(names, e.kids[i].Name())
		}
	}
	return names
}
