package core

import (
	"strings"
	"testing"

	"snet/internal/record"
	"snet/internal/rtype"
)

// setTagFilter builds [ {} -> {<name=v>} ] — matches everything, stamps a
// tag, inherits the rest.
func setTagFilter(name string, v int) *Entity {
	return NewFilter("",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant()),
			Outputs: []FilterOutput{{SetTags: []TagAssign{{
				Name: name, Expr: func(*record.Record) int { return v }, Src: name,
			}}}},
		})
}

func optRun(t *testing.T, e *Entity, lvl OptimizeLevel, inputs ...*record.Record) ([]*record.Record, OptStats) {
	t.Helper()
	n := NewNetwork(e, Options{Optimize: lvl})
	outs, err := n.Run(inputs...)
	if err != nil {
		t.Fatalf("network error: %v", err)
	}
	return outs, n.OptStats()
}

func TestOptimizeSerialFlattensAndFuses(t *testing.T) {
	// ((inc .. inc) .. inc): three boxes — flattened but NOT fused (box
	// pipelining is parallelism).
	e := Serial(Serial(incBox("a", 1), incBox("b", 10)), incBox("c", 100))
	outs, st := optRun(t, e, OptimizeFull, record.New().SetField("x", 0))
	if v := xVal(t, outs[0]); v != 111 {
		t.Fatalf("x = %d, want 111", v)
	}
	if st.SerialsFlattened != 1 {
		t.Fatalf("SerialsFlattened = %d, want 1", st.SerialsFlattened)
	}
	if st.FilterBoxFused+st.BoxFilterFused+st.FilterFilterFused != 0 {
		t.Fatalf("boxes must not fuse with each other: %+v", st)
	}
	if st.EntitiesBefore != 5 || st.EntitiesAfter != 1 {
		// Two serial nodes + three boxes before; one n-ary chain... the
		// chain node itself plus its three kids = 4.
		if st.EntitiesAfter != 4 {
			t.Fatalf("entities %d -> %d: %+v", st.EntitiesBefore, st.EntitiesAfter, st)
		}
	}
}

func TestOptimizeIdentityElision(t *testing.T) {
	e := SerialAll(Identity(), incBox("a", 1), Identity(), Identity())
	outs, st := optRun(t, e, OptimizeFull, record.New().SetField("x", 5))
	if v := xVal(t, outs[0]); v != 6 {
		t.Fatalf("x = %d, want 6", v)
	}
	if st.IdentitiesElided != 3 {
		t.Fatalf("IdentitiesElided = %d, want 3", st.IdentitiesElided)
	}
	if st.EntitiesAfter != 1 {
		t.Fatalf("EntitiesAfter = %d, want 1 (the box alone)", st.EntitiesAfter)
	}
}

func TestOptimizeAllIdentityChainKeepsOne(t *testing.T) {
	e := SerialAll(Identity(), Identity(), Identity())
	outs, st := optRun(t, e, OptimizeFull, record.New().SetField("x", 5))
	if len(outs) != 1 || xVal(t, outs[0]) != 5 {
		t.Fatalf("outs = %v", outs)
	}
	if st.IdentitiesElided != 2 || st.EntitiesAfter != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestOptimizeFilterFilterFusion(t *testing.T) {
	e := Serial(setTagFilter("a", 1), setTagFilter("b", 2))
	outs, st := optRun(t, e, OptimizeFull, record.New().SetField("x", 0))
	o := outs[0]
	if a, _ := o.Tag("a"); a != 1 {
		t.Fatalf("a missing: %s", o)
	}
	if b, _ := o.Tag("b"); b != 2 {
		t.Fatalf("b missing: %s", o)
	}
	if st.FilterFilterFused != 1 {
		t.Fatalf("FilterFilterFused = %d, want 1", st.FilterFilterFused)
	}
	if st.EntitiesAfter != 1 {
		t.Fatalf("EntitiesAfter = %d, want 1 (fused)", st.EntitiesAfter)
	}
}

func TestOptimizeFilterBoxFusion(t *testing.T) {
	e := SerialAll(setTagFilter("pre", 1), incBox("a", 1), setTagFilter("post", 2))
	outs, st := optRun(t, e, OptimizeFull, record.New().SetField("x", 0))
	o := outs[0]
	if v := xVal(t, o); v != 1 {
		t.Fatalf("x = %d", v)
	}
	if !o.HasTag("pre") || !o.HasTag("post") {
		t.Fatalf("tags missing: %s", o)
	}
	if st.FilterBoxFused != 1 || st.BoxFilterFused != 1 {
		t.Fatalf("fusion stats = %+v", st)
	}
	if st.EntitiesAfter != 1 {
		t.Fatalf("EntitiesAfter = %d, want 1", st.EntitiesAfter)
	}
}

func TestOptimizeFusionStopsAtSecondBox(t *testing.T) {
	// filter .. box .. box .. filter: first box fuses with the filter
	// before it, second with the filter after it; the box-box boundary
	// stays a link.
	e := SerialAll(setTagFilter("pre", 1), incBox("a", 1), incBox("b", 10), setTagFilter("post", 2))
	outs, st := optRun(t, e, OptimizeFull, record.New().SetField("x", 0))
	if v := xVal(t, outs[0]); v != 11 {
		t.Fatalf("x = %d, want 11", v)
	}
	if st.FilterBoxFused != 1 || st.BoxFilterFused != 1 || st.FilterFilterFused != 0 {
		t.Fatalf("fusion stats = %+v", st)
	}
	// Chain node + two fused parts.
	if st.EntitiesAfter != 3 {
		t.Fatalf("EntitiesAfter = %d, want 3", st.EntitiesAfter)
	}
}

func TestOptimizeFusedMultiOutputOrder(t *testing.T) {
	// A splitting filter fused with a downstream stamping filter must
	// emit in the same DFS order as the unfused pipeline.
	split := NewFilter("",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant(rtype.T("i"))),
			Outputs: []FilterOutput{
				{CopyTags: []string{"i"}, SetTags: []TagAssign{{
					Name: "half", Expr: func(*record.Record) int { return 0 }, Src: "half=0"}}},
				{CopyTags: []string{"i"}, SetTags: []TagAssign{{
					Name: "half", Expr: func(*record.Record) int { return 1 }, Src: "half=1"}}},
			},
		})
	e := Serial(split, setTagFilter("s", 9))
	var want []string
	for lvl, dst := range map[OptimizeLevel]*[]string{OptimizeOff: &want} {
		outs, _ := optRun(t, e, lvl, record.New().SetTag("i", 1), record.New().SetTag("i", 2))
		for _, o := range outs {
			*dst = append(*dst, o.String())
		}
	}
	outs, st := optRun(t, e, OptimizeFull, record.New().SetTag("i", 1), record.New().SetTag("i", 2))
	if st.FilterFilterFused != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if len(outs) != len(want) {
		t.Fatalf("got %d outputs, want %d", len(outs), len(want))
	}
	for i, o := range outs {
		if o.String() != want[i] {
			t.Fatalf("output %d = %s, want %s", i, o, want[i])
		}
	}
}

func TestOptimizeFusedNoMatchReported(t *testing.T) {
	// The second fused stage rejects the record; the error must carry the
	// original filter's identity, as unfused.
	narrow := NewFilter("",
		FilterRule{Pattern: rtype.NewPattern(rtype.NewVariant(rtype.F("a")))})
	e := Serial(setTagFilter("t", 1), narrow)
	n := NewNetwork(e, Options{})
	if st := n.OptStats(); st.FilterFilterFused != 1 {
		t.Fatalf("stats = %+v", st)
	}
	_, err := n.Run(record.New().SetField("b", 1))
	if err == nil || !strings.Contains(err.Error(), "matches no filter rule") {
		t.Fatalf("err = %v", err)
	}
}

func TestOptimizeChoiceFlattening(t *testing.T) {
	// ((a | b) | (c | d)) over disjoint tags: routing must be unchanged.
	br := func(tag string) *Entity {
		return NewFilter("",
			FilterRule{
				Pattern: rtype.NewPattern(rtype.NewVariant(rtype.T(tag))),
				Outputs: []FilterOutput{{CopyTags: []string{tag}, SetTags: []TagAssign{{
					Name: "via_" + tag, Expr: func(*record.Record) int { return 1 }, Src: "via"}}}},
			})
	}
	e := Choice(Choice(br("a"), br("b")), Choice(br("c"), br("d")))
	ins := func() []*record.Record {
		return []*record.Record{
			record.New().SetTag("a", 1), record.New().SetTag("b", 1),
			record.New().SetTag("c", 1), record.New().SetTag("d", 1),
		}
	}
	outs, st := optRun(t, e, OptimizeFull, ins()...)
	if st.ChoicesFlattened != 2 {
		t.Fatalf("ChoicesFlattened = %d, want 2", st.ChoicesFlattened)
	}
	seen := map[string]bool{}
	for _, o := range outs {
		for _, tag := range []string{"a", "b", "c", "d"} {
			if o.HasTag("via_" + tag) {
				seen[tag] = true
			}
		}
	}
	for _, tag := range []string{"a", "b", "c", "d"} {
		if !seen[tag] {
			t.Fatalf("branch %s never hit: %v", tag, outs)
		}
	}
}

func TestOptimizeChoiceRoundRobinPreserved(t *testing.T) {
	// Nested choices of identical-signature branches: the nested
	// round-robin walks top-level alternation with per-level sub-cursors.
	// The flattened dispatcher must route record k to the same branch the
	// nested network does. Compare per-branch totals across modes.
	br := func(id int) *Entity {
		return NewFilter("",
			FilterRule{
				Pattern: rtype.NewPattern(rtype.NewVariant(rtype.F("x"))),
				Outputs: []FilterOutput{{CopyFields: []string{"x"}, SetTags: []TagAssign{{
					Name: "br", Expr: func(*record.Record) int { return id }, Src: "br"}}}},
			})
	}
	mk := func() *Entity {
		return Choice(Choice(br(0), br(1)), br(2))
	}
	counts := func(lvl OptimizeLevel) []int {
		ins := make([]*record.Record, 12)
		for i := range ins {
			ins[i] = record.New().SetField("x", i)
		}
		outs, _ := optRun(t, mk(), lvl, ins...)
		c := make([]int, 3)
		for _, o := range outs {
			b, _ := o.Tag("br")
			c[b]++
		}
		return c
	}
	off, on := counts(OptimizeOff), counts(OptimizeFull)
	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("round-robin diverged: off=%v on=%v", off, on)
		}
	}
	// The nest alternates (group, br2) at the top and (br0, br1) inside:
	// 12 records -> 6 to br2, 3 each to br0/br1.
	if off[0] != 3 || off[1] != 3 || off[2] != 6 {
		t.Fatalf("nested distribution = %v, want [3 3 6]", off)
	}
}

func TestOptimizeBranchPruning(t *testing.T) {
	// Upstream emits {x}; branch b demands {x,y} and is dominated by a
	// two-output-variant... simplest sound case: branch a matches {x}
	// with a larger overlapping variant. Build: box{x} .. (fa | fb) where
	// fa wants {x} and fb wants {x,y}: fb is NOT dominated (y could be
	// inherited)... Use the sound case instead: fb wants {} (empty) and
	// fa wants {x}: every upstream {x}∪extras record scores fa >= 1 >
	// fb's 0, and fa's variant {x} ⊆ {x}∪anything — fb is dominated.
	fa := NewFilter("",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant(rtype.F("x"))),
			Outputs: []FilterOutput{{CopyFields: []string{"x"}, SetTags: []TagAssign{{
				Name: "a", Expr: func(*record.Record) int { return 1 }, Src: "a"}}}},
		})
	fb := NewFilter("",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant()),
			Outputs: []FilterOutput{{SetTags: []TagAssign{{
				Name: "b", Expr: func(*record.Record) int { return 1 }, Src: "b"}}}},
		})
	e := Serial(incBox("up", 1), Choice(fa, fb))
	outs, st := optRun(t, e, OptimizeFull,
		record.New().SetField("x", 0), record.New().SetField("x", 1))
	if st.BranchesPruned != 1 || st.ChoicesShortCircuited != 1 {
		t.Fatalf("stats = %+v", st)
	}
	for _, o := range outs {
		if !o.HasTag("a") || o.HasTag("b") {
			t.Fatalf("record routed to dead branch: %s", o)
		}
	}
	// And the dispatch itself disappeared: box fused with fa.
	if st.BoxFilterFused != 1 {
		t.Fatalf("expected box..fa fusion after short circuit: %+v", st)
	}
}

func TestOptimizeNoPruningAfterSync(t *testing.T) {
	// A synchrocell passes unmatched records through outside its declared
	// output type, so the choice after it must keep all branches.
	sy := NewSync(
		rtype.NewPattern(rtype.NewVariant(rtype.F("p"))),
		rtype.NewPattern(rtype.NewVariant(rtype.F("q"))),
	)
	fa := setTagFilter("a", 1)
	fb := NewFilter("",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant(rtype.F("z"))),
			Outputs: []FilterOutput{{CopyFields: []string{"z"}}},
		})
	e := Serial(sy, Choice(fb, fa))
	_, st := optRun(t, e, OptimizeFull, record.New().SetField("p", 1))
	if st.BranchesPruned != 0 {
		t.Fatalf("pruned after loose upstream: %+v", st)
	}
}

func TestOptimizeOffIsIdentity(t *testing.T) {
	e := SerialAll(Identity(), setTagFilter("a", 1), incBox("b", 1))
	outs, st := optRun(t, e, OptimizeOff, record.New().SetField("x", 0))
	if st.Enabled {
		t.Fatalf("stats = %+v, want disabled zero value", st)
	}
	if st != (OptStats{}) {
		t.Fatalf("OptimizeOff stats not zero: %+v", st)
	}
	if v := xVal(t, outs[0]); v != 1 {
		t.Fatalf("x = %d", v)
	}
}

func TestOptimizeSharedSubtree(t *testing.T) {
	// The same entity referenced from two places must rewrite to one
	// shared node (and instantiate twice, as before).
	shared := Serial(setTagFilter("s", 1), setTagFilter("t", 2))
	e := Choice(
		Serial(NewFilter("", FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant(rtype.T("a"))),
			Outputs: []FilterOutput{{CopyTags: []string{"a"}}},
		}), shared),
		Serial(NewFilter("", FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant(rtype.T("b"))),
			Outputs: []FilterOutput{{CopyTags: []string{"b"}}},
		}), shared),
	)
	outs, _ := optRun(t, e, OptimizeFull,
		record.New().SetTag("a", 1), record.New().SetTag("b", 1))
	for _, o := range outs {
		if !o.HasTag("s") || !o.HasTag("t") {
			t.Fatalf("shared chain skipped: %s", o)
		}
	}
}

func TestDeadBranches(t *testing.T) {
	up := incBox("up", 1) // out: {x}
	fa := NewFilter("fa",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant(rtype.F("x"))),
			Outputs: []FilterOutput{{CopyFields: []string{"x"}}},
		})
	fb := NewFilter("fb",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant()),
			Outputs: []FilterOutput{{}},
		})
	dead := DeadBranches(up, Choice(fa, fb))
	if len(dead) != 1 || dead[0] != "fb" {
		t.Fatalf("DeadBranches = %v, want [fb]", dead)
	}
	if d := DeadBranches(up, fa); d != nil {
		t.Fatalf("non-choice DeadBranches = %v", d)
	}
	sy := NewSync(
		rtype.NewPattern(rtype.NewVariant(rtype.F("p"))),
		rtype.NewPattern(rtype.NewVariant(rtype.F("q"))),
	)
	if d := DeadBranches(sy, Choice(fa, fb)); d != nil {
		t.Fatalf("loose-upstream DeadBranches = %v", d)
	}
}

func TestOptimizeDetChoiceShortCircuitKeepsOrder(t *testing.T) {
	// DetChoice with a dominated branch short-circuits to the survivor —
	// which is trivially order-preserving (one FIFO branch).
	fa := NewFilter("",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant(rtype.F("x"))),
			Outputs: []FilterOutput{{CopyFields: []string{"x"}}},
		})
	fb := NewFilter("",
		FilterRule{
			Pattern: rtype.NewPattern(rtype.NewVariant()),
			Outputs: []FilterOutput{{}},
		})
	e := Serial(incBox("up", 0), DetChoice(fa, fb))
	ins := make([]*record.Record, 8)
	for i := range ins {
		ins[i] = record.New().SetField("x", i)
	}
	outs, st := optRun(t, e, OptimizeFull, ins...)
	if st.ChoicesShortCircuited != 1 {
		t.Fatalf("stats = %+v", st)
	}
	for i, o := range outs {
		if xVal(t, o) != i {
			t.Fatalf("order broken at %d: %v", i, outs)
		}
	}
}
