package core

import "fmt"

// ErrorCategory classifies a runtime error for aggregation: Instance.Errs
// reports dropped-beyond-retention counts per category, so a flood of one
// failure mode cannot hide what kinds of errors occurred.
type ErrorCategory uint8

const (
	// ErrCatOther covers errors with no more specific category (including
	// raw errors reported by platform integrations).
	ErrCatOther ErrorCategory = iota
	// ErrCatNoMatch is a record matching no input variant, filter rule,
	// choice branch, or missing a split's index tag — a dynamic type error.
	// The record is dropped (and its delivery acked: the drop is
	// sanctioned, replay would only drop it again).
	ErrCatNoMatch
	// ErrCatBox is a box body returning an error.
	ErrCatBox
	// ErrCatPanic is a box body panicking (recovered by the runtime).
	ErrCatPanic
	// ErrCatTypeCheck is a CheckTypes violation: an emitted record outside
	// the box's declared output type.
	ErrCatTypeCheck
	// ErrCatJournal is a durability failure: the ingress journal refusing
	// an append or an ack. The record still flows — durability degrades,
	// delivery does not stop.
	ErrCatJournal

	numErrorCategories
)

// String names the category.
func (c ErrorCategory) String() string {
	switch c {
	case ErrCatNoMatch:
		return "no-match"
	case ErrCatBox:
		return "box"
	case ErrCatPanic:
		return "panic"
	case ErrCatTypeCheck:
		return "type-check"
	case ErrCatJournal:
		return "journal"
	}
	return "other"
}

// RuntimeError is a structured runtime error: which entity raised it, what
// kind of failure it was, and the shape of the record involved (its String
// rendering at fault time — the record itself may since have been recycled
// or retried). Every error the runtime itself reports is a *RuntimeError;
// Instance.Err flattens them into the joined error text callers already
// parse, Instance.Errs returns them structured.
type RuntimeError struct {
	// Entity is the diagnostic name of the reporting entity; empty for
	// instance-level failures (journal open, ack write-back).
	Entity string
	// Category classifies the failure.
	Category ErrorCategory
	// Shape is the involved record's rendering at fault time, when a
	// record was involved.
	Shape string
	// Err is the underlying cause.
	Err error
}

// Error renders the error in the runtime's established format.
func (e *RuntimeError) Error() string {
	if e.Entity == "" {
		return fmt.Sprintf("snet: %v", e.Err)
	}
	return fmt.Sprintf("snet: entity %s: %v", e.Entity, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *RuntimeError) Unwrap() error { return e.Err }

// ErrorReport is the structured view of an instance's error sink.
//
// Retention contract: the sink keeps the first maxRetainedErrors errors
// verbatim (the ones that tell the story); everything beyond the cap is
// counted in Dropped by category, and Total counts every report ever made.
// Stopped lives outside the cap — an aborted instance always reports it.
type ErrorReport struct {
	// Stopped reports whether the instance was aborted with Stop.
	Stopped bool
	// Total is every error ever reported, retained or not (Stopped
	// included, matching ErrCount).
	Total int
	// Retained are the first errors reported, oldest first, at most
	// maxRetainedErrors of them.
	Retained []*RuntimeError
	// Dropped counts the errors beyond the retention cap, by category.
	// Nil when nothing was dropped.
	Dropped map[ErrorCategory]int
}

// reportRT records a structured runtime error against the instance sink.
func (e *Env) reportRT(entity string, cat ErrorCategory, shape string, err error) {
	e.errs.add(&RuntimeError{Entity: entity, Category: cat, Shape: shape, Err: err})
}

// asRuntimeError returns err structured, wrapping foreign errors as
// ErrCatOther so ErrorReport is uniformly typed.
func asRuntimeError(err error) *RuntimeError {
	if re, ok := err.(*RuntimeError); ok {
		return re
	}
	return &RuntimeError{Category: ErrCatOther, Err: err}
}

// categoryOf classifies an arbitrary reported error for drop accounting.
func categoryOf(err error) ErrorCategory {
	if re, ok := err.(*RuntimeError); ok {
		return re.Category
	}
	return ErrCatOther
}
