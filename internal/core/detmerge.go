package core

import (
	"snet/internal/record"
	"snet/internal/stream"
)

// detEvent is one message into the deterministic reordering merger shared
// by DetChoice and DetSplit.
type detEvent struct {
	kind detEventKind
	key  int // branch index (choice) or instance tag value (split)
	seq  int // sequence number; for evNoMoreKeys: total number of keys
	rec  *record.Record
}

type detEventKind uint8

const (
	evAssign     detEventKind = iota // input seq dispatched to key
	evOutput                         // key produced an output record
	evClose                          // key's output stream closed
	evNoMoreKeys                     // dispatcher done; seq carries the key count
)

// ctrlKey marks control-record pseudo-assignments that complete instantly.
const ctrlKey = -1

// detMerger restores input order on the output of a deterministic
// combinator. It must be driven from a single goroutine via handle, which
// returns true when the merge is finished (every expected key has closed
// and the dispatcher is done) and the output may be closed.
//
// Ordering contract: for each key, evAssign(seq) precedes every
// evOutput(seq) (dispatchers send the assign event to the FIFO event
// channel before handing the record to the branch), and a key's outputs
// arrive in its input order when the branch is itself order-preserving
// (serial chains of entities and deterministic combinators are FIFO). A
// branch containing a nondeterministic combinator (|, !, star) may emit
// outputs out of input order; the FIFO completion inference then runs
// ahead of straggler records, whose slot has already passed when they
// arrive. Such records are emitted immediately — their relative order was
// never promised by the network, and every record must still come out.
type detMerger struct {
	env       *Env
	out       *stream.Link
	nextSeq   int
	buffered  map[int][]*record.Record
	completed map[int]bool
	ctrlDone  map[int]bool
	pending   map[int][]int // key -> FIFO of open seqs
	closes    int
	expected  int // -1 until evNoMoreKeys announces the key count
}

func newDetMerger(env *Env, out *stream.Link) *detMerger {
	return &detMerger{
		env:       env,
		out:       out,
		buffered:  map[int][]*record.Record{},
		completed: map[int]bool{},
		ctrlDone:  map[int]bool{},
		pending:   map[int][]int{},
		expected:  -1,
	}
}

// handle processes one event and reports whether the merge is complete.
func (m *detMerger) handle(ev detEvent) bool {
	switch ev.kind {
	case evAssign:
		if ev.key != ctrlKey {
			m.pending[ev.key] = append(m.pending[ev.key], ev.seq)
		}
	case evOutput:
		if ev.key == ctrlKey {
			m.ctrlDone[ev.seq] = true
		} else {
			m.completeThrough(ev.key, ev.seq)
		}
		switch {
		case ev.seq < 0:
			// untagged output (sequence tag lost inside the branch):
			// ordering responsibility is void, emit immediately.
			m.env.send(m.out, ev.rec)
		case ev.seq < m.nextSeq:
			// The slot already passed: a nondeterministic combinator
			// inside the branch reordered outputs across its input
			// sequence, so the FIFO completion inference ran ahead of
			// this record. Its order was never promised — emit it now
			// rather than burying it in a buffer slot that will never
			// be flushed again.
			m.env.send(m.out, ev.rec)
		case ev.seq == m.nextSeq:
			m.flushBuffer(m.nextSeq)
			m.env.send(m.out, ev.rec)
		default:
			m.buffered[ev.seq] = append(m.buffered[ev.seq], ev.rec)
		}
		m.advance()
	case evClose:
		for _, s := range m.pending[ev.key] {
			m.completed[s] = true
		}
		delete(m.pending, ev.key)
		m.closes++
		m.advance()
	case evNoMoreKeys:
		m.expected = ev.seq
	}
	if m.expected >= 0 && m.closes == m.expected {
		for s := range m.buffered {
			m.completed[s] = true
		}
		m.advance()
		return true
	}
	return false
}

// completeThrough applies a key's FIFO progress: an output of seq completes
// every older seq assigned to the same key.
func (m *detMerger) completeThrough(key, seq int) {
	q := m.pending[key]
	for len(q) > 0 && q[0] != seq {
		m.completed[q[0]] = true
		q = q[1:]
	}
	m.pending[key] = q
}

func (m *detMerger) flushBuffer(seq int) {
	if rs, ok := m.buffered[seq]; ok {
		for _, r := range rs {
			m.env.send(m.out, r)
		}
		delete(m.buffered, seq)
	}
}

// advance emits buffered outputs of completed sequence numbers in order.
func (m *detMerger) advance() {
	for {
		m.flushBuffer(m.nextSeq)
		if m.completed[m.nextSeq] || m.ctrlDone[m.nextSeq] {
			delete(m.completed, m.nextSeq)
			delete(m.ctrlDone, m.nextSeq)
			m.nextSeq++
			continue
		}
		return
	}
}

// runDetMerger drains the event channel into a merger and closes out when
// the merge completes or the instance is stopped. The event channel is
// never closed (it has several producers); the dispatcher's evNoMoreKeys
// plus per-key evClose events mark completion, and env.done covers aborts.
func runDetMerger(env *Env, events <-chan detEvent, out *stream.Link) {
	defer env.closeLink(out)
	m := newDetMerger(env, out)
	for {
		var ev detEvent
		select {
		case ev = <-events:
		case <-env.done:
			return
		}
		if m.handle(ev) {
			return
		}
	}
}

// sendEvent delivers ev unless the instance is stopped.
func sendEvent(env *Env, events chan<- detEvent, ev detEvent) bool {
	select {
	case events <- ev:
		return true
	default:
	}
	select {
	case events <- ev:
		return true
	case <-env.done:
		return false
	}
}

// detPump forwards a branch's outputs as events, stripping the hidden
// sequence tag. seqSym is the owning combinator's depth-indexed tag: a
// nested deterministic combinator inside the branch stamps and strips its
// own, different tag, so this pump only ever sees (and removes) its
// owner's.
func detPump(env *Env, key int, bo *stream.Link, events chan<- detEvent, seqSym record.Sym) {
	for {
		r, ok := env.recv(bo)
		if !ok {
			break
		}
		seq := -1
		if r.IsData() {
			if s, ok := r.TagSym(seqSym); ok {
				seq = s
				r.DeleteTagSym(seqSym)
			}
		}
		if !sendEvent(env, events, detEvent{kind: evOutput, key: key, seq: seq, rec: r}) {
			return
		}
	}
	sendEvent(env, events, detEvent{kind: evClose, key: key})
}
