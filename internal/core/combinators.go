package core

import (
	"fmt"
	"sync"

	"snet/internal/record"
	"snet/internal/rtype"
)

// Serial builds the serial composition A..B: the output stream of a becomes
// the input stream of b, so the two operate in pipeline mode. An identity
// operand is elided at instantiation time: [] .. B and A .. [] cost no
// extra channel or goroutine.
func Serial(a, b *Entity) *Entity {
	return &Entity{
		nameFn: func() string { return "(" + a.Name() + ".." + b.Name() + ")" },
		sig:    rtype.NewSignature(a.sig.In, b.sig.Out),
		kids:   []*Entity{a, b},
		spawn: func(env *Env, in <-chan *record.Record, out chan<- *record.Record) {
			switch {
			case a.identity:
				b.spawn(env, in, out)
			case b.identity:
				a.spawn(env, in, out)
			default:
				mid := env.newChan()
				a.spawn(env, in, mid)
				b.spawn(env, mid, out)
			}
		},
	}
}

// SerialAll folds Serial over two or more entities left to right.
func SerialAll(first *Entity, rest ...*Entity) *Entity {
	e := first
	for _, n := range rest {
		e = Serial(e, n)
	}
	return e
}

// Choice builds the parallel composition A|B|...: each incoming record is
// dispatched to the branch whose input type matches it best (the most
// specific matched variant wins). Ties are broken round-robin among the
// tied branches; since the branches run asynchronously the overall output
// stream is a nondeterministic order-of-arrival merge, exactly as in the
// paper. A record matching no branch is reported as a runtime type error
// and dropped.
func Choice(branches ...*Entity) *Entity {
	if len(branches) == 0 {
		panic("core.Choice: no branches")
	}
	if len(branches) == 1 {
		return branches[0]
	}
	inT := rtype.NewType()
	outT := rtype.NewType()
	for _, b := range branches {
		inT = inT.Union(b.sig.In)
		outT = outT.Union(b.sig.Out)
	}
	e := &Entity{
		nameFn: func() string { return combName(branches, "|") },
		sig:    rtype.NewSignature(inT, outT),
		kids:   branches,
	}
	e.spawn = func(env *Env, in <-chan *record.Record, out chan<- *record.Record) {
		// Identity branches (the paper's ubiquitous [] bypass) are
		// elided: the dispatcher forwards their records straight to
		// the merged output instead of paying two channels and two
		// goroutines per instantiation. ins[i] == nil marks an elided
		// branch.
		ins := make([]chan *record.Record, len(branches))
		spawned := 0
		for _, b := range branches {
			if !b.identity {
				spawned++
			}
		}
		coll := newCollector(out, spawned+1) // +1: the dispatcher
		for i, b := range branches {
			if b.identity {
				continue
			}
			ins[i] = env.newChan()
			bo := env.newChan()
			b.spawn(env, ins[i], bo)
			go coll.drainInto(bo)
		}
		go func() {
			defer coll.done()
			rr := 0 // round-robin cursor for tie-breaking
			for r := range in {
				if !r.IsData() {
					if ins[0] == nil {
						coll.send(r)
					} else {
						ins[0] <- r
					}
					continue
				}
				best, bestScore, ties := -1, -1, 0
				for i, b := range branches {
					if _, s := b.sig.In.BestMatch(r); s > bestScore {
						best, bestScore, ties = i, s, 1
					} else if s == bestScore && s >= 0 {
						ties++
					}
				}
				if best < 0 {
					env.report(entityError(e.Name(), fmt.Errorf(
						"record %s matches no branch input type", r)))
					continue
				}
				if ties > 1 {
					// pick the (rr mod ties)-th among the tied branches
					k := rr % ties
					rr++
					for i, b := range branches {
						if _, s := b.sig.In.BestMatch(r); s == bestScore {
							if k == 0 {
								best = i
								break
							}
							k--
						}
					}
				}
				if ins[best] == nil {
					coll.send(r)
				} else {
					ins[best] <- r
				}
			}
			for _, c := range ins {
				if c != nil {
					close(c)
				}
			}
		}()
	}
	return e
}

// combName renders a combinator name like (a|b|c) lazily.
func combName(branches []*Entity, sep string) string {
	name := "("
	for i, b := range branches {
		if i > 0 {
			name += sep
		}
		name += b.Name()
	}
	return name + ")"
}

// Star builds the serial replication A*exit, conceptually an infinite chain
// A..A..A..… tapped before every replica: a record matching the exit
// pattern leaves the network at the tap; any other record enters the next
// replica. Replicas are instantiated lazily, and — as the paper stresses —
// the star never feeds records back; it unrolls.
func Star(a *Entity, exit *rtype.Pattern) *Entity {
	inT := a.sig.In.Union(rtype.NewType(exit.Variant))
	return &Entity{
		nameFn: func() string { return fmt.Sprintf("(%s*%s)", a.Name(), exit) },
		sig:    rtype.NewSignature(inT, rtype.NewType(exit.Variant)),
		kids:   []*Entity{a},
		spawn: func(env *Env, in <-chan *record.Record, out chan<- *record.Record) {
			coll := newCollector(out, 1)
			go starStage(env, a, exit, in, coll)
		},
	}
}

// starStage is one unfolding of a star: the tap in front of replica k. It
// emits exit-matching records to the shared collector and lazily creates
// replica k plus the next stage when the first non-exit record arrives.
func starStage(env *Env, a *Entity, exit *rtype.Pattern, in <-chan *record.Record, coll *collector) {
	defer coll.done()
	var instIn chan *record.Record
	for r := range in {
		if !r.IsData() || exit.Matches(r) {
			coll.send(r)
			continue
		}
		if instIn == nil {
			instIn = env.newChan()
			instOut := env.newChan()
			a.spawn(env, instIn, instOut)
			coll.add(1)
			go starStage(env, a, exit, instOut, coll)
		}
		instIn <- r
	}
	if instIn != nil {
		close(instIn)
	}
}

// Split builds the indexed parallel replication A!<tag>: one replica of A
// per distinct value of the tag, instantiated on demand; every incoming
// record must carry the tag and is routed to the replica selected by its
// value. Outputs merge nondeterministically.
func Split(a *Entity, tag string) *Entity {
	return splitImpl(a, tag,
		func() string { return fmt.Sprintf("(%s!<%s>)", a.Name(), tag) }, nil)
}

// SplitAt builds the indexed dynamic placement A!@<tag> from Distributed
// S-Net: like Split, but each replica is instantiated on the compute node
// identified by the tag value (mapped modulo the platform's node count),
// and records are accounted as transferred to that node on entry and back
// on exit.
func SplitAt(a *Entity, tag string) *Entity {
	return splitImpl(a, tag,
		func() string { return fmt.Sprintf("(%s!@<%s>)", a.Name(), tag) },
		func(env *Env, v int) int {
			n := env.Nodes()
			if n <= 0 {
				return 0
			}
			return ((v % n) + n) % n
		})
}

// splitImpl implements both Split and SplitAt; nodeFor is nil for the
// non-placing variant.
func splitImpl(a *Entity, tag string, nameFn func() string, nodeFor func(*Env, int) int) *Entity {
	// The input type is A's input type with the index tag added to every
	// variant (every incoming record must carry the tag).
	inT := rtype.NewType()
	for _, v := range a.sig.In.Variants() {
		inT.AddVariant(v.Copy().Add(rtype.T(tag)))
	}
	if inT.NumVariants() == 0 {
		inT.AddVariant(rtype.NewVariant(rtype.T(tag)))
	}
	tagSym := record.Intern(tag)
	e := &Entity{
		nameFn: nameFn,
		sig:    rtype.NewSignature(inT, a.sig.Out),
		kids:   []*Entity{a},
	}
	e.spawn = func(env *Env, in <-chan *record.Record, out chan<- *record.Record) {
		coll := newCollector(out, 1)
		go func() {
			defer coll.done()
			instances := make(map[int]chan *record.Record)
			for r := range in {
				if !r.IsData() {
					coll.send(r)
					continue
				}
				v, ok := r.TagSym(tagSym)
				if !ok {
					env.report(entityError(e.Name(), fmt.Errorf(
						"record %s lacks index tag <%s>", r, tag)))
					continue
				}
				instIn, ok := instances[v]
				if !ok {
					instIn = env.newChan()
					instances[v] = instIn
					instEnv := env
					if nodeFor != nil {
						instEnv = env.At(nodeFor(env, v))
					}
					instOut := env.newChan()
					a.spawn(instEnv, instIn, instOut)
					coll.add(1)
					if nodeFor != nil {
						// Account the return path: records leaving the
						// replica travel back to the split's node.
						back := instEnv
						go func() {
							defer coll.done()
							for o := range instOut {
								env.transfer(back.node, env.node, o)
								coll.send(o)
							}
						}()
					} else {
						go coll.drainInto(instOut)
					}
				}
				if nodeFor != nil {
					env.transfer(env.node, nodeFor(env, v), r)
				}
				instIn <- r
			}
			for _, c := range instances {
				close(c)
			}
		}()
	}
	return e
}

// At builds the static placement A@node from Distributed S-Net: the operand
// executes on the given compute node; records are accounted as transferred
// to that node on entry and back on exit.
func At(a *Entity, node int) *Entity {
	return &Entity{
		nameFn: func() string { return fmt.Sprintf("(%s@%d)", a.Name(), node) },
		sig:    a.sig,
		kids:   []*Entity{a},
		spawn: func(env *Env, in <-chan *record.Record, out chan<- *record.Record) {
			target := node
			if n := env.Nodes(); n > 0 {
				target = ((node % n) + n) % n
			}
			innerIn := env.newChan()
			innerOut := env.newChan()
			go func() {
				for r := range in {
					env.transfer(env.node, target, r)
					innerIn <- r
				}
				close(innerIn)
			}()
			a.spawn(env.At(target), innerIn, innerOut)
			go func() {
				for r := range innerOut {
					env.transfer(target, env.node, r)
					out <- r
				}
				close(out)
			}()
		},
	}
}

// FeedbackStar is an extension beyond the paper's star: a bounded feedback
// variant in which non-exit output records of the operand are fed back to
// the operand's input instead of unrolling a new replica. It exists for the
// ablation benchmark comparing unrolling against feedback (DESIGN.md); the
// compiler never emits it. Deadlock-freedom is ensured by an unbounded
// internal queue.
func FeedbackStar(a *Entity, exit *rtype.Pattern) *Entity {
	inT := a.sig.In.Union(rtype.NewType(exit.Variant))
	return &Entity{
		nameFn: func() string { return fmt.Sprintf("(%s*fb%s)", a.Name(), exit) },
		sig:    rtype.NewSignature(inT, rtype.NewType(exit.Variant)),
		kids:   []*Entity{a},
		spawn: func(env *Env, in <-chan *record.Record, out chan<- *record.Record) {
			instIn := env.newChan()
			instOut := env.newChan()
			a.spawn(env, instIn, instOut)

			var mu sync.Mutex
			var queue []*record.Record // unbounded feedback queue
			pending := 0               // records inside the operand or queued
			inClosed := false
			kick := make(chan struct{}, 1)

			poke := func() {
				select {
				case kick <- struct{}{}:
				default:
				}
			}
			// Feeder: moves records from the queue into the operand.
			go func() {
				for range kick {
					for {
						mu.Lock()
						if len(queue) == 0 {
							done := inClosed && pending == 0
							mu.Unlock()
							if done {
								close(instIn)
								return
							}
							break
						}
						r := queue[0]
						queue = queue[1:]
						mu.Unlock()
						instIn <- r
					}
				}
			}()
			// Intake: external records join the queue.
			go func() {
				for r := range in {
					if !r.IsData() || exit.Matches(r) {
						out <- r
						continue
					}
					mu.Lock()
					queue = append(queue, r)
					pending++
					mu.Unlock()
					poke()
				}
				mu.Lock()
				inClosed = true
				mu.Unlock()
				poke()
			}()
			// Outlet: operand outputs either exit or feed back.
			go func() {
				for r := range instOut {
					if r.IsData() && !exit.Matches(r) {
						mu.Lock()
						queue = append(queue, r)
						mu.Unlock()
						poke()
						continue
					}
					mu.Lock()
					pending--
					mu.Unlock()
					out <- r
					poke()
				}
				close(out)
			}()
		},
	}
}
