package core

import (
	"fmt"
	"sync"

	"snet/internal/record"
	"snet/internal/rtype"
	"snet/internal/stream"
)

// Serial builds the serial composition A..B: the output stream of a becomes
// the input stream of b, so the two operate in pipeline mode. Identity
// operands, adjacent stateless stages and nested serial nests are taken
// apart by the instantiation-time optimizer (see Optimize), not here: the
// constructor records exactly what was written, so OptimizeOff spawns the
// tree as constructed.
func Serial(a, b *Entity) *Entity {
	return serialChain([]*Entity{a, b})
}

// serialChain builds the n-ary serial pipeline over ops (at least one; a
// single op is returned as-is). It is the normal form the optimizer
// flattens serial nests into — and what Serial itself builds, for two ops.
func serialChain(ops []*Entity) *Entity {
	if len(ops) == 1 {
		return ops[0]
	}
	e := &Entity{
		nameFn:   func() string { return combName(ops, "..") },
		sig:      rtype.NewSignature(ops[0].sig.In, ops[len(ops)-1].sig.Out),
		kids:     ops,
		kind:     kindSerial,
		detDepth: maxDetDepth(ops),
		looseOut: ops[len(ops)-1].looseOut,
	}
	e.spawn = func(env *Env, in, out *stream.Link) {
		cur := in
		last := len(ops) - 1
		for _, op := range ops[:last] {
			mid := env.newLink()
			op.spawn(env, cur, mid)
			cur = mid
		}
		ops[last].spawn(env, cur, out)
	}
	return e
}

// SerialAll folds Serial over two or more entities left to right.
func SerialAll(first *Entity, rest ...*Entity) *Entity {
	e := first
	for _, n := range rest {
		e = Serial(e, n)
	}
	return e
}

// Choice builds the parallel composition A|B|...: each incoming record is
// dispatched to the branch whose input type matches it best (the most
// specific matched variant wins). Ties are broken round-robin among the
// tied branches; since the branches run asynchronously the overall output
// stream is a nondeterministic order-of-arrival merge, exactly as in the
// paper. A record matching no branch is reported as a runtime type error
// and dropped.
func Choice(branches ...*Entity) *Entity {
	if len(branches) == 0 {
		panic("core.Choice: no branches")
	}
	if len(branches) == 1 {
		return branches[0]
	}
	tree, ncursors := flatSelTree(len(branches))
	return choiceEnt(branches, tree, ncursors, false)
}

// choiceEnt builds the n-ary nondeterministic choice over the given leaf
// branches, dispatching through the selector tree (see selNode). Choice
// builds the flat tree; the optimizer builds trees mirroring the nesting it
// flattened, with elide set so identity leaves bypass spawning.
func choiceEnt(branches []*Entity, tree *selNode, ncursors int, elide bool) *Entity {
	inT := rtype.NewType()
	outT := rtype.NewType()
	for _, b := range branches {
		inT = inT.Union(b.sig.In)
		outT = outT.Union(b.sig.Out)
	}
	e := &Entity{
		nameFn:     func() string { return combName(branches, "|") },
		sig:        rtype.NewSignature(inT, outT),
		kids:       branches,
		kind:       kindChoice,
		selTree:    tree,
		selCursors: ncursors,
		elide:      elide,
		detDepth:   maxDetDepth(branches),
		looseOut:   anyLooseOut(branches),
	}
	e.spawn = func(env *Env, in, out *stream.Link) {
		// Elided identity branches (the paper's ubiquitous [] bypass,
		// when the optimizer marked the choice) forward their records
		// straight to the merged output instead of paying two channels
		// and two goroutines per instantiation. st[i].in == nil marks an
		// elided branch. The per-branch input links and the dispatch
		// score cache share one scratch slice (one allocation per
		// instantiation, and star-unrolled choices instantiate a lot).
		st := make([]branchState, len(branches))
		spawned := 0
		for _, b := range branches {
			if !(elide && b.kind == kindIdentity) {
				spawned++
			}
		}
		coll := newCollector(env, out, spawned+1) // +1: the dispatcher
		for i, b := range branches {
			if elide && b.kind == kindIdentity {
				continue
			}
			st[i].in = env.newLink()
			bo := env.newLink()
			b.spawn(env, st[i].in, bo)
			env.start(func() { coll.drainInto(bo) })
		}
		// Control records traverse the first non-elided branch so they
		// keep FIFO order with the data records routed there; they bypass
		// straight to the merge only when every branch is the (elided)
		// identity — whichever branch index 0 happens to be.
		var ctrlIn *stream.Link
		for i := range st {
			if st[i].in != nil {
				ctrlIn = st[i].in
				break
			}
		}
		env.start(func() {
			defer coll.done()
			defer func() {
				for i := range st {
					if st[i].in != nil {
						env.closeLink(st[i].in)
					}
				}
			}()
			cursors := make([]int, ncursors) // round-robin tie cursors
			for {
				r, ok := env.recv(in)
				if !ok {
					return
				}
				if !r.IsData() {
					if ctrlIn == nil {
						if !coll.send(r) {
							return
						}
					} else if !env.send(ctrlIn, r) {
						return
					}
					continue
				}
				best := pickBranch(branches, tree, st, cursors, r)
				if best < 0 {
					env.reportRT(e.Name(), ErrCatNoMatch, r.String(), fmt.Errorf(
						"record %s matches no branch input type", r))
					// The dropped record is dead; its delivery completes
					// here. Reclaim it.
					env.trackDrop(r)
					recycle(r)
					continue
				}
				if st[best].in == nil {
					if !coll.send(r) {
						return
					}
				} else if !env.send(st[best].in, r) {
					return
				}
			}
		})
	}
	return e
}

// branchState is per-instantiation dispatcher scratch shared by Choice and
// DetChoice: the branch's input link (nil for an elided identity branch)
// and the dispatch score cache.
type branchState struct {
	in    *stream.Link
	score int
}

// selNode is one node of a choice dispatcher's selector tree. The tree
// exists so a flattened choice routes records exactly as the nested one it
// replaced: best-match dispatch composes (a nest's score is the best of its
// leaves' — the union type's BestMatch), but round-robin tie-breaking does
// not, because every nesting level keeps its own cursor that only advances
// for records it actually tied on. A leaf node names a branch index; a
// group node holds the sub-choices of one original nesting level plus the
// index of its cursor in the dispatcher's per-instantiation cursor slice.
// Choice's own tree is a single group over all leaves, which reproduces the
// historical flat round-robin.
type selNode struct {
	leaf int // branch index, or -1 for a group
	kids []selNode
	id   int // cursor slot (groups only)
}

// flatSelTree is the selector tree of an unnested n-way choice: one group,
// one cursor.
func flatSelTree(n int) (*selNode, int) {
	kids := make([]selNode, n)
	for i := range kids {
		kids[i] = selNode{leaf: i}
	}
	return &selNode{leaf: -1, kids: kids}, 1
}

// score returns the node's dispatch score for the cached leaf scores: a
// leaf's own, a group's best — exactly BestMatch against the nest's union
// input type, since a union type's best match is the best over its members.
func (n *selNode) score(st []branchState) int {
	if n.leaf >= 0 {
		return st[n.leaf].score
	}
	best := -1
	for i := range n.kids {
		if s := n.kids[i].score(st); s > best {
			best = s
		}
	}
	return best
}

// pick returns the winning branch index for the cached scores, advancing
// each level's round-robin cursor exactly as the equivalent nested
// dispatchers would: ties are counted among this level's best-scoring kids
// only, the cursor moves only when there is an actual tie, and only the
// chosen kid is descended into. Returns -1 when nothing matches.
func (n *selNode) pick(st []branchState, cursors []int) int {
	for {
		if n.leaf >= 0 {
			if st[n.leaf].score < 0 {
				return -1
			}
			return n.leaf
		}
		best, bestScore, ties := -1, -1, 0
		for i := range n.kids {
			s := n.kids[i].score(st)
			if s > bestScore {
				best, bestScore, ties = i, s, 1
			} else if s == bestScore && s >= 0 {
				ties++
			}
		}
		if best < 0 {
			return -1
		}
		if ties > 1 {
			k := cursors[n.id] % ties
			cursors[n.id]++
			for i := range n.kids {
				if n.kids[i].score(st) == bestScore {
					if k == 0 {
						best = i
						break
					}
					k--
				}
			}
		}
		n = &n.kids[best]
	}
}

// pickBranch scores every leaf once (BestMatch per branch, cached in st)
// and resolves dispatch through the selector tree. Shared by Choice and
// DetChoice.
func pickBranch(branches []*Entity, tree *selNode, st []branchState, cursors []int, r *record.Record) int {
	for i, b := range branches {
		_, s := b.sig.In.BestMatch(r)
		st[i].score = s
	}
	return tree.pick(st, cursors)
}

// combName renders a combinator name like (a|b|c) lazily.
func combName(branches []*Entity, sep string) string {
	name := "("
	for i, b := range branches {
		if i > 0 {
			name += sep
		}
		name += b.Name()
	}
	return name + ")"
}

// Star builds the serial replication A*exit, conceptually an infinite chain
// A..A..A..… tapped before every replica: a record matching the exit
// pattern leaves the network at the tap; any other record enters the next
// replica. Replicas are instantiated lazily, and — as the paper stresses —
// the star never feeds records back; it unrolls.
//
// Under a dynamic placement policy (Options.Placer or Env.AtPolicy with
// RoundRobin/LeastLoaded), each unfolded replica is placed at the moment it
// is instantiated — the stage depth is the dispatch key — so a deep star's
// box executions spread over the platform instead of piling onto the node
// the star happened to be spawned on. Records crossing into and out of a
// remotely placed replica are accounted against the platform's transfer
// model, hop by hop.
func Star(a *Entity, exit *rtype.Pattern) *Entity {
	inT := a.sig.In.Union(rtype.NewType(exit.Variant))
	return &Entity{
		nameFn: func() string { return fmt.Sprintf("(%s*%s)", a.Name(), exit) },
		sig:    rtype.NewSignature(inT, rtype.NewType(exit.Variant)),
		kids:   []*Entity{a},
		// Records only leave through the exit tap, so the output type
		// holds structurally even when the operand's does not.
		detDepth: a.detDepth,
		rebuild:  func(kids []*Entity) *Entity { return Star(kids[0], exit) },
		spawn: func(env *Env, in, out *stream.Link) {
			coll := newCollector(env, out, 1)
			env.start(func() { starStage(env, a, exit, in, coll, 0, env.node) })
		},
	}
}

// starStage is one unfolding of a star: the tap in front of replica k (the
// depth). It emits exit-matching records to the shared collector and lazily
// creates replica k plus the next stage when the first non-exit record
// arrives. inNode is the node the stage's input records are produced on
// (the previous replica's placement); records it receives from there, and
// records it dispatches to a replica placed elsewhere, are charged to the
// platform's transfer model.
func starStage(env *Env, a *Entity, exit *rtype.Pattern, in *stream.Link, coll *collector, depth, inNode int) {
	defer coll.done()
	var instIn *stream.Link
	instNode := env.node
	defer func() {
		if instIn != nil {
			env.closeLink(instIn)
		}
	}()
	for {
		r, ok := env.recv(in)
		if !ok {
			return
		}
		if r.IsData() {
			// The record travelled from the producing replica's node to
			// this tap.
			env.transfer(inNode, env.node, r)
		}
		if !r.IsData() || exit.Matches(r) {
			if !coll.send(r) {
				return
			}
			continue
		}
		if instIn == nil {
			instIn = env.newLink()
			instOut := env.newLink()
			instEnv := env
			if env.dynamicPlacer() != nil {
				var scratch []int
				instNode = env.place(depth, &scratch)
				instEnv = env.At(instNode)
			}
			a.spawn(instEnv, instIn, instOut)
			coll.add(1)
			env.start(func() { starStage(env, a, exit, instOut, coll, depth+1, instNode) })
		}
		env.transfer(env.node, instNode, r)
		if !env.send(instIn, r) {
			return
		}
	}
}

// Split builds the indexed parallel replication A!<tag>: one replica of A
// per distinct value of the tag, instantiated on demand; every incoming
// record must carry the tag and is routed to the replica selected by its
// value. Outputs merge nondeterministically.
func Split(a *Entity, tag string) *Entity {
	return splitImpl(a, tag,
		func() string { return fmt.Sprintf("(%s!<%s>)", a.Name(), tag) }, false)
}

// SplitAt builds the indexed dynamic placement A!@<tag> from Distributed
// S-Net: like Split, but each replica is instantiated on a compute node,
// and records are accounted as transferred to that node on entry and back
// on exit.
//
// Which node a replica lands on is resolved at dispatch time by the
// placement policy (Options.Placer, overridable per subtree with
// Env.AtPolicy). The default Static policy keeps the pre-stamped-tag
// convention — the tag value is the node, modulo the platform's node
// count. RoundRobin and LeastLoaded make the node a runtime decision; the
// tag then only identifies the replica. Under a dynamic policy the index
// tag itself becomes optional: a record arriving without it is dispatched
// through a fresh single-shot replica on the policy-chosen node — the
// splitter emits untagged work and the scheduler places it. (With the
// Static policy an untagged record remains a runtime type error.)
func SplitAt(a *Entity, tag string) *Entity {
	return splitImpl(a, tag,
		func() string { return fmt.Sprintf("(%s!@<%s>)", a.Name(), tag) }, true)
}

// splitImpl implements both Split and SplitAt; placed is false for the
// non-placing variant.
func splitImpl(a *Entity, tag string, nameFn func() string, placed bool) *Entity {
	// The input type is A's input type with the index tag added to every
	// variant (every incoming record must carry the tag).
	inT := rtype.NewType()
	for _, v := range a.sig.In.Variants() {
		inT.AddVariant(v.Copy().Add(rtype.T(tag)))
	}
	if inT.NumVariants() == 0 {
		inT.AddVariant(rtype.NewVariant(rtype.T(tag)))
	}
	tagSym := record.Intern(tag)
	e := &Entity{
		nameFn:   nameFn,
		sig:      rtype.NewSignature(inT, a.sig.Out),
		kids:     []*Entity{a},
		detDepth: a.detDepth,
		looseOut: a.looseOut,
	}
	e.rebuild = func(kids []*Entity) *Entity {
		if placed {
			return SplitAt(kids[0], tag)
		}
		return Split(kids[0], tag)
	}
	e.spawn = func(env *Env, in, out *stream.Link) {
		coll := newCollector(env, out, 1)
		env.start(func() {
			defer coll.done()
			type replica struct {
				in   *stream.Link
				node int
			}
			instances := make(map[int]replica)
			defer func() {
				for _, inst := range instances {
					env.closeLink(inst.in)
				}
			}()
			var loadScratch []int // reusable placement load snapshot
			untagged := 0         // dispatch sequence for untagged records
			dynPlacer := env.dynamicPlacer() != nil
			// startReturn accounts a replica's return path: records
			// leaving the replica travel back to the split's node, a
			// whole batch per hop so the platform amortizes per-message
			// framing and per-hop latency.
			startReturn := func(node int, instOut *stream.Link) {
				coll.add(1)
				if node == env.node {
					env.start(func() { coll.drainInto(instOut) })
					return
				}
				env.start(func() {
					defer coll.done()
					for {
						b, ok := instOut.RecvBatch(env.done)
						if !ok {
							return
						}
						env.transferBatch(node, env.node, b.Recs)
						if !coll.out.SendBatch(b, env.done) {
							return
						}
					}
				})
			}
			// ensure lazily instantiates the pinned replica for tag value
			// v, resolving its node through the placement policy the
			// moment the first record for it is dispatched.
			ensure := func(v int) replica {
				inst, ok := instances[v]
				if ok {
					return inst
				}
				inst = replica{in: env.newLink(), node: env.node}
				instEnv := env
				if placed {
					inst.node = env.place(v, &loadScratch)
					instEnv = env.At(inst.node)
				}
				instances[v] = inst
				instOut := env.newLink()
				a.spawn(instEnv, inst.in, instOut)
				startReturn(inst.node, instOut)
				return inst
			}
			// dispatchUntagged routes one record the splitter left
			// unplaced: a fresh single-shot replica on the node the
			// policy picks now, fed exactly this record and closed, so
			// every untagged unit of work is independently schedulable
			// (and, with work stealing, independently migratable). The
			// per-unit replica is the cost of that freedom — untagged
			// dispatch is built for coarse-grained units like the
			// raytracer's sections, not for fine-grained record streams.
			dispatchUntagged := func(r *record.Record) bool {
				node := env.place(untagged, &loadScratch)
				untagged++
				instIn := env.newLink()
				instOut := env.newLink()
				a.spawn(env.At(node), instIn, instOut)
				startReturn(node, instOut)
				// One record, one hop — accounted like starStage's and
				// the steal scheduler's single-record moves.
				env.transfer(env.node, node, r)
				if !env.send(instIn, r) {
					return false
				}
				env.closeLink(instIn)
				return true
			}
			// The dispatcher routes whole input batches, forwarding each
			// run of consecutive same-destination records as one unit:
			// one platform transfer and one link operation per run,
			// stream order fully preserved, no per-batch allocation. A
			// workload whose index tags arrive value-interleaved still
			// pays one message per record; one that blocks them (or whose
			// replicas see bursts) amortizes automatically.
			for {
				b, ok := in.RecvBatch(env.done)
				if !ok {
					return
				}
				recs := b.Recs
				i := 0
				for i < len(recs) {
					r := recs[i]
					if !r.IsData() {
						if !coll.send(r) {
							return
						}
						i++
						continue
					}
					v, ok := r.TagSym(tagSym)
					if !ok {
						if placed && dynPlacer {
							if !dispatchUntagged(r) {
								return
							}
							i++
							continue
						}
						env.reportRT(e.Name(), ErrCatNoMatch, r.String(), fmt.Errorf(
							"record %s lacks index tag <%s>", r, tag))
						// The dropped record is dead; its delivery
						// completes here. Reclaim it.
						env.trackDrop(r)
						recycle(r)
						i++
						continue
					}
					j := i + 1
					for j < len(recs) && recs[j].IsData() {
						v2, ok2 := recs[j].TagSym(tagSym)
						if !ok2 || v2 != v {
							break
						}
						j++
					}
					run := recs[i:j]
					inst := ensure(v)
					if placed {
						env.transferBatch(env.node, inst.node, run)
					}
					if !inst.in.SendMany(run, env.done) {
						return
					}
					i = j
				}
				stream.FreeBatch(b)
			}
		})
	}
	return e
}

// At builds the static placement A@node from Distributed S-Net: the operand
// executes on the given compute node; records are accounted as transferred
// to that node on entry and back on exit.
func At(a *Entity, node int) *Entity {
	return &Entity{
		nameFn:   func() string { return fmt.Sprintf("(%s@%d)", a.Name(), node) },
		sig:      a.sig,
		kids:     []*Entity{a},
		detDepth: a.detDepth,
		looseOut: a.looseOut,
		rebuild:  func(kids []*Entity) *Entity { return At(kids[0], node) },
		spawn: func(env *Env, in, out *stream.Link) {
			target := node
			if n := env.Nodes(); n > 0 {
				target = ((node % n) + n) % n
			}
			innerIn := env.newLink()
			innerOut := env.newLink()
			// Both relays move whole batches: one platform transfer and
			// one link operation per batch, not per record.
			env.start(func() {
				defer env.closeLink(innerIn)
				for {
					b, ok := in.RecvBatch(env.done)
					if !ok {
						return
					}
					env.transferBatch(env.node, target, b.Recs)
					if !innerIn.SendBatch(b, env.done) {
						return
					}
				}
			})
			a.spawn(env.At(target), innerIn, innerOut)
			env.start(func() {
				defer env.closeLink(out)
				for {
					b, ok := innerOut.RecvBatch(env.done)
					if !ok {
						return
					}
					env.transferBatch(target, env.node, b.Recs)
					if !out.SendBatch(b, env.done) {
						return
					}
				}
			})
		},
	}
}

// FeedbackStar is an extension beyond the paper's star: a bounded feedback
// variant in which non-exit output records of the operand are fed back to
// the operand's input instead of unrolling a new replica. It exists for the
// ablation benchmark comparing unrolling against feedback (DESIGN.md); the
// compiler never emits it. Deadlock-freedom is ensured by an unbounded
// internal queue.
//
// Termination does not assume the operand preserves record counts: a box
// may consume a record without emitting anything, or emit several exit
// records per input. Instead of per-record accounting, shutdown drains in
// generations — once the external input is closed and the queue is empty,
// the operand's input is closed; the operand flushes all in-flight work and
// closes its output (the universal S-Net quiescence signal); any feedback
// records that emerged during the flush go through a freshly instantiated
// operand, repeating until a flush produces no feedback. Operands must be
// stateless across records (boxes, filters, compositions thereof): a
// partially filled synchrocell would lose its storage at a generation
// boundary.
func FeedbackStar(a *Entity, exit *rtype.Pattern) *Entity {
	inT := a.sig.In.Union(rtype.NewType(exit.Variant))
	return &Entity{
		nameFn: func() string { return fmt.Sprintf("(%s*fb%s)", a.Name(), exit) },
		sig:    rtype.NewSignature(inT, rtype.NewType(exit.Variant)),
		kids:   []*Entity{a},
		// Like Star: only exit-matching records leave.
		detDepth: a.detDepth,
		rebuild:  func(kids []*Entity) *Entity { return FeedbackStar(kids[0], exit) },
		spawn: func(env *Env, in, out *stream.Link) {
			var mu sync.Mutex
			var queue []*record.Record // unbounded feedback queue
			inClosed := false
			kick := make(chan struct{}, 1)
			poke := func() {
				select {
				case kick <- struct{}{}:
				default:
				}
			}
			// Out has three kinds of senders — intake, per-generation
			// outlets, the feeder's lifetime — so its close must be gated
			// on all of them signing off (a direct close could race a
			// sender's non-blocking fast path during Stop). The collector
			// provides exactly that discipline. Initial producers: intake,
			// feeder, first outlet.
			coll := newCollector(env, out, 3)

			// Intake: external exit records leave immediately; everything
			// else joins the queue. Runs to input close, so once inClosed
			// is observed no further intake sends to out can occur.
			env.start(func() {
				defer coll.done()
				for {
					r, ok := env.recv(in)
					if !ok {
						break
					}
					if !r.IsData() || exit.Matches(r) {
						if !coll.send(r) {
							break
						}
						continue
					}
					mu.Lock()
					queue = append(queue, r)
					mu.Unlock()
					poke()
				}
				mu.Lock()
				inClosed = true
				mu.Unlock()
				poke()
			})

			// Outlet (one per operand generation): exit records flow out,
			// feedback records rejoin the queue. Closes done when the
			// generation's output is exhausted. The caller registers the
			// outlet with the collector before starting it.
			startOutlet := func(src *stream.Link, done chan struct{}) {
				env.start(func() {
					defer coll.done()
					defer close(done)
					for {
						r, ok := env.recv(src)
						if !ok {
							return
						}
						if r.IsData() && !exit.Matches(r) {
							mu.Lock()
							queue = append(queue, r)
							mu.Unlock()
							poke()
							continue
						}
						if !coll.send(r) {
							return
						}
					}
				})
			}

			// Feeder: owns the operand's input; moves queued records into
			// the operand and runs the generation-drain shutdown.
			env.start(func() {
				defer coll.done()
				instIn := env.newLink()
				instOut := env.newLink()
				a.spawn(env, instIn, instOut)
				outletDone := make(chan struct{})
				startOutlet(instOut, outletDone)
				for {
					for {
						mu.Lock()
						if len(queue) > 0 {
							r := queue[0]
							queue = queue[1:]
							mu.Unlock()
							if !env.send(instIn, r) {
								return
							}
							continue
						}
						quiesce := inClosed
						mu.Unlock()
						if !quiesce {
							break
						}
						// Shutdown round: close the operand and wait for
						// it to flush everything still in flight.
						env.closeLink(instIn)
						select {
						case <-outletDone:
						case <-env.done:
							return
						}
						mu.Lock()
						empty := len(queue) == 0
						mu.Unlock()
						if empty {
							return
						}
						// The flush produced feedback; run it through a
						// fresh operand instance. The feeder is itself a
						// registered producer, so the add cannot race the
						// collector's close.
						instIn = env.newLink()
						instOut = env.newLink()
						a.spawn(env, instIn, instOut)
						coll.add(1)
						outletDone = make(chan struct{})
						startOutlet(instOut, outletDone)
					}
					select {
					case <-kick:
					case <-env.done:
						return
					}
				}
			})
		},
	}
}
