package core

import (
	"strings"

	"snet/internal/record"
	"snet/internal/rtype"
	"snet/internal/stream"
)

// NewSync builds a synchrocell [| p1, p2, ... |] — the only stateful entity
// in S-Net. The cell holds the first record matching each pattern; once
// every pattern has been matched, the stored records are merged into a
// single record (labels of records matched against earlier patterns take
// priority on overlap) which is released to the output stream. After
// firing, the cell becomes the identity: all further records pass through
// unchanged. Records that match no unfilled pattern also pass through
// unchanged.
//
// If the input stream ends before the cell has fired, the stored records
// are discarded (the reference runtime's behaviour at network termination)
// unless Options.FlushSyncOnClose is set, in which case they are flushed to
// the output in storage order.
func NewSync(patterns ...*rtype.Pattern) *Entity {
	if len(patterns) < 2 {
		panic("core.NewSync: a synchrocell needs at least two patterns")
	}
	inT := rtype.NewType()
	merged := rtype.NewVariant()
	for _, p := range patterns {
		inT.AddVariant(p.Variant)
		merged = merged.Union(p.Variant)
	}
	outT := inT.Union(rtype.NewType(merged))
	return &Entity{
		nameFn: func() string { return syncName(patterns) },
		sig:    rtype.NewSignature(inT, outT),
		kind:   kindSync,
		// Records matching no unfilled pattern pass through unchanged —
		// possibly outside the declared output type — so downstream
		// signature-driven rewrites (branch pruning) must not trust it.
		looseOut: true,
		spawn: func(env *Env, in, out *stream.Link) {
			env.start(func() {
				defer env.closeLink(out)
				stored := make([]*record.Record, len(patterns))
				filled := 0
				fired := false
				// Storage discarded at close (no flush, or a stopped
				// instance mid-flush) is dead — the cell is its only
				// owner — so it goes back to the pool instead of leaking.
				// The termination discard is sanctioned (the reference
				// runtime's behaviour), so the deliveries complete here —
				// except under Stop, where discarded records stay
				// unacknowledged on purpose: a recovery replays them.
				defer func() {
					stopped := false
					select {
					case <-env.done:
						stopped = true
					default:
					}
					for i, s := range stored {
						if s != nil {
							if !stopped {
								env.trackDrop(s)
							}
							recycle(s)
							stored[i] = nil
						}
					}
				}()
				for {
					r, ok := env.recv(in)
					if !ok {
						break
					}
					if !r.IsData() || fired {
						if !env.send(out, r) {
							return
						}
						continue
					}
					idx := -1
					for i, p := range patterns {
						if stored[i] == nil && p.Matches(r) {
							idx = i
							break
						}
					}
					if idx < 0 {
						if !env.send(out, r) {
							return
						}
						continue
					}
					stored[idx] = r
					filled++
					if filled == len(patterns) {
						m := stored[0].Copy()
						for _, s := range stored[1:] {
							m.Merge(s)
						}
						fired = true
						// The stored records died in the merge; recycle
						// them (field values flow on by reference). The
						// merged record carries stored[0]'s delivery
						// lineage (Copy); the others' deliveries complete
						// here — their labels flowed into m, replaying
						// them would double the contribution.
						for i, s := range stored {
							if i > 0 {
								env.trackDrop(s)
							}
							recycle(s)
							stored[i] = nil
						}
						if !env.send(out, m) {
							return
						}
					}
				}
				if !fired && env.opts.FlushSyncOnClose {
					for i, s := range stored {
						if s != nil {
							if !env.send(out, s) {
								return
							}
							stored[i] = nil
						}
					}
				}
			})
		},
	}
}

func syncName(patterns []*rtype.Pattern) string {
	parts := make([]string, len(patterns))
	for i, p := range patterns {
		parts[i] = p.String()
	}
	return "[|" + strings.Join(parts, ", ") + "|]"
}
