package record

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestNewIsEmptyData(t *testing.T) {
	r := New()
	if !r.IsData() {
		t.Fatalf("New() kind = %v, want Data", r.Kind())
	}
	if r.NumFields() != 0 || r.NumTags() != 0 || r.NumBTags() != 0 {
		t.Fatalf("New() not empty: %s", r)
	}
}

func TestTriggerKind(t *testing.T) {
	r := NewTrigger()
	if r.IsData() {
		t.Fatal("trigger record reported as data")
	}
	if got := r.String(); got != "{*trigger*}" {
		t.Fatalf("trigger String() = %q", got)
	}
}

func TestSetGetField(t *testing.T) {
	r := New().SetField("a", 42).SetField("b", "hello")
	if v, ok := r.Field("a"); !ok || v != 42 {
		t.Fatalf("Field(a) = %v,%v", v, ok)
	}
	if v, ok := r.Field("b"); !ok || v != "hello" {
		t.Fatalf("Field(b) = %v,%v", v, ok)
	}
	if _, ok := r.Field("c"); ok {
		t.Fatal("Field(c) unexpectedly present")
	}
}

func TestSetGetTag(t *testing.T) {
	r := New().SetTag("node", 3)
	if v, ok := r.Tag("node"); !ok || v != 3 {
		t.Fatalf("Tag(node) = %v,%v", v, ok)
	}
	if _, ok := r.Tag("cpu"); ok {
		t.Fatal("Tag(cpu) unexpectedly present")
	}
}

func TestSetGetBTag(t *testing.T) {
	r := New().SetBTag("idx", 7)
	if v, ok := r.BTag("idx"); !ok || v != 7 {
		t.Fatalf("BTag(idx) = %v,%v", v, ok)
	}
	if !r.HasBTag("idx") || r.HasBTag("other") {
		t.Fatal("HasBTag wrong")
	}
}

func TestOverride(t *testing.T) {
	r := New().SetTag("t", 1).SetTag("t", 2)
	if v, _ := r.Tag("t"); v != 2 {
		t.Fatalf("tag override failed: %d", v)
	}
}

func TestMustFieldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustField on absent label did not panic")
		}
	}()
	New().MustField("missing")
}

func TestMustTagPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustTag on absent label did not panic")
		}
	}()
	New().MustTag("missing")
}

func TestMustAccessors(t *testing.T) {
	r := New().SetField("f", "x").SetTag("t", 9)
	if r.MustField("f") != "x" {
		t.Fatal("MustField wrong value")
	}
	if r.MustTag("t") != 9 {
		t.Fatal("MustTag wrong value")
	}
}

func TestDelete(t *testing.T) {
	r := New().SetField("a", 1).SetTag("t", 2).SetBTag("b", 3)
	r.DeleteField("a")
	r.DeleteTag("t")
	r.DeleteBTag("b")
	if r.NumFields()+r.NumTags()+r.NumBTags() != 0 {
		t.Fatalf("delete left residue: %s", r)
	}
}

func TestCopyIndependence(t *testing.T) {
	r := New().SetField("a", 1).SetTag("t", 5)
	c := r.Copy()
	c.SetField("a", 2).SetTag("t", 6).SetField("new", 3)
	if v, _ := r.Field("a"); v != 1 {
		t.Fatal("copy mutated original field")
	}
	if v, _ := r.Tag("t"); v != 5 {
		t.Fatal("copy mutated original tag")
	}
	if r.HasField("new") {
		t.Fatal("copy added field to original")
	}
}

func TestCopyPreservesKind(t *testing.T) {
	if NewTrigger().Copy().IsData() {
		t.Fatal("copy lost Trigger kind")
	}
}

func TestInheritFrom(t *testing.T) {
	src := New().SetField("a", 1).SetField("b", 2).SetTag("t", 3).SetBTag("bt", 4)
	dst := New().SetField("b", 99)
	dst.InheritFrom(src)
	if v, _ := dst.Field("a"); v != 1 {
		t.Fatal("field a not inherited")
	}
	if v, _ := dst.Field("b"); v != 99 {
		t.Fatal("override rule violated: existing label replaced")
	}
	if v, _ := dst.Tag("t"); v != 3 {
		t.Fatal("tag not inherited")
	}
	if dst.HasBTag("bt") {
		t.Fatal("binding tag must not flow-inherit")
	}
}

func TestInheritFromExcept(t *testing.T) {
	src := New().SetField("a", 1).SetField("keep", 2).SetTag("t", 3).SetTag("u", 4)
	dst := New()
	dst.InheritFromExcept(src,
		[]Sym{Intern("a")},
		[]Sym{Intern("t")})
	if dst.HasField("a") {
		t.Fatal("consumed field inherited")
	}
	if dst.HasTag("t") {
		t.Fatal("consumed tag inherited")
	}
	if !dst.HasField("keep") || !dst.HasTag("u") {
		t.Fatal("unconsumed labels not inherited")
	}
}

func TestMergePriority(t *testing.T) {
	a := New().SetField("pic", "A").SetTag("cnt", 1)
	b := New().SetField("pic", "B").SetField("chunk", "C").SetBTag("i", 1)
	a.Merge(b)
	if v, _ := a.Field("pic"); v != "A" {
		t.Fatal("merge overrode earlier binding")
	}
	if v, _ := a.Field("chunk"); v != "C" {
		t.Fatal("merge dropped new field")
	}
	if !a.HasBTag("i") {
		t.Fatal("merge dropped btag")
	}
}

func TestEqual(t *testing.T) {
	a := New().SetField("x", 1).SetTag("t", 2)
	b := New().SetTag("t", 2).SetField("x", 1)
	if !a.Equal(b) {
		t.Fatal("identical records not Equal")
	}
	b.SetTag("t", 3)
	if a.Equal(b) {
		t.Fatal("records with differing tag value Equal")
	}
	c := New().SetField("x", 1)
	if a.Equal(c) {
		t.Fatal("records with differing label sets Equal")
	}
	if a.Equal(NewTrigger()) {
		t.Fatal("data equal to trigger")
	}
}

func TestStringDeterministic(t *testing.T) {
	r := New().SetField("b", 1).SetField("a", 2).SetTag("z", 3).SetTag("y", 4).SetBTag("m", 5)
	want := "{a, b, <y=4>, <z=3>, <#m=5>}"
	for i := 0; i < 10; i++ {
		if got := r.String(); got != want {
			t.Fatalf("String() = %q, want %q", got, want)
		}
	}
}

func TestSortedLabelLists(t *testing.T) {
	r := New().SetField("c", 0).SetField("a", 0).SetField("b", 0)
	got := r.Fields()
	want := []string{"a", "b", "c"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Fields() = %v, want %v", got, want)
	}
}

func TestBuilder(t *testing.T) {
	r := Build().F("scene", "s").T("nodes", 8).T("tasks", 48).BT("i", 1).Rec()
	if !r.HasField("scene") || !r.HasTag("nodes") || !r.HasTag("tasks") || !r.HasBTag("i") {
		t.Fatalf("builder produced %s", r)
	}
}

// randomRecord generates an arbitrary record for property tests.
func randomRecord(rng *rand.Rand) *Record {
	r := New()
	n := rng.Intn(6)
	for i := 0; i < n; i++ {
		r.SetField(fmt.Sprintf("f%d", rng.Intn(8)), rng.Intn(100))
	}
	n = rng.Intn(6)
	for i := 0; i < n; i++ {
		r.SetTag(fmt.Sprintf("t%d", rng.Intn(8)), rng.Intn(100))
	}
	return r
}

func TestPropCopyEqual(t *testing.T) {
	f := func(seed int64) bool {
		r := randomRecord(rand.New(rand.NewSource(seed)))
		return r.Copy().Equal(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropInheritIdempotent(t *testing.T) {
	// Inheriting twice from the same source must equal inheriting once.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src, dst := randomRecord(rng), randomRecord(rng)
		once := dst.Copy().InheritFrom(src)
		twice := dst.Copy().InheritFrom(src).InheritFrom(src)
		return once.Equal(twice)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropInheritGrowsLabelSet(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		src, dst := randomRecord(rng), randomRecord(rng)
		before := dst.Copy()
		dst.InheritFrom(src)
		// every label of before must survive with its value
		for _, k := range before.Fields() {
			v, ok := dst.Field(k)
			bv, _ := before.Field(k)
			if !ok || v != bv {
				return false
			}
		}
		for _, k := range before.Tags() {
			v, ok := dst.Tag(k)
			bv, _ := before.Tag(k)
			if !ok || v != bv {
				return false
			}
		}
		// every label of src must now be present (value from either side)
		for _, k := range src.Fields() {
			if !dst.HasField(k) {
				return false
			}
		}
		for _, k := range src.Tags() {
			if !dst.HasTag(k) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPropMergeCommutesOnDisjoint(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := New().SetField(fmt.Sprintf("a%d", rng.Intn(5)), rng.Intn(10)).SetTag("ta", rng.Intn(10))
		b := New().SetField(fmt.Sprintf("b%d", rng.Intn(5)), rng.Intn(10)).SetTag("tb", rng.Intn(10))
		ab := a.Copy().Merge(b)
		ba := b.Copy().Merge(a)
		return ab.Equal(ba)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
