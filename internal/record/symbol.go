package record

import (
	"fmt"
	"sync"
)

// Sym is an interned label identifier: a dense, process-wide integer handle
// for a label name. All records, type variants and patterns address labels
// by Sym, so the hot path of the runtime — matching, flow inheritance,
// copying, wire sizing — compares and scans small integers instead of
// hashing strings.
//
// Syms are assigned in interning order, never reused, and are stable for the
// lifetime of the process. They carry no cross-process meaning: the wire
// codec (internal/dist) negotiates a label table per link instead of
// shipping raw Syms.
type Sym int32

// NoSym is the invalid symbol; LookupSym returns it for unknown names.
const NoSym Sym = -1

// symtab is the process-wide label symbol table. Reads (the overwhelmingly
// common case once a workload's label vocabulary is established) take only
// an RLock; inserting a new name takes the write lock.
var symtab = struct {
	sync.RWMutex
	ids   map[string]Sym
	names []string
}{ids: make(map[string]Sym)}

// Intern returns the symbol for a label name, assigning a fresh one on first
// use. Interning the same name always returns the same Sym.
func Intern(name string) Sym {
	symtab.RLock()
	id, ok := symtab.ids[name]
	symtab.RUnlock()
	if ok {
		return id
	}
	symtab.Lock()
	defer symtab.Unlock()
	if id, ok := symtab.ids[name]; ok {
		return id
	}
	id = Sym(len(symtab.names))
	symtab.ids[name] = id
	symtab.names = append(symtab.names, name)
	return id
}

// LookupSym returns the symbol for a name without interning it; ok is false
// (and the Sym is NoSym) when the name has never been interned. It never
// allocates, making it suitable for negative-lookup hot paths.
func LookupSym(name string) (Sym, bool) {
	symtab.RLock()
	id, ok := symtab.ids[name]
	symtab.RUnlock()
	if !ok {
		return NoSym, false
	}
	return id, true
}

// SymName returns the label name a symbol was interned from. It panics on a
// symbol that was never issued (including NoSym) — such a value cannot have
// come from Intern.
func SymName(id Sym) string {
	symtab.RLock()
	defer symtab.RUnlock()
	if id < 0 || int(id) >= len(symtab.names) {
		panic(fmt.Sprintf("record: SymName(%d): symbol never interned", id))
	}
	return symtab.names[id]
}

// NumSyms returns the number of interned label names. Symbols 0..NumSyms()-1
// are valid; the count only ever grows.
func NumSyms() int {
	symtab.RLock()
	defer symtab.RUnlock()
	return len(symtab.names)
}
