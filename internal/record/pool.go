package record

import "sync"

// Pool recycles Records so steady-state pipelines run allocation-free: a
// record drawn from a pool, populated within its inline entry capacity and
// later returned costs no heap allocation after warm-up.
//
// Pooling is strictly opt-in and rides on the stream ownership contract: a
// record may be returned to a pool only by its current single owner, after
// which the record must not be touched again. The runtime itself never
// pools records behind the caller's back — records emitted into a network
// outlive the entity that made them, so only the code that ultimately
// consumes a record (a sink box, a driver draining Run's output) knows when
// it is dead.
//
// A Pool is safe for concurrent use. The zero value is ready to use.
type Pool struct {
	p sync.Pool
}

// NewPool returns an empty record pool.
func NewPool() *Pool { return &Pool{} }

// Get returns an empty data record, recycling a previously Put record when
// one is available and allocating otherwise.
func (p *Pool) Get() *Record {
	if r, ok := p.p.Get().(*Record); ok {
		return r
	}
	return New()
}

// Put resets the record and makes it available to subsequent Get calls. The
// caller must own the record and must not use it afterwards. Put(nil) is a
// no-op.
func (p *Pool) Put(r *Record) {
	if r == nil {
		return
	}
	r.Reset()
	p.p.Put(r)
}
