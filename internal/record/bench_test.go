// Microbenchmarks and allocation-regression tests for the interned-label
// record representation. The Benchmark* functions track the ns/op and
// allocs/op of the coordination hot path's primitives; the *ZeroAlloc tests
// pin the contract the runtime relies on — matching and flow inheritance
// allocate nothing, and pooled records recycle allocation-free.
package record_test

import (
	"testing"

	"runtime/debug"

	"snet/internal/dist"
	"snet/internal/record"
	"snet/internal/rtype"
)

// benchSyms is the label vocabulary used throughout, interned once.
var (
	bScene = record.Intern("scene")
	bSect  = record.Intern("sect")
	bChunk = record.Intern("chunk")
	bNode  = record.Intern("node")
	bTasks = record.Intern("tasks")
	bFst   = record.Intern("fst")
)

// typicalRecord mirrors the paper's splitter output: two fields, two or
// three tags — within the record's inline entry capacity.
func typicalRecord() *record.Record {
	return record.New().
		SetFieldSym(bScene, "scene-payload").
		SetFieldSym(bSect, 7).
		SetTagSym(bNode, 3).
		SetTagSym(bTasks, 48).
		SetTagSym(bFst, 1)
}

func solverType() *rtype.Type {
	return rtype.NewType(
		rtype.NewVariant(rtype.F("chunk"), rtype.T("fst")),
		rtype.NewVariant(rtype.F("scene"), rtype.F("sect")),
	)
}

func BenchmarkSet(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := record.New().
			SetFieldSym(bScene, "s").
			SetFieldSym(bSect, i).
			SetTagSym(bNode, i).
			SetTagSym(bTasks, 48)
		_ = r
	}
}

// BenchmarkSetPooled is BenchmarkSet on a recycled record: the steady-state
// cost of building a message when the pipeline reuses its records.
func BenchmarkSetPooled(b *testing.B) {
	pool := record.NewPool()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r := pool.Get().
			SetFieldSym(bScene, "s").
			SetFieldSym(bSect, i).
			SetTagSym(bNode, i).
			SetTagSym(bTasks, 48)
		pool.Put(r)
	}
}

func BenchmarkMatch(b *testing.B) {
	t := solverType()
	r := typicalRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if v, s := t.BestMatch(r); s < 0 || v == nil {
			b.Fatal("no match")
		}
	}
}

func BenchmarkCopy(b *testing.B) {
	r := typicalRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = r.Copy()
	}
}

func BenchmarkInherit(b *testing.B) {
	src := typicalRecord()
	consumedF := []record.Sym{bScene, bSect}
	consumedT := []record.Sym{}
	dst := record.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst.Reset()
		dst.SetFieldSym(bChunk, "chunk")
		dst.InheritFromExcept(src, consumedF, consumedT)
	}
}

func BenchmarkMerge(b *testing.B) {
	a := record.New().SetFieldSym(bChunk, "c").SetTagSym(bFst, 1)
	c := record.New().SetFieldSym(bScene, "s").SetTagSym(bTasks, 48)
	dst := record.New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dst.Reset()
		dst.Merge(a).Merge(c)
	}
}

func BenchmarkShapeHash(b *testing.B) {
	r := typicalRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.SetTagSym(bNode, i) // value update: shape cache stays valid
		_ = r.ShapeHash()
	}
}

// BenchmarkMarshal measures the stateless (v1) wire encoding.
func BenchmarkMarshal(b *testing.B) {
	r := typicalRecord()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dist.Marshal(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshalNegotiated measures the v2 link codec in steady state,
// after the label table has been negotiated.
func BenchmarkMarshalNegotiated(b *testing.B) {
	r := typicalRecord()
	c := dist.NewCodec()
	if _, err := c.Marshal(r); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Marshal(r); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSizeNegotiated measures the transfer-accounting path: sizing a
// record against an already negotiated link table, as Cluster.Transfer
// does per hop.
func BenchmarkSizeNegotiated(b *testing.B) {
	r := typicalRecord()
	c := dist.NewCodec()
	c.Account(r)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = c.Account(r)
	}
}

// --- allocation-regression tests -----------------------------------------

// TestMatchZeroAlloc pins the tentpole contract: record matching — the
// per-record acceptance test of every box, branch and pattern — allocates
// nothing.
func TestMatchZeroAlloc(t *testing.T) {
	skipIfRace(t)
	ty := solverType()
	r := typicalRecord()
	n := testing.AllocsPerRun(1000, func() {
		if _, s := ty.BestMatch(r); s < 0 {
			t.Fatal("no match")
		}
		if !ty.Accepts(r) {
			t.Fatal("not accepted")
		}
	})
	if n != 0 {
		t.Fatalf("match allocated %.1f objects per run, want 0", n)
	}
}

// TestInheritZeroAlloc pins flow inheritance on a recycled record: once a
// record's entry storage has warmed up, inheriting (with consumed sets, as
// every box emission does) allocates nothing.
func TestInheritZeroAlloc(t *testing.T) {
	skipIfRace(t)
	src := typicalRecord()
	consumedF := []record.Sym{bScene, bSect}
	var consumedT []record.Sym
	dst := record.New()
	n := testing.AllocsPerRun(1000, func() {
		dst.Reset()
		dst.SetFieldSym(bChunk, "chunk")
		dst.InheritFromExcept(src, consumedF, consumedT)
	})
	if n != 0 {
		t.Fatalf("inherit allocated %.1f objects per run, want 0", n)
	}
	if !dst.HasTagSym(bTasks) || dst.HasFieldSym(bScene) {
		t.Fatalf("inherit result wrong: %s", dst)
	}
}

// TestPoolZeroAlloc pins the pooling contract: a Get/populate/Put cycle on
// a warmed pool allocates nothing. A GC cycle would legitimately drain the
// sync.Pool mid-measurement, so collection is paused for the assertion.
func TestPoolZeroAlloc(t *testing.T) {
	skipIfRace(t)
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	pool := record.NewPool()
	pool.Put(pool.Get())
	n := testing.AllocsPerRun(1000, func() {
		r := pool.Get()
		r.SetTagSym(bNode, 1).SetFieldSym(bChunk, "c")
		pool.Put(r)
	})
	if n != 0 {
		t.Fatalf("pooled round trip allocated %.1f objects per run, want 0", n)
	}
}

// TestCopyIsSingleAlloc documents the copy cost: one heap object for a
// record within its inline entry capacity.
func TestCopyIsSingleAlloc(t *testing.T) {
	skipIfRace(t)
	r := typicalRecord()
	n := testing.AllocsPerRun(1000, func() {
		_ = r.Copy()
	})
	if n != 1 {
		t.Fatalf("copy allocated %.1f objects per run, want 1", n)
	}
}
