//go:build !race

package record_test

import "testing"

func skipIfRace(t *testing.T) {}
