// Package record implements the S-Net communication quantum: the record.
//
// A record is a non-recursive set of label–value pairs. Labels are divided
// into fields, tags and binding tags:
//
//   - Fields carry values from the box-language domain (arbitrary Go values
//     here); they are entirely opaque to the coordination layer.
//   - Tags carry integer values that are accessible both to the coordination
//     layer and to boxes ("integers are the universal language of all
//     abstract machines").
//   - Binding tags (btags) behave like tags but are exempt from flow
//     inheritance; they are part of S-Net 2.0 (Language Report 2.0, TR 499)
//     and are provided for completeness.
//
// Records are the only kind of message that travels on S-Net streams. The
// runtime additionally uses control records (see Kind) to implement network
// unrolling and orderly shutdown; user code only ever observes data records.
package record

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates data records from runtime-internal control records.
type Kind uint8

const (
	// Data is an ordinary record carrying fields and tags.
	Data Kind = iota
	// Trigger is a control record used internally by the runtime (for
	// example to flush synchrocells at network shutdown). Triggers are
	// never delivered to boxes.
	Trigger
)

// Record is a set of label–value pairs. The zero value is not ready for
// use; construct records with New or Build.
//
// Records are passed by pointer through the network. A record must be
// treated as owned by exactly one entity at a time: an entity that wants to
// both forward a record and keep it must Copy it first. This mirrors the
// single-owner semantics of S-Net streams and keeps the runtime free of
// locks on the hot path.
type Record struct {
	kind   Kind
	fields map[string]any
	tags   map[string]int
	btags  map[string]int
}

// New returns an empty data record.
func New() *Record {
	return &Record{
		kind:   Data,
		fields: make(map[string]any),
		tags:   make(map[string]int),
		btags:  make(map[string]int),
	}
}

// NewTrigger returns a control record of kind Trigger.
func NewTrigger() *Record {
	r := New()
	r.kind = Trigger
	return r
}

// Kind reports whether the record is a data or control record.
func (r *Record) Kind() Kind { return r.kind }

// IsData reports whether the record is an ordinary data record.
func (r *Record) IsData() bool { return r.kind == Data }

// SetField binds the field label to value, overriding any previous binding.
// It returns the record to allow chaining.
func (r *Record) SetField(label string, value any) *Record {
	r.fields[label] = value
	return r
}

// SetTag binds the tag label to value, overriding any previous binding.
func (r *Record) SetTag(label string, value int) *Record {
	r.tags[label] = value
	return r
}

// SetBTag binds the binding-tag label to value.
func (r *Record) SetBTag(label string, value int) *Record {
	r.btags[label] = value
	return r
}

// Field returns the value bound to the field label.
func (r *Record) Field(label string) (any, bool) {
	v, ok := r.fields[label]
	return v, ok
}

// MustField returns the value bound to the field label and panics when the
// label is absent. It is intended for box bodies whose input type has been
// verified by the runtime.
func (r *Record) MustField(label string) any {
	v, ok := r.fields[label]
	if !ok {
		panic(fmt.Sprintf("record: field %q absent from %s", label, r))
	}
	return v
}

// Tag returns the value bound to the tag label.
func (r *Record) Tag(label string) (int, bool) {
	v, ok := r.tags[label]
	return v, ok
}

// MustTag returns the value bound to the tag label and panics when the label
// is absent.
func (r *Record) MustTag(label string) int {
	v, ok := r.tags[label]
	if !ok {
		panic(fmt.Sprintf("record: tag <%s> absent from %s", label, r))
	}
	return v
}

// BTag returns the value bound to the binding-tag label.
func (r *Record) BTag(label string) (int, bool) {
	v, ok := r.btags[label]
	return v, ok
}

// HasField reports whether the field label is present.
func (r *Record) HasField(label string) bool {
	_, ok := r.fields[label]
	return ok
}

// HasTag reports whether the tag label is present.
func (r *Record) HasTag(label string) bool {
	_, ok := r.tags[label]
	return ok
}

// HasBTag reports whether the binding-tag label is present.
func (r *Record) HasBTag(label string) bool {
	_, ok := r.btags[label]
	return ok
}

// DeleteField removes the field label if present.
func (r *Record) DeleteField(label string) { delete(r.fields, label) }

// DeleteTag removes the tag label if present.
func (r *Record) DeleteTag(label string) { delete(r.tags, label) }

// DeleteBTag removes the binding-tag label if present.
func (r *Record) DeleteBTag(label string) { delete(r.btags, label) }

// NumFields returns the number of field labels.
func (r *Record) NumFields() int { return len(r.fields) }

// NumTags returns the number of tag labels.
func (r *Record) NumTags() int { return len(r.tags) }

// NumBTags returns the number of binding-tag labels.
func (r *Record) NumBTags() int { return len(r.btags) }

// Fields returns the field labels in sorted order.
func (r *Record) Fields() []string { return sortedKeysAny(r.fields) }

// Tags returns the tag labels in sorted order.
func (r *Record) Tags() []string { return sortedKeysInt(r.tags) }

// BTags returns the binding-tag labels in sorted order.
func (r *Record) BTags() []string { return sortedKeysInt(r.btags) }

// VisitFields calls fn for every field binding, in unspecified order. It
// avoids the allocation and sort of Fields() for callers that only fold
// over the bindings (such as the wire codec's size accounting).
func (r *Record) VisitFields(fn func(label string, value any)) {
	for k, v := range r.fields {
		fn(k, v)
	}
}

// VisitTags calls fn for every tag binding, in unspecified order.
func (r *Record) VisitTags(fn func(label string, value int)) {
	for k, v := range r.tags {
		fn(k, v)
	}
}

// VisitBTags calls fn for every binding-tag binding, in unspecified order.
func (r *Record) VisitBTags(fn func(label string, value int)) {
	for k, v := range r.btags {
		fn(k, v)
	}
}

// Copy returns a deep copy of the record's label structure. Field values
// themselves are shared (they are opaque to the coordination layer, and
// boxes are stateless, so sharing is safe as long as boxes treat inputs as
// immutable — the same contract the paper imposes on C boxes).
func (r *Record) Copy() *Record {
	c := &Record{
		kind:   r.kind,
		fields: make(map[string]any, len(r.fields)),
		tags:   make(map[string]int, len(r.tags)),
		btags:  make(map[string]int, len(r.btags)),
	}
	for k, v := range r.fields {
		c.fields[k] = v
	}
	for k, v := range r.tags {
		c.tags[k] = v
	}
	for k, v := range r.btags {
		c.btags[k] = v
	}
	return c
}

// InheritFrom implements flow inheritance: every label of src that is not
// already present in r (of the same label class) is attached to r. Binding
// tags are exempt, per the S-Net language report. The receiver is returned.
//
// The "already present" test implements the override rule from the paper:
// "unless an identically labeled item is included in it already, a form of
// override".
func (r *Record) InheritFrom(src *Record) *Record {
	for k, v := range src.fields {
		if _, ok := r.fields[k]; !ok {
			r.fields[k] = v
		}
	}
	for k, v := range src.tags {
		if _, ok := r.tags[k]; !ok {
			r.tags[k] = v
		}
	}
	return r
}

// InheritFromExcept behaves like InheritFrom but never transfers labels
// listed in the consumed sets. It is used at box boundaries where the labels
// matched by the box input variant are considered consumed by the box.
func (r *Record) InheritFromExcept(src *Record, consumedFields, consumedTags map[string]bool) *Record {
	for k, v := range src.fields {
		if consumedFields[k] {
			continue
		}
		if _, ok := r.fields[k]; !ok {
			r.fields[k] = v
		}
	}
	for k, v := range src.tags {
		if consumedTags[k] {
			continue
		}
		if _, ok := r.tags[k]; !ok {
			r.tags[k] = v
		}
	}
	return r
}

// Merge unions other into r. Labels already bound in r win; this implements
// the synchrocell join where the record matched against the earlier pattern
// takes priority on overlapping labels. The receiver is returned.
func (r *Record) Merge(other *Record) *Record {
	for k, v := range other.fields {
		if _, ok := r.fields[k]; !ok {
			r.fields[k] = v
		}
	}
	for k, v := range other.tags {
		if _, ok := r.tags[k]; !ok {
			r.tags[k] = v
		}
	}
	for k, v := range other.btags {
		if _, ok := r.btags[k]; !ok {
			r.btags[k] = v
		}
	}
	return r
}

// Equal reports whether two records have identical label sets, identical tag
// values and identical (shallow-compared) field values.
func (r *Record) Equal(other *Record) bool {
	if r.kind != other.kind ||
		len(r.fields) != len(other.fields) ||
		len(r.tags) != len(other.tags) ||
		len(r.btags) != len(other.btags) {
		return false
	}
	for k, v := range r.fields {
		ov, ok := other.fields[k]
		if !ok || ov != v {
			return false
		}
	}
	for k, v := range r.tags {
		if ov, ok := other.tags[k]; !ok || ov != v {
			return false
		}
	}
	for k, v := range r.btags {
		if ov, ok := other.btags[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// String renders the record in S-Net style, e.g.
// {scene, sect, <node=3>, <tasks=48>}. Labels appear in sorted order so the
// output is deterministic.
func (r *Record) String() string {
	if r.kind == Trigger {
		return "{*trigger*}"
	}
	var parts []string
	for _, k := range r.Fields() {
		parts = append(parts, k)
	}
	for _, k := range r.Tags() {
		parts = append(parts, fmt.Sprintf("<%s=%d>", k, r.tags[k]))
	}
	for _, k := range r.BTags() {
		parts = append(parts, fmt.Sprintf("<#%s=%d>", k, r.btags[k]))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

func sortedKeysAny(m map[string]any) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedKeysInt(m map[string]int) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
