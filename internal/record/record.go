// Package record implements the S-Net communication quantum: the record.
//
// A record is a non-recursive set of label–value pairs. Labels are divided
// into fields, tags and binding tags:
//
//   - Fields carry values from the box-language domain (arbitrary Go values
//     here); they are entirely opaque to the coordination layer.
//   - Tags carry integer values that are accessible both to the coordination
//     layer and to boxes ("integers are the universal language of all
//     abstract machines").
//   - Binding tags (btags) behave like tags but are exempt from flow
//     inheritance; they are part of S-Net 2.0 (Language Report 2.0, TR 499)
//     and are provided for completeness.
//
// Records are the only kind of message that travels on S-Net streams. The
// runtime additionally uses control records (see Kind) to implement network
// unrolling and orderly shutdown; user code only ever observes data records.
//
// # Representation
//
// Label names are interned into a process-wide symbol table (see Sym); a
// record stores its bindings as slices of (Sym, value) entries sorted by
// symbol, with small inline backing arrays so a freshly built record of
// typical size is a single heap object. Matching against type variants,
// flow inheritance, merging and copying are merge-joins over the sorted
// entries: integer comparisons, no hashing, no allocation. A record also
// caches a hash of its label shape (ShapeHash) that is invalidated only
// when the label set changes, not when values are updated.
//
// The string-keyed API (SetField, Tag, ...) interns or looks up the label
// on every call; hot paths should intern once and use the Sym-keyed
// variants (SetFieldSym, TagSym, ...).
package record

import (
	"fmt"
	"sort"
	"strings"
)

// Kind discriminates data records from runtime-internal control records.
type Kind uint8

const (
	// Data is an ordinary record carrying fields and tags.
	Data Kind = iota
	// Trigger is a control record used internally by the runtime (for
	// example to flush synchrocells at network shutdown). Triggers are
	// never delivered to boxes.
	Trigger
)

// Inline entry capacities. Records within these bounds never allocate
// beyond the Record object itself; the bounds cover the paper's networks
// (at most a handful of labels per record) with room for combinator-added
// tags. Larger records transparently spill to heap-backed slices.
const (
	inlineFields = 4
	inlineTags   = 6
	inlineBTags  = 2
)

// fieldEntry is one field binding.
type fieldEntry struct {
	id  Sym
	val any
}

func (e fieldEntry) sym() Sym { return e.id }

// tagEntry is one tag or binding-tag binding.
type tagEntry struct {
	id  Sym
	val int
}

func (e tagEntry) sym() Sym { return e.id }

// Record is a set of label–value pairs. The zero value is not ready for
// use; construct records with New or Build, or recycle them with a Pool.
//
// Records are passed by pointer through the network. A record must be
// treated as owned by exactly one entity at a time: an entity that wants to
// both forward a record and keep it must Copy it first. This mirrors the
// single-owner semantics of S-Net streams and keeps the runtime free of
// locks on the hot path.
type Record struct {
	kind  Kind
	shape uint64 // cached shape hash; 0 means not computed

	// delivery is the at-least-once delivery id stamped by the runtime's
	// ingress journal (0 = untracked). It is runtime lineage metadata, not
	// a label: it never participates in matching, inheritance's override
	// rule, marshaling or Equal. Copy preserves it and InheritFromExcept
	// propagates it to derived records (unless they already carry one), so
	// every record descended from a journaled ingress record stays
	// attributable to its delivery id without per-entity bookkeeping.
	delivery uint64

	// Entries sorted by Sym; they alias the inline arrays below until they
	// outgrow them.
	fields []fieldEntry
	tags   []tagEntry
	btags  []tagEntry

	fbuf [inlineFields]fieldEntry
	tbuf [inlineTags]tagEntry
	bbuf [inlineBTags]tagEntry
}

// New returns an empty data record. The record and its inline entry storage
// are one heap allocation.
func New() *Record {
	r := &Record{kind: Data}
	r.fields = r.fbuf[:0]
	r.tags = r.tbuf[:0]
	r.btags = r.bbuf[:0]
	return r
}

// NewTrigger returns a control record of kind Trigger.
func NewTrigger() *Record {
	r := New()
	r.kind = Trigger
	return r
}

// Kind reports whether the record is a data or control record.
func (r *Record) Kind() Kind { return r.kind }

// IsData reports whether the record is an ordinary data record.
func (r *Record) IsData() bool { return r.kind == Data }

// Reset returns the record to the empty data state, releasing all value
// references while keeping its (possibly grown) entry storage for reuse.
// Pool.Put resets automatically; manual reuse may call Reset directly.
func (r *Record) Reset() *Record {
	r.kind = Data
	clear(r.fields)  // release field value references
	clear(r.fbuf[:]) // stale copies left behind when the slice spilled
	r.fields = r.fields[:0]
	r.tags = r.tags[:0]
	r.btags = r.btags[:0]
	r.shape = 0
	r.delivery = 0
	return r
}

// Delivery returns the record's at-least-once delivery id (0 = untracked).
func (r *Record) Delivery() uint64 { return r.delivery }

// SetDelivery stamps the record's delivery id. Only the runtime's ingress
// path (journal append, replay) should call it; derived records pick the id
// up automatically through Copy and flow inheritance.
func (r *Record) SetDelivery(id uint64) { r.delivery = id }

// searchEntries returns the first index with an id >= the key in a sorted
// entry slice.
func searchEntries[E interface{ sym() Sym }](s []E, id Sym) int {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid].sym() < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// setTagIn inserts or overrides a tag binding in a sorted entry slice,
// reporting whether a new label was inserted (shape change). setFieldIn is
// its fieldEntry twin; the pair must keep identical insertion logic
// (append fast path for ascending builds, binary search + shift insert
// otherwise).
func setTagIn(s []tagEntry, id Sym, v int) ([]tagEntry, bool) {
	if n := len(s); n == 0 || s[n-1].id < id {
		return append(s, tagEntry{id: id, val: v}), true
	}
	i := searchEntries(s, id)
	if s[i].id == id {
		s[i].val = v
		return s, false
	}
	s = append(s, tagEntry{})
	copy(s[i+1:], s[i:])
	s[i] = tagEntry{id: id, val: v}
	return s, true
}

// setFieldIn inserts or overrides a field binding; see setTagIn.
func setFieldIn(s []fieldEntry, id Sym, v any) ([]fieldEntry, bool) {
	if n := len(s); n == 0 || s[n-1].id < id {
		return append(s, fieldEntry{id: id, val: v}), true
	}
	i := searchEntries(s, id)
	if s[i].id == id {
		s[i].val = v
		return s, false
	}
	s = append(s, fieldEntry{})
	copy(s[i+1:], s[i:])
	s[i] = fieldEntry{id: id, val: v}
	return s, true
}

// SetFieldSym binds the field symbol to value, overriding any previous
// binding. It returns the record to allow chaining.
func (r *Record) SetFieldSym(id Sym, value any) *Record {
	var ins bool
	r.fields, ins = setFieldIn(r.fields, id, value)
	if ins {
		r.shape = 0
	}
	return r
}

// SetField binds the field label to value, overriding any previous binding.
// It returns the record to allow chaining.
func (r *Record) SetField(label string, value any) *Record {
	return r.SetFieldSym(Intern(label), value)
}

// SetTagSym binds the tag symbol to value.
func (r *Record) SetTagSym(id Sym, value int) *Record {
	var ins bool
	r.tags, ins = setTagIn(r.tags, id, value)
	if ins {
		r.shape = 0
	}
	return r
}

// SetTag binds the tag label to value, overriding any previous binding.
func (r *Record) SetTag(label string, value int) *Record {
	return r.SetTagSym(Intern(label), value)
}

// SetBTagSym binds the binding-tag symbol to value.
func (r *Record) SetBTagSym(id Sym, value int) *Record {
	var ins bool
	r.btags, ins = setTagIn(r.btags, id, value)
	if ins {
		r.shape = 0
	}
	return r
}

// SetBTag binds the binding-tag label to value.
func (r *Record) SetBTag(label string, value int) *Record {
	return r.SetBTagSym(Intern(label), value)
}

// FieldSym returns the value bound to the field symbol.
func (r *Record) FieldSym(id Sym) (any, bool) {
	s := r.fields
	i := searchEntries(s, id)
	if i < len(s) && s[i].id == id {
		return s[i].val, true
	}
	return nil, false
}

// Field returns the value bound to the field label.
func (r *Record) Field(label string) (any, bool) {
	id, ok := LookupSym(label)
	if !ok {
		return nil, false
	}
	return r.FieldSym(id)
}

// MustField returns the value bound to the field label and panics when the
// label is absent. It is intended for box bodies whose input type has been
// verified by the runtime.
func (r *Record) MustField(label string) any {
	v, ok := r.Field(label)
	if !ok {
		panic(fmt.Sprintf("record: field %q absent from %s", label, r))
	}
	return v
}

// TagSym returns the value bound to the tag symbol.
func (r *Record) TagSym(id Sym) (int, bool) {
	s := r.tags
	i := searchEntries(s, id)
	if i < len(s) && s[i].id == id {
		return s[i].val, true
	}
	return 0, false
}

// Tag returns the value bound to the tag label.
func (r *Record) Tag(label string) (int, bool) {
	id, ok := LookupSym(label)
	if !ok {
		return 0, false
	}
	return r.TagSym(id)
}

// MustTag returns the value bound to the tag label and panics when the label
// is absent.
func (r *Record) MustTag(label string) int {
	v, ok := r.Tag(label)
	if !ok {
		panic(fmt.Sprintf("record: tag <%s> absent from %s", label, r))
	}
	return v
}

// BTagSym returns the value bound to the binding-tag symbol.
func (r *Record) BTagSym(id Sym) (int, bool) {
	s := r.btags
	i := searchEntries(s, id)
	if i < len(s) && s[i].id == id {
		return s[i].val, true
	}
	return 0, false
}

// BTag returns the value bound to the binding-tag label.
func (r *Record) BTag(label string) (int, bool) {
	id, ok := LookupSym(label)
	if !ok {
		return 0, false
	}
	return r.BTagSym(id)
}

// HasFieldSym reports whether the field symbol is present.
func (r *Record) HasFieldSym(id Sym) bool {
	_, ok := r.FieldSym(id)
	return ok
}

// HasField reports whether the field label is present.
func (r *Record) HasField(label string) bool {
	_, ok := r.Field(label)
	return ok
}

// HasTagSym reports whether the tag symbol is present.
func (r *Record) HasTagSym(id Sym) bool {
	_, ok := r.TagSym(id)
	return ok
}

// HasTag reports whether the tag label is present.
func (r *Record) HasTag(label string) bool {
	_, ok := r.Tag(label)
	return ok
}

// HasBTagSym reports whether the binding-tag symbol is present.
func (r *Record) HasBTagSym(id Sym) bool {
	_, ok := r.BTagSym(id)
	return ok
}

// HasBTag reports whether the binding-tag label is present.
func (r *Record) HasBTag(label string) bool {
	_, ok := r.BTag(label)
	return ok
}

// deleteField removes the entry at a found index.
func (r *Record) deleteFieldAt(i int) {
	s := r.fields
	copy(s[i:], s[i+1:])
	s[len(s)-1] = fieldEntry{} // release the value reference
	r.fields = s[:len(s)-1]
	r.shape = 0
}

func deleteTagAt(s []tagEntry, i int) []tagEntry {
	copy(s[i:], s[i+1:])
	return s[:len(s)-1]
}

// DeleteFieldSym removes the field symbol if present.
func (r *Record) DeleteFieldSym(id Sym) {
	i := searchEntries(r.fields, id)
	if i < len(r.fields) && r.fields[i].id == id {
		r.deleteFieldAt(i)
	}
}

// DeleteField removes the field label if present.
func (r *Record) DeleteField(label string) {
	if id, ok := LookupSym(label); ok {
		r.DeleteFieldSym(id)
	}
}

// DeleteTagSym removes the tag symbol if present.
func (r *Record) DeleteTagSym(id Sym) {
	i := searchEntries(r.tags, id)
	if i < len(r.tags) && r.tags[i].id == id {
		r.tags = deleteTagAt(r.tags, i)
		r.shape = 0
	}
}

// DeleteTag removes the tag label if present.
func (r *Record) DeleteTag(label string) {
	if id, ok := LookupSym(label); ok {
		r.DeleteTagSym(id)
	}
}

// DeleteBTagSym removes the binding-tag symbol if present.
func (r *Record) DeleteBTagSym(id Sym) {
	i := searchEntries(r.btags, id)
	if i < len(r.btags) && r.btags[i].id == id {
		r.btags = deleteTagAt(r.btags, i)
		r.shape = 0
	}
}

// DeleteBTag removes the binding-tag label if present.
func (r *Record) DeleteBTag(label string) {
	if id, ok := LookupSym(label); ok {
		r.DeleteBTagSym(id)
	}
}

// NumFields returns the number of field labels.
func (r *Record) NumFields() int { return len(r.fields) }

// NumTags returns the number of tag labels.
func (r *Record) NumTags() int { return len(r.tags) }

// NumBTags returns the number of binding-tag labels.
func (r *Record) NumBTags() int { return len(r.btags) }

// Fields returns the field labels in sorted (name) order. It allocates; hot
// paths should use VisitFields or the Sym-based accessors instead.
func (r *Record) Fields() []string {
	names := symNames()
	ks := make([]string, len(r.fields))
	for i := range r.fields {
		ks[i] = names[r.fields[i].id]
	}
	sort.Strings(ks)
	return ks
}

// Tags returns the tag labels in sorted (name) order. It allocates.
func (r *Record) Tags() []string { return tagNames(r.tags) }

// BTags returns the binding-tag labels in sorted (name) order. It allocates.
func (r *Record) BTags() []string { return tagNames(r.btags) }

func tagNames(s []tagEntry) []string {
	names := symNames()
	ks := make([]string, len(s))
	for i := range s {
		ks[i] = names[s[i].id]
	}
	sort.Strings(ks)
	return ks
}

// VisitFields calls fn for every field binding, in symbol order. It avoids
// the allocation and name sort of Fields() for callers that only fold over
// the bindings (such as the wire codec's size accounting).
func (r *Record) VisitFields(fn func(label string, value any)) {
	names := symNames()
	for i := range r.fields {
		fn(names[r.fields[i].id], r.fields[i].val)
	}
}

// VisitTags calls fn for every tag binding, in symbol order.
func (r *Record) VisitTags(fn func(label string, value int)) {
	names := symNames()
	for i := range r.tags {
		fn(names[r.tags[i].id], r.tags[i].val)
	}
}

// VisitBTags calls fn for every binding-tag binding, in symbol order.
func (r *Record) VisitBTags(fn func(label string, value int)) {
	names := symNames()
	for i := range r.btags {
		fn(names[r.btags[i].id], r.btags[i].val)
	}
}

// VisitFieldSyms calls fn for every field binding in ascending symbol
// order, without touching the symbol table. It never allocates.
func (r *Record) VisitFieldSyms(fn func(id Sym, value any)) {
	for i := range r.fields {
		fn(r.fields[i].id, r.fields[i].val)
	}
}

// VisitTagSyms calls fn for every tag binding in ascending symbol order.
func (r *Record) VisitTagSyms(fn func(id Sym, value int)) {
	for i := range r.tags {
		fn(r.tags[i].id, r.tags[i].val)
	}
}

// VisitBTagSyms calls fn for every binding-tag binding in ascending symbol
// order.
func (r *Record) VisitBTagSyms(fn func(id Sym, value int)) {
	for i := range r.btags {
		fn(r.btags[i].id, r.btags[i].val)
	}
}

// HasAllFieldSyms reports whether every symbol of ids (which must be sorted
// ascending, as type variants keep them) is present among the record's
// fields. It is the field half of the subtype acceptance test and never
// allocates.
func (r *Record) HasAllFieldSyms(ids []Sym) bool {
	return hasAll(r.fields, ids)
}

// HasAllTagSyms reports whether every symbol of the sorted ids is present
// among the record's tags.
func (r *Record) HasAllTagSyms(ids []Sym) bool {
	return hasAll(r.tags, ids)
}

// HasAllBTagSyms reports whether every symbol of the sorted ids is present
// among the record's binding tags.
func (r *Record) HasAllBTagSyms(ids []Sym) bool {
	return hasAll(r.btags, ids)
}

// hasAll is a merge-scan of a sorted entry slice against a sorted symbol
// set.
func hasAll[E interface{ sym() Sym }](entries []E, ids []Sym) bool {
	if len(ids) > len(entries) {
		return false
	}
	j := 0
	for _, id := range ids {
		for j < len(entries) && entries[j].sym() < id {
			j++
		}
		if j >= len(entries) || entries[j].sym() != id {
			return false
		}
		j++
	}
	return true
}

// Copy returns a deep copy of the record's label structure. Field values
// themselves are shared (they are opaque to the coordination layer, and
// boxes are stateless, so sharing is safe as long as boxes treat inputs as
// immutable — the same contract the paper imposes on C boxes).
func (r *Record) Copy() *Record {
	c := &Record{kind: r.kind, shape: r.shape, delivery: r.delivery}
	c.fields = append(c.fbuf[:0], r.fields...)
	c.tags = append(c.tbuf[:0], r.tags...)
	c.btags = append(c.bbuf[:0], r.btags...)
	return c
}

// mergeMissing merges into dst every src entry whose symbol is neither
// already bound in dst nor listed in except (sorted ascending). Existing dst
// bindings always win — the override rule. It reports whether dst changed.
// The merge is a backward merge-join over the sorted slices; it allocates
// only if dst outgrows its capacity.
func mergeMissing[E interface{ sym() Sym }](dst, src []E, except []Sym) ([]E, bool) {
	// First pass: count the entries to insert.
	add := 0
	i, k := 0, 0
	for _, e := range src {
		id := e.sym()
		for i < len(dst) && dst[i].sym() < id {
			i++
		}
		if i < len(dst) && dst[i].sym() == id {
			continue
		}
		for k < len(except) && except[k] < id {
			k++
		}
		if k < len(except) && except[k] == id {
			continue
		}
		add++
	}
	if add == 0 {
		return dst, false
	}
	n := len(dst)
	var zero E
	for j := 0; j < add; j++ {
		dst = append(dst, zero)
	}
	// Backward merge; the except cursor also walks backward since the
	// queried symbols only decrease.
	w, j := n+add-1, len(src)-1
	i, k = n-1, len(except)-1
	for w > i {
		id := src[j].sym()
		if i >= 0 && dst[i].sym() > id {
			dst[w] = dst[i]
			w--
			i--
			continue
		}
		if i >= 0 && dst[i].sym() == id {
			j-- // dst binding wins
			continue
		}
		for k >= 0 && except[k] > id {
			k--
		}
		if k >= 0 && except[k] == id {
			j-- // consumed label, never transferred
			continue
		}
		dst[w] = src[j]
		w--
		j--
	}
	return dst, true
}

// InheritFrom implements flow inheritance: every label of src that is not
// already present in r (of the same label class) is attached to r. Binding
// tags are exempt, per the S-Net language report. The receiver is returned.
//
// The "already present" test implements the override rule from the paper:
// "unless an identically labeled item is included in it already, a form of
// override".
func (r *Record) InheritFrom(src *Record) *Record {
	return r.InheritFromExcept(src, nil, nil)
}

// InheritFromExcept behaves like InheritFrom but never transfers labels
// listed in the consumed symbol sets (each sorted ascending, as type
// variants keep them). It is used at box boundaries where the labels
// matched by the box input variant are considered consumed by the box. It
// allocates only if the receiver outgrows its entry capacity.
func (r *Record) InheritFromExcept(src *Record, consumedFields, consumedTags []Sym) *Record {
	if r.delivery == 0 {
		// Lineage rides inheritance: a record derived from a journaled
		// input keeps the input's delivery id so completion tracking can
		// attribute it. An id the receiver already carries wins (it was
		// stamped by an earlier derivation).
		r.delivery = src.delivery
	}
	var changed bool
	if r.fields, changed = mergeMissing(r.fields, src.fields, consumedFields); changed {
		r.shape = 0
	}
	if r.tags, changed = mergeMissing(r.tags, src.tags, consumedTags); changed {
		r.shape = 0
	}
	return r
}

// Merge unions other into r. Labels already bound in r win; this implements
// the synchrocell join where the record matched against the earlier pattern
// takes priority on overlapping labels. The receiver is returned.
func (r *Record) Merge(other *Record) *Record {
	var changed bool
	if r.fields, changed = mergeMissing(r.fields, other.fields, nil); changed {
		r.shape = 0
	}
	if r.tags, changed = mergeMissing(r.tags, other.tags, nil); changed {
		r.shape = 0
	}
	if r.btags, changed = mergeMissing(r.btags, other.btags, nil); changed {
		r.shape = 0
	}
	return r
}

// ShapeHash returns a hash of the record's label shape: its kind and the
// symbol sets of its three label classes, independent of the bound values.
// The hash is computed lazily, cached, and invalidated only by label-set
// changes, so repeated shape comparisons (Equal's fast path, shape-keyed
// caches) cost a single load. Records built from the same labels in any
// order hash identically. The hash is never 0.
func (r *Record) ShapeHash() uint64 {
	if r.shape != 0 {
		return r.shape
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	h = (h ^ uint64(r.kind)) * prime64
	hashSym := func(id Sym) {
		h = (h ^ uint64(uint32(id))) * prime64
	}
	for i := range r.fields {
		hashSym(r.fields[i].id)
	}
	h = (h ^ 0xff) * prime64 // class separator
	for i := range r.tags {
		hashSym(r.tags[i].id)
	}
	h = (h ^ 0xff) * prime64
	for i := range r.btags {
		hashSym(r.btags[i].id)
	}
	if h == 0 {
		h = 1
	}
	r.shape = h
	return h
}

// Equal reports whether two records have identical label sets, identical tag
// values and identical (shallow-compared) field values. Records built from
// the same bindings in different orders compare equal.
func (r *Record) Equal(other *Record) bool {
	if r.kind != other.kind ||
		len(r.fields) != len(other.fields) ||
		len(r.tags) != len(other.tags) ||
		len(r.btags) != len(other.btags) {
		return false
	}
	if r.ShapeHash() != other.ShapeHash() {
		return false
	}
	for i := range r.fields {
		if r.fields[i].id != other.fields[i].id ||
			r.fields[i].val != other.fields[i].val {
			return false
		}
	}
	for i := range r.tags {
		if r.tags[i] != other.tags[i] {
			return false
		}
	}
	for i := range r.btags {
		if r.btags[i] != other.btags[i] {
			return false
		}
	}
	return true
}

// String renders the record in S-Net style, e.g.
// {scene, sect, <node=3>, <tasks=48>}. Labels appear in sorted order so the
// output is deterministic. It allocates and is meant for diagnostics, not
// the hot path.
func (r *Record) String() string {
	if r.kind == Trigger {
		return "{*trigger*}"
	}
	var parts []string
	parts = append(parts, r.Fields()...)
	for _, k := range r.Tags() {
		v, _ := r.Tag(k)
		parts = append(parts, fmt.Sprintf("<%s=%d>", k, v))
	}
	for _, k := range r.BTags() {
		v, _ := r.BTag(k)
		parts = append(parts, fmt.Sprintf("<#%s=%d>", k, v))
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// symNames snapshots the symbol table's name slice. The slice is
// append-only, and every symbol held by a record was interned before the
// snapshot, so indexing it without the lock is safe.
func symNames() []string {
	symtab.RLock()
	names := symtab.names
	symtab.RUnlock()
	return names
}
