package record

// Builder provides a fluent way to assemble records in tests, examples and
// box bodies:
//
//	r := record.Build().F("scene", sc).T("nodes", 8).T("tasks", 48).Rec()
type Builder struct {
	r *Record
}

// Build starts a new builder over an empty data record.
func Build() *Builder { return &Builder{r: New()} }

// F adds a field binding.
func (b *Builder) F(label string, value any) *Builder {
	b.r.SetField(label, value)
	return b
}

// T adds a tag binding.
func (b *Builder) T(label string, value int) *Builder {
	b.r.SetTag(label, value)
	return b
}

// BT adds a binding-tag binding.
func (b *Builder) BT(label string, value int) *Builder {
	b.r.SetBTag(label, value)
	return b
}

// Rec returns the assembled record.
func (b *Builder) Rec() *Record { return b.r }
