//go:build race

package record_test

import "testing"

// The race detector instruments allocations, so the AllocsPerRun
// regressions only assert in non-race runs (CI runs them in a dedicated
// step).
func skipIfRace(t *testing.T) {
	t.Skip("allocation-regression assertions are skipped under -race")
}
