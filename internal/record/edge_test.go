// Edge-case coverage for the interned-label record representation: the
// S-Net semantic invariants (override rule, btag exemption) and the
// representation-level hazards (inline-capacity spill, reuse after Reset,
// equality across construction orders, control records on the wire).
package record_test

import (
	"fmt"
	"testing"

	"snet/internal/dist"
	"snet/internal/record"
)

// TestInheritOverrideRule pins the paper's override rule through the
// merge-join implementation: a label already present in the inheriting
// record is never replaced, regardless of where it falls in symbol order.
func TestInheritOverrideRule(t *testing.T) {
	src := record.New().
		SetField("a", "src-a").SetField("m", "src-m").SetField("z", "src-z").
		SetTag("ta", 1).SetTag("tz", 2)
	dst := record.New().SetField("m", "dst-m").SetTag("ta", 99)
	dst.InheritFrom(src)
	if v, _ := dst.Field("m"); v != "dst-m" {
		t.Fatalf("override rule violated: field m = %v", v)
	}
	if v, _ := dst.Tag("ta"); v != 99 {
		t.Fatalf("override rule violated: tag ta = %d", v)
	}
	for _, f := range []string{"a", "z"} {
		if v, _ := dst.Field(f); v != "src-"+f {
			t.Fatalf("field %s not inherited: %v", f, v)
		}
	}
	if v, _ := dst.Tag("tz"); v != 2 {
		t.Fatal("tag tz not inherited")
	}
}

// TestBTagExemption pins the S-Net 2.0 rule: binding tags never flow, on
// both inheritance entry points, but do transfer through the synchrocell
// Merge.
func TestBTagExemption(t *testing.T) {
	src := record.New().SetBTag("bind", 7).SetTag("t", 1)
	if record.New().InheritFrom(src).HasBTag("bind") {
		t.Fatal("InheritFrom transferred a binding tag")
	}
	if record.New().InheritFromExcept(src, nil, nil).HasBTag("bind") {
		t.Fatal("InheritFromExcept transferred a binding tag")
	}
	if !record.New().Merge(src).HasBTag("bind") {
		t.Fatal("Merge must union binding tags")
	}
}

// TestEqualAcrossBuildOrders checks that records assembled in different
// orders — and therefore through different insert paths of the sorted
// representation — compare Equal and share a shape hash.
func TestEqualAcrossBuildOrders(t *testing.T) {
	a := record.New().
		SetField("scene", "s").SetField("sect", 7).
		SetTag("node", 3).SetTag("tasks", 48).SetBTag("bind", 1)
	b := record.New().
		SetBTag("bind", 1).SetTag("tasks", 48).SetTag("node", 3).
		SetField("sect", 7).SetField("scene", "s")
	if !a.Equal(b) || !b.Equal(a) {
		t.Fatalf("build order broke equality: %s vs %s", a, b)
	}
	if a.ShapeHash() != b.ShapeHash() {
		t.Fatal("identical label sets hash differently")
	}
	// A record rebuilt through delete + reinsert is still the same record.
	c := a.Copy()
	c.DeleteTag("node")
	if a.Equal(c) {
		t.Fatal("deleted label not reflected in equality")
	}
	c.SetTag("node", 3)
	if !a.Equal(c) {
		t.Fatal("reinserted label broke equality")
	}
}

// TestShapeHashValueIndependence: updating a bound value keeps the shape;
// changing the label set changes it (with overwhelming probability).
func TestShapeHashValueIndependence(t *testing.T) {
	r := record.New().SetField("f", 1).SetTag("t", 2)
	h := r.ShapeHash()
	r.SetField("f", "other").SetTag("t", 99)
	if r.ShapeHash() != h {
		t.Fatal("value update changed the shape hash")
	}
	r.SetTag("u", 1)
	if r.ShapeHash() == h {
		t.Fatal("label insert kept the shape hash")
	}
	r.DeleteTag("u")
	if r.ShapeHash() != h {
		t.Fatal("shape hash not restored after delete")
	}
	if record.New().ShapeHash() == record.NewTrigger().ShapeHash() {
		t.Fatal("kind must contribute to the shape hash")
	}
}

// TestInlineSpill drives a record far past its inline entry capacity and
// back, checking lookups, ordering and copy independence along the way.
func TestInlineSpill(t *testing.T) {
	r := record.New()
	const n = 40
	for i := n - 1; i >= 0; i-- { // descending: worst case for sorted insert
		r.SetField(fmt.Sprintf("f%02d", i), i)
		r.SetTag(fmt.Sprintf("t%02d", i), i)
	}
	if r.NumFields() != n || r.NumTags() != n {
		t.Fatalf("counts %d/%d, want %d/%d", r.NumFields(), r.NumTags(), n, n)
	}
	for i := 0; i < n; i++ {
		if v, ok := r.Field(fmt.Sprintf("f%02d", i)); !ok || v != i {
			t.Fatalf("field f%02d = %v,%v", i, v, ok)
		}
		if v, ok := r.Tag(fmt.Sprintf("t%02d", i)); !ok || v != i {
			t.Fatalf("tag t%02d = %v,%v", i, v, ok)
		}
	}
	c := r.Copy()
	c.DeleteField("f13")
	c.SetTag("t07", -1)
	if !r.HasField("f13") {
		t.Fatal("copy shares spilled field storage with original")
	}
	if v, _ := r.Tag("t07"); v != 7 {
		t.Fatal("copy shares spilled tag storage with original")
	}
	// Spilled records still inherit correctly into small ones.
	dst := record.New().SetField("f00", "mine")
	dst.InheritFrom(r)
	if v, _ := dst.Field("f00"); v != "mine" {
		t.Fatal("override rule violated after spill")
	}
	if dst.NumFields() != n || dst.NumTags() != n {
		t.Fatalf("inherit from spilled record lost labels: %d/%d", dst.NumFields(), dst.NumTags())
	}
}

// TestResetReuse checks that a Reset record behaves like a fresh one and
// releases no stale bindings.
func TestResetReuse(t *testing.T) {
	r := record.NewTrigger()
	for i := 0; i < 20; i++ { // force a spill before resetting
		r.SetField(fmt.Sprintf("f%d", i), i)
	}
	r.Reset()
	if !r.IsData() || r.NumFields() != 0 || r.NumTags() != 0 || r.NumBTags() != 0 {
		t.Fatalf("Reset left residue: %s", r)
	}
	r.SetField("fresh", 1)
	if r.NumFields() != 1 || !r.HasField("fresh") || r.HasField("f3") {
		t.Fatalf("reused record wrong: %s", r)
	}
	if !r.Equal(record.New().SetField("fresh", 1)) {
		t.Fatal("reused record not equal to fresh equivalent")
	}
}

// TestTriggerCodecRoundTrips checks that control records survive every wire
// path: the stateless v1 codec, and a negotiated v2 link mid-stream (after
// data records have populated the label table).
func TestTriggerCodecRoundTrips(t *testing.T) {
	// Stateless v1.
	buf, err := dist.Marshal(record.NewTrigger())
	if err != nil {
		t.Fatal(err)
	}
	got, err := dist.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.IsData() {
		t.Fatal("v1: trigger decoded as data")
	}
	// Negotiated v2 link: data, trigger, data — the trailing data record
	// must still resolve its (table-only) label references.
	enc, dec := dist.NewCodec(), dist.NewCodec()
	data := record.New().SetField("chunk", "payload").SetTag("tasks", 48)
	for i, r := range []*record.Record{data, record.NewTrigger(), data.Copy()} {
		buf, err := enc.Marshal(r)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		rt, err := dec.Unmarshal(buf)
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if rt.IsData() != r.IsData() {
			t.Fatalf("record %d: kind lost", i)
		}
		if r.IsData() && !rt.Equal(r) {
			t.Fatalf("record %d: round trip %s != %s", i, rt, r)
		}
	}
}

// TestCodecV2FailedMarshalKeepsNegotiation: a Marshal that fails (opaque
// field value) must not commit label definitions the peer never receives;
// the next successful Marshal on the link must still round-trip.
func TestCodecV2FailedMarshalKeepsNegotiation(t *testing.T) {
	enc, dec := dist.NewCodec(), dist.NewCodec()
	bad := record.New().SetTag("tasks", 48).SetField("scene", struct{ x int }{1})
	if _, err := enc.Marshal(bad); err == nil {
		t.Fatal("opaque field marshalled")
	}
	good := record.New().SetTag("tasks", 48).SetField("scene", "now-a-string")
	buf, err := enc.Marshal(good)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := dec.Unmarshal(buf)
	if err != nil {
		t.Fatalf("link desynced by failed marshal: %v", err)
	}
	if !rt.Equal(good) {
		t.Fatalf("round trip %s != %s", rt, good)
	}
}

// TestCodecV2SizePredictsMarshal pins Size's contract — the size of the
// next Marshal, without advancing negotiation — including the case of one
// name used in two label classes of the same record (defined inline once).
func TestCodecV2SizePredictsMarshal(t *testing.T) {
	r := record.New().SetTag("x", 1).SetField("x", "both-classes").SetField("y", 2)
	for hop := 0; hop < 3; hop++ {
		c := dist.NewCodec()
		for i := 0; i <= hop; i++ {
			want := c.Size(r)
			buf, err := c.Marshal(r)
			if err != nil {
				t.Fatal(err)
			}
			if want != len(buf) {
				t.Fatalf("hop %d/%d: Size = %d, Marshal = %d bytes", i, hop, want, len(buf))
			}
		}
	}
}

// TestCodecV2CrossLinkIsolation: a reference-only buffer is undecodable on
// a link that never saw the definition — the failure mode the per-link
// tables must detect rather than mislabel.
func TestCodecV2CrossLinkIsolation(t *testing.T) {
	enc := dist.NewCodec()
	r := record.New().SetTag("tasks", 48)
	if _, err := enc.Marshal(r); err != nil { // defines <tasks> on this link
		t.Fatal(err)
	}
	refOnly, err := enc.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dist.NewCodec().Unmarshal(refOnly); err == nil {
		t.Fatal("foreign link decoded a reference-only buffer")
	}
	if _, err := dist.Unmarshal(refOnly); err == nil {
		t.Fatal("stateless Unmarshal decoded a reference-only buffer")
	}
}
