package record

import (
	"fmt"
	"sync"
	"testing"
)

func TestInternStable(t *testing.T) {
	a := Intern("sym-test-label")
	b := Intern("sym-test-label")
	if a != b {
		t.Fatalf("Intern not stable: %d vs %d", a, b)
	}
	if got := SymName(a); got != "sym-test-label" {
		t.Fatalf("SymName = %q", got)
	}
	if id, ok := LookupSym("sym-test-label"); !ok || id != a {
		t.Fatalf("LookupSym = %d,%v", id, ok)
	}
	if id, ok := LookupSym("sym-test-never-interned"); ok || id != NoSym {
		t.Fatalf("LookupSym on unknown = %d,%v", id, ok)
	}
}

func TestSymNamePanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SymName(NoSym) did not panic")
		}
	}()
	SymName(NoSym)
}

// TestInternConcurrent hammers the symbol table from many goroutines with
// overlapping vocabularies; run under -race this doubles as the data-race
// regression for the RWMutex fast path and the lock-free name snapshot.
func TestInternConcurrent(t *testing.T) {
	const workers, labels = 8, 64
	var wg sync.WaitGroup
	ids := make([][]Sym, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ids[w] = make([]Sym, labels)
			for i := 0; i < labels; i++ {
				name := fmt.Sprintf("conc-%d", i)
				id := Intern(name)
				ids[w][i] = id
				if got := SymName(id); got != name {
					panic(fmt.Sprintf("SymName(%d) = %q, want %q", id, got, name))
				}
				// Concurrent readers exercise the snapshot path.
				r := New().SetTagSym(id, i)
				if v, ok := r.TagSym(id); !ok || v != i {
					panic("tag lost")
				}
				_ = r.String()
			}
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := 0; i < labels; i++ {
			if ids[w][i] != ids[0][i] {
				t.Fatalf("worker %d got Sym %d for label %d, worker 0 got %d",
					w, ids[w][i], i, ids[0][i])
			}
		}
	}
}
