package dist_test

import (
	"testing"
	"time"

	"snet/internal/dist"
	"snet/internal/record"
)

// TestTransferBatchAccounting pins the batch amortization contract:
// a TransferBatch of k records counts k hops but one wire message, and —
// past the 4-record break-even of the frame format (a 4-byte batch frame
// plus a kind byte per record, versus 2 framing bytes per single-record
// message) — its byte total is strictly below k individual transfers of
// the same records on a fresh link.
func TestTransferBatchAccounting(t *testing.T) {
	const k = 8
	rs := make([]*record.Record, k)
	for i := range rs {
		rs[i] = record.Build().F("chunk", []byte{1, 2, 3}).T("node", i).Rec()
	}

	single := dist.NewCluster(2, 1)
	for _, r := range rs {
		single.Transfer(0, 1, r)
	}
	ss := single.Stats()
	if ss.Transfers != k || ss.Batches != k {
		t.Fatalf("single-record transfers: %d hops, %d messages", ss.Transfers, ss.Batches)
	}

	batched := dist.NewCluster(2, 1)
	batched.TransferBatch(0, 1, rs)
	bs := batched.Stats()
	if bs.Transfers != k {
		t.Fatalf("batched transfers: %d hops, want %d", bs.Transfers, k)
	}
	if bs.Batches != 1 {
		t.Fatalf("batched transfers: %d messages, want 1", bs.Batches)
	}
	if bs.Bytes >= ss.Bytes {
		t.Fatalf("batched %d bytes not below %d unbatched bytes", bs.Bytes, ss.Bytes)
	}
}

// TestTransferBatchSameNodeFree mirrors Transfer's same-node rule.
func TestTransferBatchSameNodeFree(t *testing.T) {
	c := dist.NewCluster(2, 1)
	c.TransferBatch(1, 1, []*record.Record{record.New().SetTag("x", 1)})
	c.TransferBatch(0, 1, nil)
	if s := c.Stats(); s.Transfers != 0 || s.Batches != 0 || s.Bytes != 0 {
		t.Fatalf("same-node/empty batch was charged: %+v", s)
	}
}

// TestTransferBatchCostChargedPerMessage checks the latency model: one
// batched hop sleeps roughly once, not once per record.
func TestTransferBatchCostChargedPerMessage(t *testing.T) {
	const lat = 20 * time.Millisecond
	rs := make([]*record.Record, 8)
	for i := range rs {
		rs[i] = record.New().SetTag("i", i)
	}
	c := dist.NewCluster(2, 1)
	c.SetTransferCost(lat, 0)
	start := time.Now()
	c.TransferBatch(0, 1, rs)
	elapsed := time.Since(start)
	if elapsed < lat {
		t.Fatalf("batch hop took %v, below the %v link latency", elapsed, lat)
	}
	if elapsed > 4*lat {
		t.Fatalf("batch hop took %v; per-record latency charged instead of per-message", elapsed)
	}
}

// TestAccountBatchCommitsNegotiation verifies that a batch consumes label
// definitions exactly like the records shipped individually: a follow-up
// record on the same link pays only symbol references.
func TestAccountBatchCommitsNegotiation(t *testing.T) {
	mk := func() *record.Record { return record.Build().F("pay", "x").T("seq", 1).Rec() }
	c := dist.NewCodec()
	first := c.AccountBatch([]*record.Record{mk(), mk()})
	followUp := c.Account(mk())
	if followUp >= first {
		t.Fatalf("follow-up record (%dB) not cheaper than defining batch (%dB)", followUp, first)
	}
	// A second identical batch must also be cheaper than the first: all
	// labels are negotiated.
	second := c.AccountBatch([]*record.Record{mk(), mk()})
	if second >= first {
		t.Fatalf("second batch (%dB) not cheaper than first (%dB)", second, first)
	}
}
