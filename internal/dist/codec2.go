// Wire format v2: interned labels against a negotiated per-link table.
//
// Version 1 (codec.go) ships every label as its full string on every
// record. Version 2 exploits the runtime's interned-label representation
// (record.Sym): each side of a link keeps a label table, and a label
// crosses the wire as a varint symbol reference — its name travels exactly
// once per link, inline with the first record that uses it. For the
// steady-state traffic of a pipeline (thousands of records over a fixed
// label vocabulary) the per-record label cost drops from len(name)+2 bytes
// to one or two bytes, which is the wire-size reduction the Cluster's
// transfer accounting charges.
//
// Symbols are process-local, so the encoder writes its own record.Sym
// values and the decoder resolves them purely through the negotiated
// table; the two processes never need to agree on symbol numbering. A
// Codec is one direction of one link: pair the sender's Codec with the
// receiver's, and feed them the same record sequence.
package dist

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"snet/internal/record"
)

// codecVersion2 is the interned-label wire format version byte.
const codecVersion2 = 2

// kBatch is the message kind of a record batch (MarshalBatch): where a
// single-record message carries kData or kTrigger after the version byte, a
// batch message carries kBatch, a u16 record count, and then one kind byte
// plus body per record — the layout AccountBatch sizes.
const kBatch byte = 2

// ValueCodec extends a link codec to field values beyond the built-in
// scalar kinds: a transport (internal/wire) registers application types so
// records whose fields are domain values (scenes, image chunks) gain a
// real wire form. Handles reports whether Encode accepts values of v's
// dynamic type; Decode reverses Encode given the same name. Encode must
// not fail for a value Handles accepted — a mid-message encode failure
// forces the transport to drop the link (the negotiation state is already
// advanced). Built-in scalar kinds always use the built-in encoding; the
// extension is consulted only for values wireSerializable rejects.
//
// Size and Account keep charging mpi.PayloadBytes-convention estimates for
// extension values (the model's accounting stays comparable across
// platforms); only Marshal/MarshalBatch produce the extension's real
// encoding, so the Size(r) == len(Marshal(r)) invariant is limited to
// records whose fields are built-in scalars.
type ValueCodec interface {
	Handles(v any) bool
	Encode(v any) (name string, data []byte, err error)
	Decode(name string, data []byte) (any, error)
}

// Codec is a stateful encoder/decoder for one direction of one link. The
// zero value is ready to use. All methods are safe for concurrent use (the
// Cluster shares per-link codecs between transferring goroutines).
type Codec struct {
	mu      sync.Mutex
	sent    []bool            // encoder side: sym already defined to the peer
	names   map[uint64]record.Sym // decoder side: wire sym -> interned label
	predefs []record.Sym      // predict-mode sizing scratch, reused under mu
	ext     ValueCodec        // optional extension for non-scalar field values
}

// NewCodec returns a fresh link codec with an empty negotiated table.
func NewCodec() *Codec { return &Codec{} }

// SetValueCodec registers an extension codec for non-scalar field values.
// Register it on both endpoints of a link before the link carries traffic;
// a record that encoded through an extension fails to decode on a peer
// whose codec lacks it.
func (c *Codec) SetValueCodec(x ValueCodec) {
	c.mu.Lock()
	c.ext = x
	c.mu.Unlock()
}

// Reset discards the link's negotiated label table on both the encoder and
// the decoder side, returning the codec to its fresh-link state (the
// registered ValueCodec is kept). A transport that loses its connection
// must Reset both directions' codecs before reusing them on a new
// connection: after a partial send, symbols the encoder marked as defined
// may never have reached the peer, and decoding against the stale table
// would resolve references to the wrong names or reject them. Quiesce the
// link first — a record accounted or marshalled concurrently with Reset
// lands in either the old or the new negotiation era.
func (c *Codec) Reset() {
	c.mu.Lock()
	clear(c.sent)
	clear(c.names)
	c.mu.Unlock()
}

// knows reports and records whether the symbol has been defined on this
// link; the first call for a symbol returns false and marks it defined.
// Callers hold c.mu.
func (c *Codec) knows(id record.Sym) bool {
	if int(id) >= len(c.sent) {
		grown := make([]bool, int(id)+16)
		copy(grown, c.sent)
		c.sent = grown
	}
	if c.sent[id] {
		return true
	}
	c.sent[id] = true
	return false
}

// peek reports whether the symbol has been defined on this link without
// changing the negotiation state. Callers hold c.mu.
func (c *Codec) peek(id record.Sym) bool {
	return int(id) < len(c.sent) && c.sent[id]
}

// sizer sizes one record's label references against a codec. In commit
// mode it advances the codec's negotiation state exactly like writing
// would; in predict mode it leaves the codec untouched and instead tracks
// the names this record would define inline, so a name appearing in more
// than one label class of the same record is charged once — matching what
// Marshal actually emits.
type sizer struct {
	c       *Codec
	commit  bool
	defined []record.Sym // predict mode: defined earlier in this record
}

func (s *sizer) labelRefSize(id record.Sym) int {
	ref := uint64(uint32(id)) << 1
	var known bool
	if s.commit {
		known = s.c.knows(id)
	} else {
		known = s.c.peek(id)
		if !known {
			for _, d := range s.defined {
				if d == id {
					known = true
					break
				}
			}
			if !known {
				s.defined = append(s.defined, id)
			}
		}
	}
	if known {
		return uvarintLen(ref)
	}
	name := record.SymName(id)
	return uvarintLen(ref|1) + uvarintLen(uint64(len(name))) + len(name)
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

// wireSerializable reports whether appendValue can encode the value,
// including the size limits, so a Codec.Marshal that passes validation
// cannot fail mid-encode.
func wireSerializable(v any) bool {
	switch d := v.(type) {
	case nil, bool, int, int64, float64:
		return true
	case string:
		return len(d) <= math.MaxUint32
	case []byte:
		return len(d) <= math.MaxUint32
	default:
		return false
	}
}

// appendLabelRef writes one label reference, defining the name inline on
// first use. Callers hold c.mu.
func (c *Codec) appendLabelRef(buf []byte, id record.Sym) []byte {
	ref := uint64(uint32(id)) << 1
	if c.knows(id) {
		return binary.AppendUvarint(buf, ref)
	}
	name := record.SymName(id)
	buf = binary.AppendUvarint(buf, ref|1)
	buf = binary.AppendUvarint(buf, uint64(len(name)))
	return append(buf, name...)
}

// Size returns the wire size in bytes the next Marshal of r on this link
// would produce, without changing the negotiated state — safe to combine
// with a subsequent Marshal of the same record. Non-serializable field
// values are sized by mpi.PayloadBytes, as in the stateless codec.
func (c *Codec) Size(r *record.Record) int {
	return c.size(r, false)
}

// Account sizes the record like Size but also commits the label
// negotiation, exactly as if the record had been marshalled and shipped —
// the first record that uses a label pays for its name, subsequent records
// pay only the symbol reference. Cluster.Transfer uses Account for traffic
// accounting of transfers that never materialize bytes. Mixing Account and
// Marshal for the same logical send double-negotiates: use one or the
// other per record.
func (c *Codec) Account(r *record.Record) int {
	return c.size(r, true)
}

func (c *Codec) size(r *record.Record, commit bool) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return 2 + c.sizeBody(r, commit) // version, kind
}

// sizeBody sizes one record without its per-message framing (version and
// kind bytes). Callers hold c.mu. Predict-mode sizing tracks the labels
// the record would define inline in a codec-owned scratch slice (safe
// under mu), so repeated Size calls on a hot link allocate nothing.
func (c *Codec) sizeBody(r *record.Record, commit bool) int {
	s := sizer{c: c, commit: commit, defined: c.predefs[:0]}
	defer func() { c.predefs = s.defined[:0] }()
	n := 6 // three u16 label counts
	r.VisitTagSyms(func(id record.Sym, _ int) {
		n += s.labelRefSize(id) + 8
	})
	r.VisitBTagSyms(func(id record.Sym, _ int) {
		n += s.labelRefSize(id) + 8
	})
	r.VisitFieldSyms(func(id record.Sym, v any) {
		n += s.labelRefSize(id) + 1 + valueSize(v)
	})
	return n
}

// AccountBatch sizes a whole stream batch as one wire message, committing
// the label negotiation for every record: the message carries one frame
// (version, batch kind, u16 record count) plus, per record, a kind byte
// and the record body — the per-record version byte of single-record
// messages is amortized away, and the negotiated label table is consulted
// under a single lock acquisition for the entire batch.
// Cluster.TransferBatch uses it for traffic accounting of batched hops.
func (c *Codec) AccountBatch(rs []*record.Record) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 4 // version, batch kind, u16 record count
	for _, r := range rs {
		n += 1 + c.sizeBody(r, true) // kind byte + body
	}
	return n
}

// checkMarshalable validates a record against the wire limits and the
// serializable-value set (built-in scalars plus the registered ValueCodec)
// before any negotiation state is touched: a mid-encode failure after label
// definitions were marked as sent would desync the link (the peer never
// receives the dropped buffer). Callers hold c.mu.
func (c *Codec) checkMarshalable(r *record.Record) error {
	if r.NumTags() > math.MaxUint16 || r.NumBTags() > math.MaxUint16 ||
		r.NumFields() > math.MaxUint16 {
		return fmt.Errorf(
			"dist: record with %d fields, %d tags, %d btags exceeds the wire limit of %d labels per kind",
			r.NumFields(), r.NumTags(), r.NumBTags(), math.MaxUint16)
	}
	var preErr error
	r.VisitFieldSyms(func(id record.Sym, v any) {
		if preErr == nil && !wireSerializable(v) && !(c.ext != nil && c.ext.Handles(v)) {
			preErr = fmt.Errorf("dist: field %q value of type %T is not wire-serializable",
				record.SymName(id), v)
		}
	})
	return preErr
}

// Marshalable reports whether Marshal (or a MarshalBatch containing r)
// would succeed on this link: label counts within the wire limits and
// every field value either a built-in scalar kind or accepted by the
// registered ValueCodec. It never changes the negotiation state — a
// transport uses it to decide whether an execution can ship at all before
// committing a slot to the remote path.
func (c *Codec) Marshalable(r *record.Record) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.checkMarshalable(r) == nil
}

// appendRecord writes one record's kind byte and body (label counts, label
// references, values), advancing the negotiation state. Callers hold c.mu
// and have validated the record with checkMarshalable.
func (c *Codec) appendRecord(buf []byte, r *record.Record) ([]byte, error) {
	k := kData
	if !r.IsData() {
		k = kTrigger
	}
	buf = append(buf, k)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(r.NumTags()))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(r.NumBTags()))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(r.NumFields()))
	var tagErr error
	appendTag := func(id record.Sym, v int) {
		buf = c.appendLabelRef(buf, id)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(int64(v)))
	}
	r.VisitTagSyms(appendTag)
	r.VisitBTagSyms(appendTag)
	r.VisitFieldSyms(func(id record.Sym, v any) {
		if tagErr != nil {
			return
		}
		buf = c.appendLabelRef(buf, id)
		if !wireSerializable(v) && c.ext != nil && c.ext.Handles(v) {
			buf, tagErr = c.appendExt(buf, id, v)
			return
		}
		buf, tagErr = appendValue(buf, record.SymName(id), v)
	})
	if tagErr != nil {
		return nil, tagErr
	}
	return buf, nil
}

// appendExt writes one extension-encoded field value: the tExt type code, a
// u16-length-prefixed encoding name, and a u32-length-prefixed payload.
// Callers hold c.mu.
func (c *Codec) appendExt(buf []byte, id record.Sym, v any) ([]byte, error) {
	name, data, err := c.ext.Encode(v)
	if err != nil {
		return nil, fmt.Errorf("dist: field %q extension encode: %w", record.SymName(id), err)
	}
	if len(name) > math.MaxUint16 {
		return nil, fmt.Errorf("dist: field %q extension name of %d bytes exceeds the wire limit",
			record.SymName(id), len(name))
	}
	if len(data) > math.MaxUint32 {
		return nil, fmt.Errorf("dist: field %q extension payload of %d bytes exceeds the wire limit",
			record.SymName(id), len(data))
	}
	buf = append(buf, tExt)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(name)))
	buf = append(buf, name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(data)))
	return append(buf, data...), nil
}

// Marshal encodes a record in wire format v2 against the link's negotiated
// label table. Like the stateless Marshal it fails on field values that are
// not wire-serializable (and not covered by the registered ValueCodec).
func (c *Codec) Marshal(r *record.Record) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := c.checkMarshalable(r); err != nil {
		return nil, err
	}
	buf := make([]byte, 0, 64)
	buf = append(buf, codecVersion2)
	return c.appendRecord(buf, r)
}

// MarshalBatch encodes a whole stream batch as one wire message in exactly
// the layout AccountBatch sizes: version byte, kBatch kind, u16 record
// count, then one kind byte plus body per record, all against the link's
// negotiated label table under a single lock acquisition. For records
// whose field values are built-in scalars, len(MarshalBatch(rs)) ==
// AccountBatch(rs) on a codec in the same negotiation state — the
// cross-check that keeps the transport's measured bytes comparable to the
// model's accounted bytes. Every record is validated before any
// negotiation state advances.
func (c *Codec) MarshalBatch(rs []*record.Record) ([]byte, error) {
	if len(rs) > math.MaxUint16 {
		return nil, fmt.Errorf("dist: batch of %d records exceeds the wire limit of %d", len(rs), math.MaxUint16)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, r := range rs {
		if err := c.checkMarshalable(r); err != nil {
			return nil, err
		}
	}
	buf := make([]byte, 0, 16+64*len(rs))
	buf = append(buf, codecVersion2, kBatch)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rs)))
	var err error
	for _, r := range rs {
		if buf, err = c.appendRecord(buf, r); err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// UnmarshalBatch decodes a MarshalBatch message, extending the link's
// label table with any inline definitions, and returns the records in
// batch order.
func (c *Codec) UnmarshalBatch(data []byte) ([]*record.Record, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.names == nil {
		c.names = make(map[uint64]record.Sym)
	}
	d := &decoder{buf: data}
	version, err := d.byte()
	if err != nil {
		return nil, err
	}
	if version != codecVersion2 {
		return nil, fmt.Errorf("dist: wire version %d, want %d", version, codecVersion2)
	}
	kind, err := d.byte()
	if err != nil {
		return nil, err
	}
	if kind != kBatch {
		return nil, fmt.Errorf("dist: message kind %d is not a batch; use Unmarshal", kind)
	}
	n, err := d.u16()
	if err != nil {
		return nil, err
	}
	outs := make([]*record.Record, 0, n)
	for i := 0; i < int(n); i++ {
		r, err := decodeRecordV2(d, c.names, c.ext)
		if err != nil {
			return nil, fmt.Errorf("dist: batch record %d: %w", i, err)
		}
		outs = append(outs, r)
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("dist: %d trailing bytes after batch", len(d.buf)-d.off)
	}
	return outs, nil
}

// Unmarshal decodes a v2-encoded record, extending the link's label table
// with any inline definitions. A symbol reference that was never defined on
// this link is an error — the buffer belongs to a different link or records
// were decoded out of order.
func (c *Codec) Unmarshal(data []byte) (*record.Record, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.names == nil {
		c.names = make(map[uint64]record.Sym)
	}
	return unmarshalV2(data, c.names, c.ext)
}

// unmarshalV2 decodes a single-record v2 buffer against the given (mutable)
// label table.
func unmarshalV2(data []byte, names map[uint64]record.Sym, ext ValueCodec) (*record.Record, error) {
	d := &decoder{buf: data}
	version, err := d.byte()
	if err != nil {
		return nil, err
	}
	if version != codecVersion2 {
		return nil, fmt.Errorf("dist: wire version %d, want %d", version, codecVersion2)
	}
	r, err := decodeRecordV2(d, names, ext)
	if err != nil {
		return nil, err
	}
	if len(d.buf) != d.off {
		return nil, fmt.Errorf("dist: %d trailing bytes after record", len(d.buf)-d.off)
	}
	return r, nil
}

// decodeRecordV2 decodes one kind byte plus record body from d — the unit
// a single-record message carries once and a batch message repeats.
func decodeRecordV2(d *decoder, names map[uint64]record.Sym, ext ValueCodec) (*record.Record, error) {
	kind, err := d.byte()
	if err != nil {
		return nil, err
	}
	var r *record.Record
	switch kind {
	case kData:
		r = record.New()
	case kTrigger:
		r = record.NewTrigger()
	case kBatch:
		return nil, fmt.Errorf("dist: batch encoding; decode with UnmarshalBatch")
	default:
		return nil, fmt.Errorf("dist: unknown record kind %d", kind)
	}
	nTags, err := d.u16()
	if err != nil {
		return nil, err
	}
	nBTags, err := d.u16()
	if err != nil {
		return nil, err
	}
	nFields, err := d.u16()
	if err != nil {
		return nil, err
	}
	// Labels resolve to interned Syms: a definition interns its name once,
	// when it first crosses the link, and every later reference is a map
	// hit returning the Sym directly — the record accessors below never
	// touch label strings on the decode hot path.
	label := func() (record.Sym, error) {
		ref, err := d.uvarint()
		if err != nil {
			return record.NoSym, err
		}
		sym := ref >> 1
		if ref&1 == 0 {
			id, ok := names[sym]
			if !ok {
				return record.NoSym, fmt.Errorf("dist: undefined label symbol %d on this link", sym)
			}
			return id, nil
		}
		n, err := d.uvarint()
		if err != nil {
			return record.NoSym, err
		}
		b, err := d.take(int(n))
		if err != nil {
			return record.NoSym, err
		}
		id := record.Intern(string(b))
		names[sym] = id
		return id, nil
	}
	for i := 0; i < int(nTags); i++ {
		k, err := label()
		if err != nil {
			return nil, err
		}
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		r.SetTagSym(k, int(int64(v)))
	}
	for i := 0; i < int(nBTags); i++ {
		k, err := label()
		if err != nil {
			return nil, err
		}
		v, err := d.u64()
		if err != nil {
			return nil, err
		}
		r.SetBTagSym(k, int(int64(v)))
	}
	for i := 0; i < int(nFields); i++ {
		k, err := label()
		if err != nil {
			return nil, err
		}
		v, err := d.value(record.SymName(k), ext)
		if err != nil {
			return nil, err
		}
		r.SetFieldSym(k, v)
	}
	return r, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		return 0, fmt.Errorf("dist: truncated varint at byte %d", d.off)
	}
	d.off += n
	return v, nil
}
