package dist_test

// Work-stealing coverage of the cluster's slot scheduler: dispatch-time
// and release-time steals, home preference, migration accounting, the
// Loads surface, the concurrent ExecStealable/ExecCancel race, and
// deterministic-combinator order preservation under load-aware placement
// with stealing enabled.

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"snet/internal/core"
	"snet/internal/dist"
	"snet/internal/leakcheck"
	"snet/internal/record"
	"snet/internal/rtype"
)

// The cluster must satisfy the runtime's stealing and load contracts.
var (
	_ core.StealPlatform = (*dist.Cluster)(nil)
	_ core.LoadPlatform  = (*dist.Cluster)(nil)
)

// occupy grabs one CPU slot of the node and holds it until release is
// closed, returning once the slot is held.
func occupy(c *dist.Cluster, node int, release <-chan struct{}) {
	held := make(chan struct{})
	go c.Exec(node, func() {
		close(held)
		<-release
	})
	<-held
}

func TestExecStealablePrefersHomeNode(t *testing.T) {
	c := dist.NewCluster(2, 1)
	c.ExecStealable(0, nil, record.New().SetTag("x", 1), func() {})
	// Where an execution ran is visible in the per-node exec counts.
	if s := c.Stats(); s.Execs[0] != 1 || s.Steals != 0 {
		t.Fatalf("execs=%v steals=%d; want the execution on its idle home node", s.Execs, s.Steals)
	}
}

func TestExecStealableMigratesToIdleNodeAtDispatch(t *testing.T) {
	c := dist.NewCluster(2, 1)
	release := make(chan struct{})
	occupy(c, 0, release)
	defer close(release)

	// Home node 0 is saturated; node 1 idles. The stealable execution
	// must claim node 1 immediately instead of queueing behind node 0.
	done := make(chan struct{})
	go c.ExecStealable(0, nil, record.New().SetTag("x", 7).SetField("f", "payload"), func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("stealable execution never ran while a node idled")
	}
	s := c.Stats()
	if s.Execs[1] != 1 {
		t.Fatalf("execs=%v; want the stolen execution counted on thief node 1", s.Execs)
	}
	if s.Steals != 1 || s.Migrated != 1 {
		t.Fatalf("steals=%d migrated=%d, want 1/1", s.Steals, s.Migrated)
	}
	if s.Bytes == 0 {
		t.Fatal("migrated input was not byte-sized against the link codec")
	}
	if s.Transfers != 1 || s.Batches != 1 {
		t.Fatalf("transfers=%d batches=%d; a migration is one record hop in one wire message",
			s.Transfers, s.Batches)
	}
}

func TestExecStealableClaimedWhenRemoteSlotFrees(t *testing.T) {
	c := dist.NewCluster(2, 1)
	rel0 := make(chan struct{})
	rel1 := make(chan struct{})
	occupy(c, 0, rel0)
	occupy(c, 1, rel1)
	defer close(rel0)

	// Both nodes busy: the stealable execution queues on node 0.
	done := make(chan struct{})
	go c.ExecStealable(0, nil, record.New().SetTag("x", 1), func() { close(done) })
	select {
	case <-done:
		t.Fatal("execution ran while every slot was busy")
	case <-time.After(20 * time.Millisecond):
	}
	// Node 1 frees its slot first — it must claim the queued work.
	close(rel1)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("freed node never claimed the queued stealable execution")
	}
	if s := c.Stats(); s.Steals != 1 || s.Execs[1] != 2 {
		t.Fatalf("steals=%d execs=%v; want the release-time steal on node 1", s.Steals, s.Execs)
	}
}

func TestExecStealableNilInputMigratesFree(t *testing.T) {
	c := dist.NewCluster(2, 1)
	release := make(chan struct{})
	occupy(c, 0, release)
	defer close(release)
	ok := c.ExecStealable(0, nil, nil, func() {})
	s := c.Stats()
	if !ok || s.Steals != 1 || s.Migrated != 0 || s.Bytes != 0 || s.Transfers != 0 {
		t.Fatalf("ok=%v steals=%d migrated=%d bytes=%d transfers=%d; want a free steal",
			ok, s.Steals, s.Migrated, s.Bytes, s.Transfers)
	}
}

func TestLoadsReportsSlotsAndQueue(t *testing.T) {
	c := dist.NewCluster(2, 1)
	if loads := c.Loads(nil); loads[0] != 0 || loads[1] != 0 {
		t.Fatalf("idle cluster loads = %v", loads)
	}
	release := make(chan struct{})
	occupy(c, 0, release)
	// A queued (non-stealable, so it stays put) execution raises node 0's
	// load to slot-in-use + one queued.
	queued := make(chan bool, 1)
	cancel := make(chan struct{})
	go func() { queued <- c.ExecCancel(0, cancel, func() {}) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		loads := c.Loads(nil)
		if loads[0] == 2 && loads[1] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("loads = %v, want [2 0]", loads)
		}
		time.Sleep(time.Millisecond)
	}
	close(cancel)
	if ran := <-queued; ran {
		t.Fatal("cancelled queued execution reported as run")
	}
	close(release)
}

// TestExecStealableCancelRace hammers the scheduler with concurrently
// cancelled stealable and non-stealable executions racing real work across
// every node; run under -race it checks the grant/cancel handshake, and the
// final Loads assert that no slot or queue entry is stranded.
func TestExecStealableCancelRace(t *testing.T) {
	c := dist.NewCluster(3, 2)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 12; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rec := record.New().SetTag("g", g)
			for i := 0; i < 60; i++ {
				cancel := make(chan struct{})
				if i%3 == 0 {
					close(cancel) // cancelled before (or while) queueing
				} else if i%3 == 1 {
					go func() {
						time.Sleep(time.Duration(i%7) * time.Microsecond)
						close(cancel)
					}()
				}
				fn := func() { ran.Add(1); time.Sleep(10 * time.Microsecond) }
				if i%2 == 0 {
					c.ExecStealable(g%3, cancel, rec, fn)
				} else {
					c.ExecCancel(g%3, cancel, fn)
				}
			}
		}(g)
	}
	wg.Wait()
	deadline := time.Now().Add(5 * time.Second)
	for {
		loads := c.Loads(nil)
		if loads[0] == 0 && loads[1] == 0 && loads[2] == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("loads = %v after all work finished; capacity stranded", loads)
		}
		time.Sleep(time.Millisecond)
	}
	if ran.Load() == 0 {
		t.Fatal("no execution ever ran")
	}
	// Every slot must still be usable: saturate the cluster once more.
	var wg2 sync.WaitGroup
	for n := 0; n < 3; n++ {
		for s := 0; s < 2; s++ {
			wg2.Add(1)
			go func(n int) {
				defer wg2.Done()
				c.Exec(n, func() {})
			}(n)
		}
	}
	wg2.Wait()
}

// TestDetCombinatorsDeterministicUnderStealing runs DetChoice and DetSplit
// on a live cluster with least-loaded placement and work stealing at batch
// sizes 1–16: migrating box executions must not leak into the output
// order — the deterministic merger still restores input order exactly.
func TestDetCombinatorsDeterministicUnderStealing(t *testing.T) {
	leakcheck.Check(t)
	const n = 120
	sigX := core.MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	for _, bs := range []int{1, 2, 3, 5, 8, 16} {
		opts := func() core.Options {
			return core.Options{
				Platform:     dist.NewCluster(4, 2),
				Placer:       &core.LeastLoaded{},
				WorkStealing: true,
				BatchSize:    bs,
				BufferSize:   16,
			}
		}
		// DetChoice: the slow branch stalls every fourth record, so later
		// records overtake inside the cluster and must be reordered.
		slowEven := core.NewBox("slowEven", sigX, func(c *core.BoxCall) error {
			x := c.Field("x").(int)
			if x%4 == 0 {
				time.Sleep(200 * time.Microsecond)
			}
			c.Emit(record.New().SetField("x", x))
			return nil
		})
		never := core.NewBox("never", core.MustSig(
			[]rtype.Label{rtype.F("y")}, []rtype.Label{rtype.F("y")}),
			func(c *core.BoxCall) error { return nil })
		var ins []*record.Record
		for i := 0; i < n; i++ {
			ins = append(ins, record.New().SetField("x", i))
		}
		outs, err := core.NewNetwork(core.DetChoice(slowEven, never), opts()).Run(ins...)
		if err != nil {
			t.Fatalf("DetChoice bs=%d: %v", bs, err)
		}
		checkOrdered(t, "DetChoice", bs, outs, n)

		// DetSplit: three replicas, the zero replica slow.
		sigK := core.MustSig([]rtype.Label{rtype.F("x"), rtype.T("k")}, []rtype.Label{rtype.F("x")})
		echo := core.NewBox("echo", sigK, func(c *core.BoxCall) error {
			if c.Tag("k") == 0 {
				time.Sleep(100 * time.Microsecond)
			}
			c.Emit(record.New().SetField("x", c.Field("x")).SetTag("k", c.Tag("k")))
			return nil
		})
		ins = ins[:0]
		for i := 0; i < n; i++ {
			ins = append(ins, record.Build().F("x", i).T("k", i%3).Rec())
		}
		outs, err = core.NewNetwork(core.DetSplit(echo, "k"), opts()).Run(ins...)
		if err != nil {
			t.Fatalf("DetSplit bs=%d: %v", bs, err)
		}
		checkOrdered(t, "DetSplit", bs, outs, n)
	}
}

func checkOrdered(t *testing.T, name string, bs int, outs []*record.Record, n int) {
	t.Helper()
	if len(outs) != n {
		t.Fatalf("%s bs=%d: %d outputs, want %d", name, bs, len(outs), n)
	}
	for i, r := range outs {
		v, ok := r.Field("x")
		if !ok || v.(int) != i {
			t.Fatalf("%s bs=%d: output %d = %v; input order lost under stealing", name, bs, i, v)
		}
	}
}
