package dist_test

import (
	"errors"
	"testing"
	"time"

	"snet/internal/core"
	"snet/internal/dist"
	"snet/internal/leakcheck"
	"snet/internal/record"
	"snet/internal/rtype"
)

// The cluster must satisfy the runtime's cancellation contract.
var _ core.CancellablePlatform = (*dist.Cluster)(nil)

func TestExecCancelAbandonsSlotWait(t *testing.T) {
	c := dist.NewCluster(1, 1)
	// Occupy the node's only slot.
	occupied := make(chan struct{})
	release := make(chan struct{})
	go c.Exec(0, func() {
		close(occupied)
		<-release
	})
	<-occupied

	cancel := make(chan struct{})
	ret := make(chan bool, 1)
	go func() { ret <- c.ExecCancel(0, cancel, func() { t.Error("fn ran after cancel") }) }()
	select {
	case <-ret:
		t.Fatal("ExecCancel returned while the slot was still busy")
	case <-time.After(20 * time.Millisecond):
	}
	close(cancel)
	select {
	case ok := <-ret:
		if ok {
			t.Fatal("ExecCancel reported true after cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ExecCancel did not honor cancellation")
	}
	close(release)

	// The abandoned wait must not have consumed capacity: a fresh Exec
	// acquires the slot normally.
	done := make(chan struct{})
	go c.Exec(0, func() { close(done) })
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("slot stranded after cancelled ExecCancel")
	}
}

// TestStopReleasesClusterCapacity runs a network against a fully busy
// cluster, stops it while boxes are queued for slots, and verifies the
// cluster remains usable — a stopped network must not strand CPU slots.
func TestStopReleasesClusterCapacity(t *testing.T) {
	leakcheck.Check(t)
	cluster := dist.NewCluster(1, 1)
	sig := core.MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	started := make(chan struct{}, 8)
	release := make(chan struct{})
	blocking := core.NewBox("blocking", sig, func(c *core.BoxCall) error {
		started <- struct{}{}
		<-release
		return nil
	})
	inst := core.NewNetwork(blocking, core.Options{Platform: cluster}).Start()
	// First record holds the node's only CPU; the rest queue behind it,
	// some of them inside ExecCancel waiting for the slot.
	for i := 0; i < 4; i++ {
		if !inst.Send(record.New().SetField("x", i)) {
			t.Fatal("Send refused")
		}
	}
	<-started

	stopRet := make(chan error, 1)
	go func() { stopRet <- inst.Stop() }()
	// Let Stop cancel the queued ExecCancel waiters, then release the
	// one execution actually holding the slot.
	time.Sleep(20 * time.Millisecond)
	close(release)
	select {
	case err := <-stopRet:
		if !errors.Is(err, core.ErrStopped) {
			t.Fatalf("Stop = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung on a saturated cluster")
	}

	// All slots must be free again: an independent network on the same
	// cluster runs to completion.
	quick := core.NewBox("quick", sig, func(c *core.BoxCall) error {
		c.Emit(record.New().SetField("x", 1))
		return nil
	})
	outs, err := core.NewNetwork(quick, core.Options{Platform: cluster}).Run(
		record.New().SetField("x", 0))
	if err != nil || len(outs) != 1 {
		t.Fatalf("cluster unusable after Stop: outs=%v err=%v", outs, err)
	}
}

// TestStopReleasesClusterMidSteal is TestStopReleasesClusterCapacity for
// the work-stealing scheduler: a steal-enabled network saturates a cluster
// whose queues hold stealable executions (some already migrated, some
// still waiting), then Stop must reclaim every goroutine and leave every
// slot and queue entry released.
func TestStopReleasesClusterMidSteal(t *testing.T) {
	leakcheck.Check(t)
	cluster := dist.NewCluster(2, 1)
	sig := core.MustSig([]rtype.Label{rtype.F("x")}, []rtype.Label{rtype.F("x")})
	started := make(chan struct{}, 16)
	release := make(chan struct{})
	blocking := core.NewBox("blocking", sig, func(c *core.BoxCall) error {
		started <- struct{}{}
		<-release
		return nil
	})
	// Untagged dispatch spawns one replica per record, so every record is
	// its own concurrently queued execution: the first two occupy both
	// nodes' slots (one of them via a dispatch-time steal), the rest
	// queue as stealable waiters behind them.
	inst := core.NewNetwork(core.SplitAt(blocking, "node"), core.Options{
		Platform:     cluster,
		Placer:       &core.LeastLoaded{},
		WorkStealing: true,
	}).Start()
	for i := 0; i < 6; i++ {
		if !inst.Send(record.New().SetField("x", i)) {
			t.Fatal("Send refused")
		}
	}
	<-started
	<-started

	stopRet := make(chan error, 1)
	go func() { stopRet <- inst.Stop() }()
	// Let Stop cancel the queued stealable waiters, then release the two
	// executions holding slots.
	time.Sleep(20 * time.Millisecond)
	close(release)
	select {
	case err := <-stopRet:
		if !errors.Is(err, core.ErrStopped) {
			t.Fatalf("Stop = %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Stop hung on a saturated steal-enabled cluster")
	}

	// Nothing stranded: every slot free, queues empty, and the cluster
	// still runs fresh work on both nodes.
	if loads := cluster.Loads(nil); loads[0] != 0 || loads[1] != 0 {
		t.Fatalf("loads = %v after Stop, want [0 0]", loads)
	}
	quick := core.NewBox("quick", sig, func(c *core.BoxCall) error {
		c.Emit(record.New().SetField("x", 1))
		return nil
	})
	outs, err := core.NewNetwork(quick, core.Options{
		Platform: cluster, WorkStealing: true,
	}).Run(record.New().SetField("x", 0), record.New().SetField("x", 1))
	if err != nil || len(outs) != 2 {
		t.Fatalf("cluster unusable after mid-steal Stop: outs=%v err=%v", outs, err)
	}
}
