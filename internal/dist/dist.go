// Package dist implements the Distributed S-Net platform: an abstract
// cluster of compute nodes underneath the placement combinators "@" and
// "!@". The paper maps one S-Net network onto a multi-node installation by
// annotating subnetworks with node indices; this package supplies the
// resource model those annotations are measured against.
//
// A Cluster has a fixed number of nodes, each with a bounded number of CPU
// slots. Box executions dispatched to a node (core.Platform.Exec) are gated
// on the node's slots, so at most cpusPerNode box calls run concurrently per
// node — the "two solvers per dual-core node" regime of the paper's
// Section V becomes an enforced bound rather than a convention. Every record
// that crosses between nodes (core.Platform.Transfer) is counted and
// byte-sized with the record wire codec (see codec.go), which follows the
// mpi.ByteSizer conventions so that the S-Net networks and the MPI baseline
// (internal/mpiray) account traffic identically.
//
// An optional transfer-cost model (SetTransferCost) charges a per-hop
// latency plus a bandwidth-proportional delay for every cross-node record,
// letting benchmarks explore communication-bound regimes beyond the paper's
// compute-bound figures.
package dist

import (
	"fmt"
	"sync/atomic"
	"time"

	"snet/internal/record"
)

// Stats is a snapshot of a cluster's accounting counters.
type Stats struct {
	// Execs counts box executions per node.
	Execs []int64
	// Busy is the accumulated box-execution wall time per node.
	Busy []time.Duration
	// Transfers counts cross-node record hops. A batch transfer counts
	// one hop per record it carries, so Transfers is comparable across
	// batched and unbatched runs.
	Transfers int64
	// Batches counts cross-node wire messages: one per TransferBatch
	// call and one per single-record Transfer. Transfers/Batches is the
	// average number of records per wire message.
	Batches int64
	// Bytes is the accumulated wire size of everything transferred;
	// batched records share one message frame (see Codec.AccountBatch).
	Bytes int64
}

// Cluster is an abstract multi-node compute platform: bounded CPU slots per
// node plus transfer accounting. It implements core.Platform. All methods
// are safe for concurrent use; a Cluster may be shared between consecutive
// network runs (the counters then accumulate) and between an S-Net network
// and an MPI program competing for the same resources.
type Cluster struct {
	cpus    int
	slots   []chan struct{} // per-node counting semaphore, capacity cpus
	execs   []atomic.Int64
	busy    []atomic.Int64 // nanoseconds
	trans   atomic.Int64
	batches atomic.Int64
	bytes   atomic.Int64

	// links holds one wire codec per directed node pair, indexed
	// from*nodes+to: transfers are sized against the link's negotiated
	// label table, so a label name crosses each link once and steady-state
	// records are charged interned-symbol prices (see codec2.go). The
	// codecs live in one flat allocation; the zero Codec is ready to use.
	links []Codec

	// Transfer-cost model, fixed representation: latency per hop plus
	// nanoseconds per byte. Both zero by default (accounting only).
	latency  atomic.Int64 // ns per hop
	perByte  atomic.Int64 // ns per byte, scaled by perByteScale
	costLive atomic.Bool  // fast-path skip when no cost is configured
}

// perByteScale fixes the per-byte delay representation at 1/1024 ns
// resolution, so bandwidths well above 1 GB/s remain representable.
const perByteScale = 1024

// NewCluster creates a cluster of `nodes` abstract nodes with `cpusPerNode`
// CPU slots each. It panics on non-positive arguments, mirroring an
// impossible machine configuration.
func NewCluster(nodes, cpusPerNode int) *Cluster {
	if nodes <= 0 || cpusPerNode <= 0 {
		panic(fmt.Sprintf("dist: cluster %d nodes x %d cpus", nodes, cpusPerNode))
	}
	c := &Cluster{
		cpus:  cpusPerNode,
		slots: make([]chan struct{}, nodes),
		execs: make([]atomic.Int64, nodes),
		busy:  make([]atomic.Int64, nodes),
		links: make([]Codec, nodes*nodes),
	}
	for i := range c.slots {
		c.slots[i] = make(chan struct{}, cpusPerNode)
	}
	return c
}

// Nodes returns the number of cluster nodes.
func (c *Cluster) Nodes() int { return len(c.slots) }

// CPUsPerNode returns the CPU slots per node.
func (c *Cluster) CPUsPerNode() int { return c.cpus }

// node maps an arbitrary node index onto a real node, modulo the cluster
// size. The placement combinators already normalize their indices; the
// modulo here additionally covers direct callers such as the MPI baseline's
// rank→node gating and keeps out-of-range indices from panicking.
func (c *Cluster) node(n int) int {
	size := len(c.slots)
	return ((n % size) + size) % size
}

// Exec runs fn as one box execution on the given node, blocking until a CPU
// slot is free and until fn has returned. This is the Platform contract: box
// calls on a fully busy node queue behind the node's CPUs.
func (c *Cluster) Exec(node int, fn func()) {
	c.ExecCancel(node, nil, fn)
}

// ExecCancel is Exec with an abort path (core.CancellablePlatform): when
// cancel fires before a CPU slot has been granted, the wait is abandoned
// and ExecCancel returns false without running fn, so a stopped network
// never strands queued work on — or leaks slots of — a shared cluster. An
// execution that has already acquired its slot runs to completion and
// releases the slot normally, cancelled or not. A nil cancel never fires.
func (c *Cluster) ExecCancel(node int, cancel <-chan struct{}, fn func()) bool {
	n := c.node(node)
	select {
	case c.slots[n] <- struct{}{}:
	case <-cancel:
		return false
	}
	start := time.Now()
	defer func() {
		c.busy[n].Add(int64(time.Since(start)))
		c.execs[n].Add(1)
		<-c.slots[n]
	}()
	fn()
	return true
}

// Transfer accounts one record hop from node `from` to node `to`: the hop is
// counted, the record is byte-sized with the link's wire codec (v2: interned
// labels against the link's negotiated table, so repeated shipments of the
// same label vocabulary shrink to symbol references), and — when a transfer
// cost is configured — the calling goroutine is delayed by
// latency + size/bandwidth, modelling the record traveling the interconnect.
// Same-node transfers are free and uncounted.
func (c *Cluster) Transfer(from, to int, r *record.Record) {
	f, t := c.node(from), c.node(to)
	if f == t {
		return
	}
	n := (&c.links[f*len(c.slots)+t]).Account(r)
	c.trans.Add(1)
	c.batches.Add(1)
	c.bytes.Add(int64(n))
	c.chargeCost(n)
}

// TransferBatch accounts a whole stream batch crossing from node `from` to
// node `to` as one wire message (core.BatchPlatform): the records share a
// single message frame and one codec-lock acquisition
// (Codec.AccountBatch), every record still counts as one hop in Transfers,
// and — when a transfer cost is configured — the modelled per-hop latency
// is charged once for the batch plus the bandwidth delay for its total
// size. This is the amortization that makes batched links cheaper on a
// costed interconnect. Same-node batches are free and uncounted.
func (c *Cluster) TransferBatch(from, to int, rs []*record.Record) {
	if len(rs) == 0 {
		return
	}
	f, t := c.node(from), c.node(to)
	if f == t {
		return
	}
	n := (&c.links[f*len(c.slots)+t]).AccountBatch(rs)
	c.trans.Add(int64(len(rs)))
	c.batches.Add(1)
	c.bytes.Add(int64(n))
	c.chargeCost(n)
}

// chargeCost delays the calling goroutine by the modelled cost of one wire
// message of n bytes, when a transfer cost is configured.
func (c *Cluster) chargeCost(n int) {
	if !c.costLive.Load() {
		return
	}
	d := time.Duration(c.latency.Load()) +
		time.Duration(c.perByte.Load())*time.Duration(n)/perByteScale
	if d > 0 {
		time.Sleep(d)
	}
}

// SetTransferCost configures the transfer-cost model: every cross-node hop
// is delayed by `latency` plus the record's wire size divided by
// `bytesPerSecond`. A zero bytesPerSecond means infinite bandwidth; calling
// SetTransferCost(0, 0) disables delays again (accounting continues either
// way). The model may be changed while networks are running; hops in flight
// use whichever values they observe.
func (c *Cluster) SetTransferCost(latency time.Duration, bytesPerSecond float64) {
	c.latency.Store(int64(latency))
	var per int64
	if bytesPerSecond > 0 {
		per = int64(float64(time.Second) * perByteScale / bytesPerSecond)
	}
	c.perByte.Store(per)
	c.costLive.Store(latency > 0 || per > 0)
}

// Stats returns a copy of the accounting counters. The snapshot is
// internally consistent per counter but not across counters: concurrent
// Exec/Transfer calls may land between reads.
func (c *Cluster) Stats() Stats {
	s := Stats{
		Execs:     make([]int64, len(c.execs)),
		Busy:      make([]time.Duration, len(c.busy)),
		Transfers: c.trans.Load(),
		Batches:   c.batches.Load(),
		Bytes:     c.bytes.Load(),
	}
	for i := range c.execs {
		s.Execs[i] = c.execs[i].Load()
		s.Busy[i] = time.Duration(c.busy[i].Load())
	}
	return s
}
