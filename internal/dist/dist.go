//snet:hot
// Package dist implements the Distributed S-Net platform: an abstract
// cluster of compute nodes underneath the placement combinators "@" and
// "!@". The paper maps one S-Net network onto a multi-node installation by
// annotating subnetworks with node indices; this package supplies the
// resource model those annotations are measured against.
//
// A Cluster has a fixed number of nodes, each with a bounded number of CPU
// slots. Box executions dispatched to a node (core.Platform.Exec) are gated
// on the node's slots, so at most cpusPerNode box calls run concurrently per
// node — the "two solvers per dual-core node" regime of the paper's
// Section V becomes an enforced bound rather than a convention. Every record
// that crosses between nodes (core.Platform.Transfer) is counted and
// byte-sized with the record wire codec (see codec.go), which follows the
// mpi.ByteSizer conventions so that the S-Net networks and the MPI baseline
// (internal/mpiray) account traffic identically.
//
// # Scheduling and work stealing
//
// Each node keeps a FIFO deque of executions waiting for one of its CPU
// slots. Exec and ExecCancel queue strictly on their home node — the
// static regime of the paper, where placement fixed at split time leaves a
// skewed workload queued behind one node's CPUs. ExecStealable relaxes it:
// a queued execution may be claimed by another node that runs out of local
// work, which models migrating the triggering input record across the
// interconnect — the steal is counted (Stats.Steals, Stats.Migrated), the
// input is byte-sized against the donor→thief link codec, and the
// configured transfer-cost model is charged for the move. Loads exposes the
// per-node slot occupancy plus queue depth that load-aware placement
// policies (core.LeastLoaded) feed on.
//
// An optional transfer-cost model (SetTransferCost) charges a per-hop
// latency plus a bandwidth-proportional delay for every cross-node record,
// letting benchmarks explore communication-bound regimes beyond the paper's
// compute-bound figures.
package dist

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"snet/internal/record"
)

// Stats is a snapshot of a cluster's accounting counters.
type Stats struct {
	// Execs counts box executions per node — the node that ran the
	// execution, which for a stolen execution is the thief, not the home
	// node it was dispatched to.
	Execs []int64
	// Busy is the accumulated box-execution wall time per node.
	Busy []time.Duration
	// Transfers counts cross-node record hops. A batch transfer counts
	// one hop per record it carries, so Transfers is comparable across
	// batched and unbatched runs.
	Transfers int64
	// Batches counts cross-node wire messages: one per TransferBatch
	// call and one per single-record Transfer. Transfers/Batches is the
	// average number of records per wire message.
	Batches int64
	// Bytes is the accumulated wire size of everything transferred;
	// batched records share one message frame (see Codec.AccountBatch),
	// and the inputs of stolen executions are included.
	Bytes int64
	// Steals counts executions queued on one node but claimed and run by
	// another (ExecStealable only; Exec and ExecCancel never migrate).
	Steals int64
	// Migrated counts the input records that crossed nodes because their
	// execution was stolen. Each such record is byte-sized against the
	// donor→thief link codec and charged the transfer-cost model, exactly
	// like a stream hop — and like a stream hop it is also counted in
	// Transfers, Batches (one message per migration) and Bytes, so the
	// per-message and per-hop ratios stay meaningful with stealing on.
	Migrated int64
}

// Cluster is an abstract multi-node compute platform: bounded CPU slots per
// node, per-node work queues with optional cross-node stealing, and
// transfer accounting. It implements core.Platform (plus the optional
// CancellablePlatform, BatchPlatform, StealPlatform and LoadPlatform
// contracts). All methods are safe for concurrent use; a Cluster may be
// shared between consecutive network runs (the counters then accumulate)
// and between an S-Net network and an MPI program competing for the same
// resources.
type Cluster struct {
	cpus    int
	execs   []atomic.Int64
	busy    []atomic.Int64 // nanoseconds
	trans   atomic.Int64
	batches atomic.Int64
	bytes   atomic.Int64
	steals  atomic.Int64
	migs    atomic.Int64

	// The slot scheduler: free CPU slots and the FIFO queue of waiting
	// executions, per node. A released slot first serves its own node's
	// queue; when that is empty and stealable work is queued elsewhere,
	// it claims the oldest stealable waiter of the longest queue.
	mu     sync.Mutex
	free   []int
	queues [][]*waiter
	nsteal int // stealable waiters across all queues (fast no-steal skip)

	// links holds one wire codec per directed node pair, indexed
	// from*nodes+to: transfers are sized against the link's negotiated
	// label table, so a label name crosses each link once and steady-state
	// records are charged interned-symbol prices (see codec2.go). The
	// codecs live in one flat allocation; the zero Codec is ready to use.
	links []Codec

	// Transfer-cost model, fixed representation: latency per hop plus
	// nanoseconds per byte. Both zero by default (accounting only).
	latency  atomic.Int64 // ns per hop
	perByte  atomic.Int64 // ns per byte, scaled by perByteScale
	costLive atomic.Bool  // fast-path skip when no cost is configured
}

// waiter is one execution queued for a CPU slot. The grant channel
// (buffered, so granting never blocks) carries the node whose slot was
// granted — the home node, or the thief's for a stolen execution (the
// waiting goroutine itself charges the migration after the grant).
type waiter struct {
	home      int
	stealable bool
	grant     chan int
}

// perByteScale fixes the per-byte delay representation at 1/1024 ns
// resolution, so bandwidths well above 1 GB/s remain representable.
const perByteScale = 1024

// NewCluster creates a cluster of `nodes` abstract nodes with `cpusPerNode`
// CPU slots each. It panics on non-positive arguments, mirroring an
// impossible machine configuration.
func NewCluster(nodes, cpusPerNode int) *Cluster {
	if nodes <= 0 || cpusPerNode <= 0 {
		panic(fmt.Sprintf("dist: cluster %d nodes x %d cpus", nodes, cpusPerNode))
	}
	c := &Cluster{
		cpus:   cpusPerNode,
		execs:  make([]atomic.Int64, nodes),
		busy:   make([]atomic.Int64, nodes),
		free:   make([]int, nodes),
		queues: make([][]*waiter, nodes),
		links:  make([]Codec, nodes*nodes),
	}
	for i := range c.free {
		c.free[i] = cpusPerNode
	}
	return c
}

// Nodes returns the number of cluster nodes.
func (c *Cluster) Nodes() int { return len(c.free) }

// CPUsPerNode returns the CPU slots per node.
func (c *Cluster) CPUsPerNode() int { return c.cpus }

// node maps an arbitrary node index onto a real node, modulo the cluster
// size. The placement combinators already normalize their indices; the
// modulo here additionally covers direct callers such as the MPI baseline's
// rank→node gating and keeps out-of-range indices from panicking.
func (c *Cluster) node(n int) int {
	size := len(c.free)
	return ((n % size) + size) % size
}

// acquire obtains a CPU slot for an execution homed on node n, blocking in
// the node's FIFO queue when all slots are busy. It returns the node whose
// slot was granted — n itself unless the waiter was stealable and another
// node claimed it first — and false (without a slot) when cancel fired
// before a grant.
func (c *Cluster) acquire(n int, cancel <-chan struct{}, stealable bool) (int, bool) {
	c.mu.Lock()
	if c.free[n] > 0 && len(c.queues[n]) == 0 {
		c.free[n]--
		c.mu.Unlock()
		return n, true
	}
	if stealable {
		// The home node is saturated; rather than queue behind it, claim
		// an idle slot elsewhere right away (the dispatch-time half of
		// stealing — releaseSlot covers nodes that free up later).
		size := len(c.free)
		for off := 1; off < size; off++ {
			m := (n + off) % size
			if c.free[m] > 0 && len(c.queues[m]) == 0 {
				c.free[m]--
				c.mu.Unlock()
				return m, true
			}
		}
	}
	w := &waiter{home: n, stealable: stealable, grant: make(chan int, 1)}
	c.queues[n] = append(c.queues[n], w)
	if stealable {
		c.nsteal++
	}
	c.mu.Unlock()
	if cancel == nil {
		return <-w.grant, true
	}
	select {
	case got := <-w.grant:
		return got, true
	case <-cancel:
	}
	c.mu.Lock()
	if c.unqueue(w) {
		c.mu.Unlock()
		return 0, false
	}
	c.mu.Unlock()
	// The grant raced the cancellation and won: take the slot and give it
	// straight back, so the abandoned wait cannot strand capacity.
	got := <-w.grant
	c.releaseSlot(got)
	return 0, false
}

// unqueue removes w from its home queue; false means w is no longer queued
// (it has been, or is being, granted). Callers hold mu.
func (c *Cluster) unqueue(w *waiter) bool {
	q := c.queues[w.home]
	for i, cand := range q {
		if cand == w {
			copy(q[i:], q[i+1:])
			q[len(q)-1] = nil
			c.queues[w.home] = q[:len(q)-1]
			if w.stealable {
				c.nsteal--
			}
			return true
		}
	}
	return false
}

// releaseSlot returns node n's CPU slot, handing it to the next execution:
// the oldest waiter queued on n itself, else — when stealable work is
// queued elsewhere — the oldest stealable waiter of the longest queue (the
// most loaded node donates). Only when no execution anywhere can use the
// slot does it become free.
func (c *Cluster) releaseSlot(n int) {
	c.mu.Lock()
	if q := c.queues[n]; len(q) > 0 {
		w := q[0]
		copy(q, q[1:])
		q[len(q)-1] = nil
		c.queues[n] = q[:len(q)-1]
		if w.stealable {
			c.nsteal--
		}
		c.mu.Unlock()
		w.grant <- n
		return
	}
	if c.nsteal > 0 {
		victim, depth := -1, 0
		for m := range c.queues {
			if m == n || len(c.queues[m]) <= depth {
				continue
			}
			for _, w := range c.queues[m] {
				if w.stealable {
					victim, depth = m, len(c.queues[m])
					break
				}
			}
		}
		if victim >= 0 {
			q := c.queues[victim]
			for i, w := range q {
				if !w.stealable {
					continue
				}
				copy(q[i:], q[i+1:])
				q[len(q)-1] = nil
				c.queues[victim] = q[:len(q)-1]
				c.nsteal--
				c.mu.Unlock()
				w.grant <- n
				return
			}
		}
	}
	c.free[n]++
	c.mu.Unlock()
}

// run executes fn on node n's already-acquired slot, accounting busy time
// and the execution count, and releases the slot.
func (c *Cluster) run(n int, fn func()) {
	start := time.Now()
	defer func() {
		c.busy[n].Add(int64(time.Since(start)))
		c.execs[n].Add(1)
		c.releaseSlot(n)
	}()
	fn()
}

// Exec runs fn as one box execution on the given node, blocking until a CPU
// slot is free and until fn has returned. This is the Platform contract: box
// calls on a fully busy node queue behind the node's CPUs.
func (c *Cluster) Exec(node int, fn func()) {
	n := c.node(node)
	got, _ := c.acquire(n, nil, false)
	c.run(got, fn)
}

// ExecCancel is Exec with an abort path (core.CancellablePlatform): when
// cancel fires before a CPU slot has been granted, the wait is abandoned
// and ExecCancel returns false without running fn, so a stopped network
// never strands queued work on — or leaks slots of — a shared cluster. An
// execution that has already acquired its slot runs to completion and
// releases the slot normally, cancelled or not. A nil cancel never fires.
func (c *Cluster) ExecCancel(node int, cancel <-chan struct{}, fn func()) bool {
	n := c.node(node)
	got, ok := c.acquire(n, cancel, false)
	if !ok {
		return false
	}
	c.run(got, fn)
	return true
}

// ExecStealable is ExecCancel for migratable work (core.StealPlatform): the
// execution queues on its home node like any other, but while it waits, a
// node that runs out of local work may claim it. A stolen execution runs on
// the thief's CPU slot; the steal is counted in Stats.Steals, and the input
// record — the box's triggering record, which would travel with the work in
// a distributed installation — is counted in Stats.Migrated, byte-sized
// against the home→thief link codec, and charged the configured
// transfer-cost model before fn runs. A nil input migrates free of size
// (the per-hop latency is still charged). Like ExecCancel it returns false
// without running fn when cancel fires before any slot was granted.
func (c *Cluster) ExecStealable(node int, cancel <-chan struct{}, input *record.Record, fn func()) bool {
	n := c.node(node)
	got, ok := c.acquire(n, cancel, true)
	if !ok {
		return false
	}
	if got != n {
		c.accountSteal(n, got, input)
	}
	c.run(got, fn)
	return true
}

// accountSteal charges one stolen execution: the steal is counted, and the
// migrated input — a cross-node record hop in its own wire message — is
// counted like any stream hop so the Transfers/Batches/Bytes ratios stay
// comparable whether a record moved for placement or for stealing.
func (c *Cluster) accountSteal(home, thief int, input *record.Record) {
	c.steals.Add(1)
	var size int
	if input != nil {
		c.migs.Add(1)
		size = (&c.links[home*len(c.free)+thief]).Account(input)
		c.trans.Add(1)
		c.batches.Add(1)
		c.bytes.Add(int64(size))
	}
	c.chargeCost(size)
}

// ExecOn is the scheduling hook for transports layered above this
// in-process model (internal/wire): it schedules exactly like Exec /
// ExecCancel / ExecStealable — same home-node FIFO, same cancellation
// semantics, same dispatch-time and release-time stealing with identical
// Steals/Migrated/link accounting — but hands fn the node whose CPU slot
// was granted, so the caller can route the execution to the OS process
// that owns the slot. fn runs holding the granted node's slot, with busy
// time and the execution counted against that node; the slot is released
// when fn returns. Like ExecCancel it returns false without running fn
// when cancel fires before any slot was granted.
func (c *Cluster) ExecOn(node int, cancel <-chan struct{}, input *record.Record, stealable bool, fn func(granted int)) bool {
	n := c.node(node)
	got, ok := c.acquire(n, cancel, stealable)
	if !ok {
		return false
	}
	if stealable && got != n {
		c.accountSteal(n, got, input)
	}
	start := time.Now()
	defer func() {
		c.busy[got].Add(int64(time.Since(start)))
		c.execs[got].Add(1)
		c.releaseSlot(got)
	}()
	fn(got)
	return true
}

// Loads reports each node's scheduling load — CPU slots in use plus queued
// executions — appending into dst (reused when its capacity suffices). It
// is the feedback signal for load-aware placement (core.LeastLoaded): a
// node's load is how many executions stand between a newly placed unit of
// work and a CPU slot.
func (c *Cluster) Loads(dst []int) []int {
	dst = dst[:0]
	c.mu.Lock()
	for n, f := range c.free {
		dst = append(dst, c.cpus-f+len(c.queues[n]))
	}
	c.mu.Unlock()
	return dst
}

// Transfer accounts one record hop from node `from` to node `to`: the hop is
// counted, the record is byte-sized with the link's wire codec (v2: interned
// labels against the link's negotiated table, so repeated shipments of the
// same label vocabulary shrink to symbol references), and — when a transfer
// cost is configured — the calling goroutine is delayed by
// latency + size/bandwidth, modelling the record traveling the interconnect.
// Same-node transfers are free and uncounted.
func (c *Cluster) Transfer(from, to int, r *record.Record) {
	f, t := c.node(from), c.node(to)
	if f == t {
		return
	}
	n := (&c.links[f*len(c.free)+t]).Account(r)
	c.trans.Add(1)
	c.batches.Add(1)
	c.bytes.Add(int64(n))
	c.chargeCost(n)
}

// TransferBatch accounts a whole stream batch crossing from node `from` to
// node `to` as one wire message (core.BatchPlatform): the records share a
// single message frame and one codec-lock acquisition
// (Codec.AccountBatch), every record still counts as one hop in Transfers,
// and — when a transfer cost is configured — the modelled per-hop latency
// is charged once for the batch plus the bandwidth delay for its total
// size. This is the amortization that makes batched links cheaper on a
// costed interconnect. Same-node batches are free and uncounted.
func (c *Cluster) TransferBatch(from, to int, rs []*record.Record) {
	if len(rs) == 0 {
		return
	}
	f, t := c.node(from), c.node(to)
	if f == t {
		return
	}
	n := (&c.links[f*len(c.free)+t]).AccountBatch(rs)
	c.trans.Add(int64(len(rs)))
	c.batches.Add(1)
	c.bytes.Add(int64(n))
	c.chargeCost(n)
}

// chargeCost delays the calling goroutine by the modelled cost of one wire
// message of n bytes, when a transfer cost is configured.
func (c *Cluster) chargeCost(n int) {
	if !c.costLive.Load() {
		return
	}
	d := time.Duration(c.latency.Load()) +
		time.Duration(c.perByte.Load())*time.Duration(n)/perByteScale
	if d > 0 {
		time.Sleep(d)
	}
}

// SetTransferCost configures the transfer-cost model: every cross-node hop
// is delayed by `latency` plus the record's wire size divided by
// `bytesPerSecond`. A zero bytesPerSecond means infinite bandwidth; calling
// SetTransferCost(0, 0) disables delays again (accounting continues either
// way). The model may be changed while networks are running; hops in flight
// use whichever values they observe.
func (c *Cluster) SetTransferCost(latency time.Duration, bytesPerSecond float64) {
	c.latency.Store(int64(latency))
	var per int64
	if bytesPerSecond > 0 {
		per = int64(float64(time.Second) * perByteScale / bytesPerSecond)
	}
	c.perByte.Store(per)
	c.costLive.Store(latency > 0 || per > 0)
}

// Stats returns a copy of the accounting counters. The snapshot is
// internally consistent per counter but not across counters: concurrent
// Exec/Transfer calls may land between reads.
func (c *Cluster) Stats() Stats {
	s := Stats{
		Execs:     make([]int64, len(c.execs)),
		Busy:      make([]time.Duration, len(c.busy)),
		Transfers: c.trans.Load(),
		Batches:   c.batches.Load(),
		Bytes:     c.bytes.Load(),
		Steals:    c.steals.Load(),
		Migrated:  c.migs.Load(),
	}
	for i := range c.execs {
		s.Execs[i] = c.execs[i].Load()
		s.Busy[i] = time.Duration(c.busy[i].Load())
	}
	return s
}
