package dist_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"snet/internal/dist"
	"snet/internal/record"
)

type sized struct{ n int }

func (s sized) ByteSize() int { return s.n }

func TestCodecRoundTrip(t *testing.T) {
	r := record.Build().
		F("name", "sphere-7").
		F("weight", 3.25).
		F("count", 42).
		F("wide", int64(1<<40)).
		F("flag", true).
		F("off", false).
		F("blob", []byte{0, 1, 2, 254, 255}).
		F("empty", nil).
		T("node", 3).
		T("tasks", -48).
		Rec()
	r.SetBTag("bind", 7)
	r.SetBTag("neg", -1)

	buf, err := dist.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	got, err := dist.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}

	if !got.IsData() {
		t.Fatal("kind lost")
	}
	for _, tag := range []struct {
		label string
		want  int
	}{{"node", 3}, {"tasks", -48}} {
		if v, ok := got.Tag(tag.label); !ok || v != tag.want {
			t.Fatalf("tag <%s> = %d,%v, want %d", tag.label, v, ok, tag.want)
		}
	}
	for _, bt := range []struct {
		label string
		want  int
	}{{"bind", 7}, {"neg", -1}} {
		if v, ok := got.BTag(bt.label); !ok || v != bt.want {
			t.Fatalf("btag <#%s> = %d,%v, want %d", bt.label, v, ok, bt.want)
		}
	}
	checks := map[string]any{
		"name": "sphere-7", "weight": 3.25, "count": 42,
		"wide": int(1 << 40), "flag": true, "off": false, "empty": nil,
	}
	for label, want := range checks {
		v, ok := got.Field(label)
		if !ok || v != want {
			t.Fatalf("field %s = %v,%v, want %v", label, v, ok, want)
		}
	}
	blob, _ := got.Field("blob")
	if !bytes.Equal(blob.([]byte), []byte{0, 1, 2, 254, 255}) {
		t.Fatalf("blob = %v", blob)
	}
	if got.NumFields() != 8 || got.NumTags() != 2 || got.NumBTags() != 2 {
		t.Fatalf("label counts %d/%d/%d", got.NumFields(), got.NumTags(), got.NumBTags())
	}
}

func TestCodecTriggerRoundTrip(t *testing.T) {
	buf, err := dist.Marshal(record.NewTrigger())
	if err != nil {
		t.Fatal(err)
	}
	got, err := dist.Unmarshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.IsData() {
		t.Fatal("trigger decoded as data record")
	}
}

func TestSizeMatchesMarshal(t *testing.T) {
	records := []*record.Record{
		record.New(),
		record.NewTrigger(),
		record.Build().F("s", "abc").F("b", []byte("xyzw")).T("n", 1).Rec(),
		record.Build().F("f", 2.5).F("i", 7).F("nil", nil).F("t", true).Rec(),
	}
	for _, r := range records {
		buf, err := dist.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		if dist.Size(r) != len(buf) {
			t.Fatalf("record %s: Size = %d, Marshal = %d bytes", r, dist.Size(r), len(buf))
		}
	}
}

// TestSizeByteSizerConvention checks that opaque field values follow the
// mpi.ByteSizer conventions: declared sizes are honored, everything else
// falls back to the fixed estimate.
func TestSizeByteSizerConvention(t *testing.T) {
	base := dist.Size(record.New())
	declared := record.New().SetField("x", sized{n: 1000})
	opaque := record.New().SetField("x", struct{ a, b int }{})
	// Both records add the same label overhead (2 + len("x") + 1 type-code
	// byte); only the payload sizing differs.
	overhead := 2 + 1 + 1
	if got := dist.Size(declared); got != base+overhead+1000 {
		t.Fatalf("ByteSizer field: size = %d, want %d", got, base+overhead+1000)
	}
	if got := dist.Size(opaque); got != base+overhead+64 {
		t.Fatalf("opaque field: size = %d, want %d", got, base+overhead+64)
	}
}

func TestMarshalRejectsOpaqueFields(t *testing.T) {
	r := record.New().SetField("scene", struct{ x int }{1})
	if _, err := dist.Marshal(r); err == nil ||
		!strings.Contains(err.Error(), "scene") {
		t.Fatalf("err = %v", err)
	}
}

func TestMarshalRejectsTooManyLabels(t *testing.T) {
	r := record.New()
	for i := 0; i < 1<<16; i++ {
		r.SetTag(fmt.Sprintf("t%d", i), i)
	}
	if _, err := dist.Marshal(r); err == nil ||
		!strings.Contains(err.Error(), "wire limit") {
		t.Fatalf("err = %v", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, err := dist.Marshal(record.Build().F("s", "hello").T("n", 1).Rec())
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":       {},
		"bad version": {99, 0, 0, 0, 0, 0, 0, 0},
		"bad kind":    {1, 7, 0, 0, 0, 0, 0, 0},
		"truncated":   good[:len(good)-3],
		"trailing":    append(append([]byte{}, good...), 0),
	}
	for name, buf := range cases {
		if _, err := dist.Unmarshal(buf); err == nil {
			t.Errorf("%s: no error", name)
		}
	}
}
